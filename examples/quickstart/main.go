// Quickstart: stage data through gospaces with crash-consistency
// logging, checkpoint, crash the consumer, and watch the staging area
// replay exactly what the consumer saw before the failure — while the
// producer keeps moving.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gospaces"
)

func main() {
	global := gospaces.Box3(0, 0, 0, 63, 63, 31)

	// A staging area of 4 in-process servers indexing the domain.
	stage, err := gospaces.StartStaging(gospaces.StagingConfig{
		Global:   global,
		NServers: 4,
		Bits:     2,
		ElemSize: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer stage.Close()

	producer, err := stage.NewClient("sim/0")
	if err != nil {
		log.Fatal(err)
	}
	defer producer.Close()
	consumer, err := stage.NewClient("viz/0")
	if err != nil {
		log.Fatal(err)
	}
	defer consumer.Close()

	// Deterministic synthetic field so every read can be verified.
	field := gospaces.NewField("temperature", global, 8)

	fmt.Println("-- initial execution: ts 1..4, consumer checkpoints after ts 2")
	for ts := int64(1); ts <= 4; ts++ {
		if err := producer.PutWithLog("temperature", ts, global, field.Fill(ts, global)); err != nil {
			log.Fatal(err)
		}
		data, _, err := consumer.GetWithLog("temperature", ts, global)
		if err != nil {
			log.Fatal(err)
		}
		if field.Verify(ts, global, data) >= 0 {
			log.Fatalf("ts %d: corrupted read", ts)
		}
		fmt.Printf("   ts %d staged and consumed (%d bytes)\n", ts, len(data))
		if ts == 2 {
			if _, err := consumer.WorkflowCheck(); err != nil {
				log.Fatal(err)
			}
			fmt.Println("   consumer checkpointed (workflow_check)")
		}
	}

	fmt.Println("-- consumer crashes; restarts from its ts-2 checkpoint")
	replay, err := consumer.WorkflowRestart()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   workflow_restart: %d logged events will replay\n", replay)

	fmt.Println("-- producer moves on to ts 5..6 while the consumer replays ts 3..4")
	for i, ts := range []int64{3, 4} {
		newTS := int64(5 + i)
		if err := producer.PutWithLog("temperature", newTS, global, field.Fill(newTS, global)); err != nil {
			log.Fatal(err)
		}
		data, v, err := consumer.GetWithLog("temperature", ts, global)
		if err != nil {
			log.Fatal(err)
		}
		if v != ts || field.Verify(ts, global, data) >= 0 {
			log.Fatalf("replay of ts %d returned wrong data (v=%d)", ts, v)
		}
		fmt.Printf("   producer staged ts %d; consumer replayed ts %d and got the ORIGINAL bytes\n", newTS, ts)
	}

	fmt.Println("-- consumer caught up; normal reads resume at ts 5")
	if _, _, err := consumer.GetWithLog("temperature", 5, global); err != nil {
		log.Fatal(err)
	}

	stats, err := consumer.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("-- staging stats: %d puts, %d gets, %d replay gets, %d bytes resident\n",
		stats.Puts, stats.Gets, stats.ReplayGets, stats.StoreBytes)
	fmt.Println("crash consistency held: the recovering consumer saw exactly its original data.")
}

// Heatdiffusion is a real numerical workflow on gospaces: a Jacobi
// heat-diffusion solver produces its temperature field into staging
// every step while a monitor consumes it (plus in-transit sums); the
// solver checkpoints its actual grid state, crashes mid-run, restarts
// from the checkpoint, and replays through the staging log. The run is
// validated bit-exactly against a failure-free execution: same final
// grid, same sequence of monitor readings.
//
// Run with: go run ./examples/heatdiffusion
package main

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"log"
	"math"

	"gospaces"
)

const (
	n     = 48 // grid is n x n
	steps = 24
	// The solver checkpoints its grid every ckptEvery steps.
	ckptEvery = 6
	// crashAt is the step at whose start the solver dies (0 = never).
	alpha = 0.2 // diffusion coefficient
)

// solver is the application state that checkpoint/restart must
// preserve: the grid and the last completed step.
type solver struct {
	grid []float64
	ts   int64
}

func newSolver() *solver {
	s := &solver{grid: make([]float64, n*n)}
	// Hot west edge, cold elsewhere.
	for y := 0; y < n; y++ {
		s.grid[y*n] = 100
	}
	return s
}

// snapshot deep-copies the solver state (the example's "checkpoint to
// reliable storage").
func (s *solver) snapshot() *solver {
	cp := &solver{grid: append([]float64(nil), s.grid...), ts: s.ts}
	return cp
}

// step advances the diffusion equation one Jacobi iteration.
func (s *solver) step() {
	next := make([]float64, n*n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			i := y*n + x
			if x == 0 { // fixed boundary
				next[i] = s.grid[i]
				continue
			}
			c := s.grid[i]
			up, down, left, right := c, c, s.grid[i-1], c
			if y > 0 {
				up = s.grid[i-n]
			}
			if y < n-1 {
				down = s.grid[i+n]
			}
			if x < n-1 {
				right = s.grid[i+1]
			}
			next[i] = c + alpha*(up+down+left+right-4*c)
		}
	}
	s.grid = next
	s.ts++
}

// encode serializes the grid as the staged payload (8-byte LE bits).
func (s *solver) encode() []byte {
	buf := make([]byte, n*n*8)
	for i, v := range s.grid {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	return buf
}

func checksum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// run executes the workflow; crashAt > 0 injects a solver crash at the
// start of that step. It returns the final grid checksum and the
// monitor's per-step means.
func run(crashAt int64) (uint64, []float64, error) {
	box := gospaces.Box3(0, 0, 0, n-1, n-1, 0)
	stage, err := gospaces.StartStaging(gospaces.StagingConfig{
		Global: box, NServers: 2, Bits: 2, ElemSize: 8,
	})
	if err != nil {
		return 0, nil, err
	}
	defer stage.Close()

	sim, err := stage.NewClient("heat/0")
	if err != nil {
		return 0, nil, err
	}
	defer sim.Close()
	mon, err := stage.NewClient("monitor/0")
	if err != nil {
		return 0, nil, err
	}
	defer mon.Close()

	s := newSolver()
	saved := s.snapshot() // initial checkpoint
	crashed := false
	means := make([]float64, 0, steps)

	for s.ts < steps {
		// Injected fail-stop: lose the live state, restart from the
		// checkpoint, switch staging into replay mode.
		if !crashed && crashAt > 0 && s.ts+1 == crashAt {
			crashed = true
			s = saved.snapshot()
			replay, err := sim.WorkflowRestart()
			if err != nil {
				return 0, nil, err
			}
			fmt.Printf("   solver crashed before step %d; restored grid at step %d, %d staged writes will be suppressed\n",
				crashAt, s.ts, replay)
			continue
		}
		s.step()
		if err := sim.PutWithLog("temp", s.ts, box, s.encode()); err != nil {
			return 0, nil, err
		}
		// The monitor consumes every version exactly once (replayed
		// solver writes are suppressed, so versions never change).
		if int64(len(means)) < s.ts {
			sum, cells, err := mon.Reduce("temp", s.ts, box, gospaces.ReduceSum)
			if err != nil {
				return 0, nil, err
			}
			_ = sum // bit-pattern sum; the mean below uses real values
			data, _, err := mon.GetWithLog("temp", s.ts, box)
			if err != nil {
				return 0, nil, err
			}
			var total float64
			for i := 0; i < n*n; i++ {
				total += math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
			}
			means = append(means, total/float64(cells))
		}
		if s.ts%ckptEvery == 0 {
			saved = s.snapshot()
			if _, err := sim.WorkflowCheck(); err != nil {
				return 0, nil, err
			}
			if _, err := mon.WorkflowCheck(); err != nil {
				return 0, nil, err
			}
		}
	}
	return checksum(s.encode()), means, nil
}

func main() {
	fmt.Println("-- failure-free reference run")
	refSum, refMeans, err := run(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   final grid checksum %016x, mean temperature %.4f\n", refSum, refMeans[len(refMeans)-1])

	fmt.Println("-- run with a solver crash at step 15 (checkpoint at step 12)")
	gotSum, gotMeans, err := run(15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   final grid checksum %016x, mean temperature %.4f\n", gotSum, gotMeans[len(gotMeans)-1])

	if gotSum != refSum {
		log.Fatal("final grid diverged from the failure-free run!")
	}
	if len(gotMeans) != len(refMeans) {
		log.Fatalf("monitor saw %d readings, reference %d", len(gotMeans), len(refMeans))
	}
	for i := range refMeans {
		if gotMeans[i] != refMeans[i] {
			log.Fatalf("monitor reading %d diverged: %g vs %g", i, gotMeans[i], refMeans[i])
		}
	}
	fmt.Println("crash + checkpoint/restart + log replay reproduced the physics bit-exactly.")
}

// Insituviz exercises the paper's Case 1 access pattern: an in-situ
// feature-extraction/visualization consumer that reads only a subset of
// the data domain, at a lower cadence than the simulation produces it,
// and additionally asks the staging servers for in-transit reductions
// (min/max over the ROI) so the heavy lifting never leaves the staging
// area. The viz component crashes mid-run and replays its logged subset
// reads while the simulation streams ahead, then the example prints the
// staging garbage-collection accounting that keeps the log bounded.
//
// Run with: go run ./examples/insituviz
package main

import (
	"fmt"
	"log"

	"gospaces"
)

func main() {
	global := gospaces.Box3(0, 0, 0, 127, 127, 63)
	// The viz reads the central 40% slab of the domain.
	roi := gospaces.Subset(global, 0.4)

	stage, err := gospaces.StartStaging(gospaces.StagingConfig{
		Global:   global,
		NServers: 4,
		Bits:     2,
		ElemSize: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer stage.Close()

	sim, err := stage.NewClient("sim/0")
	if err != nil {
		log.Fatal(err)
	}
	defer sim.Close()
	viz, err := stage.NewClient("viz/0")
	if err != nil {
		log.Fatal(err)
	}
	defer viz.Close()

	field := gospaces.NewField("vorticity", global, 8)
	const steps = 12
	const vizEvery = 2 // viz processes every second timestep

	fmt.Printf("simulation writes %d steps; viz extracts features from a %.0f%% ROI every %d steps\n",
		steps, 100*float64(roi.Volume())/float64(global.Volume()), vizEvery)

	vizTS := []int64{}
	for ts := int64(1); ts <= steps; ts++ {
		if err := sim.PutWithLog("vorticity", ts, global, field.Fill(ts, global)); err != nil {
			log.Fatal(err)
		}
		if ts%vizEvery == 0 {
			data, _, err := viz.GetWithLog("vorticity", ts, roi)
			if err != nil {
				log.Fatal(err)
			}
			if field.Verify(ts, roi, data) >= 0 {
				log.Fatalf("ts %d: ROI read corrupted", ts)
			}
			// In-transit analytics: the servers reduce the ROI without
			// shipping the field to the client.
			mx, cells, err := viz.Reduce("vorticity", ts, roi, gospaces.ReduceMax)
			if err != nil {
				log.Fatal(err)
			}
			if ts == vizEvery {
				fmt.Printf("   in-transit max over %d ROI cells at ts %d: %g\n", cells, ts, mx)
			}
			vizTS = append(vizTS, ts)
		}
		// Both components checkpoint on their own schedules.
		if ts%4 == 0 {
			if _, err := sim.WorkflowCheck(); err != nil {
				log.Fatal(err)
			}
		}
		if ts == 6 {
			if _, err := viz.WorkflowCheck(); err != nil {
				log.Fatal(err)
			}
		}
		// The viz pipeline crashes right after processing ts 8.
		if ts == 8 {
			fmt.Println("-- viz crashes after ts 8; restarting from its ts-6 checkpoint")
			replay, err := viz.WorkflowRestart()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("   %d logged ROI reads will replay\n", replay)
			// Replay the logged window (ts 8) before resuming.
			data, v, err := viz.GetWithLog("vorticity", 8, roi)
			if err != nil {
				log.Fatal(err)
			}
			if v != 8 || field.Verify(8, roi, data) >= 0 {
				log.Fatalf("replayed ROI read wrong (v=%d)", v)
			}
			fmt.Println("   replayed ts-8 ROI read byte-identically")
		}
	}

	stats, err := viz.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprocessed viz steps %v\n", vizTS)
	fmt.Printf("staging after GC: %d objects, %d payload bytes resident, %d freed by GC\n",
		stats.Objects, stats.StoreBytes, stats.GCFreedBytes)
	fmt.Println("the log retained only what a recovering component could still re-read.")
}

// Coupledsim runs a DNS–LES-style coupled simulation workflow (the
// paper's motivating S3D scenario): a high-resolution solver producing
// field data through staging and a coarse solver consuming it, both
// under uncoordinated checkpoint/restart with data logging. Two
// fail-stop failures are injected — one into each component — and the
// run verifies every byte the consumer reads, demonstrating that
// uncoordinated C/R with staging data logging keeps the coupled
// workflow crash-consistent.
//
// Run with: go run ./examples/coupledsim
package main

import (
	"fmt"
	"log"

	"gospaces"
)

func main() {
	opts := gospaces.WorkflowOptions{
		Scheme:     gospaces.Uncoordinated,
		Steps:      16,
		Global:     gospaces.Box3(0, 0, 0, 63, 63, 31),
		ElemSize:   8,
		SubsetFrac: 1.0,
		SimRanks:   8, // DNS solver ranks
		AnaRanks:   4, // LES solver ranks
		NServers:   4,
		SimPeriod:  4, // DNS checkpoints every 4 coupling cycles
		AnaPeriod:  5, // LES every 5 — fully uncoordinated
		Failures: []gospaces.FailAt{
			{Component: "sim", Rank: 3, TS: 7},  // DNS rank dies at ts 7
			{Component: "ana", Rank: 1, TS: 12}, // LES rank dies at ts 12
		},
		Spares: 4,
	}

	fmt.Println("coupled DNS-LES workflow, uncoordinated C/R with data logging")
	fmt.Printf("  %d DNS ranks (ckpt every %d ts), %d LES ranks (ckpt every %d ts), %d staging servers\n",
		opts.SimRanks, opts.SimPeriod, opts.AnaRanks, opts.AnaPeriod, opts.NServers)
	fmt.Printf("  injecting %d failures\n", len(opts.Failures))

	res, err := gospaces.RunWorkflow(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ncompleted %d coupling cycles in %v\n", opts.Steps, res.Elapsed.Round(1_000_000))
	fmt.Printf("  recoveries:            %d (component-level, no global rollback)\n", res.Recoveries)
	fmt.Printf("  events replayed:       %d\n", res.ReplayedEvents)
	fmt.Printf("  duplicate writes suppressed: %d\n", res.SuppressedPuts)
	fmt.Printf("  replay-mode reads served:    %d\n", res.Staging.ReplayGets)
	fmt.Printf("  verified reads:        %d\n", res.SuccessReads)
	fmt.Printf("  corrupted reads:       %d\n", res.CorruptReads)
	if res.CorruptReads != 0 {
		log.Fatal("crash consistency violated!")
	}
	fmt.Println("every byte the LES solver consumed matched the DNS output — crash consistency held.")
}

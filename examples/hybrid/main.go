// Hybrid demonstrates the paper's hybrid checkpointing scheme (§III-B):
// the simulation protects itself with checkpoint/restart while the
// analytic uses process replication; staging data logging composes the
// two. An analytic replica failure is masked without any rollback or
// replay, and a simulation failure rolls only the simulation back, its
// duplicate writes suppressed by the log.
//
// Run with: go run ./examples/hybrid
package main

import (
	"fmt"
	"log"

	"gospaces"
)

func main() {
	opts := gospaces.WorkflowOptions{
		Scheme:    gospaces.Hybrid,
		Steps:     14,
		Global:    gospaces.Box3(0, 0, 0, 63, 63, 31),
		ElemSize:  8,
		SimRanks:  4,
		AnaRanks:  3,
		NServers:  3,
		SimPeriod: 4,
		AnaPeriod: 5, // unused by the replicated analytic, kept for symmetry
		Failures: []gospaces.FailAt{
			{Component: "ana", Rank: 2, TS: 5}, // replica takeover, no rollback
			{Component: "sim", Rank: 0, TS: 9}, // C/R rollback + replay
		},
		Spares: 4,
	}

	fmt.Println("hybrid scheme: simulation C/R + analytic process replication")
	res, err := gospaces.RunWorkflow(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ncompleted in %v\n", res.Elapsed.Round(1_000_000))
	fmt.Printf("  recoveries:                  %d\n", res.Recoveries)
	fmt.Printf("  duplicate writes suppressed: %d (simulation rollback)\n", res.SuppressedPuts)
	fmt.Printf("  replay-mode reads:           %d (replication never replays)\n", res.Staging.ReplayGets)
	fmt.Printf("  verified / corrupted reads:  %d / %d\n", res.SuccessReads, res.CorruptReads)
	if res.CorruptReads != 0 {
		log.Fatal("crash consistency violated!")
	}
	if res.Staging.ReplayGets != 0 {
		fmt.Println("note: replay gets came from the simulation-side recovery")
	}
	fmt.Println("the analytic failure was masked by its replica; the simulation failure rolled only the simulation back.")
}

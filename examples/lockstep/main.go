// Lockstep couples a producer and two concurrent consumers through
// DataSpaces-style read/write locks (dspaces_lock_on_write /
// dspaces_lock_on_read) instead of external synchronization: the
// producer brackets each version's multi-piece update with the write
// lock, so no consumer ever observes a torn version — and when one
// consumer crashes while holding a read lock, workflow_restart releases
// it so the workflow is not dammed.
//
// Run with: go run ./examples/lockstep
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"gospaces"
)

func main() {
	global := gospaces.Box3(0, 0, 0, 63, 63, 31)
	stage, err := gospaces.StartStaging(gospaces.StagingConfig{
		Global: global, NServers: 4, Bits: 2, ElemSize: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer stage.Close()

	field := gospaces.NewField("pressure", global, 8)
	dec, err := gospaces.NewDecomposition(global, []int{4, 1, 1})
	if err != nil {
		log.Fatal(err)
	}

	const steps = 10
	var produced atomic.Int64
	var torn atomic.Int64
	var verified atomic.Int64
	var wg sync.WaitGroup

	// Producer: 4 rank-chunks per version under one write lock.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := stage.NewClient("sim/0")
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		for ts := int64(1); ts <= steps; ts++ {
			if err := c.LockOnWrite("pressure"); err != nil {
				log.Fatal(err)
			}
			for r := 0; r < dec.NRanks; r++ {
				box, _ := dec.RankBox(r)
				if err := c.PutWithLog("pressure", ts, box, field.Fill(ts, box)); err != nil {
					log.Fatal(err)
				}
			}
			produced.Store(ts)
			if err := c.UnlockOnWrite("pressure"); err != nil {
				log.Fatal(err)
			}
		}
	}()

	// Two consumers polling under read locks.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := stage.NewClient(fmt.Sprintf("ana/%d", i))
			if err != nil {
				log.Fatal(err)
			}
			defer c.Close()
			seen := int64(0)
			for seen < steps {
				if err := c.LockOnRead("pressure"); err != nil {
					log.Fatal(err)
				}
				if ts := produced.Load(); ts > seen {
					data, _, err := c.GetWithLog("pressure", ts, global)
					if err != nil {
						log.Fatal(err)
					}
					if field.Verify(ts, global, data) >= 0 {
						torn.Add(1)
					} else {
						verified.Add(1)
					}
					seen = ts
				}
				if err := c.UnlockOnRead("pressure"); err != nil {
					log.Fatal(err)
				}
			}
		}(i)
	}
	wg.Wait()

	fmt.Printf("produced %d versions; consumers verified %d reads, observed %d torn reads\n",
		steps, verified.Load(), torn.Load())
	if torn.Load() != 0 {
		log.Fatal("write locks failed to prevent torn reads")
	}

	// A consumer dies holding the read lock; recovery must release it.
	dead, err := stage.NewClient("ana/9")
	if err != nil {
		log.Fatal(err)
	}
	defer dead.Close()
	if err := dead.LockOnRead("pressure"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("a consumer crashed while holding the read lock...")
	if _, err := dead.WorkflowRestart(); err != nil {
		log.Fatal(err)
	}
	// The producer can take the write lock again: nothing is dammed.
	c, err := stage.NewClient("sim/1")
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	if err := c.LockOnWrite("pressure"); err != nil {
		log.Fatal(err)
	}
	if err := c.UnlockOnWrite("pressure"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("workflow_restart released its locks — the workflow was not dammed.")
}

package main

import "testing"

func TestSplitHostPort(t *testing.T) {
	h, p, err := splitHostPort("127.0.0.1:7070")
	if err != nil || h != "127.0.0.1" || p != 7070 {
		t.Fatalf("got %q %d %v", h, p, err)
	}
	h, p, err = splitHostPort(":8080")
	if err != nil || h != "" || p != 8080 {
		t.Fatalf("got %q %d %v", h, p, err)
	}
	for _, bad := range []string{"nohost", "host:", "host:x", "host:-1"} {
		if _, _, err := splitHostPort(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

func TestParseQoS(t *testing.T) {
	cfg, err := parseQoS("lo:staging=4096,wlog=8192,prio=0; hi:prio=2; mid", 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.HighWater != 0.8 {
		t.Fatalf("high water = %v", cfg.HighWater)
	}
	lo := cfg.Tenants["lo"]
	if lo.StagingBytes != 4096 || lo.WlogBytes != 8192 || lo.Priority != 0 {
		t.Fatalf("lo quota = %+v", lo)
	}
	if hi := cfg.Tenants["hi"]; hi.Priority != 2 || hi.StagingBytes != 0 {
		t.Fatalf("hi quota = %+v", hi)
	}
	if _, ok := cfg.Tenants["mid"]; !ok {
		t.Fatal("bare tenant name (unlimited quota) rejected")
	}
	for _, bad := range []string{"", ";", ":staging=1", "lo:staging", "lo:staging=x", "lo:ram=1", "lo:staging=-1"} {
		if _, err := parseQoS(bad, 0); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

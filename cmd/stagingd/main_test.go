package main

import (
	"testing"

	"gospaces"
)

func TestSplitHostPort(t *testing.T) {
	h, p, err := splitHostPort("127.0.0.1:7070")
	if err != nil || h != "127.0.0.1" || p != 7070 {
		t.Fatalf("got %q %d %v", h, p, err)
	}
	h, p, err = splitHostPort(":8080")
	if err != nil || h != "" || p != 8080 {
		t.Fatalf("got %q %d %v", h, p, err)
	}
	for _, bad := range []string{"nohost", "host:", "host:x", "host:-1"} {
		if _, _, err := splitHostPort(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

func TestParseQoS(t *testing.T) {
	cfg, err := parseQoS("lo:staging=4096,wlog=8192,prio=0; hi:prio=2; mid", 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.HighWater != 0.8 {
		t.Fatalf("high water = %v", cfg.HighWater)
	}
	lo := cfg.Tenants["lo"]
	if lo.StagingBytes != 4096 || lo.WlogBytes != 8192 || lo.Priority != 0 {
		t.Fatalf("lo quota = %+v", lo)
	}
	if hi := cfg.Tenants["hi"]; hi.Priority != 2 || hi.StagingBytes != 0 {
		t.Fatalf("hi quota = %+v", hi)
	}
	if _, ok := cfg.Tenants["mid"]; !ok {
		t.Fatal("bare tenant name (unlimited quota) rejected")
	}
	for _, bad := range []string{"", ";", ":staging=1", "lo:staging", "lo:staging=x", "lo:ram=1", "lo:staging=-1"} {
		if _, err := parseQoS(bad, 0); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

func TestApplyTierFlags(t *testing.T) {
	var opts gospaces.ServeOptions
	if err := applyTierFlags(&opts, "/tmp/tier", 0.5, 1<<20); err != nil {
		t.Fatal(err)
	}
	if opts.TierDir != "/tmp/tier" || opts.TierWatermark != 0.5 || opts.MemoryBudget != 1<<20 {
		t.Fatalf("tier opts = %+v", opts)
	}

	// A budget without a tier is plain backpressure — still valid.
	opts = gospaces.ServeOptions{}
	if err := applyTierFlags(&opts, "", 0, 4096); err != nil {
		t.Fatal(err)
	}
	if opts.MemoryBudget != 4096 || opts.TierDir != "" {
		t.Fatalf("budget-only opts = %+v", opts)
	}

	// Zero watermark with a tier defers to the server-side default.
	opts = gospaces.ServeOptions{}
	if err := applyTierFlags(&opts, "/tmp/tier", 0, 4096); err != nil {
		t.Fatal(err)
	}
	if opts.TierWatermark != 0 {
		t.Fatalf("default watermark rewritten: %+v", opts)
	}

	bad := []struct {
		dir       string
		watermark float64
		budget    int64
	}{
		{"/tmp/tier", 0, 0},    // tier without a budget never spills
		{"/tmp/tier", 1.0, 64}, // watermark at/above 1 never triggers
		{"/tmp/tier", -0.2, 64},
		{"", 0.5, 64}, // watermark without a tier
		{"", 0, -1},   // negative budget
	}
	for _, b := range bad {
		opts = gospaces.ServeOptions{}
		if err := applyTierFlags(&opts, b.dir, b.watermark, b.budget); err == nil {
			t.Fatalf("accepted dir=%q watermark=%v budget=%d", b.dir, b.watermark, b.budget)
		}
	}
}

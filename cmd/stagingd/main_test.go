package main

import "testing"

func TestSplitHostPort(t *testing.T) {
	h, p, err := splitHostPort("127.0.0.1:7070")
	if err != nil || h != "127.0.0.1" || p != 7070 {
		t.Fatalf("got %q %d %v", h, p, err)
	}
	h, p, err = splitHostPort(":8080")
	if err != nil || h != "" || p != 8080 {
		t.Fatalf("got %q %d %v", h, p, err)
	}
	for _, bad := range []string{"nohost", "host:", "host:x", "host:-1"} {
		if _, _, err := splitHostPort(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

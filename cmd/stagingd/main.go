// Command stagingd runs one gospaces staging server over TCP.
//
// A staging area is a group of stagingd processes; clients (dsctl or
// applications using gospaces.Connect) are configured with the full
// ordered address list plus the shared domain geometry.
//
// Usage:
//
//	stagingd -addr :7070 -id 0          # one server
//	stagingd -addr :7070 -servers 4     # a whole group, ports 7070..7073
//	stagingd -addr :7080 -id 4 -spare   # a warm spare awaiting promotion
//
// With -wlog-replicas k each server ships its event log to its k
// membership successors; group mode wires the membership itself, while
// single-server mode needs -peers with the full ordered address list.
//
// Each server also hosts its share of the recovery-leadership state:
// a lease record granted to whichever supervisor wins election, the
// fencing high-water mark, and the journaled promotion intents.
// Redundant supervisors may supervise one group; `dsctl leader` shows
// the current holder, token, and promotion backlog.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"gospaces"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address (host:port); with -servers > 1 the port is the base")
	id := flag.Int("id", 0, "server id within the staging group (single-server mode)")
	servers := flag.Int("servers", 1, "launch a whole group of n servers on consecutive ports")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for the fault-injection schedule")
	chaosDelayProb := flag.Float64("chaos-delay-prob", 0, "probability a handled request is delayed (fault injection)")
	chaosDelay := flag.Duration("chaos-delay", 20*time.Millisecond, "injected per-request delay")
	chaosHangProb := flag.Float64("chaos-hang-prob", 0, "probability a handled request hangs (client sees a dropped response)")
	chaosHang := flag.Duration("chaos-hang", 30*time.Second, "injected hang duration; set beyond client deadlines")
	spare := flag.Bool("spare", false, "start as a warm spare outside the membership, awaiting promotion by a recovery supervisor")
	wlogReplicas := flag.Int("wlog-replicas", 0, "replicate the event log (and staged payloads) to this many membership successors; 0 disables")
	peers := flag.String("peers", "", "ordered comma-separated address list of the whole staging group (single-server mode); required for -wlog-replicas so the server can find its successors")
	qosTenants := flag.String("qos-tenants", "", "enable admission control with per-tenant quotas: semicolon-separated specs 'tenant:staging=BYTES,wlog=BYTES,prio=N' (omitted limits are unlimited), e.g. 'lo:staging=4096,prio=0;hi:prio=2'")
	qosHighWater := flag.Float64("qos-highwater", 0, "staging-RAM fraction above which low-priority tenants are shed (0 = default 0.7; needs -qos-tenants)")
	tierDir := flag.String("tier-dir", "", "attach a PFS cold tier backed by this directory: cold logged versions demote to it under budget pressure instead of shedding the put; needs -mem-budget")
	tierWatermark := flag.Float64("tier-watermark", 0, "budget fraction above which puts spill cold versions to the tier (0 = QoS spill water when QoS is on, else the package default; needs -tier-dir)")
	memBudget := flag.Int64("mem-budget", 0, "cap resident staged bytes per server (0 = unlimited)")
	flag.Parse()

	opts := gospaces.ServeOptions{
		ChaosSeed:      *chaosSeed,
		ChaosDelayProb: *chaosDelayProb,
		ChaosDelay:     *chaosDelay,
		ChaosHangProb:  *chaosHangProb,
		ChaosHang:      *chaosHang,
		Spare:          *spare,
		WlogReplicas:   *wlogReplicas,
	}
	if *qosTenants != "" {
		qcfg, err := parseQoS(*qosTenants, *qosHighWater)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stagingd: %v\n", err)
			os.Exit(1)
		}
		opts.QoS = qcfg
	}
	if err := applyTierFlags(&opts, *tierDir, *tierWatermark, *memBudget); err != nil {
		fmt.Fprintf(os.Stderr, "stagingd: %v\n", err)
		os.Exit(1)
	}
	if *chaosDelayProb > 0 || *chaosHangProb > 0 {
		fmt.Printf("stagingd: CHAOS MODE: delay p=%.2f (%v), hang p=%.2f (%v), seed %d\n",
			*chaosDelayProb, *chaosDelay, *chaosHangProb, *chaosHang, *chaosSeed)
	}

	var running []*gospaces.StagingServer
	if *servers <= 1 {
		srv, err := gospaces.ServeWithOptions(*addr, *id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stagingd: %v\n", err)
			os.Exit(1)
		}
		role := ""
		if *spare {
			role = " (spare)"
		}
		if *peers != "" && !*spare {
			srv.SetMembership(1, strings.Split(*peers, ","))
		}
		fmt.Printf("stagingd: server %d listening on %s%s\n", *id, srv.Addr(), role)
		running = append(running, srv)
	} else {
		host, base, err := splitHostPort(*addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stagingd: %v\n", err)
			os.Exit(1)
		}
		var addrs []string
		for i := 0; i < *servers; i++ {
			srv, err := gospaces.ServeWithOptions(fmt.Sprintf("%s:%d", host, base+i), i, opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "stagingd: server %d: %v\n", i, err)
				os.Exit(1)
			}
			running = append(running, srv)
			addrs = append(addrs, srv.Addr())
		}
		// Replication successors are resolved through the membership
		// view, which only exists once every member is listening.
		for _, srv := range running {
			srv.SetMembership(1, addrs)
		}
		fmt.Printf("stagingd: group of %d servers up\n", *servers)
		fmt.Printf("stagingd: dsctl -servers %s\n", strings.Join(addrs, ","))
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("stagingd: shutting down")
	for _, srv := range running {
		if err := srv.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "stagingd: close: %v\n", err)
			os.Exit(1)
		}
	}
}

// parseQoS builds the admission-control config from the -qos-tenants
// spec: semicolon-separated 'tenant:staging=BYTES,wlog=BYTES,prio=N'
// entries where each limit is optional (absent means unlimited).
func parseQoS(spec string, highWater float64) (*gospaces.QoSConfig, error) {
	cfg := &gospaces.QoSConfig{Tenants: map[string]gospaces.QoSQuota{}, HighWater: highWater}
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, limits, _ := strings.Cut(entry, ":")
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("qos spec %q: empty tenant name", entry)
		}
		var q gospaces.QoSQuota
		if limits != "" {
			for _, kv := range strings.Split(limits, ",") {
				key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
				if !ok {
					return nil, fmt.Errorf("qos spec %q: limit %q not key=value", entry, kv)
				}
				n, err := strconv.ParseInt(val, 10, 64)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("qos spec %q: bad value %q", entry, val)
				}
				switch key {
				case "staging":
					q.StagingBytes = n
				case "wlog":
					q.WlogBytes = n
				case "prio":
					q.Priority = int(n)
				default:
					return nil, fmt.Errorf("qos spec %q: unknown limit %q (want staging/wlog/prio)", entry, key)
				}
			}
		}
		cfg.Tenants[name] = q
	}
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("qos spec %q names no tenants", spec)
	}
	return cfg, nil
}

// applyTierFlags validates and installs the cold-tier flags: the tier
// needs a directory and a memory budget (otherwise nothing ever spills),
// and the watermark is a budget fraction strictly inside (0, 1).
func applyTierFlags(opts *gospaces.ServeOptions, dir string, watermark float64, budget int64) error {
	if budget < 0 {
		return fmt.Errorf("-mem-budget %d is negative", budget)
	}
	if watermark < 0 || watermark >= 1 {
		if watermark != 0 {
			return fmt.Errorf("-tier-watermark %v outside (0, 1)", watermark)
		}
	}
	if dir == "" {
		if watermark != 0 {
			return fmt.Errorf("-tier-watermark needs -tier-dir")
		}
		opts.MemoryBudget = budget
		return nil
	}
	if budget == 0 {
		return fmt.Errorf("-tier-dir needs -mem-budget: without a budget nothing ever spills")
	}
	opts.TierDir = dir
	opts.TierWatermark = watermark
	opts.MemoryBudget = budget
	return nil
}

// splitHostPort parses "host:port" with a numeric port (host may be
// empty for all interfaces).
func splitHostPort(addr string) (string, int, error) {
	i := strings.LastIndex(addr, ":")
	if i < 0 {
		return "", 0, fmt.Errorf("address %q missing port", addr)
	}
	port, err := strconv.Atoi(addr[i+1:])
	if err != nil || port <= 0 {
		return "", 0, fmt.Errorf("bad port in %q", addr)
	}
	return addr[:i], port, nil
}

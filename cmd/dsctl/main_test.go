package main

import (
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"gospaces"
)

func TestParseDomain(t *testing.T) {
	b, err := parseDomain("512x512x256")
	if err != nil {
		t.Fatal(err)
	}
	if b.Volume() != 512*512*256 {
		t.Fatalf("volume = %d", b.Volume())
	}
	for _, bad := range []string{"512x512", "ax2x3", "0x1x1", "1x2x3x4", ""} {
		if _, err := parseDomain(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

func TestNameVersion(t *testing.T) {
	n, v, err := nameVersion([]string{"put", "field", "7"})
	if err != nil || n != "field" || v != 7 {
		t.Fatalf("got %s %d %v", n, v, err)
	}
	if _, _, err := nameVersion([]string{"put", "field"}); err == nil {
		t.Fatal("short args accepted")
	}
	if _, _, err := nameVersion([]string{"put", "field", "x"}); err == nil {
		t.Fatal("bad version accepted")
	}
}

// TestEndToEndAgainstLiveServers drives the dsctl command paths against
// real TCP staging servers.
func TestEndToEndAgainstLiveServers(t *testing.T) {
	var addrs []string
	for i := 0; i < 2; i++ {
		srv, err := gospaces.Serve("127.0.0.1:0", i)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		addrs = append(addrs, srv.Addr())
	}
	servers := strings.Join(addrs, ",")
	for _, cmd := range [][]string{
		{"put", "f", "1"},
		{"get", "f", "1"},
		{"versions", "f"},
		{"check"},
		{"restart"},
		{"trace", "5"},
		{"stats"},
		{"health"},
		{"tier"}, // no tier attached: rows print "tier disabled"
		{"scrub"},
	} {
		if err := run(servers, "32x32x16", 8, 2, "dsctl/0", gospaces.DefaultDialOptions(), cmd); err != nil {
			t.Fatalf("%v: %v", cmd, err)
		}
	}
	if err := run(servers, "32x32x16", 8, 2, "dsctl/0", gospaces.DefaultDialOptions(), []string{"bogus"}); err == nil {
		t.Fatal("bogus command accepted")
	}
	if err := run(servers, "32x32x16", 8, 2, "dsctl/0", gospaces.DefaultDialOptions(), nil); err == nil {
		t.Fatal("missing command accepted")
	}
	if err := run(servers, "32x32x16", 8, 2, "dsctl/0", gospaces.DefaultDialOptions(), []string{"trace", "zz"}); err == nil {
		t.Fatal("bad trace limit accepted")
	}
}

// traceCmd validates its subcommand arguments before touching the
// client, so a nil client is safe here.
func TestTraceCmdArgErrors(t *testing.T) {
	global := gospaces.Box3(0, 0, 0, 3, 3, 0)
	cases := [][]string{
		{"dump"},           // missing file
		{"dump", "f", "x"}, // bad limit
		{"replay"},         // missing file
		{"nonsense"},       // neither subcommand nor limit
	}
	for _, args := range cases {
		if err := traceCmd(nil, global, 4, 1, 1, args); err == nil {
			t.Fatalf("%v accepted", args)
		}
	}
}

// TestTraceDumpReplayRoundTrip drives a workload through the run
// dispatcher against live TCP servers, exports the group's merged
// trace with `trace dump`, checks the artifact, and re-executes it
// with `trace replay`.
func TestTraceDumpReplayRoundTrip(t *testing.T) {
	var addrs []string
	for i := 0; i < 2; i++ {
		srv, err := gospaces.Serve("127.0.0.1:0", i)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		addrs = append(addrs, srv.Addr())
	}
	servers := strings.Join(addrs, ",")
	const domain, elem, bits = "8x8x2", 4, 1
	do := func(args ...string) error {
		return run(servers, domain, elem, bits, "dsctl/0", gospaces.DefaultDialOptions(), args)
	}

	for _, cmd := range [][]string{
		{"put", "rho", "1"},
		{"put", "rho", "2"},
		{"get", "rho", "2"},
		{"check"},
	} {
		if err := do(cmd...); err != nil {
			t.Fatalf("%v: %v", cmd, err)
		}
	}

	path := filepath.Join(t.TempDir(), "dump.trace")
	if err := do("trace", "dump", path); err != nil {
		t.Fatalf("trace dump: %v", err)
	}
	h, events, err := gospaces.ReadTraceFile(path)
	if err != nil {
		t.Fatalf("dumped trace unreadable: %v", err)
	}
	if h.Label != "dsctl dump" || h.Servers != 2 || h.ElemSize != elem || h.DimX != 8 || h.DimZ != 2 {
		t.Fatalf("dump header: %+v", h)
	}
	puts, gets := 0, 0
	for i, ev := range events {
		if ev.LC != uint64(i) {
			t.Fatalf("event %d carries lc=%d", i, ev.LC)
		}
		switch ev.Kind {
		case gospaces.TraceEvPut:
			if ev.Name != "rho" || !ev.Logged {
				t.Fatalf("unexpected put event: %+v", ev)
			}
			puts++
		case gospaces.TraceEvGet:
			gets++
		}
	}
	// Both puts shard across both servers; the dump must collapse each
	// to one event, not one per touched server.
	if puts != 2 || gets == 0 {
		t.Fatalf("dump has %d puts, %d gets: %v", puts, gets, events)
	}

	if err := do("trace", "replay", path); err != nil {
		t.Fatalf("trace replay: %v", err)
	}

	if err := do("trace", "replay", filepath.Join(t.TempDir(), "missing.trace")); err == nil {
		t.Fatal("replay of missing file accepted")
	}
}

// TestTierCommand drives the tier and scrub probes against a live TCP
// server with a directory-backed cold tier and a budget tight enough
// that staged history spills to disk.
func TestTierCommand(t *testing.T) {
	const elem, budget = 8, 300_000 // one 32x32x16 version is 131072 bytes
	srv, err := gospaces.ServeWithOptions("127.0.0.1:0", 0, gospaces.ServeOptions{
		TierDir:      t.TempDir(),
		MemoryBudget: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	servers := srv.Addr()
	opts := gospaces.DefaultDialOptions()
	for v := 1; v <= 4; v++ {
		cmd := []string{"put", "f", strconv.Itoa(v)}
		if err := run(servers, "32x32x16", elem, 2, "dsctl/0", opts, cmd); err != nil {
			t.Fatalf("%v: %v", cmd, err)
		}
	}
	views := gospaces.ProbeTier([]string{servers}, opts)
	if !views[0].Alive || !views[0].Enabled {
		t.Fatalf("tier view = %+v", views[0])
	}
	if views[0].Spills == 0 || views[0].Entries == 0 {
		t.Fatalf("budget pressure spilled nothing: %+v", views[0])
	}
	// Scrub while the cold versions are still on disk: a clean tier
	// CRC-checks every generation and loses nothing.
	scrubs := gospaces.ScrubTier([]string{servers}, opts)
	if !scrubs[0].Alive || !scrubs[0].Enabled || scrubs[0].Checked == 0 {
		t.Fatalf("scrub view = %+v", scrubs[0])
	}
	if scrubs[0].Lost != 0 || scrubs[0].Degraded {
		t.Fatalf("clean tier scrub reported damage: %+v", scrubs[0])
	}
	// Spilled versions still read back byte-exact (promote-on-get).
	for v := 1; v <= 4; v++ {
		cmd := []string{"get", "f", strconv.Itoa(v)}
		if err := run(servers, "32x32x16", elem, 2, "dsctl/0", opts, cmd); err != nil {
			t.Fatalf("%v: %v", cmd, err)
		}
	}
	for _, cmd := range [][]string{{"tier"}, {"scrub"}} {
		if err := run(servers, "32x32x16", elem, 2, "dsctl/0", opts, cmd); err != nil {
			t.Fatalf("%v: %v", cmd, err)
		}
	}
}

// TestHealthCommand probes a live member, a live spare, and a dead
// address: the live rows report role and the dead one turns the
// command into an error without aborting the probe.
func TestHealthCommand(t *testing.T) {
	member, err := gospaces.Serve("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer member.Close()
	spare, err := gospaces.ServeWithOptions("127.0.0.1:0", 1, gospaces.ServeOptions{Spare: true})
	if err != nil {
		t.Fatal(err)
	}
	defer spare.Close()

	opts := gospaces.DefaultDialOptions()
	opts.DialTimeout = time.Second
	opts.Retry.MaxAttempts = 1

	if err := healthCmd([]string{member.Addr(), spare.Addr()}, opts); err != nil {
		t.Fatalf("all-alive health failed: %v", err)
	}

	hs := gospaces.ProbeHealth([]string{member.Addr(), spare.Addr()}, opts)
	if !hs[0].Alive || hs[0].Spare {
		t.Fatalf("member health = %+v", hs[0])
	}
	if !hs[1].Alive || !hs[1].Spare || hs[1].ID != 1 {
		t.Fatalf("spare health = %+v", hs[1])
	}

	dead, err := gospaces.Serve("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr()
	dead.Close()
	if err := healthCmd([]string{member.Addr(), deadAddr}, opts); err == nil {
		t.Fatal("dead server not reported")
	}
	hs = gospaces.ProbeHealth([]string{deadAddr}, opts)
	if hs[0].Alive || hs[0].Err == "" {
		t.Fatalf("dead health = %+v", hs[0])
	}
}

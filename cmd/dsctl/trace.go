package main

import (
	"fmt"
	"sort"
	"strconv"

	"gospaces"
)

// traceCmd dispatches the trace subcommands:
//
//	trace [n]               render the servers' recent protocol records
//	trace dump <file> [n]   export the merged records as a trace file
//	trace replay <file>     re-issue a trace file's workload operations
//
// args holds everything after "trace".
func traceCmd(client *gospaces.Client, global gospaces.BBox, elem, bits, servers int, args []string) error {
	if len(args) > 0 {
		switch args[0] {
		case "dump":
			if len(args) < 2 {
				return fmt.Errorf("trace dump needs <file> [n]")
			}
			limit := 0
			if len(args) > 2 {
				n, err := strconv.Atoi(args[2])
				if err != nil {
					return fmt.Errorf("bad limit %q", args[2])
				}
				limit = n
			}
			return traceDump(client, global, elem, bits, servers, args[1], limit)
		case "replay":
			if len(args) < 2 {
				return fmt.Errorf("trace replay needs <file>")
			}
			return traceReplay(client, global, elem, args[1])
		}
	}
	limit := 0
	if len(args) > 0 {
		n, err := strconv.Atoi(args[0])
		if err != nil {
			return fmt.Errorf("bad limit %q", args[0])
		}
		limit = n
	}
	records, err := client.Trace(limit)
	if err != nil {
		return err
	}
	for _, r := range records {
		fmt.Println(r)
	}
	return nil
}

// traceDump exports the group's recent activity as a durable trace
// file. Each server's observability ring is fetched raw, the rings are
// merged on wall-clock order, and sharded operations — which leave one
// record per touched server — are collapsed to a single event. The
// result replays with `dsctl trace replay` (synthetic payloads seeded
// by version, exactly like `dsctl put`).
func traceDump(client *gospaces.Client, global gospaces.BBox, elem, bits, servers int, path string, limit int) error {
	per, err := client.TraceRecords(limit)
	if err != nil {
		return err
	}
	var recs []gospaces.TraceRecord
	for _, rs := range per {
		recs = append(recs, rs...)
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].At.Before(recs[j].At) })
	events := make([]gospaces.TraceEvent, 0, len(recs))
	lastKey := ""
	for _, r := range recs {
		// A sharded put/get lands one record per server within the same
		// client call; after the time sort those duplicates are adjacent.
		key := fmt.Sprintf("%d|%s|%s|%d|%s", r.Op, r.App, r.Name, r.Version, r.Detail)
		if key == lastKey {
			continue
		}
		lastKey = key
		ev := gospaces.TraceEventFromRecord(r)
		ev.LC = uint64(len(events))
		events = append(events, ev)
	}
	h := gospaces.TraceHeader{
		Label:    "dsctl dump",
		Servers:  servers,
		Bits:     bits,
		ElemSize: elem,
		DimX:     global.Max[0] - global.Min[0] + 1,
		DimY:     global.Max[1] - global.Min[1] + 1,
		DimZ:     global.Max[2] - global.Min[2] + 1,
	}
	if err := gospaces.WriteTraceFile(path, h, events); err != nil {
		return err
	}
	fmt.Printf("dumped %d events from %d servers to %s\n", len(events), len(per), path)
	return nil
}

// traceReplay re-issues a trace file's workload operations through the
// connected client: puts stage the deterministic synthetic field for
// the recorded version (dsctl put semantics), gets verify every byte
// against it, and checkpoint/restart/lock events are forwarded
// verbatim. Fault events and notes are skipped — replaying a soak
// trace with its fault schedule is wfbench's job (`wfbench -exp soak
// -replay`). All operations run under dsctl's own -app identity.
func traceReplay(client *gospaces.Client, global gospaces.BBox, elem int, path string) error {
	h, events, err := gospaces.ReadTraceFile(path)
	if err != nil {
		return err
	}
	// A trace recorded elsewhere knows its own domain and element size;
	// prefer those so payloads regenerate at the recorded geometry.
	if h.DimX > 0 && h.DimY > 0 && h.DimZ > 0 {
		global = gospaces.Box3(0, 0, 0, h.DimX-1, h.DimY-1, h.DimZ-1)
	}
	if h.ElemSize > 0 {
		elem = h.ElemSize
	}
	fmt.Printf("replaying %s: %q, %d events\n", path, h.Label, len(events))
	puts, gets, other, skipped := 0, 0, 0, 0
	for _, ev := range events {
		switch ev.Kind {
		case gospaces.TraceEvPut:
			field := gospaces.NewField(ev.Name, global, elem)
			data := field.Fill(ev.Version, global)
			if ev.Logged {
				err = client.PutWithLog(ev.Name, ev.Version, global, data)
			} else {
				err = client.Put(ev.Name, ev.Version, global, data)
			}
			puts++
		case gospaces.TraceEvGet:
			var data []byte
			var v int64
			if ev.Logged {
				data, v, err = client.GetWithLog(ev.Name, ev.Version, global)
			} else {
				data, v, err = client.Get(ev.Name, ev.Version, global)
			}
			if err == nil {
				field := gospaces.NewField(ev.Name, global, elem)
				if idx := field.Verify(v, global, data); idx >= 0 {
					err = fmt.Errorf("%s v%d corrupt at byte %d", ev.Name, v, idx)
				}
			}
			gets++
		case gospaces.TraceEvCheckpoint:
			_, err = client.WorkflowCheck()
			other++
		case gospaces.TraceEvRestart:
			_, err = client.WorkflowRestart()
			other++
		case gospaces.TraceEvLock:
			err = client.LockOnWrite(ev.Name)
			other++
		case gospaces.TraceEvUnlock:
			err = client.UnlockOnWrite(ev.Name)
			other++
		case gospaces.TraceEvRLock:
			err = client.LockOnRead(ev.Name)
			other++
		case gospaces.TraceEvRUnlock:
			err = client.UnlockOnRead(ev.Name)
			other++
		default:
			skipped++
		}
		if err != nil {
			return fmt.Errorf("replay lc=%d (%v %s v%d): %w", ev.LC, ev.Kind, ev.Name, ev.Version, err)
		}
	}
	fmt.Printf("replayed %d puts, %d gets, %d control ops (%d skipped), all verified\n",
		puts, gets, other, skipped)
	return nil
}

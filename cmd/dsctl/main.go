// Command dsctl is a client tool for a running staging group: it puts
// and gets synthetic field data, lists staged versions, and dumps
// server accounting — handy for poking at stagingd deployments.
//
// Usage:
//
//	dsctl -servers host:7070,host:7071 -domain 64x64x32 [-elem 8] [-bits 2] <command>
//
// Commands:
//
//	put  <name> <version>   stage the deterministic synthetic field
//	get  <name> <version>   read it back and verify every byte
//	versions <name>         list staged versions
//	check                   send a checkpoint event (workflow_check)
//	trace [n]               render the servers' recent protocol trace
//	trace dump <file> [n]   merge the servers' recent records and
//	                        persist them as a durable trace file
//	trace replay <file>     re-issue a trace file's workload operations
//	                        against the connected group, verifying
//	                        every byte a get returns
//	restart                 switch to replay mode (workflow_restart)
//	stats                   print aggregated staging statistics
//	health                  probe each server's liveness, membership
//	                        epoch, spare status, and rebuild counters
//	leader                  probe each server's recovery-leadership view:
//	                        lease holder, fencing token, lease expiry,
//	                        and the journaled promotion backlog
//	qos                     probe each server's admission-control view:
//	                        per-tenant quota usage, admit/shed counters,
//	                        lane queue depths, and replication lag
//	tier                    probe each server's cold-tier view: spilled
//	                        entries, spill/promote traffic, scrub and
//	                        degradation state, and the incremental
//	                        replication (delta vs snapshot) counters
//	scrub                   trigger a CRC scrub pass over each server's
//	                        spilled records, healing corrupt generations
//	                        from their twins and re-arming degraded tiers
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"gospaces"
)

func main() {
	servers := flag.String("servers", "127.0.0.1:7070", "comma-separated staging server addresses, in id order")
	domainFlag := flag.String("domain", "64x64x32", "global domain extents, e.g. 512x512x256")
	elem := flag.Int("elem", 8, "element size in bytes")
	bits := flag.Int("bits", 2, "DHT refinement bits")
	app := flag.String("app", "dsctl/0", "client identity (component/rank)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-call RPC deadline (0 = none)")
	dialTimeout := flag.Duration("dial-timeout", 5*time.Second, "connection-establishment deadline (0 = none)")
	retries := flag.Int("retries", 4, "RPC attempts per call, including the first")
	retryBase := flag.Duration("retry-base", 50*time.Millisecond, "initial retry backoff (doubles per retry, jittered)")
	flag.Parse()

	opts := gospaces.DefaultDialOptions()
	opts.CallTimeout = *timeout
	opts.DialTimeout = *dialTimeout
	opts.Retry.MaxAttempts = *retries
	opts.Retry.BaseDelay = *retryBase

	if err := run(*servers, *domainFlag, *elem, *bits, *app, opts, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "dsctl: %v\n", err)
		os.Exit(1)
	}
}

func run(servers, domainStr string, elem, bits int, app string, opts gospaces.DialOptions, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("missing command (put/get/versions/check/restart/stats/health/leader/qos/tier/scrub)")
	}
	global, err := parseDomain(domainStr)
	if err != nil {
		return err
	}
	addrs := strings.Split(servers, ",")
	// health probes each address directly — dead servers must show up
	// as rows, not abort pool construction.
	if args[0] == "health" {
		return healthCmd(addrs, opts)
	}
	if args[0] == "leader" {
		return leaderCmd(addrs, opts)
	}
	if args[0] == "qos" {
		return qosCmd(addrs, opts)
	}
	if args[0] == "tier" {
		return tierCmd(addrs, opts)
	}
	if args[0] == "scrub" {
		return scrubCmd(addrs, opts)
	}
	pool, err := gospaces.ConnectWithOptions(addrs, gospaces.StagingConfig{
		Global:   global,
		NServers: len(addrs),
		Bits:     bits,
		ElemSize: elem,
	}, opts)
	if err != nil {
		return err
	}
	client, err := pool.NewClient(app)
	if err != nil {
		return err
	}
	defer client.Close()

	switch args[0] {
	case "put":
		name, version, err := nameVersion(args)
		if err != nil {
			return err
		}
		field := gospaces.NewField(name, global, elem)
		if err := client.PutWithLog(name, version, global, field.Fill(version, global)); err != nil {
			return err
		}
		fmt.Printf("staged %s v%d (%d bytes)\n", name, version, global.Volume()*int64(elem))
	case "get":
		name, version, err := nameVersion(args)
		if err != nil {
			return err
		}
		data, v, err := client.GetWithLog(name, version, global)
		if err != nil {
			return err
		}
		field := gospaces.NewField(name, global, elem)
		if idx := field.Verify(v, global, data); idx >= 0 {
			return fmt.Errorf("%s v%d corrupt at byte %d", name, v, idx)
		}
		fmt.Printf("read %s v%d (%d bytes), verified\n", name, v, len(data))
	case "versions":
		if len(args) < 2 {
			return fmt.Errorf("versions needs a name")
		}
		vs, err := client.Versions(args[1])
		if err != nil {
			return err
		}
		fmt.Println(vs)
	case "check":
		freed, err := client.WorkflowCheck()
		if err != nil {
			return err
		}
		fmt.Printf("checkpoint event sent; GC freed %d bytes\n", freed)
	case "restart":
		n, err := client.WorkflowRestart()
		if err != nil {
			return err
		}
		fmt.Printf("recovery event sent; %d events will replay\n", n)
	case "trace":
		return traceCmd(client, global, elem, bits, len(addrs), args[1:])
	case "stats":
		st, err := client.Stats()
		if err != nil {
			return err
		}
		fmt.Printf("store bytes:      %d\n", st.StoreBytes)
		fmt.Printf("log meta bytes:   %d\n", st.LogMetaBytes)
		fmt.Printf("objects:          %d\n", st.Objects)
		fmt.Printf("puts/gets:        %d/%d\n", st.Puts, st.Gets)
		fmt.Printf("suppressed puts:  %d\n", st.SuppressedPuts)
		fmt.Printf("replay gets:      %d\n", st.ReplayGets)
		fmt.Printf("gc freed bytes:   %d\n", st.GCFreedBytes)
		fmt.Printf("repl seq:         %d\n", st.ReplSeq)
		fmt.Printf("replica slots:    %d\n", st.ReplicaSlots)
		fmt.Printf("replica bytes:    %d\n", st.ReplicaBytes)
		fmt.Printf("replica records:  %d\n", st.ReplicaRecords)
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
	return nil
}

func healthCmd(addrs []string, opts gospaces.DialOptions) error {
	dead := 0
	for _, h := range gospaces.ProbeHealth(addrs, opts) {
		if !h.Alive {
			dead++
			fmt.Printf("%-22s DEAD  %s\n", h.Addr, h.Err)
			continue
		}
		role := "member"
		if h.Spare {
			role = "spare"
		}
		fmt.Printf("%-22s ALIVE id=%d epoch=%d role=%s shard_bytes=%d rebuilt_shards=%d rebuilt_bytes=%d\n",
			h.Addr, h.ID, h.Epoch, role, h.ShardBytes, h.RebuiltShards, h.RebuiltBytes)
	}
	if dead > 0 {
		return fmt.Errorf("%d of %d servers unreachable", dead, len(addrs))
	}
	return nil
}

func leaderCmd(addrs []string, opts gospaces.DialOptions) error {
	holders := map[string]int{}
	backlog := 0
	for _, v := range gospaces.ProbeLeader(addrs, opts) {
		if v.Err != "" {
			fmt.Printf("%-22s DEAD  %s\n", v.Addr, v.Err)
			continue
		}
		holder := v.Holder
		if holder == "" {
			holder = "<none>"
		} else {
			holders[holder]++
		}
		fmt.Printf("%-22s holder=%-20s token=%d fence=%d expires_in=%v\n",
			v.Addr, holder, v.Token, v.Fence, v.ExpiresIn.Round(time.Millisecond))
		for _, in := range v.Intents {
			backlog++
			fmt.Printf("%22s   intent: slot %d (%s dead) -> spare %s under token %d\n",
				"", in.Slot, in.DeadAddr, in.Spare, in.Token)
		}
	}
	switch len(holders) {
	case 0:
		fmt.Println("no lease held (no supervisor, or all leases expired)")
	case 1:
		for h, n := range holders {
			fmt.Printf("leader: %s (granted by %d of %d servers)\n", h, n, len(addrs))
		}
	default:
		fmt.Printf("WARNING: %d distinct lease holders reported — election in progress\n", len(holders))
	}
	if backlog > 0 {
		fmt.Printf("%d journaled promotion(s) outstanding\n", backlog)
	}
	return nil
}

func qosCmd(addrs []string, opts gospaces.DialOptions) error {
	dead := 0
	for _, v := range gospaces.ProbeQoS(addrs, opts) {
		if !v.Alive {
			dead++
			fmt.Printf("%-22s DEAD  %s\n", v.Addr, v.Err)
			continue
		}
		if !v.Enabled {
			fmt.Printf("%-22s id=%d qos disabled\n", v.Addr, v.ID)
			continue
		}
		fmt.Printf("%-22s id=%d admits=%d sheds=%d lanes fg=%d rec=%d repl_lag=%d\n",
			v.Addr, v.ID, v.Admits, v.Sheds, v.QueueForeground, v.QueueRecovery, v.ReplLag)
		for _, t := range v.Tenants {
			fmt.Printf("%22s   tenant %-12s prio=%d staging=%s wlog=%s admits=%d sheds=%d\n",
				"", t.Tenant, t.Priority,
				quotaUse(t.StoreBytes, t.StagingQuota), quotaUse(t.WlogBytes, t.WlogQuota),
				t.Admits, t.Sheds)
		}
	}
	if dead > 0 {
		return fmt.Errorf("%d of %d servers unreachable", dead, len(addrs))
	}
	return nil
}

func tierCmd(addrs []string, opts gospaces.DialOptions) error {
	dead := 0
	for _, v := range gospaces.ProbeTier(addrs, opts) {
		if !v.Alive {
			dead++
			fmt.Printf("%-22s DEAD  %s\n", v.Addr, v.Err)
			continue
		}
		if !v.Enabled {
			fmt.Printf("%-22s id=%d tier disabled\n", v.Addr, v.ID)
			continue
		}
		state := "ok"
		if v.Degraded {
			state = "DEGRADED (RAM-only)"
		}
		fmt.Printf("%-22s id=%d %s entries=%d bytes=%d\n", v.Addr, v.ID, state, v.Entries, v.Bytes)
		fmt.Printf("%22s   spills=%d (%d bytes) promotes=%d (%d bytes)\n",
			"", v.Spills, v.SpillBytes, v.Promotes, v.PromoteBytes)
		fmt.Printf("%22s   scrub checked=%d healed=%d lost=%d degraded_events=%d\n",
			"", v.ScrubChecked, v.ScrubHealed, v.ScrubLost, v.DegradedEvents)
		fmt.Printf("%22s   repl deltas=%d (%d bytes) snapshots=%d (%d bytes)\n",
			"", v.DeltaResyncs, v.DeltaBytes, v.SnapshotsSent, v.SnapshotBytes)
	}
	if dead > 0 {
		return fmt.Errorf("%d of %d servers unreachable", dead, len(addrs))
	}
	return nil
}

func scrubCmd(addrs []string, opts gospaces.DialOptions) error {
	dead, lost := 0, int64(0)
	for _, v := range gospaces.ScrubTier(addrs, opts) {
		if !v.Alive {
			dead++
			fmt.Printf("%-22s DEAD  %s\n", v.Addr, v.Err)
			continue
		}
		if !v.Enabled {
			fmt.Printf("%-22s id=%d tier disabled\n", v.Addr, v.ID)
			continue
		}
		state := "ok"
		if v.Degraded {
			state = "DEGRADED (RAM-only)"
		}
		lost += v.Lost
		fmt.Printf("%-22s id=%d %s checked=%d healed=%d lost=%d\n",
			v.Addr, v.ID, state, v.Checked, v.Healed, v.Lost)
	}
	if dead > 0 {
		return fmt.Errorf("%d of %d servers unreachable", dead, len(addrs))
	}
	if lost > 0 {
		return fmt.Errorf("scrub lost %d entries to double corruption", lost)
	}
	return nil
}

// quotaUse renders used/quota, with "inf" for an unlimited quota.
func quotaUse(used, quota int64) string {
	if quota <= 0 {
		return fmt.Sprintf("%d/inf", used)
	}
	return fmt.Sprintf("%d/%d", used, quota)
}

func nameVersion(args []string) (string, int64, error) {
	if len(args) < 3 {
		return "", 0, fmt.Errorf("%s needs <name> <version>", args[0])
	}
	v, err := strconv.ParseInt(args[2], 10, 64)
	if err != nil {
		return "", 0, fmt.Errorf("bad version %q: %v", args[2], err)
	}
	return args[1], v, nil
}

func parseDomain(s string) (gospaces.BBox, error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) != 3 {
		return gospaces.BBox{}, fmt.Errorf("domain must be XxYxZ, got %q", s)
	}
	var ext [3]int64
	for i, p := range parts {
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil || v < 1 {
			return gospaces.BBox{}, fmt.Errorf("bad extent %q", p)
		}
		ext[i] = v
	}
	return gospaces.Box3(0, 0, 0, ext[0]-1, ext[1]-1, ext[2]-1), nil
}

package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"gospaces/internal/ec"
	"gospaces/internal/staging"
	"gospaces/internal/transport"
)

// transportRow is one BENCH_transport.json entry.
type transportRow struct {
	Bench        string  `json:"bench"`
	Mode         string  `json:"mode"`
	PayloadBytes int     `json:"payload_bytes"`
	Callers      int     `json:"callers,omitempty"`
	Ops          int     `json:"ops"`
	Seconds      float64 `json:"seconds"`
	MBPerSec     float64 `json:"mb_per_s"`
	OpsPerSec    float64 `json:"ops_per_s"`
}

// transportExp measures the staging data plane end to end over TCP
// loopback: the serialized seed transport (gob both ways, one call in
// flight per connection) against the multiplexed binary fast path, for
// real protocol messages (ShardPutReq) across payload sizes and caller
// counts. It also times the erasure-coding encode kernel serial vs
// chunk-parallel, and writes every measurement to outPath as JSON.
func transportExp(outPath string) error {
	sizes := []int{4 << 10, 256 << 10, 4 << 20}
	callers := []int{1, 8, 64}
	var rows []transportRow

	fmt.Println("== transport: serialized seed vs multiplexed fast path (TCP loopback) ==")
	for _, size := range sizes {
		for _, nc := range callers {
			var serialized, mux transportRow
			for _, mode := range []string{"serialized", "mux"} {
				row, err := putThroughput(mode, size, nc)
				if err != nil {
					return err
				}
				rows = append(rows, row)
				if mode == "serialized" {
					serialized = row
				} else {
					mux = row
				}
			}
			speedup := 0.0
			if serialized.MBPerSec > 0 {
				speedup = mux.MBPerSec / serialized.MBPerSec
			}
			fmt.Printf("  %8s x %2d callers: serialized %8.1f MB/s   mux %8.1f MB/s   %.2fx\n",
				sizeName(size), nc, serialized.MBPerSec, mux.MBPerSec, speedup)
		}
	}

	fmt.Println("== ec: encode kernel serial vs chunk-parallel ==")
	for _, size := range []int{256 << 10, 4 << 20, 64 << 20} {
		var serial, parallel transportRow
		for _, mode := range []string{"serial", "parallel"} {
			row, err := ecThroughput(mode, size)
			if err != nil {
				return err
			}
			rows = append(rows, row)
			if mode == "serial" {
				serial = row
			} else {
				parallel = row
			}
		}
		speedup := 0.0
		if serial.MBPerSec > 0 {
			speedup = parallel.MBPerSec / serial.MBPerSec
		}
		fmt.Printf("  %8s object: serial %8.1f MB/s   parallel %8.1f MB/s   %.2fx\n",
			sizeName(size), serial.MBPerSec, parallel.MBPerSec, speedup)
	}

	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d measurements to %s\n", len(rows), outPath)
	return nil
}

// putThroughput drives shard puts at one (mode, size, callers) point
// until enough wall time has accumulated for a stable rate.
func putThroughput(mode string, size, nc int) (transportRow, error) {
	tr := transport.NewTCPTimeout(30*time.Second, 5*time.Second)
	tr.DisableFastPath = mode == "serialized"
	ep, err := tr.ListenTCP("127.0.0.1:0", func(req any) (any, error) {
		return staging.ShardPutResp{}, nil
	})
	if err != nil {
		return transportRow{}, err
	}
	defer ep.Close()
	raw, err := tr.Dial(ep.Addr())
	if err != nil {
		return transportRow{}, err
	}
	var cl transport.Client = raw
	if mode == "serialized" {
		cl = &oneInFlight{cl: raw}
	}
	defer cl.Close()

	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i)
	}
	req := staging.ShardPutReq{Key: "bench/object", Shard: 0, Data: payload}

	// Calibrate the op count so each point moves about a gibibyte —
	// enough wall time for a stable rate on both the fast and slow mode.
	ops := 1 << 30 / size
	if ops < 64 {
		ops = 64
	}

	// Warm up the connection, codec state, and buffer pools untimed,
	// and start each point from a clean heap so one mode's garbage does
	// not bill the next point's run.
	for i := 0; i < 8; i++ {
		if _, err := cl.Call(req); err != nil {
			return transportRow{}, err
		}
	}
	runtime.GC()

	errs := make(chan error, nc)
	start := time.Now()
	per, extra := ops/nc, ops%nc
	for c := 0; c < nc; c++ {
		n := per
		if c < extra {
			n++
		}
		go func(n int) {
			for i := 0; i < n; i++ {
				if _, err := cl.Call(req); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(n)
	}
	for c := 0; c < nc; c++ {
		if err := <-errs; err != nil {
			return transportRow{}, err
		}
	}
	sec := time.Since(start).Seconds()
	return transportRow{
		Bench: "PutGet", Mode: mode, PayloadBytes: size, Callers: nc, Ops: ops,
		Seconds: sec, MBPerSec: mbps(ops, size, sec), OpsPerSec: float64(ops) / sec,
	}, nil
}

// ecThroughput times Reed-Solomon parity generation over a k=6, m=3
// code (the rebuild path's configuration) in one worker mode.
func ecThroughput(mode string, objSize int) (transportRow, error) {
	workers := 1
	if mode == "parallel" {
		workers = 0 // GOMAXPROCS
	}
	prev := ec.SetWorkers(workers)
	defer ec.SetWorkers(prev)

	coder, err := ec.NewCoder(6, 3)
	if err != nil {
		return transportRow{}, err
	}
	rng := rand.New(rand.NewSource(1))
	obj := make([]byte, objSize)
	rng.Read(obj)
	shards := coder.Split(obj)

	ops := 512 << 20 / objSize
	if ops < 8 {
		ops = 8
	}
	// One untimed pass then a clean heap: parity-shard garbage from the
	// previous mode must not bill this one.
	if _, err := coder.Encode(shards); err != nil {
		return transportRow{}, err
	}
	runtime.GC()
	start := time.Now()
	for i := 0; i < ops; i++ {
		if _, err := coder.Encode(shards); err != nil {
			return transportRow{}, err
		}
	}
	sec := time.Since(start).Seconds()
	return transportRow{
		Bench: "ECEncode", Mode: mode, PayloadBytes: objSize, Ops: ops,
		Seconds: sec, MBPerSec: mbps(ops, objSize, sec), OpsPerSec: float64(ops) / sec,
	}, nil
}

// oneInFlight emulates the seed transport's lock-step behaviour: one
// call in flight per connection.
type oneInFlight struct {
	mu sync.Mutex
	cl transport.Client
}

func (s *oneInFlight) Call(req any) (any, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cl.Call(req)
}

func (s *oneInFlight) Close() error { return s.cl.Close() }

func mbps(ops, size int, sec float64) float64 {
	if sec <= 0 {
		return 0
	}
	return float64(ops) * float64(size) / (1 << 20) / sec
}

func sizeName(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMiB", n>>20)
	default:
		return fmt.Sprintf("%dKiB", n>>10)
	}
}

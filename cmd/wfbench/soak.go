package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"gospaces"
	"gospaces/internal/expt"
)

// soakParams carries the -soak-* flags into the experiment.
type soakParams struct {
	seeds    []int64
	groups   int
	steps    int
	faults   int
	tier     bool
	overload bool
	traceDir string
	replay   string
}

// soakExp runs one churn soak per seed: record the deterministic
// trace, execute it against a live staging group, then immediately
// replay the recorded trace and hold both runs to the same digest.
// A failing seed's trace is persisted under -trace-dir so the failure
// can be replayed under `go test` (copy it into
// internal/workflow/testdata/ and point a TestReplayRegression_* case
// at it).
func soakExp(p soakParams) error {
	if p.replay != "" {
		return soakReplay(p.replay)
	}
	t := &expt.Table{
		Title:   "Churn soak: recorded fault schedules, record vs replay digests",
		Headers: []string{"seed", "events", "puts", "gets", "restarts", "failstops", "blackouts", "tierfaults", "floods/sheds", "retries", "wall", "verdict"},
	}
	failures := 0
	for _, seed := range p.seeds {
		o := gospaces.SoakOptions{
			Seed:     seed,
			Groups:   p.groups,
			Steps:    p.steps,
			Faults:   p.faults,
			Tier:     p.tier,
			Overload: p.overload,
		}
		start := time.Now()
		h, events, rec, err := gospaces.RunSoak(o)
		verdict := "CONSISTENT"
		if err != nil {
			verdict = fmt.Sprintf("DIVERGED: %v", err)
		} else {
			rep, rerr := gospaces.ReplaySoakTrace(h, events)
			switch {
			case rerr != nil:
				verdict = fmt.Sprintf("REPLAY DIVERGED: %v", rerr)
				err = rerr
			case rep.Digest != rec.Digest:
				verdict = fmt.Sprintf("REPLAY DIGEST %#x != %#x", rep.Digest, rec.Digest)
				err = fmt.Errorf("digest mismatch")
			case rep.StateSum != rec.StateSum:
				verdict = fmt.Sprintf("REPLAY STATE %#x != %#x", rep.StateSum, rec.StateSum)
				err = fmt.Errorf("state mismatch")
			}
		}
		if err != nil {
			failures++
			if path, werr := persistFailingTrace(p.traceDir, seed, h, events); werr != nil {
				fmt.Fprintf(os.Stderr, "wfbench: soak seed %d: persisting trace: %v\n", seed, werr)
			} else {
				fmt.Fprintf(os.Stderr, "wfbench: soak seed %d failed; trace saved to %s\n", seed, path)
			}
		}
		t.Add(seed, len(events), rec.Puts, rec.Gets, rec.Restarts, rec.FailStops, rec.Blackouts,
			rec.TierFaults, fmt.Sprintf("%d/%d", rec.FloodPuts, rec.FloodSheds), rec.Retries,
			time.Since(start).Round(time.Millisecond), verdict)
	}
	t.Write(os.Stdout)
	if failures > 0 {
		return fmt.Errorf("%d of %d soak seeds diverged", failures, len(p.seeds))
	}
	return nil
}

// soakReplay re-executes one persisted trace file and verifies it.
func soakReplay(path string) error {
	h, events, err := gospaces.ReadTraceFile(path)
	if err != nil {
		return err
	}
	fmt.Printf("replaying %s: %q seed=%d %d events digest=%#x\n", path, h.Label, h.Seed, len(events), h.Digest)
	res, err := gospaces.ReplaySoakTrace(h, events)
	if err != nil {
		return err
	}
	fmt.Printf("replay ok: digest=%#x state=%#x puts=%d gets=%d restarts=%d retries=%d\n",
		res.Digest, res.StateSum, res.Puts, res.Gets, res.Restarts, res.Retries)
	return nil
}

func persistFailingTrace(dir string, seed int64, h gospaces.TraceHeader, events []gospaces.TraceEvent) (string, error) {
	if dir == "" {
		dir = "."
	}
	path := filepath.Join(dir, fmt.Sprintf("soak-seed%d.trace", seed))
	if err := gospaces.WriteTraceFile(path, h, events); err != nil {
		return "", err
	}
	return path, nil
}

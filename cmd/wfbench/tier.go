package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"gospaces/internal/domain"
	"gospaces/internal/health"
	"gospaces/internal/pfs"
	"gospaces/internal/recovery"
	"gospaces/internal/staging"
	"gospaces/internal/tier"
	"gospaces/internal/transport"
)

// tierReport is the BENCH_tier.json payload: the cold-tier spill and
// promote latencies as a client observes them, the incremental-vs-
// snapshot-only replication resync traffic A/B, and the recovery time
// of a fail-stopped server whose history had partly spilled to disk.
type tierReport struct {
	// Spill/promote micro (one server, directory-backed PFS tier).
	Versions      int     `json:"versions"`
	VersionBytes  int     `json:"version_bytes"`
	BudgetBytes   int64   `json:"budget_bytes"`
	Spills        int64   `json:"spills"`
	SpillBytes    int64   `json:"spill_bytes"`
	Promotes      int64   `json:"promotes"`
	WarmPutP50Ms  float64 `json:"warm_put_p50_ms"`
	SpillPutP50Ms float64 `json:"spill_put_p50_ms"`
	SpillPutP99Ms float64 `json:"spill_put_p99_ms"`
	WarmGetP50Ms  float64 `json:"warm_get_p50_ms"`
	ColdGetP50Ms  float64 `json:"cold_get_p50_ms"`
	ColdGetP99Ms  float64 `json:"cold_get_p99_ms"`

	// Incremental (delta-since-anchor) vs snapshot-only replication:
	// resync traffic over the same schedule of transient stream kills.
	ReplCycles      int     `json:"repl_cycles"`
	DeltaResyncs    int64   `json:"delta_resyncs"`
	DeltaBytes      int64   `json:"delta_bytes"`
	SnapshotResyncs int64   `json:"snapshot_resyncs"`
	SnapshotBytes   int64   `json:"snapshot_bytes"`
	DeltaFraction   float64 `json:"delta_fraction_of_snapshot"`

	// Fail-stop recovery with a cold tier under the promoted state.
	RecoveryRuns     int     `json:"recovery_runs"`
	RecoveryMedianMs float64 `json:"recovery_median_ms"`
	RecoveryCorrupt  int64   `json:"recovery_corrupt_reads"`
	RecoverySpills   int64   `json:"recovery_tier_spills"`
	RecoveryPromotes int64   `json:"recovery_tier_promotes"`
}

// tierExp measures the cold-tier data path end to end and writes the
// readings to outPath as JSON: (1) client-observed put/get latency with
// and without spill/promote work on the path, (2) resync bytes shipped
// by incremental wlog replication vs the snapshot-only baseline under
// identical transient disconnects, (3) recovery time and byte-exactness
// when the failed server's logged history had partly spilled.
func tierExp(outPath string) error {
	var rep tierReport
	fmt.Println("== tier: PFS cold spill, incremental replication, recovery ==")
	if err := tierMicro(&rep); err != nil {
		return fmt.Errorf("tier micro: %w", err)
	}
	fmt.Printf("  micro: %d spills (%d B), %d promotes | put p50 warm %.3fms spill %.3fms | get p50 warm %.3fms cold %.3fms\n",
		rep.Spills, rep.SpillBytes, rep.Promotes,
		rep.WarmPutP50Ms, rep.SpillPutP50Ms, rep.WarmGetP50Ms, rep.ColdGetP50Ms)

	if err := tierReplAB(&rep); err != nil {
		return fmt.Errorf("tier repl A/B: %w", err)
	}
	fmt.Printf("  repl: %d delta resyncs %d B vs %d snapshot resyncs %d B -> delta ships %.1f%% of baseline (want <= 25%%)\n",
		rep.DeltaResyncs, rep.DeltaBytes, rep.SnapshotResyncs, rep.SnapshotBytes, 100*rep.DeltaFraction)

	if err := tierRecovery(&rep); err != nil {
		return fmt.Errorf("tier recovery: %w", err)
	}
	fmt.Printf("  recovery: median %.1fms over %d runs, %d corrupt reads, %d spills / %d promotes across the runs\n",
		rep.RecoveryMedianMs, rep.RecoveryRuns, rep.RecoveryCorrupt, rep.RecoverySpills, rep.RecoveryPromotes)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote tier measurements to %s\n", outPath)
	if rep.DeltaFraction > 0.25 {
		return fmt.Errorf("incremental replication shipped %.1f%% of the snapshot-only baseline (acceptance: <= 25%%)", 100*rep.DeltaFraction)
	}
	return nil
}

// tierStats sums the TierStats view over a group's live servers.
func tierStats(g *staging.Group, n int) staging.TierStatsResp {
	var sum staging.TierStatsResp
	for i := 0; i < n; i++ {
		srv := g.Server(i)
		if srv == nil {
			continue
		}
		raw, err := srv.Handle(staging.TierStatsReq{})
		if err != nil {
			continue
		}
		st, ok := raw.(staging.TierStatsResp)
		if !ok {
			continue
		}
		sum.Spills += st.Spills
		sum.SpillBytes += st.SpillBytes
		sum.Promotes += st.Promotes
		sum.PromoteBytes += st.PromoteBytes
		sum.DeltaResyncs += st.DeltaResyncs
		sum.DeltaBytes += st.DeltaBytes
		sum.SnapshotsSent += st.SnapshotsSent
		sum.SnapshotBytes += st.SnapshotBytes
	}
	return sum
}

// tierMicro drives one server with a directory-backed tier past its
// spill watermark and separates client-observed latency into warm puts
// (no spill work), spilling puts, warm gets (resident version), and
// cold gets (promote-on-get of a spilled version).
func tierMicro(rep *tierReport) error {
	const versions = 12
	global := domain.Box3(0, 0, 0, 63, 63, 15) // 512 KiB per version at elem 8
	verBytes := int(domain.BufLen(global, 8))
	budget := int64(3 * verBytes) // water 0.6 -> spill past ~1.8 versions
	dir, err := os.MkdirTemp("", "wfbench-tier-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	g, err := staging.StartGroup(transport.NewInProc(), "tiermicro", staging.Config{
		Global:                global,
		NServers:              1,
		Bits:                  2,
		ElemSize:              8,
		MemoryBudgetPerServer: budget,
		TierBackend: func(id int) tier.Backend {
			be, err := pfs.NewDirStore(fmt.Sprintf("%s/s%d", dir, id))
			if err != nil {
				panic(err)
			}
			return be
		},
	})
	if err != nil {
		return err
	}
	defer g.Close()
	c, err := g.NewClient("sim/0")
	if err != nil {
		return err
	}
	defer c.Close()

	payload := func(v int64) []byte {
		buf := make([]byte, verBytes)
		for i := range buf {
			buf[i] = byte(int64(i)*5 + v)
		}
		return buf
	}
	var warmPuts, spillPuts, warmGets, coldGets []time.Duration
	for v := int64(1); v <= versions; v++ {
		before := tierStats(g, 1).Spills
		t0 := time.Now()
		if err := c.PutWithLog("field", v, global, payload(v)); err != nil {
			return err
		}
		d := time.Since(t0)
		if tierStats(g, 1).Spills > before {
			spillPuts = append(spillPuts, d)
		} else {
			warmPuts = append(warmPuts, d)
		}
	}
	// Oldest-first reads hit spilled versions (promote-on-get); the
	// newest stayed resident.
	for v := int64(1); v <= versions; v++ {
		before := tierStats(g, 1).Promotes
		t0 := time.Now()
		data, _, err := c.GetWithLog("field", v, global)
		if err != nil {
			return err
		}
		d := time.Since(t0)
		if !bytes.Equal(data, payload(v)) {
			return fmt.Errorf("version %d diverged after spill/promote round trip", v)
		}
		if tierStats(g, 1).Promotes > before {
			coldGets = append(coldGets, d)
		} else {
			warmGets = append(warmGets, d)
		}
	}
	st := tierStats(g, 1)
	if st.Spills == 0 || st.Promotes == 0 {
		return fmt.Errorf("budget pressure exercised no spill/promote traffic: %+v", st)
	}
	rep.Versions = versions
	rep.VersionBytes = verBytes
	rep.BudgetBytes = budget
	rep.Spills = st.Spills
	rep.SpillBytes = st.SpillBytes
	rep.Promotes = st.Promotes
	rep.WarmPutP50Ms = percentileMs(warmPuts, 0.50)
	rep.SpillPutP50Ms = percentileMs(spillPuts, 0.50)
	rep.SpillPutP99Ms = percentileMs(spillPuts, 0.99)
	rep.WarmGetP50Ms = percentileMs(warmGets, 0.50)
	rep.ColdGetP50Ms = percentileMs(coldGets, 0.50)
	rep.ColdGetP99Ms = percentileMs(coldGets, 0.99)
	return nil
}

// tierReplRun drives one replication group through warmup traffic plus
// a schedule of transient replica-host blackouts: records put during a
// blackout cannot be shipped, so when the host comes back the origin
// must re-sync the lagging (but state-retaining) peer. Puts cover only
// the origin's shard region, so the client never blocks on the blacked
// host. snapshotOnly zeroes the retained window first, turning every
// re-sync into the full-state baseline the incremental path is measured
// against. Returns the summed resync counters.
func tierReplRun(snapshotOnly bool) (staging.TierStatsResp, error) {
	const (
		nservers = 2
		warmup   = 8
		cycles   = 6
		perCycle = 3
		blackout = 60 * time.Millisecond
	)
	global := domain.Box3(0, 0, 0, 63, 63, 0)
	// The x<32 half of the domain hashes wholly onto server 0: puts of
	// this box make server 0 the only origin, and server 1 purely its
	// replica host — the one we black out.
	box := domain.Box3(0, 0, 0, 31, 63, 0)
	chaos := transport.NewChaos(transport.NewInProc(), 1)
	g, err := staging.StartGroup(chaos, "tierrepl", staging.Config{
		Global:       global,
		NServers:     nservers,
		Bits:         2,
		ElemSize:     8,
		WlogReplicas: 1,
		// The tier itself stays idle here (no budget, nothing spills);
		// it is attached so the TierStats control RPC carries the
		// replication counters.
		TierBackend: func(id int) tier.Backend { return pfs.NewStore() },
	})
	if err != nil {
		return staging.TierStatsResp{}, err
	}
	defer g.Close()
	if snapshotOnly {
		for i := 0; i < nservers; i++ {
			g.Server(i).SetReplWindow(0)
		}
	}
	c, err := g.NewClient("sim/0")
	if err != nil {
		return staging.TierStatsResp{}, err
	}
	defer c.Close()
	n := domain.BufLen(box, 8)
	put := func(v int64) error {
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(int64(i)*7 + v)
		}
		return c.PutWithLog("field", v, box, buf)
	}
	v := int64(0)
	for i := 0; i < warmup; i++ {
		v++
		if err := put(v); err != nil {
			return staging.TierStatsResp{}, err
		}
	}
	hostAddr := g.Addrs()[1]
	for cyc := 0; cyc < cycles; cyc++ {
		start := time.Now()
		chaos.Blackout(hostAddr, blackout)
		chaos.KillConns(hostAddr)
		// Records put now are missed by the blacked-out host.
		for i := 0; i < perCycle; i++ {
			v++
			if err := put(v); err != nil {
				return staging.TierStatsResp{}, err
			}
		}
		time.Sleep(blackout - time.Since(start) + 10*time.Millisecond)
		// The host is back; this put makes the origin reconnect and
		// re-sync the lagging peer.
		v++
		if err := put(v); err != nil {
			return staging.TierStatsResp{}, err
		}
	}
	// Let the async senders finish their resyncs before reading the
	// counters.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		st := tierStats(g, nservers)
		if st.DeltaResyncs+st.SnapshotsSent > 0 && st.DeltaBytes+st.SnapshotBytes > 0 {
			time.Sleep(20 * time.Millisecond)
			next := tierStats(g, nservers)
			if next == st {
				return st, nil
			}
			continue
		}
		time.Sleep(5 * time.Millisecond)
	}
	return tierStats(g, nservers), nil
}

// tierReplAB runs the same disconnect schedule with the incremental
// window on and with snapshot-only resyncs, and reports the shipped
// resync bytes of each.
func tierReplAB(rep *tierReport) error {
	inc, err := tierReplRun(false)
	if err != nil {
		return err
	}
	base, err := tierReplRun(true)
	if err != nil {
		return err
	}
	if inc.DeltaResyncs == 0 {
		return fmt.Errorf("incremental run served no delta resyncs: %+v", inc)
	}
	if base.SnapshotsSent == 0 {
		return fmt.Errorf("baseline run served no snapshots: %+v", base)
	}
	rep.ReplCycles = 6
	rep.DeltaResyncs = inc.DeltaResyncs
	rep.DeltaBytes = inc.DeltaBytes
	rep.SnapshotResyncs = base.SnapshotsSent
	rep.SnapshotBytes = base.SnapshotBytes
	if base.SnapshotBytes > 0 {
		rep.DeltaFraction = float64(inc.DeltaBytes) / float64(base.SnapshotBytes)
	}
	return nil
}

// tierRecovery fail-stops a server whose logged history partly spilled
// to its cold tier, lets a supervisor promote the warm spare and
// restore the replicated log, and measures the time until every slot is
// alive again — then reads the whole history back byte-exactly through
// the promoted server.
func tierRecovery(rep *tierReport) error {
	const versions = 10
	runs := 3
	global := domain.Box3(0, 0, 0, 63, 63, 0)
	var mttrs []time.Duration
	for run := 0; run < runs; run++ {
		tr := transport.NewInProc()
		g, err := staging.StartGroup(tr, "tierrec", staging.Config{
			Global:                global,
			NServers:              2,
			Bits:                  2,
			ElemSize:              1,
			WlogReplicas:          1,
			MemoryBudgetPerServer: 4 * global.Volume(),
			TierBackend:           func(id int) tier.Backend { return pfs.NewStore() },
		})
		if err != nil {
			return err
		}
		if _, err := g.AddSpare(); err != nil {
			g.Close()
			return err
		}
		prod, err := g.NewClient("sim/0")
		if err != nil {
			g.Close()
			return err
		}
		n := domain.BufLen(global, 1)
		payload := func(v int64) []byte {
			buf := make([]byte, n)
			for i := range buf {
				buf[i] = byte(int64(i)*7 + v*131 + 1)
			}
			return buf
		}
		for v := int64(1); v <= versions; v++ {
			if err := prod.PutWithLog("field", v, global, payload(v)); err != nil {
				g.Close()
				return err
			}
		}
		det := health.NewDetector(tr, "wfbench/tiersup", health.Config{
			Period:       5 * time.Millisecond,
			Timeout:      25 * time.Millisecond,
			SuspectAfter: 2,
			DeadAfter:    4,
		})
		sup := recovery.New(tr, det, g.Membership(), g, recovery.Config{
			ID: "wfbench/tiersup", LeaseTTL: 150 * time.Millisecond,
		})
		sup.Start()
		start := time.Now()
		if err := g.FailStop(1); err != nil {
			sup.Close()
			g.Close()
			return err
		}
		if err := sup.WaitIdle(20 * time.Second); err != nil {
			sup.Close()
			g.Close()
			return err
		}
		mttrs = append(mttrs, time.Since(start))
		// Byte-exact replay through the promoted server: every version,
		// including the ones that had spilled before the death. The
		// client's call path rebinds to the post-promotion membership on
		// its first failed call.
		for v := int64(1); v <= versions; v++ {
			data, _, err := prod.GetWithLog("field", v, global)
			if err != nil || !bytes.Equal(data, payload(v)) {
				rep.RecoveryCorrupt++
			}
		}
		st := tierStats(g, 2)
		rep.RecoverySpills += st.Spills
		rep.RecoveryPromotes += st.Promotes
		prod.Close()
		sup.Close()
		g.Close()
	}
	sort.Slice(mttrs, func(i, j int) bool { return mttrs[i] < mttrs[j] })
	rep.RecoveryRuns = runs
	rep.RecoveryMedianMs = float64(mttrs[len(mttrs)/2]) / float64(time.Millisecond)
	if rep.RecoverySpills == 0 {
		return fmt.Errorf("recovery runs exercised no tier spills")
	}
	return nil
}

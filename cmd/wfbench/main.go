// Command wfbench regenerates the tables and figures of the paper's
// evaluation (Duan & Parashar, IPDPS 2020, §IV).
//
// Usage:
//
//	wfbench -exp fig9a|fig9b|fig9c|fig9d|fig9e|fig10|table1|table2|table3|all
//	        [-seeds n] [-steps n] [-reps n]
//
// Figures 9(a)–(d) measure the live staging service in this process;
// Figure 9(e) and Figure 10 run the crash-consistency protocol on the
// virtual-time simulator at the paper's Cori scales.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"gospaces"
	"gospaces/internal/cluster"
	"gospaces/internal/domain"
	"gospaces/internal/expt"
	"gospaces/internal/health"
	"gospaces/internal/recovery"
	"gospaces/internal/staging"
	"gospaces/internal/transport"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table1, table2, table3, fig9a, fig9b, fig9c, fig9d, fig9e, fig10, sweep, motivation, failstop, logrepl, nemesis, transport, overload, tier, soak, all")
	seeds := flag.Int("seeds", 5, "number of failure-schedule seeds for the simulated experiments")
	steps := flag.Int64("steps", 20, "coupling cycles for the live staging measurements")
	reps := flag.Int("reps", 5, "repetitions (median) for the live staging measurements")
	out := flag.String("out", "", "output file for the transport/tier experiment's JSON measurements (default BENCH_<exp>.json)")
	outOverload := flag.String("out-overload", "BENCH_overload.json", "output file for the overload experiment's JSON measurements")
	soakGroups := flag.Int("soak-groups", 2, "producer/consumer pairs per churn soak")
	soakSteps := flag.Int("soak-steps", 5, "logged versions per producer in a churn soak")
	soakFaults := flag.Int("soak-faults", 6, "injected faults per churn soak (0 = clean)")
	soakTier := flag.Bool("soak-tier", true, "give soak servers a cold tier and storage faults")
	soakOverload := flag.Bool("soak-overload", true, "enable admission control and flood bursts in soaks")
	traceDir := flag.String("trace-dir", ".", "directory for failing soak runs' persisted traces")
	replay := flag.String("replay", "", "replay one persisted soak trace file instead of recording")
	flag.Parse()

	expt.Reps = *reps
	live := expt.DefaultLiveParams()
	live.Steps = *steps
	seedList := make([]int64, *seeds)
	for i := range seedList {
		seedList[i] = int64(i + 1)
	}

	run := func(name string) error {
		switch name {
		case "table1":
			return table1()
		case "table2":
			return table2()
		case "table3":
			return table3()
		case "fig9a", "fig9c":
			rows, err := expt.Fig9Case1(live)
			if err != nil {
				return err
			}
			expt.WriteCase1(os.Stdout, rows)
		case "fig9b", "fig9d":
			rows, err := expt.Fig9Case2(live)
			if err != nil {
				return err
			}
			expt.WriteCase2(os.Stdout, rows)
		case "fig9e":
			rows, err := expt.Fig9e(seedList)
			if err != nil {
				return err
			}
			case2, err := expt.Fig9eCase2(seedList)
			if err != nil {
				return err
			}
			expt.WriteFig9e(os.Stdout, rows, case2)
		case "fig10":
			rows, err := expt.Fig10(seedList)
			if err != nil {
				return err
			}
			expt.WriteFig10(os.Stdout, rows)
		case "sweep":
			rows, err := expt.MTBFSweep(seedList)
			if err != nil {
				return err
			}
			expt.WriteSweep(os.Stdout, rows)
		case "motivation":
			return motivation()
		case "failstop":
			return failstop()
		case "logrepl":
			return logrepl()
		case "nemesis":
			return nemesisExp()
		case "transport":
			return transportExp(orDefault(*out, "BENCH_transport.json"))
		case "overload":
			return overloadExp(*outOverload)
		case "tier":
			return tierExp(orDefault(*out, "BENCH_tier.json"))
		case "soak":
			return soakExp(soakParams{
				seeds:    seedList,
				groups:   *soakGroups,
				steps:    *soakSteps,
				faults:   *soakFaults,
				tier:     *soakTier,
				overload: *soakOverload,
				traceDir: *traceDir,
				replay:   *replay,
			})
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	var names []string
	if *exp == "all" {
		names = []string{"table1", "table2", "table3", "motivation", "failstop", "logrepl", "nemesis", "fig9a", "fig9b", "fig9e", "fig10", "sweep"}
	} else {
		names = []string{*exp}
	}
	for _, n := range names {
		if err := run(n); err != nil {
			fmt.Fprintf(os.Stderr, "wfbench: %s: %v\n", n, err)
			os.Exit(1)
		}
	}
}

// orDefault substitutes def for an unset output-path flag.
func orDefault(v, def string) string {
	if v == "" {
		return def
	}
	return v
}

// motivation runs the paper's Figure 2 scenario live — one consumer
// failure under each scheme — and prints whether the results stayed
// correct. This is the paper's core claim demonstrated on real staging
// servers with byte-level verification.
func motivation() error {
	t := &expt.Table{
		Title:   "Fig 2 motivation (live): one analytic failure under each scheme",
		Headers: []string{"scheme", "recoveries", "replayed", "suppressed", "corrupt reads", "verdict"},
	}
	for _, scheme := range []gospaces.Scheme{
		gospaces.Coordinated, gospaces.Uncoordinated, gospaces.Individual, gospaces.Hybrid,
	} {
		res, err := gospaces.RunWorkflow(gospaces.WorkflowOptions{
			Scheme:      scheme,
			Steps:       12,
			Global:      gospaces.Box3(0, 0, 0, 63, 63, 31),
			SimRanks:    4,
			AnaRanks:    2,
			NServers:    2,
			SimPeriod:   4,
			AnaPeriod:   5,
			CoordPeriod: 4,
			Failures: []gospaces.FailAt{
				{Component: "ana", Rank: 0, TS: 8},
				{Component: "sim", Rank: 1, TS: 10},
			},
			Spares: 4,
		})
		if err != nil {
			return err
		}
		verdict := "CONSISTENT"
		if res.CorruptReads > 0 {
			verdict = "CORRUPTED (the paper's motivation)"
		}
		t.Add(scheme.String(), res.Recoveries, res.ReplayedEvents, res.SuppressedPuts, res.CorruptReads, verdict)
	}
	t.Write(os.Stdout)
	return nil
}

// failstop runs a live staging-server fail-stop under the coordinated
// scheme, once per redundancy mode: a server's listener closes for
// good mid-run, the supervisor promotes a warm spare and re-protects
// the staged shards, and every consumer read is still verified byte
// for byte.
func failstop() error {
	t := &expt.Table{
		Title:   "Server fail-stop recovery (live): one staging server lost mid-run",
		Headers: []string{"redundancy", "server recoveries", "epoch", "rebuilds", "rebuilt bytes", "corrupt reads", "verdict"},
	}
	for _, red := range []struct {
		name string
		cfg  gospaces.RedundancyConfig
	}{
		{"replication x3", gospaces.RedundancyConfig{Mode: gospaces.Replication, Replicas: 3}},
		{"erasure RS(2,2)", gospaces.RedundancyConfig{Mode: gospaces.ErasureCoding, K: 2, M: 2}},
	} {
		cfg := red.cfg
		res, err := gospaces.RunWorkflow(gospaces.WorkflowOptions{
			Scheme:      gospaces.Coordinated,
			Steps:       12,
			Global:      gospaces.Box3(0, 0, 0, 63, 63, 31),
			SimRanks:    4,
			AnaRanks:    2,
			NServers:    4,
			SimPeriod:   4,
			AnaPeriod:   5,
			CoordPeriod: 4,
			ServerFailures: []gospaces.ServerFailAt{
				{Server: 1, TS: 6},
			},
			Redundancy: &cfg,
		})
		if err != nil {
			return err
		}
		verdict := "CONSISTENT"
		if res.CorruptReads > 0 {
			verdict = "CORRUPTED"
		}
		if res.ServerRecoveries == 0 {
			verdict = "NO RECOVERY"
		}
		t.Add(red.name, res.ServerRecoveries, res.FinalEpoch, res.Rebuilds,
			expt.MiB(res.RebuildBytes), res.CorruptReads, verdict)
	}
	t.Write(os.Stdout)
	return nil
}

// logrepl runs live staging-server fail-stops under the LOGGED schemes
// with event-log replication on: the supervisor promotes a spare and
// restores the dead server's event queues, payloads, and lock state
// from the freshest replica, so workflow_restart replays byte-exactly
// even though the paper's recovery metadata lived on the dead server.
func logrepl() error {
	t := &expt.Table{
		Title:   "Event-log replication (live): logged schemes surviving staging fail-stop",
		Headers: []string{"scenario", "server recoveries", "epoch", "rollbacks", "replayed", "corrupt reads", "verdict"},
	}
	for _, sc := range []struct {
		name     string
		scheme   gospaces.Scheme
		k        int
		failures []gospaces.ServerFailAt
	}{
		{"uncoordinated K=1", gospaces.Uncoordinated, 1, []gospaces.ServerFailAt{{Server: 1, TS: 6}}},
		{"hybrid K=1", gospaces.Hybrid, 1, []gospaces.ServerFailAt{{Server: 2, TS: 6}}},
		{"uncoordinated K=2, 2 kills", gospaces.Uncoordinated, 2, []gospaces.ServerFailAt{{Server: 1, TS: 4}, {Server: 3, TS: 8}}},
	} {
		res, err := gospaces.RunWorkflow(gospaces.WorkflowOptions{
			Scheme:         sc.scheme,
			Steps:          12,
			Global:         gospaces.Box3(0, 0, 0, 63, 63, 31),
			SimRanks:       4,
			AnaRanks:       2,
			NServers:       4,
			SimPeriod:      4,
			AnaPeriod:      5,
			WlogReplicas:   sc.k,
			ServerFailures: sc.failures,
		})
		if err != nil {
			return err
		}
		verdict := "CONSISTENT"
		if res.CorruptReads > 0 {
			verdict = "CORRUPTED"
		}
		if res.ServerRecoveries != len(sc.failures) {
			verdict = "NO RECOVERY"
		}
		t.Add(sc.name, res.ServerRecoveries, res.FinalEpoch, res.Recoveries,
			res.ReplayedEvents, res.CorruptReads, verdict)
	}
	t.Write(os.Stdout)
	return nil
}

// nemesisExp measures live MTTR for a staging-server fail-stop under
// three redundant supervisors, clean versus with the recovery leader
// killed mid-promotion: the killed-leader case pays roughly one lease
// TTL for the standby takeover, and the journaled intent lets the
// successor finish the same promotion (one spare, one epoch bump).
func nemesisExp() error {
	t := &expt.Table{
		Title:   "Supervisor HA (live): MTTR for a server fail-stop, 3 redundant supervisors",
		Headers: []string{"scenario", "median MTTR", "promotions", "takeovers", "verdict"},
	}
	for _, sc := range []struct {
		name string
		kill bool
	}{
		{"clean recovery (leader survives)", false},
		{"leader killed mid-promotion", true},
	} {
		mttrs := make([]time.Duration, 0, expt.Reps)
		var promotions, takeovers int64
		for rep := 0; rep < expt.Reps; rep++ {
			d, p, tk, err := nemesisMTTR(sc.kill)
			if err != nil {
				return err
			}
			mttrs = append(mttrs, d)
			promotions += p
			takeovers += tk
		}
		sort.Slice(mttrs, func(i, j int) bool { return mttrs[i] < mttrs[j] })
		verdict := "CONSISTENT"
		if promotions != int64(expt.Reps) {
			verdict = fmt.Sprintf("BAD: %d promotions over %d runs", promotions, expt.Reps)
		}
		if sc.kill && takeovers == 0 {
			verdict = "BAD: leader killed but no takeover"
		}
		t.Add(sc.name, mttrs[len(mttrs)/2].Round(time.Millisecond), promotions, takeovers, verdict)
	}
	t.Write(os.Stdout)
	return nil
}

// nemesisMTTR runs one fail-stop and reports the time from the kill to
// every slot alive again, plus promotion/takeover counts summed over
// the redundant supervisors.
func nemesisMTTR(kill bool) (time.Duration, int64, int64, error) {
	tr := transport.NewInProc()
	g, err := staging.StartGroup(tr, "stage", staging.Config{
		Global:       domain.Box3(0, 0, 0, 63, 63, 0),
		NServers:     4,
		Bits:         2,
		ElemSize:     1,
		WlogReplicas: 1,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	defer g.Close()
	if _, err := g.AddSpare(); err != nil {
		return 0, 0, 0, err
	}

	// Logged traffic so the promotion restores a real replica.
	prod, err := g.NewClient("sim/0")
	if err != nil {
		return 0, 0, 0, err
	}
	defer prod.Close()
	buf := make([]byte, 64*64)
	for i := range buf {
		buf[i] = byte(i * 7)
	}
	if err := prod.PutWithLog("field", 1, domain.Box3(0, 0, 0, 63, 63, 0), buf); err != nil {
		return 0, 0, 0, err
	}

	const nSups = 3
	sups := make([]*recovery.Supervisor, nSups)
	var killMu sync.Mutex
	killArmed := kill
	for i := 0; i < nSups; i++ {
		i := i
		id := fmt.Sprintf("wfbench/sup/%d", i)
		det := health.NewDetector(tr, id, health.Config{
			Period:       5 * time.Millisecond,
			Timeout:      25 * time.Millisecond,
			SuspectAfter: 2,
			DeadAfter:    4,
		})
		cfg := recovery.Config{ID: id, LeaseTTL: 150 * time.Millisecond}
		// Kill at "intent": the promotion is journaled but nothing is
		// mutated yet, so the dead slot stays dark until a standby wins
		// the lease and resumes — the worst-case MTTR path.
		cfg.PromotionHook = func(stage string, slot int) {
			if stage != "intent" || i == nSups-1 {
				return
			}
			killMu.Lock()
			armed := killArmed
			killArmed = false
			killMu.Unlock()
			if armed {
				sups[i].Kill()
			}
		}
		sups[i] = recovery.New(tr, det, g.Membership(), g, cfg)
		sups[i].Start()
		defer sups[i].Close()
	}

	start := time.Now()
	if err := g.FailStop(1); err != nil {
		return 0, 0, 0, err
	}
	// The last supervisor is never killed; its view converges once the
	// promotion (original or resumed) lands.
	if err := sups[nSups-1].WaitIdle(20 * time.Second); err != nil {
		return 0, 0, 0, err
	}
	mttr := time.Since(start)
	var promotions, takeovers int64
	for _, s := range sups {
		promotions += s.Metrics().Counter("recovery.promotions").Value()
		takeovers += s.Metrics().Counter("recovery.takeovers").Value()
	}
	return mttr, promotions, takeovers, nil
}

// table1 prints the user interface of Table I.
func table1() error {
	t := &expt.Table{
		Title:   "Table I: user interface for checkpoint/restart in workflows",
		Headers: []string{"paper API", "gospaces API", "purpose"},
	}
	t.Add("workflow_check()", "Client.WorkflowCheck", "send a checkpoint event to data staging")
	t.Add("workflow_restart()", "Client.WorkflowRestart", "recover the staging client and notify the recovery event")
	t.Add("dspaces_put_with_log()", "Client.PutWithLog", "log data to data staging")
	t.Add("dspaces_get_with_log()", "Client.GetWithLog", "retrieve the logged data specified by geometric descriptor")
	t.Write(os.Stdout)
	return nil
}

func table2() error {
	w := cluster.TableII()
	t := &expt.Table{
		Title:   "Table II: experimental setup for synthetic test cases",
		Headers: []string{"parameter", "value"},
	}
	t.Add("total cores", fmt.Sprintf("%d + %d + %d = %d", w.SimCores, w.AnalyticCores, w.StagingCores, w.TotalCores()))
	t.Add("simulation cores", w.SimCores)
	t.Add("staging cores", w.StagingCores)
	t.Add("analytic cores", w.AnalyticCores)
	t.Add("volume size", fmt.Sprintf("%dx%dx%d", w.Global.Extent(0), w.Global.Extent(1), w.Global.Extent(2)))
	t.Add("data size (40 ts)", expt.MiB(w.BytesPerStep()*int64(w.Steps)))
	t.Add("access pattern", "write immediately followed by read")
	t.Add("coordinated ckpt period (ts)", w.CoordPeriod)
	t.Add("simulation ckpt period (ts)", w.SimPeriod)
	t.Add("analytic ckpt period (ts)", w.AnaPeriod)
	t.Add("MTBF", w.MTBF)
	t.Write(os.Stdout)
	return nil
}

func table3() error {
	t := &expt.Table{
		Title:   "Table III: scalability test configurations",
		Headers: []string{"scale", "total", "sim", "staging", "analytic", "data/40ts", "periods", "MTBF", "failures"},
	}
	for _, w := range cluster.TableIII() {
		t.Add(w.Name, w.TotalCores(), w.SimCores, w.StagingCores, w.AnalyticCores,
			expt.MiB(w.BytesPerStep()*int64(w.Steps)),
			fmt.Sprintf("%d/%d/%d", w.CoordPeriod, w.SimPeriod, w.AnaPeriod),
			w.MTBF, w.NFailures)
	}
	t.Write(os.Stdout)
	return nil
}

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gospaces/internal/corec"
	"gospaces/internal/domain"
	"gospaces/internal/qos"
	"gospaces/internal/staging"
	"gospaces/internal/transport"
)

// overloadRow is one BENCH_overload.json entry: one tenant's outcome at
// one (mode, load) point, with the point-wide rebuild and RAM readings
// repeated on the "hi" row.
type overloadRow struct {
	Mode         string  `json:"mode"`      // "qos" or "none"
	LoadMult     int     `json:"load_mult"` // flood multiplier (0 = unloaded baseline)
	Tenant       string  `json:"tenant"`    // "hi" or "lo"
	Ops          int64   `json:"ops"`       // successful puts in the window
	Rejects      int64   `json:"rejects"`   // rejected puts (shed or over budget)
	Seconds      float64 `json:"seconds"`   // measurement window
	GoodputMBs   float64 `json:"goodput_mb_s"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	RebuildMs    float64 `json:"rebuild_ms,omitempty"`     // median concurrent CoREC re-protection pass ("hi" rows; -1 = no pass completed)
	RebuildErrs  int     `json:"rebuild_errs,omitempty"`   // re-protection passes that failed
	RAMHighWater int64   `json:"ram_high_water,omitempty"` // max per-server staged bytes observed
	BudgetBytes  int64   `json:"budget_bytes,omitempty"`   // per-server staging budget
}

// Overload experiment geometry: a full-box put is 64x64x16 cells of 8
// bytes = 512 KiB, a quarter of it landing on each of the 4 servers.
const (
	overloadServers = 4
	overloadBudget  = int64(2 << 20)   // per-server staging RAM
	overloadLoQuota = int64(512 << 10) // per-server staging quota of the flood tenant
	overloadWindow  = 400 * time.Millisecond
	rebuildKeys     = 8
	rebuildKeyBytes = 256 << 10
)

func overloadGlobal() domain.BBox { return domain.Box3(0, 0, 0, 63, 63, 15) }

// overloadExp contrasts the admission-control layer against the bare
// budget check under a low-priority tenant flood at 1x/2x/4x offered
// load, while CoREC re-protection of a replaced server runs
// concurrently: per-tenant goodput and put latency percentiles, the
// re-protection time, and the staging-RAM high-water mark, written to
// outPath as JSON.
func overloadExp(outPath string) error {
	var rows []overloadRow
	fmt.Println("== overload: tenant flood vs admission control (qos) and bare budget (none) ==")
	base := map[string]overloadRow{}
	for _, mode := range []string{"qos", "none"} {
		for _, mult := range []int{0, 1, 2, 4} {
			point, err := overloadPoint(mode, mult)
			if err != nil {
				return fmt.Errorf("overload %s x%d: %w", mode, mult, err)
			}
			rows = append(rows, point...)
			hi := point[0]
			if mult == 0 {
				base[mode] = hi
			}
			fmt.Printf("  %-4s x%d: hi %6.1f MB/s p99 %6.2fms rejects %3d | rebuild %7.1fms | ram hw %4.1f%% of budget",
				mode, mult, hi.GoodputMBs, hi.P99Ms, hi.Rejects, hi.RebuildMs,
				100*float64(hi.RAMHighWater)/float64(overloadBudget))
			if mult > 0 {
				lo := point[1]
				fmt.Printf(" | lo admits %d sheds %d", lo.Ops, lo.Rejects)
			}
			fmt.Println()
		}
	}

	// The acceptance readings: under the heaviest flood with QoS on,
	// high-priority latency and re-protection must stay near baseline
	// and staged RAM under the budget.
	var worst overloadRow
	for _, r := range rows {
		if r.Mode == "qos" && r.LoadMult == 4 && r.Tenant == "hi" {
			worst = r
		}
	}
	b := base["qos"]
	fmt.Printf("  qos 4x vs unloaded: p99 %.2fx (want <= 3x), rebuild %.2fx (want <= 2x), ram hw %d <= budget %d: %v\n",
		ratio(worst.P99Ms, b.P99Ms), ratio(worst.RebuildMs, b.RebuildMs),
		worst.RAMHighWater, overloadBudget, worst.RAMHighWater <= overloadBudget)

	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d measurements to %s\n", len(rows), outPath)
	return nil
}

func ratio(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}

// overloadPoint measures one (mode, load) point on a fresh group:
// server 1 is lost and replaced empty, then for one window a paced
// high-priority producer, mult*2 flood workers on the low-priority
// tenant, and the CoREC rebuild of the replaced server's shards all run
// concurrently. Returns the hi row (with rebuild/RAM readings) and, for
// loaded points, the lo row.
func overloadPoint(mode string, mult int) ([]overloadRow, error) {
	global := overloadGlobal()
	cfg := staging.Config{
		Global:                global,
		NServers:              overloadServers,
		Bits:                  2,
		ElemSize:              8,
		MemoryBudgetPerServer: overloadBudget,
	}
	qcfg := qos.Config{
		Tenants: map[string]qos.Quota{
			"lo": {StagingBytes: overloadLoQuota, Priority: 0},
			"hi": {Priority: 2},
		},
		Default: qos.Quota{Priority: 1},
	}
	if mode == "qos" {
		cfg.QoS = &qcfg
	}
	// The retry layer is part of the system under test: typed overload
	// rejections carry retry-after hints the clients honor, so shed
	// flood workers self-throttle instead of spinning. The bare-budget
	// rejection of "none" mode is a terminal handler error — those
	// clients hammer on, which is exactly the contrast being measured.
	tr := transport.WithRetry(transport.NewInProc(), transport.RetryPolicy{
		MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond, Jitter: 0.2, Seed: 1,
	})
	defer tr.Close()
	g, err := staging.StartGroup(tr, "overload", cfg)
	if err != nil {
		return nil, err
	}
	defer g.Close()

	// Protected checkpoint shards, placed before the failure so the
	// rebuild has redundancy to restore.
	hiClient, err := g.NewClient("bench/hi")
	if err != nil {
		return nil, err
	}
	defer hiClient.Close()
	conns := make([]transport.Client, hiClient.NumServers())
	for i := range conns {
		conns[i] = hiClient.ShardConn(i)
	}
	red, err := corec.New(corec.Config{Mode: corec.Replication, Replicas: 2}, conns)
	if err != nil {
		return nil, err
	}
	shard := make([]byte, rebuildKeyBytes)
	for i := range shard {
		shard[i] = byte(i * 31)
	}
	keys := make([]string, rebuildKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("ckpt/k%d", i)
		if err := red.Put(keys[i], shard); err != nil {
			return nil, err
		}
	}

	// Lose server 1 and bring up an empty replacement with the same
	// budget and admission config (the promotion path does the same via
	// EnableQoS on the spare).
	if err := g.FailStop(1); err != nil {
		return nil, err
	}
	if err := g.ReplaceServer(1); err != nil {
		return nil, err
	}
	repl := g.Server(1)
	repl.SetMemoryBudget(overloadBudget)
	if mode == "qos" {
		repl.EnableQoS(qcfg)
	}

	payload := make([]byte, domain.BufLen(global, 8))
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	deadline := time.Now().Add(overloadWindow)

	// Flood workers: the low-priority tenant offers distinct unlogged
	// objects as fast as rejections allow (the retry layer honors the
	// server's retry-after hints, so a shed worker self-throttles).
	var loOps, loRejects, floodSeq atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 2*mult; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := g.NewClient(fmt.Sprintf("bench/lo%d", w))
			if err != nil {
				return
			}
			defer c.Close()
			for time.Now().Before(deadline) {
				name := fmt.Sprintf("lo/f%d", floodSeq.Add(1))
				if err := c.Put(name, 1, global, payload); err != nil {
					loRejects.Add(1)
				} else {
					loOps.Add(1)
				}
			}
		}(w)
	}

	// Concurrent re-protection: rebuild passes repeat for the whole
	// window, un-protecting server 1's shards (untimed) before each
	// timed pass, so the reading is a median over many passes instead of
	// one noisy measurement.
	var rebuildPasses []time.Duration
	var rebuildErrs int
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			for _, k := range keys {
				conns[1].Call(staging.ShardDropReq{Key: k})
			}
			t0 := time.Now()
			ok := true
			for _, k := range keys {
				if _, err := red.Rebuild(k); err != nil {
					rebuildErrs++
					ok = false
					break
				}
			}
			if ok {
				rebuildPasses = append(rebuildPasses, time.Since(t0))
			}
		}
	}()

	// RAM high-water sampler across the live servers.
	var ramHW int64
	stopSampler := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			for i := 0; i < overloadServers; i++ {
				if raw, err := g.Server(i).Handle(staging.StatsReq{}); err == nil {
					if st, ok := raw.(staging.StatsResp); ok && st.StoreBytes > ramHW {
						ramHW = st.StoreBytes
					}
				}
			}
			select {
			case <-stopSampler:
				return
			case <-time.After(5 * time.Millisecond):
			}
		}
	}()

	// The high-priority producer: paced puts of a rolling version under
	// one name (unlogged replacement, so its footprint stays flat).
	var hiOps, hiRejects int64
	var lat []time.Duration
	start := time.Now()
	for v := int64(1); time.Now().Before(deadline); v++ {
		t0 := time.Now()
		err := hiClient.Put("hi/field", v, global, payload)
		if err != nil {
			hiRejects++
		} else {
			hiOps++
			lat = append(lat, time.Since(t0))
		}
		time.Sleep(time.Millisecond)
	}
	sec := time.Since(start).Seconds()
	close(stopSampler)
	wg.Wait()
	// Without admission control a flooded group can refuse the
	// re-protection writes: a point with no completed pass reports -1
	// (unprotected) rather than failing the experiment.
	rebuildMs := -1.0
	if len(rebuildPasses) > 0 {
		rebuildMs = percentileMs(rebuildPasses, 0.5)
	}

	rows := []overloadRow{{
		Mode: mode, LoadMult: mult, Tenant: "hi",
		Ops: hiOps, Rejects: hiRejects, Seconds: sec,
		GoodputMBs:   float64(hiOps) * float64(len(payload)) / (1 << 20) / sec,
		P50Ms:        percentileMs(lat, 0.50),
		P99Ms:        percentileMs(lat, 0.99),
		RebuildMs:    rebuildMs,
		RebuildErrs:  rebuildErrs,
		RAMHighWater: ramHW,
		BudgetBytes:  overloadBudget,
	}}
	if mult > 0 {
		rows = append(rows, overloadRow{
			Mode: mode, LoadMult: mult, Tenant: "lo",
			Ops: loOps.Load(), Rejects: loRejects.Load(), Seconds: sec,
			GoodputMBs: float64(loOps.Load()) * float64(len(payload)) / (1 << 20) / sec,
		})
	}
	return rows, nil
}

func percentileMs(lat []time.Duration, p float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(p * float64(len(s)-1))
	return float64(s[idx]) / float64(time.Millisecond)
}

// Package gospaces is a staging-based in-situ workflow runtime with
// workflow-level crash consistency, reproducing "Scalable Crash
// Consistency for Staging-based In-situ Scientific Workflows"
// (Duan & Parashar, IPDPS 2020) in pure Go.
//
// The package provides:
//
//   - A DataSpaces-like staging service: groups of in-memory servers
//     jointly storing versioned array regions addressed by bounding
//     box, over in-process or TCP transports (StartStaging, Serve,
//     Connect).
//   - The paper's crash-consistency interface (its Table I):
//     Client.PutWithLog, Client.GetWithLog, Client.WorkflowCheck, and
//     Client.WorkflowRestart. Staging servers log data-access events in
//     per-component queues; after a failure, a component restarts from
//     its own checkpoint and the staging area replays its logged reads
//     and suppresses its duplicate writes, keeping the coupled workflow
//     consistent without coordinated global rollback.
//   - A workflow runtime (RunWorkflow) that executes a coupled
//     producer/consumer workflow on an MPI-like runtime under any of the
//     paper's four fault-tolerance schemes — Coordinated,
//     Uncoordinated, Individual, Hybrid — with live fail-stop injection
//     and recovery.
//   - The evaluation harness (RunScaleModel plus cmd/wfbench), which
//     regenerates every table and figure of the paper's evaluation.
//
// See the examples/ directory for runnable programs and DESIGN.md for
// the system inventory.
package gospaces

import (
	"fmt"
	"io"
	"time"

	"gospaces/internal/ckpt"
	"gospaces/internal/cluster"
	"gospaces/internal/corec"
	"gospaces/internal/dht"
	"gospaces/internal/domain"
	"gospaces/internal/expt"
	"gospaces/internal/health"
	"gospaces/internal/pfs"
	"gospaces/internal/qos"
	"gospaces/internal/staging"
	"gospaces/internal/synth"
	"gospaces/internal/tier"
	"gospaces/internal/trace"
	"gospaces/internal/transport"
	"gospaces/internal/workflow"
)

// ---------------------------------------------------------------------
// Geometry.

// BBox is a closed axis-aligned box on the global integer grid; every
// staged object and staging request carries one.
type BBox = domain.BBox

// Point is a grid coordinate.
type Point = domain.Point

// Decomposition partitions a global box across application ranks.
type Decomposition = domain.Decomposition

// Box3 builds a 3-D box literal [x0..x1]x[y0..y1]x[z0..z1].
func Box3(x0, y0, z0, x1, y1, z1 int64) BBox { return domain.Box3(x0, y0, z0, x1, y1, z1) }

// NewBBox constructs an n-dimensional box.
func NewBBox(n int, min, max []int64) (BBox, error) { return domain.NewBBox(n, min, max) }

// NewDecomposition partitions global over a process grid.
func NewDecomposition(global BBox, procs []int) (*Decomposition, error) {
	return domain.NewDecomposition(global, procs)
}

// Subset returns a box covering the given fraction of the domain (the
// paper's Case 1 access pattern).
func Subset(global BBox, frac float64) BBox { return domain.Subset(global, frac) }

// ---------------------------------------------------------------------
// Staging.

// StagingConfig describes a staging server group.
type StagingConfig = staging.Config

// Curve selects the space-filling curve of the staging index.
type Curve = dht.Curve

// Space-filling curves for StagingConfig.Curve.
const (
	// ZOrder is the Morton curve, DataSpaces' default.
	ZOrder = dht.CurveZ
	// Hilbert trades code computation for better query locality.
	Hilbert = dht.CurveHilbert
)

// Staging is a running in-process staging group.
type Staging = staging.Group

// Pool is a client-side view of a staging group.
type Pool = staging.Pool

// Client is one application rank's connection to the staging area. It
// carries both the original DataSpaces-style API (Put/Get) and the
// paper's crash-consistent API (PutWithLog/GetWithLog/WorkflowCheck/
// WorkflowRestart).
type Client = staging.Client

// StagingStats is the aggregated server-side accounting.
type StagingStats = staging.StatsResp

// NoVersion requests the latest staged version on Get.
const NoVersion = staging.NoVersion

// ReduceOp selects a server-side (in-transit) aggregate for
// Client.Reduce: the staging servers reduce their local pieces and the
// client combines partials, so the field never leaves the staging area.
type ReduceOp = staging.ReduceOp

// In-transit reductions.
const (
	ReduceMin   = staging.ReduceMin
	ReduceMax   = staging.ReduceMax
	ReduceSum   = staging.ReduceSum
	ReduceCount = staging.ReduceCount
)

// StartStaging launches an in-process staging group.
func StartStaging(cfg StagingConfig) (*Staging, error) {
	return staging.StartGroup(transport.NewInProc(), "gospaces", cfg)
}

// StagingServer is one TCP staging server (cmd/stagingd wraps this).
type StagingServer struct {
	ep   io.Closer
	srv  *staging.Server
	addr string
}

// Addr returns the server's bound address.
func (s *StagingServer) Addr() string { return s.addr }

// SetMembership installs the staging group's ordered address list (and
// its epoch) on this server. Log replication needs it: each server
// locates its own slot by address and ships mutations to its
// WlogReplicas membership successors. In-process groups (StartGroup /
// RunWorkflow) wire this automatically; TCP deployments call it once
// all group members are listening.
func (s *StagingServer) SetMembership(epoch uint64, addrs []string) {
	s.srv.SetMembership(epoch, addrs)
}

// Close stops the server.
func (s *StagingServer) Close() error {
	s.srv.StopReplication()
	return s.ep.Close()
}

// ServeOptions configures a TCP staging server, including the
// server-side fault injection stagingd exposes for resilience testing:
// handled requests are delayed with ChaosDelayProb and hang (long
// enough to trip client deadlines, i.e. a dropped response) with
// ChaosHangProb. Zero options serve faithfully.
type ServeOptions struct {
	ChaosSeed      int64
	ChaosDelayProb float64
	ChaosDelay     time.Duration
	ChaosHangProb  float64
	ChaosHang      time.Duration
	// Spare starts the server as a warm spare: it answers health pings
	// (reporting Spare=true) but waits outside the membership until a
	// recovery supervisor promotes it in place of a failed server.
	Spare bool
	// WlogReplicas ships every event-log mutation (and the staged
	// payloads riding it) to this many membership successors, so a
	// recovery supervisor can restore a fail-stopped server's log onto
	// a promoted spare. 0 disables log replication.
	WlogReplicas int
	// QoS enables the admission-control layer: per-tenant quotas,
	// priority-ordered load shedding with typed retry-after rejections,
	// and the foreground/recovery priority lanes. nil disables it.
	QoS *QoSConfig
	// TierDir, when non-empty, attaches a PFS cold tier backed by that
	// directory: logged versions colder than the newest demote to it at
	// the spill watermark (crash-atomically, in CRC'd twin-generation
	// records) instead of shedding the put, and replay reads promote
	// them back transparently.
	TierDir string
	// TierWatermark is the fraction of the memory budget above which
	// puts demote cold versions (<= 0: the QoS SpillWater when QoS is
	// on, else the package default).
	TierWatermark float64
	// MemoryBudget caps the server's resident object bytes (0 =
	// unlimited). The cold tier needs a budget to have a watermark to
	// spill against.
	MemoryBudget int64
}

// Serve starts staging server id listening on addr (host:port; use
// ":0" for an ephemeral port).
func Serve(addr string, id int) (*StagingServer, error) {
	return ServeWithOptions(addr, id, ServeOptions{})
}

// ServeWithOptions starts staging server id with fault-injection
// options (see ServeOptions).
func ServeWithOptions(addr string, id int, opts ServeOptions) (*StagingServer, error) {
	var tr transport.Transport = transport.NewTCP()
	if opts.ChaosDelayProb > 0 || opts.ChaosHangProb > 0 {
		chaos := transport.NewChaos(tr, opts.ChaosSeed)
		chaos.SetServeFaults(opts.ChaosDelayProb, opts.ChaosDelay, opts.ChaosHangProb, opts.ChaosHang)
		tr = chaos
	}
	srv := staging.NewServer(id)
	srv.SetSpare(opts.Spare)
	if opts.QoS != nil {
		srv.EnableQoS(*opts.QoS)
	}
	if opts.MemoryBudget > 0 {
		srv.SetMemoryBudget(opts.MemoryBudget)
	}
	if opts.TierDir != "" {
		be, err := pfs.NewDirStore(opts.TierDir)
		if err != nil {
			return nil, fmt.Errorf("gospaces: tier dir: %w", err)
		}
		srv.EnableTier(be, opts.TierWatermark)
	}
	closer, err := tr.Listen(addr, srv.Handle)
	if err != nil {
		return nil, fmt.Errorf("gospaces: serve: %w", err)
	}
	bound := addr
	if a, ok := closer.(interface{ Addr() string }); ok {
		bound = a.Addr()
	}
	if opts.WlogReplicas > 0 {
		// The server finds its own membership slot by address, so it
		// must know the bound (not the requested ":0") address.
		srv.SetAddr(bound)
		srv.EnableReplication(tr, opts.WlogReplicas)
	}
	return &StagingServer{ep: closer, srv: srv, addr: bound}, nil
}

// RetryPolicy configures the RPC retry layer (exponential backoff with
// jitter and a retry budget).
type RetryPolicy = transport.RetryPolicy

// ErrDegraded reports a staging server that stayed unreachable past the
// retry policy; errors.Is(err, ErrDegraded) distinguishes transport
// degradation from protocol errors.
var ErrDegraded = staging.ErrDegraded

// DialOptions configures the resilient RPC layer between clients and
// TCP staging servers.
type DialOptions struct {
	// CallTimeout bounds each RPC (0 = no deadline).
	CallTimeout time.Duration
	// DialTimeout bounds connection establishment (0 = no deadline).
	DialTimeout time.Duration
	// Retry is the backoff policy for transient transport faults.
	Retry RetryPolicy
}

// DefaultDialOptions is the production default: 10s call deadline, 5s
// dial deadline, 4 attempts with 50ms..2s jittered backoff.
func DefaultDialOptions() DialOptions {
	return DialOptions{
		CallTimeout: 10 * time.Second,
		DialTimeout: 5 * time.Second,
		Retry:       transport.DefaultRetryPolicy(),
	}
}

// Connect builds a client pool for staging servers listening on the
// given TCP addresses (in server-id order), with the default resilient
// RPC layer: per-call deadlines, automatic re-dial of broken
// connections, and retries with exponential backoff.
func Connect(addrs []string, cfg StagingConfig) (*Pool, error) {
	return ConnectWithOptions(addrs, cfg, DefaultDialOptions())
}

// ConnectWithOptions is Connect with an explicit RPC policy.
func ConnectWithOptions(addrs []string, cfg StagingConfig, opts DialOptions) (*Pool, error) {
	tcp := transport.NewTCPTimeout(opts.CallTimeout, opts.DialTimeout)
	return staging.NewPool(transport.WithRetry(tcp, opts.Retry), addrs, cfg)
}

// ---------------------------------------------------------------------
// Workflow-level fault tolerance.

// Scheme selects the workflow-level fault-tolerance scheme.
type Scheme = ckpt.Scheme

// The paper's four schemes (§IV-A).
const (
	// Coordinated is global coordinated checkpoint/restart: the whole
	// workflow checkpoints together and rolls back together.
	Coordinated = ckpt.Coordinated
	// Uncoordinated checkpoints components independently, relying on
	// staging data logging for crash consistency.
	Uncoordinated = ckpt.Uncoordinated
	// Individual checkpoints components independently without data
	// logging: fastest, but does not guarantee correct results.
	Individual = ckpt.Individual
	// Hybrid mixes process replication (analytic) with C/R
	// (simulation), composed through data logging.
	Hybrid = ckpt.Hybrid
)

// WorkflowOptions configures a live workflow run.
type WorkflowOptions = workflow.Options

// WorkflowResult reports a live workflow run, including the end-to-end
// consistency verification counters.
type WorkflowResult = workflow.Result

// FailAt schedules a fail-stop injection into a live workflow run.
type FailAt = workflow.FailAt

// ServerFailAt schedules a permanent staging-server fail-stop into a
// live workflow run: the server's listener closes for good at the top
// of the producer's scheduled timestep, and the recovery supervisor
// promotes a warm spare in its place.
type ServerFailAt = workflow.ServerFailAt

// RunWorkflow executes a coupled producer/consumer workflow on live
// staging with the chosen scheme, injecting and recovering the
// scheduled failures. Every consumer read is verified against the
// deterministic synthetic field, so WorkflowResult.CorruptReads == 0
// demonstrates crash consistency end to end.
func RunWorkflow(opts WorkflowOptions) (WorkflowResult, error) {
	return workflow.Run(opts)
}

// ---------------------------------------------------------------------
// Recorded traces and churn soaks.

// TraceHeader describes one recorded workload trace: the environment
// it ran against (servers, spares, domain, budgets) and the digest its
// replay must reproduce.
type TraceHeader = trace.Header

// TraceEvent is one recorded workload-facing operation or injected
// fault, positioned on the trace's logical clock.
type TraceEvent = trace.Event

// Trace event kinds a client-driven replay acts on (fault kinds and
// EvNote records are observability-only outside the soak harness).
const (
	TraceEvPut        = trace.EvPut
	TraceEvGet        = trace.EvGet
	TraceEvCheckpoint = trace.EvCheckpoint
	TraceEvRestart    = trace.EvRestart
	TraceEvLock       = trace.EvLock
	TraceEvUnlock     = trace.EvUnlock
	TraceEvRLock      = trace.EvRLock
	TraceEvRUnlock    = trace.EvRUnlock
	TraceEvNote       = trace.EvNote
)

// TraceRecord is one entry of a staging server's in-memory
// observability ring (Client.TraceRecords).
type TraceRecord = trace.Record

// TraceEventFromRecord converts a ring-buffer record into a replayable
// trace event, for exporting a live group's recent activity as a trace
// file (dsctl trace dump).
func TraceEventFromRecord(r TraceRecord) TraceEvent {
	return trace.FromRecord(r)
}

// WriteTraceFile atomically persists a recorded trace in the durable
// CRC-framed format (see DESIGN.md §10).
func WriteTraceFile(path string, h TraceHeader, events []TraceEvent) error {
	return trace.WriteFile(path, h, events)
}

// ReadTraceFile loads and verifies a recorded trace; torn, bit-rotted,
// reordered, or future-versioned files fail with typed errors.
func ReadTraceFile(path string) (TraceHeader, []TraceEvent, error) {
	return trace.ReadFile(path)
}

// SoakOptions configures one seeded churn soak (RunSoak).
type SoakOptions = workflow.SoakOptions

// SoakResult reports one executed soak trace.
type SoakResult = workflow.SoakResult

// RunSoak builds the deterministic trace for one seeded churn soak —
// a recorded multi-group workload interleaved with fail-stops,
// blackouts, tier faults, and tenant floods — and executes it against
// a live staging group. The returned trace replays the run exactly:
// persist it with WriteTraceFile when the run fails and the failure
// reproduces under ReplaySoakTrace.
func RunSoak(o SoakOptions) (TraceHeader, []TraceEvent, SoakResult, error) {
	return workflow.RunSoak(o)
}

// ReplaySoakTrace re-executes a recorded soak trace against a freshly
// built staging group and verifies every checked get byte-exactly
// against the recorded digests.
func ReplaySoakTrace(h TraceHeader, events []TraceEvent) (SoakResult, error) {
	return workflow.ReplayTrace(h, events)
}

// ---------------------------------------------------------------------
// Synthetic fields (workload generation and validation).

// Field generates deterministic synthetic array data, so producers and
// validators agree on every byte without communicating.
type Field = synth.Field

// NewField creates a field generator for (name, domain, element size).
func NewField(name string, global BBox, elemSize int) *Field {
	return synth.NewField(name, global, elemSize)
}

// ---------------------------------------------------------------------
// Staging-data resilience (CoREC layer).

// RedundancyMode selects replication or erasure coding for staged data.
type RedundancyMode = corec.Mode

// Redundancy schemes for staged payloads.
const (
	Replication   = corec.Replication
	ErasureCoding = corec.ErasureCoding
)

// RedundancyConfig describes the redundancy geometry.
type RedundancyConfig = corec.Config

// Redundancy stores objects resiliently across the staging group, with
// degraded reads while servers are down and explicit rebuild.
type Redundancy = corec.Client

// NewRedundancy creates a resilience client over a staging client's
// server connections.
func NewRedundancy(cfg RedundancyConfig, c *Client) (*Redundancy, error) {
	conns := make([]transport.Client, c.NumServers())
	for i := range conns {
		conns[i] = c.ShardConn(i)
	}
	return corec.New(cfg, conns)
}

// ---------------------------------------------------------------------
// Health probing (dsctl health wraps this).

// ServerHealth is one staging server's liveness and recovery
// accounting as seen by a health probe.
type ServerHealth struct {
	// Addr is the probed address.
	Addr string
	// Alive is true when the server answered the ping.
	Alive bool
	// ID is the server's id within its group (valid when Alive).
	ID int
	// Epoch is the membership epoch the server holds (0 until the
	// first recovery pushes a view).
	Epoch uint64
	// Spare is true while the server waits outside the membership.
	Spare bool
	// ShardBytes, RebuiltShards, RebuiltBytes report the server's
	// resilience-shard footprint and how much of it was re-written by
	// recovery re-protection.
	ShardBytes    int64
	RebuiltShards int64
	RebuiltBytes  int64
	// Err describes the probe failure when Alive is false.
	Err string
}

// ProbeHealth pings each address and collects liveness, membership
// epoch, and recovery accounting. Dead servers are reported with
// Alive=false rather than failing the probe.
func ProbeHealth(addrs []string, opts DialOptions) []ServerHealth {
	tr := transport.NewTCPTimeout(opts.CallTimeout, opts.DialTimeout)
	out := make([]ServerHealth, len(addrs))
	for i, addr := range addrs {
		out[i] = probeOne(tr, addr)
	}
	return out
}

func probeOne(tr transport.Transport, addr string) ServerHealth {
	h := ServerHealth{Addr: addr}
	conn, err := tr.Dial(addr)
	if err != nil {
		h.Err = err.Error()
		return h
	}
	defer conn.Close()
	resp, err := conn.Call(health.PingReq{From: "dsctl"})
	if err != nil {
		h.Err = err.Error()
		return h
	}
	ping, ok := resp.(health.PingResp)
	if !ok {
		h.Err = fmt.Sprintf("unexpected ping response %T", resp)
		return h
	}
	h.Alive = true
	h.ID = ping.ID
	h.Epoch = ping.Epoch
	h.Spare = ping.Spare
	if sresp, err := conn.Call(staging.StatsReq{}); err == nil {
		if st, ok := sresp.(staging.StatsResp); ok {
			h.ShardBytes = st.ShardBytes
			h.RebuiltShards = st.RebuiltShards
			h.RebuiltBytes = st.RebuiltBytes
			if st.Epoch > h.Epoch {
				h.Epoch = st.Epoch
			}
		}
	}
	return h
}

// LeaderView is one staging server's view of recovery leadership: the
// lease record it granted, its fencing high-water mark, and any
// journaled promotion intents (the dead-slot backlog a takeover would
// resume).
type LeaderView struct {
	// Addr is the probed address.
	Addr string
	// Holder names the supervisor the server granted the lease to
	// (empty when no lease is held).
	Holder string
	// Token is the granted lease's fencing token.
	Token uint64
	// Fence is the highest token the server has seen: calls below it
	// are rejected.
	Fence uint64
	// ExpiresIn is the remaining lease time (negative when expired).
	ExpiresIn time.Duration
	// Intents are the promotions journaled on this server but not yet
	// completed.
	Intents []PromotionIntentInfo
	// Err describes the probe failure (the other fields are zero).
	Err string
}

// PromotionIntentInfo renders one journaled promotion intent.
type PromotionIntentInfo struct {
	Slot     int
	DeadAddr string
	Spare    string
	Token    uint64
}

// ProbeLeader asks each address for its recovery-leadership view —
// lease holder, fencing token, and journaled promotion backlog. Dead
// servers are reported with Err set rather than failing the probe.
// dsctl leader wraps this.
func ProbeLeader(addrs []string, opts DialOptions) []LeaderView {
	tr := transport.NewTCPTimeout(opts.CallTimeout, opts.DialTimeout)
	out := make([]LeaderView, len(addrs))
	for i, addr := range addrs {
		out[i] = leaderOne(tr, addr)
	}
	return out
}

func leaderOne(tr transport.Transport, addr string) LeaderView {
	v := LeaderView{Addr: addr}
	conn, err := tr.Dial(addr)
	if err != nil {
		v.Err = err.Error()
		return v
	}
	defer conn.Close()
	raw, err := conn.Call(staging.LeaderInfoReq{})
	if err != nil {
		v.Err = err.Error()
		return v
	}
	resp, ok := raw.(staging.LeaderInfoResp)
	if !ok {
		v.Err = fmt.Sprintf("unexpected leader-info response %T", raw)
		return v
	}
	v.Holder = resp.Holder
	v.Token = resp.Token
	v.Fence = resp.MaxFence
	v.ExpiresIn = resp.ExpiresIn
	for _, in := range resp.Intents {
		v.Intents = append(v.Intents, PromotionIntentInfo{
			Slot: in.Slot, DeadAddr: in.DeadAddr, Spare: in.Spare, Token: in.Token,
		})
	}
	return v
}

// ---------------------------------------------------------------------
// Admission control and QoS (dsctl qos wraps ProbeQoS).

// QoSConfig configures the staging admission-control layer: tenant
// quotas over staging memory and event-log bytes, the global
// high-water mark for priority-ordered load shedding, retry-after
// sizing, and the foreground/recovery lane weights. Enable it with
// StagingConfig.QoS (in-process groups) or ServeOptions.QoS (TCP
// servers).
type QoSConfig = qos.Config

// QoSQuota is one tenant's admission limits and shedding priority.
// Zero limits are unlimited; higher priority sheds later.
type QoSQuota = qos.Quota

// ErrOverloaded is the typed admission rejection: which tenant hit
// which resource, and when to come back. The retry layer honors
// RetryAfter automatically; OverloadedError extracts it from any
// wrapped or wire-flattened error chain.
type ErrOverloaded = qos.ErrOverloaded

// Overloaded resources reported in ErrOverloaded.Resource.
const (
	// ResourceStaging is a tenant's staging-memory quota.
	ResourceStaging = qos.ResourceStaging
	// ResourceWlog is a tenant's event-log byte quota.
	ResourceWlog = qos.ResourceWlog
	// ResourceGlobal is the server-wide staging-RAM budget (priority-
	// ordered shedding above the high-water mark).
	ResourceGlobal = qos.ResourceGlobal
)

// OverloadedError extracts the typed overload rejection from err,
// looking through error wrapping and the string form RPC transports
// flatten remote errors into.
func OverloadedError(err error) (*ErrOverloaded, bool) { return qos.FromError(err) }

// QoSTenant is one tenant's admission accounting on one server.
type QoSTenant = staging.QosTenant

// QoSView is one staging server's admission-control accounting as seen
// by a probe.
type QoSView struct {
	// Addr is the probed address.
	Addr string
	// Alive is true when the server answered; Err holds the failure
	// otherwise.
	Alive bool
	// Enabled is true when the admission layer is on.
	Enabled bool
	// ID is the server's id within its group.
	ID int
	// Tenants is the per-tenant usage, quota, and admit/shed accounting.
	Tenants []QoSTenant
	// Admits and Sheds count admission decisions server-wide.
	Admits, Sheds int64
	// QueueForeground and QueueRecovery are the current lane queue
	// depths.
	QueueForeground, QueueRecovery int64
	// ReplLag is the event-log replication backlog (records shipped
	// behind the log sequence).
	ReplLag int64
	// Err describes the probe failure when Alive is false.
	Err string
}

// ProbeQoS asks each address for its admission-control view: tenant
// quota usage, admit/shed counters, lane queue depths, and replication
// lag. Dead servers are reported with Alive=false rather than failing
// the probe. dsctl qos wraps this.
func ProbeQoS(addrs []string, opts DialOptions) []QoSView {
	tr := transport.NewTCPTimeout(opts.CallTimeout, opts.DialTimeout)
	out := make([]QoSView, len(addrs))
	for i, addr := range addrs {
		out[i] = qosOne(tr, addr)
	}
	return out
}

func qosOne(tr transport.Transport, addr string) QoSView {
	v := QoSView{Addr: addr}
	conn, err := tr.Dial(addr)
	if err != nil {
		v.Err = err.Error()
		return v
	}
	defer conn.Close()
	raw, err := conn.Call(staging.QosStatsReq{})
	if err != nil {
		v.Err = err.Error()
		return v
	}
	resp, ok := raw.(staging.QosStatsResp)
	if !ok {
		v.Err = fmt.Sprintf("unexpected qos-stats response %T", raw)
		return v
	}
	v.Alive = true
	v.Enabled = resp.Enabled
	v.ID = resp.ID
	v.Tenants = resp.Tenants
	v.Admits = resp.Admits
	v.Sheds = resp.Sheds
	v.QueueForeground = resp.QueueForeground
	v.QueueRecovery = resp.QueueRecovery
	v.ReplLag = resp.ReplLag
	return v
}

// ---------------------------------------------------------------------
// Cold tier (dsctl tier wraps ProbeTier).

// ErrTierDegraded reports a cold tier that has fallen back to RAM-only
// operation after a backend fault; errors.Is(err, ErrTierDegraded)
// distinguishes tier degradation from other staging errors. A
// successful scrub pass re-arms the tier.
var ErrTierDegraded error = tier.ErrTierDegraded

// TierView is one staging server's cold-tier accounting as seen by a
// probe: spill/promote traffic, scrub results, degradation, and the
// incremental event-log replication counters (delta re-syncs served
// from the retained window vs full snapshot fallbacks).
type TierView struct {
	// Addr is the probed address.
	Addr string
	// Alive is true when the server answered; Err holds the failure
	// otherwise.
	Alive bool
	// Enabled is true when a cold tier is attached.
	Enabled bool
	// ID is the server's id within its group.
	ID int
	// Degraded is true while the tier runs RAM-only after a backend
	// fault (a scrub pass re-arms it).
	Degraded bool
	// Entries and Bytes are the spilled records resident in the tier.
	Entries int
	Bytes   int64
	// Spill/promote traffic (cumulative).
	Spills, SpillBytes, Promotes, PromoteBytes int64
	// Scrub accounting: records CRC-checked, healed from the twin
	// generation, and lost to double corruption; DegradedEvents counts
	// RAM-only fallbacks.
	ScrubChecked, ScrubHealed, ScrubLost, DegradedEvents int64
	// Incremental wlog replication: delta re-syncs served from the
	// retained window vs full snapshots, with shipped bytes for each.
	DeltaResyncs, DeltaBytes, SnapshotsSent, SnapshotBytes int64
	// Err describes the probe failure when Alive is false.
	Err string
}

// ProbeTier asks each address for its cold-tier view: spill/promote
// accounting, scrub results, degradation state, and incremental
// replication counters. Dead servers are reported with Alive=false
// rather than failing the probe. dsctl tier wraps this.
func ProbeTier(addrs []string, opts DialOptions) []TierView {
	tr := transport.NewTCPTimeout(opts.CallTimeout, opts.DialTimeout)
	out := make([]TierView, len(addrs))
	for i, addr := range addrs {
		out[i] = tierOne(tr, addr)
	}
	return out
}

func tierOne(tr transport.Transport, addr string) TierView {
	v := TierView{Addr: addr}
	conn, err := tr.Dial(addr)
	if err != nil {
		v.Err = err.Error()
		return v
	}
	defer conn.Close()
	raw, err := conn.Call(staging.TierStatsReq{})
	if err != nil {
		v.Err = err.Error()
		return v
	}
	resp, ok := raw.(staging.TierStatsResp)
	if !ok {
		v.Err = fmt.Sprintf("unexpected tier-stats response %T", raw)
		return v
	}
	v.Alive = true
	v.Enabled = resp.Enabled
	v.ID = resp.ID
	v.Degraded = resp.Degraded
	v.Entries = resp.Entries
	v.Bytes = resp.Bytes
	v.Spills = resp.Spills
	v.SpillBytes = resp.SpillBytes
	v.Promotes = resp.Promotes
	v.PromoteBytes = resp.PromoteBytes
	v.ScrubChecked = resp.ScrubChecked
	v.ScrubHealed = resp.ScrubHealed
	v.ScrubLost = resp.ScrubLost
	v.DegradedEvents = resp.DegradedEvents
	v.DeltaResyncs = resp.DeltaResyncs
	v.DeltaBytes = resp.DeltaBytes
	v.SnapshotsSent = resp.SnapshotsSent
	v.SnapshotBytes = resp.SnapshotBytes
	return v
}

// ScrubView is the result of one server's triggered scrub pass.
type ScrubView struct {
	// Addr is the probed address.
	Addr string
	// Alive is true when the server answered; Err holds the failure
	// otherwise.
	Alive bool
	// Enabled is true when a cold tier is attached.
	Enabled bool
	// ID is the server's id within its group.
	ID int
	// Checked, Healed, Lost count the records CRC-verified by this
	// pass, those re-replicated from their surviving twin generation,
	// and those lost to double corruption (detected, dropped, counted —
	// never silently returned).
	Checked, Healed, Lost int64
	// Degraded is true when the tier is still RAM-only after the pass
	// (the degradation probe write also failed).
	Degraded bool
	// Err describes the probe failure when Alive is false.
	Err string
}

// ScrubTier triggers a CRC scrub pass over each server's spilled
// records: every record generation is re-read and CRC-verified, corrupt
// generations are re-replicated from their intact twins, and a degraded
// tier that passes its probe write is re-armed. Dead servers are
// reported with Alive=false rather than failing the probe. dsctl scrub
// wraps this.
func ScrubTier(addrs []string, opts DialOptions) []ScrubView {
	tr := transport.NewTCPTimeout(opts.CallTimeout, opts.DialTimeout)
	out := make([]ScrubView, len(addrs))
	for i, addr := range addrs {
		out[i] = scrubOne(tr, addr)
	}
	return out
}

func scrubOne(tr transport.Transport, addr string) ScrubView {
	v := ScrubView{Addr: addr}
	conn, err := tr.Dial(addr)
	if err != nil {
		v.Err = err.Error()
		return v
	}
	defer conn.Close()
	raw, err := conn.Call(staging.TierScrubReq{})
	if err != nil {
		v.Err = err.Error()
		return v
	}
	resp, ok := raw.(staging.TierScrubResp)
	if !ok {
		v.Err = fmt.Sprintf("unexpected tier-scrub response %T", raw)
		return v
	}
	v.Alive = true
	v.Enabled = resp.Enabled
	v.ID = resp.ID
	v.Checked = resp.Checked
	v.Healed = resp.Healed
	v.Lost = resp.Lost
	v.Degraded = resp.Degraded
	return v
}

// ---------------------------------------------------------------------
// Evaluation harness.

// MachineModel holds the performance model of the host system.
type MachineModel = cluster.Machine

// WorkflowConfig is one experiment configuration (core counts, domain,
// checkpoint periods, failure characteristics).
type WorkflowConfig = cluster.Workflow

// Cori returns the default Cori-like machine model.
func Cori() MachineModel { return cluster.Cori() }

// TableII returns the paper's Table II configuration (352 cores).
func TableII() WorkflowConfig { return cluster.TableII() }

// TableIII returns the paper's Table III scalability configurations
// (704..11264 cores).
func TableIII() []WorkflowConfig { return cluster.TableIII() }

// ScaleModelParams configures a virtual-time run at paper scale.
type ScaleModelParams = expt.SimParams

// ScaleModelResult reports a virtual-time run.
type ScaleModelResult = expt.SimResult

// RunScaleModel executes the crash-consistency protocol on the
// virtual-time simulator at any Table II/III scale and returns the
// total workflow execution time (Figures 9(e) and 10).
func RunScaleModel(p ScaleModelParams) (ScaleModelResult, error) {
	return expt.RunSim(p)
}

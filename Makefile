# Tier-1 verification and CI targets. `make check` is the pre-merge
# gate; `make short` skips the chaos soak for fast iteration.

GO ?= go

.PHONY: check vet build test race short bench

check: vet test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# The resilience acceptance gate: transport, staging, and the
# fail-stop recovery stack under the race detector (includes the chaos
# soak, lifecycle, supervised-recovery, and log-replication tests, plus
# the crash-consistency state machines: wlog, ckpt, pfs).
race:
	$(GO) test -race ./internal/transport/... ./internal/staging/... ./internal/health/... ./internal/recovery/... ./internal/corec/... ./internal/wlog/... ./internal/ckpt/... ./internal/pfs/...

# Fast loop: -short skips the chaos soak and other slow tests.
short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

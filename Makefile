# Tier-1 verification and CI targets. `make check` is the pre-merge
# gate; `make short` skips the chaos soak for fast iteration.

GO ?= go

.PHONY: check vet build test race short bench bench-smoke bench-json nemesis soak-smoke

check: vet test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# The resilience acceptance gate: transport, staging, and the
# fail-stop recovery stack under the race detector (includes the chaos
# soak, lifecycle, supervised-recovery, log-replication, multiplexing
# concurrency, and frame-corruption tests, plus the crash-consistency
# state machines: wlog, ckpt, pfs, the cold tier — the parallel EC
# kernel, and the admission-control/QoS layer).
race:
	$(GO) test -race ./internal/transport/... ./internal/staging/... ./internal/ec/... ./internal/health/... ./internal/recovery/... ./internal/corec/... ./internal/wlog/... ./internal/ckpt/... ./internal/pfs/... ./internal/tier/... ./internal/qos/... ./internal/trace/...

# Fast loop: -short skips the chaos soak and other slow tests.
short:
	$(GO) test -short ./...

# Short nemesis soak under the race detector: seeded supervisor/server
# kill schedules over the HA-recovery stack (leader killed at every
# promotion stage, deposed-leader fencing, spare exhaustion, chaos,
# the tenant-overload soak composing fail-stops with a shed flood, and
# the storage-fault tier soak tearing, rotting, and ENOSPC-failing the
# PFS cold tier underneath a spilling, fail-stopping group).
nemesis:
	$(GO) test -race -run 'TestNemesis' -count=1 -timeout 10m ./internal/workflow/

# Bounded churn-soak gate: replay the checked-in regression traces
# and the record-vs-replay determinism tests, then run two fresh
# wfbench soak seeds end to end (record, execute, replay, compare
# digests). Stays well under two minutes.
soak-smoke:
	$(GO) test -run 'TestSoakReplayDeterministic|TestSoakDivergenceDeterministic|TestReplayRegression' -count=1 -timeout 5m ./internal/workflow/
	$(GO) run ./cmd/wfbench -exp soak -seeds 2 -trace-dir .

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# One-iteration compile-and-run pass over the data-plane benchmarks
# (including the admission fast path, the wlog event/delta paths, and
# the PFS/cold-tier record paths); catches bit-rot without the cost of
# real measurement.
bench-smoke:
	$(GO) test -bench . -benchtime=1x -run=^$$ ./internal/transport ./internal/ec ./internal/qos ./internal/wlog ./internal/pfs ./internal/tier

# Full data-plane measurement: serialized seed transport vs the
# multiplexed fast path, the EC encode kernel and the tenant
# overload/QoS contrast, and the cold-tier spill/promote/replication
# readings, recorded as JSON.
bench-json:
	$(GO) run ./cmd/wfbench -exp transport -out BENCH_transport.json
	$(GO) run ./cmd/wfbench -exp overload -out-overload BENCH_overload.json
	$(GO) run ./cmd/wfbench -exp tier -out BENCH_tier.json

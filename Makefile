# Tier-1 verification and CI targets. `make check` is the pre-merge
# gate; `make short` skips the chaos soak for fast iteration.

GO ?= go

.PHONY: check vet build test race short bench

check: vet test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# The resilience acceptance gate: transport and staging under the race
# detector (includes the chaos soak and lifecycle tests).
race:
	$(GO) test -race ./internal/transport/... ./internal/staging/...

# Fast loop: -short skips the chaos soak and other slow tests.
short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# Tier-1 verification and CI targets. `make check` is the pre-merge
# gate; `make short` skips the chaos soak for fast iteration.

GO ?= go

.PHONY: check vet build test race short bench bench-smoke bench-json nemesis

check: vet test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# The resilience acceptance gate: transport, staging, and the
# fail-stop recovery stack under the race detector (includes the chaos
# soak, lifecycle, supervised-recovery, log-replication, multiplexing
# concurrency, and frame-corruption tests, plus the crash-consistency
# state machines: wlog, ckpt, pfs — the parallel EC kernel, and the
# admission-control/QoS layer).
race:
	$(GO) test -race ./internal/transport/... ./internal/staging/... ./internal/ec/... ./internal/health/... ./internal/recovery/... ./internal/corec/... ./internal/wlog/... ./internal/ckpt/... ./internal/pfs/... ./internal/qos/...

# Fast loop: -short skips the chaos soak and other slow tests.
short:
	$(GO) test -short ./...

# Short nemesis soak under the race detector: seeded supervisor/server
# kill schedules over the HA-recovery stack (leader killed at every
# promotion stage, deposed-leader fencing, spare exhaustion, chaos,
# and the tenant-overload soak composing fail-stops with a shed flood).
nemesis:
	$(GO) test -race -run 'TestNemesis' -count=1 -timeout 10m ./internal/workflow/

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# One-iteration compile-and-run pass over the data-plane benchmarks
# (including the admission fast path); catches bit-rot without the
# cost of real measurement.
bench-smoke:
	$(GO) test -bench . -benchtime=1x -run=^$$ ./internal/transport ./internal/ec ./internal/qos

# Full data-plane measurement: serialized seed transport vs the
# multiplexed fast path, plus the EC encode kernel and the tenant
# overload/QoS contrast, recorded as JSON.
bench-json:
	$(GO) run ./cmd/wfbench -exp transport -out BENCH_transport.json
	$(GO) run ./cmd/wfbench -exp overload -out-overload BENCH_overload.json

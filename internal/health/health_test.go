package health

import (
	"sync/atomic"
	"testing"
	"time"

	"gospaces/internal/transport"
)

// pingHandler answers pings while alive.
func pingHandler(id int, alive *atomic.Bool) transport.Handler {
	return func(req any) (any, error) {
		if _, ok := req.(PingReq); ok && alive.Load() {
			return PingResp{ID: id}, nil
		}
		return nil, transport.ErrClosed
	}
}

func fastConfig() Config {
	return Config{Period: 5 * time.Millisecond, Timeout: 20 * time.Millisecond, SuspectAfter: 2, DeadAfter: 4}
}

func waitFor(t *testing.T, ch <-chan Event, want State, timeout time.Duration) Event {
	t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatalf("event channel closed waiting for %v", want)
			}
			if ev.State == want {
				return ev
			}
		case <-deadline:
			t.Fatalf("no %v event within %v", want, timeout)
		}
	}
}

func TestDetectorDeathAndRejoin(t *testing.T) {
	tr := transport.NewInProc()
	var alive atomic.Bool
	alive.Store(true)
	closer, err := tr.Listen("srv/0", pingHandler(0, &alive))
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()

	d := NewDetector(tr, "test/0", fastConfig())
	defer d.Close()
	d.Watch(0, "srv/0")
	events := d.Subscribe()
	d.Start()

	// Healthy server: no transitions, probes counted.
	time.Sleep(40 * time.Millisecond)
	select {
	case ev := <-events:
		t.Fatalf("healthy server produced %+v", ev)
	default:
	}
	if d.Metrics().Counter("health.probes").Value() == 0 {
		t.Fatal("no probes recorded")
	}

	// Kill it: Suspect then Dead, with the configured miss counts.
	alive.Store(false)
	ev := waitFor(t, events, Suspect, time.Second)
	if ev.Server != 0 || ev.Misses < 2 {
		t.Fatalf("suspect event %+v", ev)
	}
	ev = waitFor(t, events, Dead, time.Second)
	if ev.Misses < 4 {
		t.Fatalf("dead event %+v", ev)
	}
	if d.States()[0] != Dead {
		t.Fatalf("state = %v", d.States()[0])
	}
	if d.Metrics().Counter("health.deaths").Value() != 1 {
		t.Fatalf("deaths = %d", d.Metrics().Counter("health.deaths").Value())
	}

	// Revive it: the detector reports the rejoin.
	alive.Store(true)
	waitFor(t, events, Alive, time.Second)
	if d.Metrics().Counter("health.rejoins").Value() != 1 {
		t.Fatalf("rejoins = %d", d.Metrics().Counter("health.rejoins").Value())
	}
}

func TestDetectorUnknownEndpointIsDead(t *testing.T) {
	tr := transport.NewInProc()
	d := NewDetector(tr, "test/0", fastConfig())
	defer d.Close()
	d.Watch(3, "srv/missing")
	events := d.Subscribe()
	d.Start()
	ev := waitFor(t, events, Dead, time.Second)
	if ev.Server != 3 {
		t.Fatalf("dead event %+v", ev)
	}
}

func TestDetectorSetAddrResetsVerdict(t *testing.T) {
	tr := transport.NewInProc()
	var alive atomic.Bool
	alive.Store(true)
	closer, err := tr.Listen("srv/new", pingHandler(7, &alive))
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()

	d := NewDetector(tr, "test/0", fastConfig())
	defer d.Close()
	d.Watch(0, "srv/gone")
	events := d.Subscribe()
	d.Start()
	waitFor(t, events, Dead, time.Second)

	// Promote: the slot re-targets a healthy replacement and goes back
	// to Alive without a rejoin event (fresh target, clean slate).
	d.SetAddr(0, "srv/new")
	time.Sleep(50 * time.Millisecond)
	if got := d.States()[0]; got != Alive {
		t.Fatalf("re-targeted slot state = %v", got)
	}
}

func TestDetectorTimeoutCountsAsMiss(t *testing.T) {
	tr := transport.NewInProc()
	block := make(chan struct{})
	closer, err := tr.Listen("srv/slow", func(req any) (any, error) {
		<-block
		return PingResp{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	defer close(block)

	d := NewDetector(tr, "test/0", Config{Period: 5 * time.Millisecond, Timeout: 10 * time.Millisecond, SuspectAfter: 2, DeadAfter: 3})
	defer d.Close()
	d.Watch(0, "srv/slow")
	events := d.Subscribe()
	d.Start()
	waitFor(t, events, Dead, time.Second)
}

func TestMembershipEpochsAndSubscribe(t *testing.T) {
	m := NewMembership([]string{"a", "b", "c"})
	if m.Epoch() != 1 {
		t.Fatalf("initial epoch = %d", m.Epoch())
	}
	sub := m.Subscribe()
	epoch, err := m.Replace(1, "b2")
	if err != nil || epoch != 2 {
		t.Fatalf("replace: epoch %d err %v", epoch, err)
	}
	if m.Addr(1) != "b2" || m.Addr(0) != "a" {
		t.Fatalf("addrs = %v", m.Addrs())
	}
	select {
	case ch := <-sub:
		if ch.Epoch != 2 || ch.Server != 1 || ch.Addr != "b2" {
			t.Fatalf("change = %+v", ch)
		}
	case <-time.After(time.Second):
		t.Fatal("no membership change delivered")
	}
	if _, err := m.Replace(9, "x"); err == nil {
		t.Fatal("out-of-range slot accepted")
	}
	addrs, epoch := m.Snapshot()
	if len(addrs) != 3 || epoch != 2 {
		t.Fatalf("snapshot = %v, %d", addrs, epoch)
	}
	if m.Addr(9) != "" {
		t.Fatal("out-of-range addr not empty")
	}
}

func TestDetectorCloseIsPromptAndIdempotent(t *testing.T) {
	tr := transport.NewInProc()
	d := NewDetector(tr, "test/0", fastConfig())
	d.Watch(0, "srv/missing")
	events := d.Subscribe()
	d.Start()
	done := make(chan struct{})
	go func() {
		d.Close()
		d.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not return")
	}
	// Subscriber channel is closed after Close.
	for {
		if _, ok := <-events; !ok {
			return
		}
	}
}

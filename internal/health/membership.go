package health

import (
	"errors"
	"fmt"
	"sync"
)

// ErrFenced rejects a membership write whose fencing token trails a
// newer recovery leader's: the writer has been deposed and must stop
// mutating.
var ErrFenced = errors.New("health: membership write fenced: newer leader exists")

// Change is one membership transition: slot ID re-pointed to Addr at
// the (freshly bumped) Epoch.
type Change struct {
	Epoch  uint64
	Server int
	Addr   string
}

// Membership is the epoch-stamped staging server set. Exactly one
// writer — the recovery supervisor — bumps it; clients and the staging
// pool read it to stamp calls and re-bind connections. Epochs start at
// 1 and grow by one per confirmed death or re-join, so a client whose
// stamped epoch trails the servers' is provably routing on a stale
// view.
type Membership struct {
	mu    sync.Mutex
	epoch uint64
	addrs []string
	subs  []chan Change
	// maxToken is the highest fencing token that has written (or sealed)
	// the membership; fenced writes carrying an older token are rejected,
	// so a deposed recovery leader cannot race the current one even
	// in-process.
	maxToken uint64
}

// NewMembership creates epoch 1 over the given addresses in slot
// order.
func NewMembership(addrs []string) *Membership {
	return &Membership{epoch: 1, addrs: append([]string(nil), addrs...)}
}

// Epoch returns the current epoch.
func (m *Membership) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// Addrs returns the current server addresses in slot order.
func (m *Membership) Addrs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.addrs...)
}

// Addr returns the address of slot id ("" when out of range).
func (m *Membership) Addr(id int) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id < 0 || id >= len(m.addrs) {
		return ""
	}
	return m.addrs[id]
}

// Snapshot returns the addresses and epoch atomically.
func (m *Membership) Snapshot() ([]string, uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.addrs...), m.epoch
}

// Replace points slot id at a new address and bumps the epoch,
// notifying subscribers. It returns the new epoch. Legacy single-writer
// path; the HA supervisor uses ReplaceFenced.
func (m *Membership) Replace(id int, addr string) (uint64, error) {
	return m.ReplaceFenced(0, id, addr)
}

// Fence seals the membership at a fencing token: writes carrying an
// older token are rejected from now on. A freshly elected recovery
// leader fences the membership with its lease token so a deposed
// in-process leader's stale Replace cannot land mid-takeover.
func (m *Membership) Fence(token uint64) {
	m.mu.Lock()
	if token > m.maxToken {
		m.maxToken = token
	}
	m.mu.Unlock()
}

// ReplaceFenced is Replace under a fencing token: the write is rejected
// with ErrFenced when token trails the highest the membership has seen.
// It is idempotent — re-pointing a slot at the address it already holds
// (a takeover resuming a deposed leader's completed write) returns the
// current epoch without a bump, so a resumed promotion never
// double-counts.
func (m *Membership) ReplaceFenced(token uint64, id int, addr string) (uint64, error) {
	m.mu.Lock()
	if token < m.maxToken {
		fence := m.maxToken
		m.mu.Unlock()
		return 0, fmt.Errorf("%w: token %d behind %d", ErrFenced, token, fence)
	}
	if id < 0 || id >= len(m.addrs) {
		m.mu.Unlock()
		return 0, fmt.Errorf("health: no membership slot %d", id)
	}
	m.maxToken = token
	if m.addrs[id] == addr {
		epoch := m.epoch
		m.mu.Unlock()
		return epoch, nil
	}
	m.addrs[id] = addr
	m.epoch++
	ev := Change{Epoch: m.epoch, Server: id, Addr: addr}
	subs := append([]chan Change(nil), m.subs...)
	m.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop the oldest change
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- ev:
			default:
			}
		}
	}
	return ev.Epoch, nil
}

// Subscribe returns a buffered channel of membership changes. The
// channel is never closed; a subscriber that stops reading loses the
// oldest changes but can always resynchronize via Snapshot.
func (m *Membership) Subscribe() <-chan Change {
	ch := make(chan Change, 16)
	m.mu.Lock()
	m.subs = append(m.subs, ch)
	m.mu.Unlock()
	return ch
}

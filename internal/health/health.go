// Package health provides staging-server failure detection for the
// recovery supervisor (internal/recovery): a lightweight heartbeat
// detector that probes each member of a staging group with PingReq RPCs
// and publishes liveness transitions, plus the epoch-stamped Membership
// that names the current server set.
//
// Detection is φ-style consecutive-miss counting rather than a full
// accrual detector: a server that misses SuspectAfter consecutive
// probes is Suspect, one that misses DeadAfter is Dead. A Dead verdict
// is the trigger for the supervisor's promote-and-re-protect sequence;
// the detector itself never mutates membership.
package health

import (
	"encoding/gob"
	"fmt"
	"sync"
	"time"

	"gospaces/internal/metrics"
	"gospaces/internal/transport"
)

// PingReq is the liveness probe. Staging servers answer it without
// touching any protected state, so a ping never blocks behind data
// traffic locks.
type PingReq struct {
	// From identifies the prober (supervisor or dsctl), for traces.
	From string
}

// PingResp reports the server's identity and membership view.
type PingResp struct {
	// ID is the server's id within its group.
	ID int
	// Epoch is the membership epoch the server has been told about
	// (0 until the first EpochSet push).
	Epoch uint64
	// Spare is true while the server waits in the spare pool, outside
	// the membership.
	Spare bool
}

func init() {
	gob.Register(PingReq{})
	gob.Register(PingResp{})
}

// State is a probed server's liveness verdict.
type State int

// Liveness states, ordered by suspicion.
const (
	// Alive: the last probe succeeded.
	Alive State = iota
	// Suspect: at least SuspectAfter consecutive probes missed.
	Suspect
	// Dead: at least DeadAfter consecutive probes missed. Dead is
	// sticky: the detector keeps probing (a rejoin is reported), but
	// the supervisor treats the first Dead verdict as a confirmed
	// fail-stop.
	Dead
)

// String renders the state for logs and dsctl health.
func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Event is one liveness transition.
type Event struct {
	// Server is the membership slot id.
	Server int
	// Addr is the address that was probed.
	Addr string
	// State is the new verdict.
	State State
	// Misses is the consecutive-miss count at the transition.
	Misses int
}

// Config tunes the detector.
type Config struct {
	// Period is the probe interval (default 50ms).
	Period time.Duration
	// Timeout bounds one probe, independent of the transport's own
	// deadlines (default 4x Period).
	Timeout time.Duration
	// SuspectAfter is the consecutive-miss threshold for Suspect
	// (default 2).
	SuspectAfter int
	// DeadAfter is the consecutive-miss threshold for Dead (default 4).
	DeadAfter int
}

func (c Config) withDefaults() Config {
	if c.Period <= 0 {
		c.Period = 50 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 4 * c.Period
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 2
	}
	if c.DeadAfter < c.SuspectAfter {
		c.DeadAfter = c.SuspectAfter + 2
	}
	return c
}

// target is one probed server slot.
type target struct {
	id     int
	addr   string
	conn   transport.Client
	misses int
	state  State
}

// Detector probes a set of staging servers and publishes liveness
// transitions. Create with NewDetector, arm targets with Watch/SetAddr,
// then Start; Close stops the probe loop and closes subscriber
// channels.
type Detector struct {
	tr   transport.Transport
	cfg  Config
	from string
	reg  *metrics.Registry

	mu      sync.Mutex
	targets map[int]*target
	subs    []chan Event
	started bool
	closed  bool

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// NewDetector creates a detector probing over tr on behalf of prober
// identity `from` (e.g. "supervisor/0").
func NewDetector(tr transport.Transport, from string, cfg Config) *Detector {
	return &Detector{
		tr:      tr,
		cfg:     cfg.withDefaults(),
		from:    from,
		reg:     metrics.NewRegistry(),
		targets: make(map[int]*target),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// Metrics returns the registry recording health.probes, health.misses,
// health.deaths, and health.rejoins.
func (d *Detector) Metrics() *metrics.Registry { return d.reg }

// Window returns the worst-case detection latency: the time from a
// fail-stop to the Dead verdict (DeadAfter missed periods plus one
// probe timeout). Callers that need verdict stability — "nothing has
// failed recently" — wait out a full window.
func (d *Detector) Window() time.Duration {
	return time.Duration(d.cfg.DeadAfter)*d.cfg.Period + d.cfg.Timeout
}

// Watch adds (or re-targets) membership slot id at addr. The slot
// starts Alive with a clean miss count.
func (d *Detector) Watch(id int, addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if t, ok := d.targets[id]; ok && t.conn != nil {
		t.conn.Close()
	}
	d.targets[id] = &target{id: id, addr: addr, state: Alive}
}

// SetAddr re-targets slot id at a new address after a promotion,
// resetting its liveness state. It is Watch under the name the
// supervisor uses.
func (d *Detector) SetAddr(id int, addr string) { d.Watch(id, addr) }

// Subscribe returns a channel of liveness transitions. The channel is
// buffered; a subscriber that falls far behind loses the oldest
// transitions (the current verdict is always available via States).
// Close closes all subscriber channels.
func (d *Detector) Subscribe() <-chan Event {
	ch := make(chan Event, 64)
	d.mu.Lock()
	d.subs = append(d.subs, ch)
	d.mu.Unlock()
	return ch
}

// States returns the current verdict per slot id.
func (d *Detector) States() map[int]State {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[int]State, len(d.targets))
	for id, t := range d.targets {
		out[id] = t.state
	}
	return out
}

// Start launches the probe loop. It is a no-op when already started.
func (d *Detector) Start() {
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		return
	}
	d.started = true
	d.mu.Unlock()
	go d.loop()
}

// Close stops probing and closes subscriber channels.
func (d *Detector) Close() error {
	d.stopOnce.Do(func() { close(d.stop) })
	d.mu.Lock()
	started := d.started
	d.mu.Unlock()
	if started {
		<-d.done
	} else {
		d.closeSubs()
	}
	return nil
}

func (d *Detector) closeSubs() {
	d.mu.Lock()
	d.closed = true
	subs := d.subs
	d.subs = nil
	for _, t := range d.targets {
		if t.conn != nil {
			t.conn.Close()
			t.conn = nil
		}
	}
	d.mu.Unlock()
	for _, ch := range subs {
		close(ch)
	}
}

func (d *Detector) loop() {
	defer close(d.done)
	defer d.closeSubs()
	ticker := time.NewTicker(d.cfg.Period)
	defer ticker.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-ticker.C:
			d.probeAll()
		}
	}
}

// probeAll pings every target once, concurrently, and folds the
// results into the miss counters.
func (d *Detector) probeAll() {
	d.mu.Lock()
	snapshot := make([]*target, 0, len(d.targets))
	for _, t := range d.targets {
		snapshot = append(snapshot, t)
	}
	d.mu.Unlock()

	type verdict struct {
		t  *target
		ok bool
	}
	results := make(chan verdict, len(snapshot))
	for _, t := range snapshot {
		go func(t *target) {
			results <- verdict{t: t, ok: d.probe(t)}
		}(t)
	}
	for range snapshot {
		v := <-results
		d.record(v.t, v.ok)
	}
}

// probe pings one target, bounded by the configured timeout. The
// target's cached connection is re-dialled lazily and dropped on any
// fault, so a replaced or restarted server is re-reached next round.
func (d *Detector) probe(t *target) bool {
	d.reg.Counter("health.probes").Inc()
	d.mu.Lock()
	conn, addr := t.conn, t.addr
	d.mu.Unlock()

	type outcome struct {
		resp any
		err  error
	}
	res := make(chan outcome, 1)
	go func() {
		c := conn
		if c == nil {
			var err error
			c, err = d.tr.Dial(addr)
			if err != nil {
				res <- outcome{err: err}
				return
			}
		}
		resp, err := c.Call(PingReq{From: d.from})
		if err != nil {
			c.Close()
			c = nil
		}
		d.mu.Lock()
		// Keep the connection only while the detector is live and the
		// slot still points at the address we probed (SetAddr may have
		// re-targeted it).
		if !d.closed && t.addr == addr {
			t.conn = c
		} else if c != nil {
			c.Close()
		}
		d.mu.Unlock()
		res <- outcome{resp: resp, err: err}
	}()

	timer := time.NewTimer(d.cfg.Timeout)
	defer timer.Stop()
	select {
	case o := <-res:
		if o.err != nil {
			return false
		}
		_, ok := o.resp.(PingResp)
		return ok
	case <-timer.C:
		// The probe goroutine finishes on its own and parks the
		// connection; this round counts as a miss.
		return false
	case <-d.stop:
		return false
	}
}

// record folds one probe outcome into the target's state, publishing
// transitions.
func (d *Detector) record(t *target, ok bool) {
	d.mu.Lock()
	if d.targets[t.id] != t {
		d.mu.Unlock()
		return // re-targeted mid-probe; verdict belongs to the old addr
	}
	var ev *Event
	if ok {
		if t.state != Alive {
			if t.state == Dead {
				d.reg.Counter("health.rejoins").Inc()
			}
			t.state = Alive
			ev = &Event{Server: t.id, Addr: t.addr, State: Alive}
		}
		t.misses = 0
	} else {
		d.reg.Counter("health.misses").Inc()
		t.misses++
		switch {
		case t.misses >= d.cfg.DeadAfter && t.state != Dead:
			t.state = Dead
			d.reg.Counter("health.deaths").Inc()
			ev = &Event{Server: t.id, Addr: t.addr, State: Dead, Misses: t.misses}
		case t.misses >= d.cfg.SuspectAfter && t.state == Alive:
			t.state = Suspect
			ev = &Event{Server: t.id, Addr: t.addr, State: Suspect, Misses: t.misses}
		}
	}
	subs := d.subs
	d.mu.Unlock()
	if ev == nil {
		return
	}
	for _, ch := range subs {
		select {
		case ch <- *ev:
		default: // subscriber far behind; drop the oldest transition
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- *ev:
			default:
			}
		}
	}
}

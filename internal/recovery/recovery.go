// Package recovery implements the staging-server fail-stop recovery
// supervisor: it subscribes to liveness verdicts from a health.Detector
// and, on a confirmed death, promotes a warm spare into the dead slot,
// bumps the membership epoch, pushes the new view to every member, and
// re-protects the CoREC-redundant objects whose shards died with the
// server.
//
// Recovery itself is crash-consistent: any number of redundant
// supervisors may run against one group, and lease-based leader
// election (a token CAS on a majority of the membership) picks exactly
// one to act. Every recovery-side mutation — the membership write, the
// view push, the log-restore install, the re-protection shard writes —
// carries the leader's fencing token, so a deposed leader's stale
// calls are rejected server-side. Each promotion is journaled as an
// intent record on a majority of members before anything is mutated,
// so a standby that takes over mid-promotion resumes the same slot
// with the same spare: no half-promoted group, no double-spent spare.
// The supervisor never touches object or log state directly —
// re-protection goes through the same client-driven shard RPCs the
// CoREC layer always uses, so it composes with any transport.
package recovery

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"gospaces/internal/corec"
	"gospaces/internal/health"
	"gospaces/internal/metrics"
	"gospaces/internal/staging"
	"gospaces/internal/transport"
)

// SparePool hands out addresses of warm spare servers; staging.Group
// implements it. TakeSpareFor is idempotent per dead slot — until the
// promotion commits (CommitSpare) or aborts (ReturnSpare), repeated
// draws for the same slot return the same spare, which is what lets a
// leader takeover resume a half-done promotion without spending a
// second spare.
type SparePool interface {
	TakeSpareFor(slot int) (addr string, ok bool)
	ReturnSpare(slot int) bool
	CommitSpare(slot int)
}

// Config tunes the supervisor.
type Config struct {
	// Redundancy is the CoREC geometry of the shards to re-protect after
	// a promotion. Nil disables re-protection: the supervisor only
	// promotes and re-registers membership.
	Redundancy *corec.Config
	// RebuildParallel bounds concurrent key rebuilds (default 4).
	RebuildParallel int
	// OnPromote, if set, runs after each promotion with the slot, the
	// replacement address, and the new epoch — the hook a workflow uses
	// to update its client-side staging pool.
	OnPromote func(slot int, addr string, epoch uint64)
	// ID names this supervisor in lease records (default "supervisor/0").
	// Redundant supervisors over one group must use distinct IDs.
	ID string
	// LeaseTTL is the leader-lease duration: a standby takes over within
	// one TTL of the leader stalling or dying. Default 3x the detector's
	// detection window.
	LeaseTTL time.Duration
	// OnSlotDown, if set, reports a slot entering (down=true) or leaving
	// (down=false) the dead-unrecovered backlog — dead with no spare
	// left. A workflow marks the client pool so callers see ErrSlotDown
	// instead of timing out against the dead address.
	OnSlotDown func(slot int, down bool)
	// PromotionHook, if set, runs after each completed promotion stage
	// ("intent", "restored", "replaced", "pushed") — the nemesis
	// harness's deterministic kill point for killing a leader
	// mid-promotion.
	PromotionHook func(stage string, slot int)
}

func (c Config) withDefaults(det *health.Detector) Config {
	if c.RebuildParallel <= 0 {
		c.RebuildParallel = 4
	}
	if c.ID == "" {
		c.ID = "supervisor/0"
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 3 * det.Window()
	}
	return c
}

// deadSlot is one confirmed-dead membership slot awaiting promotion.
type deadSlot struct {
	addr     string // the address that died (for the intent journal)
	notified bool   // OnSlotDown(slot, true) delivered: no spare was left
}

// Supervisor drives fail-stop recovery for one staging group. Several
// redundant supervisors may supervise the same group; leader election
// picks one to act and the rest stand by.
type Supervisor struct {
	tr     transport.Transport
	det    *health.Detector
	mem    *health.Membership
	spares SparePool
	cfg    Config
	reg    *metrics.Registry

	events <-chan health.Event
	memCh  <-chan health.Change

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	mu      sync.Mutex
	started bool
	leader  bool
	token   uint64 // lease token while leader
	maxSeen uint64 // highest token observed cluster-wide
	dead    map[int]*deadSlot
	wake    chan struct{} // closed+replaced on every state change (WaitIdle)
}

// New wires a supervisor over a running detector and membership. It
// arms the detector to watch every current member and subscribes to
// membership changes so a standby's detector follows promotions made
// by the leader; call Start to begin supervising. The detector should
// not be started yet (Start does it).
func New(tr transport.Transport, det *health.Detector, mem *health.Membership, spares SparePool, cfg Config) *Supervisor {
	s := &Supervisor{
		tr:     tr,
		det:    det,
		mem:    mem,
		spares: spares,
		cfg:    cfg.withDefaults(det),
		reg:    metrics.NewRegistry(),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		dead:   make(map[int]*deadSlot),
		wake:   make(chan struct{}),
	}
	for id, addr := range mem.Addrs() {
		det.Watch(id, addr)
	}
	s.events = det.Subscribe()
	s.memCh = mem.Subscribe()
	return s
}

// Metrics returns the registry recording recovery.promotions,
// recovery.rebuilds, recovery.rebuild_bytes, recovery.failed_rebuilds,
// recovery.duration_ns, and recovery.no_spare; with log replication
// enabled it also records recovery.log_restores, recovery.log_records,
// recovery.log_bytes, recovery.log_lag (stream-position spread among
// surviving replicas), recovery.log_missing, and
// recovery.failed_log_restores. The HA machinery adds
// recovery.elections, recovery.lease_renewals, recovery.takeovers
// (elections that found journaled intents), recovery.intent_resumes,
// recovery.spare_returns (failed promotions refunding the pool),
// recovery.dead_retries (backlogged slots healed by a late AddSpare),
// recovery.view_repushes (rejoined members re-sent the current view),
// and recovery.fenced_rejects (this supervisor's calls rejected as
// deposed).
func (s *Supervisor) Metrics() *metrics.Registry { return s.reg }

// ID returns the supervisor's lease identity.
func (s *Supervisor) ID() string { return s.cfg.ID }

// IsLeader reports whether this supervisor currently holds the
// recovery lease (false once stopped).
func (s *Supervisor) IsLeader() bool {
	if s.stopped() {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.leader
}

// Token returns the fencing token of the current (or last-held) lease.
func (s *Supervisor) Token() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.token
}

// DeadSlots returns the dead-unrecovered backlog: slots confirmed dead
// that no spare has been promoted into yet.
func (s *Supervisor) DeadSlots() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, 0, len(s.dead))
	for slot := range s.dead {
		out = append(out, slot)
	}
	sort.Ints(out)
	return out
}

// Start launches the detector, runs a first election round, and starts
// the supervision loop. It is a no-op when already started.
func (s *Supervisor) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	s.det.Start()
	// First election immediately: a lone supervisor becomes leader with
	// no added latency; contending candidates fall back to jittered
	// retries in the loop.
	s.campaign()
	go s.loop()
}

// Close stops supervising gracefully (the detector is closed too). The
// lease is not released — it expires on its own, which is also exactly
// what a crash looks like to the standbys.
func (s *Supervisor) Close() error {
	s.stopOnce.Do(func() { close(s.stop) })
	s.det.Close() // closes the event channel, unblocking the loop
	s.mu.Lock()
	started := s.started
	s.mu.Unlock()
	if started {
		<-s.done
	}
	return nil
}

// Kill stops the supervisor abruptly — the nemesis harness's
// supervisor crash. Unlike Close it does not wait for the loop to
// drain: an in-flight promotion aborts at its next stage boundary,
// leaving the journaled intent for the next leader to resume. Call
// Close afterwards to reap the loop goroutine.
func (s *Supervisor) Kill() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.det.Close()
	s.wakeWaiters()
}

func (s *Supervisor) stopped() bool {
	select {
	case <-s.stop:
		return true
	default:
		return false
	}
}

// wakeChan returns the channel WaitIdle parks on; wakeWaiters closes
// and replaces it on every supervisor state change.
func (s *Supervisor) wakeChan() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wake
}

func (s *Supervisor) wakeWaiters() {
	s.mu.Lock()
	close(s.wake)
	s.wake = make(chan struct{})
	s.mu.Unlock()
}

// WaitIdle blocks until every membership slot has been Alive — with no
// recovery in flight — for a full detection window, or the timeout
// expires. Requiring a quiet window rather than an instantaneous check
// closes the race where a server just died but the detector has not
// yet missed a probe. A workflow calls WaitIdle before re-binding
// clients so promoted addresses are in place. The wait is event-driven:
// it parks on supervisor wakeups (detector transitions, promotion
// start/finish, membership changes) instead of busy-polling, so idle
// groups cost nothing on the fault-free path.
func (s *Supervisor) WaitIdle(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	quiet := s.det.Window()
	var quietSince time.Time
	timer := time.NewTimer(quiet)
	defer timer.Stop()
	for {
		wake := s.wakeChan()
		idle := s.reg.Counter("recovery.in_flight").Value() == 0 && s.allAlive()
		now := time.Now()
		if idle {
			if quietSince.IsZero() {
				quietSince = now
			}
			if now.Sub(quietSince) >= quiet {
				return nil
			}
		} else {
			quietSince = time.Time{}
		}
		if now.After(deadline) {
			return fmt.Errorf("recovery: not idle after %v (states %v)", timeout, s.det.States())
		}
		// Sleep until the next decision point: the quiet window filling,
		// the deadline, or a state-change wakeup — whichever is first.
		next := deadline.Sub(now)
		if idle {
			if q := quiet - now.Sub(quietSince); q < next {
				next = q
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(next)
		select {
		case <-wake:
		case <-timer.C:
		}
	}
}

func (s *Supervisor) allAlive() bool {
	for _, st := range s.det.States() {
		if st != health.Alive {
			return false
		}
	}
	return true
}

// renewEvery is the lease maintenance period: a third of the TTL so a
// leader renews well before expiry, plus a per-supervisor deterministic
// jitter so contending candidates do not campaign in lock-step.
func (s *Supervisor) renewEvery() time.Duration {
	ttl := s.cfg.LeaseTTL
	every := ttl / 3
	if span := ttl / 6; span > 0 {
		h := fnv.New32a()
		h.Write([]byte(s.cfg.ID))
		every += time.Duration(h.Sum32()) % span
	}
	return every
}

func (s *Supervisor) loop() {
	defer close(s.done)
	tick := time.NewTicker(s.renewEvery())
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case ev, ok := <-s.events:
			if !ok {
				return
			}
			s.handleEvent(ev)
		case ch := <-s.memCh:
			s.handleChange(ch)
		case <-tick.C:
			s.tick()
		}
	}
}

// tick maintains the lease — renew as leader, campaign as standby —
// and sweeps the dead-slot backlog (which is how a slot stranded by
// spare exhaustion heals once AddSpare refills the pool).
func (s *Supervisor) tick() {
	if s.stopped() {
		return
	}
	if s.isLeader() {
		if s.renew() {
			s.reg.Counter("recovery.lease_renewals").Inc()
		} else {
			s.stepDown()
		}
	} else {
		s.campaign()
	}
	s.sweep()
}

// handleEvent folds one liveness transition into the backlog and, as
// leader, acts on it.
func (s *Supervisor) handleEvent(ev health.Event) {
	switch ev.State {
	case health.Dead:
		s.mu.Lock()
		if _, ok := s.dead[ev.Server]; !ok {
			s.dead[ev.Server] = &deadSlot{addr: ev.Addr}
		}
		s.mu.Unlock()
		s.sweep()
	case health.Alive:
		s.mu.Lock()
		_, wasDead := s.dead[ev.Server]
		delete(s.dead, ev.Server)
		leader := s.leader
		token := s.token
		s.mu.Unlock()
		if wasDead && s.cfg.OnSlotDown != nil {
			// Unconditional on heal: the supervisor that marked the slot
			// down may have died, so any supervisor observing the heal
			// clears the mark (clearing an unmarked slot is a no-op).
			s.cfg.OnSlotDown(ev.Server, false)
		}
		// A member that was dark during a view push converges on rejoin:
		// the leader re-sends the current view to it (a spare that died
		// out of the membership is not re-pushed).
		if leader {
			addrs, epoch := s.mem.Snapshot()
			if ev.Server >= 0 && ev.Server < len(addrs) && addrs[ev.Server] == ev.Addr {
				if s.pushViewTo(ev.Addr, token, epoch, addrs) {
					s.reg.Counter("recovery.view_repushes").Inc()
				}
			}
		}
	}
	s.wakeWaiters()
}

// handleChange follows a membership write made by whichever supervisor
// is leader: the detector re-targets the slot, and the slot leaves this
// supervisor's backlog.
func (s *Supervisor) handleChange(ch health.Change) {
	s.det.SetAddr(ch.Server, ch.Addr)
	s.mu.Lock()
	_, wasDead := s.dead[ch.Server]
	delete(s.dead, ch.Server)
	s.mu.Unlock()
	if wasDead && s.cfg.OnSlotDown != nil {
		s.cfg.OnSlotDown(ch.Server, false)
	}
	s.wakeWaiters()
}

func (s *Supervisor) isLeader() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.leader
}

func (s *Supervisor) currentToken() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.token
}

// stepDown drops leadership locally; the lease expires (or has been
// superseded) on the servers.
func (s *Supervisor) stepDown() {
	s.mu.Lock()
	s.leader = false
	s.mu.Unlock()
	s.wakeWaiters()
}

// observeDeposed records a server-side fencing rejection: a newer
// leader exists, so this one stops acting immediately.
func (s *Supervisor) observeDeposed() {
	s.reg.Counter("recovery.fenced_rejects").Inc()
	s.stepDown()
}

// quorum is the grant count an election or renewal must exceed half
// of: the membership minus the slots this supervisor has confirmed
// dead (a dead member can never grant, and waiting for it would wedge
// small groups — a 2-server group with one death could otherwise never
// elect anyone to repair it). Competing leaders elected over
// different subjective live-sets are still serialized by the fencing
// tokens: the per-server CAS feeds every candidate the cluster-wide
// token high-water mark, so the later leader's token is strictly
// higher and fences the earlier one out of every mutation.
func (s *Supervisor) quorum(addrs []string) int {
	s.mu.Lock()
	n := len(addrs)
	for slot := range s.dead {
		if slot >= 0 && slot < len(addrs) {
			n--
		}
	}
	s.mu.Unlock()
	if n < 1 {
		n = 1
	}
	return n
}

// leaseRound proposes (or renews) the lease on every member and counts
// grants, folding refused servers' token high-water marks into maxSeen
// so the next campaign proposes past them.
func (s *Supervisor) leaseRound(addrs []string, token uint64) int {
	grants := 0
	for _, addr := range addrs {
		conn, err := s.tr.Dial(addr)
		if err != nil {
			continue
		}
		raw, err := conn.Call(staging.LeaseCASReq{Holder: s.cfg.ID, Token: token, TTL: s.cfg.LeaseTTL})
		conn.Close()
		if err != nil {
			continue
		}
		resp, ok := raw.(staging.LeaseCASResp)
		if !ok {
			continue
		}
		s.mu.Lock()
		if resp.MaxToken > s.maxSeen {
			s.maxSeen = resp.MaxToken
		}
		s.mu.Unlock()
		if resp.Granted {
			grants++
		}
	}
	return grants
}

// campaign runs one election round: propose maxSeen+1 to every member,
// become leader on a majority of grants. On success the membership is
// fenced at the new token and any journaled promotion intents from the
// deposed leader are resumed.
func (s *Supervisor) campaign() bool {
	if s.stopped() {
		return false
	}
	addrs := s.mem.Addrs()
	s.mu.Lock()
	token := s.maxSeen + 1
	s.mu.Unlock()
	grants := s.leaseRound(addrs, token)
	if grants*2 <= s.quorum(addrs) {
		// Give back any partial grants: two candidates each holding half
		// the membership would otherwise re-extend their halves on every
		// retry and livelock the election.
		if grants > 0 {
			s.releaseRound(addrs)
		}
		return false
	}
	s.mu.Lock()
	s.leader = true
	s.token = token
	if token > s.maxSeen {
		s.maxSeen = token
	}
	s.mu.Unlock()
	s.reg.Counter("recovery.elections").Inc()
	// Seal the in-process membership too, so a deposed leader sharing
	// this Membership object cannot race a stale Replace past us.
	s.mem.Fence(token)
	s.wakeWaiters()
	s.onElected(token)
	return true
}

// renew extends the lease under the current token; losing the majority
// means a partition or a superseding leader, either way leadership is
// gone — the stragglers that did renew are released so a successor
// need not wait out their TTL.
func (s *Supervisor) renew() bool {
	addrs := s.mem.Addrs()
	if s.leaseRound(addrs, s.currentToken())*2 > s.quorum(addrs) {
		return true
	}
	s.releaseRound(addrs)
	return false
}

// releaseRound gives this supervisor's lease grants back on every
// member; a record held by someone else is untouched.
func (s *Supervisor) releaseRound(addrs []string) {
	for _, addr := range addrs {
		conn, err := s.tr.Dial(addr)
		if err != nil {
			continue
		}
		conn.Call(staging.LeaseCASReq{Holder: s.cfg.ID, Release: true})
		conn.Close()
	}
}

// onElected resumes whatever the previous leader left half-done: the
// journaled promotion intents found on a majority of members.
func (s *Supervisor) onElected(token uint64) {
	intents := s.fetchIntents()
	if len(intents) > 0 {
		s.reg.Counter("recovery.takeovers").Inc()
	}
	for _, in := range intents {
		if s.stopped() || !s.isLeader() {
			return
		}
		s.resume(in)
	}
}

// fetchIntents unions the journaled promotion intents across members,
// keeping the highest-token record per slot.
func (s *Supervisor) fetchIntents() []staging.PromotionIntent {
	best := make(map[int]staging.PromotionIntent)
	for _, addr := range s.mem.Addrs() {
		conn, err := s.tr.Dial(addr)
		if err != nil {
			continue
		}
		raw, err := conn.Call(staging.LeaderInfoReq{})
		conn.Close()
		if err != nil {
			continue
		}
		resp, ok := raw.(staging.LeaderInfoResp)
		if !ok {
			continue
		}
		for _, in := range resp.Intents {
			if cur, ok := best[in.Slot]; !ok || in.Token > cur.Token {
				best[in.Slot] = in
			}
		}
	}
	slots := make([]int, 0, len(best))
	for slot := range best {
		slots = append(slots, slot)
	}
	sort.Ints(slots)
	out := make([]staging.PromotionIntent, 0, len(best))
	for _, slot := range slots {
		out = append(out, best[slot])
	}
	return out
}

// resume continues a promotion journaled by a deposed leader. The
// shared spare assignment is authoritative: TakeSpareFor returns the
// spare the deposed leader already drew for the slot, so the resumed
// promotion can never spend a second one.
func (s *Supervisor) resume(in staging.PromotionIntent) {
	token := s.currentToken()
	already := s.mem.Addr(in.Slot) == in.Spare
	var spare string
	if already {
		// The membership write landed before the takeover; only the
		// finish work (view push, intent clear, commit) is outstanding.
		spare = in.Spare
	} else {
		var ok bool
		spare, ok = s.spares.TakeSpareFor(in.Slot)
		if !ok {
			// The intent is stale: the deposed leader's spare was returned
			// to the pool (failed restore) and the pool is now dry. Clear
			// the journal; the dead-slot sweep re-promotes on refill.
			s.clearIntent(in.Slot, token)
			return
		}
	}
	s.mu.Lock()
	if _, ok := s.dead[in.Slot]; !ok && !already {
		s.dead[in.Slot] = &deadSlot{addr: in.DeadAddr}
	}
	s.mu.Unlock()
	s.reg.Counter("recovery.intent_resumes").Inc()
	s.reg.Counter("recovery.in_flight").Inc()
	s.wakeWaiters()
	s.promote(in.Slot, in.DeadAddr, spare)
	s.reg.Counter("recovery.in_flight").Add(-1)
	s.wakeWaiters()
}

// sweep drives the dead-slot backlog as leader: every backlogged slot
// gets a promotion attempt. Slots that found no spare stay backlogged
// and are retried on every lease tick — a later AddSpare heals them
// (recovery.dead_retries counts those late heals).
func (s *Supervisor) sweep() {
	if s.stopped() || !s.isLeader() {
		return
	}
	s.mu.Lock()
	slots := make([]int, 0, len(s.dead))
	for slot := range s.dead {
		slots = append(slots, slot)
	}
	sort.Ints(slots)
	s.mu.Unlock()
	for _, slot := range slots {
		if s.stopped() || !s.isLeader() {
			return
		}
		s.recoverSlot(slot)
	}
}

// recoverSlot runs the promote-and-re-protect sequence for one
// backlogged slot: spare draw → intent journal → log restore → fenced
// membership write → fenced view push → re-target detector → client
// hook → fenced shard re-protection.
func (s *Supervisor) recoverSlot(slot int) {
	s.mu.Lock()
	d, ok := s.dead[slot]
	if !ok {
		s.mu.Unlock()
		return
	}
	deadAddr := d.addr
	wasStranded := d.notified
	s.mu.Unlock()

	start := time.Now()
	s.reg.Counter("recovery.in_flight").Inc()
	s.wakeWaiters()
	defer func() {
		s.reg.Counter("recovery.in_flight").Add(-1)
		s.wakeWaiters()
	}()

	spare, ok := s.spares.TakeSpareFor(slot)
	if !ok {
		// Spare exhaustion: the slot enters the stranded backlog. It is
		// re-attempted every lease tick, so a later AddSpare heals it;
		// meanwhile OnSlotDown lets clients fail fast with ErrSlotDown.
		s.reg.Counter("recovery.no_spare").Inc()
		s.markStranded(slot)
		return
	}
	if wasStranded {
		s.reg.Counter("recovery.dead_retries").Inc()
	}
	s.promote(slot, deadAddr, spare)
	s.reg.Counter("recovery.duration_ns").Add(time.Since(start).Nanoseconds())
}

// markStranded delivers OnSlotDown(slot, true) exactly once per death.
func (s *Supervisor) markStranded(slot int) {
	s.mu.Lock()
	d, ok := s.dead[slot]
	notify := ok && !d.notified
	if notify {
		d.notified = true
	}
	s.mu.Unlock()
	if notify && s.cfg.OnSlotDown != nil {
		s.cfg.OnSlotDown(slot, true)
	}
}

// hook runs the promotion-stage hook and reports whether the promotion
// should proceed — false once the supervisor is stopped (killed
// mid-promotion) or deposed.
func (s *Supervisor) hook(stage string, slot int) bool {
	if h := s.cfg.PromotionHook; h != nil {
		h(stage, slot)
	}
	return !s.stopped() && s.isLeader()
}

// promote executes (or resumes) the promotion of spare into slot. Every
// stage is idempotent under the intent journal: a takeover re-runs the
// sequence with the same spare, skipping the log restore once the
// membership already points at it (the restore strictly precedes the
// membership write, so a promoted address implies a completed restore —
// re-installing onto a live member would wipe post-promotion writes).
func (s *Supervisor) promote(slot int, deadAddr, spare string) {
	token := s.currentToken()
	intent := staging.PromotionIntent{Slot: slot, DeadAddr: deadAddr, Spare: spare, Token: token}
	if !s.putIntent(intent, token) {
		s.reg.Counter("recovery.failed_promotions").Inc()
		return
	}
	if !s.hook("intent", slot) {
		return
	}
	already := s.mem.Addr(slot) == spare
	if !already && !s.restoreLog(slot, spare, token) {
		// The restore failed outright (the spare is unreachable): refund
		// the pool so another slot — or a retry — can spend the spare.
		s.giveBack(slot, token)
		s.reg.Counter("recovery.failed_promotions").Inc()
		return
	}
	if !s.hook("restored", slot) {
		return
	}
	epoch, err := s.mem.ReplaceFenced(token, slot, spare)
	if err != nil {
		if errors.Is(err, health.ErrFenced) {
			s.observeDeposed()
			return
		}
		s.giveBack(slot, token)
		s.reg.Counter("recovery.failed_promotions").Inc()
		return
	}
	if !already {
		// Count the supervisor that performed the membership write; a
		// takeover finishing an already-replaced promotion must not
		// count it twice across the redundant set.
		s.reg.Counter("recovery.promotions").Inc()
	}
	if !s.hook("replaced", slot) {
		return
	}
	addrs := s.mem.Addrs()
	s.pushView(token, epoch, addrs)
	if !s.hook("pushed", slot) {
		return
	}
	s.clearIntent(slot, token)
	s.spares.CommitSpare(slot)
	s.det.SetAddr(slot, spare)
	s.dropDead(slot)
	if s.cfg.OnPromote != nil {
		s.cfg.OnPromote(slot, spare, epoch)
	}
	if s.cfg.Redundancy != nil {
		s.reprotect(addrs)
	}
}

// dropDead removes a healed slot from the backlog, clearing its
// stranded mark.
func (s *Supervisor) dropDead(slot int) {
	s.mu.Lock()
	_, ok := s.dead[slot]
	delete(s.dead, slot)
	s.mu.Unlock()
	if ok && s.cfg.OnSlotDown != nil {
		s.cfg.OnSlotDown(slot, false)
	}
	s.wakeWaiters()
}

// giveBack refunds a spare the promotion could not spend, clearing the
// journaled intent first so a takeover cannot resume onto a spare that
// is back in the pool. A deposed leader must not refund — the new
// leader owns the assignment now.
func (s *Supervisor) giveBack(slot int, token uint64) {
	if !s.isLeader() {
		return
	}
	s.clearIntent(slot, token)
	if s.spares.ReturnSpare(slot) {
		s.reg.Counter("recovery.spare_returns").Inc()
	}
}

// putIntent journals the promotion intent on a majority of the
// surviving membership (the dead slot cannot ack). A fencing rejection
// means a newer leader exists and the promotion is abandoned here.
func (s *Supervisor) putIntent(in staging.PromotionIntent, token uint64) bool {
	addrs := s.mem.Addrs()
	acks, polled := 0, 0
	for i, addr := range addrs {
		if i == in.Slot {
			continue
		}
		polled++
		raw, err := s.fencedCall(addr, token, staging.IntentPutReq{Intent: in})
		if err != nil {
			if staging.IsFenced(err) {
				s.observeDeposed()
				return false
			}
			continue
		}
		if _, ok := raw.(staging.IntentPutResp); ok {
			acks++
		}
	}
	return acks*2 > polled
}

// clearIntent drops the journaled intent on every reachable member.
func (s *Supervisor) clearIntent(slot int, token uint64) {
	for _, addr := range s.mem.Addrs() {
		if _, err := s.fencedCall(addr, token, staging.IntentClearReq{Slot: slot}); err != nil && staging.IsFenced(err) {
			s.observeDeposed()
			return
		}
	}
}

// fencedCall dials addr and issues one request under the fencing
// token.
func (s *Supervisor) fencedCall(addr string, token uint64, req any) (any, error) {
	conn, err := s.tr.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	return conn.Call(staging.FencedReq{Token: token, Req: req})
}

// restoreLog restores the dead slot's replicated event-log state onto
// the spare: every surviving member is asked for the replica it hosts
// of that slot, the freshest answer — the highest stream position —
// wins (ties go to the lowest-numbered responder), and it is installed
// on the spare with a fenced WlogInstallReq before the membership
// moves. Flush-before-ack on the origin guarantees the freshest
// surviving replica holds every acknowledged operation. Finding no
// replica is not fatal — the slot comes up empty, the pre-replication
// behavior — but it is counted, because with replication enabled it
// means the queues died with the server. It reports whether the
// promotion may proceed.
func (s *Supervisor) restoreLog(deadSlot int, spareAddr string, token uint64) bool {
	addrs := s.mem.Addrs()
	var best *staging.ReplState
	minSeq, maxSeq := int64(-1), int64(-1)
	for i, addr := range addrs {
		if i == deadSlot {
			continue
		}
		conn, err := s.tr.Dial(addr)
		if err != nil {
			continue
		}
		raw, err := conn.Call(staging.ReplFetchReq{Slot: deadSlot})
		conn.Close()
		if err != nil {
			continue
		}
		resp, ok := raw.(staging.ReplFetchResp)
		if !ok || !resp.Found {
			continue
		}
		if minSeq < 0 || resp.State.Seq < minSeq {
			minSeq = resp.State.Seq
		}
		if resp.State.Seq > maxSeq {
			maxSeq = resp.State.Seq
			st := resp.State
			best = &st
		}
	}
	if best == nil {
		s.reg.Counter("recovery.log_missing").Inc()
		return true
	}
	raw, err := s.fencedCall(spareAddr, token, staging.WlogInstallReq{Slot: deadSlot, State: *best})
	if err != nil {
		if staging.IsFenced(err) {
			s.observeDeposed()
			return false
		}
		s.reg.Counter("recovery.failed_log_restores").Inc()
		return false
	}
	if _, ok := raw.(staging.WlogInstallResp); !ok {
		s.reg.Counter("recovery.failed_log_restores").Inc()
		return false
	}
	restored := int64(len(best.Wlog))
	for _, o := range best.Objects {
		restored += int64(len(o.Data))
	}
	s.reg.Counter("recovery.log_restores").Inc()
	s.reg.Counter("recovery.log_records").Add(best.Seq)
	s.reg.Counter("recovery.log_bytes").Add(restored)
	s.reg.Counter("recovery.log_lag").Add(maxSeq - minSeq)
	s.scrubTier(spareAddr, token)
	return true
}

// scrubTier fires a best-effort CRC scrub over the promoted spare's
// cold tier right after the log restore: a promotion is exactly when
// spilled records written before the fault must be proven readable, and
// the scrub re-replicates any generation the storage layer corrupted
// while the slot was dark. Failures are counted, never fatal — the
// promotion already holds the restored state in RAM.
func (s *Supervisor) scrubTier(spareAddr string, token uint64) {
	raw, err := s.fencedCall(spareAddr, token, staging.TierScrubReq{})
	if err != nil {
		s.reg.Counter("recovery.tier_scrub_errors").Inc()
		return
	}
	resp, ok := raw.(staging.TierScrubResp)
	if !ok || !resp.Enabled {
		return
	}
	s.reg.Counter("recovery.tier_scrubs").Inc()
	s.reg.Counter("recovery.tier_scrub_healed").Add(resp.Healed)
	s.reg.Counter("recovery.tier_scrub_lost").Add(resp.Lost)
}

// pushView installs the new membership on every member, including the
// promoted spare (which clears its spare flag). Unreachable members are
// skipped; they adopt the view on rejoin — the leader re-pushes it when
// the detector reports them Alive again — or via their own
// MembershipReq exchange.
func (s *Supervisor) pushView(token uint64, epoch uint64, addrs []string) {
	for _, addr := range addrs {
		if !s.isLeader() {
			return
		}
		s.pushViewTo(addr, token, epoch, addrs)
	}
}

// pushViewTo sends one fenced view install, reporting success.
func (s *Supervisor) pushViewTo(addr string, token uint64, epoch uint64, addrs []string) bool {
	raw, err := s.fencedCall(addr, token, staging.EpochSetReq{Epoch: epoch, Addrs: addrs})
	if err != nil {
		if staging.IsFenced(err) {
			s.observeDeposed()
		}
		return false
	}
	_, ok := raw.(staging.EpochSetResp)
	return ok
}

// reprotectAttempts bounds the re-protection retry loop: a rebuild can
// fail while another member is transiently dark (crashed, partitioned),
// so the supervisor waits out a detection window and tries again rather
// than leaving redundancy degraded.
const reprotectAttempts = 5

// reprotect restores full redundancy, retrying with a detection-window
// backoff until a pass completes with every key rebuilt (or the
// attempt budget runs out). Each pass is timed under
// recovery.reprotect: rebuild decode dominates it, and the EC kernel's
// chunked-parallel path (ec.SetWorkers) shortens exactly this window.
func (s *Supervisor) reprotect(addrs []string) {
	start := time.Now()
	defer func() { s.reg.Timer("recovery.reprotect").Observe(time.Since(start)) }()
	for attempt := 0; attempt < reprotectAttempts; attempt++ {
		if s.reprotectOnce(addrs) {
			return
		}
		select {
		case <-s.stop:
			return
		case <-time.After(s.det.Window()):
		}
		// Another promotion may have moved the membership meanwhile.
		addrs = s.mem.Addrs()
	}
}

// reprotectOnce runs one re-protection pass: union the shard keys held
// by reachable members, rebuild each with bounded parallelism. Rebuild
// reads any K surviving shards and re-writes only the missing ones, so
// keys untouched by the failure cost one round of reads. The shard
// writes go through fenced connections, so a deposed leader's rebuild
// cannot dirty the group. It reports whether the pass fully restored
// redundancy.
func (s *Supervisor) reprotectOnce(addrs []string) bool {
	token := s.currentToken()
	clean := true
	conns := make([]transport.Client, len(addrs))
	for i, addr := range addrs {
		conn, err := s.tr.Dial(addr)
		if err != nil {
			// A member is dark; its shards read as lost and its writes
			// fail. Proceed degraded and retry for the remainder.
			conns[i] = deadClient{}
			clean = false
			continue
		}
		conns[i] = fencedConn{inner: conn, token: token}
	}
	defer closeAll(conns)

	seen := map[string]struct{}{}
	var keys []string
	for _, conn := range conns {
		raw, err := conn.Call(staging.ShardKeysReq{})
		if err != nil {
			if staging.IsFenced(err) {
				s.observeDeposed()
				return true // the new leader re-protects
			}
			continue // dead or lagging member; survivors cover its keys
		}
		resp, ok := raw.(staging.ShardKeysResp)
		if !ok {
			continue
		}
		for _, k := range resp.Keys {
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				keys = append(keys, k)
			}
		}
	}
	if len(keys) == 0 {
		return clean
	}
	rc, err := corec.New(*s.cfg.Redundancy, conns)
	if err != nil {
		s.reg.Counter("recovery.failed_rebuilds").Add(int64(len(keys)))
		return false
	}
	sem := make(chan struct{}, s.cfg.RebuildParallel)
	type result struct {
		bytes int64
		ok    bool
	}
	results := make(chan result, len(keys))
	for _, key := range keys {
		go func(key string) {
			sem <- struct{}{}
			defer func() { <-sem }()
			n, err := rc.Rebuild(key)
			if err != nil {
				s.reg.Counter("recovery.failed_rebuilds").Inc()
			}
			results <- result{bytes: n, ok: err == nil}
		}(key)
	}
	for range keys {
		r := <-results
		if r.bytes > 0 {
			s.reg.Counter("recovery.rebuilds").Inc()
			s.reg.Counter("recovery.rebuild_bytes").Add(r.bytes)
		}
		if !r.ok {
			clean = false
		}
	}
	return clean
}

// fencedConn wraps a transport client so every call carries the
// leader's fencing token.
type fencedConn struct {
	inner transport.Client
	token uint64
}

func (f fencedConn) Call(req any) (any, error) {
	return f.inner.Call(staging.FencedReq{Token: f.token, Req: req})
}
func (f fencedConn) Close() error { return f.inner.Close() }

// deadClient stands in for a member that cannot be dialled during a
// re-protection pass; every call fails like the dead server would.
type deadClient struct{}

func (deadClient) Call(any) (any, error) {
	return nil, fmt.Errorf("%w: member dark during re-protection", transport.ErrNoEndpoint)
}
func (deadClient) Close() error { return nil }

func closeAll(conns []transport.Client) {
	for _, c := range conns {
		if c != nil {
			c.Close()
		}
	}
}

// Package recovery implements the staging-server fail-stop recovery
// supervisor: it subscribes to liveness verdicts from a health.Detector
// and, on a confirmed death, promotes a warm spare into the dead slot,
// bumps the membership epoch, pushes the new view to every member, and
// re-protects the CoREC-redundant objects whose shards died with the
// server.
//
// The design assumes at most one supervisor per staging group (the
// membership has exactly one writer); running two would race promotions
// and double-spend spares. The supervisor never touches object or log
// state directly — re-protection goes through the same client-driven
// shard RPCs the CoREC layer always uses, so it composes with any
// transport.
package recovery

import (
	"fmt"
	"sync"
	"time"

	"gospaces/internal/corec"
	"gospaces/internal/health"
	"gospaces/internal/metrics"
	"gospaces/internal/staging"
	"gospaces/internal/transport"
)

// SparePool hands out addresses of warm spare servers; staging.Group
// implements it. TakeSpare returns ok=false when the pool is dry.
type SparePool interface {
	TakeSpare() (addr string, ok bool)
}

// Config tunes the supervisor.
type Config struct {
	// Redundancy is the CoREC geometry of the shards to re-protect after
	// a promotion. Nil disables re-protection: the supervisor only
	// promotes and re-registers membership.
	Redundancy *corec.Config
	// RebuildParallel bounds concurrent key rebuilds (default 4).
	RebuildParallel int
	// OnPromote, if set, runs after each promotion with the slot, the
	// replacement address, and the new epoch — the hook a workflow uses
	// to update its client-side staging pool.
	OnPromote func(slot int, addr string, epoch uint64)
}

func (c Config) withDefaults() Config {
	if c.RebuildParallel <= 0 {
		c.RebuildParallel = 4
	}
	return c
}

// Supervisor drives fail-stop recovery for one staging group.
type Supervisor struct {
	tr     transport.Transport
	det    *health.Detector
	mem    *health.Membership
	spares SparePool
	cfg    Config
	reg    *metrics.Registry

	events <-chan health.Event
	stop   chan struct{}
	done   chan struct{}

	mu      sync.Mutex
	started bool
}

// New wires a supervisor over a running detector and membership. It
// arms the detector to watch every current member; call Start to begin
// supervising. The detector should not be started yet (Start does it).
func New(tr transport.Transport, det *health.Detector, mem *health.Membership, spares SparePool, cfg Config) *Supervisor {
	s := &Supervisor{
		tr:     tr,
		det:    det,
		mem:    mem,
		spares: spares,
		cfg:    cfg.withDefaults(),
		reg:    metrics.NewRegistry(),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	for id, addr := range mem.Addrs() {
		det.Watch(id, addr)
	}
	s.events = det.Subscribe()
	return s
}

// Metrics returns the registry recording recovery.promotions,
// recovery.rebuilds, recovery.rebuild_bytes, recovery.failed_rebuilds,
// recovery.duration_ns, and recovery.no_spare; with log replication
// enabled it also records recovery.log_restores, recovery.log_records,
// recovery.log_bytes, recovery.log_lag (stream-position spread among
// surviving replicas), recovery.log_missing, and
// recovery.failed_log_restores.
func (s *Supervisor) Metrics() *metrics.Registry { return s.reg }

// Start launches the detector and the supervision loop. It is a no-op
// when already started.
func (s *Supervisor) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	s.det.Start()
	go s.loop()
}

// Close stops supervising (the detector is closed too).
func (s *Supervisor) Close() error {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	s.det.Close() // closes the event channel, unblocking the loop
	s.mu.Lock()
	started := s.started
	s.mu.Unlock()
	if started {
		<-s.done
	}
	return nil
}

// WaitIdle blocks until every membership slot has been Alive — with no
// recovery in flight — for a full detection window, or the timeout
// expires. Requiring a quiet window rather than an instantaneous check
// closes the race where a server just died but the detector has not
// yet missed a probe. A workflow calls WaitIdle before re-binding
// clients so promoted addresses are in place.
func (s *Supervisor) WaitIdle(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	quiet := s.det.Window()
	var quietSince time.Time
	for {
		if s.reg.Counter("recovery.in_flight").Value() == 0 && s.allAlive() {
			if quietSince.IsZero() {
				quietSince = time.Now()
			} else if time.Since(quietSince) >= quiet {
				return nil
			}
		} else {
			quietSince = time.Time{}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("recovery: not idle after %v (states %v)", timeout, s.det.States())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func (s *Supervisor) allAlive() bool {
	for _, st := range s.det.States() {
		if st != health.Alive {
			return false
		}
	}
	return true
}

func (s *Supervisor) loop() {
	defer close(s.done)
	for {
		select {
		case <-s.stop:
			return
		case ev, ok := <-s.events:
			if !ok {
				return
			}
			if ev.State == health.Dead {
				s.reg.Counter("recovery.in_flight").Inc()
				s.recover(ev)
				s.reg.Counter("recovery.in_flight").Add(-1)
			}
		}
	}
}

// recover runs the promote-and-re-protect sequence for one confirmed
// death: spare → membership bump → view push → re-target detector →
// client hook → shard re-protection.
func (s *Supervisor) recover(ev health.Event) {
	start := time.Now()
	addr, ok := s.spares.TakeSpare()
	if !ok {
		// No spare: the slot stays dead. A later AddSpare plus a repeated
		// Dead verdict cannot occur (Dead fires once); operators must
		// restart a server at the old address instead (rejoin).
		s.reg.Counter("recovery.no_spare").Inc()
		return
	}
	// Restore the dead server's replicated event-log state onto the
	// spare before it joins the membership, so the first epoch-stamped
	// request it serves already sees the dead slot's queues.
	s.restoreLog(ev.Server, addr)
	epoch, err := s.mem.Replace(ev.Server, addr)
	if err != nil {
		s.reg.Counter("recovery.failed_promotions").Inc()
		return
	}
	s.reg.Counter("recovery.promotions").Inc()
	addrs := s.mem.Addrs()
	s.pushView(epoch, addrs)
	s.det.SetAddr(ev.Server, addr)
	if s.cfg.OnPromote != nil {
		s.cfg.OnPromote(ev.Server, addr, epoch)
	}
	if s.cfg.Redundancy != nil {
		s.reprotect(addrs)
	}
	s.reg.Counter("recovery.duration_ns").Add(time.Since(start).Nanoseconds())
}

// restoreLog restores the dead slot's replicated event-log state onto
// the spare: every surviving member is asked for the replica it hosts
// of that slot, the freshest answer — the highest stream position —
// wins (ties go to the lowest-numbered responder), and it is installed
// on the spare with a bare WlogInstallReq before the membership moves.
// Flush-before-ack on the origin guarantees the freshest surviving
// replica holds every acknowledged operation. Finding no replica is
// not fatal — the slot comes up empty, the pre-replication behavior —
// but it is counted, because with replication enabled it means the
// queues died with the server.
func (s *Supervisor) restoreLog(deadSlot int, spareAddr string) {
	addrs := s.mem.Addrs()
	var best *staging.ReplState
	minSeq, maxSeq := int64(-1), int64(-1)
	for i, addr := range addrs {
		if i == deadSlot {
			continue
		}
		conn, err := s.tr.Dial(addr)
		if err != nil {
			continue
		}
		raw, err := conn.Call(staging.ReplFetchReq{Slot: deadSlot})
		conn.Close()
		if err != nil {
			continue
		}
		resp, ok := raw.(staging.ReplFetchResp)
		if !ok || !resp.Found {
			continue
		}
		if minSeq < 0 || resp.State.Seq < minSeq {
			minSeq = resp.State.Seq
		}
		if resp.State.Seq > maxSeq {
			maxSeq = resp.State.Seq
			st := resp.State
			best = &st
		}
	}
	if best == nil {
		s.reg.Counter("recovery.log_missing").Inc()
		return
	}
	conn, err := s.tr.Dial(spareAddr)
	if err != nil {
		s.reg.Counter("recovery.failed_log_restores").Inc()
		return
	}
	defer conn.Close()
	if _, err := conn.Call(staging.WlogInstallReq{Slot: deadSlot, State: *best}); err != nil {
		s.reg.Counter("recovery.failed_log_restores").Inc()
		return
	}
	restored := int64(len(best.Wlog))
	for _, o := range best.Objects {
		restored += int64(len(o.Data))
	}
	s.reg.Counter("recovery.log_restores").Inc()
	s.reg.Counter("recovery.log_records").Add(best.Seq)
	s.reg.Counter("recovery.log_bytes").Add(restored)
	s.reg.Counter("recovery.log_lag").Add(maxSeq - minSeq)
}

// pushView installs the new membership on every member, including the
// promoted spare (which clears its spare flag). Unreachable members are
// skipped; they adopt the view on rejoin via their own MembershipReq
// exchange or the next push.
func (s *Supervisor) pushView(epoch uint64, addrs []string) {
	for _, addr := range addrs {
		conn, err := s.tr.Dial(addr)
		if err != nil {
			continue
		}
		conn.Call(staging.EpochSetReq{Epoch: epoch, Addrs: addrs})
		conn.Close()
	}
}

// reprotectAttempts bounds the re-protection retry loop: a rebuild can
// fail while another member is transiently dark (crashed, partitioned),
// so the supervisor waits out a detection window and tries again rather
// than leaving redundancy degraded.
const reprotectAttempts = 5

// reprotect restores full redundancy, retrying with a detection-window
// backoff until a pass completes with every key rebuilt (or the
// attempt budget runs out).
func (s *Supervisor) reprotect(addrs []string) {
	for attempt := 0; attempt < reprotectAttempts; attempt++ {
		if s.reprotectOnce(addrs) {
			return
		}
		select {
		case <-s.stop:
			return
		case <-time.After(s.det.Window()):
		}
		// Another promotion may have moved the membership meanwhile.
		addrs = s.mem.Addrs()
	}
}

// reprotectOnce runs one re-protection pass: union the shard keys held
// by reachable members, rebuild each with bounded parallelism. Rebuild
// reads any K surviving shards and re-writes only the missing ones, so
// keys untouched by the failure cost one round of reads. It reports
// whether the pass fully restored redundancy.
func (s *Supervisor) reprotectOnce(addrs []string) bool {
	clean := true
	conns := make([]transport.Client, len(addrs))
	for i, addr := range addrs {
		conn, err := s.tr.Dial(addr)
		if err != nil {
			// A member is dark; its shards read as lost and its writes
			// fail. Proceed degraded and retry for the remainder.
			conns[i] = deadClient{}
			clean = false
			continue
		}
		conns[i] = conn
	}
	defer closeAll(conns)

	seen := map[string]struct{}{}
	var keys []string
	for _, conn := range conns {
		raw, err := conn.Call(staging.ShardKeysReq{})
		if err != nil {
			continue // dead or lagging member; survivors cover its keys
		}
		resp, ok := raw.(staging.ShardKeysResp)
		if !ok {
			continue
		}
		for _, k := range resp.Keys {
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				keys = append(keys, k)
			}
		}
	}
	if len(keys) == 0 {
		return clean
	}
	rc, err := corec.New(*s.cfg.Redundancy, conns)
	if err != nil {
		s.reg.Counter("recovery.failed_rebuilds").Add(int64(len(keys)))
		return false
	}
	sem := make(chan struct{}, s.cfg.RebuildParallel)
	type result struct {
		bytes int64
		ok    bool
	}
	results := make(chan result, len(keys))
	for _, key := range keys {
		go func(key string) {
			sem <- struct{}{}
			defer func() { <-sem }()
			n, err := rc.Rebuild(key)
			if err != nil {
				s.reg.Counter("recovery.failed_rebuilds").Inc()
			}
			results <- result{bytes: n, ok: err == nil}
		}(key)
	}
	for range keys {
		r := <-results
		if r.bytes > 0 {
			s.reg.Counter("recovery.rebuilds").Inc()
			s.reg.Counter("recovery.rebuild_bytes").Add(r.bytes)
		}
		if !r.ok {
			clean = false
		}
	}
	return clean
}

// deadClient stands in for a member that cannot be dialled during a
// re-protection pass; every call fails like the dead server would.
type deadClient struct{}

func (deadClient) Call(any) (any, error) {
	return nil, fmt.Errorf("%w: member dark during re-protection", transport.ErrNoEndpoint)
}
func (deadClient) Close() error { return nil }

func closeAll(conns []transport.Client) {
	for _, c := range conns {
		if c != nil {
			c.Close()
		}
	}
}

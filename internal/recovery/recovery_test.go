package recovery

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"gospaces/internal/corec"
	"gospaces/internal/domain"
	"gospaces/internal/failure"
	"gospaces/internal/health"
	"gospaces/internal/staging"
	"gospaces/internal/transport"
)

func fastDetector(tr transport.Transport) *health.Detector {
	return health.NewDetector(tr, "supervisor/0", health.Config{
		Period:       5 * time.Millisecond,
		Timeout:      20 * time.Millisecond,
		SuspectAfter: 2,
		DeadAfter:    4,
	})
}

func groupConfig(n int) staging.Config {
	return staging.Config{
		Global:   domain.Box3(0, 0, 0, 63, 63, 0),
		NServers: n,
		Bits:     2,
		ElemSize: 1,
	}
}

// deadConn stands in for a server that cannot even be dialled; corec
// treats its call failures as lost shards (degraded read).
type deadConn struct{}

func (deadConn) Call(any) (any, error) { return nil, transport.ErrNoEndpoint }
func (deadConn) Close() error          { return nil }

// dialAll connects to each addr, substituting a dead stub for servers
// that refuse the dial (blacked out or fail-stopped).
func dialAll(t testing.TB, tr transport.Transport, addrs []string) []transport.Client {
	t.Helper()
	conns := make([]transport.Client, len(addrs))
	for i, a := range addrs {
		c, err := tr.Dial(a)
		if err != nil {
			conns[i] = deadConn{}
			continue
		}
		conns[i] = c
	}
	return conns
}

func protect(t testing.TB, tr transport.Transport, addrs []string, cfg corec.Config, keys []string, payload func(k string) []byte) {
	t.Helper()
	conns := dialAll(t, tr, addrs)
	defer closeAll(conns)
	rc, err := corec.New(cfg, conns)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if err := rc.Put(k, payload(k)); err != nil {
			t.Fatalf("protect %s: %v", k, err)
		}
	}
}

func payloadFor(k string) []byte {
	out := make([]byte, 1024)
	for i := range out {
		out[i] = byte(i * 3)
	}
	copy(out, k)
	return out
}

func TestSupervisorPromotesAndReprotects(t *testing.T) {
	tr := transport.NewInProc()
	g, err := staging.StartGroup(tr, "stage", groupConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	spareAddr, err := g.AddSpare()
	if err != nil {
		t.Fatal(err)
	}

	red := corec.Config{Mode: corec.ErasureCoding, K: 2, M: 2}
	keys := []string{"k/0", "k/1", "k/2", "k/3", "k/4"}
	protect(t, tr, g.Membership().Addrs(), red, keys, payloadFor)

	var promoted []string
	sup := New(tr, fastDetector(tr), g.Membership(), g, Config{
		Redundancy: &red,
		OnPromote: func(slot int, addr string, epoch uint64) {
			promoted = append(promoted, fmt.Sprintf("%d@%s/e%d", slot, addr, epoch))
		},
	})
	defer sup.Close()
	sup.Start()

	if err := g.FailStop(1); err != nil {
		t.Fatal(err)
	}
	if err := sup.WaitIdle(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	if e := g.Membership().Epoch(); e != 2 {
		t.Fatalf("epoch = %d", e)
	}
	if a := g.Membership().Addr(1); a != spareAddr {
		t.Fatalf("slot 1 = %s, want %s", a, spareAddr)
	}
	if len(promoted) != 1 || promoted[0] != fmt.Sprintf("1@%s/e2", spareAddr) {
		t.Fatalf("OnPromote calls = %v", promoted)
	}
	m := sup.Metrics()
	if m.Counter("recovery.promotions").Value() != 1 {
		t.Fatalf("promotions = %d", m.Counter("recovery.promotions").Value())
	}
	if m.Counter("recovery.rebuilds").Value() == 0 || m.Counter("recovery.rebuild_bytes").Value() == 0 {
		t.Fatalf("rebuilds = %d, bytes = %d",
			m.Counter("recovery.rebuilds").Value(), m.Counter("recovery.rebuild_bytes").Value())
	}
	if m.Counter("recovery.duration_ns").Value() <= 0 {
		t.Fatal("no recovery duration recorded")
	}

	// The replacement holds rebuilt shards: storage overhead restored.
	raw, err := g.ServerAt(spareAddr).Handle(staging.StatsReq{})
	if err != nil {
		t.Fatal(err)
	}
	st := raw.(staging.StatsResp)
	if st.ShardBytes == 0 || st.RebuiltShards == 0 {
		t.Fatalf("replacement stats = %+v", st)
	}

	// Full redundancy is back: reads survive losing two MORE shards.
	conns := dialAll(t, tr, g.Membership().Addrs())
	defer closeAll(conns)
	rc, err := corec.New(red, conns)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		got, err := rc.Get(k)
		if err != nil || !bytes.Equal(got, payloadFor(k)) {
			t.Fatalf("post-recovery read %s: %v", k, err)
		}
	}
}

func TestSupervisorNoSpare(t *testing.T) {
	tr := transport.NewInProc()
	g, err := staging.StartGroup(tr, "stage", groupConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	sup := New(tr, fastDetector(tr), g.Membership(), g, Config{})
	defer sup.Close()
	sup.Start()
	if err := g.FailStop(2); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sup.Metrics().Counter("recovery.no_spare").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no_spare never recorded")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if e := g.Membership().Epoch(); e != 1 {
		t.Fatalf("epoch bumped to %d without a spare", e)
	}
}

// TestRecoveryUnderChaosSchedule is the integration test for the fault
// model: a live transport.Chaos schedule injects a transient
// ServerCrash on one member and a permanent ServerFailStop on another.
// CoREC reads must stay byte-identical before, during, and after the
// supervised repair, and exactly the fail-stop (not the crash) must
// trigger a promotion.
func TestRecoveryUnderChaosSchedule(t *testing.T) {
	inner := transport.NewInProc()
	chaos := transport.NewChaos(inner, 42)
	g, err := staging.StartGroup(chaos, "stage", groupConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	spareAddr, err := g.AddSpare()
	if err != nil {
		t.Fatal(err)
	}

	red := corec.Config{Mode: corec.ErasureCoding, K: 2, M: 2}
	keys := []string{"obj/a", "obj/b", "obj/c"}
	protect(t, chaos, g.Membership().Addrs(), red, keys, payloadFor)

	readAll := func(stage string) {
		conns := dialAll(t, chaos, g.Membership().Addrs())
		defer closeAll(conns)
		rc, err := corec.New(red, conns)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			got, err := rc.Get(k)
			if err != nil || !bytes.Equal(got, payloadFor(k)) {
				t.Fatalf("%s read %s: %v", stage, k, err)
			}
		}
	}
	readAll("pre-fault")

	// Crash server 2 transiently (recovers at ~90ms) and fail-stop
	// server 1 permanently, both immediately. The detector's Dead
	// threshold (12 consecutive misses at 15ms = 180ms) outlasts the
	// crash window, so only the fail-stop is promoted — a transient
	// blackout must never spend the spare.
	sched := failure.Fixed(
		failure.Injection{At: time.Millisecond, Server: 2, Kind: failure.ServerCrash, Duration: 90 * time.Millisecond},
		failure.Injection{At: time.Millisecond, Server: 1, Kind: failure.ServerFailStop},
	)
	chaos.Apply(sched, g.Membership().Addrs())

	det := health.NewDetector(chaos, "supervisor/0", health.Config{
		Period:       15 * time.Millisecond,
		Timeout:      60 * time.Millisecond,
		SuspectAfter: 2,
		DeadAfter:    12,
	})
	sup := New(chaos, det, g.Membership(), g, Config{Redundancy: &red})
	defer sup.Close()
	sup.Start()

	// Degraded reads while both faults are active: two of four shards
	// are unreachable, exactly K survive.
	time.Sleep(20 * time.Millisecond)
	readAll("degraded")

	if err := sup.WaitIdle(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	m := sup.Metrics()
	if v := m.Counter("recovery.promotions").Value(); v != 1 {
		t.Fatalf("promotions = %d (crash must not promote)", v)
	}
	if m.Counter("recovery.rebuilds").Value() == 0 {
		t.Fatal("no rebuilds recorded")
	}
	if g.Membership().Addr(1) != spareAddr {
		t.Fatalf("slot 1 = %s", g.Membership().Addr(1))
	}
	readAll("post-recovery")

	// And the repair is real: lose two different members; the rebuilt
	// shards on the replacement must carry the reconstruction.
	chaos.Blackout(g.Membership().Addr(0), time.Minute)
	chaos.Blackout(g.Membership().Addr(3), time.Minute)
	readAll("post-recovery degraded")
}

// BenchmarkRebuildVsObjectCount measures supervised re-protection time
// as the number of protected objects grows (EXPERIMENTS.md §recovery).
func BenchmarkRebuildVsObjectCount(b *testing.B) {
	for _, objects := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("objects=%d", objects), func(b *testing.B) {
			tr := transport.NewInProc()
			g, err := staging.StartGroup(tr, "stage", groupConfig(4))
			if err != nil {
				b.Fatal(err)
			}
			defer g.Close()
			red := corec.Config{Mode: corec.ErasureCoding, K: 2, M: 2}
			keys := make([]string, objects)
			for i := range keys {
				keys[i] = fmt.Sprintf("k/%d", i)
			}
			protect(b, tr, g.Membership().Addrs(), red, keys, payloadFor)
			sup := New(tr, fastDetector(tr), g.Membership(), g, Config{Redundancy: &red})
			defer sup.Close()
			var bytesRestored int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				// Empty one member out-of-band so each iteration re-protects
				// the same share of shards.
				if err := g.ReplaceServer(1); err != nil {
					b.Fatal(err)
				}
				before := sup.Metrics().Counter("recovery.rebuild_bytes").Value()
				b.StartTimer()
				sup.reprotect(g.Membership().Addrs())
				b.StopTimer()
				bytesRestored += sup.Metrics().Counter("recovery.rebuild_bytes").Value() - before
				b.StartTimer()
			}
			b.ReportMetric(float64(bytesRestored)/float64(b.N), "bytes/op")
		})
	}
}

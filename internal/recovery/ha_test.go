package recovery

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"gospaces/internal/health"
	"gospaces/internal/staging"
	"gospaces/internal/transport"
)

// The tests in this file cover the HA-recovery machinery in isolation:
// spare refunds on failed promotions, the dead-slot backlog healing on
// a late AddSpare, view-push convergence for members that were dark
// during the push, and leader election with fencing across redundant
// supervisors.

func haDetector(tr transport.Transport, id string) *health.Detector {
	return health.NewDetector(tr, id, health.Config{
		Period:       5 * time.Millisecond,
		Timeout:      25 * time.Millisecond,
		SuspectAfter: 2,
		DeadAfter:    4,
	})
}

// TestSpareReturnedOnFailedRestore is the spare-leak regression: the
// spare drawn for a promotion whose log restore fails (the spare is
// unreachable) must go back to the pool, and the backlogged slot must
// still heal once the spare is reachable again.
func TestSpareReturnedOnFailedRestore(t *testing.T) {
	inner := transport.NewInProc()
	chaos := transport.NewChaos(inner, 1)
	cfg := groupConfig(3)
	cfg.WlogReplicas = 1
	g, err := staging.StartGroup(chaos, "stage", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	spareAddr, err := g.AddSpare()
	if err != nil {
		t.Fatal(err)
	}

	// Logged traffic so the victim's queue has a surviving replica: the
	// promotion must attempt a restore (and fail it against the dark
	// spare) rather than skip on log_missing.
	prod, err := g.NewClient("sim/0")
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	buf := make([]byte, 64*64)
	for i := range buf {
		buf[i] = byte(i * 3)
	}
	if err := prod.PutWithLog("field", 1, cfg.Global, buf); err != nil {
		t.Fatal(err)
	}

	sup := New(chaos, haDetector(chaos, "sup/ret"), g.Membership(), g, Config{})
	defer sup.Close()
	sup.Start()

	// The spare is dark for long enough that at least the first
	// promotion attempt fails its WlogInstall; the tick-driven backlog
	// retry succeeds once the blackout lifts.
	chaos.Blackout(spareAddr, 400*time.Millisecond)
	if err := g.FailStop(1); err != nil {
		t.Fatal(err)
	}
	if err := sup.WaitIdle(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	m := sup.Metrics()
	if v := m.Counter("recovery.spare_returns").Value(); v == 0 {
		t.Fatal("failed restore never refunded the spare")
	}
	if v := m.Counter("recovery.failed_promotions").Value(); v == 0 {
		t.Fatal("no failed promotion recorded despite the dark spare")
	}
	if v := m.Counter("recovery.promotions").Value(); v != 1 {
		t.Fatalf("promotions = %d, want exactly 1", v)
	}
	if a := g.Membership().Addr(1); a != spareAddr {
		t.Fatalf("slot 1 = %s, want %s", a, spareAddr)
	}
	if n := g.SparesConsumed(); n != 1 {
		t.Fatalf("spares consumed = %d after refund+retry, want 1", n)
	}
}

// TestLateSpareHealsBacklog is the late-spare dead-end regression: a
// death against an empty pool strands the slot (clients are told via
// OnSlotDown), and a later AddSpare must heal it via the backlog sweep
// without another death event.
func TestLateSpareHealsBacklog(t *testing.T) {
	tr := transport.NewInProc()
	g, err := staging.StartGroup(tr, "stage", groupConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	var mu sync.Mutex
	var marks []bool
	sup := New(tr, haDetector(tr, "sup/late"), g.Membership(), g, Config{
		OnSlotDown: func(slot int, down bool) {
			mu.Lock()
			marks = append(marks, down)
			mu.Unlock()
		},
	})
	defer sup.Close()
	sup.Start()

	if err := g.FailStop(2); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sup.Metrics().Counter("recovery.no_spare").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no_spare never recorded")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if ds := sup.DeadSlots(); len(ds) != 1 || ds[0] != 2 {
		t.Fatalf("dead backlog = %v, want [2]", ds)
	}

	spareAddr, err := g.AddSpare()
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.WaitIdle(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	m := sup.Metrics()
	if v := m.Counter("recovery.promotions").Value(); v != 1 {
		t.Fatalf("promotions = %d", v)
	}
	if v := m.Counter("recovery.dead_retries").Value(); v != 1 {
		t.Fatalf("dead_retries = %d, want 1 (the late-spare heal)", v)
	}
	if a := g.Membership().Addr(2); a != spareAddr {
		t.Fatalf("slot 2 = %s, want %s", a, spareAddr)
	}
	if ds := sup.DeadSlots(); len(ds) != 0 {
		t.Fatalf("dead backlog = %v after heal", ds)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(marks) < 2 || marks[0] != true || marks[len(marks)-1] != false {
		t.Fatalf("OnSlotDown marks = %v, want down then up", marks)
	}
}

// TestViewPushPartialFailureConverges covers a member that is dark
// while the leader pushes the post-promotion view: on rejoin the
// leader re-sends the current view, so the member converges to the new
// epoch instead of serving the stale membership forever.
func TestViewPushPartialFailureConverges(t *testing.T) {
	inner := transport.NewInProc()
	chaos := transport.NewChaos(inner, 2)
	g, err := staging.StartGroup(chaos, "stage", groupConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	spareAddr, err := g.AddSpare()
	if err != nil {
		t.Fatal(err)
	}

	// Member 2 goes dark right after the membership write of slot 1's
	// promotion — exactly in time to miss the view push — and rejoins
	// well after the new epoch is installed everywhere else. (A blackout
	// started before the promotion would get member 2 itself confirmed
	// dead first and promoted into, stealing the spare.)
	darkAddr := g.Membership().Addr(2)
	sup := New(chaos, haDetector(chaos, "sup/push"), g.Membership(), g, Config{
		PromotionHook: func(stage string, slot int) {
			if stage == "replaced" && slot == 1 {
				chaos.Blackout(darkAddr, 150*time.Millisecond)
			}
		},
	})
	defer sup.Close()
	sup.Start()

	if err := g.FailStop(1); err != nil {
		t.Fatal(err)
	}
	if err := sup.WaitIdle(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	if v := sup.Metrics().Counter("recovery.promotions").Value(); v != 1 {
		t.Fatalf("promotions = %d, want 1 (the dark member must not be promoted)", v)
	}
	if e := g.Membership().Epoch(); e != 2 {
		t.Fatalf("epoch = %d", e)
	}
	if v := sup.Metrics().Counter("recovery.view_repushes").Value(); v == 0 {
		t.Fatal("rejoining member was never re-sent the view")
	}
	// The rejoined member itself serves the new view.
	conn, err := chaos.Dial(darkAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	raw, err := conn.Call(staging.MembershipReq{})
	if err != nil {
		t.Fatal(err)
	}
	view := raw.(staging.MembershipResp)
	if view.Epoch != 2 || len(view.Addrs) != 4 || view.Addrs[1] != spareAddr {
		t.Fatalf("rejoined member's view = %+v, want epoch 2 with slot 1 = %s", view, spareAddr)
	}
}

// TestRedundantSupervisorsElectionAndFencing runs three supervisors
// over one group: exactly one wins the lease; killing it elects a
// standby under a strictly higher token within a couple of lease TTLs;
// the dead leader's token is fenced out server-side; and the survivor
// performs the one promotion.
func TestRedundantSupervisorsElectionAndFencing(t *testing.T) {
	tr := transport.NewInProc()
	g, err := staging.StartGroup(tr, "stage", groupConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	spareAddr, err := g.AddSpare()
	if err != nil {
		t.Fatal(err)
	}

	const ttl = 150 * time.Millisecond
	sups := make([]*Supervisor, 3)
	for i := range sups {
		id := fmt.Sprintf("ha/sup/%d", i)
		sups[i] = New(tr, haDetector(tr, id), g.Membership(), g, Config{ID: id, LeaseTTL: ttl})
		defer sups[i].Close()
		sups[i].Start()
	}

	leaders := func() []*Supervisor {
		var out []*Supervisor
		for _, s := range sups {
			if s.IsLeader() {
				out = append(out, s)
			}
		}
		return out
	}
	if l := leaders(); len(l) != 1 {
		t.Fatalf("%d leaders after start, want 1", len(l))
	}
	old := leaders()[0]
	oldToken := old.Token()

	old.Kill()
	var successor *Supervisor
	deadline := time.Now().Add(10 * ttl)
	for {
		if l := leaders(); len(l) == 1 {
			successor = l[0]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no successor elected within %v of killing the leader", 10*ttl)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if successor == old {
		t.Fatal("killed supervisor still reports leadership")
	}
	if successor.Token() <= oldToken {
		t.Fatalf("successor token %d not above deposed token %d", successor.Token(), oldToken)
	}

	// The deposed token is fenced out: a stale recovery-side mutation
	// under it is rejected server-side.
	conn, err := tr.Dial(g.Membership().Addr(0))
	if err != nil {
		t.Fatal(err)
	}
	_, err = conn.Call(staging.FencedReq{Token: oldToken, Req: staging.IntentClearReq{Slot: 0}})
	conn.Close()
	if !staging.IsFenced(err) {
		t.Fatalf("stale-token call got %v, want fencing rejection", err)
	}

	// The survivor owns recovery.
	if err := g.FailStop(1); err != nil {
		t.Fatal(err)
	}
	idle := false
	for _, s := range sups {
		if s == old {
			continue
		}
		if err := s.WaitIdle(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		idle = true
	}
	if !idle {
		t.Fatal("no surviving supervisor to wait on")
	}
	var promotions int64
	for _, s := range sups {
		promotions += s.Metrics().Counter("recovery.promotions").Value()
	}
	if promotions != 1 {
		t.Fatalf("promotions = %d across the redundant set, want exactly 1", promotions)
	}
	if a := g.Membership().Addr(1); a != spareAddr {
		t.Fatalf("slot 1 = %s, want %s", a, spareAddr)
	}
	if l := leaders(); len(l) != 1 {
		t.Fatalf("%d leaders at end, want 1", len(l))
	}
}

package recovery

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"gospaces/internal/domain"
	"gospaces/internal/staging"
	"gospaces/internal/transport"
	"gospaces/internal/wlog"
)

// The tests in this file drive the tentpole end to end: with log
// replication on, kill any staging server at any point in a logged
// producer/consumer schedule, let the supervisor promote a spare and
// restore the dead slot's event log from the freshest replica, then
// workflow_restart and replay — byte-exact reads, no divergence.

func replGroupConfig(n, k int) staging.Config {
	cfg := groupConfig(n)
	cfg.WlogReplicas = k
	return cfg
}

// wfOp is one step of the scripted workflow: a logged put or get of an
// explicit version, or a workflow_check, by the producer or consumer.
type wfOp struct {
	prod  bool
	check bool
	ver   int64
}

func (o wfOp) app() string {
	if o.prod {
		return "sim/0"
	}
	return "ana/0"
}

// script interleaves producer puts and consumer gets with a checkpoint
// by each side mid-stream, so a kill at any index exercises replay
// from a non-trivial anchor.
var script = []wfOp{
	{prod: true, ver: 1}, {ver: 1},
	{prod: true, ver: 2}, {ver: 2},
	{prod: true, check: true}, {check: true},
	{prod: true, ver: 3}, {ver: 3},
	{prod: true, ver: 4}, {ver: 4},
}

func verData(n int, ver int64) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(int64(i)*7 + ver*131)
	}
	return out
}

// harness is one running scenario: group + spare + supervisor + the
// two workflow clients.
type harness struct {
	tr     transport.Transport
	g      *staging.Group
	sup    *Supervisor
	prod   *staging.Client
	cons   *staging.Client
	global domain.BBox
	bufLen int
}

func startHarness(t *testing.T, cfg staging.Config) *harness {
	t.Helper()
	tr := transport.NewInProc()
	g, err := staging.StartGroup(tr, "stage", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	if _, err := g.AddSpare(); err != nil {
		t.Fatal(err)
	}
	sup := New(tr, fastDetector(tr), g.Membership(), g, Config{
		OnPromote: func(slot int, addr string, epoch uint64) {
			g.SetMember(slot, addr, epoch)
		},
	})
	t.Cleanup(func() { sup.Close() })
	sup.Start()
	prod, err := g.NewClient("sim/0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { prod.Close() })
	cons, err := g.NewClient("ana/0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cons.Close() })
	return &harness{
		tr: tr, g: g, sup: sup, prod: prod, cons: cons,
		global: cfg.Global, bufLen: domain.BufLen(cfg.Global, cfg.ElemSize),
	}
}

func (h *harness) client(o wfOp) *staging.Client {
	if o.prod {
		return h.prod
	}
	return h.cons
}

// exec runs one script op, verifying get payloads byte-exactly.
func (h *harness) exec(o wfOp) error {
	c := h.client(o)
	switch {
	case o.check:
		_, err := c.WorkflowCheck()
		return err
	case o.prod:
		return c.PutWithLog("field", o.ver, h.global, verData(h.bufLen, o.ver))
	default:
		got, _, err := c.GetWithLog("field", o.ver, h.global)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, verData(h.bufLen, o.ver)) {
			return fmt.Errorf("get v%d: payload diverged from original bytes", o.ver)
		}
		return nil
	}
}

// lastCheck returns, per app, the index of that app's last executed
// checkpoint in script[:upto] (-1 if none): the replay anchor.
func lastCheck(upto int) map[string]int {
	anchors := map[string]int{"sim/0": -1, "ana/0": -1}
	for i := 0; i < upto; i++ {
		if script[i].check {
			anchors[script[i].app()] = i
		}
	}
	return anchors
}

// restartAndReplay performs workflow_restart for both apps, then
// re-executes each app's ops since its last checkpoint (the replay,
// which the restored log must suppress or serve byte-exactly) and
// continues with the unexecuted remainder of the script.
func (h *harness) restartAndReplay(t *testing.T, killAt int) {
	t.Helper()
	for _, c := range []*staging.Client{h.prod, h.cons} {
		if _, err := c.WorkflowRestart(); err != nil {
			t.Fatalf("workflow_restart %s: %v", c.App(), err)
		}
	}
	anchors := lastCheck(killAt)
	for i, o := range script {
		replayed := i < killAt && i > anchors[o.app()] && !o.check
		fresh := i >= killAt
		if !replayed && !fresh {
			continue
		}
		if err := h.exec(o); err != nil {
			if errors.Is(err, wlog.ErrReplayDivergence) {
				t.Fatalf("op %d (%+v): replay diverged: %v", i, o, err)
			}
			t.Fatalf("op %d (%+v): %v", i, o, err)
		}
	}
}

func runKillScenario(t *testing.T, victim, killAt int) {
	t.Helper()
	h := startHarness(t, replGroupConfig(3, 1))
	for i := 0; i < killAt; i++ {
		if err := h.exec(script[i]); err != nil {
			t.Fatalf("op %d (%+v): %v", i, script[i], err)
		}
	}
	if err := h.g.FailStop(victim); err != nil {
		t.Fatal(err)
	}
	if err := h.sup.WaitIdle(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	h.restartAndReplay(t, killAt)
	if n := h.sup.Metrics().Counter("recovery.log_restores").Value(); n != 1 {
		t.Fatalf("recovery.log_restores = %d, want 1", n)
	}
	if n := h.sup.Metrics().Counter("recovery.log_missing").Value(); n != 0 {
		t.Fatalf("recovery.log_missing = %d, want 0", n)
	}
}

// TestKillAnyServerAtAnyPoint is the chaos property: for every victim
// server and every op boundary in the schedule, fail-stop there, let
// the supervisor restore the log onto a spare, and replay cleanly. In
// short mode a sampled subset runs as the soak.
func TestKillAnyServerAtAnyPoint(t *testing.T) {
	for victim := 0; victim < 3; victim++ {
		for killAt := 1; killAt <= len(script); killAt++ {
			if testing.Short() && (victim+killAt)%4 != 0 {
				continue
			}
			t.Run(fmt.Sprintf("victim=%d/killAt=%d", victim, killAt), func(t *testing.T) {
				runKillScenario(t, victim, killAt)
			})
		}
	}
}

// runKillDuringReplay kills victim while the consumer is mid-replay,
// having replayed replayBefore of its two post-anchor gets: the
// partially advanced cursor must survive on the replica, and the second
// workflow_restart must rewind to the anchor and replay fully.
func runKillDuringReplay(t *testing.T, victim, replayBefore int) {
	t.Helper()
	h := startHarness(t, replGroupConfig(3, 1))
	for i, o := range script {
		if err := h.exec(o); err != nil {
			t.Fatalf("op %d: %v", i, o)
		}
	}
	// Consumer restarts and replays part of its window, leaving the
	// replay cursor mid-queue (or at the end when replayBefore is 2).
	if _, err := h.cons.WorkflowRestart(); err != nil {
		t.Fatal(err)
	}
	for v := int64(3); v < 3+int64(replayBefore); v++ {
		got, _, err := h.cons.GetWithLog("field", v, h.global)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, verData(h.bufLen, v)) {
			t.Fatalf("mid-replay get v%d diverged", v)
		}
	}
	if err := h.g.FailStop(victim); err != nil {
		t.Fatal(err)
	}
	if err := h.sup.WaitIdle(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Restart again: cursor rewinds to the anchor on the restored log.
	if _, err := h.cons.WorkflowRestart(); err != nil {
		t.Fatal(err)
	}
	for _, v := range []int64{3, 4} {
		got, _, err := h.cons.GetWithLog("field", v, h.global)
		if err != nil {
			if errors.Is(err, wlog.ErrReplayDivergence) {
				t.Fatalf("replay get v%d diverged: %v", v, err)
			}
			t.Fatal(err)
		}
		if !bytes.Equal(got, verData(h.bufLen, v)) {
			t.Fatalf("replay get v%d: wrong bytes", v)
		}
	}
	// And the workflow continues past replay.
	if err := h.prod.PutWithLog("field", 5, h.global, verData(h.bufLen, 5)); err != nil {
		t.Fatal(err)
	}
	got, _, err := h.cons.GetWithLog("field", 5, h.global)
	if err != nil || !bytes.Equal(got, verData(h.bufLen, 5)) {
		t.Fatalf("post-replay get v5: %v", err)
	}
	if n := h.sup.Metrics().Counter("recovery.log_restores").Value(); n != 1 {
		t.Fatalf("recovery.log_restores = %d, want 1", n)
	}
}

func TestKillDuringReplay(t *testing.T) {
	runKillDuringReplay(t, 1, 1)
}

// TestKillDuringReplaySoak is the chaos soak over the kill-during-replay
// scenario: every victim crossed with every replay depth (cursor at the
// start, middle, and end of the window). It is cheap enough to run in
// short mode, which is the CI fast path.
func TestKillDuringReplaySoak(t *testing.T) {
	for victim := 0; victim < 3; victim++ {
		for replayBefore := 0; replayBefore <= 2; replayBefore++ {
			t.Run(fmt.Sprintf("victim=%d/replayed=%d", victim, replayBefore), func(t *testing.T) {
				runKillDuringReplay(t, victim, replayBefore)
			})
		}
	}
}

// TestNoReplicationLosesQueue is the regression guard: with K=0 the
// promoted spare comes up empty, the dead slot's queue and payloads are
// gone, and replay reads fail — exactly the loss the tentpole removes.
func TestNoReplicationLosesQueue(t *testing.T) {
	h := startHarness(t, replGroupConfig(3, 0))
	for i, o := range script {
		if err := h.exec(o); err != nil {
			t.Fatalf("op %d: %v", i, o)
		}
	}
	if err := h.g.FailStop(1); err != nil {
		t.Fatal(err)
	}
	if err := h.sup.WaitIdle(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if n := h.sup.Metrics().Counter("recovery.log_missing").Value(); n != 1 {
		t.Fatalf("recovery.log_missing = %d, want 1", n)
	}
	if _, err := h.cons.WorkflowRestart(); err != nil {
		t.Fatal(err)
	}
	// The replayed read spans the promoted (empty) slot: its piece of
	// every logged version died with the server.
	if _, _, err := h.cons.GetWithLog("field", 3, h.global); err == nil {
		t.Fatal("replay read succeeded although the queue died with the server")
	}
}

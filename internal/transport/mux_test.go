package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

type muxEcho struct {
	Caller int
	Seq    int
	Slow   bool
}

func init() { gob.Register(muxEcho{}) }

// TestMuxConcurrentCalls hammers one shared client from many
// goroutines: every call must return exactly once with its own echo —
// a cross-delivered response would surface as a mismatched
// caller/sequence pair.
func TestMuxConcurrentCalls(t *testing.T) {
	tr := NewTCPTimeout(5*time.Second, time.Second)
	ep, err := tr.ListenTCP("127.0.0.1:0", func(req any) (any, error) { return req, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	cl, err := tr.Dial(ep.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const callers, calls = 32, 50
	var wg sync.WaitGroup
	errs := make(chan error, callers*calls)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for s := 0; s < calls; s++ {
				resp, err := cl.Call(muxEcho{Caller: c, Seq: s})
				if err != nil {
					errs <- fmt.Errorf("caller %d seq %d: %v", c, s, err)
					return
				}
				e, ok := resp.(muxEcho)
				if !ok || e.Caller != c || e.Seq != s {
					errs <- fmt.Errorf("caller %d seq %d got foreign response %#v", c, s, resp)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if g := tr.Metrics().Gauge("transport.inflight").Value(); g != 0 {
		t.Fatalf("transport.inflight = %d after all calls returned", g)
	}
}

// TestMuxConcurrentCallsUnderChaos repeats the hammer through the chaos
// transport with latency, dropped responses, and periodic connection
// kills plus a server crash/restart mid-run. The invariant weakens to:
// every call returns exactly once, and a successful return is the
// caller's own echo — never a neighbour's.
func TestMuxConcurrentCallsUnderChaos(t *testing.T) {
	tr := NewTCPTimeout(2*time.Second, time.Second)
	handler := func(req any) (any, error) { return req, nil }
	ep, err := tr.ListenTCP("127.0.0.1:0", handler)
	if err != nil {
		t.Fatal(err)
	}
	addr := ep.Addr()
	ch := NewChaos(tr, 42)
	ch.SetCallFaults(0.15, 3*time.Millisecond, 0.1)

	cl, err := ch.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const callers, calls = 16, 40
	var wg sync.WaitGroup
	var returned, okCalls atomic.Int64
	errs := make(chan error, callers*calls)
	stop := make(chan struct{})
	nemesisDone := make(chan struct{})
	// Nemesis: kill live connections a few times, then crash and restart
	// the server once. It holds the restarted endpoint open until the
	// callers are done.
	go func() {
		defer close(nemesisDone)
		for i := 0; i < 3; i++ {
			select {
			case <-stop:
				return
			case <-time.After(30 * time.Millisecond):
				ch.KillConns(addr)
			}
		}
		ep.Close()
		time.Sleep(20 * time.Millisecond)
		ep2, err := tr.ListenTCP(addr, handler)
		if err != nil {
			return // port raced away; the calls just keep failing, which is fine
		}
		<-stop
		ep2.Close()
	}()

	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for s := 0; s < calls; s++ {
				resp, err := cl.Call(muxEcho{Caller: c, Seq: s})
				returned.Add(1)
				if err != nil {
					if !Retryable(err) && !errors.Is(err, ErrClosed) {
						errs <- fmt.Errorf("caller %d seq %d: non-transport error %v", c, s, err)
					}
					continue
				}
				okCalls.Add(1)
				e, ok := resp.(muxEcho)
				if !ok || e.Caller != c || e.Seq != s {
					errs <- fmt.Errorf("caller %d seq %d got foreign response %#v", c, s, resp)
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	<-nemesisDone
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := returned.Load(); got != callers*calls {
		t.Fatalf("%d calls returned, want exactly %d", got, callers*calls)
	}
	if okCalls.Load() == 0 {
		t.Fatal("no call succeeded under chaos; faults drowned the test")
	}
	t.Logf("chaos run: %d/%d calls succeeded", okCalls.Load(), callers*calls)
}

// TestSlowCallDoesNotKillNeighbors is the regression for per-call
// deadlines: one call that outlives CallTimeout must return ErrTimeout
// while its neighbours on the same connection complete, and the
// connection itself must survive (no re-dial).
func TestSlowCallDoesNotKillNeighbors(t *testing.T) {
	block := make(chan struct{})
	tr := NewTCPTimeout(150*time.Millisecond, time.Second)
	ep, err := tr.ListenTCP("127.0.0.1:0", func(req any) (any, error) {
		if e, ok := req.(muxEcho); ok && e.Slow {
			<-block
		}
		return req, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	defer close(block)

	cl, err := tr.Dial(ep.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	tc := cl.(*tcpClient)
	tc.mu.Lock()
	connBefore := tc.cur
	tc.mu.Unlock()
	if connBefore == nil {
		t.Fatal("no live connection after dial")
	}

	slowErr := make(chan error, 1)
	go func() {
		_, err := cl.Call(muxEcho{Caller: 99, Slow: true})
		slowErr <- err
	}()

	// Fast neighbours keep completing while the slow call is stuck.
	deadline := time.Now().Add(400 * time.Millisecond)
	for s := 0; time.Now().Before(deadline); s++ {
		resp, err := cl.Call(muxEcho{Caller: 1, Seq: s})
		if err != nil {
			t.Fatalf("fast neighbour failed while slow call in flight: %v", err)
		}
		if e := resp.(muxEcho); e.Caller != 1 || e.Seq != s {
			t.Fatalf("fast neighbour got foreign response %#v", resp)
		}
	}

	if err := <-slowErr; !errors.Is(err, ErrTimeout) {
		t.Fatalf("slow call returned %v, want ErrTimeout", err)
	}

	// The connection must be the same one: a timeout is per-call, not a
	// stream teardown.
	tc.mu.Lock()
	connAfter := tc.cur
	tc.mu.Unlock()
	if connAfter != connBefore {
		t.Fatal("slow-call timeout tore down the shared connection")
	}
	if _, err := cl.Call(muxEcho{Caller: 2, Seq: 0}); err != nil {
		t.Fatalf("call after slow-call timeout: %v", err)
	}
}

// TestMuxLateResponseDiscarded pins the other half of the timeout
// semantics: when the server answers after the caller gave up, the late
// response is dropped by id — it must never be delivered to the next
// call that reuses the stream.
func TestMuxLateResponseDiscarded(t *testing.T) {
	var delay atomic.Bool
	tr := NewTCPTimeout(100*time.Millisecond, time.Second)
	ep, err := tr.ListenTCP("127.0.0.1:0", func(req any) (any, error) {
		if delay.Load() {
			time.Sleep(250 * time.Millisecond)
		}
		return req, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	cl, err := tr.Dial(ep.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	delay.Store(true)
	if _, err := cl.Call(muxEcho{Caller: 7, Seq: 7}); !errors.Is(err, ErrTimeout) {
		t.Fatalf("delayed call returned %v, want ErrTimeout", err)
	}
	delay.Store(false)
	// The late response for (7,7) lands during these calls; each must
	// still get its own echo.
	for s := 0; s < 20; s++ {
		resp, err := cl.Call(muxEcho{Caller: 8, Seq: s})
		if err != nil {
			t.Fatalf("call after timeout: %v", err)
		}
		if e := resp.(muxEcho); e.Caller != 8 || e.Seq != s {
			t.Fatalf("late response cross-delivered: got %#v", resp)
		}
	}
}

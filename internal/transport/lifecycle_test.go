package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestTCPConcurrentCloseDuringCalls hammers one endpoint with calls
// while closing clients and finally the endpoint from other goroutines.
// Every outcome must be a success or a typed error — no hangs, no
// panics, no garbage decodes. Run under -race.
func TestTCPConcurrentCloseDuringCalls(t *testing.T) {
	tr := NewTCPTimeout(2*time.Second, 2*time.Second)
	ep, err := tr.ListenTCP("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	const nClients = 8
	clients := make([]Client, nClients)
	for i := range clients {
		c, err := tr.Dial(ep.Addr())
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
	}
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c Client) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				resp, err := c.Call(echoReq{Msg: fmt.Sprintf("m%d-%d", i, j)})
				if err != nil {
					// Typed errors only once the teardown races in.
					if !Retryable(err) && !errors.Is(err, ErrClosed) {
						t.Errorf("client %d: untyped error %v", i, err)
					}
					return
				}
				if r, ok := resp.(echoResp); !ok || r.Msg == "" {
					t.Errorf("client %d: bad response %v", i, resp)
					return
				}
			}
		}(i, c)
	}
	// Tear down half the clients mid-flight, then the endpoint.
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(2 * time.Millisecond)
		for i := 0; i < nClients/2; i++ {
			clients[i].Close()
		}
		ep.Close()
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("lifecycle teardown hung")
	}
	for _, c := range clients {
		c.Close()
	}
}

func TestTCPDialClosedEndpoint(t *testing.T) {
	tr := NewTCPTimeout(time.Second, time.Second)
	ep, err := tr.ListenTCP("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	addr := ep.Addr()
	ep.Close()
	_, err = tr.Dial(addr)
	if !errors.Is(err, ErrNoEndpoint) {
		t.Fatalf("dial closed endpoint = %v, want ErrNoEndpoint", err)
	}
}

func TestTCPCallAfterClientClose(t *testing.T) {
	tr := NewTCP()
	ep, err := tr.ListenTCP("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	c, err := tr.Dial(ep.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(echoReq{Msg: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(echoReq{Msg: "y"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("call after close = %v, want ErrClosed", err)
	}
	// Double close is a no-op.
	if err := c.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestTCPCloseInterruptsInFlightCall verifies that a client Close from
// another goroutine unblocks a call parked on a stalled server instead
// of waiting behind it.
func TestTCPCloseInterruptsInFlightCall(t *testing.T) {
	tr := NewTCP() // no call deadline: only Close can unblock
	entered := make(chan struct{}, 1)
	block := make(chan struct{})
	ep, err := tr.ListenTCP("127.0.0.1:0", func(req any) (any, error) {
		entered <- struct{}{}
		<-block
		return req, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	c, err := tr.Dial(ep.Addr())
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Call(echoReq{Msg: "stuck"})
		errCh <- err
	}()
	<-entered
	c.Close()
	select {
	case err := <-errCh:
		close(block)
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("interrupted call err = %v, want ErrClosed", err)
		}
	case <-time.After(10 * time.Second):
		close(block)
		t.Fatal("Close did not unblock the in-flight call")
	}
}

// TestTCPRedialAfterServerRestart exercises the broken-conn path end to
// end: the server dies mid-session, calls fail typed, the server comes
// back on the same port, and the same client resumes via re-dial.
func TestTCPRedialAfterServerRestart(t *testing.T) {
	tr := NewTCPTimeout(2*time.Second, time.Second)
	ep, err := tr.ListenTCP("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	addr := ep.Addr()
	c, err := tr.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(echoReq{Msg: "a"}); err != nil {
		t.Fatal(err)
	}
	ep.Close()
	if _, err := c.Call(echoReq{Msg: "b"}); err == nil || !Retryable(err) {
		t.Fatalf("call against dead server = %v, want retryable error", err)
	}
	// Restart on the same port. The bind can race the kernel's port
	// release; retry briefly.
	var ep2 *TCPEndpoint
	for i := 0; i < 50; i++ {
		ep2, err = tr.ListenTCP(addr, echoHandler)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer ep2.Close()
	if resp, err := c.Call(echoReq{Msg: "c"}); err != nil || resp.(echoResp).Msg != "echo:c" {
		t.Fatalf("resume after restart: %v %v", resp, err)
	}
}

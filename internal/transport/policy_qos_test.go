package transport

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gospaces/internal/qos"
)

// overloadHandler rejects the first n calls with a typed overload
// rejection carrying hint, then succeeds.
func overloadHandler(n int64, hint time.Duration, asRemote bool) (Handler, *atomic.Int64) {
	var calls atomic.Int64
	h := func(req any) (any, error) {
		if calls.Add(1) <= n {
			e := &qos.ErrOverloaded{Tenant: "lo", Resource: qos.ResourceStaging, RetryAfter: hint}
			if asRemote {
				// The TCP transport delivers handler errors as messages.
				return nil, &RemoteError{Msg: "staging put: " + e.Error()}
			}
			return nil, e
		}
		return "ok", nil
	}
	return h, &calls
}

func dialRetrying(t *testing.T, pol RetryPolicy, h Handler) (*Retrying, Client) {
	t.Helper()
	inner := NewInProc()
	if _, err := inner.Listen("srv", h); err != nil {
		t.Fatal(err)
	}
	r := WithRetry(inner, pol)
	t.Cleanup(func() { r.Close() })
	c, err := r.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	return r, c
}

func TestRetryHonorsRetryAfterHint(t *testing.T) {
	const hint = 30 * time.Millisecond
	h, calls := overloadHandler(2, hint, false)
	r, c := dialRetrying(t, RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Jitter: 0.2, Seed: 7}, h)

	start := time.Now()
	resp, err := c.Call("put")
	elapsed := time.Since(start)
	if err != nil || resp != "ok" {
		t.Fatalf("call = %v, %v", resp, err)
	}
	if calls.Load() != 3 {
		t.Fatalf("handler saw %d calls, want 3", calls.Load())
	}
	// Two waits at the server's hint (jitter only extends them) —
	// far beyond the 5ms backoff cap the policy would use on its own.
	if elapsed < 2*hint {
		t.Fatalf("waited %v, want >= %v (hint not honored)", elapsed, 2*hint)
	}
	if got := r.Metrics().Counter("rpc.overloaded").Value(); got != 2 {
		t.Fatalf("rpc.overloaded = %d, want 2", got)
	}
	if got := r.Metrics().Counter("rpc.retries").Value(); got != 2 {
		t.Fatalf("rpc.retries = %d, want 2", got)
	}
}

func TestRetryAfterSurvivesRemoteErrorWire(t *testing.T) {
	h, calls := overloadHandler(1, 10*time.Millisecond, true)
	_, c := dialRetrying(t, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Seed: 7}, h)
	if _, err := c.Call("put"); err != nil {
		t.Fatalf("call through RemoteError-typed rejection: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("handler saw %d calls, want 2", calls.Load())
	}
}

func TestRetryAfterChargedAgainstBudget(t *testing.T) {
	// MaxDelay 10ms, hint 45ms → ceil(45/10) = 5 units > budget 3: the
	// wait may not even start; the call fails fast with budget denial.
	h, calls := overloadHandler(10, 45*time.Millisecond, false)
	r, c := dialRetrying(t, RetryPolicy{MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond, Budget: 3, Seed: 7}, h)

	start := time.Now()
	_, err := c.Call("put")
	elapsed := time.Since(start)
	if err == nil || !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Fatalf("err = %v, want budget exhaustion", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("handler saw %d calls, want 1 (no retries affordable)", calls.Load())
	}
	// The denied wait was never slept: total stall stays bounded.
	if elapsed > 30*time.Millisecond {
		t.Fatalf("budget-denied call stalled %v", elapsed)
	}
	if got := r.Metrics().Counter("rpc.budget_denied").Value(); got != 1 {
		t.Fatalf("rpc.budget_denied = %d, want 1", got)
	}

	// The typed rejection is still recoverable from the wrapped error.
	if ov, ok := qos.FromError(err); !ok || ov.Tenant != "lo" {
		t.Fatalf("FromError(%v) = %+v, %v", err, ov, ok)
	}
}

func TestRetryAfterExhaustsAttempts(t *testing.T) {
	h, _ := overloadHandler(100, time.Millisecond, false)
	_, c := dialRetrying(t, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Seed: 7}, h)
	_, err := c.Call("put")
	if err == nil || !strings.Contains(err.Error(), "failed after 3 attempts") {
		t.Fatalf("err = %v, want attempt exhaustion", err)
	}
	var ov *qos.ErrOverloaded
	if !errors.As(err, &ov) {
		t.Fatalf("attempt-exhausted error lost the typed cause: %v", err)
	}
}

func TestNonOverloadHandlerErrorsStayTerminal(t *testing.T) {
	var calls atomic.Int64
	h := func(req any) (any, error) {
		calls.Add(1)
		return nil, errors.New("validation failed")
	}
	_, c := dialRetrying(t, RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Seed: 7}, h)
	if _, err := c.Call("put"); err == nil {
		t.Fatal("expected handler error")
	}
	if calls.Load() != 1 {
		t.Fatalf("terminal handler error retried: %d calls", calls.Load())
	}
}

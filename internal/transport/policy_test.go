package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// flakyHandler fails the first n calls with a retryable error, then
// echoes.
func flakyHandler(n int) Handler {
	var mu sync.Mutex
	failures := n
	return func(req any) (any, error) {
		mu.Lock()
		defer mu.Unlock()
		if failures > 0 {
			failures--
			return nil, fmt.Errorf("%w: injected", ErrConnBroken)
		}
		return req, nil
	}
}

func fastPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Jitter: 0.2, Seed: 42}
}

func TestRetrySucceedsAfterTransientFaults(t *testing.T) {
	tr := WithRetry(NewInProc(), fastPolicy())
	closer, err := tr.Listen("s", flakyHandler(3))
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	c, err := tr.Dial("s")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call("hello")
	if err != nil {
		t.Fatalf("call through 3 transient faults: %v", err)
	}
	if resp != "hello" {
		t.Fatalf("resp = %v", resp)
	}
	if got := tr.Metrics().Counter("rpc.retries").Value(); got != 3 {
		t.Fatalf("retries = %d, want 3", got)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	tr := WithRetry(NewInProc(), fastPolicy())
	closer, _ := tr.Listen("s", flakyHandler(1000))
	defer closer.Close()
	c, _ := tr.Dial("s")
	defer c.Close()
	_, err := c.Call("x")
	if !errors.Is(err, ErrConnBroken) {
		t.Fatalf("err = %v, want ErrConnBroken", err)
	}
	if got := tr.Metrics().Counter("rpc.exhausted").Value(); got != 1 {
		t.Fatalf("exhausted = %d, want 1", got)
	}
	if got := tr.Metrics().Counter("rpc.retries").Value(); got != 4 {
		t.Fatalf("retries = %d, want 4 (5 attempts)", got)
	}
}

func TestRetryTerminalErrorNotRetried(t *testing.T) {
	tr := WithRetry(NewInProc(), fastPolicy())
	calls := 0
	closer, _ := tr.Listen("s", func(req any) (any, error) {
		calls++
		return nil, errors.New("handler rejected")
	})
	defer closer.Close()
	c, _ := tr.Dial("s")
	defer c.Close()
	if _, err := c.Call("x"); err == nil {
		t.Fatal("terminal error swallowed")
	}
	if calls != 1 {
		t.Fatalf("handler called %d times, want 1", calls)
	}
	if got := tr.Metrics().Counter("rpc.retries").Value(); got != 0 {
		t.Fatalf("retries = %d, want 0", got)
	}
}

func TestRetryBudgetExhaustion(t *testing.T) {
	pol := fastPolicy()
	pol.Budget = 3
	tr := WithRetry(NewInProc(), pol)
	closer, _ := tr.Listen("s", flakyHandler(1000))
	defer closer.Close()
	c, _ := tr.Dial("s")
	defer c.Close()
	// First call burns the 3-retry budget (4 attempts < MaxAttempts 5
	// means it errors out via the budget, not attempt exhaustion).
	if _, err := c.Call("x"); err == nil {
		t.Fatal("call against dead handler succeeded")
	}
	// Later calls fail fast: one attempt, no budget left.
	if _, err := c.Call("y"); err == nil {
		t.Fatal("call against dead handler succeeded")
	}
	if got := tr.Metrics().Counter("rpc.retries").Value(); got != 3 {
		t.Fatalf("retries = %d, want exactly the budget of 3", got)
	}
	if got := tr.Metrics().Counter("rpc.budget_denied").Value(); got != 2 {
		t.Fatalf("budget_denied = %d, want 2", got)
	}
}

func TestRetryDialRecoversFromLateListen(t *testing.T) {
	inner := NewInProc()
	pol := fastPolicy()
	pol.MaxAttempts = 20
	tr := WithRetry(inner, pol)
	go func() {
		time.Sleep(5 * time.Millisecond)
		inner.Listen("late", func(req any) (any, error) { return req, nil })
	}()
	c, err := tr.Dial("late")
	if err != nil {
		t.Fatalf("dial did not wait out the late listener: %v", err)
	}
	defer c.Close()
	if resp, err := c.Call("ok"); err != nil || resp != "ok" {
		t.Fatalf("call: %v %v", resp, err)
	}
}

func TestBackoffGrowthAndJitterBounds(t *testing.T) {
	r := WithRetry(NewInProc(), RetryPolicy{
		MaxAttempts: 8, BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond, Jitter: 0.5, Seed: 7,
	})
	prevMax := time.Duration(0)
	for n := 0; n < 8; n++ {
		want := 10 * time.Millisecond << uint(n)
		if want > 50*time.Millisecond {
			want = 50 * time.Millisecond
		}
		for i := 0; i < 100; i++ {
			d := r.delay(n)
			if d > want || d < want/2 {
				t.Fatalf("delay(%d) = %v outside [%v, %v]", n, d, want/2, want)
			}
		}
		if want > prevMax {
			prevMax = want
		}
	}
	if prevMax != 50*time.Millisecond {
		t.Fatalf("backoff never reached the cap: %v", prevMax)
	}
}

func TestInProcCallTimeout(t *testing.T) {
	inner := NewInProc()
	inner.CallTimeout = 20 * time.Millisecond
	block := make(chan struct{})
	defer close(block)
	closer, _ := inner.Listen("stall", func(req any) (any, error) {
		<-block
		return nil, nil
	})
	defer closer.Close()
	c, _ := inner.Dial("stall")
	defer c.Close()
	start := time.Now()
	_, err := c.Call("x")
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{ErrTimeout, true},
		{ErrConnBroken, true},
		{fmt.Errorf("%w: srv", ErrNoEndpoint), true},
		{ErrClosed, false},
		{&RemoteError{Msg: "handler said no"}, false},
		{fmt.Errorf("wrap: %w", &RemoteError{Msg: "x"}), false},
		{errors.New("opaque"), false},
	}
	for _, tc := range cases {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("Retryable(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

// TestCloseInterruptsRetryBackoff: shutting the policy layer down must
// wake callers sleeping in a retry backoff instead of letting them
// finish a retry storm against closed resources.
func TestCloseInterruptsRetryBackoff(t *testing.T) {
	tr := WithRetry(NewInProc(), RetryPolicy{
		MaxAttempts: 100, BaseDelay: time.Hour, MaxDelay: time.Hour, Jitter: 0, Seed: 1,
	})
	errCh := make(chan error, 1)
	go func() {
		_, err := tr.Dial("nowhere") // ErrNoEndpoint is retryable -> 1h backoff
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	tr.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("dial still sleeping in backoff after Close")
	}
}

// TestClientCloseInterruptsCallBackoff: closing one retry client must
// wake that client's in-flight call out of its backoff sleep.
func TestClientCloseInterruptsCallBackoff(t *testing.T) {
	inner := NewInProc()
	closer, err := inner.Listen("s", func(req any) (any, error) {
		return nil, fmt.Errorf("%w: induced", ErrTimeout)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	tr := WithRetry(inner, RetryPolicy{
		MaxAttempts: 100, BaseDelay: time.Hour, MaxDelay: time.Hour, Jitter: 0, Seed: 1,
	})
	c, err := tr.Dial("s")
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Call("x")
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	c.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("call still sleeping in backoff after client Close")
	}
}

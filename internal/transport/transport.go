// Package transport carries the staging protocol between application
// clients and staging servers. Two interchangeable implementations are
// provided: an in-process transport (direct dispatch, used by tests,
// benchmarks, and single-binary deployments) and a TCP transport
// (gob-framed, used by cmd/stagingd and cmd/dsctl). DataSpaces uses
// RDMA verbs here; the staging protocol above is transport-agnostic, so
// swapping the wire changes constants, not behaviour.
package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"syscall"
	"time"
)

// Handler serves one request and returns a response. Handlers must be
// safe for concurrent use; the staging server guards its state
// internally.
//
// Byte-slice fields of req are only valid until the handler returns:
// large fast-path payloads are decoded zero-copy out of a frame buffer
// the transport reclaims afterwards. A handler that retains payload
// bytes past its return must copy them (the staging server already
// copies on ingest), or the message's decoder must opt out of aliasing
// with Reader.DisableAlias.
type Handler func(req any) (resp any, err error)

// Client issues requests to one endpoint.
type Client interface {
	// Call sends req and waits for the response.
	Call(req any) (any, error)
	io.Closer
}

// Transport connects named endpoints.
type Transport interface {
	// Listen registers a handler at addr and returns a closer that
	// unregisters/stops it.
	Listen(addr string, h Handler) (io.Closer, error)
	// Dial connects to the endpoint at addr.
	Dial(addr string) (Client, error)
}

// ErrNoEndpoint is returned by Dial when the address is unknown.
var ErrNoEndpoint = errors.New("transport: no such endpoint")

// ErrClosed is returned by operations on a closed client or endpoint.
var ErrClosed = errors.New("transport: closed")

// ErrTimeout is returned when a call exceeds its configured deadline.
var ErrTimeout = errors.New("transport: call timeout")

// ErrConnBroken is returned when a connection died mid-call (reset,
// EOF, desynced stream). The payload state of the call is unknown; the
// client re-dials on the next call.
var ErrConnBroken = errors.New("transport: connection broken")

// ErrFrameCorrupt reports a malformed wire frame or payload: bad magic,
// an undecodable body, or a response that does not parse. At frame
// scope the stream is desynced and the connection is torn down; a
// payload-only failure is answered per call with the frame boundaries
// (and the connection) intact.
var ErrFrameCorrupt = errors.New("transport: corrupt frame")

// ErrFrameTooLarge reports a frame whose declared body exceeds
// MaxFrameBody — treated as corruption, never as an allocation request.
var ErrFrameTooLarge = errors.New("transport: frame too large")

// RemoteError carries an error returned by the remote handler, as
// opposed to a transport fault. Remote errors are terminal: the request
// was delivered and the server answered, so retrying cannot help.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return e.Msg }

// Retryable reports whether err is a transient transport fault worth
// retrying: timeouts, broken/reset connections, and missing endpoints
// (a server mid-restart dials as ErrNoEndpoint). Handler errors
// (RemoteError or any error an in-process handler returns directly) and
// local ErrClosed are terminal.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return false
	}
	if errors.Is(err, ErrClosed) {
		return false
	}
	if errors.Is(err, ErrTimeout) || errors.Is(err, ErrConnBroken) || errors.Is(err, ErrNoEndpoint) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.EPIPE) {
		return true
	}
	return false
}

// ---------------------------------------------------------------------
// In-process transport.

// InProc is a process-local transport: Dial returns a client whose Call
// invokes the handler directly on the caller's goroutine.
type InProc struct {
	// CallTimeout, when positive, bounds each Call: the handler runs on
	// its own goroutine and a call that outlives the timeout returns
	// ErrTimeout (the handler goroutine is left to finish on its own,
	// mirroring a TCP deadline expiring while the server still works).
	CallTimeout time.Duration

	mu        sync.RWMutex
	endpoints map[string]Handler
}

// NewInProc returns an empty in-process transport.
func NewInProc() *InProc {
	return &InProc{endpoints: make(map[string]Handler)}
}

type inprocCloser struct {
	t    *InProc
	addr string
}

func (c *inprocCloser) Close() error {
	c.t.mu.Lock()
	defer c.t.mu.Unlock()
	delete(c.t.endpoints, c.addr)
	return nil
}

// Listen implements Transport.
func (t *InProc) Listen(addr string, h Handler) (io.Closer, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.endpoints[addr]; dup {
		return nil, fmt.Errorf("transport: endpoint %q already registered", addr)
	}
	t.endpoints[addr] = h
	return &inprocCloser{t: t, addr: addr}, nil
}

type inprocClient struct {
	t      *InProc
	addr   string
	mu     sync.Mutex
	closed bool
}

func (c *inprocClient) Call(req any) (any, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.mu.Unlock()
	c.t.mu.RLock()
	h, ok := c.t.endpoints[c.addr]
	c.t.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoEndpoint, c.addr)
	}
	timeout := c.t.CallTimeout
	if timeout <= 0 {
		return h(req)
	}
	type result struct {
		resp any
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := h(req)
		done <- result{resp, err}
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-done:
		return r.resp, r.err
	case <-timer.C:
		return nil, fmt.Errorf("%w: %q after %v", ErrTimeout, c.addr, timeout)
	}
}

func (c *inprocClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

// Dial implements Transport.
func (t *InProc) Dial(addr string) (Client, error) {
	t.mu.RLock()
	_, ok := t.endpoints[addr]
	t.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoEndpoint, addr)
	}
	return &inprocClient{t: t, addr: addr}, nil
}

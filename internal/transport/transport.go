// Package transport carries the staging protocol between application
// clients and staging servers. Two interchangeable implementations are
// provided: an in-process transport (direct dispatch, used by tests,
// benchmarks, and single-binary deployments) and a TCP transport
// (gob-framed, used by cmd/stagingd and cmd/dsctl). DataSpaces uses
// RDMA verbs here; the staging protocol above is transport-agnostic, so
// swapping the wire changes constants, not behaviour.
package transport

import (
	"errors"
	"fmt"
	"io"
	"sync"
)

// Handler serves one request and returns a response. Handlers must be
// safe for concurrent use; the staging server guards its state
// internally.
type Handler func(req any) (resp any, err error)

// Client issues requests to one endpoint.
type Client interface {
	// Call sends req and waits for the response.
	Call(req any) (any, error)
	io.Closer
}

// Transport connects named endpoints.
type Transport interface {
	// Listen registers a handler at addr and returns a closer that
	// unregisters/stops it.
	Listen(addr string, h Handler) (io.Closer, error)
	// Dial connects to the endpoint at addr.
	Dial(addr string) (Client, error)
}

// ErrNoEndpoint is returned by Dial when the address is unknown.
var ErrNoEndpoint = errors.New("transport: no such endpoint")

// ErrClosed is returned by operations on a closed client or endpoint.
var ErrClosed = errors.New("transport: closed")

// ---------------------------------------------------------------------
// In-process transport.

// InProc is a process-local transport: Dial returns a client whose Call
// invokes the handler directly on the caller's goroutine.
type InProc struct {
	mu        sync.RWMutex
	endpoints map[string]Handler
}

// NewInProc returns an empty in-process transport.
func NewInProc() *InProc {
	return &InProc{endpoints: make(map[string]Handler)}
}

type inprocCloser struct {
	t    *InProc
	addr string
}

func (c *inprocCloser) Close() error {
	c.t.mu.Lock()
	defer c.t.mu.Unlock()
	delete(c.t.endpoints, c.addr)
	return nil
}

// Listen implements Transport.
func (t *InProc) Listen(addr string, h Handler) (io.Closer, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.endpoints[addr]; dup {
		return nil, fmt.Errorf("transport: endpoint %q already registered", addr)
	}
	t.endpoints[addr] = h
	return &inprocCloser{t: t, addr: addr}, nil
}

type inprocClient struct {
	t      *InProc
	addr   string
	mu     sync.Mutex
	closed bool
}

func (c *inprocClient) Call(req any) (any, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.mu.Unlock()
	c.t.mu.RLock()
	h, ok := c.t.endpoints[c.addr]
	c.t.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoEndpoint, c.addr)
	}
	return h(req)
}

func (c *inprocClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

// Dial implements Transport.
func (t *InProc) Dial(addr string) (Client, error) {
	t.mu.RLock()
	_, ok := t.endpoints[addr]
	t.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoEndpoint, addr)
	}
	return &inprocClient{t: t, addr: addr}, nil
}

package transport

import (
	"encoding/gob"
	"fmt"
	"sync"
	"testing"
	"time"

	"gospaces/internal/codec"
)

// benchPut mimics a staged put: a small key plus a bulk payload. It has
// both encodings — gob (registered below) for the serialized baseline
// and a fast-path codec for the mux mode — so the benchmark compares
// the whole stack, not just the framing.
type benchPut struct {
	Key  string
	Data []byte
}

type benchAck struct {
	N int
}

const (
	benchPutID uint16 = 0xff00
	benchAckID uint16 = 0xff01
)

func init() {
	gob.Register(benchPut{})
	gob.Register(benchAck{})
	codec.Register(benchPutID, func() codec.Decoder { return &benchPut{} })
	codec.Register(benchAckID, func() codec.Decoder { return &benchAck{} })
}

func (m benchPut) CodecID() uint16 { return benchPutID }
func (m benchPut) AppendTo(buf []byte) ([]byte, error) {
	head, tail, _ := m.AppendHeadTo(buf)
	return append(head, tail...), nil
}
func (m benchPut) AppendHeadTo(buf []byte) (head, tail []byte, err error) {
	buf = codec.AppendString(buf, m.Key)
	buf = codec.AppendUvarint(buf, uint64(len(m.Data)))
	return buf, m.Data, nil
}
func (m *benchPut) DecodeFrom(r *codec.Reader) error {
	m.Key = r.String()
	m.Data = r.Bytes()
	return r.Err()
}
func (m *benchPut) Value() any { return *m }

func (m benchAck) CodecID() uint16 { return benchAckID }
func (m benchAck) AppendTo(buf []byte) ([]byte, error) {
	return codec.AppendVarint(buf, int64(m.N)), nil
}
func (m *benchAck) DecodeFrom(r *codec.Reader) error {
	m.N = int(r.Varint())
	return r.Err()
}
func (m *benchAck) Value() any { return *m }

// serialClient emulates the seed transport's behaviour: one call in
// flight per connection, enforced with a mutex around a shared client.
type serialClient struct {
	mu sync.Mutex
	cl Client
}

func (s *serialClient) Call(req any) (any, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cl.Call(req)
}

func (s *serialClient) Close() error { return s.cl.Close() }

// BenchmarkPutGet measures put round-trips through one shared client
// across payload sizes and caller counts, in two modes:
//
//   - serialized: gob both ways (DisableFastPath) with one call in
//     flight at a time — the seed transport's behaviour.
//   - mux: concurrent in-flight calls on one connection with the
//     binary fast path.
func BenchmarkPutGet(b *testing.B) {
	sizes := []struct {
		name  string
		bytes int
	}{
		{"4KiB", 4 << 10},
		{"256KiB", 256 << 10},
		{"4MiB", 4 << 20},
	}
	callers := []int{1, 8, 64}
	modes := []string{"serialized", "mux"}

	handler := func(req any) (any, error) {
		p := req.(benchPut)
		return benchAck{N: len(p.Data)}, nil
	}

	for _, size := range sizes {
		payload := make([]byte, size.bytes)
		for i := range payload {
			payload[i] = byte(i)
		}
		for _, nc := range callers {
			for _, mode := range modes {
				name := fmt.Sprintf("size=%s/callers=%d/mode=%s", size.name, nc, mode)
				b.Run(name, func(b *testing.B) {
					tr := NewTCPTimeout(30*time.Second, 5*time.Second)
					tr.DisableFastPath = mode == "serialized"
					ep, err := tr.ListenTCP("127.0.0.1:0", handler)
					if err != nil {
						b.Fatal(err)
					}
					defer ep.Close()
					raw, err := tr.Dial(ep.Addr())
					if err != nil {
						b.Fatal(err)
					}
					var cl Client = raw
					if mode == "serialized" {
						cl = &serialClient{cl: raw}
					}
					defer cl.Close()

					b.SetBytes(int64(size.bytes))
					b.ResetTimer()
					var wg sync.WaitGroup
					per := b.N / nc
					extra := b.N % nc
					failed := make(chan error, nc)
					for c := 0; c < nc; c++ {
						n := per
						if c < extra {
							n++
						}
						if n == 0 {
							continue
						}
						wg.Add(1)
						go func(n int) {
							defer wg.Done()
							req := benchPut{Key: "bench/object", Data: payload}
							for i := 0; i < n; i++ {
								resp, err := cl.Call(req)
								if err != nil {
									failed <- err
									return
								}
								if a := resp.(benchAck); a.N != len(payload) {
									failed <- fmt.Errorf("ack %d != %d", a.N, len(payload))
									return
								}
							}
						}(n)
					}
					wg.Wait()
					b.StopTimer()
					select {
					case err := <-failed:
						b.Fatal(err)
					default:
					}
				})
			}
		}
	}
}

package transport

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"gospaces/internal/metrics"
	"gospaces/internal/qos"
)

// RetryPolicy controls the Retrying wrapper: exponential backoff with
// jitter, a per-call attempt cap, and an optional client-wide retry
// budget that bounds total retry work under sustained faults (a storm
// of retries against a dead group must not multiply load forever).
type RetryPolicy struct {
	// MaxAttempts is the per-call attempt cap, including the first try
	// (minimum 1).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further
	// retry doubles it up to MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth.
	MaxDelay time.Duration
	// Jitter is the fraction (0..1) of each delay randomized away, so
	// synchronized ranks don't retry in lockstep.
	Jitter float64
	// Budget, when positive, caps the total retries a Retrying instance
	// may spend across all calls and connections; once spent, calls fail
	// fast on the first error.
	Budget int64
	// Seed makes the jitter sequence deterministic for tests (0 seeds
	// from a fixed default).
	Seed int64
}

// DefaultRetryPolicy matches the staging defaults documented in
// DESIGN.md §6: 4 attempts, 50ms base, 2s cap, 20% jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second, Jitter: 0.2}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay < p.BaseDelay {
		p.MaxDelay = p.BaseDelay
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// Retrying wraps a Transport with the retry policy: Dial and Call
// retry transient faults (see Retryable) with exponential backoff and
// report their work in a metrics registry. Terminal errors — handler
// errors, ErrClosed — pass through on the first attempt.
type Retrying struct {
	inner Transport
	pol   RetryPolicy
	reg   *metrics.Registry

	// done is closed by Close: callers sleeping in a retry backoff wake
	// immediately and fail with ErrClosed instead of continuing to retry
	// against shut-down resources.
	done      chan struct{}
	closeOnce sync.Once

	mu     sync.Mutex
	rng    *rand.Rand
	budget int64 // remaining retries when pol.Budget > 0
}

// WithRetry wraps inner in the retry policy layer.
func WithRetry(inner Transport, pol RetryPolicy) *Retrying {
	pol = pol.withDefaults()
	seed := pol.Seed
	if seed == 0 {
		seed = 1
	}
	return &Retrying{
		inner:  inner,
		pol:    pol,
		reg:    metrics.NewRegistry(),
		done:   make(chan struct{}),
		rng:    rand.New(rand.NewSource(seed)),
		budget: pol.Budget,
	}
}

// Close shuts the policy layer down: any caller sleeping in a retry
// backoff is woken and fails with ErrClosed. The inner transport is not
// closed (it may be shared); Close is idempotent.
func (r *Retrying) Close() error {
	r.closeOnce.Do(func() { close(r.done) })
	return nil
}

// Metrics returns the registry recording rpc.calls, rpc.retries,
// rpc.timeouts, rpc.exhausted, rpc.budget_denied, and rpc.overloaded
// counters.
func (r *Retrying) Metrics() *metrics.Registry { return r.reg }

// Policy returns the effective (defaulted) policy.
func (r *Retrying) Policy() RetryPolicy { return r.pol }

// Listen implements Transport, passing straight through: the policy
// layer shapes the client side only.
func (r *Retrying) Listen(addr string, h Handler) (io.Closer, error) {
	return r.inner.Listen(addr, h)
}

// delay computes the jittered backoff before retry number n (0-based).
func (r *Retrying) delay(n int) time.Duration {
	d := r.pol.BaseDelay << uint(n)
	if d > r.pol.MaxDelay || d <= 0 { // <=0 guards shift overflow
		d = r.pol.MaxDelay
	}
	if r.pol.Jitter > 0 {
		r.mu.Lock()
		f := 1 - r.pol.Jitter*r.rng.Float64()
		r.mu.Unlock()
		d = time.Duration(float64(d) * f)
	}
	return d
}

// spendRetry consumes one unit of the retry budget; false means the
// budget is exhausted and the caller must fail fast.
func (r *Retrying) spendRetry() bool { return r.spendRetryN(1) }

// spendRetryN consumes n units of the retry budget. A plain backoff
// retry costs one unit; a server-directed retry-after wait costs
// ceil(wait/MaxDelay) units (minimum one), so honoring overload hints
// draws down the same budget as backoff sleeps and total stall time
// stays bounded by Budget×MaxDelay — a server advertising long
// retry-after under sustained overload cannot stall clients forever.
func (r *Retrying) spendRetryN(n int64) bool {
	if r.pol.Budget <= 0 {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.budget < n {
		return false
	}
	r.budget -= n
	return true
}

// retryAfterUnits converts a server-directed wait into retry-budget
// units: ceil(wait/MaxDelay), minimum one.
func (r *Retrying) retryAfterUnits(wait time.Duration) int64 {
	if r.pol.MaxDelay <= 0 {
		return 1
	}
	u := int64((wait + r.pol.MaxDelay - 1) / r.pol.MaxDelay)
	if u < 1 {
		u = 1
	}
	return u
}

// retryAfterDelay jitters a server-directed wait upward by up to the
// policy's jitter fraction, so a cohort of shed clients does not
// return in lockstep exactly when the server said.
func (r *Retrying) retryAfterDelay(hint time.Duration) time.Duration {
	if r.pol.Jitter <= 0 {
		return hint
	}
	r.mu.Lock()
	f := 1 + r.pol.Jitter*r.rng.Float64()
	r.mu.Unlock()
	return time.Duration(float64(hint) * f)
}

// retry runs op up to MaxAttempts times, backing off between attempts.
// The backoff is interruptible: closing the Retrying layer or the stop
// channel (a per-client close; nil is allowed) wakes the sleeper and
// fails the call with ErrClosed.
func (r *Retrying) retry(what string, stop <-chan struct{}, op func() error) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = op()
		if err == nil {
			return nil
		}
		// Typed backpressure: an overloaded server directs when to come
		// back. The hint is honored (jittered upward) instead of blind
		// exponential backoff, and the wait is charged against the retry
		// budget in MaxDelay-sized units so long hints draw it down
		// proportionally. Over TCP the rejection arrives as a RemoteError
		// message; FromError re-types it.
		wait := r.delay(attempt)
		units := int64(1)
		if ov, ok := qos.FromError(err); ok {
			if hint := ov.RetryAfter; hint > 0 {
				wait = r.retryAfterDelay(hint)
				units = r.retryAfterUnits(wait)
			}
			r.reg.Counter("rpc.overloaded").Inc()
		} else if !Retryable(err) {
			return err
		}
		if isTimeout(err) {
			r.reg.Counter("rpc.timeouts").Inc()
		}
		if attempt+1 >= r.pol.MaxAttempts {
			r.reg.Counter("rpc.exhausted").Inc()
			return fmt.Errorf("transport: %s failed after %d attempts: %w", what, attempt+1, err)
		}
		if !r.spendRetryN(units) {
			r.reg.Counter("rpc.budget_denied").Inc()
			return fmt.Errorf("transport: %s: retry budget exhausted: %w", what, err)
		}
		r.reg.Counter("rpc.retries").Inc()
		timer := time.NewTimer(wait)
		select {
		case <-timer.C:
		case <-r.done:
			timer.Stop()
			return fmt.Errorf("transport: %s: %w during retry backoff (last error: %v)", what, ErrClosed, err)
		case <-stop:
			timer.Stop()
			return fmt.Errorf("transport: %s: %w during retry backoff (last error: %v)", what, ErrClosed, err)
		}
	}
}

func isTimeout(err error) bool { return errors.Is(err, ErrTimeout) }

// Dial implements Transport: connection establishment retries transient
// dial failures (a server mid-restart refuses connections briefly).
func (r *Retrying) Dial(addr string) (Client, error) {
	var c Client
	err := r.retry("dial "+addr, nil, func() error {
		var e error
		c, e = r.inner.Dial(addr)
		return e
	})
	if err != nil {
		return nil, err
	}
	return &retryClient{r: r, addr: addr, inner: c, done: make(chan struct{})}, nil
}

type retryClient struct {
	r         *Retrying
	addr      string
	inner     Client
	done      chan struct{}
	closeOnce sync.Once
}

func (c *retryClient) Call(req any) (any, error) {
	c.r.reg.Counter("rpc.calls").Inc()
	var resp any
	err := c.r.retry("call "+c.addr, c.done, func() error {
		var e error
		resp, e = c.inner.Call(req)
		return e
	})
	return resp, err
}

func (c *retryClient) Close() error {
	c.closeOnce.Do(func() { close(c.done) })
	return c.inner.Close()
}

// Unwrap exposes the wrapped client (the chaos transport and tests peek
// through the policy layer).
func (c *retryClient) Unwrap() Client { return c.inner }

package transport

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"
	"time"

	"gospaces/internal/failure"
)

// Chaos is a fault-injecting middleware Transport: it wraps any inner
// Transport and perturbs the client side with call latency, dropped
// responses, connection kills, and per-server blackouts. Faults come
// from two sources: a deterministic seeded schedule (Apply, fed by
// failure.Chaos) and optional per-call probabilistic faults
// (SetCallFaults). The server side can inject handler latency and
// hangs (SetServeFaults), which stagingd exposes as flags so clients
// can be tested against a live faulty daemon.
//
// Dropped responses are modelled after the receive: the inner call
// completes (the server did the work) and Chaos discards the result,
// returning ErrTimeout — exactly what a client sees when the response
// frame is lost. Blackouts fail calls and dials with ErrNoEndpoint, the
// same class a crashed-and-restarting server produces.
//
// With the multiplexed TCP transport each Call maps to exactly one
// request frame and one response frame, so these call-scoped faults are
// frame-scoped: concurrent calls sharing a connection are delayed and
// dropped independently, while KillConns/FailStop break the shared
// stream and hit every in-flight frame at once — the two fault
// granularities the mux design distinguishes.
type Chaos struct {
	inner Transport

	mu      sync.Mutex
	rng     *rand.Rand
	start   time.Time
	windows map[int][]chaosWindow // keyed by server id
	addrs   map[string]int        // addr -> server id for Apply schedules
	clients map[string][]*chaosClient

	// per-call probabilistic faults (client side)
	delayProb float64
	delay     time.Duration
	dropProb  float64

	// server-side handler faults
	serveDelayProb float64
	serveDelay     time.Duration
	serveHangProb  float64
	serveHang      time.Duration
}

type chaosWindow struct {
	from, until time.Duration // relative to start
	kind        failure.Kind
	delay       time.Duration
}

// NewChaos wraps inner with a fault injector seeded for deterministic
// probabilistic faults. With no faults armed it is a transparent proxy.
func NewChaos(inner Transport, seed int64) *Chaos {
	return &Chaos{
		inner:   inner,
		rng:     rand.New(rand.NewSource(seed)),
		start:   time.Now(),
		windows: make(map[int][]chaosWindow),
		addrs:   make(map[string]int),
		clients: make(map[string][]*chaosClient),
	}
}

// SetCallFaults arms client-side probabilistic faults: each call is
// delayed by delay with probability delayProb and its response dropped
// (ErrTimeout after the server processed it) with probability dropProb.
func (c *Chaos) SetCallFaults(delayProb float64, delay time.Duration, dropProb float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.delayProb, c.delay, c.dropProb = delayProb, delay, dropProb
}

// SetServeFaults arms server-side handler faults: each handled request
// is delayed by delay with probability delayProb, and hangs for hang
// with probability hangProb (long enough hangs turn into client
// timeouts, i.e. dropped responses as seen from the wire).
func (c *Chaos) SetServeFaults(delayProb float64, delay time.Duration, hangProb float64, hang time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.serveDelayProb, c.serveDelay = delayProb, delay
	c.serveHangProb, c.serveHang = hangProb, hang
}

// Apply arms a failure schedule: injections with network/server kinds
// become fault windows anchored at time.Now(). addrs maps staging
// server ids (Injection.Server) to transport addresses, in id order;
// RankFailStop entries are ignored (the workflow layer owns those).
func (c *Chaos) Apply(sched failure.Schedule, addrs []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.start = time.Now()
	c.windows = make(map[int][]chaosWindow)
	// Rebuild the mapping from scratch: stale addr→id entries from a
	// previous Apply (or ids synthesized by Blackout) must not route the
	// new windows to the wrong address.
	c.addrs = make(map[string]int)
	for id, a := range addrs {
		c.addrs[a] = id
	}
	for _, inj := range sched {
		if inj.Kind == failure.RankFailStop {
			continue
		}
		if inj.Server < 0 || inj.Server >= len(addrs) {
			continue
		}
		w := chaosWindow{from: inj.At, until: inj.At + inj.Duration, kind: inj.Kind}
		if inj.Kind == failure.NetDelay {
			w.delay = inj.Duration / 4 // injected latency per call
		}
		if inj.Kind == failure.ServerFailStop {
			// Permanent fail-stop: the window never closes.
			w.until = permanent
		}
		c.windows[inj.Server] = append(c.windows[inj.Server], w)
	}
}

// permanent is the window end of a fail-stop: far enough in the future
// that it never expires within a run.
const permanent = time.Duration(math.MaxInt64)

// FailStop permanently blacks out addr, as a ServerFailStop would: every
// dial and call fails with ErrNoEndpoint and the address never recovers.
// Live connections are killed so in-flight calls fail promptly.
func (c *Chaos) FailStop(addr string) {
	c.mu.Lock()
	id, ok := c.addrs[addr]
	if !ok {
		id = len(c.addrs) + 1000 // synthesize an id for manual targets
		c.addrs[addr] = id
	}
	now := time.Since(c.start)
	c.windows[id] = append(c.windows[id], chaosWindow{from: now, until: permanent, kind: failure.ServerFailStop})
	c.mu.Unlock()
	c.KillConns(addr)
}

// Blackout manually blacks out addr for d, as a ServerCrash would.
func (c *Chaos) Blackout(addr string, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id, ok := c.addrs[addr]
	if !ok {
		id = len(c.addrs) + 1000 // synthesize an id for manual targets
		c.addrs[addr] = id
	}
	now := time.Since(c.start)
	c.windows[id] = append(c.windows[id], chaosWindow{from: now, until: now + d, kind: failure.ServerCrash})
}

// KillConns aborts every live connection to addr: in-flight calls fail
// with ErrConnBroken and the clients re-dial on their next call.
func (c *Chaos) KillConns(addr string) {
	c.mu.Lock()
	conns := append([]*chaosClient(nil), c.clients[addr]...)
	c.mu.Unlock()
	for _, cc := range conns {
		cc.abort()
	}
}

// faults evaluates the active fault state for one call to addr.
func (c *Chaos) faults(addr string) (black bool, delay time.Duration, drop bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Since(c.start)
	if id, ok := c.addrs[addr]; ok {
		for _, w := range c.windows[id] {
			if now < w.from || now >= w.until {
				continue
			}
			switch w.kind {
			case failure.ServerCrash, failure.ServerFailStop:
				black = true
			case failure.NetDelay:
				delay += w.delay
			case failure.NetDrop:
				drop = true
			}
		}
	}
	if c.delayProb > 0 && c.rng.Float64() < c.delayProb {
		delay += c.delay
	}
	if c.dropProb > 0 && c.rng.Float64() < c.dropProb {
		drop = true
	}
	return black, delay, drop
}

// Listen implements Transport; the handler is wrapped with the armed
// server-side faults.
func (c *Chaos) Listen(addr string, h Handler) (io.Closer, error) {
	wrapped := func(req any) (any, error) {
		c.mu.Lock()
		var sleep time.Duration
		if c.serveDelayProb > 0 && c.rng.Float64() < c.serveDelayProb {
			sleep += c.serveDelay
		}
		if c.serveHangProb > 0 && c.rng.Float64() < c.serveHangProb {
			sleep += c.serveHang
		}
		c.mu.Unlock()
		if sleep > 0 {
			time.Sleep(sleep)
		}
		return h(req)
	}
	return c.inner.Listen(addr, wrapped)
}

// Dial implements Transport. Dialing a blacked-out address fails with
// ErrNoEndpoint, like a crashed server.
func (c *Chaos) Dial(addr string) (Client, error) {
	if black, _, _ := c.faults(addr); black {
		return nil, fmt.Errorf("%w: %q: chaos blackout", ErrNoEndpoint, addr)
	}
	inner, err := c.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	cc := &chaosClient{c: c, addr: addr, inner: inner}
	c.mu.Lock()
	c.clients[addr] = append(c.clients[addr], cc)
	c.mu.Unlock()
	return cc, nil
}

type chaosClient struct {
	c     *Chaos
	addr  string
	inner Client
}

func (cc *chaosClient) Call(req any) (any, error) {
	black, delay, drop := cc.c.faults(cc.addr)
	if black {
		return nil, fmt.Errorf("%w: %q: chaos blackout", ErrNoEndpoint, cc.addr)
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	resp, err := cc.inner.Call(req)
	if err != nil {
		return resp, err
	}
	if drop {
		return nil, fmt.Errorf("%w: %q: chaos dropped response", ErrTimeout, cc.addr)
	}
	return resp, nil
}

// abort kills the underlying connection if the inner client supports it
// (the TCP client does); in-proc clients have no connection to kill.
func (cc *chaosClient) abort() {
	if a, ok := cc.inner.(interface{ Abort() }); ok {
		a.Abort()
	}
}

func (cc *chaosClient) Close() error {
	cc.c.mu.Lock()
	live := cc.c.clients[cc.addr]
	for i, other := range live {
		if other == cc {
			cc.c.clients[cc.addr] = append(live[:i], live[i+1:]...)
			break
		}
	}
	cc.c.mu.Unlock()
	return cc.inner.Close()
}

package transport

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// wire envelopes. Payloads are gob-encoded; concrete request/response
// types must be registered with gob.Register by the protocol package.
type wireReq struct {
	Payload any
}

type wireResp struct {
	Payload any
	Err     string
}

// TCP is a Transport over TCP sockets with gob framing. Addresses are
// host:port strings; Listen with a ":0" port allocates an ephemeral
// port, and the closer's Addr method reports the bound address.
type TCP struct {
	// CallTimeout, when positive, sets a read/write deadline covering
	// each Call; an expired deadline returns ErrTimeout and marks the
	// connection broken (the stream may be desynced).
	CallTimeout time.Duration
	// DialTimeout, when positive, bounds connection establishment,
	// including the transparent re-dial after a broken connection.
	DialTimeout time.Duration
}

// NewTCP returns a TCP transport with no deadlines (calls may block
// indefinitely); set CallTimeout/DialTimeout for bounded calls.
func NewTCP() *TCP { return &TCP{} }

// NewTCPTimeout returns a TCP transport with per-call and dial
// deadlines.
func NewTCPTimeout(call, dial time.Duration) *TCP {
	return &TCP{CallTimeout: call, DialTimeout: dial}
}

// TCPEndpoint is the closer returned by TCP.Listen; it also reports the
// bound address.
type TCPEndpoint struct {
	ln     net.Listener
	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

// Addr returns the bound listen address (useful with ":0").
func (e *TCPEndpoint) Addr() string { return e.ln.Addr().String() }

// Close stops accepting, closes live connections, and waits for
// handlers to drain.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	e.closed = true
	err := e.ln.Close()
	for c := range e.conns {
		c.Close()
	}
	e.mu.Unlock()
	e.wg.Wait()
	return err
}

// Listen implements Transport.
func (t *TCP) Listen(addr string, h Handler) (io.Closer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ep := &TCPEndpoint{ln: ln, conns: make(map[net.Conn]struct{})}
	ep.wg.Add(1)
	go func() {
		defer ep.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			ep.mu.Lock()
			if ep.closed {
				ep.mu.Unlock()
				conn.Close()
				return
			}
			ep.conns[conn] = struct{}{}
			ep.mu.Unlock()
			ep.wg.Add(1)
			go func() {
				defer ep.wg.Done()
				defer func() {
					ep.mu.Lock()
					delete(ep.conns, conn)
					ep.mu.Unlock()
					conn.Close()
				}()
				serveConn(conn, h)
			}()
		}
	}()
	return ep, nil
}

func serveConn(conn net.Conn, h Handler) {
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req wireReq
		if err := dec.Decode(&req); err != nil {
			return // EOF or broken peer
		}
		resp, err := h(req.Payload)
		out := wireResp{Payload: resp}
		if err != nil {
			out.Err = err.Error()
		}
		if err := enc.Encode(&out); err != nil {
			return
		}
	}
}

// ListenTCP is Listen with a concrete return type so callers can learn
// the bound address.
func (t *TCP) ListenTCP(addr string, h Handler) (*TCPEndpoint, error) {
	c, err := t.Listen(addr, h)
	if err != nil {
		return nil, err
	}
	return c.(*TCPEndpoint), nil
}

// tcpClient is one client connection. callMu serializes calls (the gob
// stream carries one request/response pair at a time); connMu guards
// the connection state so Close and Abort can interrupt an in-flight
// call instead of waiting behind it.
type tcpClient struct {
	addr        string
	callTimeout time.Duration
	dialTimeout time.Duration

	callMu sync.Mutex

	connMu sync.Mutex
	closed bool
	conn   net.Conn // nil when broken; re-dialled on the next Call
	enc    *gob.Encoder
	dec    *gob.Decoder
}

// Dial implements Transport.
func (t *TCP) Dial(addr string) (Client, error) {
	c := &tcpClient{addr: addr, callTimeout: t.CallTimeout, dialTimeout: t.DialTimeout}
	c.connMu.Lock()
	defer c.connMu.Unlock()
	if err := c.redialLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// redialLocked (re)establishes the connection. Callers hold c.connMu.
func (c *tcpClient) redialLocked() error {
	var conn net.Conn
	var err error
	if c.dialTimeout > 0 {
		conn, err = net.DialTimeout("tcp", c.addr, c.dialTimeout)
	} else {
		conn, err = net.Dial("tcp", c.addr)
	}
	if err != nil {
		return fmt.Errorf("%w: %q: %v", ErrNoEndpoint, c.addr, err)
	}
	c.conn = conn
	c.enc = gob.NewEncoder(conn)
	c.dec = gob.NewDecoder(conn)
	return nil
}

// breakConn tears down a connection that failed mid-call: the gob
// stream may be desynced, so the next Call must re-dial rather than
// decode garbage from it.
func (c *tcpClient) breakConn(conn net.Conn, err error) error {
	c.connMu.Lock()
	closed := c.closed
	if c.conn == conn {
		conn.Close()
		c.conn = nil
		c.enc = nil
		c.dec = nil
	}
	c.connMu.Unlock()
	if closed {
		return fmt.Errorf("%w: %q: %v", ErrClosed, c.addr, err)
	}
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		return fmt.Errorf("%w: %q: %v", ErrTimeout, c.addr, err)
	}
	return fmt.Errorf("%w: %q: %v", ErrConnBroken, c.addr, err)
}

func (c *tcpClient) Call(req any) (any, error) {
	c.callMu.Lock()
	defer c.callMu.Unlock()
	c.connMu.Lock()
	if c.closed {
		c.connMu.Unlock()
		return nil, ErrClosed
	}
	if c.conn == nil {
		if err := c.redialLocked(); err != nil {
			c.connMu.Unlock()
			return nil, err
		}
	}
	conn, enc, dec := c.conn, c.enc, c.dec
	c.connMu.Unlock()

	if c.callTimeout > 0 {
		conn.SetDeadline(time.Now().Add(c.callTimeout))
	}
	if err := enc.Encode(&wireReq{Payload: req}); err != nil {
		return nil, c.breakConn(conn, err)
	}
	var resp wireResp
	if err := dec.Decode(&resp); err != nil {
		return nil, c.breakConn(conn, err)
	}
	if c.callTimeout > 0 {
		conn.SetDeadline(time.Time{})
	}
	if resp.Err != "" {
		return resp.Payload, &RemoteError{Msg: resp.Err}
	}
	return resp.Payload, nil
}

// Abort kills the live connection without closing the client, marking
// it broken so the next Call re-dials. In-flight calls fail with
// ErrConnBroken. The chaos transport uses it to model connection
// resets.
func (c *tcpClient) Abort() {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.enc = nil
		c.dec = nil
	}
}

func (c *tcpClient) Close() error {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

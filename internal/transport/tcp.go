package transport

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gospaces/internal/codec"
	"gospaces/internal/metrics"
)

// TCP is a Transport over TCP sockets with multiplexed length-prefixed
// framing (see frame.go): one connection carries many concurrent
// in-flight calls, each identified by a request id, with a demux
// goroutine routing responses back to their callers. Addresses are
// host:port strings; Listen with a ":0" port allocates an ephemeral
// port, and the closer's Addr method reports the bound address.
type TCP struct {
	// CallTimeout, when positive, bounds each Call individually: an
	// expired call returns ErrTimeout and its late response (if any) is
	// discarded, while the connection and its other in-flight calls
	// carry on — frame boundaries stay intact, so a slow call no longer
	// poisons the stream. Only a failed or half-written frame (write
	// error/deadline) marks the connection broken.
	CallTimeout time.Duration
	// DialTimeout, when positive, bounds connection establishment,
	// including the transparent re-dial after a broken connection.
	DialTimeout time.Duration
	// DisableFastPath forces every payload through gob inside its frame
	// (the benchmark baseline). The server mirrors the request's
	// encoding, so disabling it client-side disables it end to end.
	DisableFastPath bool

	regMu sync.Mutex
	reg   atomic.Pointer[tcpMetrics]
}

// tcpMetrics caches the hot-path metric handles so per-frame accounting
// is a few atomic adds, not registry map lookups under a mutex.
type tcpMetrics struct {
	reg      *metrics.Registry
	inflight *metrics.Gauge
	bytesIn  *metrics.Counter
	bytesOut *metrics.Counter
	fastpath *metrics.Counter
	gobPath  *metrics.Counter
}

// NewTCP returns a TCP transport with no deadlines (calls may block
// indefinitely); set CallTimeout/DialTimeout for bounded calls.
func NewTCP() *TCP { return &TCP{} }

// NewTCPTimeout returns a TCP transport with per-call and dial
// deadlines.
func NewTCPTimeout(call, dial time.Duration) *TCP {
	return &TCP{CallTimeout: call, DialTimeout: dial}
}

// Metrics returns the transport's registry: transport.inflight (gauge),
// transport.bytes_out/bytes_in (counters, frame bytes incl. headers),
// codec.fastpath_hits / codec.gob_payloads (encode-side counters).
func (t *TCP) Metrics() *metrics.Registry { return t.m().reg }

// m returns the cached metric handles, building them once.
func (t *TCP) m() *tcpMetrics {
	if m := t.reg.Load(); m != nil {
		return m
	}
	t.regMu.Lock()
	defer t.regMu.Unlock()
	if m := t.reg.Load(); m != nil {
		return m
	}
	reg := metrics.NewRegistry()
	m := &tcpMetrics{
		reg:      reg,
		inflight: reg.Gauge("transport.inflight"),
		bytesIn:  reg.Counter("transport.bytes_in"),
		bytesOut: reg.Counter("transport.bytes_out"),
		fastpath: reg.Counter("codec.fastpath_hits"),
		gobPath:  reg.Counter("codec.gob_payloads"),
	}
	t.reg.Store(m)
	return m
}

// countPayload records which encode path a payload took.
func (t *TCP) countPayload(flags byte) {
	if flags&flagFastPath != 0 {
		t.m().fastpath.Inc()
	} else {
		t.m().gobPath.Inc()
	}
}

// TCPEndpoint is the closer returned by TCP.Listen; it also reports the
// bound address.
type TCPEndpoint struct {
	ln     net.Listener
	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

// Addr returns the bound listen address (useful with ":0").
func (e *TCPEndpoint) Addr() string { return e.ln.Addr().String() }

// Close stops accepting, closes live connections, and waits for
// handlers to drain.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	e.closed = true
	err := e.ln.Close()
	for c := range e.conns {
		c.Close()
	}
	e.mu.Unlock()
	e.wg.Wait()
	return err
}

// Listen implements Transport.
func (t *TCP) Listen(addr string, h Handler) (io.Closer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ep := &TCPEndpoint{ln: ln, conns: make(map[net.Conn]struct{})}
	ep.wg.Add(1)
	go func() {
		defer ep.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			ep.mu.Lock()
			if ep.closed {
				ep.mu.Unlock()
				conn.Close()
				return
			}
			ep.conns[conn] = struct{}{}
			ep.mu.Unlock()
			ep.wg.Add(1)
			go func() {
				defer ep.wg.Done()
				defer func() {
					ep.mu.Lock()
					delete(ep.conns, conn)
					ep.mu.Unlock()
					conn.Close()
				}()
				t.serveConn(conn, h)
			}()
		}
	}()
	return ep, nil
}

// maxConnInflight bounds the handler goroutines one server connection
// may have in flight; past it the reader loop applies backpressure by
// not reading further frames.
const maxConnInflight = 256

// readBufSize sizes the per-connection read buffer on both ends.
const readBufSize = 64 << 10

// serveConn demultiplexes one client connection: each request frame is
// handled on its own goroutine, so a slow handler delays only its own
// caller; responses are written whole under a per-connection write lock.
func (t *TCP) serveConn(conn net.Conn, h Handler) {
	var wmu sync.Mutex
	var handlers sync.WaitGroup
	defer handlers.Wait()
	sem := make(chan struct{}, maxConnInflight)
	// Buffering the read side halves the syscall count per frame (header
	// and body arrive in one read) and drains bursts of small frames in a
	// single syscall; bufio reads bodies larger than its buffer directly
	// into the frame buffer, so bulk payloads are not double-copied.
	br := bufio.NewReaderSize(conn, readBufSize)
	for {
		flags, id, body, err := readFrame(br)
		if err != nil {
			return // EOF, peer gone, or desynced stream
		}
		t.m().bytesIn.Add(int64(frameHdrLen + len(body)))
		if flags&flagResponse != 0 {
			codec.PutBuf(body)
			return // protocol violation; drop the connection
		}
		req, aliased, derr := decodePayload(flags, body)
		if !aliased {
			codec.PutBuf(body)
		}
		if derr != nil {
			// The frame parsed (boundaries are intact) but its payload
			// did not: answer the one call with a typed error and keep
			// serving the connection.
			t.writeResponse(conn, &wmu, id, nil, derr, false)
			continue
		}
		fastOK := flags&flagFastPath != 0 && !t.DisableFastPath
		sem <- struct{}{}
		handlers.Add(1)
		go func(id uint64, req any, fastOK bool, body []byte, aliased bool) {
			defer handlers.Done()
			defer func() { <-sem }()
			resp, herr := h(req)
			t.writeResponse(conn, &wmu, id, resp, herr, fastOK)
			if aliased {
				// An alias-decoded request points into its frame body; per
				// the Handler contract the payload is dead once the handler
				// has returned (and any echoing response has been written),
				// so the buffer goes back in circulation. This is what lets
				// steady-state bulk ingest run without per-request
				// allocations.
				codec.PutBuf(body)
			}
		}(id, req, fastOK, body, aliased)
	}
}

// writeResponse encodes and writes one response frame. A write failure
// kills the connection: the reader loop and the client both find out
// through their own I/O errors.
func (t *TCP) writeResponse(conn net.Conn, wmu *sync.Mutex, id uint64, resp any, herr error, fastOK bool) {
	buf := beginFrame(codec.GetBuf())
	defer func() { codec.PutBuf(buf) }()
	flags := byte(flagResponse)
	if herr != nil {
		flags |= flagError
		buf = codec.AppendString(buf, herr.Error())
	}
	var tail []byte
	if resp != nil {
		var pf byte
		var err error
		buf, tail, pf, err = appendPayloadVec(buf, resp, fastOK)
		if err != nil {
			// Unencodable response: report it as a remote error instead.
			buf = beginFrame(buf[:0])
			flags = flagResponse | flagError
			tail = nil
			buf = codec.AppendString(buf, err.Error())
		} else {
			flags |= pf
			t.countPayload(pf)
		}
	}
	buf, err := finishFrameTail(buf, flags, id, len(tail))
	if err != nil {
		conn.Close()
		return
	}
	wmu.Lock()
	if t.CallTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(t.CallTimeout))
	}
	werr := writeFrame(conn, buf, tail)
	wmu.Unlock()
	if werr != nil {
		conn.Close()
		return
	}
	t.m().bytesOut.Add(int64(len(buf) + len(tail)))
}

// writeFrame writes one frame, as a single write or — when a vectored
// encode produced a separate bulk tail — as two iovecs via writev, so
// large payloads reach the socket without ever being copied into the
// frame buffer.
func writeFrame(conn net.Conn, buf, tail []byte) error {
	if len(tail) == 0 {
		_, err := conn.Write(buf)
		return err
	}
	bufs := net.Buffers{buf, tail}
	_, err := bufs.WriteTo(conn)
	return err
}

// ListenTCP is Listen with a concrete return type so callers can learn
// the bound address.
func (t *TCP) ListenTCP(addr string, h Handler) (*TCPEndpoint, error) {
	c, err := t.Listen(addr, h)
	if err != nil {
		return nil, err
	}
	return c.(*TCPEndpoint), nil
}

// callResult is one demultiplexed response.
type callResult struct {
	resp any
	err  error
}

// muxConn is one live multiplexed connection: a writer lock for whole
// frames, a pending table routing responses to callers, and a demux
// goroutine that owns the read side. It dies as a unit: any read/write
// fault fails every pending call and the owning client re-dials on the
// next Call.
type muxConn struct {
	c    *tcpClient
	conn net.Conn
	br   *bufio.Reader // demux-owned buffered read side
	wmu  sync.Mutex

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan callResult
	dead    bool
	deadErr error
}

// tcpClient is one client connection slot: it holds at most one live
// muxConn and transparently re-dials after a broken one.
type tcpClient struct {
	t    *TCP
	addr string

	mu     sync.Mutex
	closed bool
	cur    *muxConn // nil when broken; re-dialled on the next Call
}

// Dial implements Transport.
func (t *TCP) Dial(addr string) (Client, error) {
	c := &tcpClient{t: t, addr: addr}
	if _, err := c.live(); err != nil {
		return nil, err
	}
	return c, nil
}

// live returns the current muxConn, dialling a fresh one if needed.
func (c *tcpClient) live() (*muxConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if c.cur != nil {
		return c.cur, nil
	}
	var conn net.Conn
	var err error
	if c.t.DialTimeout > 0 {
		conn, err = net.DialTimeout("tcp", c.addr, c.t.DialTimeout)
	} else {
		conn, err = net.Dial("tcp", c.addr)
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %q: %v", ErrNoEndpoint, c.addr, err)
	}
	mc := &muxConn{
		c:       c,
		conn:    conn,
		br:      bufio.NewReaderSize(conn, readBufSize),
		pending: make(map[uint64]chan callResult),
	}
	c.cur = mc
	go mc.demux()
	return mc, nil
}

// register allocates a request id and its response channel.
func (mc *muxConn) register() (uint64, chan callResult, error) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if mc.dead {
		return 0, nil, mc.deadErr
	}
	mc.nextID++
	id := mc.nextID
	ch := make(chan callResult, 1) // demux never blocks on delivery
	mc.pending[id] = ch
	mc.c.t.m().inflight.Add(1)
	return id, ch, nil
}

// unregister abandons a pending call (timeout); a late response finds
// no entry and is discarded by the demux loop.
func (mc *muxConn) unregister(id uint64) {
	mc.mu.Lock()
	if _, ok := mc.pending[id]; ok {
		delete(mc.pending, id)
		mc.c.t.m().inflight.Add(-1)
	}
	mc.mu.Unlock()
}

// fail tears the connection down once: every pending call gets err, the
// owning client drops its reference (so the next Call re-dials), and
// the socket closes (waking the demux goroutine if it is still alive).
func (mc *muxConn) fail(err error) {
	mc.mu.Lock()
	if mc.dead {
		mc.mu.Unlock()
		return
	}
	mc.dead = true
	mc.deadErr = err
	pending := mc.pending
	mc.pending = nil
	mc.mu.Unlock()

	mc.c.mu.Lock()
	if mc.c.cur == mc {
		mc.c.cur = nil
	}
	mc.c.mu.Unlock()

	mc.conn.Close()
	if n := len(pending); n > 0 {
		mc.c.t.m().inflight.Add(int64(-n))
	}
	for _, ch := range pending {
		ch <- callResult{err: err}
	}
}

// classify types a connection-level fault for callers.
func (mc *muxConn) classify(err error) error {
	mc.c.mu.Lock()
	closed := mc.c.closed
	mc.c.mu.Unlock()
	if closed {
		return fmt.Errorf("%w: %q: %v", ErrClosed, mc.c.addr, err)
	}
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		return fmt.Errorf("%w: %q: %v", ErrTimeout, mc.c.addr, err)
	}
	return fmt.Errorf("%w: %q: %v", ErrConnBroken, mc.c.addr, err)
}

// demux owns the read side: it routes response frames to pending calls
// by id until the stream breaks, then fails everything left.
func (mc *muxConn) demux() {
	for {
		flags, id, body, err := readFrame(mc.br)
		if err != nil {
			mc.fail(mc.classify(err))
			return
		}
		mc.c.t.m().bytesIn.Add(int64(frameHdrLen + len(body)))
		if flags&flagResponse == 0 {
			codec.PutBuf(body)
			mc.fail(mc.classify(fmt.Errorf("request frame on client stream: %w", ErrFrameCorrupt)))
			return
		}
		resp, aliased, rerr := decodeResponse(flags, body)
		if !aliased {
			codec.PutBuf(body) // an aliased response owns its frame body
		}
		mc.mu.Lock()
		ch := mc.pending[id]
		if ch != nil {
			delete(mc.pending, id)
			mc.c.t.m().inflight.Add(-1)
		}
		mc.mu.Unlock()
		if ch == nil {
			continue // late response to a timed-out call
		}
		ch <- callResult{resp: resp, err: rerr}
	}
}

func (c *tcpClient) Call(req any) (any, error) {
	mc, err := c.live()
	if err != nil {
		return nil, err
	}
	id, ch, err := mc.register()
	if err != nil {
		return nil, err
	}

	buf := beginFrame(codec.GetBuf())
	var pf byte
	var tail []byte
	buf, tail, pf, err = appendPayloadVec(buf, req, !c.t.DisableFastPath)
	if err == nil {
		buf, err = finishFrameTail(buf, pf, id, len(tail))
	}
	if err != nil {
		codec.PutBuf(buf)
		mc.unregister(id)
		return nil, err
	}
	c.t.countPayload(pf)

	mc.wmu.Lock()
	if c.t.CallTimeout > 0 {
		mc.conn.SetWriteDeadline(time.Now().Add(c.t.CallTimeout))
	}
	werr := writeFrame(mc.conn, buf, tail)
	mc.wmu.Unlock()
	n := len(buf) + len(tail)
	codec.PutBuf(buf)
	if werr != nil {
		// A failed or half-written frame desyncs the stream: the whole
		// connection (and every pending call on it) is broken.
		mc.unregister(id)
		cerr := mc.classify(werr)
		mc.fail(cerr)
		return nil, cerr
	}
	c.t.m().bytesOut.Add(int64(n))

	var timeout <-chan time.Time
	if c.t.CallTimeout > 0 {
		timer := time.NewTimer(c.t.CallTimeout)
		defer timer.Stop()
		timeout = timer.C
	}
	select {
	case r := <-ch:
		return r.resp, r.err
	case <-timeout:
		mc.unregister(id)
		select {
		case r := <-ch:
			// The response raced the timer; deliver it.
			return r.resp, r.err
		default:
		}
		// Only this call times out; the connection and its neighbours
		// stay healthy (the demux loop discards the late response).
		return nil, fmt.Errorf("%w: %q after %v", ErrTimeout, c.addr, c.t.CallTimeout)
	}
}

// Abort kills the live connection without closing the client, marking
// it broken so the next Call re-dials. In-flight calls fail with
// ErrConnBroken. The chaos transport uses it to model connection
// resets.
func (c *tcpClient) Abort() {
	c.mu.Lock()
	mc := c.cur
	c.mu.Unlock()
	if mc != nil {
		mc.fail(fmt.Errorf("%w: %q: aborted", ErrConnBroken, c.addr))
	}
}

func (c *tcpClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	mc := c.cur
	c.mu.Unlock()
	if mc != nil {
		mc.fail(fmt.Errorf("%w: %q", ErrClosed, c.addr))
	}
	return nil
}

package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// wire envelopes. Payloads are gob-encoded; concrete request/response
// types must be registered with gob.Register by the protocol package.
type wireReq struct {
	Payload any
}

type wireResp struct {
	Payload any
	Err     string
}

// TCP is a Transport over TCP sockets with gob framing. Addresses are
// host:port strings; Listen with a ":0" port allocates an ephemeral
// port, and the closer's Addr method reports the bound address.
type TCP struct{}

// NewTCP returns a TCP transport.
func NewTCP() *TCP { return &TCP{} }

// TCPEndpoint is the closer returned by TCP.Listen; it also reports the
// bound address.
type TCPEndpoint struct {
	ln     net.Listener
	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

// Addr returns the bound listen address (useful with ":0").
func (e *TCPEndpoint) Addr() string { return e.ln.Addr().String() }

// Close stops accepting, closes live connections, and waits for
// handlers to drain.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	e.closed = true
	err := e.ln.Close()
	for c := range e.conns {
		c.Close()
	}
	e.mu.Unlock()
	e.wg.Wait()
	return err
}

// Listen implements Transport.
func (t *TCP) Listen(addr string, h Handler) (io.Closer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ep := &TCPEndpoint{ln: ln, conns: make(map[net.Conn]struct{})}
	ep.wg.Add(1)
	go func() {
		defer ep.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			ep.mu.Lock()
			if ep.closed {
				ep.mu.Unlock()
				conn.Close()
				return
			}
			ep.conns[conn] = struct{}{}
			ep.mu.Unlock()
			ep.wg.Add(1)
			go func() {
				defer ep.wg.Done()
				defer func() {
					ep.mu.Lock()
					delete(ep.conns, conn)
					ep.mu.Unlock()
					conn.Close()
				}()
				serveConn(conn, h)
			}()
		}
	}()
	return ep, nil
}

func serveConn(conn net.Conn, h Handler) {
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req wireReq
		if err := dec.Decode(&req); err != nil {
			return // EOF or broken peer
		}
		resp, err := h(req.Payload)
		out := wireResp{Payload: resp}
		if err != nil {
			out.Err = err.Error()
		}
		if err := enc.Encode(&out); err != nil {
			return
		}
	}
}

// ListenTCP is Listen with a concrete return type so callers can learn
// the bound address.
func (t *TCP) ListenTCP(addr string, h Handler) (*TCPEndpoint, error) {
	c, err := t.Listen(addr, h)
	if err != nil {
		return nil, err
	}
	return c.(*TCPEndpoint), nil
}

type tcpClient struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial implements Transport.
func (t *TCP) Dial(addr string) (Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: %q: %v", ErrNoEndpoint, addr, err)
	}
	return &tcpClient{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

func (c *tcpClient) Call(req any) (any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil, ErrClosed
	}
	if err := c.enc.Encode(&wireReq{Payload: req}); err != nil {
		return nil, err
	}
	var resp wireResp
	if err := c.dec.Decode(&resp); err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return resp.Payload, errors.New(resp.Err)
	}
	return resp.Payload, nil
}

func (c *tcpClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

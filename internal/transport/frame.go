package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"

	"gospaces/internal/codec"
)

// The multiplexed wire format. Every message — request or response —
// is one self-contained frame:
//
//	offset  size  field
//	0       4     magic 0x67535031 ("gSP1")
//	4       1     flags (response / error / fast-path)
//	5       1     reserved (0)
//	6       8     request id (big endian; responses echo the request's)
//	14      4     body length (big endian)
//	18      n     body
//
// Request body: the encoded payload. With flagFastPath set it is a
// codec type id + binary body; otherwise a self-contained gob stream.
//
// Response body: with flagError set it starts with a uvarint-prefixed
// error string, optionally followed by an encoded payload; without it
// the body is just the encoded payload (empty body = nil payload).
//
// Because frames carry explicit lengths and ids, one connection
// sustains any number of concurrent in-flight calls: writers interleave
// whole frames under a write lock, and the reader demultiplexes
// responses back to their callers by id.
const (
	frameMagic  = 0x67535031
	frameHdrLen = 18

	flagResponse = 1 << 0
	flagError    = 1 << 1
	flagFastPath = 1 << 2

	// MaxFrameBody bounds one frame's body; a length field beyond it is
	// treated as stream corruption, not an allocation request.
	MaxFrameBody = 64 << 20
)

// beginFrame reserves header space at the start of a (pooled) buffer;
// the body is appended after it and finishFrame fills the header in.
func beginFrame(buf []byte) []byte {
	var hdr [frameHdrLen]byte
	return append(buf, hdr[:]...)
}

// finishFrame writes the header of a frame whose body follows the
// reserved space. It fails if the body outgrew MaxFrameBody.
func finishFrame(buf []byte, flags byte, id uint64) ([]byte, error) {
	return finishFrameTail(buf, flags, id, 0)
}

// finishFrameTail is finishFrame for a vectored frame: the body
// continues for tailLen bytes past buf, written separately (writev)
// right after it.
func finishFrameTail(buf []byte, flags byte, id uint64, tailLen int) ([]byte, error) {
	body := len(buf) - frameHdrLen + tailLen
	if body > MaxFrameBody {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, body)
	}
	binary.BigEndian.PutUint32(buf[0:4], frameMagic)
	buf[4] = flags
	buf[5] = 0
	binary.BigEndian.PutUint64(buf[6:14], id)
	binary.BigEndian.PutUint32(buf[14:18], uint32(body))
	return buf, nil
}

// readFrame reads one frame; the returned body is a pooled buffer the
// caller must release with codec.PutBuf. Corruption (bad magic,
// oversized length) is typed: the stream is desynced and the connection
// must be torn down.
func readFrame(r io.Reader) (flags byte, id uint64, body []byte, err error) {
	var hdr [frameHdrLen]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	if binary.BigEndian.Uint32(hdr[0:4]) != frameMagic {
		return 0, 0, nil, fmt.Errorf("%w: bad magic %#x", ErrFrameCorrupt, hdr[0:4])
	}
	flags = hdr[4]
	id = binary.BigEndian.Uint64(hdr[6:14])
	n := binary.BigEndian.Uint32(hdr[14:18])
	if n > MaxFrameBody {
		return 0, 0, nil, fmt.Errorf("%w: body %d bytes", ErrFrameTooLarge, n)
	}
	body = codec.GetBuf()
	if cap(body) < int(n) {
		body = make([]byte, n)
	} else {
		body = body[:n]
	}
	if _, err = io.ReadFull(r, body); err != nil {
		codec.PutBuf(body)
		if err == io.EOF {
			err = io.ErrUnexpectedEOF // header promised a body
		}
		return 0, 0, nil, err
	}
	return flags, id, body, nil
}

// gobEnvelope wraps an arbitrary payload for the gob path; concrete
// types must be gob.Registered by the protocol package, as before.
type gobEnvelope struct{ V any }

// appendWriter adapts append-style encoding to io.Writer for gob.
type appendWriter struct{ b *[]byte }

func (w appendWriter) Write(p []byte) (int, error) {
	*w.b = append(*w.b, p...)
	return len(p), nil
}

// appendPayload appends v's encoding to buf: the binary fast path when
// v implements codec.Appender (and fastOK), a self-contained gob stream
// otherwise. It reports the flag bits the frame must carry.
func appendPayload(buf []byte, v any, fastOK bool) ([]byte, byte, error) {
	if fastOK {
		if out, ok := codec.Marshal(buf, v); ok {
			return out, flagFastPath, nil
		}
	}
	w := appendWriter{b: &buf}
	if err := gob.NewEncoder(w).Encode(&gobEnvelope{V: v}); err != nil {
		return buf, 0, fmt.Errorf("transport: encode %T: %w", v, err)
	}
	return buf, 0, nil
}

// vecThreshold is the bulk-tail size above which a frame is written as
// two iovecs (head + the message's own payload slice) instead of
// copying the payload into the frame buffer. Below it one contiguous
// write is cheaper than a second iovec.
const vecThreshold = 64 << 10

// appendPayloadVec is appendPayload with a vectored fast path: when v
// splits into head+tail (codec.BulkAppender) and the tail is large, the
// returned tail aliases v's own payload and must be written right after
// buf. A nil tail means buf is the complete encoding.
func appendPayloadVec(buf []byte, v any, fastOK bool) (out, tail []byte, flags byte, err error) {
	if fastOK {
		if head, tl, ok := codec.MarshalBulk(buf, v); ok {
			if len(tl) >= vecThreshold {
				return head, tl, flagFastPath, nil
			}
			return append(head, tl...), nil, flagFastPath, nil
		}
	}
	out, flags, err = appendPayload(buf, v, fastOK)
	return out, nil, flags, err
}

// aliasThreshold is the body size above which fast-path payloads decode
// in alias mode. Below it the copy is cheaper than losing the pooled
// buffer: a tiny ack aliased into a recycled 256 KiB buffer would pin
// the whole thing and starve the pool.
const aliasThreshold = 16 << 10

// decodePayload decodes a payload encoded by appendPayload. An empty
// body is a nil payload. Large fast-path payloads decode in alias mode —
// the value's byte fields point into body itself, saving one full
// payload copy — so when aliased is true the caller has ceded ownership
// of body and must NOT recycle it into the buffer pool.
func decodePayload(flags byte, body []byte) (v any, aliased bool, err error) {
	if len(body) == 0 {
		return nil, false, nil
	}
	if flags&flagFastPath != 0 {
		if len(body) < aliasThreshold {
			v, err := codec.Unmarshal(body)
			if err != nil {
				return nil, false, fmt.Errorf("%w: %v", ErrFrameCorrupt, err)
			}
			return v, false, nil
		}
		v, err := codec.UnmarshalAlias(body)
		if err != nil {
			return nil, false, fmt.Errorf("%w: %v", ErrFrameCorrupt, err)
		}
		return v, true, nil
	}
	var env gobEnvelope
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&env); err != nil {
		return nil, false, fmt.Errorf("%w: gob: %v", ErrFrameCorrupt, err)
	}
	return env.V, false, nil
}

// decodeResponse splits a response body into payload and remote error,
// with decodePayload's aliasing contract.
func decodeResponse(flags byte, body []byte) (v any, aliased bool, err error) {
	if flags&flagError == 0 {
		return decodePayload(flags, body)
	}
	r := codec.NewReader(body)
	msg := r.String()
	if r.Err() != nil {
		return nil, false, fmt.Errorf("%w: error frame: %v", ErrFrameCorrupt, r.Err())
	}
	payload, aliased, err := decodePayload(flags, r.Rest())
	if err != nil {
		return nil, false, err
	}
	return payload, aliased, &RemoteError{Msg: msg}
}

package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"gospaces/internal/codec"
)

// buildFrame assembles a raw frame for malformed-input tests, allowing
// deliberately wrong magic and length fields.
func buildFrame(magic uint32, flags byte, id uint64, declaredLen uint32, body []byte) []byte {
	buf := make([]byte, frameHdrLen, frameHdrLen+len(body))
	binary.BigEndian.PutUint32(buf[0:4], magic)
	buf[4] = flags
	binary.BigEndian.PutUint64(buf[6:14], id)
	binary.BigEndian.PutUint32(buf[14:18], declaredLen)
	return append(buf, body...)
}

func TestReadFrameMalformed(t *testing.T) {
	good := buildFrame(frameMagic, 0, 7, 3, []byte{1, 2, 3})
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, io.EOF},
		{"truncated header", good[:frameHdrLen-4], io.ErrUnexpectedEOF},
		{"bad magic", buildFrame(0xdeadbeef, 0, 7, 0, nil), ErrFrameCorrupt},
		{"oversized length", buildFrame(frameMagic, 0, 7, MaxFrameBody+1, nil), ErrFrameTooLarge},
		{"truncated body", good[:len(good)-2], io.ErrUnexpectedEOF},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, body, err := readFrame(bytes.NewReader(tc.in))
			if !errors.Is(err, tc.want) {
				t.Fatalf("got err %v, want %v", err, tc.want)
			}
			if body != nil {
				t.Fatal("malformed frame returned a body")
			}
		})
	}

	flags, id, body, err := readFrame(bytes.NewReader(good))
	if err != nil || flags != 0 || id != 7 || !bytes.Equal(body, []byte{1, 2, 3}) {
		t.Fatalf("good frame: flags=%d id=%d body=%v err=%v", flags, id, body, err)
	}
	codec.PutBuf(body)
}

// TestServerSurvivesGarbageConn feeds raw garbage and protocol
// violations straight into the listener: the server must drop those
// connections without crashing, and keep serving well-formed clients.
func TestServerSurvivesGarbageConn(t *testing.T) {
	tr := NewTCPTimeout(2*time.Second, time.Second)
	ep, err := tr.ListenTCP("127.0.0.1:0", func(req any) (any, error) { return req, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	payloads := [][]byte{
		[]byte("GET / HTTP/1.1\r\n\r\n"), // not our protocol
		buildFrame(frameMagic, 0, 1, MaxFrameBody+99, nil),
		buildFrame(frameMagic, flagResponse, 1, 0, nil),             // response on a server stream
		buildFrame(frameMagic, flagFastPath, 1, 2, []byte{0xff, 1}), // unregistered fast-path id
	}
	for _, p := range payloads {
		conn, err := net.Dial("tcp", ep.Addr())
		if err != nil {
			t.Fatal(err)
		}
		conn.Write(p)
		// The server either answers (per-call payload error) or closes;
		// it must do one of the two promptly rather than hang.
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		io.Copy(io.Discard, conn)
		conn.Close()
	}

	// A well-formed client still gets service.
	cl, err := tr.Dial(ep.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	resp, err := cl.Call(echoReq{Msg: "after garbage"})
	if err != nil || resp.(echoReq).Msg != "after garbage" {
		t.Fatalf("call after garbage conns: %v %v", resp, err)
	}
}

// TestClientSurvivesGarbageResponse runs a fake server that answers
// with corrupt frames: the pending call must fail with a typed error,
// the demux goroutine must exit, and the client must re-dial cleanly.
func TestClientSurvivesGarbageResponse(t *testing.T) {
	responses := [][]byte{
		[]byte("garbage that is long enough to cover a frame header ..."),
		buildFrame(frameMagic, flagResponse, 1, MaxFrameBody+1, nil),
		buildFrame(frameMagic, 0, 1, 0, nil), // request flag on a client stream
	}
	for _, raw := range responses {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		served := make(chan struct{})
		go func() {
			defer close(served)
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			var hdr [frameHdrLen]byte
			if _, err := io.ReadFull(conn, hdr[:]); err == nil {
				n := binary.BigEndian.Uint32(hdr[14:18])
				io.CopyN(io.Discard, conn, int64(n))
			}
			conn.Write(raw)
			conn.Close()
		}()

		before := runtime.NumGoroutine()
		tr := NewTCPTimeout(2*time.Second, time.Second)
		cl, err := tr.Dial(ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		_, err = cl.Call(echoReq{Msg: "x"})
		if err == nil {
			t.Fatal("corrupt response frame did not fail the call")
		}
		if !errors.Is(err, ErrConnBroken) && !errors.Is(err, ErrTimeout) {
			t.Fatalf("unexpected error class: %v", err)
		}
		cl.Close()
		ln.Close()
		<-served

		// The demux goroutine must be gone; allow the runtime a moment.
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if n := runtime.NumGoroutine(); n > before {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked after corrupt response (%d > %d):\n%s",
				n, before, buf[:runtime.Stack(buf, true)])
		}
	}
}

// FuzzFrameDecode holds the frame reader to its contract on arbitrary
// bytes: a typed error or a well-formed frame, never a panic.
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(buildFrame(frameMagic, 0, 1, 0, nil))
	f.Add(buildFrame(frameMagic, flagResponse, 2, 3, []byte{1, 2, 3}))
	f.Add(buildFrame(frameMagic, flagResponse|flagError, 3, 2, []byte{1, 'x'}))
	f.Add(buildFrame(frameMagic, flagFastPath, 4, 4, []byte{0, 1, 0, 0}))
	f.Add(buildFrame(0xbadbad, 0, 5, 0, nil))
	f.Add(buildFrame(frameMagic, 0, 6, MaxFrameBody+1, nil))
	if env, _, err := appendPayload(beginFrame(nil), echoReq{Msg: "seed"}, false); err == nil {
		if env, err = finishFrame(env, flagResponse, 9); err == nil {
			f.Add(env)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		flags, _, body, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(body) > MaxFrameBody {
			t.Fatalf("readFrame returned %d-byte body past MaxFrameBody", len(body))
		}
		// Whatever the frame carries, payload decoding must degrade to a
		// typed error, not a panic.
		var aliased bool
		if flags&flagResponse != 0 {
			var rerr error
			_, aliased, rerr = decodeResponse(flags, body)
			checkDecodeErr(t, rerr)
		} else {
			var derr error
			_, aliased, derr = decodePayload(flags, body)
			checkDecodeErr(t, derr)
		}
		if !aliased {
			codec.PutBuf(body)
		}
	})
}

func checkDecodeErr(t *testing.T, err error) {
	t.Helper()
	if err == nil {
		return
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return // decoded error frame: a remote error is a valid outcome
	}
	if errors.Is(err, ErrFrameCorrupt) || errors.Is(err, codec.ErrCorrupt) ||
		errors.Is(err, codec.ErrUnknownType) {
		return
	}
	// gob's own rejections surface wrapped in ErrFrameCorrupt; anything
	// else is an untyped escape.
	if strings.Contains(err.Error(), "corrupt frame") {
		return
	}
	t.Fatalf("untyped decode error: %v", err)
}

package transport

import (
	"errors"
	"testing"
	"time"

	"gospaces/internal/failure"
)

func echoServer(t *testing.T, tr Transport, addr string) func() {
	t.Helper()
	closer, err := tr.Listen(addr, func(req any) (any, error) { return req, nil })
	if err != nil {
		t.Fatal(err)
	}
	return func() { closer.Close() }
}

func TestChaosTransparentWithoutFaults(t *testing.T) {
	ch := NewChaos(NewInProc(), 1)
	defer echoServer(t, ch, "s")()
	c, err := ch.Dial("s")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 50; i++ {
		if resp, err := c.Call(i); err != nil || resp != i {
			t.Fatalf("call %d: %v %v", i, resp, err)
		}
	}
}

func TestChaosDropReturnsTimeout(t *testing.T) {
	ch := NewChaos(NewInProc(), 1)
	defer echoServer(t, ch, "s")()
	ch.SetCallFaults(0, 0, 1.0) // drop every response
	c, _ := ch.Dial("s")
	defer c.Close()
	_, err := c.Call("x")
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if !Retryable(err) {
		t.Fatal("dropped response must be retryable")
	}
}

func TestChaosBlackoutWindowAndRecovery(t *testing.T) {
	ch := NewChaos(NewInProc(), 1)
	defer echoServer(t, ch, "s")()
	c, _ := ch.Dial("s")
	defer c.Close()
	if _, err := c.Call("before"); err != nil {
		t.Fatal(err)
	}
	ch.Blackout("s", 60*time.Millisecond)
	if _, err := c.Call("during"); !errors.Is(err, ErrNoEndpoint) {
		t.Fatalf("err during blackout = %v, want ErrNoEndpoint", err)
	}
	if _, err := ch.Dial("s"); !errors.Is(err, ErrNoEndpoint) {
		t.Fatalf("dial during blackout = %v, want ErrNoEndpoint", err)
	}
	time.Sleep(80 * time.Millisecond)
	if _, err := c.Call("after"); err != nil {
		t.Fatalf("call after blackout: %v", err)
	}
}

func TestChaosDelayAddsLatency(t *testing.T) {
	ch := NewChaos(NewInProc(), 1)
	defer echoServer(t, ch, "s")()
	ch.SetCallFaults(1.0, 30*time.Millisecond, 0)
	c, _ := ch.Dial("s")
	defer c.Close()
	start := time.Now()
	if _, err := c.Call("x"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("injected delay not observed: call took %v", d)
	}
}

func TestChaosApplySchedule(t *testing.T) {
	sched, err := failure.Chaos(7, 6, 500*time.Millisecond, 40*time.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 6 {
		t.Fatalf("schedule has %d entries", len(sched))
	}
	ch := NewChaos(NewInProc(), 1)
	defer echoServer(t, ch, "srv0")()
	defer echoServer(t, ch, "srv1")()
	// Arm an explicit blackout schedule so the timing is test-controlled.
	ch.Apply(failure.Schedule{
		{At: 1 * time.Millisecond, Kind: failure.ServerCrash, Server: 1, Duration: 50 * time.Millisecond},
	}, []string{"srv0", "srv1"})
	c0, _ := ch.Dial("srv0")
	defer c0.Close()
	c1, _ := ch.Dial("srv1")
	defer c1.Close()
	time.Sleep(5 * time.Millisecond)
	if _, err := c0.Call("x"); err != nil {
		t.Fatalf("untargeted server perturbed: %v", err)
	}
	if _, err := c1.Call("x"); !errors.Is(err, ErrNoEndpoint) {
		t.Fatalf("scheduled blackout missed: %v", err)
	}
	time.Sleep(60 * time.Millisecond)
	if _, err := c1.Call("x"); err != nil {
		t.Fatalf("server did not recover after window: %v", err)
	}
}

func TestChaosKillConnsForcesRedial(t *testing.T) {
	tcp := NewTCP()
	ch := NewChaos(tcp, 1)
	closer, err := ch.Listen("127.0.0.1:0", func(req any) (any, error) { return req, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	addr := closer.(interface{ Addr() string }).Addr()
	c, err := ch.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(echoReq{Msg: "a"}); err != nil {
		t.Fatal(err)
	}
	ch.KillConns(addr)
	// The kill marks the connection broken; the next call transparently
	// re-dials the (still live) endpoint.
	if resp, err := c.Call(echoReq{Msg: "b"}); err != nil || resp.(echoReq).Msg != "b" {
		t.Fatalf("re-dial after kill failed: %v %v", resp, err)
	}
}

func TestChaosKillConnsBreaksInFlightCall(t *testing.T) {
	tcp := NewTCP()
	ch := NewChaos(tcp, 1)
	entered := make(chan struct{}, 1)
	block := make(chan struct{})
	closer, err := ch.Listen("127.0.0.1:0", func(req any) (any, error) {
		entered <- struct{}{}
		<-block
		return req, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	addr := closer.(interface{ Addr() string }).Addr()
	c, err := ch.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Call(echoReq{Msg: "stuck"})
		errCh <- err
	}()
	<-entered // the call is in flight, parked in the handler
	ch.KillConns(addr)
	select {
	case err := <-errCh:
		// Release the parked handler before the deferred endpoint Close
		// drains it, then check the error.
		close(block)
		if !errors.Is(err, ErrConnBroken) {
			t.Fatalf("in-flight call err = %v, want ErrConnBroken", err)
		}
	case <-time.After(5 * time.Second):
		close(block)
		t.Fatal("in-flight call hung after connection kill")
	}
}

// TestChaosApplyResetsAddrMappings: re-arming a schedule with a
// different address list must not leave stale addr->id mappings behind,
// which would route the new fault windows to the wrong address.
func TestChaosApplyResetsAddrMappings(t *testing.T) {
	ch := NewChaos(NewInProc(), 1)
	defer echoServer(t, ch, "a")()
	defer echoServer(t, ch, "b")()
	sched := failure.Schedule{
		{Kind: failure.ServerCrash, Server: 0, Duration: time.Hour},
	}
	ch.Apply(sched, []string{"a"})
	if _, err := ch.Dial("a"); !errors.Is(err, ErrNoEndpoint) {
		t.Fatalf("dial a under first schedule = %v, want ErrNoEndpoint", err)
	}
	// Re-arm with server 0 now living at "b": "a" must be clean.
	ch.Apply(sched, []string{"b"})
	ca, err := ch.Dial("a")
	if err != nil {
		t.Fatalf("stale mapping still blacks out a: %v", err)
	}
	defer ca.Close()
	if _, err := ca.Call("x"); err != nil {
		t.Fatalf("call to a after re-arm: %v", err)
	}
	if _, err := ch.Dial("b"); !errors.Is(err, ErrNoEndpoint) {
		t.Fatalf("dial b under second schedule = %v, want ErrNoEndpoint", err)
	}
}

package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

type echoReq struct{ Msg string }
type echoResp struct{ Msg string }

func init() {
	gob.Register(echoReq{})
	gob.Register(echoResp{})
}

func echoHandler(req any) (any, error) {
	r, ok := req.(echoReq)
	if !ok {
		return nil, fmt.Errorf("bad request type %T", req)
	}
	if r.Msg == "boom" {
		return nil, errors.New("synthetic failure")
	}
	return echoResp{Msg: "echo:" + r.Msg}, nil
}

func TestInProcRoundTrip(t *testing.T) {
	tr := NewInProc()
	closer, err := tr.Listen("srv0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	c, err := tr.Dial("srv0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Call(echoReq{Msg: "hi"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(echoResp).Msg != "echo:hi" {
		t.Fatalf("resp = %v", resp)
	}
}

func TestInProcErrors(t *testing.T) {
	tr := NewInProc()
	if _, err := tr.Dial("missing"); !errors.Is(err, ErrNoEndpoint) {
		t.Fatalf("dial missing: %v", err)
	}
	closer, _ := tr.Listen("s", echoHandler)
	if _, err := tr.Listen("s", echoHandler); err == nil {
		t.Fatal("duplicate listen accepted")
	}
	c, _ := tr.Dial("s")
	if _, err := c.Call(echoReq{Msg: "boom"}); err == nil {
		t.Fatal("handler error not propagated")
	}
	c.Close()
	if _, err := c.Call(echoReq{Msg: "hi"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("call on closed: %v", err)
	}
	closer.Close()
	c2, err := tr.Dial("s")
	if err == nil {
		_ = c2
		t.Fatal("dial after close succeeded")
	}
}

func TestInProcConcurrentCalls(t *testing.T) {
	tr := NewInProc()
	closer, _ := tr.Listen("s", echoHandler)
	defer closer.Close()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := tr.Dial("s")
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for j := 0; j < 100; j++ {
				msg := fmt.Sprintf("m%d-%d", i, j)
				resp, err := c.Call(echoReq{Msg: msg})
				if err != nil || resp.(echoResp).Msg != "echo:"+msg {
					t.Errorf("call %s: %v %v", msg, resp, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestTCPRoundTrip(t *testing.T) {
	tr := NewTCP()
	ep, err := tr.ListenTCP("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	c, err := tr.Dial(ep.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 10; i++ {
		resp, err := c.Call(echoReq{Msg: fmt.Sprintf("n%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		if resp.(echoResp).Msg != fmt.Sprintf("echo:n%d", i) {
			t.Fatalf("resp = %v", resp)
		}
	}
}

func TestTCPHandlerError(t *testing.T) {
	tr := NewTCP()
	ep, err := tr.ListenTCP("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	c, _ := tr.Dial(ep.Addr())
	defer c.Close()
	_, err = c.Call(echoReq{Msg: "boom"})
	if err == nil || !strings.Contains(err.Error(), "synthetic failure") {
		t.Fatalf("err = %v", err)
	}
	// The connection must survive a handler error.
	if _, err := c.Call(echoReq{Msg: "after"}); err != nil {
		t.Fatalf("call after error: %v", err)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	tr := NewTCP()
	ep, err := tr.ListenTCP("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := tr.Dial(ep.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for j := 0; j < 50; j++ {
				msg := fmt.Sprintf("c%d-%d", i, j)
				resp, err := c.Call(echoReq{Msg: msg})
				if err != nil || resp.(echoResp).Msg != "echo:"+msg {
					t.Errorf("%s: %v %v", msg, resp, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestTCPDialFailure(t *testing.T) {
	tr := NewTCP()
	if _, err := tr.Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestTCPCloseUnblocksClients(t *testing.T) {
	tr := NewTCP()
	ep, err := tr.ListenTCP("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := tr.Dial(ep.Addr())
	defer c.Close()
	if _, err := c.Call(echoReq{Msg: "x"}); err != nil {
		t.Fatal(err)
	}
	ep.Close()
	if _, err := c.Call(echoReq{Msg: "y"}); err == nil {
		t.Fatal("call after endpoint close succeeded")
	}
}

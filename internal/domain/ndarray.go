package domain

import "fmt"

// This file provides row-major N-dimensional buffer arithmetic: the
// staging client splits a rank's local array into per-server chunks on
// put and reassembles query results into the caller's buffer on get,
// exactly as DataSpaces does with its RDMA scatter/gather lists.

// BufLen returns the byte length of a row-major buffer covering b with
// the given element size.
func BufLen(b BBox, elemSize int) int {
	return int(b.Volume()) * elemSize
}

// offsetIn returns the row-major element offset of point p within box b.
// p must lie inside b.
func offsetIn(b BBox, p Point) int64 {
	var off int64
	for i := 0; i < b.NDim; i++ {
		off = off*b.Extent(i) + (p[i] - b.Min[i])
	}
	return off
}

// CopyRegion copies the cells of region from a row-major buffer covering
// srcBox into a row-major buffer covering dstBox. region must be
// contained in both boxes, and all boxes must share dimensionality.
func CopyRegion(dst []byte, dstBox BBox, src []byte, srcBox BBox, region BBox, elemSize int) {
	if region.IsEmpty() {
		return
	}
	if !srcBox.Contains(region) || !dstBox.Contains(region) {
		panic(fmt.Sprintf("domain: CopyRegion region %v not contained in src %v / dst %v", region, srcBox, dstBox))
	}
	if len(src) < BufLen(srcBox, elemSize) || len(dst) < BufLen(dstBox, elemSize) {
		panic("domain: CopyRegion buffer too small")
	}
	n := region.NDim
	rowDim := n - 1
	rowBytes := int(region.Extent(rowDim)) * elemSize

	// Iterate over every row start (all dims except the last).
	var p Point
	for i := 0; i < n; i++ {
		p[i] = region.Min[i]
	}
	for {
		so := offsetIn(srcBox, p) * int64(elemSize)
		do := offsetIn(dstBox, p) * int64(elemSize)
		copy(dst[do:do+int64(rowBytes)], src[so:so+int64(rowBytes)])

		// Advance to the next row: increment dims rowDim-1 .. 0.
		d := rowDim - 1
		for d >= 0 {
			p[d]++
			if p[d] <= region.Max[d] {
				break
			}
			p[d] = region.Min[d]
			d--
		}
		if d < 0 {
			return
		}
	}
}

// Extract returns a fresh buffer holding the sub region of a row-major
// buffer covering srcBox.
func Extract(src []byte, srcBox, sub BBox, elemSize int) []byte {
	out := make([]byte, BufLen(sub, elemSize))
	CopyRegion(out, sub, src, srcBox, sub, elemSize)
	return out
}

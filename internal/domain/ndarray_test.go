package domain

import (
	"bytes"
	"math/rand"
	"testing"
)

func fillSeq(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)
	}
	return b
}

func TestExtractRow(t *testing.T) {
	// 1-D: trivial slicing.
	box := MustBBox(1, []int64{0}, []int64{9})
	data := fillSeq(10)
	sub := MustBBox(1, []int64{3}, []int64{6})
	got := Extract(data, box, sub, 1)
	if !bytes.Equal(got, []byte{3, 4, 5, 6}) {
		t.Fatalf("got %v", got)
	}
}

func TestExtract2D(t *testing.T) {
	// 4x4 grid, extract middle 2x2.
	box := MustBBox(2, []int64{0, 0}, []int64{3, 3})
	data := fillSeq(16)
	sub := MustBBox(2, []int64{1, 1}, []int64{2, 2})
	got := Extract(data, box, sub, 1)
	want := []byte{5, 6, 9, 10}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestExtractElemSize(t *testing.T) {
	box := MustBBox(1, []int64{0}, []int64{3})
	data := fillSeq(16) // 4 elements of 4 bytes
	sub := MustBBox(1, []int64{1}, []int64{2})
	got := Extract(data, box, sub, 4)
	want := []byte{4, 5, 6, 7, 8, 9, 10, 11}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestCopyRegionRoundTrip3D(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	global := Box3(0, 0, 0, 7, 9, 11)
	src := make([]byte, BufLen(global, 2))
	rng.Read(src)

	// Scatter the global array into 8 rank chunks, then gather back.
	d, err := NewDecomposition(global, []int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	chunks := make([][]byte, d.NRanks)
	boxes := make([]BBox, d.NRanks)
	for r := 0; r < d.NRanks; r++ {
		boxes[r], _ = d.RankBox(r)
		chunks[r] = Extract(src, global, boxes[r], 2)
	}
	dst := make([]byte, len(src))
	for r := 0; r < d.NRanks; r++ {
		CopyRegion(dst, global, chunks[r], boxes[r], boxes[r], 2)
	}
	if !bytes.Equal(dst, src) {
		t.Fatal("scatter/gather round trip mismatch")
	}
}

func TestCopyRegionPartialOverlap(t *testing.T) {
	srcBox := Box3(0, 0, 0, 3, 3, 3)
	dstBox := Box3(2, 2, 2, 5, 5, 5)
	region, ok := srcBox.Intersect(dstBox)
	if !ok {
		t.Fatal("no overlap")
	}
	src := fillSeq(BufLen(srcBox, 1))
	dst := make([]byte, BufLen(dstBox, 1))
	CopyRegion(dst, dstBox, src, srcBox, region, 1)
	// Check one cell: global point (3,3,3) = src offset 3*16+3*4+3 = 63,
	// dst offset (1,1,1) in dstBox = 1*16+1*4+1 = 21.
	if dst[21] != 63 {
		t.Fatalf("dst[21] = %d, want 63", dst[21])
	}
}

func TestCopyRegionPanicsOnEscape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a := Box3(0, 0, 0, 1, 1, 1)
	b := Box3(0, 0, 0, 2, 2, 2)
	CopyRegion(make([]byte, 8), a, make([]byte, 27), b, b, 1)
}

func TestCopyRegionEmptyRegionNoop(t *testing.T) {
	a := Box3(0, 0, 0, 1, 1, 1)
	dst := make([]byte, 8)
	CopyRegion(dst, a, nil, a, BBox{}, 1)
	for _, v := range dst {
		if v != 0 {
			t.Fatal("empty region modified dst")
		}
	}
}

package domain

import "fmt"

// Decomposition is a regular block decomposition of a global box over a
// process grid, the layout stencil-style producers (such as S3D) use to
// assign each rank a contiguous sub-box of the field.
type Decomposition struct {
	Global BBox
	// Procs is the process-grid shape; Procs[i] ranks along dimension i.
	Procs [MaxDims]int
	// NRanks is the total number of ranks (product of Procs).
	NRanks int
}

// NewDecomposition partitions global over a process grid of shape procs
// (one entry per dimension of the global box). Every extent must be
// divisible into at least one cell per rank.
func NewDecomposition(global BBox, procs []int) (*Decomposition, error) {
	if global.IsEmpty() {
		return nil, fmt.Errorf("domain: decomposition of empty box")
	}
	if len(procs) < global.NDim {
		return nil, fmt.Errorf("domain: process grid has %d dims, domain has %d", len(procs), global.NDim)
	}
	d := &Decomposition{Global: global, NRanks: 1}
	for i := 0; i < global.NDim; i++ {
		if procs[i] < 1 {
			return nil, fmt.Errorf("domain: non-positive process count %d in dim %d", procs[i], i)
		}
		if global.Extent(i) < int64(procs[i]) {
			return nil, fmt.Errorf("domain: extent %d in dim %d smaller than %d ranks", global.Extent(i), i, procs[i])
		}
		d.Procs[i] = procs[i]
		d.NRanks *= procs[i]
	}
	return d, nil
}

// RankBox returns the sub-box owned by rank, using row-major rank
// ordering over the process grid. Extents that do not divide evenly give
// the earlier ranks one extra cell, so the union of all rank boxes is
// exactly the global box and no boxes overlap.
func (d *Decomposition) RankBox(rank int) (BBox, error) {
	if rank < 0 || rank >= d.NRanks {
		return BBox{}, fmt.Errorf("domain: rank %d out of range [0,%d)", rank, d.NRanks)
	}
	coords := d.rankCoords(rank)
	b := BBox{NDim: d.Global.NDim}
	for i := 0; i < d.Global.NDim; i++ {
		lo, hi := blockRange(d.Global.Min[i], d.Global.Extent(i), d.Procs[i], coords[i])
		b.Min[i] = lo
		b.Max[i] = hi
	}
	return b, nil
}

// rankCoords converts a flat rank to process-grid coordinates
// (row-major: last dimension fastest).
func (d *Decomposition) rankCoords(rank int) [MaxDims]int {
	var c [MaxDims]int
	for i := d.Global.NDim - 1; i >= 0; i-- {
		c[i] = rank % d.Procs[i]
		rank /= d.Procs[i]
	}
	return c
}

// blockRange computes the [lo,hi] extent of block idx out of n blocks
// covering [base, base+extent).
func blockRange(base, extent int64, n, idx int) (int64, int64) {
	q := extent / int64(n)
	r := extent % int64(n)
	var lo int64
	if int64(idx) < r {
		lo = int64(idx) * (q + 1)
	} else {
		lo = r*(q+1) + (int64(idx)-r)*q
	}
	size := q
	if int64(idx) < r {
		size = q + 1
	}
	return base + lo, base + lo + size - 1
}

// OwnerRanks returns all ranks whose sub-box intersects q.
func (d *Decomposition) OwnerRanks(q BBox) []int {
	var owners []int
	for r := 0; r < d.NRanks; r++ {
		b, err := d.RankBox(r)
		if err != nil {
			continue
		}
		if b.Intersects(q) {
			owners = append(owners, r)
		}
	}
	return owners
}

// Subset returns a box covering the given fraction (0,1] of the global
// domain, shrunk along the last dimension. It reproduces the paper's
// Case 1 access pattern, where 20%–100% of the data domain is exchanged
// each timestep.
func Subset(global BBox, frac float64) BBox {
	if frac >= 1 || global.IsEmpty() {
		return global
	}
	if frac <= 0 {
		return BBox{}
	}
	b := global
	last := global.NDim - 1
	ext := global.Extent(last)
	n := int64(float64(ext)*frac + 0.5)
	if n < 1 {
		n = 1
	}
	b.Max[last] = b.Min[last] + n - 1
	return b
}

// Package domain provides the geometric vocabulary of the staging service:
// axis-aligned bounding boxes over an up-to-3-dimensional integer grid, and
// regular block decompositions of a global domain across application ranks.
//
// DataSpaces identifies every shared data region by such a geometric
// descriptor; all staging puts, gets, and logged events in this repository
// carry a BBox.
package domain

import (
	"fmt"
)

// MaxDims is the maximum number of dimensions supported by the staging
// geometry. The paper's workloads are 3-D scalar/vector fields.
const MaxDims = 3

// Point is a coordinate on the global integer grid. Only the first NDim
// entries of a containing BBox are meaningful.
type Point [MaxDims]int64

// BBox is a closed axis-aligned box [Min, Max] on the global grid.
// A BBox with NDim == 0 is the empty box.
type BBox struct {
	NDim int
	Min  Point
	Max  Point
}

// NewBBox constructs an n-dimensional box from min/max coordinate slices.
// It panics if n is out of range or the slices are shorter than n; it
// returns an error if any min exceeds the corresponding max.
func NewBBox(n int, min, max []int64) (BBox, error) {
	if n < 1 || n > MaxDims {
		panic(fmt.Sprintf("domain: NewBBox dimension %d out of range [1,%d]", n, MaxDims))
	}
	if len(min) < n || len(max) < n {
		panic("domain: NewBBox coordinate slices shorter than dimension")
	}
	var b BBox
	b.NDim = n
	for i := 0; i < n; i++ {
		if min[i] > max[i] {
			return BBox{}, fmt.Errorf("domain: inverted extent in dim %d: min %d > max %d", i, min[i], max[i])
		}
		b.Min[i] = min[i]
		b.Max[i] = max[i]
	}
	return b, nil
}

// MustBBox is NewBBox but panics on inverted extents. Intended for
// literals in tests and examples.
func MustBBox(n int, min, max []int64) BBox {
	b, err := NewBBox(n, min, max)
	if err != nil {
		panic(err)
	}
	return b
}

// Box3 is shorthand for a 3-D box literal.
func Box3(x0, y0, z0, x1, y1, z1 int64) BBox {
	return MustBBox(3, []int64{x0, y0, z0}, []int64{x1, y1, z1})
}

// IsEmpty reports whether the box covers no cells.
func (b BBox) IsEmpty() bool { return b.NDim == 0 }

// Volume returns the number of grid cells covered by the box.
func (b BBox) Volume() int64 {
	if b.IsEmpty() {
		return 0
	}
	v := int64(1)
	for i := 0; i < b.NDim; i++ {
		v *= b.Max[i] - b.Min[i] + 1
	}
	return v
}

// Extent returns the length of the box along dimension d.
func (b BBox) Extent(d int) int64 {
	if d < 0 || d >= b.NDim {
		return 0
	}
	return b.Max[d] - b.Min[d] + 1
}

// Equal reports whether two boxes cover exactly the same region.
func (b BBox) Equal(o BBox) bool {
	if b.NDim != o.NDim {
		return false
	}
	for i := 0; i < b.NDim; i++ {
		if b.Min[i] != o.Min[i] || b.Max[i] != o.Max[i] {
			return false
		}
	}
	return true
}

// Contains reports whether o lies entirely inside b.
func (b BBox) Contains(o BBox) bool {
	if b.NDim != o.NDim || b.IsEmpty() || o.IsEmpty() {
		return false
	}
	for i := 0; i < b.NDim; i++ {
		if o.Min[i] < b.Min[i] || o.Max[i] > b.Max[i] {
			return false
		}
	}
	return true
}

// ContainsPoint reports whether point p (with b.NDim meaningful coords)
// lies inside b.
func (b BBox) ContainsPoint(p Point) bool {
	for i := 0; i < b.NDim; i++ {
		if p[i] < b.Min[i] || p[i] > b.Max[i] {
			return false
		}
	}
	return !b.IsEmpty()
}

// Intersects reports whether the two boxes share at least one cell.
func (b BBox) Intersects(o BBox) bool {
	if b.NDim != o.NDim || b.IsEmpty() || o.IsEmpty() {
		return false
	}
	for i := 0; i < b.NDim; i++ {
		if b.Max[i] < o.Min[i] || o.Max[i] < b.Min[i] {
			return false
		}
	}
	return true
}

// Intersect returns the overlap of the two boxes and whether it is
// non-empty.
func (b BBox) Intersect(o BBox) (BBox, bool) {
	if !b.Intersects(o) {
		return BBox{}, false
	}
	r := BBox{NDim: b.NDim}
	for i := 0; i < b.NDim; i++ {
		r.Min[i] = maxI64(b.Min[i], o.Min[i])
		r.Max[i] = minI64(b.Max[i], o.Max[i])
	}
	return r, true
}

// Union returns the smallest box covering both operands. Union with the
// empty box returns the other operand.
func (b BBox) Union(o BBox) BBox {
	if b.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return b
	}
	if b.NDim != o.NDim {
		panic("domain: Union of boxes with different dimensionality")
	}
	r := BBox{NDim: b.NDim}
	for i := 0; i < b.NDim; i++ {
		r.Min[i] = minI64(b.Min[i], o.Min[i])
		r.Max[i] = maxI64(b.Max[i], o.Max[i])
	}
	return r
}

// Translate returns the box shifted by off.
func (b BBox) Translate(off Point) BBox {
	r := b
	for i := 0; i < b.NDim; i++ {
		r.Min[i] += off[i]
		r.Max[i] += off[i]
	}
	return r
}

// String renders the box as {(min)..(max)}.
func (b BBox) String() string {
	if b.IsEmpty() {
		return "{empty}"
	}
	s := "{("
	for i := 0; i < b.NDim; i++ {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprint(b.Min[i])
	}
	s += ")..("
	for i := 0; i < b.NDim; i++ {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprint(b.Max[i])
	}
	return s + ")}"
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

package domain

import (
	"fmt"

	"gospaces/internal/codec"
)

// AppendBinary appends the box's fast-path encoding: the dimension
// count followed by NDim (min, max) varint pairs. The empty box encodes
// as a single zero byte.
func (b BBox) AppendBinary(buf []byte) []byte {
	buf = codec.AppendUvarint(buf, uint64(b.NDim))
	for i := 0; i < b.NDim; i++ {
		buf = codec.AppendVarint(buf, b.Min[i])
		buf = codec.AppendVarint(buf, b.Max[i])
	}
	return buf
}

// DecodeBBox reads a box encoded by AppendBinary from r.
func DecodeBBox(r *codec.Reader) (BBox, error) {
	var b BBox
	n := r.Int()
	if r.Err() != nil {
		return BBox{}, r.Err()
	}
	if n < 0 || n > MaxDims {
		return BBox{}, fmt.Errorf("%w: bbox dimension %d", codec.ErrCorrupt, n)
	}
	b.NDim = n
	for i := 0; i < n; i++ {
		b.Min[i] = r.Varint()
		b.Max[i] = r.Varint()
	}
	return b, r.Err()
}

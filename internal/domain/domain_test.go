package domain

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewBBoxValidation(t *testing.T) {
	if _, err := NewBBox(3, []int64{0, 0, 5}, []int64{1, 1, 4}); err == nil {
		t.Fatal("inverted extent accepted")
	}
	b, err := NewBBox(2, []int64{1, 2}, []int64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if b.NDim != 2 || b.Volume() != 9 {
		t.Fatalf("got %v volume %d, want 2-D volume 9", b, b.Volume())
	}
}

func TestNewBBoxPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for dimension 0")
		}
	}()
	NewBBox(0, nil, nil)
}

func TestVolumeAndExtent(t *testing.T) {
	b := Box3(0, 0, 0, 511, 511, 255)
	if got := b.Volume(); got != 512*512*256 {
		t.Fatalf("volume = %d", got)
	}
	if b.Extent(0) != 512 || b.Extent(2) != 256 {
		t.Fatalf("extents = %d,%d,%d", b.Extent(0), b.Extent(1), b.Extent(2))
	}
	if b.Extent(3) != 0 {
		t.Fatal("out-of-range extent should be 0")
	}
	var empty BBox
	if empty.Volume() != 0 || !empty.IsEmpty() {
		t.Fatal("empty box should have volume 0")
	}
}

func TestIntersect(t *testing.T) {
	a := Box3(0, 0, 0, 9, 9, 9)
	b := Box3(5, 5, 5, 14, 14, 14)
	got, ok := a.Intersect(b)
	if !ok {
		t.Fatal("boxes should intersect")
	}
	want := Box3(5, 5, 5, 9, 9, 9)
	if !got.Equal(want) {
		t.Fatalf("intersection = %v, want %v", got, want)
	}
	c := Box3(20, 20, 20, 30, 30, 30)
	if _, ok := a.Intersect(c); ok {
		t.Fatal("disjoint boxes reported intersecting")
	}
	if a.Intersects(BBox{}) {
		t.Fatal("intersects empty box")
	}
}

func TestContains(t *testing.T) {
	a := Box3(0, 0, 0, 9, 9, 9)
	if !a.Contains(Box3(1, 1, 1, 8, 8, 8)) {
		t.Fatal("inner box not contained")
	}
	if a.Contains(Box3(1, 1, 1, 10, 8, 8)) {
		t.Fatal("overflowing box contained")
	}
	if !a.ContainsPoint(Point{5, 5, 5}) || a.ContainsPoint(Point{5, 5, 10}) {
		t.Fatal("ContainsPoint wrong")
	}
}

func TestUnionTranslate(t *testing.T) {
	a := Box3(0, 0, 0, 4, 4, 4)
	b := Box3(6, 6, 6, 9, 9, 9)
	u := a.Union(b)
	if !u.Equal(Box3(0, 0, 0, 9, 9, 9)) {
		t.Fatalf("union = %v", u)
	}
	if !a.Union(BBox{}).Equal(a) || !(BBox{}).Union(a).Equal(a) {
		t.Fatal("union with empty box broken")
	}
	tr := a.Translate(Point{1, 2, 3})
	if !tr.Equal(Box3(1, 2, 3, 5, 6, 7)) {
		t.Fatalf("translate = %v", tr)
	}
}

func TestString(t *testing.T) {
	if s := Box3(0, 1, 2, 3, 4, 5).String(); s != "{(0,1,2)..(3,4,5)}" {
		t.Fatalf("String = %q", s)
	}
	if s := (BBox{}).String(); s != "{empty}" {
		t.Fatalf("empty String = %q", s)
	}
}

// Property: intersection is commutative and contained in both operands.
func TestIntersectionProperties(t *testing.T) {
	f := func(a0, a1, b0, b1 [3]int8) bool {
		a := normBox(a0, a1)
		b := normBox(b0, b1)
		i1, ok1 := a.Intersect(b)
		i2, ok2 := b.Intersect(a)
		if ok1 != ok2 {
			return false
		}
		if !ok1 {
			return true
		}
		return i1.Equal(i2) && a.Contains(i1) && b.Contains(i1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: volume of the union bounds the sum of disjoint volumes.
func TestUnionVolumeProperty(t *testing.T) {
	f := func(a0, a1, b0, b1 [3]int8) bool {
		a := normBox(a0, a1)
		b := normBox(b0, b1)
		u := a.Union(b)
		if !u.Contains(a) || !u.Contains(b) {
			return false
		}
		if !a.Intersects(b) {
			return u.Volume() >= a.Volume()+b.Volume()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func normBox(lo, hi [3]int8) BBox {
	var mn, mx [3]int64
	for i := 0; i < 3; i++ {
		a, b := int64(lo[i]), int64(hi[i])
		if a > b {
			a, b = b, a
		}
		mn[i], mx[i] = a, b
	}
	return MustBBox(3, mn[:], mx[:])
}

func TestDecompositionCoversExactly(t *testing.T) {
	global := Box3(0, 0, 0, 511, 511, 255)
	d, err := NewDecomposition(global, []int{8, 8, 4})
	if err != nil {
		t.Fatal(err)
	}
	if d.NRanks != 256 {
		t.Fatalf("NRanks = %d", d.NRanks)
	}
	var total int64
	for r := 0; r < d.NRanks; r++ {
		b, err := d.RankBox(r)
		if err != nil {
			t.Fatal(err)
		}
		if !global.Contains(b) {
			t.Fatalf("rank %d box %v escapes global", r, b)
		}
		total += b.Volume()
		// Spot-check disjointness against a few neighbours.
		for o := r + 1; o < r+3 && o < d.NRanks; o++ {
			ob, _ := d.RankBox(o)
			if b.Intersects(ob) {
				t.Fatalf("rank %d and %d overlap: %v vs %v", r, o, b, ob)
			}
		}
	}
	if total != global.Volume() {
		t.Fatalf("sum of rank volumes %d != global volume %d", total, global.Volume())
	}
}

func TestDecompositionUneven(t *testing.T) {
	global := MustBBox(1, []int64{0}, []int64{9})
	d, err := NewDecomposition(global, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int64{4, 3, 3}
	var next int64
	for r := 0; r < 3; r++ {
		b, _ := d.RankBox(r)
		if b.Min[0] != next || b.Volume() != sizes[r] {
			t.Fatalf("rank %d box %v, want start %d size %d", r, b, next, sizes[r])
		}
		next = b.Max[0] + 1
	}
}

func TestDecompositionErrors(t *testing.T) {
	if _, err := NewDecomposition(BBox{}, []int{1}); err == nil {
		t.Fatal("empty global accepted")
	}
	g := MustBBox(1, []int64{0}, []int64{3})
	if _, err := NewDecomposition(g, []int{5}); err == nil {
		t.Fatal("more ranks than cells accepted")
	}
	if _, err := NewDecomposition(g, []int{0}); err == nil {
		t.Fatal("zero ranks accepted")
	}
	d, _ := NewDecomposition(g, []int{2})
	if _, err := d.RankBox(7); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
}

func TestOwnerRanks(t *testing.T) {
	global := Box3(0, 0, 0, 99, 99, 99)
	d, err := NewDecomposition(global, []int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	all := d.OwnerRanks(global)
	if len(all) != 8 {
		t.Fatalf("global query found %d owners", len(all))
	}
	one := d.OwnerRanks(Box3(0, 0, 0, 10, 10, 10))
	if len(one) != 1 || one[0] != 0 {
		t.Fatalf("corner query owners = %v", one)
	}
}

func TestSubset(t *testing.T) {
	g := Box3(0, 0, 0, 511, 511, 255)
	for _, frac := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		s := Subset(g, frac)
		ratio := float64(s.Volume()) / float64(g.Volume())
		if ratio < frac-0.01 || ratio > frac+0.01 {
			t.Fatalf("frac %.1f gave ratio %.3f", frac, ratio)
		}
	}
	if !Subset(g, 1.5).Equal(g) {
		t.Fatal("frac > 1 should clamp to global")
	}
	if !Subset(g, -1).IsEmpty() {
		t.Fatal("non-positive frac should be empty")
	}
	tiny := Subset(g, 1e-9)
	if tiny.Extent(2) != 1 {
		t.Fatal("tiny frac should keep at least one plane")
	}
}

func TestRankCoordsRoundTrip(t *testing.T) {
	g := Box3(0, 0, 0, 63, 63, 63)
	d, _ := NewDecomposition(g, []int{4, 2, 8})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		r := rng.Intn(d.NRanks)
		c := d.rankCoords(r)
		flat := (c[0]*d.Procs[1]+c[1])*d.Procs[2] + c[2]
		if flat != r {
			t.Fatalf("coords round trip failed: %d -> %v -> %d", r, c, flat)
		}
	}
}

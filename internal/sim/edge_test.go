package sim

import (
	"errors"
	"testing"
	"time"
)

func TestInterruptResourceWait(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, 1)
	var victim *Proc
	var gotErr error
	env.Spawn("holder", func(p *Proc) {
		_ = res.Acquire(p, 1)
		_ = p.Sleep(time.Hour) // holds past the run limit
		res.Release(1)
	})
	victim = env.Spawn("victim", func(p *Proc) {
		gotErr = res.Acquire(p, 1)
	})
	env.Spawn("killer", func(p *Proc) {
		_ = p.Sleep(time.Second)
		env.Interrupt(victim)
	})
	if err := env.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(gotErr, ErrInterrupted) {
		t.Fatalf("victim err = %v", gotErr)
	}
	// An interrupted waiter must not hold units.
	if res.InUse() != 1 {
		t.Fatalf("inUse = %d, want 1 (holder only)", res.InUse())
	}
}

func TestInterruptedWaiterDoesNotStealGrant(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, 1)
	var second *Proc
	order := []string{}
	env.Spawn("holder", func(p *Proc) {
		_ = res.Acquire(p, 1)
		_ = p.Sleep(10 * time.Second)
		res.Release(1)
	})
	second = env.Spawn("second", func(p *Proc) {
		if err := res.Acquire(p, 1); err != nil {
			order = append(order, "second-interrupted")
			return
		}
		order = append(order, "second-got")
		res.Release(1)
	})
	env.Spawn("third", func(p *Proc) {
		_ = p.Sleep(time.Second)
		if err := res.Acquire(p, 1); err != nil {
			return
		}
		order = append(order, "third-got")
		res.Release(1)
	})
	env.Spawn("killer", func(p *Proc) {
		_ = p.Sleep(2 * time.Second)
		env.Interrupt(second)
	})
	if err := env.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "second-interrupted" || order[1] != "third-got" {
		t.Fatalf("order = %v", order)
	}
}

func TestMailboxInterruptLeavesQueueConsistent(t *testing.T) {
	env := NewEnv()
	mb := NewMailbox[int](env)
	var a, b *Proc
	var bGot int
	a = env.Spawn("a", func(p *Proc) {
		if _, err := mb.Recv(p); !errors.Is(err, ErrInterrupted) {
			t.Errorf("a: %v", err)
		}
	})
	b = env.Spawn("b", func(p *Proc) {
		_ = p.Sleep(2 * time.Second)
		v, err := mb.Recv(p)
		if err != nil {
			t.Errorf("b: %v", err)
			return
		}
		bGot = v
	})
	env.Spawn("driver", func(p *Proc) {
		_ = p.Sleep(time.Second)
		env.Interrupt(a)
		_ = p.Sleep(2 * time.Second)
		mb.Send(42) // must reach b, not the cancelled waiter a
	})
	_ = b
	if err := env.Run(0); err != nil {
		t.Fatal(err)
	}
	if bGot != 42 {
		t.Fatalf("b got %d", bGot)
	}
}

func TestRunLimitExactBoundary(t *testing.T) {
	env := NewEnv()
	fired := false
	env.Spawn("p", func(p *Proc) {
		_ = p.Sleep(3 * time.Second)
		fired = true
	})
	// An event exactly AT the limit fires (limit is exclusive beyond).
	if err := env.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("event at the limit did not fire")
	}
}

func TestProcNameAndEnvAccessors(t *testing.T) {
	env := NewEnv()
	p := env.Spawn("worker", func(p *Proc) {
		if p.Name() != "worker" || p.Env() != env {
			t.Error("accessors wrong")
		}
	})
	_ = p
	if err := env.Run(0); err != nil {
		t.Fatal(err)
	}
}

package sim

import (
	"fmt"
	"time"
)

// Resource is a counting semaphore with a FIFO wait queue, used to model
// contended hardware: staging server service slots, PFS I/O streams,
// network links.
type Resource struct {
	env      *Env
	capacity int64
	inUse    int64
	waiters  []*resWaiter
}

type resWaiter struct {
	p       *Proc
	n       int64
	granted bool
	gone    bool
}

// NewResource creates a resource with the given capacity (> 0).
func NewResource(env *Env, capacity int64) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{env: env, capacity: capacity}
}

// InUse reports the currently held units.
func (r *Resource) InUse() int64 { return r.inUse }

// Acquire obtains n units, blocking FIFO until available. It returns
// ErrInterrupted if the process is interrupted while waiting, in which
// case no units are held.
func (r *Resource) Acquire(p *Proc, n int64) error {
	if n <= 0 || n > r.capacity {
		panic(fmt.Sprintf("sim: acquire %d of capacity %d", n, r.capacity))
	}
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.inUse += n
		return nil
	}
	w := &resWaiter{p: p, n: n}
	r.waiters = append(r.waiters, w)
	p.cancelWait = func() bool {
		if w.gone || w.granted {
			return false
		}
		w.gone = true
		return true
	}
	if p.park() {
		return ErrInterrupted
	}
	return nil
}

// Release returns n units and grants as many FIFO waiters as now fit.
func (r *Resource) Release(n int64) {
	r.inUse -= n
	if r.inUse < 0 {
		panic("sim: release of units never acquired")
	}
	r.grant()
}

func (r *Resource) grant() {
	for len(r.waiters) > 0 {
		w := r.waiters[0]
		if w.gone {
			r.waiters = r.waiters[1:]
			continue
		}
		if r.inUse+w.n > r.capacity {
			return // strict FIFO: do not let smaller requests jump the queue
		}
		r.waiters = r.waiters[1:]
		w.granted = true
		r.inUse += w.n
		r.env.schedule(w.p, r.env.now, false)
	}
}

// Bandwidth models a shared byte pipe of fixed aggregate rate with FIFO
// service, such as the Lustre PFS link checkpoints are written to or a
// staging server's ingest link. Concurrent transfers serialize, so N
// equal-size concurrent writers each observe ~N× the isolated transfer
// time — the same aggregate completion time as fair sharing, which is
// the quantity the paper's execution-time figures depend on.
type Bandwidth struct {
	res         *Resource
	bytesPerSec float64
	latency     time.Duration
}

// NewBandwidth creates a pipe with the given rate and per-transfer
// latency. Rate must be positive.
func NewBandwidth(env *Env, bytesPerSec float64, latency time.Duration) *Bandwidth {
	if bytesPerSec <= 0 {
		panic("sim: bandwidth must be positive")
	}
	return &Bandwidth{res: NewResource(env, 1), bytesPerSec: bytesPerSec, latency: latency}
}

// TransferTime returns the service time for a transfer of the given
// size, excluding queueing.
func (b *Bandwidth) TransferTime(bytes int64) time.Duration {
	return b.latency + time.Duration(float64(bytes)/b.bytesPerSec*float64(time.Second))
}

// Transfer moves bytes through the pipe, blocking for queueing plus
// service time. It is interrupt-safe: an interrupt during service
// releases the pipe.
func (b *Bandwidth) Transfer(p *Proc, bytes int64) error {
	if bytes < 0 {
		panic("sim: negative transfer size")
	}
	if err := b.res.Acquire(p, 1); err != nil {
		return err
	}
	err := p.Sleep(b.TransferTime(bytes))
	b.res.Release(1)
	return err
}

// Package sim is a deterministic discrete-event simulation kernel.
//
// The paper's evaluation measures total workflow execution time on up to
// 11,264 Cori cores. This repository reproduces those experiments by
// running the actual crash-consistency protocol (the internal/wlog state
// machine, the checkpoint engines, the failure injector) on a virtual
// clock instead of Cray hardware. sim provides the kernel: processes are
// goroutines scheduled cooperatively one at a time, so a run is fully
// deterministic given its inputs; simulated time advances only through
// the event queue.
//
// Primitives:
//
//   - Env.Spawn starts a process; Env.Run drives the event loop.
//   - Proc.Sleep advances a process's virtual time.
//   - Mailbox is an unbounded FIFO channel between processes.
//   - Resource is a counting semaphore with a FIFO wait queue; Bandwidth
//     models a shared byte pipe (PFS or staging link) on top of it.
//   - Env.Interrupt cancels a process's current wait, which is how
//     fail-stop process failures are injected mid-computation.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// ErrInterrupted is returned from a blocking primitive when the waiting
// process was interrupted (e.g. by an injected failure).
var ErrInterrupted = errors.New("sim: interrupted")

// ErrDeadlock is returned by Run when no events remain but processes are
// still blocked on mailboxes or resources.
var ErrDeadlock = errors.New("sim: deadlock: processes blocked with empty event queue")

type event struct {
	at          time.Duration
	seq         uint64
	p           *Proc
	interrupted bool
	canceled    bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)    { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)      { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any        { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h *eventHeap) pushEv(e *event) { heap.Push(h, e) }
func (h *eventHeap) popEv() *event   { return heap.Pop(h).(*event) }

// Env is a simulation environment: one virtual clock and one event queue.
// An Env and all its processes must be driven from a single Run call;
// processes themselves may only use the environment through their Proc.
type Env struct {
	now    time.Duration
	seq    uint64
	queue  eventHeap
	parked chan struct{}
	alive  int
	nextID int
}

// NewEnv returns an empty environment at virtual time zero.
func NewEnv() *Env {
	return &Env{parked: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Env) Now() time.Duration { return e.now }

func (e *Env) schedule(p *Proc, at time.Duration, interrupted bool) *event {
	e.seq++
	ev := &event{at: at, seq: e.seq, p: p, interrupted: interrupted}
	e.queue.pushEv(ev)
	return ev
}

// Proc is a simulated process. Its body function runs on a dedicated
// goroutine but only ever executes while it holds the scheduler token,
// so no locking is needed inside process bodies.
type Proc struct {
	env    *Env
	id     int
	name   string
	resume chan bool
	// cancelWait removes the process from whatever wait list it is
	// parked on; nil when the process is runnable. Used by Interrupt.
	cancelWait func() bool
	done       bool
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Env returns the owning environment.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.env.now }

// Spawn creates a process named name running fn and schedules it to
// start at the current virtual time. It may be called before Run or from
// inside a running process.
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	e.nextID++
	p := &Proc{env: e, id: e.nextID, name: name, resume: make(chan bool)}
	e.alive++
	e.schedule(p, e.now, false)
	go func() {
		<-p.resume // wait for the start event
		defer func() {
			p.done = true
			e.alive--
			e.parked <- struct{}{}
		}()
		fn(p)
	}()
	return p
}

// park hands the token back to the scheduler and blocks until this
// process is woken again. Returns true if the wake was an interrupt.
func (p *Proc) park() bool {
	p.env.parked <- struct{}{}
	intr := <-p.resume
	p.cancelWait = nil
	return intr
}

// Sleep advances the process's virtual time by d (clamped to >= 0).
// It returns ErrInterrupted if the process is interrupted mid-sleep.
func (p *Proc) Sleep(d time.Duration) error {
	if d < 0 {
		d = 0
	}
	ev := p.env.schedule(p, p.env.now+d, false)
	p.cancelWait = func() bool {
		if ev.canceled {
			return false
		}
		ev.canceled = true
		return true
	}
	if p.park() {
		return ErrInterrupted
	}
	return nil
}

// Interrupt cancels p's current wait (sleep, mailbox receive, or
// resource acquire) and wakes it with ErrInterrupted at the current
// virtual time. Interrupting a runnable or finished process is a no-op
// and returns false.
func (e *Env) Interrupt(p *Proc) bool {
	if p.done || p.cancelWait == nil {
		return false
	}
	if !p.cancelWait() {
		return false
	}
	p.cancelWait = nil
	e.schedule(p, e.now, true)
	return true
}

// Run drives the event loop until no events remain or until limit (if
// positive) would be exceeded. It returns ErrDeadlock if processes are
// still blocked when the queue drains.
func (e *Env) Run(limit time.Duration) error {
	for e.queue.Len() > 0 {
		ev := e.queue.popEv()
		if ev.canceled {
			continue
		}
		if limit > 0 && ev.at > limit {
			// Put it back for a later Run and stop at the limit.
			e.queue.pushEv(ev)
			e.now = limit
			return nil
		}
		if ev.at < e.now {
			panic(fmt.Sprintf("sim: event at %v in the past (now %v)", ev.at, e.now))
		}
		e.now = ev.at
		ev.p.resume <- ev.interrupted
		<-e.parked
	}
	if e.alive > 0 {
		return fmt.Errorf("%w (%d alive)", ErrDeadlock, e.alive)
	}
	return nil
}

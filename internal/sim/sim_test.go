package sim

import (
	"errors"
	"testing"
	"time"
)

func TestSleepAdvancesClock(t *testing.T) {
	env := NewEnv()
	var woke time.Duration
	env.Spawn("sleeper", func(p *Proc) {
		if err := p.Sleep(5 * time.Second); err != nil {
			t.Errorf("sleep: %v", err)
		}
		woke = p.Now()
	})
	if err := env.Run(0); err != nil {
		t.Fatal(err)
	}
	if woke != 5*time.Second {
		t.Fatalf("woke at %v", woke)
	}
	if env.Now() != 5*time.Second {
		t.Fatalf("env now %v", env.Now())
	}
}

func TestNegativeSleepClamps(t *testing.T) {
	env := NewEnv()
	env.Spawn("p", func(p *Proc) {
		if err := p.Sleep(-time.Second); err != nil {
			t.Errorf("sleep: %v", err)
		}
		if p.Now() != 0 {
			t.Errorf("now = %v", p.Now())
		}
	})
	if err := env.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() []string {
		env := NewEnv()
		var order []string
		for _, n := range []string{"a", "b", "c"} {
			name := n
			env.Spawn(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					if err := p.Sleep(time.Second); err != nil {
						return
					}
					order = append(order, name)
				}
			})
		}
		if err := env.Run(0); err != nil {
			t.Fatal(err)
		}
		return order
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); len(got) != len(first) {
			t.Fatal("nondeterministic length")
		} else {
			for j := range got {
				if got[j] != first[j] {
					t.Fatalf("run differs at %d: %v vs %v", j, got, first)
				}
			}
		}
	}
	// Same-time events fire in spawn order.
	want := []string{"a", "b", "c", "a", "b", "c", "a", "b", "c"}
	for i, w := range want {
		if first[i] != w {
			t.Fatalf("order = %v", first)
		}
	}
}

func TestMailboxRendezvous(t *testing.T) {
	env := NewEnv()
	mb := NewMailbox[int](env)
	var got []int
	env.Spawn("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			v, err := mb.Recv(p)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			got = append(got, v)
		}
	})
	env.Spawn("send", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			if err := p.Sleep(time.Second); err != nil {
				return
			}
			mb.Send(i * 10)
		}
	})
	if err := env.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("got %v", got)
	}
}

func TestMailboxBuffersWhenNoWaiter(t *testing.T) {
	env := NewEnv()
	mb := NewMailbox[string](env)
	env.Spawn("send", func(p *Proc) {
		mb.Send("x")
		mb.Send("y")
	})
	env.Spawn("recv", func(p *Proc) {
		if err := p.Sleep(time.Second); err != nil {
			return
		}
		a, _ := mb.Recv(p)
		b, _ := mb.Recv(p)
		if a != "x" || b != "y" {
			t.Errorf("got %q %q", a, b)
		}
	})
	if err := env.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestTryRecv(t *testing.T) {
	env := NewEnv()
	mb := NewMailbox[int](env)
	if _, ok := mb.TryRecv(); ok {
		t.Fatal("TryRecv on empty succeeded")
	}
	mb.Send(7)
	if v, ok := mb.TryRecv(); !ok || v != 7 {
		t.Fatalf("TryRecv = %d,%v", v, ok)
	}
}

func TestResourceFIFOContention(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, 1)
	var finish []time.Duration
	for i := 0; i < 3; i++ {
		env.Spawn("w", func(p *Proc) {
			if err := res.Acquire(p, 1); err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			if err := p.Sleep(10 * time.Second); err != nil {
				return
			}
			res.Release(1)
			finish = append(finish, p.Now())
		})
	}
	if err := env.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{10 * time.Second, 20 * time.Second, 30 * time.Second}
	for i, w := range want {
		if finish[i] != w {
			t.Fatalf("finish times %v", finish)
		}
	}
}

func TestBandwidthSharing(t *testing.T) {
	env := NewEnv()
	bw := NewBandwidth(env, 100, 0) // 100 B/s
	var last time.Duration
	for i := 0; i < 4; i++ {
		env.Spawn("xfer", func(p *Proc) {
			if err := bw.Transfer(p, 100); err != nil {
				t.Errorf("transfer: %v", err)
			}
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	if err := env.Run(0); err != nil {
		t.Fatal(err)
	}
	if last != 4*time.Second {
		t.Fatalf("4 concurrent 1s transfers finished at %v, want 4s", last)
	}
}

func TestInterruptSleep(t *testing.T) {
	env := NewEnv()
	var target *Proc
	var gotErr error
	target = env.Spawn("victim", func(p *Proc) {
		gotErr = p.Sleep(time.Hour)
	})
	env.Spawn("killer", func(p *Proc) {
		if err := p.Sleep(time.Second); err != nil {
			return
		}
		if !env.Interrupt(target) {
			t.Error("interrupt failed")
		}
	})
	if err := env.Run(0); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(gotErr, ErrInterrupted) {
		t.Fatalf("victim error = %v", gotErr)
	}
	if env.Now() != time.Second {
		t.Fatalf("clock ran to %v despite interrupt", env.Now())
	}
}

func TestInterruptMailboxWait(t *testing.T) {
	env := NewEnv()
	mb := NewMailbox[int](env)
	var target *Proc
	var gotErr error
	target = env.Spawn("victim", func(p *Proc) {
		_, gotErr = mb.Recv(p)
	})
	env.Spawn("killer", func(p *Proc) {
		if err := p.Sleep(time.Second); err != nil {
			return
		}
		env.Interrupt(target)
	})
	if err := env.Run(0); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(gotErr, ErrInterrupted) {
		t.Fatalf("victim error = %v", gotErr)
	}
}

func TestInterruptRunnableIsNoop(t *testing.T) {
	env := NewEnv()
	done := false
	p1 := env.Spawn("p1", func(p *Proc) {
		if err := p.Sleep(time.Second); err != nil {
			t.Error("p1 interrupted")
		}
		done = true
	})
	env.Spawn("p2", func(p *Proc) {
		if err := p.Sleep(2 * time.Second); err != nil {
			return
		}
		if env.Interrupt(p1) {
			t.Error("interrupt of finished proc succeeded")
		}
	})
	if err := env.Run(0); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("p1 never finished")
	}
}

func TestDeadlockDetection(t *testing.T) {
	env := NewEnv()
	mb := NewMailbox[int](env)
	env.Spawn("stuck", func(p *Proc) {
		_, _ = mb.Recv(p) // nobody ever sends
	})
	err := env.Run(0)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestRunLimitStopsAndResumes(t *testing.T) {
	env := NewEnv()
	var count int
	env.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 10; i++ {
			if err := p.Sleep(time.Second); err != nil {
				return
			}
			count++
		}
	})
	if err := env.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if count != 3 || env.Now() != 3*time.Second {
		t.Fatalf("after limited run: count=%d now=%v", count, env.Now())
	}
	if err := env.Run(0); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("final count = %d", count)
	}
}

func TestSpawnFromProcess(t *testing.T) {
	env := NewEnv()
	var childRan bool
	env.Spawn("parent", func(p *Proc) {
		if err := p.Sleep(time.Second); err != nil {
			return
		}
		env.Spawn("child", func(c *Proc) {
			if c.Now() != time.Second {
				t.Errorf("child started at %v", c.Now())
			}
			childRan = true
		})
		if err := p.Sleep(time.Second); err != nil {
			return
		}
	})
	if err := env.Run(0); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Fatal("child never ran")
	}
}

func TestResourceStrictFIFO(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, 2)
	var order []string
	env.Spawn("big-holder", func(p *Proc) {
		_ = res.Acquire(p, 2)
		_ = p.Sleep(10 * time.Second)
		res.Release(2)
	})
	env.Spawn("wants2", func(p *Proc) {
		_ = p.Sleep(time.Second)
		_ = res.Acquire(p, 2)
		order = append(order, "wants2")
		res.Release(2)
	})
	env.Spawn("wants1", func(p *Proc) {
		_ = p.Sleep(2 * time.Second)
		_ = res.Acquire(p, 1)
		order = append(order, "wants1")
		res.Release(1)
	})
	if err := env.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "wants2" {
		t.Fatalf("order = %v, want wants2 first (strict FIFO)", order)
	}
}

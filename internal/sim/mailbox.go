package sim

// Mailbox is an unbounded FIFO message queue between simulated
// processes. Send never blocks; Recv blocks until a message arrives.
// Delivery order is send order, and a blocked receiver is woken in FIFO
// order with one message reserved for it.
type Mailbox[T any] struct {
	env     *Env
	q       []T
	waiters []*mboxWaiter[T]
}

type mboxWaiter[T any] struct {
	p     *Proc
	v     T
	valid bool
	gone  bool
}

// NewMailbox creates a mailbox owned by env.
func NewMailbox[T any](env *Env) *Mailbox[T] {
	return &Mailbox[T]{env: env}
}

// Len reports the number of queued (undelivered, unreserved) messages.
func (m *Mailbox[T]) Len() int { return len(m.q) }

// Send enqueues v, waking the oldest blocked receiver if any. The
// receiver resumes at the current virtual time; model link latency by
// sleeping before Send or after Recv.
func (m *Mailbox[T]) Send(v T) {
	for len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		if w.gone {
			continue
		}
		w.v = v
		w.valid = true
		m.env.schedule(w.p, m.env.now, false)
		return
	}
	m.q = append(m.q, v)
}

// Recv returns the next message, blocking until one is available. It
// returns ErrInterrupted if the waiting process is interrupted.
func (m *Mailbox[T]) Recv(p *Proc) (T, error) {
	if len(m.q) > 0 {
		v := m.q[0]
		m.q = m.q[1:]
		return v, nil
	}
	w := &mboxWaiter[T]{p: p}
	m.waiters = append(m.waiters, w)
	p.cancelWait = func() bool {
		if w.gone || w.valid {
			return false
		}
		w.gone = true
		return true
	}
	if p.park() {
		var zero T
		return zero, ErrInterrupted
	}
	return w.v, nil
}

// TryRecv returns a queued message without blocking.
func (m *Mailbox[T]) TryRecv() (T, bool) {
	if len(m.q) == 0 {
		var zero T
		return zero, false
	}
	v := m.q[0]
	m.q = m.q[1:]
	return v, true
}

package corec

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"gospaces/internal/domain"
	"gospaces/internal/staging"
	"gospaces/internal/transport"
)

// failingClient wraps a transport client and fails every call when
// tripped, simulating a dead staging server.
type failingClient struct {
	transport.Client
	dead bool
}

func (f *failingClient) Call(req any) (any, error) {
	if f.dead {
		return nil, fmt.Errorf("server down")
	}
	return f.Client.Call(req)
}

func newTestConns(t *testing.T, n int) []*failingClient {
	t.Helper()
	tr := transport.NewInProc()
	g, err := staging.StartGroup(tr, "corec", staging.Config{
		Global:   domain.Box3(0, 0, 0, 7, 7, 7),
		NServers: n,
		Bits:     2,
		ElemSize: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	cl, err := g.NewClient("corec/0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	conns := make([]*failingClient, n)
	for i := 0; i < n; i++ {
		conns[i] = &failingClient{Client: cl.ShardConn(i)}
	}
	return conns
}

func asTransport(fc []*failingClient) []transport.Client {
	out := make([]transport.Client, len(fc))
	for i, c := range fc {
		out[i] = c
	}
	return out
}

func payload(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestConfigValidation(t *testing.T) {
	conns := asTransport(newTestConns(t, 4))
	if _, err := New(Config{Mode: Replication, Replicas: 0}, conns); err == nil {
		t.Fatal("0 replicas accepted")
	}
	if _, err := New(Config{Mode: Replication, Replicas: 9}, conns); err == nil {
		t.Fatal("too many replicas accepted")
	}
	if _, err := New(Config{Mode: ErasureCoding, K: 3, M: 2}, conns); err == nil {
		t.Fatal("k+m exceeding servers accepted")
	}
	if _, err := New(Config{Mode: Mode(42)}, conns); err == nil {
		t.Fatal("bad mode accepted")
	}
}

func TestReplicationRoundTripAndDegradedRead(t *testing.T) {
	fc := newTestConns(t, 4)
	c, err := New(Config{Mode: Replication, Replicas: 2}, asTransport(fc))
	if err != nil {
		t.Fatal(err)
	}
	data := payload(5000, 1)
	if err := c.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("obj")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip: %v", err)
	}
	// Kill the home server: the replica must serve the read.
	fc[c.server("obj", 0)].dead = true
	got, err = c.Get("obj")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("degraded read: %v", err)
	}
	// Kill both: unavailable.
	fc[c.server("obj", 1)].dead = true
	if _, err := c.Get("obj"); err != ErrUnavailable {
		t.Fatalf("err = %v", err)
	}
}

func TestErasureRoundTripAndDegradedRead(t *testing.T) {
	fc := newTestConns(t, 6)
	c, err := New(Config{Mode: ErasureCoding, K: 4, M: 2}, asTransport(fc))
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{0, 1, 100, 9973} {
		key := fmt.Sprintf("obj%d", size)
		data := payload(size, int64(size))
		if err := c.Put(key, data); err != nil {
			t.Fatal(err)
		}
		got, err := c.Get(key)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("size %d: %v", size, err)
		}
	}
	// Two server losses are survivable with m=2.
	data := payload(9973, 9973)
	fc[c.server("obj9973", 0)].dead = true
	fc[c.server("obj9973", 5)].dead = true
	got, err := c.Get("obj9973")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("degraded: %v", err)
	}
	// Three losses are not.
	fc[c.server("obj9973", 2)].dead = true
	if _, err := c.Get("obj9973"); err != ErrUnavailable {
		t.Fatalf("err = %v", err)
	}
}

func TestErasureRebuildRestoresRedundancy(t *testing.T) {
	fc := newTestConns(t, 6)
	c, _ := New(Config{Mode: ErasureCoding, K: 4, M: 2}, asTransport(fc))
	data := payload(4096, 7)
	if err := c.Put("k", data); err != nil {
		t.Fatal(err)
	}
	// Server holding shard 1 dies and is replaced empty.
	lost := c.server("k", 1)
	fc[lost].dead = true
	if _, err := c.Rebuild("k"); err == nil {
		// rebuild with a dead server cannot write to it; bring up the
		// replacement first
		t.Log("rebuild while down tolerated (wrote other shards)")
	}
	fc[lost].dead = false
	if _, err := fc[lost].Call(staging.ShardDropReq{Key: "k"}); err != nil {
		t.Fatal(err)
	}
	restored, err := c.Rebuild("k")
	if err != nil {
		t.Fatal(err)
	}
	if restored <= 0 {
		t.Fatalf("restored = %d bytes", restored)
	}
	// A second pass finds redundancy intact and writes nothing.
	if again, err := c.Rebuild("k"); err != nil || again != 0 {
		t.Fatalf("idempotent rebuild: %d bytes, %v", again, err)
	}
	// Now lose two OTHER servers; the rebuilt shard must carry its weight.
	fc[c.server("k", 0)].dead = true
	fc[c.server("k", 3)].dead = true
	got, err := c.Get("k")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("post-rebuild degraded read: %v", err)
	}
}

func TestReplicationRebuild(t *testing.T) {
	fc := newTestConns(t, 4)
	c, _ := New(Config{Mode: Replication, Replicas: 2}, asTransport(fc))
	data := payload(100, 3)
	if err := c.Put("k", data); err != nil {
		t.Fatal(err)
	}
	// Drop replica 0, rebuild from replica 1.
	s0 := c.server("k", 0)
	if _, err := fc[s0].Call(staging.ShardDropReq{Key: "k"}); err != nil {
		t.Fatal(err)
	}
	if restored, err := c.Rebuild("k"); err != nil || restored != int64(len(data)) {
		t.Fatalf("restored %d bytes, err %v", restored, err)
	}
	// Kill replica 1; replica 0 must now hold a copy.
	fc[c.server("k", 1)].dead = true
	got, err := c.Get("k")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("rebuilt replica read: %v", err)
	}
}

func TestDrop(t *testing.T) {
	fc := newTestConns(t, 6)
	c, _ := New(Config{Mode: ErasureCoding, K: 4, M: 2}, asTransport(fc))
	if err := c.Put("k", payload(64, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Drop("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("k"); err != ErrUnavailable {
		t.Fatalf("err = %v", err)
	}
}

func TestStorageOverhead(t *testing.T) {
	conns := asTransport(newTestConns(t, 6))
	rep, _ := New(Config{Mode: Replication, Replicas: 3}, conns)
	if rep.StorageOverhead() != 3 {
		t.Fatalf("replication overhead = %f", rep.StorageOverhead())
	}
	ecc, _ := New(Config{Mode: ErasureCoding, K: 4, M: 2}, conns)
	if ecc.StorageOverhead() != 1.5 {
		t.Fatalf("ec overhead = %f", ecc.StorageOverhead())
	}
}

func TestUnframeCorruption(t *testing.T) {
	if _, err := unframe([]byte{1, 2}); err == nil {
		t.Fatal("short frame accepted")
	}
	bad := frame([]byte("xy"))
	bad[7] = 0xFF
	if _, err := unframe(bad); err == nil {
		t.Fatal("corrupt header accepted")
	}
}

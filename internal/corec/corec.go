// Package corec provides data resilience for the staging area, after
// CoREC (Duan et al., IPDPS'18), the DataSpaces branch the paper builds
// on. Staged payloads — including the event log's retained versions —
// survive staging-server failures through either replication or
// systematic Reed–Solomon erasure coding, with degraded reads while a
// server is down and explicit rebuild onto a replacement.
//
// The layer is client-driven: shards are placed on staging servers
// through the shard RPCs of internal/staging, so it composes with any
// transport.
package corec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"

	"gospaces/internal/ec"
	"gospaces/internal/staging"
	"gospaces/internal/transport"
)

// Mode selects the redundancy scheme.
type Mode int

// Redundancy schemes.
const (
	// Replication stores full copies on distinct servers.
	Replication Mode = iota
	// ErasureCoding stores k data + m parity shards on distinct servers.
	ErasureCoding
)

// ErrUnavailable is returned when too few servers hold the object to
// reconstruct it.
var ErrUnavailable = errors.New("corec: object unavailable: too many shards lost")

// Config describes the redundancy geometry.
type Config struct {
	Mode Mode
	// Replicas is the copy count in Replication mode (>= 1).
	Replicas int
	// K and M are the erasure geometry in ErasureCoding mode.
	K, M int
}

// Client stores and retrieves resilient objects over a set of staging
// server connections.
type Client struct {
	cfg   Config
	coder *ec.Coder
	conns []transport.Client
}

// New creates a resilience client over the given server connections.
func New(cfg Config, conns []transport.Client) (*Client, error) {
	n := len(conns)
	switch cfg.Mode {
	case Replication:
		if cfg.Replicas < 1 || cfg.Replicas > n {
			return nil, fmt.Errorf("corec: %d replicas over %d servers", cfg.Replicas, n)
		}
		return &Client{cfg: cfg, conns: conns}, nil
	case ErasureCoding:
		if cfg.K+cfg.M > n {
			return nil, fmt.Errorf("corec: k+m=%d shards over %d servers", cfg.K+cfg.M, n)
		}
		coder, err := ec.NewCoder(cfg.K, cfg.M)
		if err != nil {
			return nil, err
		}
		return &Client{cfg: cfg, coder: coder, conns: conns}, nil
	default:
		return nil, fmt.Errorf("corec: unknown mode %d", cfg.Mode)
	}
}

// home returns the first server index for key placement.
func (c *Client) home(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(len(c.conns)))
}

// server returns the i-th placement server for key.
func (c *Client) server(key string, i int) int {
	return (c.home(key) + i) % len(c.conns)
}

// frame prepends the payload length so erasure padding can be stripped
// after reconstruction.
func frame(data []byte) []byte {
	out := make([]byte, 8+len(data))
	binary.BigEndian.PutUint64(out, uint64(len(data)))
	copy(out[8:], data)
	return out
}

func unframe(framed []byte) ([]byte, error) {
	if len(framed) < 8 {
		return nil, errors.New("corec: framed payload too short")
	}
	n := binary.BigEndian.Uint64(framed)
	if n > uint64(len(framed)-8) {
		return nil, errors.New("corec: corrupt length header")
	}
	return framed[8 : 8+n], nil
}

// Put stores data resiliently under key.
func (c *Client) Put(key string, data []byte) error {
	switch c.cfg.Mode {
	case Replication:
		for i := 0; i < c.cfg.Replicas; i++ {
			s := c.server(key, i)
			if _, err := c.conns[s].Call(staging.ShardPutReq{Key: key, Shard: i, Data: data}); err != nil {
				return fmt.Errorf("corec: replica %d on server %d: %w", i, s, err)
			}
		}
		return nil
	default: // ErasureCoding
		shards, err := c.coder.Encode(c.coder.Split(frame(data)))
		if err != nil {
			return err
		}
		for i, shard := range shards {
			s := c.server(key, i)
			if _, err := c.conns[s].Call(staging.ShardPutReq{Key: key, Shard: i, Data: shard}); err != nil {
				return fmt.Errorf("corec: shard %d on server %d: %w", i, s, err)
			}
		}
		return nil
	}
}

// fetch returns shard i of key, or (nil, nil) when the server is
// unreachable or the shard is absent — degraded-read tolerance.
// rebuild marks fetches issued by re-protection so the server's QoS
// layer schedules them on the recovery lane, not the foreground lane.
func (c *Client) fetch(key string, i int, rebuild bool) ([]byte, error) {
	s := c.server(key, i)
	raw, err := c.conns[s].Call(staging.ShardGetReq{Key: key, Shard: i, Rebuild: rebuild})
	if err != nil {
		return nil, nil // treat as lost shard
	}
	resp, ok := raw.(staging.ShardGetResp)
	if !ok || !resp.Found {
		return nil, nil
	}
	return resp.Data, nil
}

// Get retrieves the object, performing a degraded read if servers are
// down: any replica, or any K of the K+M shards, suffices.
func (c *Client) Get(key string) ([]byte, error) {
	switch c.cfg.Mode {
	case Replication:
		for i := 0; i < c.cfg.Replicas; i++ {
			if d, _ := c.fetch(key, i, false); d != nil {
				return d, nil
			}
		}
		return nil, ErrUnavailable
	default:
		n := c.cfg.K + c.cfg.M
		shards := make([][]byte, n)
		have := 0
		for i := 0; i < n && have < c.cfg.K; i++ {
			d, _ := c.fetch(key, i, false)
			if d != nil {
				shards[i] = d
				have++
			}
		}
		if have < c.cfg.K {
			return nil, ErrUnavailable
		}
		if err := c.coder.Reconstruct(shards); err != nil {
			return nil, fmt.Errorf("corec: %w: %v", ErrUnavailable, err)
		}
		framed, err := c.coder.Join(shards[:c.cfg.K], len(shards[0])*c.cfg.K)
		if err != nil {
			return nil, err
		}
		return unframe(framed)
	}
}

// Rebuild re-creates the shards or replicas that lived on a lost server
// after it has been replaced, restoring full redundancy for key. It
// returns the bytes re-written (0 when redundancy was already intact);
// the re-written shards are flagged so servers account them as rebuilt.
func (c *Client) Rebuild(key string) (int64, error) {
	switch c.cfg.Mode {
	case Replication:
		var good []byte
		for i := 0; i < c.cfg.Replicas; i++ {
			if d, _ := c.fetch(key, i, true); d != nil {
				good = d
				break
			}
		}
		if good == nil {
			return 0, ErrUnavailable
		}
		var restored int64
		for i := 0; i < c.cfg.Replicas; i++ {
			if d, _ := c.fetch(key, i, true); d == nil {
				s := c.server(key, i)
				if _, err := c.conns[s].Call(staging.ShardPutReq{Key: key, Shard: i, Data: good, Rebuild: true}); err != nil {
					return restored, err
				}
				restored += int64(len(good))
			}
		}
		return restored, nil
	default:
		n := c.cfg.K + c.cfg.M
		shards := make([][]byte, n)
		var missing []int
		have := 0
		for i := 0; i < n; i++ {
			d, _ := c.fetch(key, i, true)
			if d != nil {
				shards[i] = d
				have++
			} else {
				missing = append(missing, i)
			}
		}
		if have < c.cfg.K {
			return 0, ErrUnavailable
		}
		if len(missing) == 0 {
			return 0, nil
		}
		if err := c.coder.Reconstruct(shards); err != nil {
			return 0, err
		}
		var restored int64
		for _, i := range missing {
			s := c.server(key, i)
			if _, err := c.conns[s].Call(staging.ShardPutReq{Key: key, Shard: i, Data: shards[i], Rebuild: true}); err != nil {
				return restored, err
			}
			restored += int64(len(shards[i]))
		}
		return restored, nil
	}
}

// Drop removes all shards of key.
func (c *Client) Drop(key string) error {
	seen := map[int]bool{}
	count := c.cfg.Replicas
	if c.cfg.Mode == ErasureCoding {
		count = c.cfg.K + c.cfg.M
	}
	for i := 0; i < count; i++ {
		s := c.server(key, i)
		if seen[s] {
			continue
		}
		seen[s] = true
		if _, err := c.conns[s].Call(staging.ShardDropReq{Key: key}); err != nil {
			return err
		}
	}
	return nil
}

// StorageOverhead returns the redundancy factor of the configuration:
// bytes stored per byte of payload. Used by the ablation benchmarks.
func (c *Client) StorageOverhead() float64 {
	if c.cfg.Mode == Replication {
		return float64(c.cfg.Replicas)
	}
	return float64(c.cfg.K+c.cfg.M) / float64(c.cfg.K)
}

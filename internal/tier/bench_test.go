package tier

import (
	"testing"

	"gospaces/internal/pfs"
)

// BenchmarkSpillPromote cycles one 64 KiB logged object through the
// full cold-tier round trip — twin-generation CRC'd records, manifest
// commit, promote, reclaim — the unit of work a spilling put or a
// replay read of a spilled version pays.
func BenchmarkSpillPromote(b *testing.B) {
	tr := New(pfs.NewStore(), "0")
	o := obj("sim/f", 1, 64<<10)
	b.SetBytes(int64(len(o.Data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Version = int64(i + 1)
		if err := tr.Spill(o); err != nil {
			b.Fatal(err)
		}
		if _, err := tr.Promote(o.Name, o.Version); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScrub measures the CRC verification pass over a populated
// tier, per spilled entry.
func BenchmarkScrub(b *testing.B) {
	tr := New(pfs.NewStore(), "0")
	const entries = 64
	for v := int64(1); v <= entries; v++ {
		if err := tr.Spill(obj("sim/f", v, 4<<10)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := tr.Scrub()
		if rep.Lost != 0 || rep.Checked == 0 {
			b.Fatalf("scrub report %+v", rep)
		}
	}
}

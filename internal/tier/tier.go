// Package tier implements the PFS-backed cold tier of the staging
// service: cold object versions are demoted ("spilled") out of staging
// RAM into CRC-checksummed records on checkpoint storage and promoted
// back transparently when a replaying reader asks for them.
//
// Crash atomicity follows the checkpoint design of internal/ckpt. Each
// spilled object is sealed with the same record framing
// (ckpt.SealRecord) and written in two generations, so a single torn
// write or bit flip never loses the record. The set of spilled entries
// lives in a manifest committed by write-temp + rename + marker flip:
// a spill is visible only after its manifest commit, and the caller
// drops the RAM copy only after that, so a crash mid-spill never
// leaves a version half-moved — it is either still resident or
// durably in the tier. Records not reachable from the committed
// manifest are orphans and are garbage-collected on attach.
//
// When the backend fails (ENOSPC, I/O errors) the tier degrades to
// RAM-only mode: spills return the typed *DegradedError and the
// staging server falls back to its normal shed path. A later Scrub
// probes the backend and re-arms the tier, and also walks every
// record, heals single-generation corruption from the surviving twin,
// and reports anything unrecoverable — corruption is always detected
// by CRC, never served as valid data.
package tier

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"

	"gospaces/internal/ckpt"
	"gospaces/internal/domain"
	"gospaces/internal/store"
)

// Backend is the slice of a PFS store the tier needs. Both *pfs.Store
// and *pfs.DirStore satisfy it.
type Backend interface {
	Write(name string, data []byte) error
	Read(name string) ([]byte, bool)
	Rename(old, new string) error
	List(prefix string) []string
	Delete(name string)
}

// DegradedError is returned when the cold tier is unavailable and the
// server is running RAM-only. It wraps the backend fault that tripped
// degradation, when one is known.
type DegradedError struct {
	Cause error
}

func (e *DegradedError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("tier: degraded (RAM-only): %v", e.Cause)
	}
	return "tier: degraded (RAM-only): cold tier unavailable"
}

func (e *DegradedError) Unwrap() error { return e.Cause }

// ErrTierDegraded is the bare degraded sentinel (no specific cause).
var ErrTierDegraded = &DegradedError{}

// Entry is one spilled object record in the manifest.
type Entry struct {
	Key      uint64 // record id; records live at <prefix>o/<key>/g{0,1}
	Name     string
	Version  int64
	BBox     domain.BBox
	ElemSize int
	CRC      uint32 // Castagnoli CRC of the payload (store.Object.CRC)
	Bytes    int64
}

// recBody is the gob body sealed inside a spill record.
type recBody struct {
	Name     string
	Version  int64
	BBox     domain.BBox
	ElemSize int
	CRC      uint32
	Data     []byte
}

// manifest is the gob body sealed inside the manifest record.
type manifest struct {
	NextKey uint64
	Entries []Entry
}

// Stats is a point-in-time tier counter snapshot.
type Stats struct {
	Entries        int
	Bytes          int64
	Spills         int64
	SpillBytes     int64
	Promotes       int64
	PromoteBytes   int64
	ScrubChecked   int64
	ScrubHealed    int64
	ScrubLost      int64
	Degraded       bool
	DegradedEvents int64
}

// ScrubReport summarizes one scrub pass.
type ScrubReport struct {
	Checked int64 // generation records verified
	Healed  int64 // corrupt generations rewritten from the valid twin
	Lost    int64 // entries with no valid generation (detected, dropped)
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Tier is one server's cold tier. Safe for concurrent use.
type Tier struct {
	mu      sync.Mutex
	be      Backend
	prefix  string
	byName  map[string]map[int64][]*Entry
	nextKey uint64
	mseq    uint64
	mgen    int // committed manifest generation, -1 when none

	degraded       bool
	degradedCause  error
	spills         int64
	spillBytes     int64
	promotes       int64
	promoteBytes   int64
	scrubChecked   int64
	scrubHealed    int64
	scrubLost      int64
	degradedEvents int64
	entries        int
	bytes          int64
}

// New attaches a tier rooted at <id> on be, recovering the committed
// manifest (if any) and garbage-collecting orphaned records left by a
// crash between record writes and the manifest commit.
func New(be Backend, id string) *Tier {
	t := &Tier{
		be:     be,
		prefix: fmt.Sprintf("tier/%s/", id),
		byName: make(map[string]map[int64][]*Entry),
		mgen:   -1,
	}
	t.load()
	return t
}

func (t *Tier) recKey(key uint64, gen int) string {
	return fmt.Sprintf("%so/%d/g%d", t.prefix, key, gen)
}
func (t *Tier) manKey(gen int) string { return fmt.Sprintf("%smanifest/g%d", t.prefix, gen) }
func (t *Tier) manCur() string        { return t.prefix + "manifest/cur" }
func (t *Tier) manTmp() string        { return t.prefix + "manifest.tmp" }

// load recovers manifest state on attach. Caller is the constructor;
// no lock needed yet.
func (t *Tier) load() {
	var man manifest
	found := false
	order := []int{0, 1}
	if cur, ok := t.be.Read(t.manCur()); ok && len(cur) == 1 && cur[0] <= 1 {
		order = []int{int(cur[0]), 1 - int(cur[0])}
	}
	var seqs [2]uint64
	var bodies [2][]byte
	var valid [2]bool
	for g := 0; g < 2; g++ {
		if rec, ok := t.be.Read(t.manKey(g)); ok {
			seqs[g], bodies[g], valid[g] = ckpt.OpenRecord(rec)
		}
	}
	if !valid[order[0]] && valid[order[1]] {
		order[0], order[1] = order[1], order[0]
	} else if valid[0] && valid[1] && seqs[order[1]] > seqs[order[0]] && t.mgenFromMarker() < 0 {
		order[0], order[1] = order[1], order[0]
	}
	for _, g := range order {
		if !valid[g] {
			continue
		}
		if err := gob.NewDecoder(bytes.NewReader(bodies[g])).Decode(&man); err != nil {
			continue
		}
		t.mseq = seqs[g]
		t.mgen = g
		found = true
		break
	}
	live := make(map[string]bool)
	if found {
		t.nextKey = man.NextKey
		for i := range man.Entries {
			e := man.Entries[i]
			t.index(&e)
			live[t.recKey(e.Key, 0)] = true
			live[t.recKey(e.Key, 1)] = true
		}
	}
	// Orphan GC: records the committed manifest doesn't reach were
	// abandoned mid-spill (or mid-promote) by a crash.
	for _, name := range t.be.List(t.prefix + "o/") {
		if !live[name] {
			t.be.Delete(name)
		}
	}
	t.be.Delete(t.manTmp())
}

func (t *Tier) mgenFromMarker() int {
	cur, ok := t.be.Read(t.manCur())
	if !ok || len(cur) != 1 || cur[0] > 1 {
		return -1
	}
	return int(cur[0])
}

func (t *Tier) index(e *Entry) {
	vers, ok := t.byName[e.Name]
	if !ok {
		vers = make(map[int64][]*Entry)
		t.byName[e.Name] = vers
	}
	vers[e.Version] = append(vers[e.Version], e)
	t.entries++
	t.bytes += e.Bytes
	if e.Key >= t.nextKey {
		t.nextKey = e.Key + 1
	}
}

func (t *Tier) unindex(e *Entry) {
	vers := t.byName[e.Name]
	list := vers[e.Version]
	for i, x := range list {
		if x.Key == e.Key {
			vers[e.Version] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(vers[e.Version]) == 0 {
		delete(vers, e.Version)
	}
	if len(vers) == 0 {
		delete(t.byName, e.Name)
	}
	t.entries--
	t.bytes -= e.Bytes
}

// commitManifest persists the in-memory entry set: seal, write to the
// temp name, rename into the non-committed generation, flip the
// marker. Caller holds t.mu.
func (t *Tier) commitManifest() error {
	var man manifest
	man.NextKey = t.nextKey
	for _, vers := range t.byName {
		for _, list := range vers {
			for _, e := range list {
				man.Entries = append(man.Entries, *e)
			}
		}
	}
	sort.Slice(man.Entries, func(i, j int) bool { return man.Entries[i].Key < man.Entries[j].Key })
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&man); err != nil {
		return fmt.Errorf("tier: manifest encode: %w", err)
	}
	t.mseq++
	target := 0
	if t.mgen == 0 {
		target = 1
	}
	if err := t.be.Write(t.manTmp(), ckpt.SealRecord(t.mseq, buf.Bytes())); err != nil {
		t.mseq--
		return err
	}
	if err := t.be.Rename(t.manTmp(), t.manKey(target)); err != nil {
		t.mseq--
		return err
	}
	if err := t.be.Write(t.manCur(), []byte{byte(target)}); err != nil {
		// The rename landed but the marker didn't: the old generation
		// is still the committed one. Roll back our view.
		t.mseq--
		return err
	}
	t.mgen = target
	return nil
}

func (t *Tier) degrade(cause error) *DegradedError {
	t.degraded = true
	t.degradedCause = cause
	t.degradedEvents++
	return &DegradedError{Cause: cause}
}

// Spill demotes one resident object into the cold tier. On success the
// entry is durably committed and the caller may drop the RAM copy. A
// backend fault degrades the tier and returns *DegradedError.
func (t *Tier) Spill(o *store.Object) error {
	if o.Data == nil {
		return fmt.Errorf("tier: refusing to spill metadata-only object %s@%d", o.Name, o.Version)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.degraded {
		return &DegradedError{Cause: t.degradedCause}
	}
	body := recBody{
		Name:     o.Name,
		Version:  o.Version,
		BBox:     o.BBox,
		ElemSize: o.ElemSize,
		CRC:      o.CRC,
		Data:     o.Data,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&body); err != nil {
		return fmt.Errorf("tier: spill encode: %w", err)
	}
	key := t.nextKey
	t.nextKey++
	rec := ckpt.SealRecord(key, buf.Bytes())
	for g := 0; g < 2; g++ {
		if err := t.be.Write(t.recKey(key, g), rec); err != nil {
			t.be.Delete(t.recKey(key, 0))
			return t.degrade(err)
		}
	}
	e := &Entry{
		Key:      key,
		Name:     o.Name,
		Version:  o.Version,
		BBox:     o.BBox,
		ElemSize: o.ElemSize,
		CRC:      o.CRC,
		Bytes:    int64(len(o.Data)),
	}
	t.index(e)
	if err := t.commitManifest(); err != nil {
		t.unindex(e)
		t.be.Delete(t.recKey(key, 0))
		t.be.Delete(t.recKey(key, 1))
		return t.degrade(err)
	}
	t.spills++
	t.spillBytes += e.Bytes
	return nil
}

// Has reports whether any entry exists for (name, version).
func (t *Tier) Has(name string, version int64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byName[name][version]) > 0
}

// HasName reports whether any version of name is spilled.
func (t *Tier) HasName(name string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byName[name]) > 0
}

// Versions returns the ascending spilled versions of name.
func (t *Tier) Versions(name string) []int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []int64
	for v := range t.byName[name] {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// readEntry reads and verifies one entry, trying the committed
// generation order. Caller holds t.mu.
func (t *Tier) readEntry(e *Entry) (*store.Object, bool) {
	for g := 0; g < 2; g++ {
		rec, ok := t.be.Read(t.recKey(e.Key, g))
		if !ok {
			continue
		}
		seq, body, ok := ckpt.OpenRecord(rec)
		if !ok || seq != e.Key {
			continue
		}
		var rb recBody
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&rb); err != nil {
			continue
		}
		if rb.Name != e.Name || rb.Version != e.Version {
			continue
		}
		if crc32.Checksum(rb.Data, crcTable) != rb.CRC {
			continue
		}
		return &store.Object{
			Name:     rb.Name,
			Version:  rb.Version,
			BBox:     rb.BBox,
			ElemSize: rb.ElemSize,
			Data:     rb.Data,
			CRC:      rb.CRC,
			Logged:   true,
		}, true
	}
	return nil, false
}

// Promote reads back every spilled object of (name, version), removes
// the entries from the manifest, and returns the objects for
// re-insertion into staging RAM. Entries whose both generations fail
// verification are dropped and counted lost — corruption is detected,
// never returned as data.
func (t *Tier) Promote(name string, version int64) ([]*store.Object, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	list := t.byName[name][version]
	if len(list) == 0 {
		return nil, nil
	}
	var objs []*store.Object
	var promoted []*Entry
	for _, e := range append([]*Entry(nil), list...) {
		o, ok := t.readEntry(e)
		if !ok {
			t.scrubLost++
			t.unindex(e)
			continue
		}
		objs = append(objs, o)
		promoted = append(promoted, e)
	}
	for _, e := range promoted {
		t.unindex(e)
	}
	// Commit the manifest without the promoted entries first; record
	// deletion after the commit at worst leaves orphans for the next
	// attach to collect.
	if err := t.commitManifest(); err != nil {
		// The tier copy is still committed; the caller re-inserts the
		// data into RAM, which is safe (promote is idempotent), but
		// the backend is misbehaving: degrade.
		for _, e := range promoted {
			t.index(e)
		}
		return objs, t.degrade(err)
	}
	for _, e := range promoted {
		t.be.Delete(t.recKey(e.Key, 0))
		t.be.Delete(t.recKey(e.Key, 1))
	}
	for _, o := range objs {
		t.promotes++
		t.promoteBytes += int64(len(o.Data))
	}
	return objs, nil
}

// DropBelow discards spilled versions of name strictly older than
// keep — checkpoint GC extended to the cold tier. It returns payload
// bytes freed.
func (t *Tier) DropBelow(name string, keep int64) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var drop []*Entry
	for v, list := range t.byName[name] {
		if v < keep {
			drop = append(drop, list...)
		}
	}
	if len(drop) == 0 {
		return 0
	}
	var freed int64
	for _, e := range drop {
		t.unindex(e)
		freed += e.Bytes
	}
	if err := t.commitManifest(); err != nil {
		for _, e := range drop {
			t.index(e)
		}
		t.degrade(err)
		return 0
	}
	for _, e := range drop {
		t.be.Delete(t.recKey(e.Key, 0))
		t.be.Delete(t.recKey(e.Key, 1))
	}
	return freed
}

// Reset discards all tier state (records, manifest, degradation) —
// used when a promoted spare installs a dead server's replicated
// state, which supersedes anything the local tier held.
func (t *Tier) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, name := range t.be.List(t.prefix) {
		t.be.Delete(name)
	}
	t.byName = make(map[string]map[int64][]*Entry)
	t.entries = 0
	t.bytes = 0
	t.mgen = -1
	t.mseq = 0
	t.degraded = false
	t.degradedCause = nil
}

// Scrub verifies the CRC of every generation of every spilled record.
// A corrupt generation with a valid twin is rewritten from the twin
// ("re-replicated"); an entry with no valid generation is dropped and
// counted lost. A successful pass over a degraded tier re-arms it —
// scrub doubles as the repair probe.
func (t *Tier) Scrub() ScrubReport {
	t.mu.Lock()
	defer t.mu.Unlock()
	var rep ScrubReport
	var all []*Entry
	for _, vers := range t.byName {
		for _, list := range vers {
			all = append(all, list...)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	healthy := true
	var lost []*Entry
	for _, e := range all {
		var good []byte
		var bad []int
		for g := 0; g < 2; g++ {
			rec, ok := t.be.Read(t.recKey(e.Key, g))
			rep.Checked++
			if !ok {
				bad = append(bad, g)
				continue
			}
			if seq, _, vok := ckpt.OpenRecord(rec); !vok || seq != e.Key {
				bad = append(bad, g)
				continue
			}
			if good == nil {
				good = rec
			}
		}
		if good == nil {
			rep.Lost++
			lost = append(lost, e)
			continue
		}
		for _, g := range bad {
			if err := t.be.Write(t.recKey(e.Key, g), good); err != nil {
				healthy = false
				continue
			}
			rep.Healed++
		}
	}
	for _, e := range lost {
		t.unindex(e)
	}
	if len(lost) > 0 {
		if err := t.commitManifest(); err != nil {
			healthy = false
		} else {
			for _, e := range lost {
				t.be.Delete(t.recKey(e.Key, 0))
				t.be.Delete(t.recKey(e.Key, 1))
			}
		}
	}
	if healthy && t.degraded {
		// Probe the backend before re-arming.
		if err := t.be.Write(t.prefix+"probe", []byte{1}); err == nil {
			t.be.Delete(t.prefix + "probe")
			t.degraded = false
			t.degradedCause = nil
		}
	}
	t.scrubChecked += rep.Checked
	t.scrubHealed += rep.Healed
	t.scrubLost += rep.Lost
	return rep
}

// Degraded reports whether the tier is in RAM-only mode.
func (t *Tier) Degraded() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.degraded
}

// Stats returns a counter snapshot.
func (t *Tier) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return Stats{
		Entries:        t.entries,
		Bytes:          t.bytes,
		Spills:         t.spills,
		SpillBytes:     t.spillBytes,
		Promotes:       t.promotes,
		PromoteBytes:   t.promoteBytes,
		ScrubChecked:   t.scrubChecked,
		ScrubHealed:    t.scrubHealed,
		ScrubLost:      t.scrubLost,
		Degraded:       t.degraded,
		DegradedEvents: t.degradedEvents,
	}
}

package tier

import (
	"bytes"
	"errors"
	"hash/crc32"
	"testing"

	"gospaces/internal/domain"
	"gospaces/internal/pfs"
	"gospaces/internal/store"
)

func obj(name string, version int64, n int) *store.Object {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(int64(i)*7 + version)
	}
	return &store.Object{
		Name:     name,
		Version:  version,
		BBox:     domain.Box3(0, 0, 0, 3, 3, 0),
		ElemSize: 1,
		Data:     data,
		CRC:      crc32.Checksum(data, crcTable),
		Logged:   true,
	}
}

func TestSpillPromoteRoundTrip(t *testing.T) {
	be := pfs.NewStore()
	tr := New(be, "0")
	in := obj("sim/f", 3, 64)
	if err := tr.Spill(in); err != nil {
		t.Fatal(err)
	}
	if !tr.Has("sim/f", 3) || tr.Has("sim/f", 4) {
		t.Fatal("index wrong after spill")
	}
	objs, err := tr.Promote("sim/f", 3)
	if err != nil || len(objs) != 1 {
		t.Fatalf("promote: %v objs=%d", err, len(objs))
	}
	if !bytes.Equal(objs[0].Data, in.Data) || objs[0].CRC != in.CRC || !objs[0].Logged {
		t.Fatal("promoted object differs")
	}
	if tr.Has("sim/f", 3) {
		t.Fatal("entry survives promote")
	}
	st := tr.Stats()
	if st.Spills != 1 || st.Promotes != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Records are reclaimed.
	if names := be.List("tier/0/o/"); len(names) != 0 {
		t.Fatalf("leftover records: %v", names)
	}
}

func TestReattachRecoversManifest(t *testing.T) {
	be := pfs.NewStore()
	tr := New(be, "0")
	if err := tr.Spill(obj("sim/f", 1, 32)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Spill(obj("sim/f", 2, 32)); err != nil {
		t.Fatal(err)
	}
	// A fresh attach (crash + restart) sees both entries.
	tr2 := New(be, "0")
	if !tr2.Has("sim/f", 1) || !tr2.Has("sim/f", 2) {
		t.Fatalf("reattach lost entries: versions=%v", tr2.Versions("sim/f"))
	}
	objs, err := tr2.Promote("sim/f", 2)
	if err != nil || len(objs) != 1 || !bytes.Equal(objs[0].Data, obj("sim/f", 2, 32).Data) {
		t.Fatalf("promote after reattach: %v %d", err, len(objs))
	}
}

// A crash between the record writes and the manifest commit must leave
// the version fully resident from the tier's point of view: the new
// attach sees no entry and collects the orphaned records.
func TestCrashMidSpillLeavesNoHalfMove(t *testing.T) {
	be := pfs.NewStore()
	tr := New(be, "0")
	if err := tr.Spill(obj("sim/f", 1, 32)); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: write orphan records directly, no manifest.
	be.Write("tier/0/o/99/g0", []byte("orphan"))
	be.Write("tier/0/o/99/g1", []byte("orphan"))
	be.Write("tier/0/manifest.tmp", []byte("torn temp"))
	tr2 := New(be, "0")
	if tr2.Stats().Entries != 1 {
		t.Fatalf("entries = %d", tr2.Stats().Entries)
	}
	if _, ok := be.Read("tier/0/o/99/g0"); ok {
		t.Fatal("orphan record not collected")
	}
	if _, ok := be.Read("tier/0/manifest.tmp"); ok {
		t.Fatal("manifest temp not collected")
	}
}

// A torn manifest write is healed by the commit-marker protocol: the
// previous committed manifest generation still decodes.
func TestTornManifestFallsBack(t *testing.T) {
	be := pfs.NewStore()
	tr := New(be, "0")
	if err := tr.Spill(obj("sim/f", 1, 32)); err != nil {
		t.Fatal(err)
	}
	// Corrupt the NEXT manifest temp write mid-flight; the rename then
	// installs a torn generation, but the marker flip still points at
	// it... so tear the committed generation instead, post-hoc, and
	// verify attach falls back to the surviving one.
	if err := tr.Spill(obj("sim/f", 2, 32)); err != nil {
		t.Fatal(err)
	}
	cur, _ := be.Read("tier/0/manifest/cur")
	be.Corrupt("tier/0/manifest/g"+string(rune('0'+cur[0])), 9)
	tr2 := New(be, "0")
	// The surviving generation holds the state as of the first spill.
	if !tr2.Has("sim/f", 1) {
		t.Fatal("fallback manifest lost the first spill")
	}
}

func TestScrubHealsBitRot(t *testing.T) {
	be := pfs.NewStore()
	tr := New(be, "0")
	if err := tr.Spill(obj("sim/f", 1, 128)); err != nil {
		t.Fatal(err)
	}
	if !be.Corrupt("tier/0/o/0/g0", 40) {
		t.Fatal("no record to corrupt")
	}
	rep := tr.Scrub()
	if rep.Checked != 2 || rep.Healed != 1 || rep.Lost != 0 {
		t.Fatalf("scrub = %+v", rep)
	}
	// Healed generation verifies again.
	rep = tr.Scrub()
	if rep.Healed != 0 || rep.Lost != 0 {
		t.Fatalf("second scrub = %+v", rep)
	}
	objs, err := tr.Promote("sim/f", 1)
	if err != nil || len(objs) != 1 || !bytes.Equal(objs[0].Data, obj("sim/f", 1, 128).Data) {
		t.Fatalf("promote after heal: %v %d", err, len(objs))
	}
}

func TestScrubDetectsDoubleCorruption(t *testing.T) {
	be := pfs.NewStore()
	tr := New(be, "0")
	if err := tr.Spill(obj("sim/f", 1, 128)); err != nil {
		t.Fatal(err)
	}
	be.Corrupt("tier/0/o/0/g0", 40)
	be.Corrupt("tier/0/o/0/g1", 40)
	rep := tr.Scrub()
	if rep.Lost != 1 {
		t.Fatalf("scrub = %+v", rep)
	}
	if tr.Has("sim/f", 1) {
		t.Fatal("lost entry still indexed")
	}
	// Never serve corrupt data as valid.
	objs, err := tr.Promote("sim/f", 1)
	if err != nil || len(objs) != 0 {
		t.Fatalf("promote of lost entry: %v %d", err, len(objs))
	}
}

func TestPromoteSkipsCorruptReturnsRest(t *testing.T) {
	be := pfs.NewStore()
	tr := New(be, "0")
	a := obj("sim/f", 1, 64)
	b := obj("sim/f", 1, 64)
	b.BBox = domain.Box3(4, 0, 0, 7, 3, 0)
	if err := tr.Spill(a); err != nil {
		t.Fatal(err)
	}
	if err := tr.Spill(b); err != nil {
		t.Fatal(err)
	}
	// Destroy both generations of the first record.
	be.Corrupt("tier/0/o/0/g0", 40)
	be.Corrupt("tier/0/o/0/g1", 40)
	objs, err := tr.Promote("sim/f", 1)
	if err != nil || len(objs) != 1 {
		t.Fatalf("promote: %v %d", err, len(objs))
	}
	if !objs[0].BBox.Equal(b.BBox) {
		t.Fatal("wrong survivor returned")
	}
	if tr.Stats().ScrubLost != 1 {
		t.Fatalf("stats = %+v", tr.Stats())
	}
}

func TestENOSPCDegradesAndScrubRearms(t *testing.T) {
	be := pfs.NewStore()
	tr := New(be, "0")
	be.FailNextWrite(pfs.FaultENOSPC)
	err := tr.Spill(obj("sim/f", 1, 32))
	var de *DegradedError
	if !errors.As(err, &de) || !errors.Is(err, pfs.ErrNoSpace) {
		t.Fatalf("err = %v", err)
	}
	if !tr.Degraded() {
		t.Fatal("tier not degraded")
	}
	// While degraded, spills fail fast with the typed error.
	if err := tr.Spill(obj("sim/f", 2, 32)); !errors.As(err, &de) {
		t.Fatalf("degraded spill err = %v", err)
	}
	// Scrub probes the (now healthy) backend and re-arms.
	tr.Scrub()
	if tr.Degraded() {
		t.Fatal("scrub did not re-arm")
	}
	if err := tr.Spill(obj("sim/f", 3, 32)); err != nil {
		t.Fatalf("spill after re-arm: %v", err)
	}
}

func TestDropBelowReclaims(t *testing.T) {
	be := pfs.NewStore()
	tr := New(be, "0")
	for v := int64(1); v <= 4; v++ {
		if err := tr.Spill(obj("sim/f", v, 32)); err != nil {
			t.Fatal(err)
		}
	}
	if freed := tr.DropBelow("sim/f", 3); freed != 64 {
		t.Fatalf("freed = %d", freed)
	}
	if got := tr.Versions("sim/f"); len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("versions = %v", got)
	}
	// Reattach agrees.
	if got := New(be, "0").Versions("sim/f"); len(got) != 2 || got[0] != 3 {
		t.Fatalf("reattached versions = %v", got)
	}
}

func TestReset(t *testing.T) {
	be := pfs.NewStore()
	tr := New(be, "0")
	if err := tr.Spill(obj("sim/f", 1, 32)); err != nil {
		t.Fatal(err)
	}
	tr.Reset()
	if tr.Stats().Entries != 0 || len(be.List("tier/0/")) != 0 {
		t.Fatalf("reset left state: %+v %v", tr.Stats(), be.List("tier/0/"))
	}
	if err := tr.Spill(obj("sim/f", 5, 32)); err != nil {
		t.Fatalf("spill after reset: %v", err)
	}
}

package ec

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGFFieldAxioms(t *testing.T) {
	f := func(a, b, c byte) bool {
		// Commutativity and associativity of multiplication.
		if gfMul(a, b) != gfMul(b, a) {
			return false
		}
		if gfMul(gfMul(a, b), c) != gfMul(a, gfMul(b, c)) {
			return false
		}
		// Distributivity over XOR (field addition).
		return gfMul(a, b^c) == gfMul(a, b)^gfMul(a, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestGFInverse(t *testing.T) {
	for a := 1; a < 256; a++ {
		if got := gfMul(byte(a), gfInv(byte(a))); got != 1 {
			t.Fatalf("a * a^-1 = %d for a=%d", got, a)
		}
	}
}

func TestGFDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	gfDiv(3, 0)
}

func TestMatrixInvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(8)
		m := newMatrix(n, n)
		for i := range m.d {
			m.d[i] = byte(rng.Intn(256))
		}
		inv, ok := m.invert()
		if !ok {
			continue // singular random matrix, fine
		}
		prod := m.mul(inv)
		id := identity(n)
		if !bytes.Equal(prod.d, id.d) {
			t.Fatalf("trial %d: M * M^-1 != I", trial)
		}
	}
}

func TestNewCoderValidation(t *testing.T) {
	if _, err := NewCoder(0, 2); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewCoder(200, 100); err == nil {
		t.Fatal("k+m>255 accepted")
	}
	if _, err := NewCoder(4, 0); err != nil {
		t.Fatal("m=0 should be legal (striping only)")
	}
}

func TestEncodeReconstructAllErasurePatterns(t *testing.T) {
	c, err := NewCoder(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	orig := make([]byte, 1000)
	rng.Read(orig)
	data := c.Split(orig)
	shards, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	n := len(shards)
	// Erase every pair of shards and reconstruct.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			cp := make([][]byte, n)
			for s := range shards {
				cp[s] = append([]byte(nil), shards[s]...)
			}
			cp[i], cp[j] = nil, nil
			if err := c.Reconstruct(cp); err != nil {
				t.Fatalf("erase (%d,%d): %v", i, j, err)
			}
			got, err := c.Join(cp, len(orig))
			if err != nil {
				t.Fatalf("join after (%d,%d): %v", i, j, err)
			}
			if !bytes.Equal(got, orig) {
				t.Fatalf("data corrupted after erasing (%d,%d)", i, j)
			}
			// Parity shards must be rebuilt identically too.
			for s := range cp {
				if !bytes.Equal(cp[s], shards[s]) {
					t.Fatalf("shard %d rebuilt incorrectly after (%d,%d)", s, i, j)
				}
			}
		}
	}
}

func TestReconstructTooFewShards(t *testing.T) {
	c, _ := NewCoder(4, 2)
	shards, _ := c.Encode(c.Split(make([]byte, 64)))
	shards[0], shards[1], shards[2] = nil, nil, nil
	if err := c.Reconstruct(shards); err != ErrTooFewShards {
		t.Fatalf("err = %v, want ErrTooFewShards", err)
	}
}

func TestSplitJoinRoundTripSizes(t *testing.T) {
	c, _ := NewCoder(3, 2)
	for _, size := range []int{0, 1, 2, 3, 4, 100, 999, 4096} {
		orig := make([]byte, size)
		for i := range orig {
			orig[i] = byte(i * 31)
		}
		shards := c.Split(orig)
		if len(shards) != 3 {
			t.Fatalf("size %d: %d shards", size, len(shards))
		}
		got, err := c.Join(shards, size)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !bytes.Equal(got, orig) {
			t.Fatalf("size %d: round trip mismatch", size)
		}
	}
}

func TestEncodeShardLengthMismatch(t *testing.T) {
	c, _ := NewCoder(2, 1)
	if _, err := c.Encode([][]byte{make([]byte, 4), make([]byte, 5)}); err == nil {
		t.Fatal("uneven shards accepted")
	}
	if _, err := c.Encode([][]byte{make([]byte, 4)}); err == nil {
		t.Fatal("wrong shard count accepted")
	}
}

// Property: for random data and random single/double erasures over a
// variety of geometries, reconstruction is exact.
func TestReconstructProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(6)
		m := 1 + r.Intn(3)
		c, err := NewCoder(k, m)
		if err != nil {
			return false
		}
		orig := make([]byte, 1+r.Intn(500))
		r.Read(orig)
		shards, err := c.Encode(c.Split(orig))
		if err != nil {
			return false
		}
		// Erase up to m random shards.
		for e := 0; e < m; e++ {
			shards[r.Intn(k+m)] = nil
		}
		if err := c.Reconstruct(shards); err != nil {
			return false
		}
		got, err := c.Join(shards, len(orig))
		return err == nil && bytes.Equal(got, orig)
	}
	for i := 0; i < 200; i++ {
		if !f(rng.Int63()) {
			t.Fatalf("property failed")
		}
	}
}

func BenchmarkEncode4x2_1MiB(b *testing.B) {
	c, _ := NewCoder(4, 2)
	data := c.Split(make([]byte, 1<<20))
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstruct4x2_1MiB(b *testing.B) {
	c, _ := NewCoder(4, 2)
	shards, _ := c.Encode(c.Split(make([]byte, 1<<20)))
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := make([][]byte, len(shards))
		copy(cp, shards)
		cp[1], cp[4] = nil, nil
		if err := c.Reconstruct(cp); err != nil {
			b.Fatal(err)
		}
	}
}

package ec

import (
	"errors"
	"fmt"
)

// ErrTooFewShards is returned when fewer than k shards survive.
var ErrTooFewShards = errors.New("ec: not enough shards to reconstruct")

// Coder is a systematic Reed–Solomon coder with k data shards and m
// parity shards. It is stateless after construction and safe for
// concurrent use.
type Coder struct {
	k, m int
	// enc is the (k+m)×k encoding matrix; the top k×k block is the
	// identity so the code is systematic.
	enc *matrix
}

// NewCoder builds a coder for k data and m parity shards.
// k+m must not exceed 255.
func NewCoder(k, m int) (*Coder, error) {
	if k < 1 || m < 0 || k+m > 255 {
		return nil, fmt.Errorf("ec: invalid geometry k=%d m=%d", k, m)
	}
	// Build an extended-Vandermonde-derived matrix whose every k×k
	// submatrix is invertible: start with a (k+m)×k Vandermonde matrix
	// and normalize its top k×k block to the identity.
	v := newMatrix(k+m, k)
	for r := 0; r < k+m; r++ {
		for c := 0; c < k; c++ {
			v.set(r, c, gfPow(byte(r+1), c))
		}
	}
	top := newMatrix(k, k)
	copy(top.d, v.d[:k*k])
	topInv, ok := top.invert()
	if !ok {
		return nil, errors.New("ec: vandermonde top block singular")
	}
	return &Coder{k: k, m: m, enc: v.mul(topInv)}, nil
}

// gfPow raises a to the p-th power.
func gfPow(a byte, p int) byte {
	r := byte(1)
	for i := 0; i < p; i++ {
		r = gfMul(r, a)
	}
	return r
}

// DataShards returns k.
func (c *Coder) DataShards() int { return c.k }

// ParityShards returns m.
func (c *Coder) ParityShards() int { return c.m }

// Split pads data to a multiple of k and cuts it into k equal data
// shards. The original length must be carried out of band (the staging
// object metadata stores it).
func (c *Coder) Split(data []byte) [][]byte {
	shardLen := (len(data) + c.k - 1) / c.k
	if shardLen == 0 {
		shardLen = 1
	}
	shards := make([][]byte, c.k)
	for i := range shards {
		shards[i] = make([]byte, shardLen)
		lo := i * shardLen
		if lo < len(data) {
			copy(shards[i], data[lo:])
		}
	}
	return shards
}

// Join reassembles the first size bytes from k data shards.
func (c *Coder) Join(shards [][]byte, size int) ([]byte, error) {
	if len(shards) < c.k {
		return nil, ErrTooFewShards
	}
	out := make([]byte, 0, size)
	for i := 0; i < c.k && len(out) < size; i++ {
		if shards[i] == nil {
			return nil, fmt.Errorf("ec: data shard %d missing in Join", i)
		}
		need := size - len(out)
		if need > len(shards[i]) {
			need = len(shards[i])
		}
		out = append(out, shards[i][:need]...)
	}
	if len(out) != size {
		return nil, fmt.Errorf("ec: shards too short for size %d", size)
	}
	return out, nil
}

// Encode computes the m parity shards for k equal-length data shards and
// returns all k+m shards (data first).
func (c *Coder) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != c.k {
		return nil, fmt.Errorf("ec: Encode wants %d data shards, got %d", c.k, len(data))
	}
	shardLen := len(data[0])
	for i, s := range data {
		if len(s) != shardLen {
			return nil, fmt.Errorf("ec: shard %d length %d != %d", i, len(s), shardLen)
		}
	}
	all := make([][]byte, c.k+c.m)
	copy(all, data)
	for r := 0; r < c.m; r++ {
		all[c.k+r] = make([]byte, shardLen)
	}
	// Parity bytes depend only on the matching offset of the data
	// shards, so the shard length is coded in parallel chunks.
	runChunked(shardLen, func(lo, hi int) {
		for r := 0; r < c.m; r++ {
			p := all[c.k+r][lo:hi]
			row := c.enc.row(c.k + r)
			for ci := 0; ci < c.k; ci++ {
				gfMulAddSlice(p, data[ci][lo:hi], row[ci])
			}
		}
	})
	return all, nil
}

// Reconstruct fills in missing (nil) shards in place given any k
// surviving shards of the k+m total. Shards must all have equal length.
func (c *Coder) Reconstruct(shards [][]byte) error {
	if len(shards) != c.k+c.m {
		return fmt.Errorf("ec: Reconstruct wants %d shards, got %d", c.k+c.m, len(shards))
	}
	var have []int
	shardLen := 0
	for i, s := range shards {
		if s != nil {
			have = append(have, i)
			if shardLen == 0 {
				shardLen = len(s)
			} else if len(s) != shardLen {
				return fmt.Errorf("ec: shard %d length %d != %d", i, len(s), shardLen)
			}
		}
	}
	if len(have) < c.k {
		return ErrTooFewShards
	}
	have = have[:c.k]

	// Decode matrix: the k rows of the encoding matrix for the shards
	// we have, inverted, maps surviving shards back to data shards.
	sub := newMatrix(c.k, c.k)
	for r, idx := range have {
		copy(sub.row(r), c.enc.row(idx))
	}
	dec, ok := sub.invert()
	if !ok {
		return errors.New("ec: decode matrix singular")
	}

	// Rebuild missing data shards: chunk-parallel like Encode, phase 1.
	data := make([][]byte, c.k)
	var missData []int
	for d := 0; d < c.k; d++ {
		if shards[d] != nil {
			data[d] = shards[d]
			continue
		}
		out := make([]byte, shardLen)
		shards[d] = out
		data[d] = out
		missData = append(missData, d)
	}
	if len(missData) > 0 {
		runChunked(shardLen, func(lo, hi int) {
			for _, d := range missData {
				out := data[d][lo:hi]
				for j, idx := range have {
					gfMulAddSlice(out, shards[idx][lo:hi], dec.at(d, j))
				}
			}
		})
	}
	// Phase 2: rebuild missing parity from the (now complete) data.
	var missParity []int
	for pi := 0; pi < c.m; pi++ {
		if shards[c.k+pi] != nil {
			continue
		}
		shards[c.k+pi] = make([]byte, shardLen)
		missParity = append(missParity, pi)
	}
	if len(missParity) > 0 {
		runChunked(shardLen, func(lo, hi int) {
			for _, pi := range missParity {
				out := shards[c.k+pi][lo:hi]
				row := c.enc.row(c.k + pi)
				for ci := 0; ci < c.k; ci++ {
					gfMulAddSlice(out, data[ci][lo:hi], row[ci])
				}
			}
		})
	}
	return nil
}

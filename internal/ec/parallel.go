package ec

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The coding kernels (parity generation in Encode, shard rebuild in
// Reconstruct) are byte-range parallel: every output byte depends only
// on the same offset of the input shards, so the shard length can be
// cut into chunks and coded on independent goroutines with no shared
// writes. Re-protection after a fail-stop recodes every logged object,
// so leaving the kernel single-core would serialize recovery behind one
// CPU while the rest of the staging node idles.

const (
	// parallelThreshold is the shard length below which chunking is not
	// worth the goroutine handoff; short shards run serially.
	parallelThreshold = 64 << 10
	// chunkLen is the coding chunk: large enough to amortize dispatch,
	// small enough that the shard slices in flight stay cache-resident
	// and stragglers can steal work.
	chunkLen = 32 << 10
)

// ecWorkers is the configured pool width; 0 selects GOMAXPROCS.
var ecWorkers atomic.Int32

// SetWorkers bounds the goroutines a single Encode/Reconstruct may use.
// n == 0 restores the default (GOMAXPROCS); n == 1 forces the serial
// kernel. It returns the previous setting.
func SetWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(ecWorkers.Swap(int32(n)))
}

func workerCount() int {
	if n := int(ecWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// runChunked invokes fn over disjoint sub-ranges covering [0, shardLen).
// fn must be safe to run concurrently on disjoint ranges. Short inputs
// and single-worker configurations run inline on the caller.
func runChunked(shardLen int, fn func(lo, hi int)) {
	w := workerCount()
	if w <= 1 || shardLen < parallelThreshold {
		fn(0, shardLen)
		return
	}
	nchunks := (shardLen + chunkLen - 1) / chunkLen
	if w > nchunks {
		w = nchunks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= nchunks {
					return
				}
				lo := c * chunkLen
				hi := lo + chunkLen
				if hi > shardLen {
					hi = shardLen
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

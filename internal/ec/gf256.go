// Package ec implements systematic Reed–Solomon erasure coding over
// GF(2^8), the redundancy scheme the CoREC staging layer (Duan et al.,
// IPDPS'18) uses to keep logged data available across staging-server
// failures. Any k of the n = k+m shards reconstruct the original data.
package ec

// GF(2^8) with the polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d), under
// which 2 generates the multiplicative group — the field conventional
// Reed–Solomon implementations use.
const gfPoly = 0x11d

var (
	gfExp [512]byte // generator powers, doubled to avoid mod 255
	gfLog [256]byte

	// mulTable[c] is the 256-byte lookup row for multiplication by c:
	// mulTable[c][x] = c*x. The row turns the inner coding loop into one
	// load + one xor per byte — no log/exp arithmetic, no zero branch —
	// and the 64 KiB table stays resident in L1/L2 during bulk encodes.
	mulTable [256][256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
	for c := 1; c < 256; c++ {
		logC := int(gfLog[c])
		row := &mulTable[c]
		for s := 1; s < 256; s++ {
			row[s] = gfExp[logC+int(gfLog[s])]
		}
	}
}

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfDiv divides a by b. Panics on division by zero.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("ec: division by zero in GF(256)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfInv returns the multiplicative inverse.
func gfInv(a byte) byte { return gfDiv(1, a) }

// gfMulAddSlice computes dst[i] ^= c * src[i] for all i, via the
// per-coefficient lookup row.
func gfMulAddSlice(dst, src []byte, c byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		for i, s := range src {
			dst[i] ^= s
		}
		return
	}
	mt := &mulTable[c]
	dst = dst[:len(src)] // hoist the bounds check out of the loop
	for i, s := range src {
		dst[i] ^= mt[s]
	}
}

// matrix is a dense GF(256) matrix in row-major order.
type matrix struct {
	rows, cols int
	d          []byte
}

func newMatrix(rows, cols int) *matrix {
	return &matrix{rows: rows, cols: cols, d: make([]byte, rows*cols)}
}

func (m *matrix) at(r, c int) byte     { return m.d[r*m.cols+c] }
func (m *matrix) set(r, c int, v byte) { m.d[r*m.cols+c] = v }

func (m *matrix) row(r int) []byte { return m.d[r*m.cols : (r+1)*m.cols] }

// identity returns the n×n identity matrix.
func identity(n int) *matrix {
	m := newMatrix(n, n)
	for i := 0; i < n; i++ {
		m.set(i, i, 1)
	}
	return m
}

// mul returns m × o.
func (m *matrix) mul(o *matrix) *matrix {
	if m.cols != o.rows {
		panic("ec: matrix dimension mismatch")
	}
	r := newMatrix(m.rows, o.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.at(i, k)
			if a == 0 {
				continue
			}
			gfMulAddSlice(r.row(i), o.row(k), a)
		}
	}
	return r
}

// invert returns the inverse via Gauss–Jordan elimination, or false if
// the matrix is singular.
func (m *matrix) invert() (*matrix, bool) {
	if m.rows != m.cols {
		panic("ec: inverting non-square matrix")
	}
	n := m.rows
	a := &matrix{rows: n, cols: n, d: append([]byte(nil), m.d...)}
	inv := identity(n)
	for col := 0; col < n; col++ {
		// Find pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if a.at(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, false
		}
		if pivot != col {
			swapRows(a, pivot, col)
			swapRows(inv, pivot, col)
		}
		// Scale pivot row to 1.
		p := a.at(col, col)
		if p != 1 {
			ip := gfInv(p)
			scaleRow(a.row(col), ip)
			scaleRow(inv.row(col), ip)
		}
		// Eliminate the column everywhere else.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.at(r, col)
			if f != 0 {
				gfMulAddSlice(a.row(r), a.row(col), f)
				gfMulAddSlice(inv.row(r), inv.row(col), f)
			}
		}
	}
	return inv, true
}

func swapRows(m *matrix, i, j int) {
	ri, rj := m.row(i), m.row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

func scaleRow(row []byte, c byte) {
	for i, v := range row {
		row[i] = gfMul(v, c)
	}
}

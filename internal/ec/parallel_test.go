package ec

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func randShards(t testing.TB, k, shardLen int, seed int64) [][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	shards := make([][]byte, k)
	for i := range shards {
		shards[i] = make([]byte, shardLen)
		rng.Read(shards[i])
	}
	return shards
}

// TestParallelEncodeMatchesSerial pins the chunked kernel to the serial
// one: identical parity for shard lengths straddling the thresholds and
// chunk boundaries.
func TestParallelEncodeMatchesSerial(t *testing.T) {
	c, err := NewCoder(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, shardLen := range []int{1, 1000, parallelThreshold - 1, parallelThreshold, chunkLen*3 + 17, 1 << 20} {
		data := randShards(t, 6, shardLen, int64(shardLen))

		prev := SetWorkers(1)
		serial, err := c.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		SetWorkers(8)
		parallel, err := c.Encode(data)
		SetWorkers(prev)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial {
			if !bytes.Equal(serial[i], parallel[i]) {
				t.Fatalf("shardLen %d: shard %d differs between serial and parallel encode", shardLen, i)
			}
		}
	}
}

// TestParallelReconstructMatchesSerial erases data+parity shards and
// checks both kernels restore the same bytes.
func TestParallelReconstructMatchesSerial(t *testing.T) {
	c, err := NewCoder(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	shardLen := chunkLen*2 + 333
	data := randShards(t, 6, shardLen, 42)
	all, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	damage := func() [][]byte {
		d := make([][]byte, len(all))
		for i := range all {
			d[i] = append([]byte(nil), all[i]...)
		}
		d[0], d[3], d[7] = nil, nil, nil // two data shards and one parity
		return d
	}

	prev := SetWorkers(1)
	serial := damage()
	if err := c.Reconstruct(serial); err != nil {
		t.Fatal(err)
	}
	SetWorkers(8)
	parallel := damage()
	err = c.Reconstruct(parallel)
	SetWorkers(prev)
	if err != nil {
		t.Fatal(err)
	}
	for i := range all {
		if !bytes.Equal(serial[i], all[i]) {
			t.Fatalf("serial reconstruct: shard %d wrong", i)
		}
		if !bytes.Equal(parallel[i], all[i]) {
			t.Fatalf("parallel reconstruct: shard %d wrong", i)
		}
	}
}

// BenchmarkECEncode measures parity generation throughput (bytes/s of
// input data coded) for the serial and parallel kernels.
func BenchmarkECEncode(b *testing.B) {
	c, err := NewCoder(6, 3)
	if err != nil {
		b.Fatal(err)
	}
	for _, objSize := range []int{256 << 10, 4 << 20, 64 << 20} {
		shardLen := objSize / 6
		data := randShards(b, 6, shardLen, int64(objSize))
		for _, workers := range []int{1, 0} {
			name := fmt.Sprintf("obj=%dKiB/workers=%d", objSize>>10, workers)
			b.Run(name, func(b *testing.B) {
				prev := SetWorkers(workers)
				defer SetWorkers(prev)
				b.SetBytes(int64(objSize))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := c.Encode(data); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkECReconstruct measures the rebuild path the recovery
// supervisor's re-protection pass exercises.
func BenchmarkECReconstruct(b *testing.B) {
	c, err := NewCoder(6, 3)
	if err != nil {
		b.Fatal(err)
	}
	objSize := 4 << 20
	shardLen := objSize / 6
	data := randShards(b, 6, shardLen, 7)
	all, err := c.Encode(data)
	if err != nil {
		b.Fatal(err)
	}
	work := make([][]byte, len(all))
	for _, workers := range []int{1, 0} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			prev := SetWorkers(workers)
			defer SetWorkers(prev)
			b.SetBytes(int64(objSize))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(work, all)
				work[1], work[4], work[6] = nil, nil, nil
				if err := c.Reconstruct(work); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

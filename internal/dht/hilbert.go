package dht

import "gospaces/internal/domain"

// Hilbert curve support. DataSpaces-family systems index the domain
// with a space-filling curve; the Hilbert curve preserves locality
// better than Z-order (no long diagonal jumps), which shrinks the
// server fan-out of box queries at the cost of a more expensive code
// computation. The implementation follows Skilling, "Programming the
// Hilbert curve" (AIP 2004): coordinates are converted to/from the
// "transposed" Hilbert index, which interleaves exactly like a Morton
// code.

// Curve selects the space-filling curve an Index orders cells by.
type Curve int

// Supported curves.
const (
	// CurveZ is the Z-order (Morton) curve, DataSpaces' default.
	CurveZ Curve = iota
	// CurveHilbert is the Hilbert curve.
	CurveHilbert
)

func (c Curve) String() string {
	switch c {
	case CurveZ:
		return "z-order"
	case CurveHilbert:
		return "hilbert"
	default:
		return "curve(?)"
	}
}

// axesToTranspose converts coordinates (each bits wide) into the
// transposed Hilbert index, in place.
func axesToTranspose(x []uint32, bits int) {
	if bits < 2 {
		return // 1-bit curves are identical to Morton
	}
	m := uint32(1) << (bits - 1)
	// Inverse undo.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < len(x); i++ {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < len(x); i++ {
		x[i] ^= x[i-1]
	}
	var t uint32
	for q := m; q > 1; q >>= 1 {
		if x[len(x)-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := range x {
		x[i] ^= t
	}
}

// transposeToAxes inverts axesToTranspose, in place.
func transposeToAxes(x []uint32, bits int) {
	if bits < 2 {
		return
	}
	n := len(x)
	m := uint32(2) << (bits - 1)
	// Gray decode by H ^ (H/2).
	t := x[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint32(2); q != m; q <<= 1 {
		p := q - 1
		for i := n - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
}

// hilbert computes the Hilbert index of c over an n-dim grid with the
// given bits per dimension.
func hilbert(n, bits int, c [domain.MaxDims]uint32) uint64 {
	x := make([]uint32, n)
	copy(x, c[:n])
	axesToTranspose(x, bits)
	var t [domain.MaxDims]uint32
	copy(t[:], x)
	return morton(n, bits, t)
}

// unhilbert inverts hilbert.
func unhilbert(n, bits int, h uint64) [domain.MaxDims]uint32 {
	t := unmorton(n, bits, h)
	x := make([]uint32, n)
	copy(x, t[:n])
	transposeToAxes(x, bits)
	var out [domain.MaxDims]uint32
	copy(out[:], x)
	return out
}

// Package dht maps regions of the global data domain to staging
// servers, the role DataSpaces' distributed hash table plays. The
// global domain is covered by a coarse grid of cells; cells are ordered
// along a Z-order (Morton) space-filling curve and the curve is cut
// into contiguous, equal-length arcs, one per server. The SFC keeps
// spatially adjacent cells on the same server, so a typical bounding-box
// query touches few servers.
package dht

import (
	"fmt"

	"gospaces/internal/domain"
)

// Index maps bounding boxes to server ids for one global domain.
type Index struct {
	global   domain.BBox
	nservers int
	bits     int // cells per dimension = 1 << bits
	curve    Curve
	cellExt  [domain.MaxDims]int64
	ncells   uint64 // total SFC cells = 1 << (bits * ndim)
}

// NewIndex builds a Z-order index over global for nservers servers
// (see NewIndexCurve). bits is the grid refinement: the domain is
// covered by 2^bits cells per dimension (so server load balance is
// within 1 cell-arc). bits in [1, 10].
func NewIndex(global domain.BBox, nservers, bits int) (*Index, error) {
	return NewIndexCurve(global, nservers, bits, CurveZ)
}

// NewIndexCurve builds an index ordered along the chosen space-filling
// curve.
func NewIndexCurve(global domain.BBox, nservers, bits int, curve Curve) (*Index, error) {
	if global.IsEmpty() {
		return nil, fmt.Errorf("dht: empty global domain")
	}
	if nservers < 1 {
		return nil, fmt.Errorf("dht: need at least one server, got %d", nservers)
	}
	if bits < 1 || bits > 10 {
		return nil, fmt.Errorf("dht: bits %d out of range [1,10]", bits)
	}
	idx := &Index{global: global, nservers: nservers, bits: bits, curve: curve}
	cells := int64(1) << bits
	for i := 0; i < global.NDim; i++ {
		idx.cellExt[i] = (global.Extent(i) + cells - 1) / cells
		if idx.cellExt[i] < 1 {
			idx.cellExt[i] = 1
		}
	}
	idx.ncells = uint64(1) << (bits * global.NDim)
	if uint64(nservers) > idx.ncells {
		return nil, fmt.Errorf("dht: %d servers exceed %d cells; raise bits", nservers, idx.ncells)
	}
	return idx, nil
}

// NumServers returns the number of servers the index distributes over.
func (x *Index) NumServers() int { return x.nservers }

// Global returns the indexed global domain.
func (x *Index) Global() domain.BBox { return x.global }

// cellCoord returns the cell coordinate of a global grid point along
// dimension d, clamped to the grid.
func (x *Index) cellCoord(d int, v int64) uint32 {
	c := (v - x.global.Min[d]) / x.cellExt[d]
	max := (int64(1) << x.bits) - 1
	if c < 0 {
		c = 0
	}
	if c > max {
		c = max
	}
	return uint32(c)
}

// code computes the SFC index of a cell coordinate.
func (x *Index) code(c [domain.MaxDims]uint32) uint64 {
	if x.curve == CurveHilbert {
		return hilbert(x.global.NDim, x.bits, c)
	}
	return morton(x.global.NDim, x.bits, c)
}

// uncode inverts code.
func (x *Index) uncode(m uint64) [domain.MaxDims]uint32 {
	if x.curve == CurveHilbert {
		return unhilbert(x.global.NDim, x.bits, m)
	}
	return unmorton(x.global.NDim, x.bits, m)
}

// serverOfMorton maps an SFC code to a server by cutting the curve
// into nservers equal arcs.
func (x *Index) serverOfMorton(m uint64) int {
	s := int(m * uint64(x.nservers) / x.ncells)
	if s >= x.nservers {
		s = x.nservers - 1
	}
	return s
}

// ServerForPoint returns the server owning the cell containing p.
func (x *Index) ServerForPoint(p domain.Point) int {
	var c [domain.MaxDims]uint32
	for d := 0; d < x.global.NDim; d++ {
		c[d] = x.cellCoord(d, p[d])
	}
	return x.serverOfMorton(x.code(c))
}

// ServersFor returns the sorted set of servers whose cells intersect q,
// clipped to the global domain. An empty or disjoint query returns nil.
func (x *Index) ServersFor(q domain.BBox) []int {
	q, ok := q.Intersect(x.global)
	if !ok {
		return nil
	}
	n := x.global.NDim
	var lo, hi [domain.MaxDims]uint32
	for d := 0; d < n; d++ {
		lo[d] = x.cellCoord(d, q.Min[d])
		hi[d] = x.cellCoord(d, q.Max[d])
	}
	seen := make(map[int]struct{})
	var cur [domain.MaxDims]uint32
	copy(cur[:], lo[:])
	for {
		seen[x.serverOfMorton(x.code(cur))] = struct{}{}
		d := n - 1
		for d >= 0 {
			cur[d]++
			if cur[d] <= hi[d] {
				break
			}
			cur[d] = lo[d]
			d--
		}
		if d < 0 {
			break
		}
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sortInts(out)
	return out
}

// ServerCells returns, for server s, the sub-boxes of the global domain
// it owns, merged per Morton run where adjacent. Used by the rebuild
// path after a server loss and by tests.
func (x *Index) ServerCells(s int) []domain.BBox {
	if s < 0 || s >= x.nservers {
		return nil
	}
	var out []domain.BBox
	n := x.global.NDim
	for m := uint64(0); m < x.ncells; m++ {
		if x.serverOfMorton(m) != s {
			continue
		}
		c := x.uncode(m)
		b := domain.BBox{NDim: n}
		skip := false
		for d := 0; d < n; d++ {
			b.Min[d] = x.global.Min[d] + int64(c[d])*x.cellExt[d]
			if b.Min[d] > x.global.Max[d] {
				skip = true // cell entirely outside (padded grid)
				break
			}
			b.Max[d] = b.Min[d] + x.cellExt[d] - 1
			if b.Max[d] > x.global.Max[d] {
				b.Max[d] = x.global.Max[d]
			}
		}
		if !skip {
			out = append(out, b)
		}
	}
	return out
}

// morton interleaves the low `bits` bits of each of the n coordinates
// into a single Z-order code, dimension 0 occupying the most significant
// bit of each group.
func morton(n, bits int, c [domain.MaxDims]uint32) uint64 {
	var m uint64
	for b := bits - 1; b >= 0; b-- {
		for d := 0; d < n; d++ {
			m = m<<1 | uint64((c[d]>>uint(b))&1)
		}
	}
	return m
}

// unmorton inverts morton.
func unmorton(n, bits int, m uint64) [domain.MaxDims]uint32 {
	var c [domain.MaxDims]uint32
	for b := 0; b < bits; b++ {
		for d := n - 1; d >= 0; d-- {
			c[d] |= uint32(m&1) << uint(b)
			m >>= 1
		}
	}
	return c
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

package dht

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gospaces/internal/domain"
)

func TestNewIndexValidation(t *testing.T) {
	g := domain.Box3(0, 0, 0, 63, 63, 63)
	if _, err := NewIndex(domain.BBox{}, 4, 4); err == nil {
		t.Fatal("empty domain accepted")
	}
	if _, err := NewIndex(g, 0, 4); err == nil {
		t.Fatal("zero servers accepted")
	}
	if _, err := NewIndex(g, 4, 0); err == nil {
		t.Fatal("zero bits accepted")
	}
	if _, err := NewIndex(g, 100, 1); err == nil {
		t.Fatal("more servers than cells accepted")
	}
}

func TestMortonRoundTrip(t *testing.T) {
	f := func(a, b, c uint16) bool {
		var coord [domain.MaxDims]uint32
		coord[0] = uint32(a) & 0x3ff
		coord[1] = uint32(b) & 0x3ff
		coord[2] = uint32(c) & 0x3ff
		m := morton(3, 10, coord)
		back := unmorton(3, 10, m)
		return back == coord
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMortonLocality(t *testing.T) {
	// Adjacent cells in the same octant share code prefix: codes for
	// (0,0,0) and (1,1,1) at bits=2 must be closer than (0,0,0)-(3,3,3).
	near := morton(3, 2, [domain.MaxDims]uint32{1, 1, 1})
	far := morton(3, 2, [domain.MaxDims]uint32{3, 3, 3})
	zero := morton(3, 2, [domain.MaxDims]uint32{0, 0, 0})
	if !(near-zero < far-zero) {
		t.Fatalf("morton locality broken: near=%d far=%d", near, far)
	}
}

func TestServersForCoverAndSorted(t *testing.T) {
	g := domain.Box3(0, 0, 0, 511, 511, 255)
	x, err := NewIndex(g, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	all := x.ServersFor(g)
	if len(all) != 32 {
		t.Fatalf("global query touches %d servers, want all 32", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i] <= all[i-1] {
			t.Fatal("server list not sorted/unique")
		}
	}
	small := x.ServersFor(domain.Box3(0, 0, 0, 15, 15, 15))
	if len(small) == 0 || len(small) > 4 {
		t.Fatalf("small query touches %d servers", len(small))
	}
}

func TestServersForDisjointAndClip(t *testing.T) {
	g := domain.Box3(0, 0, 0, 63, 63, 63)
	x, _ := NewIndex(g, 8, 3)
	if got := x.ServersFor(domain.Box3(100, 100, 100, 120, 120, 120)); got != nil {
		t.Fatalf("disjoint query returned %v", got)
	}
	// Query overflowing the domain is clipped, not an error.
	got := x.ServersFor(domain.Box3(32, 32, 32, 200, 200, 200))
	if len(got) == 0 {
		t.Fatal("clipped query returned nothing")
	}
}

func TestPointAssignmentConsistentWithBoxQuery(t *testing.T) {
	g := domain.Box3(0, 0, 0, 127, 127, 127)
	x, _ := NewIndex(g, 16, 4)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		p := domain.Point{rng.Int63n(128), rng.Int63n(128), rng.Int63n(128)}
		s := x.ServerForPoint(p)
		box := domain.Box3(p[0], p[1], p[2], p[0], p[1], p[2])
		owners := x.ServersFor(box)
		if len(owners) != 1 || owners[0] != s {
			t.Fatalf("point %v: ServerForPoint=%d, ServersFor=%v", p, s, owners)
		}
	}
}

func TestLoadBalance(t *testing.T) {
	g := domain.Box3(0, 0, 0, 255, 255, 255)
	nservers := 32
	x, _ := NewIndex(g, nservers, 4)
	counts := make([]int, nservers)
	total := 0
	for m := uint64(0); m < x.ncells; m++ {
		counts[x.serverOfMorton(m)]++
		total++
	}
	ideal := total / nservers
	for s, c := range counts {
		if c < ideal-1 || c > ideal+1 {
			t.Fatalf("server %d owns %d cells, ideal %d", s, c, ideal)
		}
	}
}

func TestServerCellsPartition(t *testing.T) {
	g := domain.Box3(0, 0, 0, 63, 63, 31)
	nservers := 8
	x, _ := NewIndex(g, nservers, 3)
	var vol int64
	for s := 0; s < nservers; s++ {
		for _, b := range x.ServerCells(s) {
			if !g.Contains(b) {
				t.Fatalf("server %d cell %v escapes global", s, b)
			}
			vol += b.Volume()
		}
	}
	if vol != g.Volume() {
		t.Fatalf("cells cover %d, global is %d", vol, g.Volume())
	}
	if x.ServerCells(-1) != nil || x.ServerCells(99) != nil {
		t.Fatal("out-of-range server returned cells")
	}
}

func TestSingleServer(t *testing.T) {
	g := domain.Box3(0, 0, 0, 9, 9, 9)
	x, err := NewIndex(g, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := x.ServersFor(g); len(got) != 1 || got[0] != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestHilbertRoundTrip(t *testing.T) {
	f := func(a, b, c uint16) bool {
		var coord [domain.MaxDims]uint32
		coord[0] = uint32(a) & 0xff
		coord[1] = uint32(b) & 0xff
		coord[2] = uint32(c) & 0xff
		h := hilbert(3, 8, coord)
		back := unhilbert(3, 8, h)
		return back == coord
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestHilbertIsBijective(t *testing.T) {
	// Exhaustive over a 8x8x8 grid: every code distinct and in range.
	seen := make(map[uint64]bool, 512)
	for x := uint32(0); x < 8; x++ {
		for y := uint32(0); y < 8; y++ {
			for z := uint32(0); z < 8; z++ {
				h := hilbert(3, 3, [domain.MaxDims]uint32{x, y, z})
				if h >= 512 {
					t.Fatalf("code %d out of range", h)
				}
				if seen[h] {
					t.Fatalf("duplicate code %d", h)
				}
				seen[h] = true
			}
		}
	}
}

func TestHilbertAdjacency(t *testing.T) {
	// Consecutive Hilbert codes are face-adjacent cells: the defining
	// property Z-order lacks.
	for h := uint64(0); h < 511; h++ {
		a := unhilbert(3, 3, h)
		b := unhilbert(3, 3, h+1)
		dist := 0
		for d := 0; d < 3; d++ {
			diff := int(a[d]) - int(b[d])
			if diff < 0 {
				diff = -diff
			}
			dist += diff
		}
		if dist != 1 {
			t.Fatalf("codes %d,%d map to cells %v,%v (L1 distance %d)", h, h+1, a, b, dist)
		}
	}
}

func TestHilbertIndexWorks(t *testing.T) {
	g := domain.Box3(0, 0, 0, 63, 63, 63)
	x, err := NewIndexCurve(g, 8, 3, CurveHilbert)
	if err != nil {
		t.Fatal(err)
	}
	// Full coverage and consistency, as for Z-order.
	if got := x.ServersFor(g); len(got) != 8 {
		t.Fatalf("global query servers = %v", got)
	}
	var vol int64
	for s := 0; s < 8; s++ {
		for _, b := range x.ServerCells(s) {
			vol += b.Volume()
		}
	}
	if vol != g.Volume() {
		t.Fatalf("cells cover %d of %d", vol, g.Volume())
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		p := domain.Point{rng.Int63n(64), rng.Int63n(64), rng.Int63n(64)}
		s := x.ServerForPoint(p)
		owners := x.ServersFor(domain.Box3(p[0], p[1], p[2], p[0], p[1], p[2]))
		if len(owners) != 1 || owners[0] != s {
			t.Fatalf("point %v: %d vs %v", p, s, owners)
		}
	}
}

// TestCurveLocalityAblation compares the server fan-out of box queries
// under the two curves. Hilbert's guaranteed cell adjacency gives it an
// edge for queries near the cell size; at larger query sizes the two
// are comparable. The hard assertion is parity within 10%; the measured
// means are logged for the ablation record.
func TestCurveLocalityAblation(t *testing.T) {
	g := domain.Box3(0, 0, 0, 127, 127, 127)
	zi, err := NewIndexCurve(g, 16, 4, CurveZ)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := NewIndexCurve(g, 16, 4, CurveHilbert)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for _, size := range []int64{8, 16, 32} {
		var zTotal, hTotal int
		const queries = 400
		for i := 0; i < queries; i++ {
			lim := 128 - size
			x0, y0, z0 := rng.Int63n(lim), rng.Int63n(lim), rng.Int63n(lim)
			q := domain.Box3(x0, y0, z0, x0+size-1, y0+size-1, z0+size-1)
			zTotal += len(zi.ServersFor(q))
			hTotal += len(hi.ServersFor(q))
		}
		t.Logf("query %d^3: mean servers touched z-order %.2f, hilbert %.2f",
			size, float64(zTotal)/queries, float64(hTotal)/queries)
		if float64(hTotal) > float64(zTotal)*1.10 {
			t.Fatalf("query %d^3: hilbert fan-out %d far above z-order %d", size, hTotal, zTotal)
		}
	}
}

func TestCurveStrings(t *testing.T) {
	if CurveZ.String() != "z-order" || CurveHilbert.String() != "hilbert" || Curve(9).String() != "curve(?)" {
		t.Fatal("curve strings wrong")
	}
}

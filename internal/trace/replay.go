package trace

import (
	"fmt"
	"sync"
)

// Executor applies one trace event to a live system. internal/workflow
// provides the concrete executor that drives a staging group; keeping
// the interface here lets the replay engine live with the format
// (trace cannot import workflow — staging imports trace).
type Executor interface {
	Apply(ev Event) error
}

// DivergenceError reports a replay that stopped reproducing the
// recorded run: the event at logical clock LC produced a different
// outcome than the recording (wrong bytes on a get, a wlog replay
// divergence, an operation that cannot complete).
type DivergenceError struct {
	LC  uint64
	Ev  Event
	Err error
}

func (e *DivergenceError) Error() string {
	return fmt.Sprintf("trace: replay diverged at lc=%d (%s): %v", e.LC, e.Ev, e.Err)
}

func (e *DivergenceError) Unwrap() error { return e.Err }

// Replayer drives an Executor through a recorded trace in logical
// clock order. The clock is the trace itself — the replayer never
// consults wall time, so outcomes cannot depend on machine speed.
type Replayer struct {
	header Header
	events []Event
	pos    int
}

// NewReplayer wraps a decoded trace.
func NewReplayer(h Header, events []Event) *Replayer {
	return &Replayer{header: h, events: events}
}

// Header returns the trace header.
func (r *Replayer) Header() Header { return r.header }

// Pos reports how many events have been applied.
func (r *Replayer) Pos() int { return r.pos }

// Run applies every remaining event in order. Note events are skipped
// (they carry no replay semantics). Any executor error is wrapped in a
// DivergenceError naming the logical clock it happened at, so a
// failing replay pinpoints the exact step of the recorded schedule.
func (r *Replayer) Run(x Executor) error {
	var last uint64
	for ; r.pos < len(r.events); r.pos++ {
		ev := r.events[r.pos]
		if r.pos > 0 && ev.LC <= last {
			return fmt.Errorf("%w: lc=%d after lc=%d", ErrOrder, ev.LC, last)
		}
		last = ev.LC
		if ev.Kind == EvNote {
			continue
		}
		if err := x.Apply(ev); err != nil {
			if _, ok := err.(*DivergenceError); ok {
				return err
			}
			return &DivergenceError{LC: ev.LC, Ev: ev, Err: err}
		}
	}
	return nil
}

// Recorder accumulates the events of a run being recorded, stamping
// each with the next logical clock value. It is safe for concurrent
// use, though recorded schedules are normally produced serially —
// logical time only means something when the order is deterministic.
type Recorder struct {
	mu     sync.Mutex
	header Header
	events []Event
}

// NewRecorder starts a recording with the given header.
func NewRecorder(h Header) *Recorder {
	h.Version = FormatVersion
	return &Recorder{header: h}
}

// Record stamps ev with the next logical clock and retains it,
// returning the stamped event.
func (r *Recorder) Record(ev Event) Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	ev.LC = uint64(len(r.events))
	r.events = append(r.events, ev)
	return ev
}

// Len reports how many events have been recorded.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// SetDigest stores the recorded run's final workload digest in the
// header, making the trace self-checking on replay.
func (r *Recorder) SetDigest(d uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.header.Digest = d
}

// Header returns the header as it will be written.
func (r *Recorder) Header() Header {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.header
}

// Events returns a copy of the recorded events.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Encode serializes the recording as a trace file image.
func (r *Recorder) Encode() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Encode(r.header, r.events)
}

package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestAddAndSnapshotOrder(t *testing.T) {
	b := New(10)
	for i := int64(1); i <= 5; i++ {
		b.Add(Record{Op: OpPut, Version: i})
	}
	snap := b.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("len %d", len(snap))
	}
	for i, r := range snap {
		if r.Version != int64(i+1) || r.Seq != uint64(i) {
			t.Fatalf("snap[%d] = %+v", i, r)
		}
		if r.At.IsZero() {
			t.Fatal("timestamp not stamped")
		}
	}
}

func TestRingEviction(t *testing.T) {
	b := New(4)
	for i := int64(1); i <= 10; i++ {
		b.Add(Record{Op: OpGet, Version: i})
	}
	if b.Len() != 4 || b.Total() != 10 {
		t.Fatalf("len=%d total=%d", b.Len(), b.Total())
	}
	snap := b.Snapshot()
	want := []int64{7, 8, 9, 10}
	for i, w := range want {
		if snap[i].Version != w {
			t.Fatalf("snap = %v", snap)
		}
	}
}

func TestFilter(t *testing.T) {
	b := New(16)
	b.Add(Record{Op: OpPut})
	b.Add(Record{Op: OpGet})
	b.Add(Record{Op: OpPut})
	b.Add(Record{Op: OpCheckpoint})
	if got := b.Filter(OpPut); len(got) != 2 {
		t.Fatalf("filter put = %d", len(got))
	}
	if got := b.Filter(OpRecovery); got != nil {
		t.Fatalf("filter recovery = %v", got)
	}
}

func TestNilAndZeroBufferSafe(t *testing.T) {
	var b *Buffer
	b.Add(Record{Op: OpPut}) // must not panic
	if b.Len() != 0 || b.Total() != 0 || b.Snapshot() != nil {
		t.Fatal("nil buffer misbehaves")
	}
	var zero Buffer
	zero.Add(Record{Op: OpPut})
	if zero.Len() != 0 {
		t.Fatal("zero buffer retained a record")
	}
}

func TestMinimumCapacity(t *testing.T) {
	b := New(0)
	b.Add(Record{Op: OpPut, Version: 1})
	b.Add(Record{Op: OpPut, Version: 2})
	if b.Len() != 1 || b.Snapshot()[0].Version != 2 {
		t.Fatalf("capacity clamp broken: %v", b.Snapshot())
	}
}

func TestRecordString(t *testing.T) {
	r := Record{Seq: 3, Op: OpSuppressedPut, App: "sim/0", Name: "f", Version: 7, Bytes: 42, Detail: "x"}
	s := r.String()
	for _, want := range []string{"#3", "put-suppressed", "app=sim/0", "name=f", "v=7", "bytes=42", "x"} {
		if !strings.Contains(s, want) {
			t.Fatalf("%q missing %q", s, want)
		}
	}
}

func TestOpStrings(t *testing.T) {
	ops := map[Op]string{
		OpPut: "put", OpGet: "get", OpSuppressedPut: "put-suppressed",
		OpReplayGet: "get-replay", OpCheckpoint: "checkpoint",
		OpRecovery: "recovery", OpGC: "gc", OpLock: "lock",
	}
	for op, want := range ops {
		if op.String() != want {
			t.Fatalf("%d -> %q", op, op.String())
		}
	}
	if Op(99).String() != "op(99)" {
		t.Fatal("unknown op string")
	}
}

func TestDump(t *testing.T) {
	b := New(4)
	if rs, total := b.Dump(); rs != nil || total != 0 {
		t.Fatalf("empty dump: %v %d", rs, total)
	}
	for i := int64(1); i <= 10; i++ {
		b.Add(Record{Op: OpPut, Version: i})
	}
	rs, total := b.Dump()
	if total != 10 || len(rs) != 4 {
		t.Fatalf("dump: %d records, total %d", len(rs), total)
	}
	for i, want := range []int64{7, 8, 9, 10} {
		if rs[i].Version != want {
			t.Fatalf("dump order: %v", rs)
		}
	}
}

// TestConcurrentAppendDump hammers Add against Dump under -race: the
// dump must always be internally consistent (strictly increasing
// sequence numbers, total >= highest seq seen) however the appends
// interleave, because the copy happens under one lock acquisition.
func TestConcurrentAppendDump(t *testing.T) {
	b := New(64)
	done := make(chan struct{})
	var appenders, dumpers sync.WaitGroup
	for g := 0; g < 4; g++ {
		appenders.Add(1)
		go func(g int) {
			defer appenders.Done()
			for i := 0; i < 2000; i++ {
				b.Add(Record{Op: OpPut, Version: int64(g*2000 + i)})
			}
		}(g)
	}
	for d := 0; d < 2; d++ {
		dumpers.Add(1)
		go func() {
			defer dumpers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				rs, total := b.Dump()
				for i := 1; i < len(rs); i++ {
					if rs[i].Seq <= rs[i-1].Seq {
						t.Errorf("dump tore: seq %d after %d", rs[i].Seq, rs[i-1].Seq)
						return
					}
				}
				if len(rs) > 0 && rs[len(rs)-1].Seq >= total {
					t.Errorf("dump total %d behind seq %d", total, rs[len(rs)-1].Seq)
					return
				}
			}
		}()
	}
	appenders.Wait()
	close(done)
	dumpers.Wait()
	if b.Total() != 8000 {
		t.Fatalf("total %d", b.Total())
	}
}

func TestConcurrentAdd(t *testing.T) {
	b := New(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b.Add(Record{Op: OpPut})
			}
		}()
	}
	wg.Wait()
	if b.Total() != 800 || b.Len() != 128 {
		t.Fatalf("total=%d len=%d", b.Total(), b.Len())
	}
	// Sequence numbers in a snapshot are strictly increasing.
	snap := b.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq <= snap[i-1].Seq {
			t.Fatal("snapshot out of order")
		}
	}
}

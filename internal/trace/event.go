package trace

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// EventKind classifies one replayable trace event. Workload kinds
// drive the staging client verbatim on replay; fault kinds re-arm the
// same injection the recorded run suffered; EvNote is an
// observability-only record (e.g. a GC pass harvested from a server's
// ring buffer) that replay skips.
type EventKind uint8

// Replayable event kinds.
const (
	EvPut EventKind = iota + 1
	EvGet
	EvCheckpoint
	EvRestart
	EvLock    // exclusive write lock acquire
	EvUnlock  // write lock release
	EvRLock   // shared read lock acquire
	EvRUnlock // read lock release
	EvFailStop
	EvBlackout
	EvTierFault
	EvFlood
	EvNote

	evKindMax = EvNote
)

func (k EventKind) String() string {
	switch k {
	case EvPut:
		return "put"
	case EvGet:
		return "get"
	case EvCheckpoint:
		return "checkpoint"
	case EvRestart:
		return "restart"
	case EvLock:
		return "lock"
	case EvUnlock:
		return "unlock"
	case EvRLock:
		return "rlock"
	case EvRUnlock:
		return "runlock"
	case EvFailStop:
		return "fail-stop"
	case EvBlackout:
		return "blackout"
	case EvTierFault:
		return "tier-fault"
	case EvFlood:
		return "flood"
	case EvNote:
		return "note"
	default:
		return fmt.Sprintf("ev(%d)", int(k))
	}
}

// Event is one entry of a recorded workflow trace: a workload-facing
// staging operation or an injected fault, positioned on the run's
// logical clock. Replay is driven purely by these fields — wall-clock
// time never appears, so the same trace produces the same outcome on
// any machine at any speed.
type Event struct {
	// LC is the logical clock: the event's position in the recorded
	// schedule. Events replay in strictly increasing LC order.
	LC uint64
	// Kind selects the operation.
	Kind EventKind
	// App is the acting client identity (component/rank, which is also
	// the wlog queue and — via the object-name prefix — the QoS tenant).
	App string
	// Name is the staged object or lock name.
	Name string
	// Version is the object version (puts/gets).
	Version int64
	// Bytes is the payload length (puts) or expected length (gets).
	Bytes int64
	// Seed parameterizes the deterministic payload generator for puts,
	// so the trace carries no bulk data yet replays byte-exactly.
	Seed int64
	// Sum is the expected FNV-1a digest of the bytes a get returns;
	// zero means unchecked. Replay fails loudly when a get's bytes
	// digest differently from the recorded run.
	Sum uint64
	// Logged selects the logged data path (PutWithLog/GetWithLog).
	Logged bool
	// Arg is the fault target: the staging slot for
	// EvFailStop/EvBlackout/EvTierFault, the burst size for EvFlood.
	Arg int64
	// Arg2 is the fault parameter: blackout duration in milliseconds,
	// or the failure.Kind code of a tier fault.
	Arg2 int64
}

// String renders the event for terminals.
func (e Event) String() string {
	s := fmt.Sprintf("lc=%d %s", e.LC, e.Kind)
	if e.App != "" {
		s += " app=" + e.App
	}
	if e.Name != "" {
		s += " name=" + e.Name
	}
	if e.Version != 0 {
		s += fmt.Sprintf(" v=%d", e.Version)
	}
	if e.Bytes != 0 {
		s += fmt.Sprintf(" bytes=%d", e.Bytes)
	}
	if e.Logged {
		s += " logged"
	}
	if e.Arg != 0 || e.Arg2 != 0 {
		s += fmt.Sprintf(" arg=%d,%d", e.Arg, e.Arg2)
	}
	return s
}

// maxTraceString bounds every encoded string field; anything longer is
// corrupt by definition (object and app names are short), and the
// bound keeps a rotted length prefix from ballooning a decode.
const maxTraceString = 4096

func appendString(buf []byte, s string) []byte {
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(s)))
	buf = append(buf, l[:]...)
	return append(buf, s...)
}

func readString(buf []byte) (string, []byte, error) {
	if len(buf) < 2 {
		return "", nil, ErrCorrupt
	}
	n := int(binary.BigEndian.Uint16(buf))
	buf = buf[2:]
	if n > maxTraceString || len(buf) < n {
		return "", nil, ErrCorrupt
	}
	return string(buf[:n]), buf[n:], nil
}

func appendU64(buf []byte, v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return append(buf, b[:]...)
}

func readU64(buf []byte) (uint64, []byte, error) {
	if len(buf) < 8 {
		return 0, nil, ErrCorrupt
	}
	return binary.BigEndian.Uint64(buf), buf[8:], nil
}

// encodeEvent serializes one event as the payload of a framed trace
// record: fixed-width big-endian integers and length-prefixed strings,
// so the byte image of a trace is deterministic across runs.
func encodeEvent(e Event) []byte {
	buf := make([]byte, 0, 64+len(e.App)+len(e.Name))
	buf = appendU64(buf, e.LC)
	flags := byte(0)
	if e.Logged {
		flags = 1
	}
	buf = append(buf, byte(e.Kind), flags)
	buf = appendString(buf, e.App)
	buf = appendString(buf, e.Name)
	buf = appendU64(buf, uint64(e.Version))
	buf = appendU64(buf, uint64(e.Bytes))
	buf = appendU64(buf, uint64(e.Seed))
	buf = appendU64(buf, e.Sum)
	buf = appendU64(buf, uint64(e.Arg))
	buf = appendU64(buf, uint64(e.Arg2))
	return buf
}

// decodeEvent is the inverse of encodeEvent; every malformed input
// returns ErrCorrupt rather than panicking.
func decodeEvent(buf []byte) (Event, error) {
	var e Event
	var err error
	if e.LC, buf, err = readU64(buf); err != nil {
		return e, err
	}
	if len(buf) < 2 {
		return e, ErrCorrupt
	}
	e.Kind = EventKind(buf[0])
	if e.Kind < EvPut || e.Kind > evKindMax {
		return e, fmt.Errorf("%w: unknown event kind %d", ErrCorrupt, buf[0])
	}
	if buf[1] > 1 {
		return e, fmt.Errorf("%w: bad flag byte %#x", ErrCorrupt, buf[1])
	}
	e.Logged = buf[1] == 1
	buf = buf[2:]
	if e.App, buf, err = readString(buf); err != nil {
		return e, err
	}
	if e.Name, buf, err = readString(buf); err != nil {
		return e, err
	}
	var u uint64
	if u, buf, err = readU64(buf); err != nil {
		return e, err
	}
	e.Version = int64(u)
	if u, buf, err = readU64(buf); err != nil {
		return e, err
	}
	e.Bytes = int64(u)
	if u, buf, err = readU64(buf); err != nil {
		return e, err
	}
	e.Seed = int64(u)
	if e.Sum, buf, err = readU64(buf); err != nil {
		return e, err
	}
	if u, buf, err = readU64(buf); err != nil {
		return e, err
	}
	e.Arg = int64(u)
	if u, buf, err = readU64(buf); err != nil {
		return e, err
	}
	e.Arg2 = int64(u)
	if len(buf) != 0 {
		return e, fmt.Errorf("%w: %d trailing bytes after event", ErrCorrupt, len(buf))
	}
	return e, nil
}

// FromRecord converts one ring-buffer observability record into a
// trace event, for exporting a live server's recent activity as a
// trace file (dsctl trace dump). Ring records carry no payload seeds,
// so puts exported this way replay with the synthetic generator seeded
// by version; operations with no replay semantics map to EvNote.
func FromRecord(r Record) Event {
	e := Event{
		App:     r.App,
		Name:    r.Name,
		Version: r.Version,
		Bytes:   r.Bytes,
		Seed:    r.Version,
	}
	switch r.Op {
	// The ring only records puts and gets on the logged data path
	// (unlogged ops leave no record), so all four data kinds replay
	// through PutWithLog/GetWithLog.
	case OpPut, OpSuppressedPut:
		e.Kind, e.Logged = EvPut, true
	case OpGet, OpReplayGet:
		e.Kind, e.Logged = EvGet, true
	case OpCheckpoint:
		e.Kind = EvCheckpoint
	case OpRecovery:
		e.Kind = EvRestart
	case OpLock:
		// The ring folds all four lock verbs into OpLock and keeps the
		// verb in Detail; failed attempts replay as nothing.
		switch {
		case strings.HasSuffix(r.Detail, "err"):
			e.Kind = EvNote
		case r.Detail == "acquire write":
			e.Kind = EvLock
		case r.Detail == "release write":
			e.Kind = EvUnlock
		case r.Detail == "acquire read":
			e.Kind = EvRLock
		case r.Detail == "release read":
			e.Kind = EvRUnlock
		default:
			e.Kind = EvNote
		}
	default:
		e.Kind = EvNote
	}
	return e
}

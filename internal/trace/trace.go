// Package trace is a lightweight fixed-capacity event tracer for the
// staging servers: a lock-protected ring buffer of typed records that
// captures the protocol activity (puts, gets, checkpoints, recoveries,
// suppressions, GC passes) without unbounded growth. dsctl's trace
// command and the debugging tests read it back.
package trace

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Op classifies a traced staging operation.
type Op int

// Traced operations.
const (
	OpPut Op = iota + 1
	OpGet
	OpSuppressedPut
	OpReplayGet
	OpCheckpoint
	OpRecovery
	OpGC
	OpLock
)

func (o Op) String() string {
	switch o {
	case OpPut:
		return "put"
	case OpGet:
		return "get"
	case OpSuppressedPut:
		return "put-suppressed"
	case OpReplayGet:
		return "get-replay"
	case OpCheckpoint:
		return "checkpoint"
	case OpRecovery:
		return "recovery"
	case OpGC:
		return "gc"
	case OpLock:
		return "lock"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Record is one traced event.
type Record struct {
	Seq     uint64
	At      time.Time
	Op      Op
	App     string
	Name    string
	Version int64
	Bytes   int64
	Detail  string
}

// String renders the record for terminals.
func (r Record) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "#%d %s %s", r.Seq, r.At.Format("15:04:05.000"), r.Op)
	if r.App != "" {
		fmt.Fprintf(&sb, " app=%s", r.App)
	}
	if r.Name != "" {
		fmt.Fprintf(&sb, " name=%s", r.Name)
	}
	if r.Version != 0 {
		fmt.Fprintf(&sb, " v=%d", r.Version)
	}
	if r.Bytes != 0 {
		fmt.Fprintf(&sb, " bytes=%d", r.Bytes)
	}
	if r.Detail != "" {
		fmt.Fprintf(&sb, " %s", r.Detail)
	}
	return sb.String()
}

// Buffer is a fixed-capacity ring of records. The zero Buffer is
// disabled (records are dropped); create with New.
type Buffer struct {
	mu   sync.Mutex
	ring []Record
	next uint64 // total records ever added
	cap  int
}

// New creates a tracer retaining the last capacity records.
func New(capacity int) *Buffer {
	if capacity < 1 {
		capacity = 1
	}
	return &Buffer{ring: make([]Record, 0, capacity), cap: capacity}
}

// Add appends a record, stamping sequence and time.
func (b *Buffer) Add(r Record) {
	if b == nil || b.cap == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	r.Seq = b.next
	if r.At.IsZero() {
		r.At = time.Now()
	}
	b.next++
	if len(b.ring) < b.cap {
		b.ring = append(b.ring, r)
		return
	}
	// Index in uint64: int(r.Seq) goes negative once the total count
	// passes MaxInt64, and a negative index panics the server.
	b.ring[r.Seq%uint64(b.cap)] = r
}

// Len reports how many records are retained.
func (b *Buffer) Len() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.ring)
}

// Total reports how many records were ever added (including evicted).
func (b *Buffer) Total() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.next
}

// Snapshot returns the retained records in chronological order.
func (b *Buffer) Snapshot() []Record {
	rs, _ := b.Dump()
	return rs
}

// Dump returns the retained records in chronological order plus the
// total ever added, captured atomically under one lock acquisition —
// the read-under-wrap-safe snapshot API. Concurrent Adds never tear a
// dump: the copy and the wrap arithmetic both happen inside the same
// critical section, and the uint64 modulo never goes negative however
// large the total grows.
func (b *Buffer) Dump() ([]Record, uint64) {
	if b == nil {
		return nil, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.ring) == 0 {
		return nil, b.next
	}
	out := make([]Record, 0, len(b.ring))
	if len(b.ring) < b.cap {
		return append(out, b.ring...), b.next
	}
	start := int(b.next % uint64(b.cap))
	out = append(out, b.ring[start:]...)
	out = append(out, b.ring[:start]...)
	return out, b.next
}

// Filter returns the retained records matching op (chronological).
func (b *Buffer) Filter(op Op) []Record {
	var out []Record
	for _, r := range b.Snapshot() {
		if r.Op == op {
			out = append(out, r)
		}
	}
	return out
}

package trace

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzTraceRoundTrip: any header/event combination the encoder can
// produce must decode back to exactly what went in.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add("soak", int64(7), uint64(3), "prod/0", "g0/field", int64(5), int64(4096), int64(99), uint64(0xabc), true, int64(2), int64(40))
	f.Add("", int64(0), uint64(0), "", "", int64(0), int64(0), int64(0), uint64(0), false, int64(0), int64(0))
	f.Add("x", int64(-1), uint64(12), "a/b", "c", int64(-5), int64(-1), int64(-9), uint64(1), false, int64(-3), int64(-4))
	f.Fuzz(func(t *testing.T, label string, seed int64, sum uint64,
		app, name string, version, size, pseed int64, evsum uint64, logged bool, arg, arg2 int64) {
		if len(label) > maxTraceString || len(app) > maxTraceString || len(name) > maxTraceString {
			t.Skip()
		}
		h := Header{
			Label: label, Seed: seed, Servers: 4, Spares: 1, Bits: 2,
			ElemSize: 1, Replicas: 2, DimX: 8, DimY: 8, DimZ: 1,
			Digest: sum, Flags: FlagFaults,
		}
		evs := []Event{
			{LC: 0, Kind: EvPut, App: app, Name: name, Version: version, Bytes: size, Seed: pseed, Sum: evsum, Logged: logged, Arg: arg, Arg2: arg2},
			{LC: 1, Kind: EvTierFault, Arg: arg, Arg2: arg2},
		}
		img := Encode(h, evs)
		h2, evs2, err := Decode(img)
		if err != nil {
			t.Fatalf("decode of encoded trace: %v", err)
		}
		h.Version = FormatVersion
		if h2 != h {
			t.Fatalf("header: got %+v want %+v", h2, h)
		}
		if len(evs2) != len(evs) {
			t.Fatalf("events: got %d want %d", len(evs2), len(evs))
		}
		for i := range evs {
			if evs2[i] != evs[i] {
				t.Fatalf("event %d: got %+v want %+v", i, evs2[i], evs[i])
			}
		}
	})
}

// FuzzTraceDecode: arbitrary bytes — including torn, truncated, and
// bit-rotted variants of valid traces — must either decode cleanly or
// fail with one of the typed errors. Never panic, never allocate
// absurdly, never return garbage silently.
func FuzzTraceDecode(f *testing.F) {
	valid := Encode(sampleHeader(), sampleEvents())
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add([]byte(fileMagic))
	f.Add([]byte("garbage"))
	rotted := append([]byte(nil), valid...)
	rotted[len(fileMagic)+30] ^= 0x40
	f.Add(rotted)
	f.Fuzz(func(t *testing.T, data []byte) {
		h, evs, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) &&
				!errors.Is(err, ErrTorn) && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrOrder) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// A successful decode must re-encode to the identical image.
		if !bytes.Equal(Encode(h, evs), data) {
			t.Fatalf("accepted image is not canonical (%d bytes, %d events)", len(data), len(evs))
		}
	})
}

package trace

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"gospaces/internal/ckpt"
)

func sampleHeader() Header {
	return Header{
		Label: "unit", Seed: 42, Servers: 4, Spares: 2, Bits: 2,
		ElemSize: 1, Replicas: 2, DimX: 64, DimY: 64, DimZ: 1,
		MemBudget: 16384, Groups: 2, Steps: 6,
		Flags:  FlagFaults | FlagTier,
		Digest: 0xdeadbeefcafef00d,
	}
}

func sampleEvents() []Event {
	return []Event{
		{LC: 0, Kind: EvLock, App: "soak/prod/0", Name: "soak/lk/0"},
		{LC: 1, Kind: EvPut, App: "soak/prod/0", Name: "soak/g0/field", Version: 1, Bytes: 4096, Seed: 77, Logged: true},
		{LC: 2, Kind: EvUnlock, App: "soak/prod/0", Name: "soak/lk/0"},
		{LC: 3, Kind: EvFailStop, Arg: 2},
		{LC: 4, Kind: EvGet, App: "soak/cons/0", Name: "soak/g0/field", Version: 1, Bytes: 4096, Sum: 12345, Logged: true},
		{LC: 5, Kind: EvBlackout, Arg: 1, Arg2: 40},
		{LC: 6, Kind: EvCheckpoint, App: "soak/prod/0"},
		{LC: 7, Kind: EvRestart, App: "soak/prod/0"},
		{LC: 8, Kind: EvNote, Name: "gc", Bytes: 9},
	}
}

func TestFileRoundTrip(t *testing.T) {
	h, evs := sampleHeader(), sampleEvents()
	img := Encode(h, evs)
	h2, evs2, err := Decode(img)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	h.Version = FormatVersion
	if h2 != h {
		t.Fatalf("header round trip:\n got %+v\nwant %+v", h2, h)
	}
	if !reflect.DeepEqual(evs2, evs) {
		t.Fatalf("events round trip:\n got %+v\nwant %+v", evs2, evs)
	}
	// Byte-determinism: encoding the decode is the identical image.
	if img2 := Encode(h2, evs2); string(img2) != string(img) {
		t.Fatal("re-encoded image differs")
	}
}

func TestFileRoundTripOnDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "run.trace")
	h, evs := sampleHeader(), sampleEvents()
	if err := WriteFile(path, h, evs); err != nil {
		t.Fatalf("write: %v", err)
	}
	h2, evs2, err := ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if h2.Label != h.Label || h2.Digest != h.Digest || len(evs2) != len(evs) {
		t.Fatalf("disk round trip: %+v, %d events", h2, len(evs2))
	}
	// No temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("stray files: %v", entries)
	}
}

func TestDecodeEmptyEvents(t *testing.T) {
	img := Encode(Header{Label: "empty"}, nil)
	h, evs, err := Decode(img)
	if err != nil || len(evs) != 0 || h.Label != "empty" {
		t.Fatalf("empty trace: %v %v %v", h, evs, err)
	}
}

func TestDecodeBadMagic(t *testing.T) {
	if _, _, err := Decode([]byte("NOTATRACEFILE AT ALL")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("got %v, want ErrBadMagic", err)
	}
	// A short fragment that is a prefix of the magic is torn, not alien.
	if _, _, err := Decode([]byte(fileMagic[:3])); !errors.Is(err, ErrTorn) {
		t.Fatalf("got %v, want ErrTorn", err)
	}
	if _, _, err := Decode([]byte("XY")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("got %v, want ErrBadMagic", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	img := Encode(sampleHeader(), sampleEvents())
	// Every proper prefix inside the record stream must fail typed —
	// torn at a frame boundary cut, corrupt never (CRC can't pass on a
	// truncation because the length check fires first).
	for cut := len(fileMagic); cut < len(img); cut += 7 {
		_, _, err := Decode(img[:cut])
		if !errors.Is(err, ErrTorn) {
			t.Fatalf("cut=%d: got %v, want ErrTorn", cut, err)
		}
	}
}

func TestDecodeBitRot(t *testing.T) {
	img := Encode(sampleHeader(), sampleEvents())
	// Flip one bit in every byte position past the magic; each must
	// fail with a typed error, never panic, never succeed.
	for i := len(fileMagic); i < len(img); i++ {
		rotted := append([]byte(nil), img...)
		rotted[i] ^= 0x10
		_, _, err := Decode(rotted)
		if err == nil {
			t.Fatalf("bit rot at %d decoded cleanly", i)
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTorn) && !errors.Is(err, ErrOrder) && !errors.Is(err, ErrVersion) {
			t.Fatalf("bit rot at %d: untyped error %v", i, err)
		}
	}
}

func TestDecodeReordered(t *testing.T) {
	evs := sampleEvents()[:2]
	evs[0].LC, evs[1].LC = 1, 0
	img := Encode(sampleHeader(), evs)
	if _, _, err := Decode(img); !errors.Is(err, ErrOrder) {
		t.Fatalf("got %v, want ErrOrder", err)
	}
}

func TestDecodeFutureVersion(t *testing.T) {
	h := sampleHeader()
	h.Version = FormatVersion
	// Encode forces the current version; hand-craft a future one by
	// bumping the header payload's leading version field and re-sealing.
	hdr := encodeHeader(h)
	hdr[3] = 99
	img := append([]byte(fileMagic), ckpt.SealRecord(0, hdr)...)
	if _, _, err := Decode(img); !errors.Is(err, ErrVersion) {
		t.Fatalf("got %v, want ErrVersion", err)
	}
}

func TestReplayerOrderAndDivergence(t *testing.T) {
	evs := []Event{
		{LC: 0, Kind: EvPut, Name: "a"},
		{LC: 1, Kind: EvNote},
		{LC: 2, Kind: EvGet, Name: "a"},
	}
	var applied []Event
	x := execFunc(func(ev Event) error {
		applied = append(applied, ev)
		return nil
	})
	r := NewReplayer(Header{}, evs)
	if err := r.Run(x); err != nil {
		t.Fatal(err)
	}
	if len(applied) != 2 || applied[0].Kind != EvPut || applied[1].Kind != EvGet {
		t.Fatalf("applied %+v", applied)
	}

	boom := errors.New("bytes differ")
	r2 := NewReplayer(Header{}, evs)
	err := r2.Run(execFunc(func(ev Event) error {
		if ev.Kind == EvGet {
			return boom
		}
		return nil
	}))
	var div *DivergenceError
	if !errors.As(err, &div) || div.LC != 2 || !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}

	// Out-of-order logical clocks are rejected before application.
	bad := []Event{{LC: 5, Kind: EvPut}, {LC: 5, Kind: EvPut}}
	if err := NewReplayer(Header{}, bad).Run(x); !errors.Is(err, ErrOrder) {
		t.Fatalf("got %v, want ErrOrder", err)
	}
}

func TestRecorderStampsClock(t *testing.T) {
	r := NewRecorder(Header{Label: "rec", Seed: 9})
	for i := 0; i < 5; i++ {
		ev := r.Record(Event{Kind: EvPut, Version: int64(i)})
		if ev.LC != uint64(i) {
			t.Fatalf("lc %d at %d", ev.LC, i)
		}
	}
	r.SetDigest(7)
	h, evs, err := Decode(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if h.Digest != 7 || h.Label != "rec" || len(evs) != 5 || r.Len() != 5 {
		t.Fatalf("recorder encode: %+v, %d events", h, len(evs))
	}
}

func TestFromRecordMapping(t *testing.T) {
	cases := []struct {
		op     Op
		detail string
		kind   EventKind
		logged bool
	}{
		{OpPut, "", EvPut, true},
		{OpSuppressedPut, "", EvPut, true},
		{OpGet, "", EvGet, true},
		{OpReplayGet, "", EvGet, true},
		{OpCheckpoint, "", EvCheckpoint, false},
		{OpRecovery, "", EvRestart, false},
		{OpLock, "acquire write", EvLock, false},
		{OpLock, "release write", EvUnlock, false},
		{OpLock, "acquire read", EvRLock, false},
		{OpLock, "release read", EvRUnlock, false},
		{OpLock, "acquire write err", EvNote, false},
		{OpLock, "", EvNote, false},
		{OpGC, "", EvNote, false},
	}
	for _, c := range cases {
		ev := FromRecord(Record{Op: c.op, App: "a", Name: "n", Version: 3, Bytes: 8, Detail: c.detail})
		if ev.Kind != c.kind || ev.Logged != c.logged {
			t.Fatalf("%v -> %+v", c.op, ev)
		}
		if ev.App != "a" || ev.Name != "n" || ev.Version != 3 || ev.Seed != 3 {
			t.Fatalf("%v fields: %+v", c.op, ev)
		}
	}
}

// execFunc adapts a function to the Executor interface.
type execFunc func(Event) error

func (f execFunc) Apply(ev Event) error { return f(ev) }

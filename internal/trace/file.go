// Durable trace files: a versioned, CRC-framed container that turns
// the in-memory trace into a first-class recorded artifact. The file
// is a magic string followed by ckpt.SealRecord frames (the same
// Castagnoli-CRC framing the checkpoint and cold-tier records use, so
// one codec and one fuzz corpus cover all three): frame 0 carries the
// header, frames 1..N carry one event each, sequence-numbered so
// reordering is detected, CRC'd so bit rot is detected, and
// self-delimiting so truncation is detected. Every failure mode maps
// to a typed error — a torn or rotted trace never panics and never
// replays silently wrong.
package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"gospaces/internal/ckpt"
)

// Typed decode failures, distinguished so tests and tools can tell a
// wrong file from a damaged one.
var (
	// ErrBadMagic: the file is not a gospaces trace at all.
	ErrBadMagic = errors.New("trace: bad trace-file magic")
	// ErrVersion: a trace from an incompatible format version.
	ErrVersion = errors.New("trace: unsupported trace format version")
	// ErrTorn: the file ends mid-record (a torn or truncated write).
	ErrTorn = errors.New("trace: torn trace file")
	// ErrCorrupt: framing or CRC verification failed (bit rot), or a
	// record's payload does not decode.
	ErrCorrupt = errors.New("trace: corrupt trace record")
	// ErrOrder: records survived CRC but are not in sequence.
	ErrOrder = errors.New("trace: trace records out of order")
)

// fileMagic opens every trace file.
const fileMagic = "GTRACE1\n"

// FormatVersion is the current trace file format version.
const FormatVersion = 1

// Header flags.
const (
	// FlagFaults marks a trace whose schedule injects faults.
	FlagFaults uint32 = 1 << iota
	// FlagTier marks a trace recorded over tiered (spilling) servers.
	FlagTier
	// FlagOverload marks a trace recorded with admission control on and
	// a flood tenant in the schedule.
	FlagOverload
)

// Header describes the environment a trace was recorded in — enough
// for a replayer to rebuild an equivalent staging group from scratch.
type Header struct {
	// Version is the trace format version (FormatVersion when written).
	Version uint32
	// Label names the scenario for humans ("soak seed=7", a bug id).
	Label string
	// Seed is the schedule seed the trace was generated from.
	Seed int64
	// Servers, Spares: staging group size and warm-spare pool.
	Servers int
	Spares  int
	// Bits, ElemSize, Replicas: staging config (DHT refinement bits,
	// element size, wlog replication factor).
	Bits     int
	ElemSize int
	Replicas int
	// DimX/DimY/DimZ are the global domain extents; every traced
	// operation spans the full domain.
	DimX, DimY, DimZ int64
	// MemBudget is the per-server memory budget in bytes (0 = none);
	// with FlagTier it is what forces spills.
	MemBudget int64
	// Groups, Steps record the workload shape for provenance.
	Groups int
	Steps  int
	// Flags is the FlagFaults/FlagTier/FlagOverload bitmap.
	Flags uint32
	// Digest is the expected workload digest: the ordered fold of every
	// checked get's payload sum. Zero means not recorded. Replay
	// recomputes it and must match.
	Digest uint64
}

func encodeHeader(h Header) []byte {
	buf := make([]byte, 0, 96+len(h.Label))
	var v [4]byte
	binary.BigEndian.PutUint32(v[:], h.Version)
	buf = append(buf, v[:]...)
	binary.BigEndian.PutUint32(v[:], h.Flags)
	buf = append(buf, v[:]...)
	buf = appendString(buf, h.Label)
	buf = appendU64(buf, uint64(h.Seed))
	for _, n := range []int{h.Servers, h.Spares, h.Bits, h.ElemSize, h.Replicas, h.Groups, h.Steps} {
		buf = appendU64(buf, uint64(n))
	}
	buf = appendU64(buf, uint64(h.DimX))
	buf = appendU64(buf, uint64(h.DimY))
	buf = appendU64(buf, uint64(h.DimZ))
	buf = appendU64(buf, uint64(h.MemBudget))
	buf = appendU64(buf, h.Digest)
	return buf
}

func decodeHeader(buf []byte) (Header, error) {
	var h Header
	if len(buf) < 8 {
		return h, ErrCorrupt
	}
	h.Version = binary.BigEndian.Uint32(buf)
	h.Flags = binary.BigEndian.Uint32(buf[4:])
	buf = buf[8:]
	if h.Version != FormatVersion {
		return h, fmt.Errorf("%w: got %d, want %d", ErrVersion, h.Version, FormatVersion)
	}
	var err error
	if h.Label, buf, err = readString(buf); err != nil {
		return h, err
	}
	var u uint64
	if u, buf, err = readU64(buf); err != nil {
		return h, err
	}
	h.Seed = int64(u)
	ints := []*int{&h.Servers, &h.Spares, &h.Bits, &h.ElemSize, &h.Replicas, &h.Groups, &h.Steps}
	for _, p := range ints {
		if u, buf, err = readU64(buf); err != nil {
			return h, err
		}
		*p = int(int64(u))
	}
	dims := []*int64{&h.DimX, &h.DimY, &h.DimZ, &h.MemBudget}
	for _, p := range dims {
		if u, buf, err = readU64(buf); err != nil {
			return h, err
		}
		*p = int64(u)
	}
	if h.Digest, buf, err = readU64(buf); err != nil {
		return h, err
	}
	if len(buf) != 0 {
		return h, fmt.Errorf("%w: %d trailing bytes after header", ErrCorrupt, len(buf))
	}
	return h, nil
}

// maxFramePayload bounds a single frame; real headers and events are
// well under a kilobyte, so a larger claimed length is corruption, not
// an allocation request.
const maxFramePayload = 1 << 20

// Encode serializes a complete trace file image: magic, header frame,
// then one frame per event in LC order.
func Encode(h Header, events []Event) []byte {
	h.Version = FormatVersion
	buf := make([]byte, 0, 256+64*len(events))
	buf = append(buf, fileMagic...)
	buf = append(buf, ckpt.SealRecord(0, encodeHeader(h))...)
	for i, e := range events {
		buf = append(buf, ckpt.SealRecord(uint64(i+1), encodeEvent(e))...)
	}
	return buf
}

// frameHeaderLen is the fixed prefix of a ckpt.SealRecord frame:
// 4-byte magic, 8-byte sequence, 8-byte payload length, 4-byte CRC.
const frameHeaderLen = 24

// nextFrame splits one sealed frame off data, verifying framing and
// CRC and that its sequence number equals want.
func nextFrame(data []byte, want uint64) (payload, rest []byte, err error) {
	if len(data) < frameHeaderLen {
		return nil, nil, fmt.Errorf("%w: %d bytes left mid-frame", ErrTorn, len(data))
	}
	if string(data[:4]) != "CKP1" {
		return nil, nil, fmt.Errorf("%w: bad frame magic at record %d", ErrCorrupt, want)
	}
	plen := binary.BigEndian.Uint64(data[12:20])
	if plen > maxFramePayload {
		return nil, nil, fmt.Errorf("%w: record %d claims %d payload bytes", ErrCorrupt, want, plen)
	}
	total := frameHeaderLen + int(plen)
	if len(data) < total {
		return nil, nil, fmt.Errorf("%w: record %d needs %d bytes, %d left", ErrTorn, want, total, len(data))
	}
	seq, payload, ok := ckpt.OpenRecord(data[:total])
	if !ok {
		return nil, nil, fmt.Errorf("%w: record %d failed CRC", ErrCorrupt, want)
	}
	if seq != want {
		return nil, nil, fmt.Errorf("%w: record %d carries sequence %d", ErrOrder, want, seq)
	}
	return payload, data[total:], nil
}

// Decode parses a trace file image back into its header and events,
// verifying magic, version, per-record CRC, sequence order, and the
// events' logical-clock order.
func Decode(data []byte) (Header, []Event, error) {
	var h Header
	if len(data) < len(fileMagic) {
		if bytes.HasPrefix([]byte(fileMagic), data) {
			return h, nil, fmt.Errorf("%w: %d-byte fragment", ErrTorn, len(data))
		}
		return h, nil, ErrBadMagic
	}
	if string(data[:len(fileMagic)]) != fileMagic {
		return h, nil, ErrBadMagic
	}
	data = data[len(fileMagic):]
	payload, data, err := nextFrame(data, 0)
	if err != nil {
		return h, nil, err
	}
	if h, err = decodeHeader(payload); err != nil {
		return h, nil, err
	}
	var events []Event
	for seq := uint64(1); len(data) > 0; seq++ {
		if payload, data, err = nextFrame(data, seq); err != nil {
			return h, events, err
		}
		e, err := decodeEvent(payload)
		if err != nil {
			return h, events, err
		}
		if e.LC != seq-1 {
			return h, events, fmt.Errorf("%w: record %d carries lc=%d", ErrOrder, seq, e.LC)
		}
		events = append(events, e)
	}
	return h, events, nil
}

// WriteFile persists a trace atomically: the image is written to a
// temp file in the target directory and renamed into place, so a crash
// mid-write leaves no half-trace under the final name.
func WriteFile(path string, h Header, events []Event) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".trace-*")
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(Encode(h, events)); err != nil {
		tmp.Close()
		return fmt.Errorf("trace: write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("trace: close %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("trace: commit %s: %w", path, err)
	}
	return nil
}

// ReadFile loads and verifies a trace file.
func ReadFile(path string) (Header, []Event, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Header{}, nil, fmt.Errorf("trace: %w", err)
	}
	return Decode(data)
}

package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("count = %d", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(100)
	g.Add(-30)
	if g.Value() != 70 {
		t.Fatalf("gauge = %d", g.Value())
	}
}

func TestTimerStats(t *testing.T) {
	var tm Timer
	tm.Observe(2 * time.Second)
	tm.Observe(4 * time.Second)
	tm.Observe(6 * time.Second)
	if tm.Count() != 3 || tm.Total() != 12*time.Second || tm.Mean() != 4*time.Second {
		t.Fatalf("count=%d total=%v mean=%v", tm.Count(), tm.Total(), tm.Mean())
	}
	mn, mx := tm.MinMax()
	if mn != 2*time.Second || mx != 6*time.Second {
		t.Fatalf("min=%v max=%v", mn, mx)
	}
}

func TestTimerEmptyMean(t *testing.T) {
	var tm Timer
	if tm.Mean() != 0 {
		t.Fatal("empty timer mean should be 0")
	}
}

func TestRegistryIdentityAndSnapshot(t *testing.T) {
	r := NewRegistry()
	if r.Counter("puts") != r.Counter("puts") {
		t.Fatal("same name returned different counters")
	}
	r.Counter("puts").Add(3)
	r.Gauge("bytes").Set(42)
	r.Timer("write").Observe(time.Millisecond)
	snap := r.Snapshot()
	for _, want := range []string{"counter puts = 3", "gauge bytes = 42", "timer write: count=1"} {
		if !strings.Contains(snap, want) {
			t.Fatalf("snapshot missing %q:\n%s", want, snap)
		}
	}
}

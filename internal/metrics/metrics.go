// Package metrics provides the lightweight counters, gauges, and timing
// accumulators used by the staging service and the experiment harness:
// cumulative write response time, staging memory usage, replay counts.
// All types are safe for concurrent use.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable int64 value, e.g. bytes currently resident.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Timer accumulates durations: total, count, min, max.
type Timer struct {
	mu    sync.Mutex
	total time.Duration
	count int64
	min   time.Duration
	max   time.Duration
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total += d
	if t.count == 0 || d < t.min {
		t.min = d
	}
	if d > t.max {
		t.max = d
	}
	t.count++
}

// Total returns the cumulative observed time.
func (t *Timer) Total() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Count returns the number of observations.
func (t *Timer) Count() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// Mean returns the average observation, or 0 with no observations.
func (t *Timer) Mean() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.count == 0 {
		return 0
	}
	return t.total / time.Duration(t.count)
}

// MinMax returns the smallest and largest observations.
func (t *Timer) MinMax() (time.Duration, time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.min, t.max
}

// Registry is a named collection of metrics, one per staging server or
// experiment run.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		timers:   make(map[string]*Timer),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns (creating if needed) the named timer.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Snapshot renders all metrics sorted by name, for logs and the dsctl
// stats command.
func (r *Registry) Snapshot() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lines []string
	for n, c := range r.counters {
		lines = append(lines, fmt.Sprintf("counter %s = %d", n, c.Value()))
	}
	for n, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("gauge %s = %d", n, g.Value()))
	}
	for n, t := range r.timers {
		lines = append(lines, fmt.Sprintf("timer %s: count=%d total=%v mean=%v", n, t.Count(), t.Total(), t.Mean()))
	}
	sort.Strings(lines)
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}

package workflow

import (
	"fmt"
	"testing"

	"gospaces/internal/ckpt"
)

// The nemesis soak is the HA-recovery acceptance gate: redundant
// supervisors over a live logged data path, a staging server
// fail-stopped mid-run, and the recovery leader killed at a chosen
// promotion stage. Every seeded run must end with all slots alive,
// exactly one promotion and one spare spent per death, a takeover
// through the replicated intent journal, byte-exact reads and replay,
// and a single lease holder.

// checkNemesis asserts the standing invariants every soak must hold.
// Transient blackouts under Chaos can legitimately exceed the
// detection window and trigger extra (correct) promotions, so the
// strict one-promotion-per-death equality is asserted only by the
// deterministic runs; the no-double-spend ledger — one spare and one
// epoch bump per promotion — holds regardless.
func checkNemesis(t *testing.T, res NemesisResult, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("nemesis run failed: %v (result %+v)", err, res)
	}
	if res.Promotions < int64(res.Deaths) {
		t.Fatalf("%d promotions for %d deaths (dead slot left behind): %+v", res.Promotions, res.Deaths, res)
	}
	if int64(res.SparesConsumed) != res.Promotions {
		t.Fatalf("spares consumed %d for %d promotions (double-spent spare): %+v", res.SparesConsumed, res.Promotions, res)
	}
	if res.ReplayDiverged {
		t.Fatalf("replay diverged from the restored event log: %+v", res)
	}
	if res.Leaders != 1 {
		t.Fatalf("%d lease holders at end, want exactly 1: %+v", res.Leaders, res)
	}
	if res.ReplayEvents == 0 {
		t.Fatalf("no events replayed through the restored log: %+v", res)
	}
	if res.Epoch != uint64(1)+uint64(res.Promotions) {
		t.Fatalf("final epoch %d after %d promotions: %+v", res.Epoch, res.Promotions, res)
	}
}

// checkStrict additionally pins exactly one promotion per death —
// valid whenever no transient chaos can fake extra confirmed deaths.
func checkStrict(t *testing.T, res NemesisResult) {
	t.Helper()
	if res.Promotions != int64(res.Deaths) {
		t.Fatalf("promotions %d for %d deaths (double promotion?): %+v", res.Promotions, res.Deaths, res)
	}
}

// TestNemesisLeaderKilledMidPromotion kills the recovery leader at a
// rotating promotion stage across >= 20 seeded runs (fewer in -short).
func TestNemesisLeaderKilledMidPromotion(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 4
	}
	for s := 0; s < seeds; s++ {
		seed := int64(1000 + s)
		stage := nemesisStages[s%len(nemesisStages)]
		t.Run(fmt.Sprintf("seed%d-%s", seed, stage), func(t *testing.T) {
			res, err := RunNemesis(NemesisOptions{Seed: seed, KillStage: stage})
			checkNemesis(t, res, err)
			checkStrict(t, res)
			if res.Takeovers == 0 || res.IntentResumes == 0 {
				t.Fatalf("leader killed at %q but no intent-journal takeover: %+v", stage, res)
			}
		})
	}
}

// TestNemesisDeposedLeaderFenced stalls the leader past its lease
// instead of killing it: a standby takes over and finishes the
// promotion, and the deposed leader's resumed stale calls must be
// rejected server-side by the fencing token.
func TestNemesisDeposedLeaderFenced(t *testing.T) {
	res, err := RunNemesis(NemesisOptions{Seed: 7, KillStage: "stall"})
	checkNemesis(t, res, err)
	checkStrict(t, res)
	if res.ServerFenced == 0 {
		t.Fatalf("deposed leader's stale calls were not rejected server-side: %+v", res)
	}
	if res.SupFenced == 0 {
		t.Fatalf("deposed leader never observed its own deposition: %+v", res)
	}
}

// TestNemesisSpareExhaustionHeals starts with an empty spare pool: the
// dead slot is stranded (clients observe ErrSlotDown) until a late
// AddSpare refills the pool, after which the backlog sweep promotes —
// with the leader killed mid-promotion for good measure.
func TestNemesisSpareExhaustionHeals(t *testing.T) {
	res, err := RunNemesis(NemesisOptions{Seed: 11, KillStage: "intent", SpareDelay: true})
	checkNemesis(t, res, err)
	checkStrict(t, res)
	if res.DeadRetries == 0 {
		t.Fatalf("stranded slot healed without a backlog retry: %+v", res)
	}
	if !res.DownObserved {
		t.Fatalf("no client observed ErrSlotDown while the slot was stranded: %+v", res)
	}
}

// TestNemesisChaosSoak layers seeded transient blackouts and random
// supervisor kills on top of the deterministic death.
func TestNemesisChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short")
	}
	for _, seed := range []int64{21, 22, 23} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			res, err := RunNemesis(NemesisOptions{Seed: seed, Chaos: 4})
			checkNemesis(t, res, err)
		})
	}
}

// TestNemesisOverloadSoak composes the deterministic server fail-stop
// with seeded low-priority tenant flood windows
// (failure.NemesisOverload): the admission layer must shed the flood
// with typed rejections while recovery still promotes and the logged
// data path stays byte-exact.
func TestNemesisOverloadSoak(t *testing.T) {
	res, err := RunNemesis(NemesisOptions{Seed: 31, Overload: 6})
	checkNemesis(t, res, err)
	checkStrict(t, res)
	if res.OverloadWindows == 0 {
		t.Fatalf("schedule armed no overload windows: %+v", res)
	}
	if res.FloodPuts == 0 {
		t.Fatalf("flood tenant never issued a put: %+v", res)
	}
	if res.FloodSheds == 0 {
		t.Fatalf("flood tenant was never shed by admission control: %+v", res)
	}
}

// TestNemesisTierSoak is the storage-fault acceptance gate: servers
// run with a cold PFS tier and a budget that forces the logged history
// to spill, while a seeded failure.NemesisTier schedule tears, cuts,
// rots, ENOSPC-fails and slows the tier underneath them, a server
// fail-stops, and (in the flood variant) a low-priority tenant floods
// the group. Every seeded run must keep the one-promotion-per-death
// ledger, replay byte-exactly through the restored and re-promoted
// history, and end with a scrub that finds zero undetected or
// unrecoverable corruptions.
func TestNemesisTierSoak(t *testing.T) {
	seeds := []int64{41, 42, 43}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for i, seed := range seeds {
		overload := 0
		if i == len(seeds)-1 {
			overload = 4 // last seed composes the tenant flood on top
		}
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			res, err := RunNemesis(NemesisOptions{
				Seed:          seed,
				Steps:         10,
				Tier:          true,
				StorageFaults: 8,
				Overload:      overload,
			})
			checkNemesis(t, res, err)
			checkStrict(t, res)
			if res.TierSpills == 0 {
				t.Fatalf("budget pressure spilled nothing to the tier: %+v", res)
			}
			if res.TierPromotes == 0 {
				t.Fatalf("replay reads promoted nothing back from the tier: %+v", res)
			}
			if res.StorageArmed == 0 {
				t.Fatalf("schedule armed no storage faults: %+v", res)
			}
			if res.ScrubLost != 0 {
				t.Fatalf("scrub lost %d entries to double corruption: %+v", res.ScrubLost, res)
			}
			if res.TierDegraded {
				t.Fatalf("a tier stayed degraded after the post-soak scrub: %+v", res)
			}
		})
	}
}

// TestWorkflowRedundantSupervisors runs the full workflow (ranks,
// checkpoints, rank fail-stop, server fail-stop) under three redundant
// supervisors: exactly one of them must do the promotion.
func TestWorkflowRedundantSupervisors(t *testing.T) {
	opts := baseOpts(ckpt.Uncoordinated)
	opts.Steps = 12
	opts.NServers = 4
	opts.WlogReplicas = 1
	opts.Supervisors = 3
	opts.ServerFailures = []ServerFailAt{{Server: 1, TS: 6}}
	opts.Failures = []FailAt{{Component: "ana", Rank: 0, TS: 8}}
	res := mustRun(t, opts)
	if res.CorruptReads != 0 {
		t.Fatalf("corrupt reads %d under redundant supervisors", res.CorruptReads)
	}
	if res.ServerRecoveries != 1 {
		t.Fatalf("server recoveries = %d across 3 supervisors, want exactly 1", res.ServerRecoveries)
	}
	if res.FinalEpoch != 2 {
		t.Fatalf("final epoch = %d, want 2", res.FinalEpoch)
	}
	expectReads(t, res, opts)
}

package workflow

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"gospaces/internal/trace"
)

// Regenerate the checked-in regression traces with:
//
//	go test ./internal/workflow/ -run TestReplayRegression -update-traces
var updateTraces = flag.Bool("update-traces", false, "regenerate testdata/*.trace regression traces")

func TestSoakPayloadDeterministic(t *testing.T) {
	a := soakPayload(42, 4096)
	b := soakPayload(42, 4096)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different payloads")
	}
	if bytes.Equal(a, soakPayload(43, 4096)) {
		t.Fatal("different seeds produced identical payloads")
	}
	if payloadSum(a) == 0 {
		t.Fatal("payload sum is zero")
	}
}

func TestBuildSoakTraceDeterministic(t *testing.T) {
	o := SoakOptions{Seed: 9, Faults: 6, Tier: true, Overload: true}
	h1, ev1, err := BuildSoakTrace(o)
	if err != nil {
		t.Fatal(err)
	}
	h2, ev2, err := BuildSoakTrace(o)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("headers differ:\n%+v\n%+v", h1, h2)
	}
	if len(ev1) != len(ev2) {
		t.Fatalf("event counts differ: %d vs %d", len(ev1), len(ev2))
	}
	for i := range ev1 {
		if ev1[i] != ev2[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, ev1[i], ev2[i])
		}
	}
	if h1.Digest == 0 {
		t.Fatal("built trace has no digest")
	}
	if h1.Flags&(trace.FlagFaults|trace.FlagTier|trace.FlagOverload) != trace.FlagFaults|trace.FlagTier|trace.FlagOverload {
		t.Fatalf("flags = %#x", h1.Flags)
	}
	// The encoded artifact is byte-deterministic too.
	img1 := trace.Encode(h1, ev1)
	img2 := trace.Encode(h2, ev2)
	if !bytes.Equal(img1, img2) {
		t.Fatal("same trace encoded to different bytes")
	}
	h3, ev3, err := trace.Decode(img1)
	if err != nil {
		t.Fatal(err)
	}
	if h3 != h1 || len(ev3) != len(ev1) {
		t.Fatal("decode round trip lost data")
	}
	o.Seed = 10
	h4, _, err := BuildSoakTrace(o)
	if err != nil {
		t.Fatal(err)
	}
	if h4.Digest == h1.Digest {
		t.Fatal("different seeds built identical digests")
	}
}

// TestSoakReplayDeterministic is the tentpole's core assertion: record
// a churn soak (fail-stops, blackouts, tier faults, floods all on),
// then replay the recorded trace and require byte-identical get
// results (the digest folds every checked get's payload sum in order)
// and an identical final staging state fingerprint.
func TestSoakReplayDeterministic(t *testing.T) {
	o := SoakOptions{Seed: 7, Groups: 2, Steps: 5, Faults: 6, Tier: true, Overload: true}
	h, events, rec, err := RunSoak(o)
	if err != nil {
		t.Fatalf("recording run failed: %v", err)
	}
	if rec.Digest != h.Digest {
		t.Fatalf("recorded digest %#x != header digest %#x", rec.Digest, h.Digest)
	}
	if rec.Gets == 0 || rec.Puts == 0 || rec.Restarts == 0 {
		t.Fatalf("workload too thin: %+v", rec)
	}
	// Replay through the wire format, exactly as CI replays testdata.
	h2, ev2, err := trace.Decode(trace.Encode(h, events))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayTrace(h2, ev2)
	if err != nil {
		t.Fatalf("replay failed: %v", err)
	}
	if rep.Digest != rec.Digest {
		t.Fatalf("replay digest %#x != recorded %#x", rep.Digest, rec.Digest)
	}
	if rep.StateSum != rec.StateSum {
		t.Fatalf("final staging state diverged: %#x vs %#x", rep.StateSum, rec.StateSum)
	}
	if rep.Gets != rec.Gets || rep.Puts != rec.Puts || rep.Restarts != rec.Restarts ||
		rep.FailStops != rec.FailStops || rep.FloodPuts != rec.FloodPuts {
		t.Fatalf("replay op counts diverged:\nrec %+v\nrep %+v", rec, rep)
	}
}

// TestSoakDivergenceDeterministic: a failing run's trace must fail the
// same way every time it is replayed — at the same logical clock, with
// a typed divergence. This is what makes persisted failing traces
// useful as regression tests.
func TestSoakDivergenceDeterministic(t *testing.T) {
	h, events, err := BuildSoakTrace(SoakOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	idx := -1
	for i, e := range events {
		if e.Kind == trace.EvGet && e.Logged {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatal("trace has no logged get")
	}
	events[idx].Sum ^= 0xdeadbeef

	lc := func() uint64 {
		_, err := ReplayTrace(h, events)
		var div *trace.DivergenceError
		if !errors.As(err, &div) {
			t.Fatalf("corrupted trace replayed without divergence: %v", err)
		}
		return div.LC
	}
	first := lc()
	if first != events[idx].LC {
		t.Fatalf("diverged at LC %d, corrupted event is LC %d", first, events[idx].LC)
	}
	if second := lc(); second != first {
		t.Fatalf("divergence moved between replays: LC %d then %d", first, second)
	}
}

func regressionPath(t *testing.T, kind string) string {
	t.Helper()
	return filepath.Join("testdata", kind+".trace")
}

// runRegression replays one checked-in trace from testdata/ and holds
// it to its recorded digest. With -update-traces it first rebuilds and
// re-verifies the artifact.
func runRegression(t *testing.T, kind string) {
	t.Helper()
	path := regressionPath(t, kind)
	if *updateTraces {
		h, events, err := BuildRegressionTrace(kind)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ReplayTrace(h, events); err != nil {
			t.Fatalf("rebuilt %s trace does not replay clean: %v", kind, err)
		}
		if err := trace.WriteFile(path, h, events); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d events)", path, len(events))
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("missing %s — run with -update-traces to generate it", path)
	}
	h, events, err := trace.ReadFile(path)
	if err != nil {
		t.Fatalf("checked-in trace unreadable: %v", err)
	}
	res, err := ReplayTrace(h, events)
	if err != nil {
		t.Fatalf("replay of %s diverged: %v", kind, err)
	}
	if res.Digest != h.Digest {
		t.Fatalf("replay digest %#x != recorded %#x", res.Digest, h.Digest)
	}
}

func TestReplayRegression_KillMidReplay(t *testing.T)   { runRegression(t, "kill-mid-replay") }
func TestReplayRegression_TierSpillENOSPC(t *testing.T) { runRegression(t, "tier-spill-enospc") }
func TestReplayRegression_OverloadShed(t *testing.T)    { runRegression(t, "overload-shed") }

func TestBuildRegressionTraceShapes(t *testing.T) {
	cases := []struct {
		kind string
		want trace.EventKind
	}{
		{"kill-mid-replay", trace.EvFailStop},
		{"tier-spill-enospc", trace.EvTierFault},
		{"overload-shed", trace.EvFlood},
	}
	for _, c := range cases {
		h, events, err := BuildRegressionTrace(c.kind)
		if err != nil {
			t.Fatal(err)
		}
		if h.Flags&trace.FlagFaults == 0 {
			t.Fatalf("%s: faults flag unset", c.kind)
		}
		found := false
		for i, e := range events {
			if e.LC != uint64(i) {
				t.Fatalf("%s: LC not renumbered at %d", c.kind, i)
			}
			if e.Kind == c.want {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: no %v event in trace", c.kind, c.want)
		}
	}
	if _, _, err := BuildRegressionTrace("no-such-scenario"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

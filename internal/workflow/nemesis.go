package workflow

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gospaces/internal/domain"
	"gospaces/internal/failure"
	"gospaces/internal/health"
	"gospaces/internal/pfs"
	"gospaces/internal/qos"
	"gospaces/internal/recovery"
	"gospaces/internal/staging"
	"gospaces/internal/tier"
	"gospaces/internal/transport"
	"gospaces/internal/wlog"
)

// NemesisOptions configures one seeded nemesis soak: a staging group
// with redundant recovery supervisors, a logged producer/consumer data
// path, and a nemesis concurrently killing staging servers and
// supervisors on a randomized schedule while the standing invariants
// are checked.
type NemesisOptions struct {
	// Seed drives every random choice; a given seed replays the same run.
	Seed int64
	// Servers is the staging-group size (default 4).
	Servers int
	// Spares is the warm-spare pool size (default 2).
	Spares int
	// Supervisors is the redundant supervisor count (default 3). The
	// last supervisor is never nemesis-killed, so the group can always
	// heal.
	Supervisors int
	// Steps is the number of logged versions the producer writes
	// (default 8).
	Steps int
	// Deaths is how many staging servers fail-stop permanently, capped
	// at Spares (default 1).
	Deaths int
	// Kills is how many leader supervisors the nemesis kills
	// mid-promotion (default 1; capped at Supervisors-1).
	Kills int
	// KillStage picks the promotion stage the leader dies at: "intent",
	// "restored", "replaced", or "pushed". "stall" stalls the leader
	// instead of killing it, long enough to be deposed, so its resumed
	// stale calls demonstrate server-side fencing. Empty rotates by
	// seed.
	KillStage string
	// SpareDelay starts the pool empty and refills it only after the
	// first death has been confirmed unrecoverable (recovery.no_spare),
	// exercising the dead-slot backlog heal.
	SpareDelay bool
	// Chaos adds a seeded schedule of transient server blackouts on top
	// of the deterministic deaths.
	Chaos int
	// Overload draws a seeded failure.NemesisOverload schedule of that
	// many injections and arms its tenant-overload windows: during each
	// window a quota'd low-priority tenant floods the group with puts.
	// The group runs with the admission layer (internal/qos) enabled, so
	// the soak asserts recovery and the logged data path survive while
	// the flood is shed.
	Overload int
	// Tier gives every server and spare a PFS cold tier plus a memory
	// budget of ~4 versions, so the producer's logged history spills and
	// replay reads promote spilled versions back.
	Tier bool
	// StorageFaults draws a seeded failure.NemesisTier schedule of that
	// many injections and arms its PFS faults — torn/partial writes at
	// random offsets, at-rest bit rot, ENOSPC, slow I/O — against the
	// servers' tier backends while the soak runs. Requires Tier.
	StorageFaults int
}

// NemesisResult is the observable outcome a soak test asserts on.
type NemesisResult struct {
	Deaths          int    // staging servers permanently killed
	Promotions      int64  // membership writes performed, summed across supervisors
	SparesConsumed  int    // spares permanently drawn from the pool
	Takeovers       int64  // elections that found journaled intents to resume
	IntentResumes   int64  // promotions resumed from a deposed leader's journal
	SpareReturns    int64  // failed promotions that refunded the pool
	DeadRetries     int64  // backlogged slots healed by a late AddSpare
	Elections       int64  // lease grants, summed across supervisors
	SupFenced       int64  // supervisor-observed fencing rejections
	ServerFenced    int64  // server-side fenced-call rejections
	Leaders         int    // supervisors holding the lease at the end
	ReplayEvents    int    // events replayed through the restored logs
	ReplayDiverged  bool   // any re-issued write diverged from the event log
	Epoch           uint64 // final membership epoch
	DownObserved    bool   // a client saw ErrSlotDown while the slot was stranded
	OverloadWindows int    // tenant-overload windows armed from the schedule
	FloodPuts       int64  // puts the flood tenant attempted during those windows
	FloodSheds      int64  // flood puts rejected with a typed qos overload
	StorageArmed    int64  // PFS faults armed from the NemesisTier schedule
	TierSpills      int64  // versions demoted to the cold tier, summed across servers
	TierPromotes    int64  // spilled versions promoted back by replay reads
	ScrubChecked    int64  // spilled generations checked by the post-soak scrub
	ScrubHealed     int64  // corrupt generations re-replicated from the twin
	ScrubLost       int64  // entries lost to double corruption (must stay 0)
	TierDegraded    bool   // any tier still degraded after the post-soak scrub
}

var nemesisStages = []string{"intent", "restored", "replaced", "pushed"}

func (o *NemesisOptions) defaults() {
	if o.Servers <= 0 {
		o.Servers = 4
	}
	if o.Spares <= 0 {
		o.Spares = 2
	}
	if o.Supervisors <= 0 {
		o.Supervisors = 3
	}
	if o.Steps <= 0 {
		o.Steps = 8
	}
	if o.Deaths <= 0 {
		o.Deaths = 1
	}
	if o.Deaths > o.Spares {
		o.Deaths = o.Spares
	}
	if o.Kills <= 0 {
		o.Kills = 1
	}
	if o.Kills >= o.Supervisors {
		o.Kills = o.Supervisors - 1
	}
	if o.KillStage == "" {
		o.KillStage = nemesisStages[int(o.Seed%int64(len(nemesisStages))+int64(len(nemesisStages)))%len(nemesisStages)]
	}
}

// nemesisPayload is the deterministic byte pattern for one version, so
// every read is verifiable byte-exactly without remembering writes.
func nemesisPayload(version, n int64) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(int64(i)*7 + version*131 + 1)
	}
	return data
}

// RunNemesis executes one seeded nemesis soak and returns the
// measured outcome; assertion lives in the caller. The run is
// deterministic up to goroutine scheduling: all fault choices derive
// from the seed.
func RunNemesis(o NemesisOptions) (NemesisResult, error) {
	o.defaults()
	rng := rand.New(rand.NewSource(o.Seed))
	var res NemesisResult

	tr := transport.NewChaos(transport.NewInProc(), o.Seed)
	global := domain.Box3(0, 0, 0, 63, 63, 0)
	scfg := staging.Config{
		Global:       global,
		NServers:     o.Servers,
		Bits:         2,
		ElemSize:     1,
		WlogReplicas: 2,
	}
	if o.Overload > 0 {
		// Admission control on: the flood tenant gets a small staging
		// quota at the lowest priority, everyone else (the logged
		// producer under "nemesis/") rides the default at priority 1.
		scfg.QoS = &qos.Config{
			Tenants: map[string]qos.Quota{"flood": {StagingBytes: 4096, Priority: 0}},
			Default: qos.Quota{Priority: 1},
		}
	}
	var tierMu sync.Mutex
	tierBackends := map[int]*pfs.Store{}
	if o.Tier {
		// A budget of ~4 versions forces the older logged history to
		// spill; replay reads then promote it back. Spares get their own
		// (reset-on-promotion) tiers via the same hook.
		scfg.MemoryBudgetPerServer = 4 * global.Volume()
		scfg.TierBackend = func(id int) tier.Backend {
			be := pfs.NewStore()
			tierMu.Lock()
			tierBackends[id] = be
			tierMu.Unlock()
			return be
		}
	}
	group, err := staging.StartGroup(tr, fmt.Sprintf("nemesis/%d", o.Seed), scfg)
	if err != nil {
		return res, err
	}
	defer group.Close()
	if !o.SpareDelay {
		for i := 0; i < o.Spares; i++ {
			if _, err := group.AddSpare(); err != nil {
				return res, err
			}
		}
	}

	// Redundant supervisors with fast detectors; the lease TTL is a few
	// detection windows so a takeover lands quickly enough for a short
	// soak.
	const leaseTTL = 150 * time.Millisecond
	sups := make([]*recovery.Supervisor, o.Supervisors)
	killed := make([]bool, o.Supervisors)
	var killMu sync.Mutex
	killsLeft := o.Kills
	for i := 0; i < o.Supervisors; i++ {
		i := i
		id := fmt.Sprintf("nemesis/sup/%d", i)
		det := health.NewDetector(tr, id, health.Config{
			Period:       5 * time.Millisecond,
			Timeout:      25 * time.Millisecond,
			SuspectAfter: 2,
			DeadAfter:    4,
		})
		cfg := recovery.Config{
			ID:       id,
			LeaseTTL: leaseTTL,
			OnPromote: func(slot int, addr string, epoch uint64) {
				group.Pool.SetMember(slot, addr, epoch)
			},
			OnSlotDown: func(slot int, down bool) {
				group.Pool.MarkSlotDown(slot, down)
			},
		}
		cfg.PromotionHook = func(stage string, slot int) {
			if stage != o.KillStage && o.KillStage != "stall" {
				return
			}
			killMu.Lock()
			if killsLeft <= 0 || i == o.Supervisors-1 {
				killMu.Unlock()
				return
			}
			if o.KillStage == "stall" && stage != "replaced" {
				killMu.Unlock()
				return
			}
			killsLeft--
			if o.KillStage != "stall" {
				killed[i] = true
			}
			killMu.Unlock()
			if o.KillStage == "stall" {
				// Stall past the lease: a standby is elected and finishes
				// the promotion; when this leader resumes, its next fenced
				// call (the view push) is rejected server-side.
				time.Sleep(3 * leaseTTL)
				return
			}
			sups[i].Kill()
		}
		sups[i] = recovery.New(tr, det, group.Membership(), group, cfg)
		sups[i].Start()
		defer sups[i].Close()
	}

	// Optional transient chaos riding on top of the deterministic
	// deaths: blackouts against servers, random supervisor kills within
	// the kill budget.
	if o.Chaos > 0 {
		sched, err := failure.Nemesis(o.Seed, o.Chaos, 300*time.Millisecond, 40*time.Millisecond, o.Servers, o.Supervisors-1)
		if err != nil {
			return res, err
		}
		addrs := group.Addrs()
		start := time.Now()
		for _, inj := range sched {
			inj := inj
			switch inj.Kind {
			case failure.ServerCrash:
				time.AfterFunc(inj.At-time.Since(start), func() {
					tr.Blackout(addrs[inj.Server], inj.Duration)
				})
			case failure.SupervisorKill:
				time.AfterFunc(inj.At-time.Since(start), func() {
					killMu.Lock()
					ok := killsLeft > 0 && !killed[inj.Server] && inj.Server != o.Supervisors-1
					if ok {
						killsLeft--
						killed[inj.Server] = true
					}
					killMu.Unlock()
					if ok {
						sups[inj.Server].Kill()
					}
				})
			default:
				// Permanent fail-stops stay deterministic (bounded by the
				// spare pool); skip schedule-driven ones.
			}
		}
	}

	// Storage faults against the cold tiers: torn/partial writes and
	// ENOSPC arm one-shot write faults (a failed spill rolls back and
	// the version stays resident — never half-moved), bit rot corrupts a
	// committed generation-0 record at rest (the twin generation must
	// heal it), and slow-I/O windows drag every tier access. All of it
	// runs while servers die and the flood sheds.
	var storageArmed atomic.Int64
	if o.Tier && o.StorageFaults > 0 {
		sched, err := failure.NemesisTier(o.Seed+1, o.StorageFaults, 300*time.Millisecond, 40*time.Millisecond, o.Servers)
		if err != nil {
			return res, err
		}
		start := time.Now()
		for _, inj := range sched {
			inj := inj
			arm := func(f func(be *pfs.Store)) {
				time.AfterFunc(inj.At-time.Since(start), func() {
					tierMu.Lock()
					be := tierBackends[inj.Server]
					tierMu.Unlock()
					if be == nil {
						return
					}
					f(be)
					storageArmed.Add(1)
				})
			}
			switch inj.Kind {
			case failure.PFSTornWrite:
				arm(func(be *pfs.Store) { be.FailNextWriteAt(pfs.FaultTruncate, inj.Offset) })
			case failure.PFSPartialWrite:
				arm(func(be *pfs.Store) { be.FailNextWriteAt(pfs.FaultPartial, inj.Offset) })
			case failure.PFSENOSPC:
				arm(func(be *pfs.Store) { be.FailNextWriteAt(pfs.FaultENOSPC, -1) })
			case failure.PFSBitRot:
				arm(func(be *pfs.Store) {
					// Rot a committed generation-0 record; its generation-1
					// twin stays intact, so the corruption is always
					// healable — any read or scrub must detect it, never
					// serve it.
					var g0 []string
					for _, name := range be.List("tier/") {
						if strings.HasSuffix(name, "/g0") {
							g0 = append(g0, name)
						}
					}
					if len(g0) == 0 {
						return
					}
					off := inj.Offset
					if off < 0 {
						off = 0
					}
					be.Corrupt(g0[off%len(g0)], off)
				})
			case failure.PFSSlowIO:
				arm(func(be *pfs.Store) {
					be.SetSlowIO(200 * time.Microsecond)
					time.AfterFunc(inj.Duration, func() { be.SetSlowIO(0) })
				})
			default:
				// Fail-stops and overload windows stay with their own
				// deterministic/seeded drivers above.
			}
		}
	}

	// Overload windows: a low-priority tenant floods the group while the
	// deterministic deaths (the composed ServerFailStops) land between
	// producer versions. Each window runs its own client so overlapping
	// windows never share a connection; errors are expected — the typed
	// overload rejections are the admission layer doing its job and are
	// counted, everything else (dead slots mid-promotion) is ignored.
	var floodWG sync.WaitGroup
	var floodPuts, floodSheds, floodSeq atomic.Int64
	if o.Overload > 0 {
		sched, err := failure.NemesisOverload(o.Seed, o.Overload, 300*time.Millisecond, 40*time.Millisecond, o.Servers)
		if err != nil {
			return res, err
		}
		start := time.Now()
		for _, inj := range sched {
			inj := inj
			if inj.Kind != failure.TenantOverload {
				continue // fail-stops stay deterministic, as above
			}
			res.OverloadWindows++
			floodWG.Add(1)
			time.AfterFunc(inj.At-time.Since(start), func() {
				defer floodWG.Done()
				flood, err := group.NewClient("nemesis/flood")
				if err != nil {
					return
				}
				defer flood.Close()
				end := time.Now().Add(inj.Duration)
				for time.Now().Before(end) {
					n := floodSeq.Add(1)
					floodPuts.Add(1)
					err := flood.Put(fmt.Sprintf("flood/f%d", n), 1, global, nemesisPayload(n, global.Volume()))
					if _, ok := qos.FromError(err); ok {
						floodSheds.Add(1)
					}
				}
			})
		}
	}

	// Spare-exhaustion heal: the pool starts empty, so the death strands
	// its slot (recovery.no_spare fires, clients see ErrSlotDown); a
	// concurrent late refill lets the backlog sweep promote. It must run
	// alongside the producer — writes touching the stranded slot cannot
	// finish until the pool refills.
	spareErr := make(chan error, 1)
	if o.SpareDelay {
		go func() {
			if err := waitCounter(sups, "recovery.no_spare", 10*time.Second); err != nil {
				spareErr <- err
				return
			}
			time.Sleep(150 * time.Millisecond) // hold the stranding window open
			for i := 0; i < o.Spares; i++ {
				if _, err := group.AddSpare(); err != nil {
					spareErr <- err
					return
				}
			}
			spareErr <- nil
		}()
	} else {
		spareErr <- nil
	}

	prod, err := group.NewClient("nemesis/prod")
	if err != nil {
		return res, err
	}
	defer prod.Close()

	// Producer phase: logged writes spread over the fault window, with
	// the deaths injected between versions. Writes retry through
	// degraded staging exactly like workflow ranks do.
	deathAt := make(map[int]int) // version index -> slot
	deadOrder := rng.Perm(o.Servers)
	for d := 0; d < o.Deaths; d++ {
		v := 2 + d*(o.Steps-3)/maxInt(1, o.Deaths)
		deathAt[v] = deadOrder[d]
	}
	for v := 1; v <= o.Steps; v++ {
		if slot, ok := deathAt[v]; ok {
			if err := group.FailStop(slot); err != nil {
				return res, err
			}
			res.Deaths++
		}
		data := nemesisPayload(int64(v), global.Volume())
		if err := nemesisRetry(10*time.Second, &res, func() error {
			if err := prod.PutWithLog("nemesis/field", int64(v), global, data); err != nil {
				prod.Reconnect()
				return err
			}
			return nil
		}); err != nil {
			return res, fmt.Errorf("put v%d: %w", v, err)
		}
		time.Sleep(time.Duration(rng.Intn(8)) * time.Millisecond)
	}

	if err := <-spareErr; err != nil {
		return res, err
	}

	// Heal phase: a never-killed supervisor drains the backlog.
	survivor := sups[o.Supervisors-1]
	if err := survivor.WaitIdle(20 * time.Second); err != nil {
		return res, err
	}

	// Consumer phase: every version reads back byte-exactly through the
	// (possibly restored) logs.
	cons, err := group.NewClient("nemesis/cons")
	if err != nil {
		return res, err
	}
	defer cons.Close()
	for v := 1; v <= o.Steps; v++ {
		want := nemesisPayload(int64(v), global.Volume())
		if err := nemesisRetry(10*time.Second, &res, func() error {
			got, _, err := cons.GetWithLog("nemesis/field", int64(v), global)
			if err != nil {
				cons.Reconnect()
				return err
			}
			if !bytes.Equal(got, want) {
				return fmt.Errorf("nemesis: version %d read back %d bytes, mismatch", v, len(got))
			}
			return nil
		}); err != nil {
			return res, err
		}
	}

	// Replay phase: the producer restarts and re-issues every logged
	// write; the servers must suppress them all byte-exactly — any
	// divergence from the restored log is the torn-recovery failure the
	// whole design exists to prevent.
	replayed, err := prod.WorkflowRestart()
	if err != nil {
		return res, err
	}
	res.ReplayEvents = replayed
	for v := 1; v <= o.Steps; v++ {
		data := nemesisPayload(int64(v), global.Volume())
		if err := nemesisRetry(10*time.Second, &res, func() error {
			err := prod.PutWithLog("nemesis/field", int64(v), global, data)
			if errors.Is(err, wlog.ErrReplayDivergence) {
				res.ReplayDiverged = true
				return nil
			}
			if err != nil {
				prod.Reconnect()
			}
			return err
		}); err != nil {
			return res, fmt.Errorf("replay v%d: %w", v, err)
		}
	}

	// Drain any overload window still flooding past the data phases.
	floodWG.Wait()
	res.FloodPuts = floodPuts.Load()
	res.FloodSheds = floodSheds.Load()
	res.StorageArmed = storageArmed.Load()

	// Post-soak tier audit: disarm any fault still pending (the soak is
	// over; a live one-shot would sabotage the scrub's healing writes),
	// then scrub every reachable server's tier. Everything the storage
	// nemesis corrupted must surface here as detected-and-healed; a lost
	// entry would mean both generations rotted (the schedule never does
	// that) and an undetected one would already have failed the
	// byte-exact read/replay phases above.
	if o.Tier {
		tierMu.Lock()
		for _, be := range tierBackends {
			be.FailNextWriteAt(pfs.FaultNone, -1)
			be.SetSlowIO(0)
		}
		tierMu.Unlock()
		for _, addr := range group.Addrs() {
			conn, err := tr.Dial(addr)
			if err != nil {
				continue // a dead slot's original address
			}
			if raw, err := conn.Call(staging.TierScrubReq{}); err == nil {
				if sc, ok := raw.(staging.TierScrubResp); ok && sc.Enabled {
					res.ScrubChecked += sc.Checked
					res.ScrubHealed += sc.Healed
					res.ScrubLost += sc.Lost
					if sc.Degraded {
						res.TierDegraded = true
					}
				}
			}
			if raw, err := conn.Call(staging.TierStatsReq{}); err == nil {
				if st, ok := raw.(staging.TierStatsResp); ok && st.Enabled {
					res.TierSpills += st.Spills
					res.TierPromotes += st.Promotes
				}
			}
			conn.Close()
		}
	}

	// Settle: the lease must converge on exactly one holder — a leader
	// killed at the tail of a promotion leaves takeover (and the
	// journaled-intent cleanup) to a successor elected after the data
	// phases already finished — and a stalled leader must wake, fire its
	// stale fenced calls, and observe its deposition before the
	// single-holder invariant is judged.
	var leader *recovery.Supervisor
	settle := time.Now().Add(8 * time.Second)
	for {
		leaders := 0
		var fenced int64
		leader = nil
		for _, sup := range sups {
			if sup.IsLeader() {
				leaders++
				leader = sup
			}
			fenced += sup.Metrics().Counter("recovery.fenced_rejects").Value()
		}
		if leaders == 1 && (o.KillStage != "stall" || fenced > 0) {
			break
		}
		if time.Now().After(settle) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if leader != nil {
		// Let a freshly elected leader finish any promotion it resumed
		// from the journal.
		if err := leader.WaitIdle(10 * time.Second); err != nil {
			return res, err
		}
	}

	// Harvest: metrics, lease state, server-side fencing stats.
	for _, sup := range sups {
		m := sup.Metrics()
		res.Promotions += m.Counter("recovery.promotions").Value()
		res.Takeovers += m.Counter("recovery.takeovers").Value()
		res.IntentResumes += m.Counter("recovery.intent_resumes").Value()
		res.SpareReturns += m.Counter("recovery.spare_returns").Value()
		res.DeadRetries += m.Counter("recovery.dead_retries").Value()
		res.Elections += m.Counter("recovery.elections").Value()
		res.SupFenced += m.Counter("recovery.fenced_rejects").Value()
		if sup.IsLeader() {
			res.Leaders++
		}
	}
	res.SparesConsumed = group.SparesConsumed()
	res.Epoch = group.Membership().Epoch()
	stats, err := cons.Stats()
	if err != nil {
		return res, err
	}
	res.ServerFenced = stats.FencedRejects
	return res, nil
}

// nemesisRetry retries fn until it succeeds or the deadline passes,
// recording whether a stranded slot was observed en route. Any error is
// retryable during a soak: degraded staging, stale epochs, blackouts,
// and promotions in flight all heal.
func nemesisRetry(timeout time.Duration, res *NemesisResult, fn func() error) error {
	deadline := time.Now().Add(timeout)
	for {
		err := fn()
		if err == nil {
			return nil
		}
		if errors.Is(err, staging.ErrSlotDown) {
			res.DownObserved = true
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitCounter blocks until any supervisor's named counter goes
// positive.
func waitCounter(sups []*recovery.Supervisor, name string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		for _, sup := range sups {
			if sup.Metrics().Counter(name).Value() > 0 {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("nemesis: counter %s stayed zero for %v", name, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package workflow

import (
	"testing"

	"gospaces/internal/ckpt"
	"gospaces/internal/corec"
	"gospaces/internal/domain"
)

func baseOpts(scheme ckpt.Scheme) Options {
	return Options{
		Scheme:      scheme,
		Steps:       10,
		Global:      domain.Box3(0, 0, 0, 31, 31, 15),
		ElemSize:    8,
		SimRanks:    4,
		AnaRanks:    2,
		NServers:    2,
		Bits:        2,
		SimPeriod:   4,
		AnaPeriod:   5,
		CoordPeriod: 4,
	}
}

func mustRun(t *testing.T, opts Options) Result {
	t.Helper()
	res, err := Run(opts)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	// State recovery must be exact for every scheme (the individual
	// scheme's known-corrupt consumers are exempted inside Run).
	if res.StateMismatches != 0 {
		t.Fatalf("%d ranks finished with divergent state", res.StateMismatches)
	}
	if opts.SimRanks > 1 && res.HaloExchanges == 0 {
		t.Fatal("no halo exchanges recorded")
	}
	return res
}

func expectReads(t *testing.T, res Result, opts Options) {
	t.Helper()
	min := opts.Steps * int64(opts.AnaRanks)
	if res.SuccessReads < min {
		t.Fatalf("success reads %d < %d", res.SuccessReads, min)
	}
}

func TestFailureFreeAllSchemes(t *testing.T) {
	for _, scheme := range []ckpt.Scheme{ckpt.Coordinated, ckpt.Uncoordinated, ckpt.Individual, ckpt.Hybrid} {
		t.Run(scheme.String(), func(t *testing.T) {
			opts := baseOpts(scheme)
			res := mustRun(t, opts)
			if res.CorruptReads != 0 {
				t.Fatalf("corrupt reads %d in failure-free run", res.CorruptReads)
			}
			if res.Recoveries != 0 {
				t.Fatalf("recoveries %d in failure-free run", res.Recoveries)
			}
			expectReads(t, res, opts)
		})
	}
}

// TestUncoordinatedConsumerFailure is the paper's case 1: the analytic
// fails mid-run; with data logging the workflow stays consistent.
func TestUncoordinatedConsumerFailure(t *testing.T) {
	opts := baseOpts(ckpt.Uncoordinated)
	opts.Failures = []FailAt{{Component: "ana", Rank: 1, TS: 7}}
	res := mustRun(t, opts)
	if res.Recoveries == 0 {
		t.Fatal("no recovery happened")
	}
	if res.CorruptReads != 0 {
		t.Fatalf("corrupt reads %d: crash consistency violated", res.CorruptReads)
	}
	if res.ReplayedEvents == 0 {
		t.Fatal("no events replayed")
	}
	if res.Staging.ReplayGets == 0 {
		t.Fatal("no replay-mode gets served")
	}
	expectReads(t, res, opts)
}

// TestUncoordinatedProducerFailure is the paper's case 2: the
// simulation fails; its re-issued writes are suppressed.
func TestUncoordinatedProducerFailure(t *testing.T) {
	opts := baseOpts(ckpt.Uncoordinated)
	opts.Failures = []FailAt{{Component: "sim", Rank: 2, TS: 6}}
	res := mustRun(t, opts)
	if res.Recoveries == 0 {
		t.Fatal("no recovery happened")
	}
	if res.CorruptReads != 0 {
		t.Fatalf("corrupt reads %d", res.CorruptReads)
	}
	if res.SuppressedPuts == 0 {
		t.Fatal("no duplicate writes suppressed")
	}
	expectReads(t, res, opts)
}

func TestUncoordinatedBothComponentsFail(t *testing.T) {
	opts := baseOpts(ckpt.Uncoordinated)
	opts.Failures = []FailAt{
		{Component: "sim", Rank: 0, TS: 5},
		{Component: "ana", Rank: 0, TS: 8},
	}
	res := mustRun(t, opts)
	if res.Recoveries < 2 {
		t.Fatalf("recoveries = %d, want >= 2", res.Recoveries)
	}
	if res.CorruptReads != 0 {
		t.Fatalf("corrupt reads %d", res.CorruptReads)
	}
	expectReads(t, res, opts)
}

func TestCoordinatedGlobalRollback(t *testing.T) {
	opts := baseOpts(ckpt.Coordinated)
	opts.Failures = []FailAt{{Component: "ana", Rank: 0, TS: 7}}
	res := mustRun(t, opts)
	if res.Recoveries == 0 {
		t.Fatal("no recovery")
	}
	if res.CorruptReads != 0 {
		t.Fatalf("corrupt reads %d: coordinated rollback must stay correct", res.CorruptReads)
	}
	// Coordinated uses no logging: nothing suppressed or replayed.
	if res.SuppressedPuts != 0 || res.Staging.ReplayGets != 0 {
		t.Fatalf("coordinated run used the log: %+v", res.Staging)
	}
	expectReads(t, res, opts)
}

func TestCoordinatedSimFailureRollsBackConsumerToo(t *testing.T) {
	opts := baseOpts(ckpt.Coordinated)
	opts.Failures = []FailAt{{Component: "sim", Rank: 1, TS: 6}}
	res := mustRun(t, opts)
	if res.Recoveries == 0 {
		t.Fatal("no recovery")
	}
	if res.CorruptReads != 0 {
		t.Fatalf("corrupt reads %d", res.CorruptReads)
	}
	// Global rollback re-executes consumer reads too: more total
	// successful reads than the minimum.
	min := opts.Steps * int64(opts.AnaRanks)
	if res.SuccessReads <= min {
		t.Fatalf("success reads %d, expected > %d (re-executed reads)", res.SuccessReads, min)
	}
}

// TestIndividualSchemeCorruptsResults demonstrates the paper's
// motivation (Fig. 2): individually checkpointing components without
// data logging yields wrong results after a failure.
func TestIndividualSchemeCorruptsResults(t *testing.T) {
	opts := baseOpts(ckpt.Individual)
	opts.Failures = []FailAt{{Component: "ana", Rank: 0, TS: 8}}
	res := mustRun(t, opts)
	if res.Recoveries == 0 {
		t.Fatal("no recovery")
	}
	if res.CorruptReads == 0 {
		t.Fatal("individual scheme produced correct results despite failure; the data-inconsistency motivation should manifest")
	}
}

// TestHybridReplicationMasksFailure: the analytic is replicated; its
// failure must not trigger rollback or replay (paper §III-B).
func TestHybridReplicationMasksFailure(t *testing.T) {
	opts := baseOpts(ckpt.Hybrid)
	opts.Failures = []FailAt{{Component: "ana", Rank: 1, TS: 6}}
	res := mustRun(t, opts)
	if res.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1 (replica takeover)", res.Recoveries)
	}
	if res.CorruptReads != 0 {
		t.Fatalf("corrupt reads %d", res.CorruptReads)
	}
	if res.ReplayedEvents != 0 {
		t.Fatalf("replication must not replay, got %d events", res.ReplayedEvents)
	}
	expectReads(t, res, opts)
}

// TestHybridMixedFailures: simulation C/R failure and analytic replica
// failure in one run.
func TestHybridMixedFailures(t *testing.T) {
	opts := baseOpts(ckpt.Hybrid)
	opts.Failures = []FailAt{
		{Component: "sim", Rank: 0, TS: 6},
		{Component: "ana", Rank: 0, TS: 9},
	}
	res := mustRun(t, opts)
	if res.Recoveries < 2 {
		t.Fatalf("recoveries = %d", res.Recoveries)
	}
	if res.CorruptReads != 0 {
		t.Fatalf("corrupt reads %d", res.CorruptReads)
	}
	if res.SuppressedPuts == 0 {
		t.Fatal("sim rollback should suppress duplicate writes")
	}
	expectReads(t, res, opts)
}

func TestDoubleFailureSameComponent(t *testing.T) {
	opts := baseOpts(ckpt.Uncoordinated)
	opts.Steps = 12
	opts.Failures = []FailAt{
		{Component: "ana", Rank: 0, TS: 6},
		{Component: "ana", Rank: 1, TS: 9},
	}
	opts.Spares = 3
	res := mustRun(t, opts)
	if res.Recoveries < 2 {
		t.Fatalf("recoveries = %d", res.Recoveries)
	}
	if res.CorruptReads != 0 {
		t.Fatalf("corrupt reads %d", res.CorruptReads)
	}
	expectReads(t, res, opts)
}

func TestSubsetExchange(t *testing.T) {
	opts := baseOpts(ckpt.Uncoordinated)
	opts.SubsetFrac = 0.5
	opts.Failures = []FailAt{{Component: "ana", Rank: 0, TS: 5}}
	res := mustRun(t, opts)
	if res.CorruptReads != 0 {
		t.Fatalf("corrupt reads %d", res.CorruptReads)
	}
	expectReads(t, res, opts)
}

func TestFailureAtFirstStepBeforeAnyCheckpoint(t *testing.T) {
	opts := baseOpts(ckpt.Uncoordinated)
	opts.Failures = []FailAt{{Component: "ana", Rank: 0, TS: 2}}
	res := mustRun(t, opts)
	if res.CorruptReads != 0 {
		t.Fatalf("corrupt reads %d", res.CorruptReads)
	}
	if res.Recoveries == 0 {
		t.Fatal("no recovery")
	}
	expectReads(t, res, opts)
}

func TestFailureAtLastStep(t *testing.T) {
	opts := baseOpts(ckpt.Uncoordinated)
	opts.Failures = []FailAt{{Component: "sim", Rank: 3, TS: 10}}
	res := mustRun(t, opts)
	if res.CorruptReads != 0 {
		t.Fatalf("corrupt reads %d", res.CorruptReads)
	}
	expectReads(t, res, opts)
}

// TestCoordinatedServerFailStop is the server-side fault-model
// acceptance run: a staging server fail-stops permanently mid-run. The
// heartbeat detector confirms the death, the recovery supervisor
// promotes a warm spare and rebuilds the CoREC shards onto it, the
// coordinated rollback regenerates the staged coupling data, and every
// consumer read stays byte-exact.
func TestCoordinatedServerFailStop(t *testing.T) {
	opts := baseOpts(ckpt.Coordinated)
	opts.Steps = 12
	opts.NServers = 4
	opts.ServerFailures = []ServerFailAt{{Server: 1, TS: 6}}
	opts.Redundancy = &corec.Config{Mode: corec.ErasureCoding, K: 2, M: 2}
	res := mustRun(t, opts)
	if res.CorruptReads != 0 {
		t.Fatalf("corrupt reads %d after server fail-stop", res.CorruptReads)
	}
	if res.Recoveries == 0 {
		t.Fatal("no rank rollback despite a dead staging server")
	}
	if res.ServerRecoveries != 1 {
		t.Fatalf("server recoveries = %d, want 1", res.ServerRecoveries)
	}
	if res.FinalEpoch != 2 {
		t.Fatalf("final epoch = %d, want 2", res.FinalEpoch)
	}
	if res.Rebuilds == 0 || res.RebuildBytes == 0 {
		t.Fatalf("re-protection did not rebuild: %d rebuilds, %d bytes", res.Rebuilds, res.RebuildBytes)
	}
	// Storage overhead restored: the replacement server holds shards it
	// accounted as rebuilt.
	if res.Staging.RebuiltShards == 0 || res.Staging.RebuiltBytes == 0 {
		t.Fatalf("no rebuilt shards in staging stats: %+v", res.Staging)
	}
	expectReads(t, res, opts)
}

// TestCoordinatedServerFailStopOverTCP runs the same fault across real
// loopback sockets: the dead server's live connections are severed too.
func TestCoordinatedServerFailStopOverTCP(t *testing.T) {
	opts := baseOpts(ckpt.Coordinated)
	opts.OverTCP = true
	opts.Steps = 8
	opts.NServers = 4
	opts.ServerFailures = []ServerFailAt{{Server: 2, TS: 5}}
	opts.Redundancy = &corec.Config{Mode: corec.ErasureCoding, K: 2, M: 2}
	res := mustRun(t, opts)
	if res.CorruptReads != 0 || res.ServerRecoveries != 1 || res.Rebuilds == 0 {
		t.Fatalf("result %+v", res)
	}
	expectReads(t, res, opts)
}

// TestServerAndProcessFailuresTogether overlaps a staging-server
// fail-stop with an ordinary process failure in one coordinated run.
func TestServerAndProcessFailuresTogether(t *testing.T) {
	opts := baseOpts(ckpt.Coordinated)
	opts.Steps = 12
	opts.NServers = 4
	opts.Failures = []FailAt{{Component: "ana", Rank: 0, TS: 9}}
	opts.ServerFailures = []ServerFailAt{{Server: 0, TS: 5}}
	opts.Redundancy = &corec.Config{Mode: corec.ErasureCoding, K: 2, M: 2}
	res := mustRun(t, opts)
	if res.CorruptReads != 0 {
		t.Fatalf("corrupt reads %d", res.CorruptReads)
	}
	if res.Recoveries < 2 {
		t.Fatalf("recoveries = %d, want >= 2", res.Recoveries)
	}
	if res.ServerRecoveries != 1 {
		t.Fatalf("server recoveries = %d", res.ServerRecoveries)
	}
	expectReads(t, res, opts)
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Run(Options{}); err == nil {
		t.Fatal("empty options accepted")
	}
	opts := baseOpts(ckpt.Coordinated)
	opts.CoordPeriod = 0
	if _, err := Run(opts); err == nil {
		t.Fatal("coordinated without period accepted")
	}
	opts = baseOpts(ckpt.Uncoordinated)
	opts.SimPeriod = 0
	if _, err := Run(opts); err == nil {
		t.Fatal("zero sim period accepted")
	}
	opts = baseOpts(ckpt.Uncoordinated)
	opts.ServerFailures = []ServerFailAt{{Server: 0, TS: 2}}
	if _, err := Run(opts); err == nil {
		t.Fatal("server fail-stop with a non-coordinated scheme accepted")
	}
	opts = baseOpts(ckpt.Coordinated)
	opts.ServerFailures = []ServerFailAt{{Server: 9, TS: 2}}
	if _, err := Run(opts); err == nil {
		t.Fatal("out-of-range server failure accepted")
	}
	opts = baseOpts(ckpt.Coordinated)
	opts.Redundancy = &corec.Config{Mode: corec.ErasureCoding, K: 4, M: 2}
	if _, err := Run(opts); err == nil {
		t.Fatal("redundancy wider than the group accepted")
	}
}

func TestGCKeepsStagingBounded(t *testing.T) {
	opts := baseOpts(ckpt.Uncoordinated)
	opts.Steps = 15
	res := mustRun(t, opts)
	// After the run, GC must have freed something and the store must
	// not hold all 15 versions (bounded by the checkpoint window).
	if res.Staging.GCFreedBytes == 0 {
		t.Fatal("GC never freed bytes")
	}
	stepBytes := int64(domain.BufLen(domain.Subset(opts.Global, 1), opts.ElemSize))
	if res.Staging.StoreBytes > 8*stepBytes {
		t.Fatalf("store holds %d bytes (> 8 steps worth %d): GC ineffective",
			res.Staging.StoreBytes, 8*stepBytes)
	}
}

func TestTwoConsumersIndependentRecovery(t *testing.T) {
	opts := baseOpts(ckpt.Uncoordinated)
	opts.Consumers = 2
	opts.Failures = []FailAt{{Component: "ana1", Rank: 0, TS: 6}}
	res := mustRun(t, opts)
	if res.Recoveries != 1 {
		t.Fatalf("recoveries = %d", res.Recoveries)
	}
	if res.CorruptReads != 0 {
		t.Fatalf("corrupt reads %d", res.CorruptReads)
	}
	// Both consumer components read all steps.
	min := opts.Steps * int64(opts.AnaRanks) * 2
	if res.SuccessReads < min {
		t.Fatalf("success reads %d < %d", res.SuccessReads, min)
	}
}

func TestThreeConsumersCoordinated(t *testing.T) {
	opts := baseOpts(ckpt.Coordinated)
	opts.Consumers = 3
	opts.Failures = []FailAt{{Component: "ana2", Rank: 1, TS: 7}}
	res := mustRun(t, opts)
	if res.Recoveries == 0 || res.CorruptReads != 0 {
		t.Fatalf("result %+v", res)
	}
	min := opts.Steps * int64(opts.AnaRanks) * 3
	if res.SuccessReads < min {
		t.Fatalf("success reads %d < %d", res.SuccessReads, min)
	}
}

func TestMultiConsumerProducerFailure(t *testing.T) {
	opts := baseOpts(ckpt.Uncoordinated)
	opts.Consumers = 2
	opts.Failures = []FailAt{{Component: "sim", Rank: 1, TS: 6}}
	res := mustRun(t, opts)
	if res.CorruptReads != 0 || res.SuppressedPuts == 0 {
		t.Fatalf("result %+v", res)
	}
}

// TestDiverseConsumerModes composes, in one workflow, a C/R-protected
// consumer and a replicated consumer — the diversity of
// fault-tolerance techniques the framework exists to enable (§II-A) —
// and fails both.
func TestDiverseConsumerModes(t *testing.T) {
	opts := baseOpts(ckpt.Hybrid)
	opts.Consumers = 2
	opts.ConsumerModes = []ConsumerMode{ModeCR, ModeReplicated}
	opts.Failures = []FailAt{
		// Mid-period failure so the C/R consumer has a replay window
		// (its checkpoint lands at ts 5).
		{Component: "ana0", Rank: 0, TS: 7}, // C/R: rollback + replay
		{Component: "ana1", Rank: 1, TS: 8}, // replication: masked
	}
	opts.Spares = 4
	res := mustRun(t, opts)
	if res.Recoveries < 2 {
		t.Fatalf("recoveries = %d", res.Recoveries)
	}
	if res.CorruptReads != 0 {
		t.Fatalf("corrupt reads %d", res.CorruptReads)
	}
	// The C/R consumer replayed; the replicated one did not add more.
	if res.ReplayedEvents == 0 {
		t.Fatal("C/R consumer did not replay")
	}
	min := opts.Steps * int64(opts.AnaRanks) * 2
	if res.SuccessReads < min {
		t.Fatalf("success reads %d < %d", res.SuccessReads, min)
	}
}

func TestConsumerModesValidation(t *testing.T) {
	opts := baseOpts(ckpt.Uncoordinated)
	opts.Consumers = 2
	opts.ConsumerModes = []ConsumerMode{ModeCR}
	if _, err := Run(opts); err == nil {
		t.Fatal("mode count mismatch accepted")
	}
	opts = baseOpts(ckpt.Coordinated)
	opts.ConsumerModes = []ConsumerMode{ModeReplicated}
	if _, err := Run(opts); err == nil {
		t.Fatal("modes with unlogged scheme accepted")
	}
}

// TestMultiLevelLiveProcessFailure: process failures recover from the
// fast node-local level.
func TestMultiLevelLiveProcessFailure(t *testing.T) {
	opts := baseOpts(ckpt.Uncoordinated)
	opts.MultiLevel = true
	opts.L2Every = 2
	opts.Failures = []FailAt{{Component: "ana", Rank: 0, TS: 7}}
	res := mustRun(t, opts)
	if res.CorruptReads != 0 {
		t.Fatalf("corrupt reads %d", res.CorruptReads)
	}
	if res.L1Loads == 0 {
		t.Fatalf("recovery did not use L1: %+v", res)
	}
	if res.L2Loads != 0 {
		t.Fatalf("process failure read L2: %+v", res)
	}
}

// TestMultiLevelLiveNodeLoss: a node loss destroys L1, recovery falls
// back to the (older) durable checkpoint, and the workflow still ends
// byte-identical.
func TestMultiLevelLiveNodeLoss(t *testing.T) {
	opts := baseOpts(ckpt.Uncoordinated)
	opts.Steps = 12
	opts.MultiLevel = true
	opts.L2Every = 2 // ana checkpoints at ts 5,10 -> L2 at ts 10
	opts.Failures = []FailAt{{Component: "ana", Rank: 1, TS: 12, NodeLoss: true}}
	res := mustRun(t, opts)
	if res.CorruptReads != 0 {
		t.Fatalf("corrupt reads %d", res.CorruptReads)
	}
	if res.L2Loads == 0 {
		t.Fatalf("node loss did not fall back to L2: %+v", res)
	}
	expectReads(t, res, opts)
}

// TestWorkflowOverTCP runs the whole stack — MPI ranks, staging
// protocol, logging, failure recovery — over loopback TCP sockets.
func TestWorkflowOverTCP(t *testing.T) {
	opts := baseOpts(ckpt.Uncoordinated)
	opts.OverTCP = true
	opts.Steps = 6
	opts.Failures = []FailAt{{Component: "ana", Rank: 0, TS: 4}}
	res := mustRun(t, opts)
	if res.CorruptReads != 0 || res.Recoveries == 0 {
		t.Fatalf("result %+v", res)
	}
	expectReads(t, res, opts)
}

// TestCoordinatedWithMultiLevelNodeLoss combines global rollback with
// two-level checkpoints and a node loss.
func TestCoordinatedWithMultiLevelNodeLoss(t *testing.T) {
	opts := baseOpts(ckpt.Coordinated)
	opts.Steps = 12
	opts.MultiLevel = true
	opts.L2Every = 2
	opts.Failures = []FailAt{{Component: "sim", Rank: 0, TS: 11, NodeLoss: true}}
	res := mustRun(t, opts)
	if res.CorruptReads != 0 || res.Recoveries == 0 {
		t.Fatalf("result %+v", res)
	}
	if res.L2Loads == 0 {
		t.Fatalf("node loss did not reach L2: %+v", res)
	}
}

// TestHybridOverTCP runs the replication-mixed scheme across the wire.
func TestHybridOverTCP(t *testing.T) {
	opts := baseOpts(ckpt.Hybrid)
	opts.OverTCP = true
	opts.Steps = 8
	opts.Failures = []FailAt{{Component: "ana", Rank: 1, TS: 5}}
	res := mustRun(t, opts)
	if res.CorruptReads != 0 || res.Recoveries != 1 {
		t.Fatalf("result %+v", res)
	}
	expectReads(t, res, opts)
}

package workflow

import (
	"errors"
	"fmt"
	"os"
	"sync"

	"gospaces/internal/domain"
	"gospaces/internal/mpi"
	"gospaces/internal/staging"
	"gospaces/internal/synth"
)

// component is one application of the workflow.
type component struct {
	run    *run
	name   string
	ranks  int
	dec    *domain.Decomposition
	period int
	// producer stages data; otherwise the component consumes it.
	producer bool
	// logged selects the crash-consistent staging path.
	logged bool
	// replicated marks process replication instead of C/R (hybrid).
	replicated bool
	// readLatest makes the consumer read "latest" instead of explicit
	// versions — the individual scheme's unguarded behaviour.
	readLatest bool
	// consumerBase offsets this consumer component's rank ids in the
	// coupler, so multiple consumer components count independently.
	consumerBase int
}

// rankEntry is one rank's execution context for a single attempt.
type rankEntry struct {
	c      *component
	rank   int
	proc   *mpi.Proc
	comm   *mpi.Comm // nil for replicated components
	client *staging.Client
	state  rankState // restored checkpoint state; advanced in place
}

// runRanks executes the entries concurrently until they all finish or
// any fails; the shared abort channel promptly unblocks coupler waits.
func (r *run) runRanks(entries []*rankEntry) []error {
	abort := make(chan struct{})
	var once sync.Once
	fail := func() {
		once.Do(func() {
			// Revoking the communicator unblocks peers stuck in
			// collectives; the abort channel unblocks coupler waits.
			if entries[0].comm != nil {
				entries[0].comm.Revoke()
			}
			close(abort)
		})
	}
	// Global teardown propagation.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-r.doom:
			fail()
		case <-done:
		}
	}()
	errs := make([]error, len(entries))
	var wg sync.WaitGroup
	for i, e := range entries {
		wg.Add(1)
		go func(i int, e *rankEntry) {
			defer wg.Done()
			err := r.rankLoop(e, abort)
			errs[i] = err
			if err != nil {
				fail()
			}
		}(i, e)
	}
	wg.Wait()
	return errs
}

// rankLoop advances one rank from its start timestep to completion.
func (r *run) rankLoop(e *rankEntry, abort <-chan struct{}) error {
	c := e.c
	rankBox, err := c.dec.RankBox(e.rank)
	if err != nil {
		return err
	}
	for ts := e.state.LastTS + 1; ts <= r.opts.Steps; ts++ {
		// Scheduled fail-stop: the process dies at the top of ts.
		if hit, nodeLoss := r.inj.fires(c.name, e.rank, ts); hit {
			if nodeLoss && r.ml != nil {
				r.ml.InvalidateL1(c.name, c.ranks)
			}
			r.world.Kill(e.proc)
			return mpi.ErrDead
		}
		// Scheduled staging-server fail-stops: producer rank 0 pulls the
		// plug at the top of ts; the heartbeat detector and recovery
		// supervisor take it from there.
		if c.producer && e.rank == 0 {
			for _, id := range r.srvInj.due(ts) {
				if err := r.group.FailStop(id); err != nil {
					return fmt.Errorf("workflow: fail-stop server %d: %w", id, err)
				}
			}
		}
		if c.producer {
			// Stencil-style halo exchange with ring neighbours before
			// the step, exercising point-to-point messaging under
			// failures.
			if e.comm != nil && c.ranks > 1 {
				if err := r.haloExchange(e, ts); err != nil {
					return err
				}
			}
			if err := r.coupler.WaitConsumed(ts-1, abort); err != nil {
				return err
			}
			for _, f := range r.fields {
				data := f.Fill(ts, rankBox)
				if c.logged {
					err = e.client.PutWithLog(f.Name, ts, rankBox, data)
				} else {
					err = e.client.Put(f.Name, ts, rankBox, data)
				}
				if err != nil {
					return fmt.Errorf("workflow: %s/%d ts%d %s: %w", c.name, e.rank, ts, f.Name, err)
				}
				e.state.fold(synth.Checksum(data))
			}
			// CoREC-protect the full field alongside the plain staging
			// copy; the payload is deterministic, so re-protection after
			// a rollback overwrites shards with identical bytes.
			if r.opts.Redundancy != nil && e.rank == 0 {
				for _, f := range r.fields {
					key := fmt.Sprintf("wf/%s/%d", f.Name, ts)
					if err := r.protect(key, f.Fill(ts, r.subset)); err != nil {
						return fmt.Errorf("workflow: protect %s ts%d: %w", f.Name, ts, err)
					}
				}
			}
			r.coupler.MarkProduced(ts, e.rank)
		} else {
			if err := r.coupler.WaitProduced(ts, abort); err != nil {
				return err
			}
			version := ts
			if c.readLatest {
				version = staging.NoVersion
			}
			for _, f := range r.fields {
				var data []byte
				if c.logged {
					data, _, err = e.client.GetWithLog(f.Name, version, rankBox)
				} else {
					data, _, err = e.client.Get(f.Name, version, rankBox)
				}
				switch {
				case err != nil && c.readLatest:
					// The unguarded individual scheme races recovering
					// components against live ones; a torn read is one
					// more way it corrupts results.
					r.corruptReads.Add(1)
					// Fold a marker so the state divergence is
					// observable there too.
					e.state.fold(0xdead)
				case err != nil:
					return fmt.Errorf("workflow: %s/%d read ts%d %s: %w", c.name, e.rank, ts, f.Name, err)
				case f.Verify(ts, rankBox, data) >= 0:
					r.corruptReads.Add(1)
					e.state.fold(synth.Checksum(data))
				default:
					r.successReads.Add(1)
					e.state.fold(synth.Checksum(data))
				}
			}
			r.coupler.MarkConsumed(ts, c.consumerBase+e.rank)
		}
		// Per-step synchronization: propagates failure detection and
		// keeps checkpoints component-consistent.
		if e.comm != nil {
			if err := e.comm.Barrier(e.proc); err != nil {
				return err
			}
		}
		if c.period > 0 && !c.replicated && ts%int64(c.period) == 0 {
			if err := r.saveState(c.name, e.rank, rankState{LastTS: ts, Acc: e.state.Acc}); err != nil {
				return err
			}
			if c.logged {
				if _, err := e.client.WorkflowCheck(); err != nil {
					return err
				}
			}
			if e.comm != nil {
				// The paper brackets checkpoints with barriers so no
				// in-flight coupling data spans the cut.
				if err := e.comm.Barrier(e.proc); err != nil {
					return err
				}
			}
		}
		e.state.LastTS = ts
	}
	r.recordAcc(c.name, e.rank, e.state.Acc)
	return nil
}

// haloExchange sends this rank's step marker to its right ring
// neighbour and receives the left neighbour's, verifying it. Message
// content is deterministic, so replayed duplicates after a rollback are
// harmless.
func (r *run) haloExchange(e *rankEntry, ts int64) error {
	type halo struct {
		TS   int64
		Rank int
	}
	right := (e.rank + 1) % e.c.ranks
	left := (e.rank + e.c.ranks - 1) % e.c.ranks
	if err := e.comm.Send(e.proc, right, int(ts), halo{TS: ts, Rank: e.rank}); err != nil {
		return err
	}
	v, err := e.comm.Recv(e.proc, left, int(ts))
	if err != nil {
		return err
	}
	h, ok := v.(halo)
	if !ok || h.TS != ts || h.Rank != left {
		return fmt.Errorf("workflow: %s/%d ts%d: bad halo %+v", e.c.name, e.rank, ts, v)
	}
	r.haloExchanges.Add(1)
	return nil
}

// maxAttempts bounds recovery rounds, as a guard against livelock bugs.
func (r *run) maxAttempts() int {
	return len(r.opts.Failures) + len(r.opts.ServerFailures) + 3
}

// superviseCR runs one component under checkpoint/restart: on failure
// the whole component rolls back to its last checkpoint, repaired with
// spare processes, and replays through the staging log.
func (r *run) superviseCR(c *component) error {
	procs := make([]*mpi.Proc, c.ranks)
	clients := make([]*staging.Client, c.ranks)
	for i := 0; i < c.ranks; i++ {
		procs[i] = r.world.NewProc()
		cl, err := r.group.NewClient(fmt.Sprintf("%s/%d", c.name, i))
		if err != nil {
			return err
		}
		clients[i] = cl
		defer cl.Close()
	}
	states := make([]rankState, c.ranks)

	for attempt := 0; attempt < r.maxAttempts(); attempt++ {
		comm := r.world.NewComm(procs)
		entries := make([]*rankEntry, c.ranks)
		for i := 0; i < c.ranks; i++ {
			entries[i] = &rankEntry{c: c, rank: i, proc: procs[i], comm: comm, client: clients[i], state: states[i]}
		}
		errs := r.runRanks(entries)
		if allNil(errs) {
			return nil
		}
		debugErrs(c.name, errs)
		select {
		case <-r.doom:
			return fmt.Errorf("workflow: %s torn down by sibling failure", c.name)
		default:
		}
		r.recoveries.Add(1)

		// ULFM recovery: repair the communicator from the spare pool.
		repaired, _, err := comm.Repair(r.spares)
		if err != nil {
			return fmt.Errorf("workflow: recover %s: %w", c.name, err)
		}
		procs = repaired.Members()

		// A staging fail-stop may have triggered the rank failures; let
		// the supervisor finish promoting before clients re-dial.
		if err := r.waitServers(); err != nil {
			return fmt.Errorf("workflow: recover %s: %w", c.name, err)
		}

		// Roll every rank of the component back to its checkpoint and
		// switch the staging servers into replay mode for it.
		for i := 0; i < c.ranks; i++ {
			st, err := r.loadState(c.name, i)
			if err != nil {
				return err
			}
			states[i] = st
			if c.logged {
				// Event versions are timesteps, so the restored state
				// covers every event up to st.LastTS: passing it heals a
				// workflow_check torn by a server dying mid-mark.
				n, err := clients[i].WorkflowRestartFrom(st.LastTS)
				if err != nil {
					return err
				}
				r.replayedEvents.Add(int64(n))
			} else if err := clients[i].Reconnect(); err != nil {
				return err
			}
		}
	}
	return fmt.Errorf("workflow: %s exceeded %d recovery attempts", c.name, r.maxAttempts())
}

// superviseCoordinated runs all components as one recovery domain with
// a global communicator: any failure rolls the whole workflow back to
// the last coordinated checkpoint (the paper's baseline scheme).
func (r *run) superviseCoordinated(comps []*component) error {
	type slot struct {
		c      *component
		rank   int
		client *staging.Client
		state  rankState
	}
	var slots []*slot
	var procs []*mpi.Proc
	for _, c := range comps {
		for i := 0; i < c.ranks; i++ {
			cl, err := r.group.NewClient(fmt.Sprintf("%s/%d", c.name, i))
			if err != nil {
				return err
			}
			defer cl.Close()
			slots = append(slots, &slot{c: c, rank: i, client: cl})
			procs = append(procs, r.world.NewProc())
		}
	}

	for attempt := 0; attempt < r.maxAttempts(); attempt++ {
		comm := r.world.NewComm(procs)
		entries := make([]*rankEntry, len(slots))
		for i, s := range slots {
			entries[i] = &rankEntry{c: s.c, rank: s.rank, proc: procs[i], comm: comm, client: s.client, state: s.state}
		}
		errs := r.runRanks(entries)
		if allNil(errs) {
			return nil
		}
		r.recoveries.Add(1)

		repaired, _, err := comm.Repair(r.spares)
		if err != nil {
			return fmt.Errorf("workflow: coordinated recovery: %w", err)
		}
		procs = repaired.Members()

		// If a staging server fail-stopped, wait for the supervisor to
		// promote its spare so the rollback re-dials the live address.
		if err := r.waitServers(); err != nil {
			return fmt.Errorf("workflow: coordinated recovery: %w", err)
		}

		// Global rollback: everyone reloads the coordinated checkpoint.
		restart := int64(0)
		first := true
		for _, s := range slots {
			st, err := r.loadState(s.c.name, s.rank)
			if err != nil {
				return err
			}
			s.state = st
			if err := s.client.Reconnect(); err != nil {
				return err
			}
			if first || st.LastTS < restart {
				restart = st.LastTS
				first = false
			}
		}
		// The whole coupling cycle re-arms past the restart point.
		r.coupler.Reset(restart)
	}
	return fmt.Errorf("workflow: coordinated domain exceeded %d recovery attempts", r.maxAttempts())
}

// superviseReplicated runs a process-replicated component: each rank
// failure is masked by switching to a replica at the current timestep —
// no rollback, no staging replay (paper §III-B).
func (r *run) superviseReplicated(c *component) error {
	var wg sync.WaitGroup
	errs := make([]error, c.ranks)
	for i := 0; i < c.ranks; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			client, err := r.group.NewClient(fmt.Sprintf("%s/%d", c.name, rank))
			if err != nil {
				errs[rank] = err
				return
			}
			defer client.Close()
			e := &rankEntry{c: c, rank: rank, proc: r.world.NewProc(), client: client}
			// Replicas never abort each other; only global teardown
			// unblocks their coupler waits.
			abort := r.doom
			for attempt := 0; attempt < r.maxAttempts(); attempt++ {
				err := r.rankLoop(e, abort)
				if err == nil {
					return
				}
				switch {
				case errors.Is(err, mpi.ErrDead):
					// Replica takeover: same in-memory state, fresh process.
					r.recoveries.Add(1)
					sp, ok := r.spares.Get()
					if !ok {
						errs[rank] = fmt.Errorf("workflow: no replica available for %s/%d", c.name, rank)
						return
					}
					e.proc = sp
				case errors.Is(err, staging.ErrDegraded) || staging.IsStaleEpoch(err) || errors.Is(err, staging.ErrSlotDown):
					// Staging degraded — a server fail-stopped mid-call.
					// Replication masks process failures, but the staging
					// area still has to heal: wait out the promotion and
					// retry the current timestep against the restored
					// membership. No replica is consumed and no rollback
					// happens; the state advanced in place is still valid.
				default:
					errs[rank] = err
					r.condemn() // hard error: unwind the whole run
					return
				}
				if err := r.waitServers(); err != nil {
					errs[rank] = err
					return
				}
				if err := client.Reconnect(); err != nil {
					errs[rank] = err
					return
				}
			}
			errs[rank] = fmt.Errorf("workflow: %s/%d exceeded recovery attempts", c.name, rank)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// debugErrs reports rank errors when GOSPACES_DEBUG is set.
func debugErrs(name string, errs []error) {
	if os.Getenv("GOSPACES_DEBUG") == "" {
		return
	}
	for i, err := range errs {
		if err != nil {
			fmt.Printf("[debug] %s rank %d: %v\n", name, i, err)
		}
	}
}

func allNil(errs []error) bool {
	for _, err := range errs {
		if err != nil {
			return false
		}
	}
	return true
}

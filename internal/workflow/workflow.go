// Package workflow composes the full system into runnable in-situ
// workflows: a simulation component producing field data into staging
// and an analytic component consuming it, each running its ranks on the
// MPI-like runtime, protected by one of the paper's four workflow-level
// fault-tolerance schemes, with fail-stop failures injected and
// recovered live. Consumers verify every byte they read against the
// deterministic synthetic field, so crash consistency is checked end to
// end, not just asserted.
package workflow

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gospaces/internal/ckpt"
	"gospaces/internal/corec"
	"gospaces/internal/domain"
	"gospaces/internal/health"
	"gospaces/internal/mpi"
	"gospaces/internal/pfs"
	"gospaces/internal/recovery"
	"gospaces/internal/staging"
	"gospaces/internal/synth"
	"gospaces/internal/transport"
)

// ConsumerMode is one consumer component's fault-tolerance technique.
type ConsumerMode int

// Consumer fault-tolerance modes for Options.ConsumerModes.
const (
	// ModeCR protects the consumer with checkpoint/restart plus staging
	// data logging.
	ModeCR ConsumerMode = iota
	// ModeReplicated protects the consumer with process replication:
	// failures are masked by replica takeover, no rollback or replay.
	ModeReplicated
)

// FailAt schedules one fail-stop injection: the rank of the component
// is killed when it begins timestep TS.
type FailAt struct {
	Component string
	Rank      int
	TS        int64
	// NodeLoss also destroys the component's node-local (L1)
	// checkpoints, forcing multi-level recovery from the durable level.
	NodeLoss bool
}

// ServerFailAt schedules one staging-server fail-stop: the server's
// listener closes for good when the producer's rank 0 begins timestep
// TS. Unlike FailAt process failures, nothing comes back at the old
// address — the recovery supervisor must promote a warm spare.
type ServerFailAt struct {
	Server int
	TS     int64
}

// Options configures a workflow run.
type Options struct {
	// Scheme is the workflow-level fault-tolerance scheme.
	Scheme ckpt.Scheme
	// Steps is the number of coupling cycles.
	Steps int64
	// Global is the data domain; ElemSize the bytes per cell.
	Global   domain.BBox
	ElemSize int
	// SubsetFrac is the fraction of the domain exchanged per step.
	SubsetFrac float64
	// SimRanks and AnaRanks are the component sizes.
	SimRanks, AnaRanks int
	// Consumers is the number of analytic components (each with
	// AnaRanks ranks) coupled to the producer, as in the paper's
	// Figure 1. Default 1, named "ana"; with more, they are named
	// "ana0", "ana1", ... and recover independently.
	Consumers int
	// ConsumerModes optionally assigns each consumer component its own
	// fault-tolerance technique — the diversity the framework exists to
	// compose (§II-A). Valid with the Uncoordinated and Hybrid schemes;
	// when empty, Uncoordinated protects all consumers with C/R and
	// Hybrid replicates them all.
	ConsumerModes []ConsumerMode
	// NServers and Bits configure the staging group.
	NServers, Bits int
	// SimPeriod and AnaPeriod are per-component checkpoint periods
	// (uncoordinated/individual/hybrid); CoordPeriod is the global
	// period (coordinated).
	SimPeriod, AnaPeriod, CoordPeriod int
	// Failures to inject.
	Failures []FailAt
	// Spares is the spare-process pool size.
	Spares int
	// ServerFailures schedules permanent staging-server fail-stops.
	// Only the Coordinated scheme supports them: its global rollback
	// regenerates all coupling data, so nothing depends on the staged
	// state lost with the dead server. Scheduling one enables the
	// heartbeat detector and the recovery supervisor, which promotes a
	// warm spare and re-protects CoREC shards.
	ServerFailures []ServerFailAt
	// StagingSpares is the warm-spare staging-server pool size (default:
	// one per scheduled server failure).
	StagingSpares int
	// Supervisors is the number of redundant recovery supervisors racing
	// for the leader lease (default 1). With more than one, a standby
	// takes over within a lease window of the leader dying — resuming
	// any half-done promotion the leader journaled.
	Supervisors int
	// WlogReplicas replicates each staging server's event log (and the
	// logged payloads and lock tables) to this many peer servers, so a
	// promoted spare restores the dead server's queues and replay
	// survives staging fail-stops. It is what lets logged schemes
	// (uncoordinated, hybrid) tolerate ServerFailures. 0 disables.
	WlogReplicas int
	// Redundancy, when set, CoREC-protects every produced field per
	// timestep (replication or erasure coding across the staging group),
	// giving the recovery supervisor shards to rebuild after a
	// fail-stop.
	Redundancy *corec.Config
	// FieldName names the exchanged object (prefix when Fields > 1).
	FieldName string
	// Fields is the number of field components exchanged per coupling
	// cycle (the paper's S3D workflow moves dozens of scalar/vector
	// fields). Default 1.
	Fields int
	// OverTCP runs the staging group on loopback TCP sockets instead of
	// the in-process transport, exercising the full wire path.
	OverTCP bool
	// MultiLevel checkpoints to fast node-local storage (L1), writing
	// every L2Every-th checkpoint to the durable store too (Moody et
	// al.; the paper's future work). Failures marked NodeLoss destroy
	// L1 and force recovery from L2.
	MultiLevel bool
	// L2Every directs every n-th checkpoint to the durable level
	// (default 4).
	L2Every int
}

func (o *Options) defaults() error {
	if o.Steps <= 0 || o.SimRanks <= 0 || o.AnaRanks <= 0 || o.NServers <= 0 {
		return fmt.Errorf("workflow: non-positive sizes in %+v", *o)
	}
	if o.FieldName == "" {
		o.FieldName = "field"
	}
	if o.SubsetFrac <= 0 || o.SubsetFrac > 1 {
		o.SubsetFrac = 1
	}
	if o.Bits == 0 {
		o.Bits = 2
	}
	if o.ElemSize == 0 {
		o.ElemSize = 8
	}
	if o.Spares == 0 {
		o.Spares = len(o.Failures) + 1
	}
	if o.Consumers <= 0 {
		o.Consumers = 1
	}
	if o.Fields <= 0 {
		o.Fields = 1
	}
	if o.MultiLevel && o.L2Every <= 0 {
		o.L2Every = 4
	}
	if len(o.ConsumerModes) > 0 {
		if len(o.ConsumerModes) != o.Consumers {
			return fmt.Errorf("workflow: %d consumer modes for %d consumers", len(o.ConsumerModes), o.Consumers)
		}
		if !o.Scheme.Logged() {
			return fmt.Errorf("workflow: per-consumer modes need a logged scheme (uncoordinated or hybrid)")
		}
	}
	if o.Scheme == ckpt.Coordinated {
		if o.CoordPeriod <= 0 {
			return fmt.Errorf("workflow: coordinated scheme needs CoordPeriod")
		}
		o.SimPeriod, o.AnaPeriod = o.CoordPeriod, o.CoordPeriod
	}
	if o.SimPeriod <= 0 || o.AnaPeriod <= 0 {
		return fmt.Errorf("workflow: checkpoint periods must be positive")
	}
	if len(o.ServerFailures) > 0 {
		if o.Scheme != ckpt.Coordinated && !(o.Scheme.Logged() && o.WlogReplicas > 0) {
			return fmt.Errorf("workflow: server fail-stops need the coordinated scheme (global rollback regenerates the staged state lost with the server) or a logged scheme with WlogReplicas > 0 (the event log and payloads survive on peer replicas)")
		}
		for _, f := range o.ServerFailures {
			if f.Server < 0 || f.Server >= o.NServers {
				return fmt.Errorf("workflow: server failure targets server %d of %d", f.Server, o.NServers)
			}
			if f.TS < 1 || f.TS > o.Steps {
				return fmt.Errorf("workflow: server failure at ts %d outside 1..%d", f.TS, o.Steps)
			}
		}
		if o.StagingSpares == 0 {
			o.StagingSpares = len(o.ServerFailures)
		}
	}
	if o.Supervisors <= 0 {
		o.Supervisors = 1
	}
	if o.Redundancy != nil {
		spread := o.Redundancy.Replicas
		if o.Redundancy.Mode == corec.ErasureCoding {
			spread = o.Redundancy.K + o.Redundancy.M
		}
		if spread > o.NServers {
			return fmt.Errorf("workflow: redundancy spans %d shards over %d servers", spread, o.NServers)
		}
	}
	return nil
}

// Result reports what a run did.
type Result struct {
	// Elapsed is the wall-clock run time.
	Elapsed time.Duration
	// Recoveries counts component rollback/repair rounds.
	Recoveries int
	// ReplayedEvents is the total replay-script length over all
	// workflow_restart calls.
	ReplayedEvents int
	// SuccessReads and CorruptReads count verified and failed consumer
	// reads. Any scheme except Individual must end with CorruptReads
	// == 0, failures or not.
	SuccessReads, CorruptReads int64
	// SuppressedPuts counts duplicate writes the log suppressed.
	SuppressedPuts int64
	// HaloExchanges counts successful producer halo messages.
	HaloExchanges int64
	// L1Loads and L2Loads count multi-level checkpoint restores by
	// level (L2 only after node losses).
	L1Loads, L2Loads int
	// StateMismatches counts ranks whose final accumulated state
	// diverged from the failure-free value — must be 0 for every scheme
	// that guarantees correct state recovery.
	StateMismatches int
	// Staging is the final aggregated staging accounting.
	Staging staging.StatsResp
	// CheckpointBytes is resident checkpoint storage at the end.
	CheckpointBytes int64
	// ServerRecoveries counts staging-server promotions (spare replaced
	// a confirmed-dead member).
	ServerRecoveries int
	// Rebuilds and RebuildBytes count supervised CoREC re-protection
	// work after server fail-stops.
	Rebuilds     int64
	RebuildBytes int64
	// FinalEpoch is the staging membership epoch at the end of the run
	// (1 + one bump per promotion).
	FinalEpoch uint64
}

// rankState is the application state each rank checkpoints: the last
// completed timestep plus an order-sensitive accumulator over all data
// the rank produced or consumed. After any sequence of failures,
// replays, and rollbacks, a rank's final accumulator must equal the
// failure-free value — the workflow runtime checks this at the end, so
// state recovery (not just staging data) is verified.
type rankState struct {
	LastTS int64
	Acc    uint64
}

// fold mixes one timestep's payload digest into the accumulator.
func (s *rankState) fold(sum uint64) {
	x := s.Acc ^ sum
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	s.Acc = x ^ (x >> 31)
}

// injector hands out each scheduled failure exactly once.
type injector struct {
	mu   sync.Mutex
	plan map[FailAt]bool
}

func newInjector(plan []FailAt) *injector {
	m := make(map[FailAt]bool, len(plan))
	for _, f := range plan {
		m[f] = true
	}
	return &injector{plan: m}
}

// fires reports (once) whether component/rank fails at ts, and whether
// the failure is a node loss.
func (i *injector) fires(component string, rank int, ts int64) (hit, nodeLoss bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	for _, nl := range []bool{false, true} {
		key := FailAt{Component: component, Rank: rank, TS: ts, NodeLoss: nl}
		if i.plan[key] {
			delete(i.plan, key)
			return true, nl
		}
	}
	return false, false
}

// serverInjector hands out each scheduled staging-server fail-stop
// exactly once, keyed by schedule index so duplicate entries both fire.
type serverInjector struct {
	mu    sync.Mutex
	plan  []ServerFailAt
	fired []bool
}

func newServerInjector(plan []ServerFailAt) *serverInjector {
	return &serverInjector{plan: plan, fired: make([]bool, len(plan))}
}

// due returns the server ids scheduled to fail-stop at ts, each at most
// once per run (a rollback re-entering ts must not re-kill).
func (i *serverInjector) due(ts int64) []int {
	i.mu.Lock()
	defer i.mu.Unlock()
	var out []int
	for idx, f := range i.plan {
		if !i.fired[idx] && f.TS == ts {
			i.fired[idx] = true
			out = append(out, f.Server)
		}
	}
	return out
}

// run owns the shared machinery of one workflow execution.
type run struct {
	opts      Options
	group     *staging.Group
	saver     *ckpt.Saver
	ml        *ckpt.MultiLevel
	ckptStore *pfs.Store
	l1Store   *pfs.Store
	world     *mpi.World
	spares    *mpi.SparePool
	coupler   *Coupler
	fields    []*synth.Field
	inj       *injector
	srvInj    *serverInjector
	sup       *recovery.Supervisor   // first supervisor (WaitIdle convenience)
	sups      []*recovery.Supervisor // all redundant supervisors
	subset    domain.BBox
	simDec    *domain.Decomposition
	anaDec    *domain.Decomposition

	// redMu guards the lazily (re)built CoREC protector: a staging
	// client plus resilience client over its raw shard connections,
	// re-dialled after a promotion moves a membership slot.
	redMu  sync.Mutex
	protCl *staging.Client
	prot   *corec.Client

	recoveries     atomic.Int64
	l1Loads        atomic.Int64
	l2Loads        atomic.Int64
	replayedEvents atomic.Int64
	successReads   atomic.Int64
	corruptReads   atomic.Int64
	haloExchanges  atomic.Int64

	// finalAcc records each rank's final accumulator, keyed
	// "component/rank", for end-of-run state validation.
	accMu    sync.Mutex
	finalAcc map[string]uint64

	// doom tears down every recovery domain when one supervisor gives
	// up, so a sibling domain cannot wait forever on the coupler.
	doom     chan struct{}
	doomOnce sync.Once
}

// condemn signals global teardown.
func (r *run) condemn() {
	r.doomOnce.Do(func() { close(r.doom) })
}

// Run executes the workflow and returns its result. It is the
// functional counterpart of the paper's synthetic experiments: real
// staging servers, real event logs, real recovery.
func Run(opts Options) (Result, error) {
	if err := opts.defaults(); err != nil {
		return Result{}, err
	}
	var tr transport.Transport = transport.NewInProc()
	if opts.OverTCP {
		tr = transport.NewTCP()
	}
	group, err := staging.StartGroup(tr, groupPrefix(opts), staging.Config{
		Global:       opts.Global,
		NServers:     opts.NServers,
		Bits:         opts.Bits,
		ElemSize:     opts.ElemSize,
		WlogReplicas: opts.WlogReplicas,
	})
	if err != nil {
		return Result{}, err
	}
	defer group.Close()

	world := mpi.NewWorld()
	ckptStore := pfs.NewStore()
	l1Store := pfs.NewStore()
	var ml *ckpt.MultiLevel
	if opts.MultiLevel {
		var err error
		ml, err = ckpt.NewMultiLevel(l1Store, ckptStore, opts.L2Every)
		if err != nil {
			return Result{}, err
		}
	}
	r := &run{
		opts:      opts,
		group:     group,
		saver:     ckpt.NewSaver(ckptStore),
		ml:        ml,
		ckptStore: ckptStore,
		l1Store:   l1Store,
		world:     world,
		finalAcc:  make(map[string]uint64),
		spares:    mpi.NewSparePool(world, opts.Spares),
		coupler:   NewCoupler(opts.SimRanks, opts.AnaRanks*opts.Consumers),
		fields:    makeFields(opts),
		inj:       newInjector(opts.Failures),
		srvInj:    newServerInjector(opts.ServerFailures),
		subset:    domain.Subset(opts.Global, opts.SubsetFrac),
		doom:      make(chan struct{}),
	}
	defer r.closeProtector()

	if len(opts.ServerFailures) > 0 || opts.StagingSpares > 0 {
		for i := 0; i < opts.StagingSpares; i++ {
			if _, err := group.AddSpare(); err != nil {
				return Result{}, err
			}
		}
		for i := 0; i < opts.Supervisors; i++ {
			id := fmt.Sprintf("workflow/supervisor/%d", i)
			det := health.NewDetector(tr, id, health.Config{
				Period:       15 * time.Millisecond,
				Timeout:      100 * time.Millisecond,
				SuspectAfter: 2,
				DeadAfter:    6,
			})
			sup := recovery.New(tr, det, group.Membership(), group, recovery.Config{
				Redundancy: opts.Redundancy,
				ID:         id,
				OnPromote: func(slot int, addr string, epoch uint64) {
					// Re-point the shared client pool so reconnecting ranks
					// dial the promoted spare.
					group.Pool.SetMember(slot, addr, epoch)
				},
				OnSlotDown: func(slot int, down bool) {
					// While a dead slot has no spare to promote, clients
					// fail fast with ErrSlotDown instead of timing out.
					group.Pool.MarkSlotDown(slot, down)
				},
			})
			sup.Start()
			defer sup.Close()
			r.sups = append(r.sups, sup)
		}
		r.sup = r.sups[0]
	}

	start := time.Now()
	if err := r.execute(); err != nil {
		return Result{}, err
	}
	elapsed := time.Since(start)

	var promotions, rebuilds, rebuildBytes int64
	if r.sup != nil {
		// Drain any in-flight repair so the final stats see the rebuilt
		// shards; a slot that stays dead surfaces below as a dial error.
		_ = r.sup.WaitIdle(30 * time.Second)
		// Whichever supervisor held the lease did the work: sum across
		// the redundant set.
		for _, sup := range r.sups {
			m := sup.Metrics()
			promotions += m.Counter("recovery.promotions").Value()
			rebuilds += m.Counter("recovery.rebuilds").Value()
			rebuildBytes += m.Counter("recovery.rebuild_bytes").Value()
		}
	}

	probe, err := group.NewClient("probe/0")
	if err != nil {
		return Result{}, err
	}
	defer probe.Close()
	stats, err := probe.Stats()
	if err != nil {
		return Result{}, err
	}
	return Result{
		Elapsed:          elapsed,
		Recoveries:       int(r.recoveries.Load()),
		ReplayedEvents:   int(r.replayedEvents.Load()),
		SuccessReads:     r.successReads.Load(),
		CorruptReads:     r.corruptReads.Load(),
		SuppressedPuts:   stats.SuppressedPuts,
		HaloExchanges:    r.haloExchanges.Load(),
		L1Loads:          int(r.l1Loads.Load()),
		L2Loads:          int(r.l2Loads.Load()),
		StateMismatches:  r.validateState(),
		Staging:          stats,
		CheckpointBytes:  r.ckptStore.Bytes() + r.l1Store.Bytes(),
		ServerRecoveries: int(promotions),
		Rebuilds:         rebuilds,
		RebuildBytes:     rebuildBytes,
		FinalEpoch:       group.Membership().Epoch(),
	}, nil
}

// protect CoREC-stores data under key, lazily building the protector
// and re-dialling it once on failure — a promotion since the last call
// moves a shard's home address.
func (r *run) protect(key string, data []byte) error {
	r.redMu.Lock()
	defer r.redMu.Unlock()
	if r.prot == nil {
		if err := r.rebuildProtector(); err != nil {
			return err
		}
	}
	err := r.prot.Put(key, data)
	if err == nil {
		return nil
	}
	if rerr := r.rebuildProtector(); rerr != nil {
		return err // dead slot not yet promoted: the put error says more
	}
	return r.prot.Put(key, data)
}

// rebuildProtector dials a fresh staging client at the pool's current
// membership view and wraps a resilience client over its raw shard
// connections. Callers hold redMu.
func (r *run) rebuildProtector() error {
	if r.protCl != nil {
		r.protCl.Close()
		r.protCl, r.prot = nil, nil
	}
	cl, err := r.group.NewClient("protect/0")
	if err != nil {
		return err
	}
	conns := make([]transport.Client, cl.NumServers())
	for i := range conns {
		conns[i] = cl.ShardConn(i)
	}
	p, err := corec.New(*r.opts.Redundancy, conns)
	if err != nil {
		cl.Close()
		return err
	}
	r.protCl, r.prot = cl, p
	return nil
}

func (r *run) closeProtector() {
	r.redMu.Lock()
	defer r.redMu.Unlock()
	if r.protCl != nil {
		r.protCl.Close()
		r.protCl, r.prot = nil, nil
	}
}

// waitServers blocks until the staging membership is quiet again — all
// slots alive with no promotion or re-protection in flight — so rank
// recovery re-dials promoted addresses instead of dead ones. Without a
// supervisor there is nothing to wait for.
func (r *run) waitServers() error {
	if r.sup == nil {
		return nil
	}
	return r.sup.WaitIdle(30 * time.Second)
}

// groupPrefix returns the transport address prefix: a name for the
// in-process transport, loopback-with-ephemeral-ports for TCP (the TCP
// transport treats the prefix as host; see staging.StartGroup).
func groupPrefix(opts Options) string {
	if opts.OverTCP {
		return "127.0.0.1:0"
	}
	return "wf"
}

// makeFields builds the per-component field generators. With one field
// the bare FieldName is used; with more, names get an index suffix.
func makeFields(opts Options) []*synth.Field {
	if opts.Fields == 1 {
		return []*synth.Field{synth.NewField(opts.FieldName, opts.Global, opts.ElemSize)}
	}
	out := make([]*synth.Field, opts.Fields)
	for i := range out {
		out[i] = synth.NewField(fmt.Sprintf("%s%d", opts.FieldName, i), opts.Global, opts.ElemSize)
	}
	return out
}

// validateState compares every rank's final accumulator against the
// failure-free expectation (computable because the synthetic field is
// deterministic) and returns the number of divergent ranks. The
// individual scheme is exempt for consumers reading "latest": its state
// is expected to diverge — that is the paper's motivation.
func (r *run) validateState() int {
	mismatches := 0
	r.accMu.Lock()
	defer r.accMu.Unlock()
	for key, got := range r.finalAcc {
		comp, rank, dec, consumer := r.rankMeta(key)
		if comp == "" {
			continue
		}
		if consumer && r.opts.Scheme == ckpt.Individual {
			continue // expected to be wrong; CorruptReads counts it
		}
		box, err := dec.RankBox(rank)
		if err != nil {
			continue
		}
		var want rankState
		for ts := int64(1); ts <= r.opts.Steps; ts++ {
			for _, f := range r.fields {
				want.fold(synth.Checksum(f.Fill(ts, box)))
			}
		}
		if got != want.Acc {
			_ = comp
			mismatches++
		}
	}
	return mismatches
}

// rankMeta parses a "component/rank" accumulator key.
func (r *run) rankMeta(key string) (comp string, rank int, dec *domain.Decomposition, consumer bool) {
	i := strings.LastIndex(key, "/")
	if i < 0 {
		return "", 0, nil, false
	}
	comp = key[:i]
	fmt.Sscanf(key[i+1:], "%d", &rank)
	if comp == "sim" {
		return comp, rank, r.simDec, false
	}
	return comp, rank, r.anaDec, true
}

// saveState persists a rank checkpoint through the configured saver.
func (r *run) saveState(component string, rank int, st rankState) error {
	if r.ml != nil {
		_, err := r.ml.Save(component, rank, st)
		return err
	}
	return r.saver.Save(component, rank, st)
}

// loadState restores a rank checkpoint, tracking which level served it.
func (r *run) loadState(component string, rank int) (rankState, error) {
	var st rankState
	if r.ml != nil {
		level, err := r.ml.Load(component, rank, &st)
		if err != nil {
			return st, err
		}
		switch level {
		case 1:
			r.l1Loads.Add(1)
		case 2:
			r.l2Loads.Add(1)
		}
		return st, nil
	}
	_, err := r.saver.Load(component, rank, &st)
	return st, err
}

// recordAcc stores a rank's final accumulator.
func (r *run) recordAcc(comp string, rank int, acc uint64) {
	r.accMu.Lock()
	defer r.accMu.Unlock()
	r.finalAcc[fmt.Sprintf("%s/%d", comp, rank)] = acc
}

// execute wires up the recovery domains per scheme and waits for both
// components to finish all timesteps.
func (r *run) execute() error {
	simDec, err := domain.NewDecomposition(r.subset, []int{r.opts.SimRanks, 1, 1})
	if err != nil {
		return fmt.Errorf("workflow: simulation decomposition: %w", err)
	}
	anaDec, err := domain.NewDecomposition(r.subset, []int{r.opts.AnaRanks, 1, 1})
	if err != nil {
		return fmt.Errorf("workflow: analytic decomposition: %w", err)
	}
	r.simDec, r.anaDec = simDec, anaDec

	sim := &component{
		run: r, name: "sim", ranks: r.opts.SimRanks, dec: simDec,
		period: r.opts.SimPeriod, producer: true,
		logged: r.opts.Scheme.Logged(),
	}
	comps := []*component{sim}
	for i := 0; i < r.opts.Consumers; i++ {
		name := "ana"
		if r.opts.Consumers > 1 {
			name = fmt.Sprintf("ana%d", i)
		}
		replicated := r.opts.Scheme == ckpt.Hybrid
		if len(r.opts.ConsumerModes) > 0 {
			replicated = r.opts.ConsumerModes[i] == ModeReplicated
		}
		comps = append(comps, &component{
			run: r, name: name, ranks: r.opts.AnaRanks, dec: anaDec,
			period: r.opts.AnaPeriod, producer: false,
			logged:       r.opts.Scheme.Logged(),
			replicated:   replicated,
			readLatest:   r.opts.Scheme == ckpt.Individual,
			consumerBase: i * r.opts.AnaRanks,
		})
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(comps))
	switch r.opts.Scheme {
	case ckpt.Coordinated:
		// One recovery domain containing every component.
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := r.superviseCoordinated(comps)
			if err != nil {
				r.condemn()
			}
			errs <- err
		}()
	default:
		// Independent recovery domains.
		for _, c := range comps {
			c := c
			wg.Add(1)
			go func() {
				defer wg.Done()
				var err error
				if c.replicated {
					err = r.superviseReplicated(c)
				} else {
					err = r.superviseCR(c)
				}
				if err != nil {
					r.condemn()
				}
				errs <- err
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

package workflow

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"gospaces/internal/domain"
	"gospaces/internal/failure"
	"gospaces/internal/health"
	"gospaces/internal/pfs"
	"gospaces/internal/qos"
	"gospaces/internal/recovery"
	"gospaces/internal/staging"
	"gospaces/internal/tier"
	"gospaces/internal/trace"
	"gospaces/internal/transport"
	"gospaces/internal/wlog"
)

// This file is the churn-soak composition behind `wfbench -exp soak`:
// a recorded multi-group workload (producer/consumer pairs bracketing
// logged puts/gets with the paper's lock API, checkpointing and
// restarting mid-run) interleaved with a seeded fault schedule
// (fail-stops, blackouts, tier storage faults, tenant floods), the
// whole thing expressed as a trace.Event schedule positioned on a
// logical clock. Because the schedule — including every payload seed
// and every expected get digest — is generated deterministically from
// the seed BEFORE execution, recording and replaying are the same
// operation: executing the schedule. A failing run's trace file
// therefore reproduces the failure deterministically under `go test`,
// which is what turns soak failures into checked-in regression tests.

// SoakOptions configures one seeded churn soak.
type SoakOptions struct {
	// Seed drives the workload interleaving, payload contents, and the
	// fault schedule; a given seed always builds the same trace.
	Seed int64
	// Groups is the number of producer/consumer pairs (default 2).
	Groups int
	// Steps is the number of logged versions each producer writes
	// (default 5).
	Steps int
	// Servers is the staging-group size (default 4).
	Servers int
	// Spares is the warm-spare pool (default 2); it bounds how many
	// fail-stops the fault schedule may carry.
	Spares int
	// Faults is the number of injected faults (0 = clean run). Faults
	// never target slot 0: the lock table lives there and retried lock
	// RPCs use fresh dedup sequences, so faulting it would make replay
	// outcomes ambiguous.
	Faults int
	// Tier gives every server a PFS cold tier and a ~4-version memory
	// budget, so history spills and sweep reads promote it back; the
	// fault mix gains storage faults.
	Tier bool
	// Overload enables admission control with a small flood-tenant
	// quota; the fault mix gains flood bursts that must shed without
	// disturbing the workload.
	Overload bool
	// Label names the trace for humans; defaults to "soak seed=N".
	Label string
}

func (o *SoakOptions) defaults() {
	if o.Groups <= 0 {
		o.Groups = 2
	}
	if o.Steps <= 0 {
		o.Steps = 5
	}
	if o.Servers <= 0 {
		o.Servers = 4
	}
	if o.Spares <= 0 {
		o.Spares = 2
	}
	if o.Label == "" {
		o.Label = fmt.Sprintf("soak seed=%d", o.Seed)
	}
}

// SoakResult is the observable outcome of executing a soak trace.
type SoakResult struct {
	Events     int    // replayable events applied
	Puts       int    // workload puts issued (excluding restarts' re-puts)
	Gets       int    // checked gets (workload + sweep)
	Digest     uint64 // ordered fold of every checked get's payload sum
	StateSum   uint64 // content fingerprint of the final staging state (sweep)
	Restarts   int    // workflow_restart events executed
	Replayed   int    // wlog events replayed by those restarts
	FailStops  int    // servers permanently killed
	Blackouts  int    // transient blackout windows armed
	TierFaults int    // storage faults armed on cold tiers
	FloodPuts  int64  // flood-tenant puts attempted
	FloodSheds int64  // flood puts rejected with a typed overload
	Retries    int64  // workload operations that needed at least one retry
}

// soakGlobal is the domain every soak trace spans: 64x64x1 bytes, so
// one version is 4 KiB and a few versions fit a tier-test budget.
func soakGlobal() domain.BBox { return domain.Box3(0, 0, 0, 63, 63, 0) }

// soakPayload generates the deterministic byte pattern for one put: a
// splitmix64 stream keyed by the recorded seed, so the trace carries
// 16 bytes per put instead of the payload and still replays
// byte-exactly.
func soakPayload(seed, n int64) []byte {
	data := make([]byte, n)
	x := uint64(seed) ^ 0x9e3779b97f4a7c15
	var word uint64
	for i := range data {
		if i%8 == 0 {
			x += 0x9e3779b97f4a7c15
			z := x
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			word = z ^ (z >> 31)
		}
		data[i] = byte(word >> (8 * (i % 8)))
	}
	return data
}

// payloadSum digests one payload (FNV-1a), the per-get check value
// recorded in the trace.
func payloadSum(data []byte) uint64 {
	s := uint64(1469598103934665603)
	for _, c := range data {
		s ^= uint64(c)
		s *= 1099511628211
	}
	return s
}

// foldDigest mixes one get's payload sum into the ordered digest
// accumulator (same mixer as the workflow ranks' result digest).
func foldDigest(acc, sum uint64) uint64 {
	x := acc ^ sum
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func soakPutSeed(base int64, g, v int) int64 {
	return base ^ (int64(g+1) << 40) ^ int64(v)*2654435761
}

func soakField(g int) string  { return fmt.Sprintf("soak/g%d/field", g) }
func soakLock(g int) string   { return fmt.Sprintf("soak/lk/%d", g) }
func soakProd(g int) string   { return fmt.Sprintf("soak/prod/%d", g) }
func soakCons(g int) string   { return fmt.Sprintf("soak/cons/%d", g) }
func soakSweep() string       { return "soak/sweep" }
func soakFloodApp() string    { return "soak/flood" }

// BuildSoakTrace generates the complete recorded schedule for one
// seeded soak: the multi-group workload, the fault injections at their
// logical-clock positions, the final sweep, and the expected digest.
func BuildSoakTrace(o SoakOptions) (trace.Header, []trace.Event, error) {
	o.defaults()
	global := soakGlobal()
	vol := global.Volume()
	h := trace.Header{
		Version: trace.FormatVersion,
		Label:   o.Label,
		Seed:    o.Seed,
		Servers: o.Servers, Spares: o.Spares,
		Bits: 2, ElemSize: 1, Replicas: 2,
		DimX: 64, DimY: 64, DimZ: 1,
		Groups: o.Groups, Steps: o.Steps,
	}
	if o.Faults > 0 {
		h.Flags |= trace.FlagFaults
	}
	if o.Tier {
		h.Flags |= trace.FlagTier
		h.MemBudget = 4 * vol
	}
	if o.Overload {
		h.Flags |= trace.FlagOverload
	}

	rng := rand.New(rand.NewSource(o.Seed))

	// Per-put payload sums, computed up front so gets carry their
	// expected digest in the trace.
	sums := make([][]uint64, o.Groups)
	for g := range sums {
		sums[g] = make([]uint64, o.Steps+1)
		for v := 1; v <= o.Steps; v++ {
			sums[g][v] = payloadSum(soakPayload(soakPutSeed(o.Seed, g, v), vol))
		}
	}

	// Each group restarts its producer once, after a seeded put count.
	restartAfter := make([]int, o.Groups)
	for g := range restartAfter {
		if o.Steps >= 3 {
			restartAfter[g] = 2 + rng.Intn(o.Steps-2)
		}
	}

	// Workload segments: lock-bracketed put and get triples, checkpoint
	// and restart events riding after producers' puts. Segments are the
	// unit the fault schedule indexes (faults land between segments,
	// never inside a lock bracket — a single-threaded executor holding
	// a blocking lock across a fault would deadlock the schedule).
	type segment []trace.Event
	var segments []segment
	puts := make([]int, o.Groups)
	gets := make([]int, o.Groups)
	for {
		var ready []int
		for g := 0; g < o.Groups; g++ {
			if puts[g] < o.Steps || gets[g] < puts[g] {
				ready = append(ready, g)
			}
		}
		if len(ready) == 0 {
			break
		}
		g := ready[rng.Intn(len(ready))]
		doGet := gets[g] < puts[g] && (puts[g] == o.Steps || rng.Intn(2) == 0)
		if doGet {
			v := gets[g] + 1
			gets[g] = v
			segments = append(segments, segment{
				{Kind: trace.EvRLock, App: soakCons(g), Name: soakLock(g)},
				{Kind: trace.EvGet, App: soakCons(g), Name: soakField(g), Version: int64(v), Bytes: vol, Sum: sums[g][v], Logged: true},
				{Kind: trace.EvRUnlock, App: soakCons(g), Name: soakLock(g)},
			})
			continue
		}
		v := puts[g] + 1
		puts[g] = v
		seg := segment{
			{Kind: trace.EvLock, App: soakProd(g), Name: soakLock(g)},
			{Kind: trace.EvPut, App: soakProd(g), Name: soakField(g), Version: int64(v), Bytes: vol, Seed: soakPutSeed(o.Seed, g, v), Logged: true},
			{Kind: trace.EvUnlock, App: soakProd(g), Name: soakLock(g)},
		}
		// A checkpoint before the consumer's first logged get would let
		// keep-latest GC drop the old versions (PayloadFrontier is
		// MaxInt64 for an object nobody has read); after that first get
		// the consumer's resident Get event pins the frontier at v1
		// forever, since consumers never checkpoint. So checkpoints only
		// ride behind segments where the reader is already on record.
		if v%3 == 0 && gets[g] > 0 {
			seg = append(seg, trace.Event{Kind: trace.EvCheckpoint, App: soakProd(g)})
		}
		if v == restartAfter[g] {
			seg = append(seg, trace.Event{Kind: trace.EvRestart, App: soakProd(g)})
		}
		segments = append(segments, seg)
	}

	// Fault schedule on the segment clock. Fail-stops are capped by the
	// spare pool; excess draws soften to blackouts.
	byOp := map[int][]trace.Event{}
	if o.Faults > 0 {
		kinds := []failure.Kind{failure.ServerFailStop, failure.ServerCrash}
		if o.Tier {
			// Permanent fail-stops don't compose with private cold
			// tiers: a spare promotes with a fresh tier, so versions the
			// dead server had spilled (and nobody had logged a read for)
			// are unrecoverable — the same reason the nemesis tier runs
			// use storage faults and blackouts only. Tier'd soaks keep
			// servers alive and torture the storage instead.
			kinds = []failure.Kind{failure.ServerCrash,
				failure.PFSTornWrite, failure.PFSPartialWrite, failure.PFSENOSPC, failure.PFSSlowIO}
		}
		if o.Overload {
			kinds = append(kinds, failure.TenantOverload)
		}
		sched, err := failure.Churn(o.Seed+1, o.Faults, len(segments), o.Servers, 40*time.Millisecond, kinds...)
		if err != nil {
			return h, nil, err
		}
		failStops := 0
		for _, inj := range sched {
			ev, ok := churnEvent(inj, &failStops, o.Spares)
			if ok {
				byOp[inj.AtOp] = append(byOp[inj.AtOp], ev)
			}
		}
	}

	var events []trace.Event
	emit := func(e trace.Event) {
		e.LC = uint64(len(events))
		events = append(events, e)
	}
	var digest uint64
	for i, seg := range segments {
		for _, f := range byOp[i] {
			emit(f)
		}
		for _, e := range seg {
			if e.Kind == trace.EvGet {
				digest = foldDigest(digest, e.Sum)
			}
			emit(e)
		}
	}
	// Final sweep: every version of every group must still read back
	// byte-exactly through whatever recovered/spilled/shed state the
	// churn left behind. Unlogged gets — the sweep is an audit, not a
	// workload participant, so it must not grow any replay queue.
	for g := 0; g < o.Groups; g++ {
		for v := 1; v <= o.Steps; v++ {
			e := trace.Event{Kind: trace.EvGet, App: soakSweep(), Name: soakField(g), Version: int64(v), Bytes: vol, Sum: sums[g][v]}
			digest = foldDigest(digest, e.Sum)
			emit(e)
		}
	}
	h.Digest = digest
	return h, events, nil
}

// BuildRegressionTrace builds one of the named crash-consistency
// scenarios persisted under testdata/: a clean seeded workload with
// faults inserted at hand-picked logical-clock positions so the trace
// exercises one specific recovery path. Unlike Churn-drawn soaks, the
// fault placement here is part of the scenario's identity — a fail-stop
// immediately before a restart IS kill-mid-replay.
func BuildRegressionTrace(kind string) (trace.Header, []trace.Event, error) {
	switch kind {
	case "kill-mid-replay":
		// Kill a server, then immediately restart a producer so its
		// wlog replay (and the suppression of its re-issued puts) rides
		// through the promotion of a warm spare.
		h, events, err := BuildSoakTrace(SoakOptions{Seed: 101, Label: "regression/" + kind})
		if err != nil {
			return h, nil, err
		}
		var anchors []int
		slot := int64(1)
		for i, e := range events {
			if e.Kind == trace.EvRestart {
				anchors = append(anchors, i)
			}
		}
		for i := len(anchors) - 1; i >= 0; i-- {
			events = insertEvent(events, anchors[i], trace.Event{Kind: trace.EvFailStop, Arg: slot})
			slot++
		}
		h.Flags |= trace.FlagFaults
		return h, renumber(events), nil

	case "tier-spill-enospc":
		// Degrade one cold tier with ENOSPC and tear a write on
		// another while spills are in flight; the sweep must still read
		// every version byte-exactly from RAM-degraded and twin-healed
		// tiers.
		h, events, err := BuildSoakTrace(SoakOptions{Seed: 202, Steps: 6, Tier: true, Label: "regression/" + kind})
		if err != nil {
			return h, nil, err
		}
		a1 := putAnchor(events, 3)
		a2 := putAnchor(events, 8)
		if a2 > a1 {
			events = insertEvent(events, a2, trace.Event{Kind: trace.EvTierFault, Arg: 2, Arg2: int64(failure.PFSTornWrite), Version: 7})
		}
		events = insertEvent(events, a1, trace.Event{Kind: trace.EvTierFault, Arg: 1, Arg2: int64(failure.PFSENOSPC), Version: -1})
		h.Flags |= trace.FlagFaults
		return h, renumber(events), nil

	case "overload-shed":
		// Flood bursts from a low-priority tenant against a tight
		// quota, plus a blackout mid-flood: admission must shed the
		// flood with typed errors and never disturb the workload
		// tenant's digest.
		h, events, err := BuildSoakTrace(SoakOptions{Seed: 303, Overload: true, Label: "regression/" + kind})
		if err != nil {
			return h, nil, err
		}
		a1 := putAnchor(events, 3)
		a2 := putAnchor(events, 6)
		a3 := putAnchor(events, 9)
		for _, ins := range []struct {
			at int
			ev trace.Event
		}{
			{a3, trace.Event{Kind: trace.EvFlood, Arg: 8}},
			{a2, trace.Event{Kind: trace.EvBlackout, Arg: 1, Arg2: 40}},
			{a1, trace.Event{Kind: trace.EvFlood, Arg: 6}},
		} {
			if ins.at >= 0 {
				events = insertEvent(events, ins.at, ins.ev)
			}
		}
		h.Flags |= trace.FlagFaults
		return h, renumber(events), nil

	default:
		return trace.Header{}, nil, fmt.Errorf("workflow: unknown regression trace %q", kind)
	}
}

// putAnchor returns the index of the EvLock opening the segment of the
// n-th put (1-based), i.e. the last between-segments position before
// it, or -1 if there are fewer puts.
func putAnchor(events []trace.Event, n int) int {
	seen := 0
	for i, e := range events {
		if e.Kind == trace.EvPut {
			seen++
			if seen == n {
				if i > 0 && events[i-1].Kind == trace.EvLock {
					return i - 1
				}
				return i
			}
		}
	}
	return -1
}

func insertEvent(events []trace.Event, i int, ev trace.Event) []trace.Event {
	events = append(events, trace.Event{})
	copy(events[i+1:], events[i:])
	events[i] = ev
	return events
}

// renumber restamps the logical clock 0..n-1 after insertions; the
// digest is untouched because fault events never carry get sums.
func renumber(events []trace.Event) []trace.Event {
	for i := range events {
		events[i].LC = uint64(i)
	}
	return events
}

// churnEvent converts one churn injection into its trace event,
// downgrading fail-stops beyond the spare budget into blackouts.
func churnEvent(inj failure.Injection, failStops *int, spares int) (trace.Event, bool) {
	switch inj.Kind {
	case failure.ServerFailStop:
		if *failStops >= spares {
			return trace.Event{Kind: trace.EvBlackout, Arg: int64(inj.Server), Arg2: 40}, true
		}
		*failStops++
		return trace.Event{Kind: trace.EvFailStop, Arg: int64(inj.Server)}, true
	case failure.ServerCrash:
		return trace.Event{Kind: trace.EvBlackout, Arg: int64(inj.Server), Arg2: int64(inj.Duration / time.Millisecond)}, true
	case failure.PFSTornWrite, failure.PFSPartialWrite, failure.PFSBitRot, failure.PFSENOSPC, failure.PFSSlowIO:
		return trace.Event{
			Kind: trace.EvTierFault, Arg: int64(inj.Server), Arg2: int64(inj.Kind),
			Version: int64(inj.Offset), Bytes: int64(inj.Duration / time.Millisecond),
		}, true
	case failure.TenantOverload:
		return trace.Event{Kind: trace.EvFlood, Arg: 3 + int64(inj.Duration/(10*time.Millisecond))}, true
	default:
		return trace.Event{}, false
	}
}

// RunSoak builds the seeded trace and executes it. The returned header
// and events are the artifact to persist when the run fails — they
// reproduce the failure deterministically.
func RunSoak(o SoakOptions) (trace.Header, []trace.Event, SoakResult, error) {
	h, events, err := BuildSoakTrace(o)
	if err != nil {
		return h, nil, SoakResult{}, err
	}
	res, err := ReplayTrace(h, events)
	return h, events, res, err
}

// ReplayTrace executes a soak trace against a freshly built staging
// group and verifies it: every checked get must return the recorded
// bytes, and when the header carries a digest the ordered fold of all
// checked gets must reproduce it. Running it twice on the same trace
// must yield identical results — that is the determinism contract the
// regression tests pin down.
func ReplayTrace(h trace.Header, events []trace.Event) (SoakResult, error) {
	x, err := newSoakExec(h)
	if err != nil {
		return SoakResult{}, err
	}
	defer x.close()
	if err := trace.NewReplayer(h, events).Run(x); err != nil {
		return x.result(), err
	}
	if err := x.finish(); err != nil {
		return x.result(), err
	}
	res := x.result()
	if h.Digest != 0 && res.Digest != h.Digest {
		return res, &trace.DivergenceError{
			LC: uint64(len(events)), Ev: trace.Event{Kind: trace.EvNote, Name: "final-digest"},
			Err: fmt.Errorf("workload digest %#x, recorded %#x", res.Digest, h.Digest),
		}
	}
	return res, nil
}

// soakExec drives a live staging group from trace events.
type soakExec struct {
	h       trace.Header
	global  domain.BBox
	tr      *transport.Chaos
	group   *staging.Group
	sup     *recovery.Supervisor
	clients map[string]*staging.Client

	tierMu       sync.Mutex
	tierBackends map[int]*pfs.Store

	// history tracks each producer's logged puts since its last
	// checkpoint: exactly the suffix workflow_restart replays, so a
	// restart event re-issues them and the servers must suppress every
	// one byte-exactly. covered is the highest version the producer's
	// last checkpoint folded in — restarts pass it to
	// WorkflowRestartFrom, because a promoted spare may have restored a
	// wlog replica that lags behind the checkpoint mark (the torn
	// workflow_check case), and only the coverage hint lets the server
	// place the replay window where the lost mark would have.
	history map[string][]trace.Event
	covered map[string]int64
	lastPut map[string]int64

	res      SoakResult
	stateSum uint64
}

func newSoakExec(h trace.Header) (*soakExec, error) {
	if h.Servers < 2 || h.DimX != 64 || h.DimY != 64 || h.DimZ != 1 {
		return nil, fmt.Errorf("workflow: trace header does not describe a soak environment: %+v", h)
	}
	x := &soakExec{
		h:            h,
		global:       soakGlobal(),
		clients:      map[string]*staging.Client{},
		tierBackends: map[int]*pfs.Store{},
		history:      map[string][]trace.Event{},
		covered:      map[string]int64{},
		lastPut:      map[string]int64{},
	}
	x.tr = transport.NewChaos(transport.NewInProc(), h.Seed)
	scfg := staging.Config{
		Global:       x.global,
		NServers:     h.Servers,
		Bits:         h.Bits,
		ElemSize:     h.ElemSize,
		WlogReplicas: h.Replicas,
	}
	if h.Flags&trace.FlagOverload != 0 {
		scfg.QoS = &qos.Config{
			Tenants: map[string]qos.Quota{"flood": {StagingBytes: 4096, Priority: 0}},
			Default: qos.Quota{Priority: 1},
		}
	}
	if h.Flags&trace.FlagTier != 0 {
		scfg.MemoryBudgetPerServer = h.MemBudget
		scfg.TierBackend = func(id int) tier.Backend {
			be := pfs.NewStore()
			x.tierMu.Lock()
			x.tierBackends[id] = be
			x.tierMu.Unlock()
			return be
		}
	}
	group, err := staging.StartGroup(x.tr, fmt.Sprintf("soak/%d", h.Seed), scfg)
	if err != nil {
		return nil, err
	}
	x.group = group
	for i := 0; i < h.Spares; i++ {
		if _, err := group.AddSpare(); err != nil {
			x.close()
			return nil, err
		}
	}
	// The death threshold must sit well above the longest recorded
	// blackout (Churn bounds them under 60ms, soak blackouts use
	// 20-60ms): declaring a blacked-out-but-alive server dead promotes
	// a spare, and when the blackout lifts the deposed server and any
	// client still bound to it share the same stale epoch — fencing
	// can't catch that pairing, so a put can be acked into deposed
	// state and silently lost. With these settings a dead verdict needs
	// ~140ms of continuous silence: transient blackouts ride, real
	// kills promote.
	det := health.NewDetector(x.tr, "soak/sup", health.Config{
		Period:       10 * time.Millisecond,
		Timeout:      30 * time.Millisecond,
		SuspectAfter: 4,
		DeadAfter:    12,
	})
	x.sup = recovery.New(x.tr, det, group.Membership(), group, recovery.Config{
		ID:       "soak/sup",
		LeaseTTL: 150 * time.Millisecond,
		OnPromote: func(slot int, addr string, epoch uint64) {
			group.Pool.SetMember(slot, addr, epoch)
		},
		OnSlotDown: func(slot int, down bool) {
			group.Pool.MarkSlotDown(slot, down)
		},
	})
	x.sup.Start()
	// Dial every workload client now, while all slots are up:
	// Group.NewClient connects to the full membership, so lazily
	// creating a client mid-churn would race the promotion window.
	apps := []string{soakSweep()}
	if h.Flags&trace.FlagOverload != 0 {
		apps = append(apps, soakFloodApp())
	}
	for g := 0; g < h.Groups; g++ {
		apps = append(apps, soakProd(g), soakCons(g))
	}
	for _, app := range apps {
		if _, err := x.client(app); err != nil {
			x.close()
			return nil, err
		}
	}
	return x, nil
}

func (x *soakExec) close() {
	for _, c := range x.clients {
		c.Close()
	}
	if x.sup != nil {
		x.sup.Close()
	}
	if x.group != nil {
		x.group.Close()
	}
}

func (x *soakExec) result() SoakResult {
	r := x.res
	r.StateSum = x.stateSum
	return r
}

// finish waits for any in-flight promotion to settle; the trace's own
// sweep already audited the data, so this is teardown hygiene, not a
// correctness step.
func (x *soakExec) finish() error {
	return x.sup.WaitIdle(20 * time.Second)
}

func (x *soakExec) client(app string) (*staging.Client, error) {
	if c, ok := x.clients[app]; ok {
		return c, nil
	}
	c, err := x.group.NewClient(app)
	if err != nil {
		return nil, err
	}
	x.clients[app] = c
	return c, nil
}

// errSoakTerminal marks executor errors retrying cannot fix — a
// divergence from the recorded run.
var errSoakTerminal = errors.New("workflow: soak divergence")

// retry runs fn until success or deadline; every transient staging
// error (degraded, stale epoch, mid-promotion dead slot, overload
// backoff) heals with time, exactly as workflow ranks experience it.
// Terminal errors (errSoakTerminal, wlog divergence) surface at once.
func (x *soakExec) retry(c *staging.Client, fn func() error) error {
	deadline := time.Now().Add(15 * time.Second)
	first := true
	for {
		err := fn()
		if err == nil {
			return nil
		}
		if errors.Is(err, errSoakTerminal) || errors.Is(err, wlog.ErrReplayDivergence) {
			return err
		}
		if first {
			x.res.Retries++
			first = false
		}
		if time.Now().After(deadline) {
			return err
		}
		if c != nil {
			c.Reconnect()
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// lockIdempotent reports whether a lock-op error is the signature of a
// lost-ack retry (the previous attempt already took effect): acquiring
// a write lock we already hold, or releasing one we no longer hold.
func lockIdempotent(err error) bool {
	if err == nil {
		return false
	}
	s := err.Error()
	return strings.Contains(s, "already holds write lock") || strings.Contains(s, "lock not held")
}

// Apply executes one trace event. It implements trace.Executor.
func (x *soakExec) Apply(ev trace.Event) error {
	switch ev.Kind {
	case trace.EvPut:
		c, err := x.client(ev.App)
		if err != nil {
			return err
		}
		data := soakPayload(ev.Seed, ev.Bytes)
		if err := x.retry(c, func() error {
			if ev.Logged {
				return c.PutWithLog(ev.Name, ev.Version, x.global, data)
			}
			return c.Put(ev.Name, ev.Version, x.global, data)
		}); err != nil {
			return err
		}
		x.res.Puts++
		if ev.Logged {
			x.history[ev.App] = append(x.history[ev.App], ev)
			if ev.Version > x.lastPut[ev.App] {
				x.lastPut[ev.App] = ev.Version
			}
		}
		return nil

	case trace.EvGet:
		c, err := x.client(ev.App)
		if err != nil {
			return err
		}
		var got []byte
		if err := x.retry(c, func() error {
			var gerr error
			if ev.Logged {
				got, _, gerr = c.GetWithLog(ev.Name, ev.Version, x.global)
			} else {
				got, _, gerr = c.Get(ev.Name, ev.Version, x.global)
			}
			return gerr
		}); err != nil {
			return err
		}
		sum := payloadSum(got)
		if ev.Sum != 0 && sum != ev.Sum {
			return fmt.Errorf("%w: get %s v%d returned sum %#x, recorded %#x (%d bytes)",
				errSoakTerminal, ev.Name, ev.Version, sum, ev.Sum, len(got))
		}
		x.res.Gets++
		x.res.Digest = foldDigest(x.res.Digest, sum)
		if ev.App == soakSweep() {
			x.stateSum = foldDigest(x.stateSum, sum)
		}
		return nil

	case trace.EvCheckpoint:
		c, err := x.client(ev.App)
		if err != nil {
			return err
		}
		if err := x.retry(c, func() error {
			_, cerr := c.WorkflowCheck()
			return cerr
		}); err != nil {
			return err
		}
		x.history[ev.App] = nil
		x.covered[ev.App] = x.lastPut[ev.App]
		return nil

	case trace.EvRestart:
		return x.applyRestart(ev)

	case trace.EvLock, trace.EvUnlock, trace.EvRLock, trace.EvRUnlock:
		c, err := x.client(ev.App)
		if err != nil {
			return err
		}
		return x.retry(c, func() error {
			var lerr error
			switch ev.Kind {
			case trace.EvLock:
				lerr = c.LockOnWrite(ev.Name)
			case trace.EvUnlock:
				lerr = c.UnlockOnWrite(ev.Name)
			case trace.EvRLock:
				lerr = c.LockOnRead(ev.Name)
			default:
				lerr = c.UnlockOnRead(ev.Name)
			}
			if lockIdempotent(lerr) {
				return nil
			}
			return lerr
		})

	case trace.EvFailStop:
		// A kill is a schedule barrier: the promotion must settle
		// before the workload proceeds. Two kills inside one promotion
		// window exceed the wlog redundancy and lose logged payloads
		// legitimately (the soak asserts recovery, not
		// correlated-failure data loss), and a put racing the tail of a
		// replica install can be clobbered by the restored snapshot.
		// The kill itself still tears live state — held client
		// bindings, wlog replica placement, the restart that follows in
		// the kill-mid-replay schedule — and every later operation runs
		// against the promoted membership.
		if err := x.sup.WaitIdle(20 * time.Second); err != nil {
			return err
		}
		if err := x.group.FailStop(int(ev.Arg)); err != nil {
			return err
		}
		x.res.FailStops++
		return x.sup.WaitIdle(20 * time.Second)

	case trace.EvBlackout:
		addrs := x.group.Addrs()
		slot := int(ev.Arg)
		if slot < 0 || slot >= len(addrs) {
			return fmt.Errorf("%w: blackout slot %d of %d", errSoakTerminal, slot, len(addrs))
		}
		x.tr.Blackout(addrs[slot], time.Duration(ev.Arg2)*time.Millisecond)
		x.res.Blackouts++
		return nil

	case trace.EvTierFault:
		x.applyTierFault(ev)
		return nil

	case trace.EvFlood:
		return x.applyFlood(ev)

	case trace.EvNote:
		return nil

	default:
		return fmt.Errorf("%w: unknown event kind %v", errSoakTerminal, ev.Kind)
	}
}

// applyRestart re-runs the paper's recovery protocol for one producer:
// workflow_restart flips its queue into replay mode at the last
// checkpoint, and the producer re-issues every logged put since — the
// servers must suppress each one byte-exactly. A wlog divergence here
// is the torn-recovery failure the whole design exists to prevent, and
// it surfaces as a replay divergence at this event's logical clock.
func (x *soakExec) applyRestart(ev trace.Event) error {
	c, err := x.client(ev.App)
	if err != nil {
		return err
	}
	var replayed int
	if err := x.retry(c, func() error {
		n, rerr := c.WorkflowRestartFrom(x.covered[ev.App])
		if rerr != nil {
			return rerr
		}
		replayed = n
		return nil
	}); err != nil {
		return err
	}
	x.res.Restarts++
	x.res.Replayed += replayed
	for _, p := range x.history[ev.App] {
		data := soakPayload(p.Seed, p.Bytes)
		if err := x.retry(c, func() error {
			return c.PutWithLog(p.Name, p.Version, x.global, data)
		}); err != nil {
			return err
		}
	}
	return nil
}

// applyTierFault arms one storage fault against a server's cold-tier
// backend. Arming is best-effort by design: if the target server died
// earlier in the schedule its backend is orphaned and the fault has no
// one to bite — deterministically so, since the schedule is fixed.
func (x *soakExec) applyTierFault(ev trace.Event) {
	x.tierMu.Lock()
	be := x.tierBackends[int(ev.Arg)]
	x.tierMu.Unlock()
	if be == nil {
		return
	}
	off := int(ev.Version)
	switch failure.Kind(ev.Arg2) {
	case failure.PFSTornWrite:
		be.FailNextWriteAt(pfs.FaultTruncate, off)
	case failure.PFSPartialWrite:
		be.FailNextWriteAt(pfs.FaultPartial, off)
	case failure.PFSENOSPC:
		be.FailNextWriteAt(pfs.FaultENOSPC, -1)
	case failure.PFSBitRot:
		var g0 []string
		for _, name := range be.List("tier/") {
			if strings.HasSuffix(name, "/g0") {
				g0 = append(g0, name)
			}
		}
		if len(g0) == 0 {
			return
		}
		if off < 0 {
			off = 0
		}
		be.Corrupt(g0[off%len(g0)], off)
	case failure.PFSSlowIO:
		be.SetSlowIO(200 * time.Microsecond)
		time.AfterFunc(time.Duration(ev.Bytes)*time.Millisecond, func() { be.SetSlowIO(0) })
	}
	x.res.TierFaults++
}

// applyFlood issues one burst of low-priority flood-tenant puts. The
// admission layer sheds them at quota; typed overload rejections are
// the expected outcome, anything else transient is retried. Flood data
// never enters the digest — whether an individual flood put landed or
// shed may depend on promotion timing, so the determinism contract
// covers the workload tenant only.
func (x *soakExec) applyFlood(ev trace.Event) error {
	c, err := x.client(soakFloodApp())
	if err != nil {
		return err
	}
	for i := int64(0); i < ev.Arg; i++ {
		name := fmt.Sprintf("flood/f%d_%d", ev.LC, i)
		data := soakPayload(int64(ev.LC)+i, x.global.Volume())
		x.res.FloodPuts++
		err := x.retry(c, func() error {
			perr := c.Put(name, 1, x.global, data)
			if _, ok := qos.FromError(perr); ok {
				x.res.FloodSheds++
				return nil
			}
			return perr
		})
		if err != nil {
			return err
		}
	}
	return nil
}

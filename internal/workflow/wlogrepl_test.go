package workflow

import (
	"testing"

	"gospaces/internal/ckpt"
)

// These tests are the tentpole's end-to-end acceptance runs: with log
// replication on, a staging server fail-stops permanently under the
// logged (uncoordinated / hybrid) schemes — previously only the
// coordinated global rollback could survive that. The supervisor
// promotes a spare, restores the dead slot's event log and payloads
// from the freshest replica, and workflow_restart replays byte-exactly.

func TestUncoordinatedServerFailStopWithLogReplication(t *testing.T) {
	opts := baseOpts(ckpt.Uncoordinated)
	opts.Steps = 12
	opts.NServers = 4
	opts.WlogReplicas = 1
	opts.ServerFailures = []ServerFailAt{{Server: 1, TS: 6}}
	res := mustRun(t, opts)
	if res.CorruptReads != 0 {
		t.Fatalf("corrupt reads %d after server fail-stop", res.CorruptReads)
	}
	if res.ServerRecoveries != 1 {
		t.Fatalf("server recoveries = %d, want 1", res.ServerRecoveries)
	}
	if res.FinalEpoch != 2 {
		t.Fatalf("final epoch = %d, want 2", res.FinalEpoch)
	}
	if res.Recoveries == 0 {
		t.Fatal("no component rollback despite a dead staging server")
	}
	if res.ReplayedEvents == 0 {
		t.Fatal("no events replayed through the restored log")
	}
	if res.Staging.ReplSeq == 0 || res.Staging.ReplicaRecords == 0 {
		t.Fatalf("no replication activity in staging stats: %+v", res.Staging)
	}
	expectReads(t, res, opts)
}

// TestHybridServerFailStopWithLogReplication: the replicated consumer
// must ride out the staging outage without consuming a process replica
// (degraded staging is not a process failure), while the C/R producer
// rolls back and replays through the restored log.
func TestHybridServerFailStopWithLogReplication(t *testing.T) {
	opts := baseOpts(ckpt.Hybrid)
	opts.Steps = 12
	opts.NServers = 4
	opts.WlogReplicas = 1
	opts.ServerFailures = []ServerFailAt{{Server: 2, TS: 6}}
	res := mustRun(t, opts)
	if res.CorruptReads != 0 {
		t.Fatalf("corrupt reads %d after server fail-stop", res.CorruptReads)
	}
	if res.ServerRecoveries != 1 {
		t.Fatalf("server recoveries = %d, want 1", res.ServerRecoveries)
	}
	expectReads(t, res, opts)
}

// TestUncoordinatedDoubleServerFailStop promotes twice: the second
// restore draws on replicas that include the first promoted spare.
func TestUncoordinatedDoubleServerFailStop(t *testing.T) {
	opts := baseOpts(ckpt.Uncoordinated)
	opts.Steps = 12
	opts.NServers = 4
	opts.WlogReplicas = 2
	opts.ServerFailures = []ServerFailAt{{Server: 1, TS: 4}, {Server: 3, TS: 8}}
	res := mustRun(t, opts)
	if res.CorruptReads != 0 {
		t.Fatalf("corrupt reads %d after double server fail-stop", res.CorruptReads)
	}
	if res.ServerRecoveries != 2 {
		t.Fatalf("server recoveries = %d, want 2", res.ServerRecoveries)
	}
	if res.FinalEpoch != 3 {
		t.Fatalf("final epoch = %d, want 3", res.FinalEpoch)
	}
	expectReads(t, res, opts)
}

// TestServerFailStopNeedsReplicationOrCoordination: the validation
// gate — a logged scheme may only schedule server fail-stops when log
// replication is on.
func TestServerFailStopNeedsReplicationOrCoordination(t *testing.T) {
	opts := baseOpts(ckpt.Hybrid)
	opts.ServerFailures = []ServerFailAt{{Server: 0, TS: 2}}
	if _, err := Run(opts); err == nil {
		t.Fatal("logged scheme with server fail-stops accepted without WlogReplicas")
	}
	opts.WlogReplicas = 1
	opts.Steps = 6
	res := mustRun(t, opts)
	if res.CorruptReads != 0 || res.ServerRecoveries != 1 {
		t.Fatalf("result %+v", res)
	}
}

package workflow

import (
	"errors"
	"sync"
)

// ErrAborted is returned from coupler waits when the waiting rank's
// recovery domain is being torn down for rollback.
var ErrAborted = errors.New("workflow: wait aborted by failure recovery")

// Coupler sequences the coupling cycle between producer and consumer
// components: consumers wait until every producer rank has staged a
// timestep, and producers are throttled until every consumer rank has
// read the previous one — the paper's "write immediately followed by
// read" access pattern. On real systems this role is played by
// DataSpaces read/write locks.
//
// Marks are counted, idempotent under replay (re-marking an open latch
// is a no-op), and resettable for coordinated global rollback.
type Coupler struct {
	mu       sync.Mutex
	cond     *sync.Cond
	needProd int
	needCons int
	produced map[int64]map[int]struct{}
	consumed map[int64]map[int]struct{}
}

// NewCoupler creates a coupler for the given producer and consumer rank
// counts.
func NewCoupler(producerRanks, consumerRanks int) *Coupler {
	c := &Coupler{
		needProd: producerRanks,
		needCons: consumerRanks,
		produced: make(map[int64]map[int]struct{}),
		consumed: make(map[int64]map[int]struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// MarkProduced records that producer rank staged timestep ts. Marks
// are per-rank idempotent, so replayed re-marks do not open a latch
// that another recovering rank has not satisfied yet.
func (c *Coupler) MarkProduced(ts int64, rank int) {
	c.mark(c.produced, ts, rank)
}

// MarkConsumed records that consumer rank finished reading ts.
func (c *Coupler) MarkConsumed(ts int64, rank int) {
	c.mark(c.consumed, ts, rank)
}

func (c *Coupler) mark(m map[int64]map[int]struct{}, ts int64, rank int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	set, ok := m[ts]
	if !ok {
		set = make(map[int]struct{})
		m[ts] = set
	}
	set[rank] = struct{}{}
	c.cond.Broadcast()
}

// WaitProduced blocks until all producer ranks have staged ts, or until
// abort is closed.
func (c *Coupler) WaitProduced(ts int64, abort <-chan struct{}) error {
	return c.wait(c.produced, ts, c.needProd, abort)
}

// WaitConsumed blocks until all consumer ranks have read ts, or until
// abort is closed. Waiting for ts <= 0 returns immediately.
func (c *Coupler) WaitConsumed(ts int64, abort <-chan struct{}) error {
	if ts <= 0 {
		return nil
	}
	return c.wait(c.consumed, ts, c.needCons, abort)
}

func (c *Coupler) wait(m map[int64]map[int]struct{}, ts int64, need int, abort <-chan struct{}) error {
	aborted := func() bool {
		select {
		case <-abort:
			return true
		default:
			return false
		}
	}
	// Wake all waiters when abort fires so they can observe it.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-abort:
			c.mu.Lock()
			c.cond.Broadcast()
			c.mu.Unlock()
		case <-stop:
		}
	}()
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(m[ts]) < need {
		if aborted() {
			return ErrAborted
		}
		c.cond.Wait()
	}
	return nil
}

// Reset clears all marks strictly after ts, for coordinated global
// rollback: the whole workflow re-executes from ts, so the coupling
// cycle must re-arm.
func (c *Coupler) Reset(ts int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.produced {
		if k > ts {
			delete(c.produced, k)
		}
	}
	for k := range c.consumed {
		if k > ts {
			delete(c.consumed, k)
		}
	}
	c.cond.Broadcast()
}

// Package qos is the multi-tenant admission-control layer of the
// staging service. It makes overload a first-class, gracefully-degraded
// fault instead of a crash: every object name carries a tenant prefix,
// each tenant has quotas on staging memory and logged (wlog-protected)
// bytes, and a put that cannot be admitted is rejected with a typed
// ErrOverloaded carrying a server-computed retry-after hint — never by
// growing staging RAM without bound.
//
// Three cooperating pieces live here:
//
//   - TenantOf / Quota / Config: the tenant namespace over object names
//     and the per-tenant resource policy.
//   - Controller: per-tenant byte accounting plus the admit/shed
//     decision. Under sustained global pressure it sheds the
//     lowest-priority tenants first, and computes RetryAfter from the
//     live decision signals (quota overshoot, lane queue depth, wlog
//     replication lag).
//   - Scheduler (sched.go): the weighted two-lane concurrency gate that
//     keeps recovery/re-protection traffic and foreground traffic from
//     starving each other at the server's frame-dispatch level.
//
// The package deliberately has no transport dependency: ErrOverloaded
// renders to (and parses back from) a canonical string, so the typed
// rejection survives the TCP wire where handler errors travel as
// messages.
package qos

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"gospaces/internal/metrics"
)

// DefaultTenant is the namespace of object names without a tenant
// prefix (no "/" in the name).
const DefaultTenant = "default"

// TenantOf maps an object or shard-key name to its tenant namespace:
// the prefix before the first "/", or DefaultTenant when there is none.
// "hi/temperature" belongs to tenant "hi"; "temperature" to "default".
func TenantOf(name string) string {
	if i := strings.IndexByte(name, '/'); i > 0 {
		return name[:i]
	}
	return DefaultTenant
}

// Resource names the quota dimension an overload rejection is about.
const (
	// ResourceStaging is the per-tenant resident staging-memory quota.
	ResourceStaging = "staging_bytes"
	// ResourceWlog is the per-tenant logged (wlog-protected) byte quota.
	ResourceWlog = "wlog_bytes"
	// ResourceGlobal is the server-wide staging-RAM ceiling; rejections
	// against it are priority-ordered load shedding.
	ResourceGlobal = "staging_ram"
)

// Quota is one tenant's resource policy.
type Quota struct {
	// StagingBytes caps the tenant's resident staging payload bytes on
	// one server (0 = unlimited).
	StagingBytes int64
	// WlogBytes caps the tenant's resident logged payload bytes (the
	// bytes the event log must retain for replay) on one server
	// (0 = unlimited).
	WlogBytes int64
	// Priority orders tenants for load shedding under global pressure:
	// higher-priority tenants are shed last. 0 is the lowest priority.
	Priority int
}

// Config is the admission-control policy of one staging server.
type Config struct {
	// Tenants maps tenant names to their quotas; tenants not listed get
	// Default.
	Tenants map[string]Quota
	// Default is the quota applied to unlisted tenants.
	Default Quota
	// HighWater is the fraction of the server's global memory budget at
	// which priority-ordered shedding begins (default 0.7): at HighWater
	// the lowest-priority tenant is shed, and the shed threshold rises
	// linearly with priority until the full budget, which nobody may
	// exceed. Recovery and wlog-replication traffic is never shed.
	HighWater float64
	// SpillWater is the fraction of the budget at which the staging
	// server starts demoting cold versions to its PFS tier, when one is
	// enabled. It defaults to 85% of HighWater so spill runs strictly
	// before the shed rule fires: reclaimable-by-demotion bytes never
	// cause a rejection, mirroring the GC-before-shed policy.
	SpillWater float64
	// RetryAfterBase scales the server-computed retry-after hint
	// (default 25ms); RetryAfterMax caps it (default 2s).
	RetryAfterBase time.Duration
	RetryAfterMax  time.Duration
	// MaxConcurrent bounds the requests the lane scheduler lets run at
	// once (default 16). Control-plane traffic bypasses the gate.
	MaxConcurrent int
	// ForegroundWeight and RecoveryWeight set the lane service ratio
	// under contention (defaults 3 and 1): of every 4 contended grants,
	// 3 go to foreground puts/gets and 1 to recovery/re-protection, so
	// CoREC rebuilds neither starve nor are starved by foreground load.
	ForegroundWeight int
	RecoveryWeight   int
}

func (c Config) withDefaults() Config {
	if c.HighWater <= 0 || c.HighWater >= 1 {
		c.HighWater = 0.7
	}
	if c.SpillWater <= 0 || c.SpillWater >= 1 {
		c.SpillWater = 0.85 * c.HighWater
	}
	if c.RetryAfterBase <= 0 {
		c.RetryAfterBase = 25 * time.Millisecond
	}
	if c.RetryAfterMax < c.RetryAfterBase {
		c.RetryAfterMax = 2 * time.Second
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 16
	}
	if c.ForegroundWeight <= 0 {
		c.ForegroundWeight = 3
	}
	if c.RecoveryWeight <= 0 {
		c.RecoveryWeight = 1
	}
	return c
}

// quotaFor returns the effective quota of tenant.
func (c Config) quotaFor(tenant string) Quota {
	if q, ok := c.Tenants[tenant]; ok {
		return q
	}
	return c.Default
}

// maxPriority is the highest priority any tenant can hold under this
// config (shedding thresholds are normalized against it).
func (c Config) maxPriority() int {
	max := c.Default.Priority
	for _, q := range c.Tenants {
		if q.Priority > max {
			max = q.Priority
		}
	}
	return max
}

// ---------------------------------------------------------------------
// Typed backpressure.

// overloadedPrefix is the canonical rendering marker ErrOverloaded
// round-trips through string-typed transports on.
const overloadedPrefix = "qos: overloaded"

// ErrOverloaded is the typed admission rejection: the server refused
// the request because tenant Tenant is out of Resource, and the client
// should retry no sooner than RetryAfter. The retry layer
// (internal/transport.Retrying) honors the hint — with jitter, charged
// against the retry budget — instead of blind exponential backoff.
type ErrOverloaded struct {
	Tenant     string
	Resource   string
	RetryAfter time.Duration
}

// Error renders the canonical, parseable form; ParseOverloaded is its
// inverse, so the rejection stays typed across transports that carry
// handler errors as strings.
func (e *ErrOverloaded) Error() string {
	return fmt.Sprintf("%s: tenant=%s resource=%s retry_after=%s",
		overloadedPrefix, e.Tenant, e.Resource, e.RetryAfter)
}

// ParseOverloaded recovers an ErrOverloaded from an error message that
// contains its canonical rendering (possibly wrapped by transport and
// staging error prefixes). ok is false when the message carries none.
func ParseOverloaded(msg string) (*ErrOverloaded, bool) {
	i := strings.Index(msg, overloadedPrefix+": ")
	if i < 0 {
		return nil, false
	}
	rest := msg[i+len(overloadedPrefix)+2:]
	// The rendering is the tail of the message (errors wrap by
	// prefixing), but guard against trailing wrapping anyway.
	if j := strings.IndexByte(rest, '\n'); j >= 0 {
		rest = rest[:j]
	}
	e := &ErrOverloaded{}
	for _, f := range strings.Fields(rest) {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			continue
		}
		switch k {
		case "tenant":
			e.Tenant = v
		case "resource":
			e.Resource = v
		case "retry_after":
			if d, err := time.ParseDuration(v); err == nil {
				e.RetryAfter = d
			}
		}
	}
	if e.Resource == "" {
		return nil, false
	}
	return e, true
}

// FromError extracts a typed overload rejection from err: directly for
// in-process transports (errors.As), or by parsing the canonical
// rendering out of the message for transports that ship handler errors
// as strings. ok is false for every other error.
func FromError(err error) (*ErrOverloaded, bool) {
	if err == nil {
		return nil, false
	}
	var e *ErrOverloaded
	if errors.As(err, &e) {
		return e, true
	}
	return ParseOverloaded(err.Error())
}

// ---------------------------------------------------------------------
// Admission controller.

// Signals are the live decision inputs the controller folds into its
// retry-after hints: the lane scheduler's queue depth and the wlog
// replication backlog (records emitted but not yet shipped).
type Signals struct {
	QueueDepth int
	ReplLag    int64
}

// tenantUsage is one tenant's accounting on one server.
type tenantUsage struct {
	storeBytes int64
	wlogBytes  int64
	admits     int64
	sheds      int64
}

// TenantStat is one tenant's exported accounting row.
type TenantStat struct {
	Tenant       string
	StoreBytes   int64
	WlogBytes    int64
	StagingQuota int64
	WlogQuota    int64
	Priority     int
	Admits       int64
	Sheds        int64
}

// UsageItem is one resident object's contribution when rebasing the
// per-tenant accounting from a restored or garbage-collected store.
type UsageItem struct {
	Name   string
	Bytes  int64
	Logged bool
}

// Controller holds one server's per-tenant accounting and makes the
// admit/shed decision. It is safe for concurrent use.
type Controller struct {
	cfg    Config
	maxPri int
	reg    *metrics.Registry

	mu      sync.Mutex
	tenants map[string]*tenantUsage
}

// NewController builds a controller for cfg, reporting aggregate
// qos.admits / qos.sheds counters into reg (nil allocates a private
// registry).
func NewController(cfg Config, reg *metrics.Registry) *Controller {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	cfg = cfg.withDefaults()
	return &Controller{
		cfg:     cfg,
		maxPri:  cfg.maxPriority(),
		reg:     reg,
		tenants: make(map[string]*tenantUsage),
	}
}

// Config returns the effective (defaulted) policy.
func (c *Controller) Config() Config { return c.cfg }

func (c *Controller) usage(tenant string) *tenantUsage {
	u, ok := c.tenants[tenant]
	if !ok {
		u = &tenantUsage{}
		c.tenants[tenant] = u
	}
	return u
}

// retryAfter turns overshoot pressure and the live signals into the
// server-directed backoff hint. The hint grows linearly with relative
// overshoot, queue depth, and replication lag, and is capped at
// RetryAfterMax — a client cannot be told to stall forever, and the
// retry layer charges the wait against its budget anyway.
func (c *Controller) retryAfter(overshoot float64, sig Signals) time.Duration {
	if overshoot < 1 {
		overshoot = 1
	}
	load := 1.0 + float64(sig.QueueDepth)/float64(c.cfg.MaxConcurrent)
	if sig.ReplLag > 0 {
		load += float64(sig.ReplLag) / 64
	}
	// Compare in float space: extreme overshoot would overflow the
	// Duration conversion into a negative value.
	df := float64(c.cfg.RetryAfterBase) * overshoot * load
	if df > float64(c.cfg.RetryAfterMax) {
		df = float64(c.cfg.RetryAfterMax)
	}
	d := time.Duration(df)
	if d < c.cfg.RetryAfterBase {
		d = c.cfg.RetryAfterBase
	}
	return d
}

// AdmitPut decides whether a foreground put of incoming bytes for name
// may be admitted. logged marks crash-consistent puts, which also
// charge the tenant's wlog quota. globalUsed/globalBudget describe the
// server-wide staging-RAM ceiling (budget 0 = unlimited; the global
// check is then skipped). A nil return admits; otherwise the caller
// must reject with the returned ErrOverloaded and MUST NOT mutate
// state. Admission order:
//
//  1. per-tenant staging quota (hard),
//  2. per-tenant wlog quota for logged puts (hard),
//  3. the global ceiling, shed in priority order: at HighWater of the
//     budget the lowest-priority tenant sheds first, the threshold
//     rising linearly with priority to the full budget, which nobody
//     may exceed.
func (c *Controller) AdmitPut(name string, incoming int64, logged bool, globalUsed, globalBudget int64, sig Signals) *ErrOverloaded {
	tenant := TenantOf(name)
	q := c.cfg.quotaFor(tenant)
	c.mu.Lock()
	u := c.usage(tenant)
	if q.StagingBytes > 0 && u.storeBytes+incoming > q.StagingBytes {
		over := float64(u.storeBytes+incoming) / float64(q.StagingBytes)
		u.sheds++
		c.mu.Unlock()
		c.reg.Counter("qos.sheds").Inc()
		return &ErrOverloaded{Tenant: tenant, Resource: ResourceStaging, RetryAfter: c.retryAfter(over, sig)}
	}
	if logged && q.WlogBytes > 0 && u.wlogBytes+incoming > q.WlogBytes {
		over := float64(u.wlogBytes+incoming) / float64(q.WlogBytes)
		u.sheds++
		c.mu.Unlock()
		c.reg.Counter("qos.sheds").Inc()
		return &ErrOverloaded{Tenant: tenant, Resource: ResourceWlog, RetryAfter: c.retryAfter(over, sig)}
	}
	if over, shed := c.shedGlobal(q, incoming, globalUsed, globalBudget); shed {
		u.sheds++
		c.mu.Unlock()
		c.reg.Counter("qos.sheds").Inc()
		return &ErrOverloaded{Tenant: tenant, Resource: ResourceGlobal, RetryAfter: c.retryAfter(over, sig)}
	}
	u.admits++
	c.mu.Unlock()
	c.reg.Counter("qos.admits").Inc()
	return nil
}

// shedGlobal applies the priority-ordered global shed rule: the shed
// threshold is HighWater of the budget for priority 0, rising linearly
// to the full budget (the hard ceiling) for the highest configured
// priority. Returns the overshoot ratio and whether to shed.
func (c *Controller) shedGlobal(q Quota, incoming, globalUsed, globalBudget int64) (float64, bool) {
	if globalBudget <= 0 {
		return 0, false
	}
	f := float64(globalUsed+incoming) / float64(globalBudget)
	rank := 1.0
	if c.maxPri > 0 {
		rank = float64(q.Priority) / float64(c.maxPri)
	}
	threshold := c.cfg.HighWater + (1-c.cfg.HighWater)*rank
	if f > threshold {
		return f / threshold, true
	}
	return 0, false
}

// AdmitShard decides whether an erasure-coded shard put of incoming
// bytes for key may be admitted. Shard bytes count against the global
// staging-RAM ceiling only, shed in the same priority order as puts;
// they do not charge per-tenant quotas (checkpoint shards are transient
// protection data, not staged objects). Rebuild re-protection traffic
// must not reach here — the caller bypasses admission for it entirely.
func (c *Controller) AdmitShard(key string, incoming, globalUsed, globalBudget int64, sig Signals) *ErrOverloaded {
	tenant := TenantOf(key)
	q := c.cfg.quotaFor(tenant)
	c.mu.Lock()
	u := c.usage(tenant)
	if over, shed := c.shedGlobal(q, incoming, globalUsed, globalBudget); shed {
		u.sheds++
		c.mu.Unlock()
		c.reg.Counter("qos.sheds").Inc()
		return &ErrOverloaded{Tenant: tenant, Resource: ResourceGlobal, RetryAfter: c.retryAfter(over, sig)}
	}
	u.admits++
	c.mu.Unlock()
	c.reg.Counter("qos.admits").Inc()
	return nil
}

// Charge adjusts tenant accounting after a store mutation attributed to
// name: storeDelta moves the resident staging bytes, wlogDelta the
// logged (replay-protected) bytes. Negative deltas free.
func (c *Controller) Charge(name string, storeDelta, wlogDelta int64) {
	tenant := TenantOf(name)
	c.mu.Lock()
	u := c.usage(tenant)
	u.storeBytes += storeDelta
	u.wlogBytes += wlogDelta
	if u.storeBytes < 0 {
		u.storeBytes = 0
	}
	if u.wlogBytes < 0 {
		u.wlogBytes = 0
	}
	c.mu.Unlock()
}

// Rebase replaces the per-tenant byte accounting with the ground truth
// of a resident-object walk — after garbage collection (which frees in
// bulk) and after a promoted spare restores a dead server's state from
// the replicated wlog (the inherited accounting that prevents a
// post-recovery admission stampede). Admit/shed counters are kept.
func (c *Controller) Rebase(items []UsageItem) {
	fresh := make(map[string]*tenantUsage, len(c.tenants))
	for _, it := range items {
		t := TenantOf(it.Name)
		u, ok := fresh[t]
		if !ok {
			u = &tenantUsage{}
			fresh[t] = u
		}
		u.storeBytes += it.Bytes
		if it.Logged {
			u.wlogBytes += it.Bytes
		}
	}
	c.mu.Lock()
	for t, old := range c.tenants {
		u, ok := fresh[t]
		if !ok {
			u = &tenantUsage{}
			fresh[t] = u
		}
		u.admits = old.admits
		u.sheds = old.sheds
	}
	c.tenants = fresh
	c.mu.Unlock()
}

// Snapshot exports every tenant's accounting, sorted by tenant name.
func (c *Controller) Snapshot() []TenantStat {
	c.mu.Lock()
	out := make([]TenantStat, 0, len(c.tenants))
	for t, u := range c.tenants {
		q := c.cfg.quotaFor(t)
		out = append(out, TenantStat{
			Tenant:       t,
			StoreBytes:   u.storeBytes,
			WlogBytes:    u.wlogBytes,
			StagingQuota: q.StagingBytes,
			WlogQuota:    q.WlogBytes,
			Priority:     q.Priority,
			Admits:       u.admits,
			Sheds:        u.sheds,
		})
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

package qos

import (
	"container/list"
	"errors"
	"sync"

	"gospaces/internal/metrics"
)

// Lane classifies a request for the weighted two-lane concurrency gate.
type Lane int

const (
	// LaneControl bypasses the gate entirely: health pings, leases,
	// membership, stats, and wlog replication must never queue behind
	// data traffic (and replication must never be shed — a gated
	// replication apply behind a gated put on the peer would deadlock
	// two mutually-replicating servers under symmetric overload).
	LaneControl Lane = iota
	// LaneForeground carries application puts/gets.
	LaneForeground
	// LaneRecovery carries re-protection traffic: CoREC rebuild shard
	// fetch/store, recovery scans, wlog install into promoted spares.
	LaneRecovery
)

func (l Lane) String() string {
	switch l {
	case LaneControl:
		return "control"
	case LaneForeground:
		return "foreground"
	case LaneRecovery:
		return "recovery"
	}
	return "unknown"
}

// ErrSchedClosed fails waiters when the scheduler shuts down.
var ErrSchedClosed = errors.New("qos: scheduler closed")

// Scheduler is the weighted two-lane concurrency gate at server
// dispatch: at most MaxConcurrent gated requests run at once, and when
// both lanes have waiters, grants alternate in the configured
// foreground:recovery weight ratio so neither CoREC rebuilds nor
// foreground traffic can starve the other. LaneControl bypasses the
// gate. Queue depths are exported as qos.queue.foreground /
// qos.queue.recovery gauges.
type Scheduler struct {
	reg *metrics.Registry

	mu      sync.Mutex
	closed  bool
	slots   int // free slots
	weights [2]int
	credit  [2]int // remaining grants in the current weight round
	queues  [2]*list.List
	depth   [2]*metrics.Gauge
}

// laneIdx maps gated lanes onto queue indices.
func laneIdx(l Lane) int {
	if l == LaneRecovery {
		return 1
	}
	return 0
}

// NewScheduler builds the gate from cfg (defaults applied), reporting
// into reg (nil allocates a private registry).
func NewScheduler(cfg Config, reg *metrics.Registry) *Scheduler {
	cfg = cfg.withDefaults()
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Scheduler{
		reg:     reg,
		slots:   cfg.MaxConcurrent,
		weights: [2]int{cfg.ForegroundWeight, cfg.RecoveryWeight},
		queues:  [2]*list.List{list.New(), list.New()},
	}
	s.credit = s.weights
	s.depth = [2]*metrics.Gauge{
		reg.Gauge("qos.queue.foreground"),
		reg.Gauge("qos.queue.recovery"),
	}
	return s
}

// QueueDepth reports the total number of queued (not yet granted)
// requests across both gated lanes — one of the controller's
// retry-after pressure signals.
func (s *Scheduler) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queues[0].Len() + s.queues[1].Len()
}

// Acquire blocks until the request may run (or the scheduler closes).
// LaneControl is admitted immediately without consuming a slot. The
// caller must pair every successful gated Acquire with Release.
func (s *Scheduler) Acquire(l Lane) error {
	if l == LaneControl {
		return nil
	}
	i := laneIdx(l)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrSchedClosed
	}
	if s.slots > 0 && s.queues[0].Len() == 0 && s.queues[1].Len() == 0 {
		s.slots--
		s.mu.Unlock()
		return nil
	}
	ch := make(chan struct{})
	el := s.queues[i].PushBack(ch)
	s.depth[i].Set(int64(s.queues[i].Len()))
	s.mu.Unlock()
	<-ch
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return ErrSchedClosed
	}
	_ = el
	return nil
}

// Release returns a gated slot and hands it to the next waiter, chosen
// by weighted round-robin across lanes with waiters: the current lane's
// credit is spent first; when a lane's credit or queue runs out the
// grant moves to the other lane; when both credits are spent the round
// resets. LaneControl releases are no-ops.
func (s *Scheduler) Release(l Lane) {
	if l == LaneControl {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.slots++
	s.grantLocked()
}

// grantLocked moves freed slots to waiters under the weight policy.
func (s *Scheduler) grantLocked() {
	for s.slots > 0 {
		i, ok := s.pickLocked()
		if !ok {
			return
		}
		el := s.queues[i].Front()
		s.queues[i].Remove(el)
		s.depth[i].Set(int64(s.queues[i].Len()))
		s.slots--
		s.credit[i]--
		close(el.Value.(chan struct{}))
	}
}

// pickLocked chooses the lane for the next grant: a lane with waiters
// and remaining round credit wins; if only one lane has waiters it wins
// regardless of credit (work conservation); when both lanes' credits
// are exhausted the round resets.
func (s *Scheduler) pickLocked() (int, bool) {
	w0, w1 := s.queues[0].Len() > 0, s.queues[1].Len() > 0
	switch {
	case !w0 && !w1:
		return 0, false
	case w0 && !w1:
		return 0, true
	case w1 && !w0:
		return 1, true
	}
	// Both lanes contend: honor the weight ratio.
	if s.credit[0] <= 0 && s.credit[1] <= 0 {
		s.credit = s.weights
	}
	if s.credit[0] >= s.credit[1] {
		if s.credit[0] > 0 {
			return 0, true
		}
		return 1, true
	}
	if s.credit[1] > 0 {
		return 1, true
	}
	return 0, true
}

// Close wakes every waiter with ErrSchedClosed and rejects future
// Acquires. Idempotent.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for i := range s.queues {
		for el := s.queues[i].Front(); el != nil; el = el.Next() {
			close(el.Value.(chan struct{}))
		}
		s.queues[i].Init()
		s.depth[i].Set(0)
	}
	s.mu.Unlock()
}

package qos

import (
	"fmt"
	"testing"
)

// BenchmarkAdmit measures the admission fast path: the per-put cost a
// loaded server pays before touching the store. It must stay cheap —
// admission control that slows down admitted traffic defeats itself.
func BenchmarkAdmit(b *testing.B) {
	c := NewController(Config{
		Tenants: map[string]Quota{
			"hi": {StagingBytes: 1 << 40, Priority: 2},
			"lo": {StagingBytes: 1 << 40, Priority: 0},
		},
	}, nil)
	names := make([]string, 64)
	for i := range names {
		names[i] = fmt.Sprintf("hi/var%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := names[i&63]
		if rej := c.AdmitPut(n, 4096, true, 1<<30, 1<<40, Signals{QueueDepth: 3}); rej != nil {
			b.Fatalf("unexpected rejection: %v", rej)
		}
		c.Charge(n, 4096, 4096)
		c.Charge(n, -4096, -4096)
	}
}

// BenchmarkSchedulerUncontended measures the gate's cost when slots are
// free — the common case every admitted request pays.
func BenchmarkSchedulerUncontended(b *testing.B) {
	s := NewScheduler(Config{MaxConcurrent: 16}, nil)
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Acquire(LaneForeground); err != nil {
			b.Fatal(err)
		}
		s.Release(LaneForeground)
	}
}

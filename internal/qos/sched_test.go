package qos

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSchedulerControlBypasses(t *testing.T) {
	s := NewScheduler(Config{MaxConcurrent: 1}, nil)
	defer s.Close()
	if err := s.Acquire(LaneForeground); err != nil {
		t.Fatal(err)
	}
	// Gate is full; control traffic must still pass immediately.
	done := make(chan struct{})
	go func() {
		if err := s.Acquire(LaneControl); err != nil {
			t.Error(err)
		}
		s.Release(LaneControl)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("control lane blocked behind a full gate")
	}
	s.Release(LaneForeground)
}

func TestSchedulerBlocksAtCapacityAndGrantsFIFO(t *testing.T) {
	s := NewScheduler(Config{MaxConcurrent: 2}, nil)
	defer s.Close()
	for i := 0; i < 2; i++ {
		if err := s.Acquire(LaneForeground); err != nil {
			t.Fatal(err)
		}
	}
	granted := make(chan int, 2)
	for i := 0; i < 2; i++ {
		i := i
		go func() {
			if err := s.Acquire(LaneForeground); err != nil {
				t.Error(err)
				return
			}
			granted <- i
		}()
	}
	select {
	case i := <-granted:
		t.Fatalf("acquire %d succeeded past capacity", i)
	case <-time.After(50 * time.Millisecond):
	}
	if d := s.QueueDepth(); d != 2 {
		t.Fatalf("queue depth = %d, want 2", d)
	}
	s.Release(LaneForeground)
	select {
	case <-granted:
	case <-time.After(2 * time.Second):
		t.Fatal("release did not wake a waiter")
	}
	s.Release(LaneForeground)
	select {
	case <-granted:
	case <-time.After(2 * time.Second):
		t.Fatal("second release did not wake the second waiter")
	}
}

// TestSchedulerWeightedFairness drives both lanes to saturation and
// checks the contended grant ratio tracks the configured 3:1 weights —
// recovery is neither starved by foreground pressure nor dominant.
func TestSchedulerWeightedFairness(t *testing.T) {
	s := NewScheduler(Config{MaxConcurrent: 1, ForegroundWeight: 3, RecoveryWeight: 1}, nil)
	defer s.Close()

	const perLane = 200
	var fg, rec atomic.Int64
	var order sync.Mutex
	var trace []int

	// Hold the only slot so every worker queues before grants begin.
	if err := s.Acquire(LaneForeground); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < perLane; i++ {
		for _, lane := range []Lane{LaneForeground, LaneRecovery} {
			lane := lane
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				if err := s.Acquire(lane); err != nil {
					t.Error(err)
					return
				}
				if lane == LaneForeground {
					fg.Add(1)
				} else {
					rec.Add(1)
				}
				order.Lock()
				trace = append(trace, laneIdx(lane))
				order.Unlock()
				s.Release(lane)
			}()
		}
	}
	close(start)
	// Let the workers enqueue, then open the gate.
	time.Sleep(100 * time.Millisecond)
	s.Release(LaneForeground)
	wg.Wait()

	if fg.Load() != perLane || rec.Load() != perLane {
		t.Fatalf("lost grants: fg=%d rec=%d", fg.Load(), rec.Load())
	}
	// While both lanes still had waiters (the first 2*min window), the
	// ratio must reflect the weights. Look at the first half of the
	// trace where contention is guaranteed.
	order.Lock()
	window := trace[:perLane]
	order.Unlock()
	var wFg, wRec int
	for _, l := range window {
		if l == 0 {
			wFg++
		} else {
			wRec++
		}
	}
	if wRec == 0 {
		t.Fatal("recovery lane starved under contention")
	}
	ratio := float64(wFg) / float64(wRec)
	if ratio < 1.5 || ratio > 6 {
		t.Fatalf("contended grant ratio %.2f (fg=%d rec=%d), want ~3", ratio, wFg, wRec)
	}
}

func TestSchedulerWorkConservingWhenOneLaneIdle(t *testing.T) {
	s := NewScheduler(Config{MaxConcurrent: 1, ForegroundWeight: 3, RecoveryWeight: 1}, nil)
	defer s.Close()
	if err := s.Acquire(LaneRecovery); err != nil {
		t.Fatal(err)
	}
	// Many recovery-only waiters must all be served even though the
	// recovery weight is 1 — weights only matter under contention.
	done := make(chan struct{}, 8)
	for i := 0; i < 8; i++ {
		go func() {
			if err := s.Acquire(LaneRecovery); err != nil {
				t.Error(err)
				return
			}
			done <- struct{}{}
			s.Release(LaneRecovery)
		}()
	}
	time.Sleep(20 * time.Millisecond)
	s.Release(LaneRecovery)
	for i := 0; i < 8; i++ {
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatalf("recovery-only waiter %d starved", i)
		}
	}
}

func TestSchedulerCloseWakesWaiters(t *testing.T) {
	s := NewScheduler(Config{MaxConcurrent: 1}, nil)
	if err := s.Acquire(LaneForeground); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 1)
	go func() { errs <- s.Acquire(LaneRecovery) }()
	time.Sleep(20 * time.Millisecond)
	s.Close()
	select {
	case err := <-errs:
		if err != ErrSchedClosed {
			t.Fatalf("waiter error = %v, want ErrSchedClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not wake the waiter")
	}
	if err := s.Acquire(LaneForeground); err != ErrSchedClosed {
		t.Fatalf("post-close acquire = %v, want ErrSchedClosed", err)
	}
	s.Close() // idempotent
}

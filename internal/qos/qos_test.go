package qos

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestTenantOf(t *testing.T) {
	cases := []struct{ name, want string }{
		{"hi/temperature", "hi"},
		{"lo/pressure/x", "lo"},
		{"temperature", DefaultTenant},
		{"/weird", DefaultTenant}, // empty prefix falls back
		{"", DefaultTenant},
	}
	for _, c := range cases {
		if got := TenantOf(c.name); got != c.want {
			t.Errorf("TenantOf(%q) = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestErrOverloadedRoundTrip(t *testing.T) {
	orig := &ErrOverloaded{Tenant: "lo", Resource: ResourceStaging, RetryAfter: 125 * time.Millisecond}

	// errors.As path (in-proc transport returns the value directly).
	wrapped := fmt.Errorf("staging put: %w", orig)
	got, ok := FromError(wrapped)
	if !ok || got.Tenant != "lo" || got.Resource != ResourceStaging || got.RetryAfter != orig.RetryAfter {
		t.Fatalf("FromError(errors.As path) = %+v, %v", got, ok)
	}

	// String path (TCP transport ships handler errors as messages).
	remote := errors.New("rpc: remote error: staging put: " + orig.Error())
	got, ok = FromError(remote)
	if !ok {
		t.Fatalf("FromError did not parse %q", remote.Error())
	}
	if got.Tenant != "lo" || got.Resource != ResourceStaging || got.RetryAfter != 125*time.Millisecond {
		t.Fatalf("parsed %+v, want %+v", got, orig)
	}

	if _, ok := FromError(errors.New("some other failure")); ok {
		t.Fatal("FromError matched a non-overload error")
	}
	if _, ok := FromError(nil); ok {
		t.Fatal("FromError matched nil")
	}
}

func TestAdmitTenantStagingQuota(t *testing.T) {
	c := NewController(Config{
		Tenants: map[string]Quota{"lo": {StagingBytes: 100}},
	}, nil)

	if rej := c.AdmitPut("lo/x", 80, false, 0, 0, Signals{}); rej != nil {
		t.Fatalf("first put rejected: %v", rej)
	}
	c.Charge("lo/x", 80, 0)
	rej := c.AdmitPut("lo/y", 40, false, 0, 0, Signals{})
	if rej == nil {
		t.Fatal("over-quota put admitted")
	}
	if rej.Tenant != "lo" || rej.Resource != ResourceStaging {
		t.Fatalf("rejection = %+v", rej)
	}
	if rej.RetryAfter <= 0 {
		t.Fatal("rejection carries no retry-after hint")
	}
	// Freeing brings the tenant back under quota.
	c.Charge("lo/x", -80, 0)
	if rej := c.AdmitPut("lo/y", 40, false, 0, 0, Signals{}); rej != nil {
		t.Fatalf("post-free put rejected: %v", rej)
	}
	// Other tenants are unaffected throughout.
	if rej := c.AdmitPut("hi/z", 1000, false, 0, 0, Signals{}); rej != nil {
		t.Fatalf("unrelated tenant rejected: %v", rej)
	}
}

func TestAdmitWlogQuotaOnlyChargesLoggedPuts(t *testing.T) {
	c := NewController(Config{
		Tenants: map[string]Quota{"lo": {WlogBytes: 100}},
	}, nil)
	c.Charge("lo/x", 90, 90)

	if rej := c.AdmitPut("lo/y", 50, false, 0, 0, Signals{}); rej != nil {
		t.Fatalf("unlogged put hit wlog quota: %v", rej)
	}
	rej := c.AdmitPut("lo/y", 50, true, 0, 0, Signals{})
	if rej == nil || rej.Resource != ResourceWlog {
		t.Fatalf("logged over-quota put: %+v", rej)
	}
}

func TestGlobalShedIsPriorityOrdered(t *testing.T) {
	c := NewController(Config{
		Tenants:   map[string]Quota{"lo": {Priority: 0}, "hi": {Priority: 2}},
		Default:   Quota{Priority: 1},
		HighWater: 0.7,
	}, nil)
	const budget = 1000

	// At 80% of budget: priority 0 (threshold 0.7) sheds, priority 2
	// (threshold 1.0) and the default tenant (threshold 0.85) admit.
	used := int64(790)
	if rej := c.AdmitPut("lo/a", 10, false, used, budget, Signals{}); rej == nil {
		t.Fatal("low-priority put admitted above its shed threshold")
	} else if rej.Resource != ResourceGlobal {
		t.Fatalf("rejection resource = %q", rej.Resource)
	}
	if rej := c.AdmitPut("mid", 10, false, used, budget, Signals{}); rej != nil {
		t.Fatalf("default-priority put shed below its threshold: %v", rej)
	}
	if rej := c.AdmitPut("hi/a", 10, false, used, budget, Signals{}); rej != nil {
		t.Fatalf("high-priority put shed below ceiling: %v", rej)
	}

	// Nobody may exceed the full budget.
	if rej := c.AdmitPut("hi/a", 10, false, budget, budget, Signals{}); rej == nil {
		t.Fatal("high-priority put admitted past the hard ceiling")
	}
}

func TestRetryAfterGrowsWithPressureAndIsCapped(t *testing.T) {
	cfg := Config{RetryAfterBase: 10 * time.Millisecond, RetryAfterMax: 500 * time.Millisecond}
	c := NewController(cfg, nil)

	calm := c.retryAfter(1, Signals{})
	loaded := c.retryAfter(1.5, Signals{QueueDepth: 32, ReplLag: 256})
	if loaded <= calm {
		t.Fatalf("retry-after did not grow with pressure: calm=%v loaded=%v", calm, loaded)
	}
	if loaded > 500*time.Millisecond {
		t.Fatalf("retry-after exceeds cap: %v", loaded)
	}
	if huge := c.retryAfter(1e9, Signals{QueueDepth: 1 << 20}); huge != 500*time.Millisecond {
		t.Fatalf("extreme pressure not capped: %v", huge)
	}
}

func TestRebaseRebuildsUsageFromItems(t *testing.T) {
	c := NewController(Config{
		Tenants: map[string]Quota{"lo": {StagingBytes: 100}},
	}, nil)
	c.Charge("lo/x", 60, 60)
	c.Charge("hi/y", 40, 0)
	// Shed once so the counter has something to survive.
	if rej := c.AdmitPut("lo/z", 100, false, 0, 0, Signals{}); rej == nil {
		t.Fatal("expected shed")
	}

	// GC dropped lo/x down to 20 bytes and hi/y entirely.
	c.Rebase([]UsageItem{{Name: "lo/x", Bytes: 20, Logged: true}})

	stats := c.Snapshot()
	byTenant := map[string]TenantStat{}
	for _, s := range stats {
		byTenant[s.Tenant] = s
	}
	lo := byTenant["lo"]
	if lo.StoreBytes != 20 || lo.WlogBytes != 20 {
		t.Fatalf("lo usage after rebase = %+v", lo)
	}
	if lo.Sheds != 1 {
		t.Fatalf("shed counter lost across rebase: %+v", lo)
	}
	if hi := byTenant["hi"]; hi.StoreBytes != 0 {
		t.Fatalf("hi usage after rebase = %+v", hi)
	}
	// lo is back under quota now.
	if rej := c.AdmitPut("lo/z", 50, false, 0, 0, Signals{}); rej != nil {
		t.Fatalf("post-rebase put rejected: %v", rej)
	}
}

func TestSnapshotSortedAndQuotaAnnotated(t *testing.T) {
	c := NewController(Config{
		Tenants: map[string]Quota{"b": {StagingBytes: 10, Priority: 1}, "a": {WlogBytes: 5}},
	}, nil)
	c.Charge("b/x", 3, 0)
	c.Charge("a/x", 2, 2)
	s := c.Snapshot()
	if len(s) != 2 || s[0].Tenant != "a" || s[1].Tenant != "b" {
		t.Fatalf("snapshot order: %+v", s)
	}
	if s[1].StagingQuota != 10 || s[1].Priority != 1 || s[0].WlogQuota != 5 {
		t.Fatalf("snapshot quotas: %+v", s)
	}
}

func TestSpillWaterDefaultsBelowHighWater(t *testing.T) {
	c := NewController(Config{}, nil).Config()
	if want := 0.85 * c.HighWater; c.SpillWater != want {
		t.Fatalf("SpillWater default %v, want %v (85%% of HighWater)", c.SpillWater, want)
	}
	if c.SpillWater >= c.HighWater {
		t.Fatal("spill must trigger strictly before the shed rule")
	}
	c = NewController(Config{HighWater: 0.9, SpillWater: 0.5}, nil).Config()
	if c.SpillWater != 0.5 {
		t.Fatalf("explicit SpillWater overridden to %v", c.SpillWater)
	}
	c = NewController(Config{SpillWater: 1.5}, nil).Config()
	if c.SpillWater >= 1 {
		t.Fatalf("out-of-range SpillWater kept: %v", c.SpillWater)
	}
}

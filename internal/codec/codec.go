// Package codec provides the binary fast path for bulk RPC payloads:
// messages that carry large []byte bodies (staged puts, shard writes,
// replication batches, log-snapshot transfers) implement Appender and
// are written/read without gob reflection. Everything else keeps gob —
// the fast path is an optimisation, never a requirement, so a message
// type can adopt it (or an envelope can decline it) without protocol
// changes.
//
// Encodings are length-delimited and self-describing at the top level
// only: a two-byte registered type id selects the decoder, and each
// implementation is responsible for its own field layout. Decoders must
// be total: arbitrary input returns a typed error (ErrCorrupt,
// ErrUnknownType), never a panic — the transport fuzz suite holds them
// to that.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// ErrCorrupt reports a fast-path body that does not parse: truncated
// fields, length prefixes pointing past the end, trailing garbage.
var ErrCorrupt = errors.New("codec: corrupt fast-path body")

// ErrUnknownType reports a fast-path type id with no registered decoder.
var ErrUnknownType = errors.New("codec: unknown fast-path type id")

// ErrNoFastPath is returned by AppendTo when a message cannot take the
// fast path after all (an envelope whose inner payload has no Appender);
// the caller falls back to gob for the whole message.
var ErrNoFastPath = errors.New("codec: message has no fast-path encoding")

// Appender is the encode half of the fast path, implemented on value
// receivers so any payload (request or response) qualifies directly.
// AppendTo appends the message body (without the type id) to buf and
// returns the extended slice; returning an error (conventionally
// ErrNoFastPath) makes the transport fall back to gob.
type Appender interface {
	CodecID() uint16
	AppendTo(buf []byte) ([]byte, error)
}

// BulkAppender is an optional refinement of Appender for messages whose
// encoding ends with one bulk []byte field. AppendHeadTo appends
// everything up to and including that field's length prefix and returns
// the bulk bytes separately (unencoded, uncopied), so the transport can
// hand them to vectored I/O instead of copying them into the frame
// buffer. head followed by tail must be byte-identical to AppendTo's
// output; returning an error declines the split for this value and the
// caller falls back to AppendTo.
type BulkAppender interface {
	Appender
	AppendHeadTo(buf []byte) (head, tail []byte, err error)
}

// Decoder is the decode half, implemented on pointer receivers.
// DecodeFrom parses the body produced by AppendTo from r (which also
// carries the aliasing mode, see NewAliasReader); Value returns the
// message as the value type handlers switch on.
type Decoder interface {
	DecodeFrom(r *Reader) error
	Value() any
}

var (
	regMu sync.RWMutex
	reg   = map[uint16]func() Decoder{}
)

// Register installs the decoder factory for a fast-path type id.
// Duplicate registrations panic (ids are a protocol constant).
func Register(id uint16, factory func() Decoder) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := reg[id]; dup {
		panic(fmt.Sprintf("codec: duplicate fast-path id %d", id))
	}
	reg[id] = factory
}

// Marshal appends v's fast-path encoding (type id + body) to buf. ok is
// false — and buf is returned unchanged — when v has no fast path.
func Marshal(buf []byte, v any) (out []byte, ok bool) {
	a, isAppender := v.(Appender)
	if !isAppender {
		return buf, false
	}
	n := len(buf)
	buf = binary.BigEndian.AppendUint16(buf, a.CodecID())
	buf, err := a.AppendTo(buf)
	if err != nil {
		return buf[:n], false
	}
	return buf, true
}

// MarshalBulk is Marshal for BulkAppender messages: it appends the type
// id and encoded head to buf and returns the bulk tail separately,
// still aliasing the message's own bytes. ok is false — and buf is
// returned unchanged — when v is not a BulkAppender or declines the
// split.
func MarshalBulk(buf []byte, v any) (head, tail []byte, ok bool) {
	a, isBulk := v.(BulkAppender)
	if !isBulk {
		return buf, nil, false
	}
	n := len(buf)
	buf = binary.BigEndian.AppendUint16(buf, a.CodecID())
	head, tail, err := a.AppendHeadTo(buf)
	if err != nil {
		return buf[:n], nil, false
	}
	return head, tail, true
}

// Unmarshal decodes a fast-path encoding produced by Marshal. Byte and
// string fields are copied out of data.
func Unmarshal(data []byte) (any, error) { return UnmarshalFrom(NewReader(data)) }

// UnmarshalAlias decodes like Unmarshal but byte fields alias data
// directly (zero copy). The caller cedes ownership of data: it must not
// be modified or recycled while the decoded value is live.
func UnmarshalAlias(data []byte) (any, error) { return UnmarshalFrom(NewAliasReader(data)) }

// UnmarshalFrom decodes a fast-path encoding (type id + body) from the
// unread bytes of r, inheriting r's aliasing mode — this is how an
// envelope decodes its nested payload.
func UnmarshalFrom(r *Reader) (any, error) {
	if r.err != nil {
		return nil, r.err
	}
	if len(r.d) < 2 {
		return nil, fmt.Errorf("%w: short type id", ErrCorrupt)
	}
	id := binary.BigEndian.Uint16(r.d)
	r.d = r.d[2:]
	regMu.RLock()
	factory := reg[id]
	regMu.RUnlock()
	if factory == nil {
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, id)
	}
	d := factory()
	if err := d.DecodeFrom(r); err != nil {
		return nil, err
	}
	return d.Value(), nil
}

// ---------------------------------------------------------------------
// Append helpers (the encode vocabulary shared by implementations).

// AppendUvarint appends v in unsigned varint form.
func AppendUvarint(buf []byte, v uint64) []byte { return binary.AppendUvarint(buf, v) }

// AppendVarint appends v in zig-zag varint form.
func AppendVarint(buf []byte, v int64) []byte { return binary.AppendVarint(buf, v) }

// AppendBytes appends a uvarint length prefix followed by b.
func AppendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

// AppendString appends s like AppendBytes.
func AppendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// AppendBool appends one byte, 0 or 1.
func AppendBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// ---------------------------------------------------------------------
// Reader: the decode counterpart. Errors are sticky — after the first
// failure every accessor returns the zero value — so decoders read all
// fields linearly and check Err once.

// Reader decodes the helper encodings with bounds checks everywhere.
type Reader struct {
	d     []byte
	err   error
	alias bool
}

// NewReader wraps data for decoding; Bytes copies out of data.
func NewReader(data []byte) *Reader { return &Reader{d: data} }

// NewAliasReader wraps data for zero-copy decoding: Bytes returns
// subslices of data itself. Use only when the decoded value may own
// data (the transport hands over fast-path frame bodies this way,
// skipping one full payload copy per message).
func NewAliasReader(data []byte) *Reader { return &Reader{d: data, alias: true} }

// DisableAlias switches r to copying Bytes reads even when it was
// created with NewAliasReader. Decoders whose values outlive the call
// that delivered them (deep-retained replication and snapshot state)
// opt out of zero-copy, because the transport reclaims an aliased
// request body once its handler returns.
func (r *Reader) DisableAlias() { r.alias = false }

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Len returns the unread byte count.
func (r *Reader) Len() int { return len(r.d) }

// Rest consumes and returns all unread bytes (no copy).
func (r *Reader) Rest() []byte {
	if r.err != nil {
		return nil
	}
	out := r.d
	r.d = nil
	return out
}

func (r *Reader) fail() {
	if r.err == nil {
		r.err = ErrCorrupt
	}
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.d)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.d = r.d[n:]
	return v
}

// Varint reads a zig-zag varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.d)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.d = r.d[n:]
	return v
}

// Int reads a uvarint and narrows it to a non-negative int.
func (r *Reader) Int() int {
	v := r.Uvarint()
	if v > uint64(int(^uint(0)>>1)) {
		r.fail()
		return 0
	}
	return int(v)
}

// Bytes reads a length-prefixed byte field: a fresh copy by default, a
// subslice of the input in alias mode (NewAliasReader). The length is
// bounds-checked against the unread input, so corrupt prefixes cannot
// force huge allocations.
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.d)) {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil // match gob: empty fields decode as nil
	}
	var out []byte
	if r.alias {
		out = r.d[:n:n]
	} else {
		out = append([]byte(nil), r.d[:n]...) // growslice skips the zeroing a make would do
	}
	r.d = r.d[n:]
	return out
}

// String reads a length-prefixed string field.
func (r *Reader) String() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.d)) {
		r.fail()
		return ""
	}
	out := string(r.d[:n])
	r.d = r.d[n:]
	return out
}

// Bool reads one byte as a bool (any non-zero value is true).
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if len(r.d) < 1 {
		r.fail()
		return false
	}
	v := r.d[0] != 0
	r.d = r.d[1:]
	return v
}

// ---------------------------------------------------------------------
// Buffer pool: reusable frame/encode buffers shared by both ends of the
// transport so steady-state bulk traffic allocates nothing per call.

// maxPooledBuf bounds what the pool retains; one-off giant frames are
// left to the GC rather than pinned forever.
const maxPooledBuf = 8 << 20

// bigBufCutoff routes buffers to the channel free list below. Bulk
// traffic allocates frequent short-lived 100 KiB+ buffers; sync.Pool
// sheds its caches on every GC cycle, and the GC pressure of exactly
// that traffic empties the pool right when it is needed most. The
// fixed-size channel free list is invisible to the collector, so large
// buffers keep circulating under load.
const bigBufCutoff = 64 << 10

// The capacity covers a full window of in-flight bulk frames (one
// server connection admits up to 256 concurrent handlers); buffers
// beyond it fall through to the GC rather than pile up.
var bigBufs = make(chan []byte, 256)

var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// GetBuf returns a zero-length reusable buffer.
func GetBuf() []byte {
	select {
	case b := <-bigBufs:
		return b[:0]
	default:
	}
	return (*bufPool.Get().(*[]byte))[:0]
}

// PutBuf returns a buffer obtained from GetBuf to the pool.
func PutBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuf {
		return
	}
	if cap(b) >= bigBufCutoff {
		select {
		case bigBufs <- b[:0]:
		default: // free list full; let the GC have it
		}
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}

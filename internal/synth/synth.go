// Package synth generates the deterministic synthetic field data the
// evaluation workloads exchange, and the checksums used to verify
// end-to-end crash consistency: after any sequence of failures and
// replays, a consumer must observe byte-identical data to a failure-free
// run.
package synth

import (
	"encoding/binary"
	"hash/fnv"

	"gospaces/internal/domain"
)

// Field produces deterministic cell values for (name, version) over a
// global domain so any rank can generate its sub-box independently and
// readers can validate arbitrary regions.
type Field struct {
	Name     string
	Global   domain.BBox
	ElemSize int
	seed     uint64
}

// NewField creates a field generator.
func NewField(name string, global domain.BBox, elemSize int) *Field {
	h := fnv.New64a()
	h.Write([]byte(name))
	return &Field{Name: name, Global: global, ElemSize: elemSize, seed: h.Sum64()}
}

// splitmix64 is a tiny, high-quality mixing function.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// cellValue returns the deterministic value of one cell at a version.
func (f *Field) cellValue(version int64, p domain.Point) uint64 {
	x := f.seed ^ uint64(version)*0x9e3779b97f4a7c15
	for i := 0; i < f.Global.NDim; i++ {
		x = splitmix64(x ^ uint64(p[i]+1)<<uint(8*i))
	}
	return x
}

// Fill writes the field's values for version over the region box into a
// fresh row-major buffer.
func (f *Field) Fill(version int64, box domain.BBox) []byte {
	buf := make([]byte, domain.BufLen(box, f.ElemSize))
	var p domain.Point
	for i := 0; i < box.NDim; i++ {
		p[i] = box.Min[i]
	}
	n := box.NDim
	off := 0
	var tmp [8]byte
	for {
		v := f.cellValue(version, p)
		binary.LittleEndian.PutUint64(tmp[:], v)
		copy(buf[off:off+f.ElemSize], tmp[:f.ElemSize])
		off += f.ElemSize
		d := n - 1
		for d >= 0 {
			p[d]++
			if p[d] <= box.Max[d] {
				break
			}
			p[d] = box.Min[d]
			d--
		}
		if d < 0 {
			return buf
		}
	}
}

// Verify checks that data matches the field content for version over
// box, returning the index of the first mismatching byte or -1.
func (f *Field) Verify(version int64, box domain.BBox, data []byte) int {
	want := f.Fill(version, box)
	if len(want) != len(data) {
		return 0
	}
	for i := range want {
		if want[i] != data[i] {
			return i
		}
	}
	return -1
}

// Checksum is a stable FNV-1a digest of a buffer, used to compare runs.
func Checksum(data []byte) uint64 {
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64()
}

package synth

import (
	"bytes"
	"testing"

	"gospaces/internal/domain"
)

func TestFillDeterministic(t *testing.T) {
	g := domain.Box3(0, 0, 0, 15, 15, 15)
	f := NewField("temp", g, 8)
	a := f.Fill(3, g)
	b := f.Fill(3, g)
	if !bytes.Equal(a, b) {
		t.Fatal("fill not deterministic")
	}
}

func TestFillVariesByVersionAndName(t *testing.T) {
	g := domain.Box3(0, 0, 0, 7, 7, 7)
	f := NewField("temp", g, 8)
	if bytes.Equal(f.Fill(1, g), f.Fill(2, g)) {
		t.Fatal("versions produced identical data")
	}
	f2 := NewField("pressure", g, 8)
	if bytes.Equal(f.Fill(1, g), f2.Fill(1, g)) {
		t.Fatal("different fields produced identical data")
	}
}

func TestSubBoxConsistentWithGlobalFill(t *testing.T) {
	g := domain.Box3(0, 0, 0, 15, 11, 7)
	f := NewField("u", g, 8)
	whole := f.Fill(5, g)
	sub := domain.Box3(3, 2, 1, 9, 8, 5)
	got := f.Fill(5, sub)
	want := domain.Extract(whole, g, sub, 8)
	if !bytes.Equal(got, want) {
		t.Fatal("sub-box fill inconsistent with global fill")
	}
}

func TestRankDecompositionAssemblesToGlobal(t *testing.T) {
	g := domain.Box3(0, 0, 0, 15, 15, 15)
	f := NewField("u", g, 4)
	dec, err := domain.NewDecomposition(g, []int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	assembled := make([]byte, domain.BufLen(g, 4))
	for r := 0; r < dec.NRanks; r++ {
		rb, _ := dec.RankBox(r)
		domain.CopyRegion(assembled, g, f.Fill(9, rb), rb, rb, 4)
	}
	if !bytes.Equal(assembled, f.Fill(9, g)) {
		t.Fatal("rank pieces do not assemble to the global field")
	}
}

func TestVerify(t *testing.T) {
	g := domain.Box3(0, 0, 0, 7, 7, 7)
	f := NewField("v", g, 8)
	data := f.Fill(1, g)
	if idx := f.Verify(1, g, data); idx != -1 {
		t.Fatalf("verify of correct data = %d", idx)
	}
	data[100] ^= 0xFF
	if idx := f.Verify(1, g, data); idx != 100 {
		t.Fatalf("corruption index = %d, want 100", idx)
	}
	if idx := f.Verify(1, g, data[:10]); idx != 0 {
		t.Fatal("short buffer not flagged")
	}
}

func TestElemSizes(t *testing.T) {
	g := domain.Box3(0, 0, 0, 3, 3, 3)
	for _, es := range []int{1, 2, 4, 8} {
		f := NewField("w", g, es)
		buf := f.Fill(1, g)
		if len(buf) != int(g.Volume())*es {
			t.Fatalf("elem %d: len %d", es, len(buf))
		}
	}
}

func TestChecksum(t *testing.T) {
	if Checksum([]byte("a")) == Checksum([]byte("b")) {
		t.Fatal("checksum collision on trivial input")
	}
	if Checksum(nil) != Checksum([]byte{}) {
		t.Fatal("nil and empty differ")
	}
}

package failure

import (
	"math"
	"testing"
	"time"
)

func targets() []Target {
	return []Target{{Component: "sim", Ranks: 256}, {Component: "ana", Ranks: 64}}
}

func TestExponentialDeterministic(t *testing.T) {
	a, err := Exponential(42, 10*time.Minute, 3, time.Hour, targets())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Exponential(42, 10*time.Minute, 3, time.Hour, targets())
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("lens %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules differ at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c, _ := Exponential(43, 10*time.Minute, 3, time.Hour, targets())
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical schedules")
	}
}

func TestExponentialWithinHorizonAndSorted(t *testing.T) {
	horizon := 40 * time.Minute
	s, err := Exponential(7, 10*time.Minute, 10, horizon, targets())
	if err != nil {
		t.Fatal(err)
	}
	for i, inj := range s {
		if inj.At <= 0 || inj.At >= horizon {
			t.Fatalf("injection %d at %v outside horizon", i, inj.At)
		}
		if i > 0 && s[i].At < s[i-1].At {
			t.Fatal("schedule not sorted")
		}
		if inj.Component != "sim" && inj.Component != "ana" {
			t.Fatalf("bad component %q", inj.Component)
		}
	}
}

func TestExponentialTargetWeighting(t *testing.T) {
	// With sim 4x larger than ana, most failures should land on sim.
	s, _ := Exponential(1, time.Minute, 400, time.Hour, targets())
	simCount := 0
	for _, inj := range s {
		if inj.Component == "sim" {
			simCount++
			if inj.Rank < 0 || inj.Rank >= 256 {
				t.Fatalf("rank %d out of range", inj.Rank)
			}
		} else if inj.Rank < 0 || inj.Rank >= 64 {
			t.Fatalf("ana rank %d out of range", inj.Rank)
		}
	}
	frac := float64(simCount) / 400
	if frac < 0.7 || frac > 0.9 {
		t.Fatalf("sim got %.2f of failures, expected ~0.8", frac)
	}
}

func TestExponentialValidation(t *testing.T) {
	if _, err := Exponential(1, 0, 1, time.Hour, targets()); err == nil {
		t.Fatal("zero MTBF accepted")
	}
	if _, err := Exponential(1, time.Minute, 1, 0, targets()); err == nil {
		t.Fatal("zero horizon accepted")
	}
	if _, err := Exponential(1, time.Minute, 1, time.Hour, nil); err == nil {
		t.Fatal("no targets accepted")
	}
	if _, err := Exponential(1, time.Minute, 1, time.Hour, []Target{{Component: "x", Ranks: 0}}); err == nil {
		t.Fatal("zero ranks accepted")
	}
}

func TestFixedSorts(t *testing.T) {
	s := Fixed(
		Injection{At: 3 * time.Minute, Component: "b"},
		Injection{At: time.Minute, Component: "a"},
	)
	if s[0].Component != "a" || s[1].Component != "b" {
		t.Fatalf("order = %v", s)
	}
}

func TestKindString(t *testing.T) {
	cases := []struct {
		kind Kind
		want string
	}{
		{RankFailStop, "rank-fail-stop"},
		{ServerCrash, "server-crash"},
		{NetDelay, "net-delay"},
		{NetDrop, "net-drop"},
		{ServerFailStop, "server-fail-stop"},
		{SupervisorKill, "supervisor-kill"},
		{TenantOverload, "tenant-overload"},
		{PFSTornWrite, "pfs-torn-write"},
		{PFSPartialWrite, "pfs-partial-write"},
		{PFSBitRot, "pfs-bit-rot"},
		{PFSENOSPC, "pfs-enospc"},
		{PFSSlowIO, "pfs-slow-io"},
		{Kind(99), "kind(99)"},
	}
	for _, c := range cases {
		if got := c.kind.String(); got != c.want {
			t.Fatalf("Kind(%d).String() = %q, want %q", int(c.kind), got, c.want)
		}
	}
}

func TestChaosEmitsServerFailStop(t *testing.T) {
	s, err := Chaos(5, 40, time.Hour, time.Minute, 4, ServerCrash, ServerFailStop)
	if err != nil {
		t.Fatal(err)
	}
	failStops := 0
	for _, inj := range s {
		switch inj.Kind {
		case ServerFailStop:
			failStops++
			if inj.Duration != 0 {
				t.Fatalf("fail-stop with recovery horizon %v", inj.Duration)
			}
		case ServerCrash:
			if inj.Duration <= 0 {
				t.Fatalf("server crash with non-positive duration %v", inj.Duration)
			}
		default:
			t.Fatalf("unexpected kind %v", inj.Kind)
		}
	}
	if failStops == 0 {
		t.Fatal("40 draws over 2 kinds produced no fail-stops")
	}
}

func TestNemesisTierSchedule(t *testing.T) {
	a, err := NemesisTier(11, 60, time.Hour, time.Minute, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NemesisTier(11, 60, time.Hour, time.Minute, 4)
	if len(a) != 60 || len(b) != 60 {
		t.Fatalf("schedule lengths %d/%d", len(a), len(b))
	}
	counts := map[Kind]int{}
	for i, inj := range a {
		if inj != b[i] {
			t.Fatalf("same seed diverged at %d: %+v vs %+v", i, inj, b[i])
		}
		if i > 0 && inj.At < a[i-1].At {
			t.Fatalf("unsorted at %d", i)
		}
		if inj.At <= 0 || inj.At >= time.Hour {
			t.Fatalf("injection %d outside horizon: %v", i, inj.At)
		}
		counts[inj.Kind]++
		switch inj.Kind {
		case PFSTornWrite, PFSPartialWrite, PFSBitRot:
			if inj.Offset < -1 || inj.Offset > 255 {
				t.Fatalf("offset %d out of range", inj.Offset)
			}
		case PFSSlowIO, TenantOverload:
			if inj.Duration <= 0 {
				t.Fatalf("%v with non-positive duration", inj.Kind)
			}
		case ServerFailStop, PFSENOSPC:
			if inj.Duration != 0 {
				t.Fatalf("%v with recovery horizon %v", inj.Kind, inj.Duration)
			}
		default:
			t.Fatalf("unexpected kind %v", inj.Kind)
		}
	}
	for _, k := range []Kind{ServerFailStop, TenantOverload, PFSTornWrite, PFSBitRot, PFSENOSPC} {
		if counts[k] == 0 {
			t.Fatalf("60 draws produced no %v", k)
		}
	}
}

func TestChurnSchedule(t *testing.T) {
	kinds := []Kind{ServerFailStop, ServerCrash, PFSENOSPC, PFSTornWrite, TenantOverload}
	a, err := Churn(21, 80, 200, 4, 40*time.Millisecond, kinds...)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Churn(21, 80, 200, 4, 40*time.Millisecond, kinds...)
	if len(a) != 80 {
		t.Fatalf("schedule length %d", len(a))
	}
	counts := map[Kind]int{}
	for i, inj := range a {
		if inj != b[i] {
			t.Fatalf("same seed diverged at %d: %+v vs %+v", i, inj, b[i])
		}
		if i > 0 && inj.AtOp < a[i-1].AtOp {
			t.Fatalf("unsorted by op clock at %d", i)
		}
		if inj.AtOp < 0 || inj.AtOp >= 200 {
			t.Fatalf("op index %d outside horizon", inj.AtOp)
		}
		if inj.Server == 0 {
			t.Fatal("churn faulted the lock server (slot 0)")
		}
		if inj.Server < 1 || inj.Server >= 4 {
			t.Fatalf("server %d out of range", inj.Server)
		}
		counts[inj.Kind]++
		switch inj.Kind {
		case ServerCrash, TenantOverload:
			if inj.Duration < 20*time.Millisecond || inj.Duration >= 60*time.Millisecond {
				t.Fatalf("%v duration %v outside [mean/2, 3mean/2)", inj.Kind, inj.Duration)
			}
		case PFSTornWrite:
			if inj.Offset < -1 || inj.Offset > 255 {
				t.Fatalf("offset %d out of range", inj.Offset)
			}
		}
	}
	for _, k := range kinds {
		if counts[k] == 0 {
			t.Fatalf("80 draws produced no %v", k)
		}
	}
}

func TestChurnValidation(t *testing.T) {
	if _, err := Churn(1, 5, 0, 4, time.Millisecond); err == nil {
		t.Fatal("zero op horizon accepted")
	}
	if _, err := Churn(1, 5, 10, 1, time.Millisecond); err == nil {
		t.Fatal("single-server churn accepted (slot 0 must stay unfaulted)")
	}
	if _, err := Churn(1, 5, 10, 4, 0); err == nil {
		t.Fatal("zero mean fault accepted")
	}
	if _, err := Churn(1, 5, 10, 4, time.Millisecond, RankFailStop); err == nil {
		t.Fatal("rank fail-stop accepted in a churn schedule")
	}
	if _, err := Churn(1, 5, 10, 4, time.Millisecond, SupervisorKill); err == nil {
		t.Fatal("supervisor kill accepted in a churn schedule")
	}
	// Default kinds: fail-stops and blackouts only.
	sched, err := Churn(3, 40, 100, 3, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for _, inj := range sched {
		if inj.Kind != ServerFailStop && inj.Kind != ServerCrash {
			t.Fatalf("default kinds drew %v", inj.Kind)
		}
	}
}

func TestExpectedFailures(t *testing.T) {
	if got := ExpectedFailures(10*time.Minute, 40*time.Minute); got != 4 {
		t.Fatalf("expected = %f", got)
	}
	if !math.IsInf(ExpectedFailures(0, time.Minute), 1) {
		t.Fatal("zero MTBF should be Inf")
	}
}

package failure

import (
	"math"
	"testing"
	"time"
)

// TestExponentialProperties is the schedule-generator property test:
// over a grid of seeds and sizes, every schedule must be sorted, every
// injection must land strictly inside (0, horizon), and for a large
// fixed-seed draw the per-component pick frequencies must track the
// rank-count weights.
func TestExponentialProperties(t *testing.T) {
	horizon := 40 * time.Minute
	tgts := []Target{
		{Component: "sim", Ranks: 60},
		{Component: "ana", Ranks: 30},
		{Component: "viz", Ranks: 10},
	}
	for seed := int64(1); seed <= 25; seed++ {
		for _, n := range []int{1, 7, 40} {
			s, err := Exponential(seed, 10*time.Minute, n, horizon, tgts)
			if err != nil {
				t.Fatal(err)
			}
			if len(s) != n {
				t.Fatalf("seed %d: %d injections, want %d", seed, len(s), n)
			}
			for i, inj := range s {
				if inj.At <= 0 || inj.At >= horizon {
					t.Fatalf("seed %d: injection %d at %v outside (0, %v)", seed, i, inj.At, horizon)
				}
				if i > 0 && s[i-1].At > inj.At {
					t.Fatalf("seed %d: schedule not sorted at %d", seed, i)
				}
				if inj.Kind != RankFailStop {
					t.Fatalf("seed %d: Exponential produced kind %v", seed, inj.Kind)
				}
			}
		}
	}

	// Frequency proportionality for one large fixed-seed schedule:
	// expected fractions 0.6 / 0.3 / 0.1 of rank counts 60/30/10.
	const n = 2000
	s, err := Exponential(99, time.Minute, n, horizon, tgts)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, inj := range s {
		counts[inj.Component]++
		ranks := map[string]int{"sim": 60, "ana": 30, "viz": 10}[inj.Component]
		if ranks == 0 {
			t.Fatalf("unknown component %q", inj.Component)
		}
		if inj.Rank < 0 || inj.Rank >= ranks {
			t.Fatalf("%s rank %d out of range", inj.Component, inj.Rank)
		}
	}
	for comp, want := range map[string]float64{"sim": 0.6, "ana": 0.3, "viz": 0.1} {
		got := float64(counts[comp]) / n
		// 3-sigma binomial tolerance.
		tol := 3 * math.Sqrt(want*(1-want)/n)
		if math.Abs(got-want) > tol {
			t.Errorf("%s frequency %.3f, want %.3f ± %.3f", comp, got, want, tol)
		}
	}
}

func TestChaosScheduleProperties(t *testing.T) {
	horizon := 10 * time.Second
	mean := 200 * time.Millisecond
	s, err := Chaos(5, 100, horizon, mean, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 100 {
		t.Fatalf("%d entries", len(s))
	}
	kinds := map[Kind]int{}
	for i, inj := range s {
		if inj.At <= 0 || inj.At >= horizon {
			t.Fatalf("entry %d at %v outside horizon", i, inj.At)
		}
		if i > 0 && s[i-1].At > inj.At {
			t.Fatal("not sorted")
		}
		if inj.Server < 0 || inj.Server >= 4 {
			t.Fatalf("server %d out of range", inj.Server)
		}
		if inj.Duration < mean/2 || inj.Duration >= 3*mean/2 {
			t.Fatalf("duration %v outside [%v, %v)", inj.Duration, mean/2, 3*mean/2)
		}
		if inj.Kind == RankFailStop {
			t.Fatal("chaos schedule contains a rank fail-stop")
		}
		kinds[inj.Kind]++
	}
	for _, k := range []Kind{ServerCrash, NetDelay, NetDrop} {
		if kinds[k] == 0 {
			t.Errorf("kind %v never drawn in 100 entries", k)
		}
	}
	// Determinism.
	again, _ := Chaos(5, 100, horizon, mean, 4)
	for i := range s {
		if s[i] != again[i] {
			t.Fatalf("schedule not deterministic at %d", i)
		}
	}
	// Validation.
	if _, err := Chaos(1, 1, 0, mean, 4); err == nil {
		t.Fatal("zero horizon accepted")
	}
	if _, err := Chaos(1, 1, horizon, 0, 4); err == nil {
		t.Fatal("zero mean accepted")
	}
	if _, err := Chaos(1, 1, horizon, mean, 0); err == nil {
		t.Fatal("zero servers accepted")
	}
	if _, err := Chaos(1, 1, horizon, mean, 4, RankFailStop); err == nil {
		t.Fatal("rank fail-stop kind accepted")
	}
}

// TestChaosRejectsDegenerateHorizon: a 1ns horizon leaves no instant
// strictly inside (0, horizon) and used to panic in Int63n(0).
func TestChaosRejectsDegenerateHorizon(t *testing.T) {
	if _, err := Chaos(1, 1, time.Nanosecond, time.Millisecond, 2); err == nil {
		t.Fatal("1ns horizon accepted")
	}
	// The smallest valid horizon must work, not panic.
	s, err := Chaos(1, 5, 2*time.Nanosecond, time.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, inj := range s {
		if inj.At <= 0 || inj.At >= 2*time.Nanosecond {
			t.Fatalf("injection at %v outside (0, 2ns)", inj.At)
		}
	}
}

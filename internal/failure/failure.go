// Package failure generates fail-stop failure schedules for workflow
// experiments. The paper injects random process failures with
// MTBF = 10 min into 40-timestep synthetic runs (§IV-A) and scales the
// failure count with the system size in Table III (MTBF 600/300/200 s
// for 1/2/3 failures).
package failure

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Kind classifies an injected fault. The zero value is the original
// rank fail-stop, so existing schedules keep their meaning; the other
// kinds target the staging data path and are consumed by the chaos
// transport (internal/transport.Chaos).
type Kind int

const (
	// RankFailStop kills one application rank (paper §IV-A).
	RankFailStop Kind = iota
	// ServerCrash blacks out one staging server for Duration: dials and
	// calls fail as if the process died, then the address recovers.
	ServerCrash
	// NetDelay adds latency to every call to one server for Duration.
	NetDelay
	// NetDrop loses responses from one server for Duration: the server
	// processes the request but the client observes a timeout.
	NetDrop
	// ServerFailStop permanently kills one staging server: its state is
	// lost and the address never recovers. Unlike the transient
	// ServerCrash there is no recovery horizon — only the recovery
	// supervisor (internal/recovery) promoting a spare brings the slot
	// back.
	ServerFailStop
	// SupervisorKill kills one recovery supervisor (Server indexes the
	// supervisor, not a staging server). The nemesis harness
	// (internal/workflow.RunNemesis) consumes it to crash leaders
	// mid-promotion; the chaos transport ignores it.
	SupervisorKill
	// TenantOverload floods the staging group with low-priority tenant
	// puts for Duration — offered load, not a fault in the transport
	// sense. The nemesis harness consumes it to drive the admission
	// control layer (internal/qos) while real faults are in flight; the
	// chaos transport ignores it.
	TenantOverload
	// The PFS* kinds target the cold-tier backend (internal/pfs) of one
	// staging server rather than the network: the nemesis harness arms
	// them on the server's tier store (FailNextWriteAt, Corrupt,
	// SetCapacity, SetSlowIO); the chaos transport ignores them.

	// PFSTornWrite truncates the next tier write mid-record.
	PFSTornWrite
	// PFSPartialWrite cuts the next tier write at a random byte offset.
	PFSPartialWrite
	// PFSBitRot flips one bit of a spilled record at rest.
	PFSBitRot
	// PFSENOSPC makes the next tier write fail with no space; the tier
	// must degrade to RAM-only mode instead of losing data.
	PFSENOSPC
	// PFSSlowIO adds latency to every tier read/write for Duration.
	PFSSlowIO
)

// String renders the kind for traces and logs.
func (k Kind) String() string {
	switch k {
	case RankFailStop:
		return "rank-fail-stop"
	case ServerCrash:
		return "server-crash"
	case NetDelay:
		return "net-delay"
	case NetDrop:
		return "net-drop"
	case ServerFailStop:
		return "server-fail-stop"
	case SupervisorKill:
		return "supervisor-kill"
	case TenantOverload:
		return "tenant-overload"
	case PFSTornWrite:
		return "pfs-torn-write"
	case PFSPartialWrite:
		return "pfs-partial-write"
	case PFSBitRot:
		return "pfs-bit-rot"
	case PFSENOSPC:
		return "pfs-enospc"
	case PFSSlowIO:
		return "pfs-slow-io"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Injection is one scheduled fault event.
type Injection struct {
	// At is the time of the failure relative to workflow start.
	At time.Duration
	// Kind classifies the fault (zero value: rank fail-stop).
	Kind Kind
	// Component names the workflow component that fails (RankFailStop).
	Component string
	// Rank is the failing rank within the component (RankFailStop).
	Rank int
	// Server is the target staging server id (ServerCrash/Net*).
	Server int
	// Duration is the fault window length (ServerCrash/Net*/PFSSlowIO);
	// fail-stops — rank or server — are instantaneous and carry zero
	// duration (a ServerFailStop never recovers).
	Duration time.Duration
	// Offset is the byte offset a PFS torn/partial write or bit flip
	// lands at; negative means "let the store pick" (halfway through the
	// record). Only the PFS* kinds use it.
	Offset int
	// AtOp positions the injection on a logical-operation clock instead
	// of wall time: the fault fires before the AtOp-th workload
	// operation. Churn schedules (consumed by the trace-recorded soak,
	// internal/workflow.RunSoak) use it so a recorded fault lands at the
	// same point of the schedule on every replay regardless of machine
	// speed; wall-clock At is unused in such schedules.
	AtOp int
}

// Schedule is a time-ordered list of injections.
type Schedule []Injection

// Targets describes the components failures may hit; weights are the
// component sizes (larger components absorb proportionally more
// failures, as on a real machine).
type Target struct {
	Component string
	Ranks     int
}

// Exponential draws n failures with exponentially distributed
// inter-arrival times of the given MTBF, assigning each failure to a
// target component with probability proportional to its rank count.
// The schedule is deterministic for a given seed. Failures falling
// beyond horizon are wrapped back into (0, horizon) so the requested
// count always lands inside the run, matching the paper's "a failure
// was randomly introduced within 40 time steps" setup.
func Exponential(seed int64, mtbf time.Duration, n int, horizon time.Duration, targets []Target) (Schedule, error) {
	if mtbf <= 0 {
		return nil, fmt.Errorf("failure: non-positive MTBF %v", mtbf)
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("failure: no targets")
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("failure: non-positive horizon %v", horizon)
	}
	total := 0
	for _, t := range targets {
		if t.Ranks <= 0 {
			return nil, fmt.Errorf("failure: target %q with %d ranks", t.Component, t.Ranks)
		}
		total += t.Ranks
	}
	rng := rand.New(rand.NewSource(seed))
	sched := make(Schedule, 0, n)
	at := time.Duration(0)
	for i := 0; i < n; i++ {
		gap := time.Duration(rng.ExpFloat64() * float64(mtbf))
		at += gap
		t := at % horizon
		if t == 0 {
			t = horizon / 2
		}
		pick := rng.Intn(total)
		var comp string
		var ranks int
		for _, tg := range targets {
			if pick < tg.Ranks {
				comp = tg.Component
				ranks = tg.Ranks
				break
			}
			pick -= tg.Ranks
		}
		sched = append(sched, Injection{At: t, Component: comp, Rank: rng.Intn(ranks)})
	}
	sort.Slice(sched, func(i, j int) bool { return sched[i].At < sched[j].At })
	return sched, nil
}

// Chaos draws n network/server faults over horizon, uniformly over
// time, servers, and the given kinds, with window lengths uniform in
// [meanFault/2, 3*meanFault/2). The schedule is deterministic for a
// given seed; feed it to transport.Chaos.Apply to arm the faults.
func Chaos(seed int64, n int, horizon, meanFault time.Duration, nServers int, kinds ...Kind) (Schedule, error) {
	// Injections land strictly inside (0, horizon), so the horizon must
	// leave at least one representable instant between the endpoints
	// (horizon == 1ns would also make Int63n panic on a zero bound).
	if horizon <= time.Nanosecond {
		return nil, fmt.Errorf("failure: horizon %v too short", horizon)
	}
	if meanFault <= 0 {
		return nil, fmt.Errorf("failure: non-positive mean fault duration %v", meanFault)
	}
	if nServers <= 0 {
		return nil, fmt.Errorf("failure: non-positive server count %d", nServers)
	}
	if len(kinds) == 0 {
		kinds = []Kind{ServerCrash, NetDelay, NetDrop}
	}
	for _, k := range kinds {
		if k == RankFailStop {
			return nil, fmt.Errorf("failure: rank fail-stops belong in Exponential schedules")
		}
	}
	rng := rand.New(rand.NewSource(seed))
	sched := make(Schedule, 0, n)
	for i := 0; i < n; i++ {
		at := time.Duration(rng.Int63n(int64(horizon)-1)) + 1
		dur := meanFault/2 + time.Duration(rng.Int63n(int64(meanFault)))
		kind := kinds[rng.Intn(len(kinds))]
		if kind == ServerFailStop {
			// Permanent: no recovery horizon.
			dur = 0
		}
		sched = append(sched, Injection{
			At:       at,
			Kind:     kind,
			Server:   rng.Intn(nServers),
			Duration: dur,
		})
	}
	sort.Slice(sched, func(i, j int) bool { return sched[i].At < sched[j].At })
	return sched, nil
}

// Nemesis draws a recovery-soak schedule: n faults uniformly over
// (0, horizon) mixing permanent staging-server fail-stops, transient
// server blackouts of mean length meanFault, and supervisor kills
// (Server indexes the supervisor for those). It is the generator
// behind the nemesis harness (internal/workflow.RunNemesis), which
// concurrently kills supervisors, staging servers, and ranks and then
// asserts the standing invariants. Deterministic for a given seed.
func Nemesis(seed int64, n int, horizon, meanFault time.Duration, nServers, nSupervisors int) (Schedule, error) {
	if horizon <= time.Nanosecond {
		return nil, fmt.Errorf("failure: horizon %v too short", horizon)
	}
	if meanFault <= 0 {
		return nil, fmt.Errorf("failure: non-positive mean fault duration %v", meanFault)
	}
	if nServers <= 0 || nSupervisors <= 0 {
		return nil, fmt.Errorf("failure: nemesis needs servers (%d) and supervisors (%d)", nServers, nSupervisors)
	}
	rng := rand.New(rand.NewSource(seed))
	sched := make(Schedule, 0, n)
	for i := 0; i < n; i++ {
		at := time.Duration(rng.Int63n(int64(horizon)-1)) + 1
		switch rng.Intn(3) {
		case 0:
			sched = append(sched, Injection{At: at, Kind: ServerFailStop, Server: rng.Intn(nServers)})
		case 1:
			dur := meanFault/2 + time.Duration(rng.Int63n(int64(meanFault)))
			sched = append(sched, Injection{At: at, Kind: ServerCrash, Server: rng.Intn(nServers), Duration: dur})
		case 2:
			sched = append(sched, Injection{At: at, Kind: SupervisorKill, Server: rng.Intn(nSupervisors)})
		}
	}
	sort.Slice(sched, func(i, j int) bool { return sched[i].At < sched[j].At })
	return sched, nil
}

// NemesisOverload draws a schedule composing permanent staging-server
// fail-stops with tenant overload windows of mean length meanFault —
// the soak for the admission-control layer: recovery promotions must
// complete, and quotas must hold, while a low-priority tenant floods
// the group. Deterministic for a given seed.
func NemesisOverload(seed int64, n int, horizon, meanFault time.Duration, nServers int) (Schedule, error) {
	if horizon <= time.Nanosecond {
		return nil, fmt.Errorf("failure: horizon %v too short", horizon)
	}
	if meanFault <= 0 {
		return nil, fmt.Errorf("failure: non-positive mean fault duration %v", meanFault)
	}
	if nServers <= 0 {
		return nil, fmt.Errorf("failure: non-positive server count %d", nServers)
	}
	rng := rand.New(rand.NewSource(seed))
	sched := make(Schedule, 0, n)
	for i := 0; i < n; i++ {
		at := time.Duration(rng.Int63n(int64(horizon)-1)) + 1
		if rng.Intn(2) == 0 {
			sched = append(sched, Injection{At: at, Kind: ServerFailStop, Server: rng.Intn(nServers)})
		} else {
			dur := meanFault/2 + time.Duration(rng.Int63n(int64(meanFault)))
			sched = append(sched, Injection{At: at, Kind: TenantOverload, Duration: dur})
		}
	}
	sort.Slice(sched, func(i, j int) bool { return sched[i].At < sched[j].At })
	return sched, nil
}

// NemesisTier draws the storage-fault soak schedule: n faults uniformly
// over (0, horizon) mixing permanent staging-server fail-stops, tenant
// overload windows, and PFS storage faults against the servers' cold
// tiers — torn and partial writes at random byte offsets, at-rest bit
// rot, ENOSPC, and slow-I/O windows of mean length meanFault. It is the
// generator behind TestNemesisTierSoak: promotions must complete and
// replay must stay byte-exact while spilled records are being corrupted
// underneath the staging servers. Deterministic for a given seed.
func NemesisTier(seed int64, n int, horizon, meanFault time.Duration, nServers int) (Schedule, error) {
	if horizon <= time.Nanosecond {
		return nil, fmt.Errorf("failure: horizon %v too short", horizon)
	}
	if meanFault <= 0 {
		return nil, fmt.Errorf("failure: non-positive mean fault duration %v", meanFault)
	}
	if nServers <= 0 {
		return nil, fmt.Errorf("failure: non-positive server count %d", nServers)
	}
	rng := rand.New(rand.NewSource(seed))
	storage := []Kind{PFSTornWrite, PFSPartialWrite, PFSBitRot, PFSENOSPC, PFSSlowIO}
	sched := make(Schedule, 0, n)
	for i := 0; i < n; i++ {
		at := time.Duration(rng.Int63n(int64(horizon)-1)) + 1
		inj := Injection{At: at, Server: rng.Intn(nServers)}
		switch rng.Intn(4) {
		case 0:
			inj.Kind = ServerFailStop
		case 1:
			inj.Kind = TenantOverload
			inj.Duration = meanFault/2 + time.Duration(rng.Int63n(int64(meanFault)))
		default: // storage faults at double weight: they are the soak's point
			inj.Kind = storage[rng.Intn(len(storage))]
			switch inj.Kind {
			case PFSSlowIO:
				inj.Duration = meanFault/2 + time.Duration(rng.Int63n(int64(meanFault)))
			case PFSTornWrite, PFSPartialWrite, PFSBitRot:
				// Offsets land anywhere in a small record, including the
				// 24-byte CRC'd header; the store clamps overshoots.
				inj.Offset = rng.Intn(256) - 1 // -1 = store picks halfway
			}
		}
		sched = append(sched, inj)
	}
	sort.Slice(sched, func(i, j int) bool { return sched[i].At < sched[j].At })
	return sched, nil
}

// Churn draws the trace-recorded soak schedule: n faults positioned on
// a logical-operation clock in [0, horizonOps) rather than wall time,
// so the schedule composes deterministically with a recorded workload
// — replaying the trace re-arms each fault at the identical schedule
// position. Kinds are drawn uniformly from the given set (default:
// fail-stops plus blackouts). Fault targets are drawn from servers
// 1..nServers-1, never slot 0: the lock server's RPC dedup keys on a
// per-client sequence that a client-level retry cannot reuse, so
// faulting slot 0 would make retried lock acquires ambiguous and the
// replay nondeterministic. Blackouts and slow-I/O windows get Duration
// in [meanFault/2, 3*meanFault/2); fail-stops are permanent.
// Deterministic for a given seed.
func Churn(seed int64, n, horizonOps, nServers int, meanFault time.Duration, kinds ...Kind) (Schedule, error) {
	if horizonOps <= 0 {
		return nil, fmt.Errorf("failure: non-positive op horizon %d", horizonOps)
	}
	if nServers < 2 {
		return nil, fmt.Errorf("failure: churn needs at least 2 servers, got %d (slot 0 is never faulted)", nServers)
	}
	if meanFault <= 0 {
		return nil, fmt.Errorf("failure: non-positive mean fault duration %v", meanFault)
	}
	if len(kinds) == 0 {
		kinds = []Kind{ServerFailStop, ServerCrash}
	}
	for _, k := range kinds {
		switch k {
		case RankFailStop, SupervisorKill:
			return nil, fmt.Errorf("failure: %v has no logical-clock semantics in a churn schedule", k)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	sched := make(Schedule, 0, n)
	for i := 0; i < n; i++ {
		inj := Injection{
			Kind:   kinds[rng.Intn(len(kinds))],
			AtOp:   rng.Intn(horizonOps),
			Server: 1 + rng.Intn(nServers-1),
		}
		switch inj.Kind {
		case ServerCrash, NetDelay, NetDrop, PFSSlowIO, TenantOverload:
			inj.Duration = meanFault/2 + time.Duration(rng.Int63n(int64(meanFault)))
		case PFSTornWrite, PFSPartialWrite, PFSBitRot:
			inj.Offset = rng.Intn(256) - 1
		}
		sched = append(sched, inj)
	}
	sort.SliceStable(sched, func(i, j int) bool { return sched[i].AtOp < sched[j].AtOp })
	return sched, nil
}

// Fixed builds a schedule from explicit injections (sorted by time).
func Fixed(inj ...Injection) Schedule {
	s := append(Schedule(nil), inj...)
	sort.Slice(s, func(i, j int) bool { return s[i].At < s[j].At })
	return s
}

// ExpectedFailures returns the expected failure count over the horizon
// for a given MTBF, for sanity checks in experiment configs.
func ExpectedFailures(mtbf, horizon time.Duration) float64 {
	if mtbf <= 0 {
		return math.Inf(1)
	}
	return float64(horizon) / float64(mtbf)
}

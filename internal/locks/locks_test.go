package locks

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWriteLockMutualExclusion(t *testing.T) {
	m := NewManager()
	var inside atomic.Int32
	var maxInside atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			holder := string(rune('a' + i))
			for j := 0; j < 50; j++ {
				if err := m.Acquire("field", holder, Write); err != nil {
					t.Error(err)
					return
				}
				v := inside.Add(1)
				if v > maxInside.Load() {
					maxInside.Store(v)
				}
				inside.Add(-1)
				if err := m.Release("field", holder, Write); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if maxInside.Load() != 1 {
		t.Fatalf("max writers inside = %d", maxInside.Load())
	}
}

func TestReadersShare(t *testing.T) {
	m := NewManager()
	if err := m.Acquire("f", "r1", Read); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Acquire("f", "r2", Read) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("second reader blocked")
	}
	if w, r := m.Holders("f"); w != "" || r != 2 {
		t.Fatalf("holders = %q/%d", w, r)
	}
}

func TestWriterExcludesReaders(t *testing.T) {
	m := NewManager()
	if err := m.Acquire("f", "w", Write); err != nil {
		t.Fatal(err)
	}
	got := make(chan struct{})
	go func() {
		if err := m.Acquire("f", "r", Read); err != nil {
			t.Error(err)
		}
		close(got)
	}()
	select {
	case <-got:
		t.Fatal("reader acquired while writer held")
	case <-time.After(50 * time.Millisecond):
	}
	if err := m.Release("f", "w", Write); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(time.Second):
		t.Fatal("reader never woke after writer release")
	}
}

func TestWaitingWriterBlocksNewReaders(t *testing.T) {
	m := NewManager()
	if err := m.Acquire("f", "r1", Read); err != nil {
		t.Fatal(err)
	}
	wGot := make(chan struct{})
	go func() {
		if err := m.Acquire("f", "w", Write); err != nil {
			t.Error(err)
		}
		close(wGot)
	}()
	time.Sleep(20 * time.Millisecond) // let the writer start waiting
	rGot := make(chan struct{})
	go func() {
		if err := m.Acquire("f", "r2", Read); err != nil {
			t.Error(err)
		}
		close(rGot)
	}()
	select {
	case <-rGot:
		t.Fatal("new reader jumped a waiting writer")
	case <-time.After(50 * time.Millisecond):
	}
	if err := m.Release("f", "r1", Read); err != nil {
		t.Fatal(err)
	}
	<-wGot // writer gets in first
	if err := m.Release("f", "w", Write); err != nil {
		t.Fatal(err)
	}
	<-rGot // then the reader
}

func TestRecursiveReadLock(t *testing.T) {
	m := NewManager()
	if err := m.Acquire("f", "r", Read); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire("f", "r", Read); err != nil {
		t.Fatal(err)
	}
	if err := m.Release("f", "r", Read); err != nil {
		t.Fatal(err)
	}
	if _, readers := m.Holders("f"); readers != 1 {
		t.Fatal("recursive count wrong")
	}
	if err := m.Release("f", "r", Read); err != nil {
		t.Fatal(err)
	}
	if _, readers := m.Holders("f"); readers != 0 {
		t.Fatal("not fully released")
	}
}

func TestUpgradeDowngradeRejected(t *testing.T) {
	m := NewManager()
	if err := m.Acquire("f", "x", Read); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire("f", "x", Write); err == nil {
		t.Fatal("upgrade allowed")
	}
	_ = m.Release("f", "x", Read)
	if err := m.Acquire("f", "x", Write); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire("f", "x", Read); err == nil {
		t.Fatal("downgrade allowed")
	}
	if err := m.Acquire("f", "x", Write); err == nil {
		t.Fatal("double write acquire allowed")
	}
}

func TestReleaseErrors(t *testing.T) {
	m := NewManager()
	if err := m.Release("ghost", "x", Write); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("err = %v", err)
	}
	_ = m.Acquire("f", "a", Read)
	if err := m.Release("f", "b", Read); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("err = %v", err)
	}
	if err := m.Release("f", "a", Write); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("err = %v", err)
	}
}

func TestReleaseAllOnFailure(t *testing.T) {
	m := NewManager()
	_ = m.Acquire("a", "dead", Write)
	_ = m.Acquire("b", "dead", Read)
	_ = m.Acquire("b", "alive", Read)
	if n := m.ReleaseAll("dead"); n != 2 {
		t.Fatalf("released %d", n)
	}
	// The write lock must now be grabbable.
	done := make(chan error, 1)
	go func() { done <- m.Acquire("a", "alive2", Write) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("lock still dammed by dead holder")
	}
	if n := m.ReleaseAll("never-held"); n != 0 {
		t.Fatalf("phantom release %d", n)
	}
}

func TestCloseUnblocksWaiters(t *testing.T) {
	m := NewManager()
	_ = m.Acquire("f", "holder", Write)
	errs := make(chan error, 2)
	go func() { errs <- m.Acquire("f", "w2", Write) }()
	go func() { errs <- m.Acquire("f", "r", Read) }()
	time.Sleep(20 * time.Millisecond)
	m.Close()
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("err = %v", err)
			}
		case <-time.After(time.Second):
			t.Fatal("waiter not unblocked by close")
		}
	}
	if err := m.Acquire("g", "x", Read); !errors.Is(err, ErrClosed) {
		t.Fatalf("acquire after close: %v", err)
	}
}

func TestAcquireValidation(t *testing.T) {
	m := NewManager()
	if err := m.Acquire("", "x", Read); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := m.Acquire("f", "", Read); err == nil {
		t.Fatal("empty holder accepted")
	}
	if err := m.Acquire("f", "x", Kind(9)); err == nil {
		t.Fatal("bad kind accepted")
	}
	if err := m.Release("f", "x", Kind(9)); err == nil {
		t.Fatal("bad release kind accepted")
	}
}

// TestWriteReadCycle exercises the DataSpaces coupling idiom: producer
// takes the write lock per step, consumers take read locks, and the
// observed sequence is strictly alternating per step.
func TestWriteReadCycle(t *testing.T) {
	m := NewManager()
	const steps = 30
	written := make([]int32, steps+1)
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for ts := 1; ts <= steps; ts++ {
			if err := m.Acquire("field", "sim", Write); err != nil {
				t.Error(err)
				return
			}
			atomic.StoreInt32(&written[ts], 1)
			if err := m.Release("field", "sim", Write); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for c := 0; c < 2; c++ {
		holder := string(rune('A' + c))
		go func() {
			defer wg.Done()
			seen := 0
			for seen < steps {
				if err := m.Acquire("field", holder, Read); err != nil {
					t.Error(err)
					return
				}
				for ts := seen + 1; ts <= steps && atomic.LoadInt32(&written[ts]) == 1; ts++ {
					seen = ts
				}
				if err := m.Release("field", holder, Read); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// Package locks implements DataSpaces-style named reader/writer locks,
// the coordination primitive coupled applications use to sequence
// write-then-read cycles through the staging area
// (dspaces_lock_on_write / dspaces_lock_on_read in DataSpaces).
//
// Semantics follow DataSpaces': a write lock is exclusive; read locks
// are shared among readers; writers and readers alternate fairly —
// a waiting writer blocks new readers, so producers are not starved by
// a stream of consumers.
//
// The manager is a pure in-memory structure hosted by one staging
// server (server 0 of a group); clients reach it through the staging
// protocol's lock messages.
package locks

import (
	"errors"
	"fmt"
	"sync"
)

// Kind distinguishes read and write locks.
type Kind int

// Lock kinds.
const (
	Read Kind = iota + 1
	Write
)

func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ErrClosed is returned for operations on a closed manager.
var ErrClosed = errors.New("locks: manager closed")

// ErrNotHeld is returned when releasing a lock the caller does not hold.
var ErrNotHeld = errors.New("locks: lock not held")

type lockState struct {
	readers map[string]int // holder -> recursion count
	writer  string         // holder of the exclusive lock, "" if none
	// writersWaiting blocks new readers so writers are not starved.
	writersWaiting int
}

// Manager is a table of named reader/writer locks. Safe for concurrent
// use; acquisition blocks the calling goroutine.
type Manager struct {
	mu     sync.Mutex
	cond   *sync.Cond
	locks  map[string]*lockState
	closed bool
}

// NewManager returns an empty lock table.
func NewManager() *Manager {
	m := &Manager{locks: make(map[string]*lockState)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *Manager) state(name string) *lockState {
	st, ok := m.locks[name]
	if !ok {
		st = &lockState{readers: make(map[string]int)}
		m.locks[name] = st
	}
	return st
}

// Acquire blocks until holder obtains the lock of the given kind on
// name. Read locks are recursive per holder; a holder must not request
// a write lock while holding the read lock (or vice versa) — that
// returns an error rather than deadlocking.
func (m *Manager) Acquire(name, holder string, kind Kind) error {
	if name == "" || holder == "" {
		return fmt.Errorf("locks: empty name or holder")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.state(name)
	switch kind {
	case Write:
		if st.readers[holder] > 0 {
			return fmt.Errorf("locks: %q upgrading read lock on %q would deadlock", holder, name)
		}
		if st.writer == holder {
			return fmt.Errorf("locks: %q already holds write lock on %q", holder, name)
		}
		st.writersWaiting++
		for !m.closed && (st.writer != "" || len(st.readers) > 0) {
			m.cond.Wait()
		}
		st.writersWaiting--
		if m.closed {
			m.cond.Broadcast()
			return ErrClosed
		}
		st.writer = holder
		return nil
	case Read:
		if st.writer == holder {
			return fmt.Errorf("locks: %q downgrading write lock on %q would deadlock", holder, name)
		}
		if st.readers[holder] > 0 {
			st.readers[holder]++
			return nil
		}
		for !m.closed && (st.writer != "" || st.writersWaiting > 0) {
			m.cond.Wait()
		}
		if m.closed {
			m.cond.Broadcast()
			return ErrClosed
		}
		st.readers[holder]++
		return nil
	default:
		return fmt.Errorf("locks: unknown kind %d", kind)
	}
}

// Release relinquishes holder's lock of the given kind on name.
func (m *Manager) Release(name, holder string, kind Kind) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.locks[name]
	if !ok {
		return fmt.Errorf("%w: %s lock on %q by %q", ErrNotHeld, kind, name, holder)
	}
	switch kind {
	case Write:
		if st.writer != holder {
			return fmt.Errorf("%w: write lock on %q by %q", ErrNotHeld, name, holder)
		}
		st.writer = ""
	case Read:
		if st.readers[holder] == 0 {
			return fmt.Errorf("%w: read lock on %q by %q", ErrNotHeld, name, holder)
		}
		st.readers[holder]--
		if st.readers[holder] == 0 {
			delete(st.readers, holder)
		}
	default:
		return fmt.Errorf("locks: unknown kind %d", kind)
	}
	m.cond.Broadcast()
	return nil
}

// ReleaseAll drops every lock held by holder (used when a component
// fails: its locks must not dam the workflow; paper §III-C recovers the
// staging client as part of workflow_restart).
func (m *Manager) ReleaseAll(holder string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, st := range m.locks {
		if st.writer == holder {
			st.writer = ""
			n++
		}
		if st.readers[holder] > 0 {
			delete(st.readers, holder)
			n++
		}
	}
	if n > 0 {
		m.cond.Broadcast()
	}
	return n
}

// Close fails all waiters and future acquisitions.
func (m *Manager) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.cond.Broadcast()
}

// ReaderCount is one holder's read-lock recursion count in an exported
// lock table.
type ReaderCount struct {
	Holder string
	Count  int
}

// HeldLock is the exported state of one named lock: its writer (""
// if none) and its readers. Used by the staging log-replication layer
// to carry the lock table to a promoted spare.
type HeldLock struct {
	Name    string
	Writer  string
	Readers []ReaderCount
}

// Export returns the lock table's held state in deterministic order
// (names and reader holders sorted). Waiter bookkeeping is not
// exported: a restored table starts with no waiters.
func (m *Manager) Export() []HeldLock {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.locks))
	for n, st := range m.locks {
		if st.writer != "" || len(st.readers) > 0 {
			names = append(names, n)
		}
	}
	sortStrings(names)
	out := make([]HeldLock, 0, len(names))
	for _, n := range names {
		st := m.locks[n]
		h := HeldLock{Name: n, Writer: st.writer}
		holders := make([]string, 0, len(st.readers))
		for r := range st.readers {
			holders = append(holders, r)
		}
		sortStrings(holders)
		for _, r := range holders {
			h.Readers = append(h.Readers, ReaderCount{Holder: r, Count: st.readers[r]})
		}
		out = append(out, h)
	}
	return out
}

// Import replaces the lock table with held. It is meant for a freshly
// promoted spare restoring a dead lock server's state; any local
// waiters are woken so they re-evaluate against the restored table.
func (m *Manager) Import(held []HeldLock) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.locks = make(map[string]*lockState, len(held))
	for _, h := range held {
		st := &lockState{readers: make(map[string]int), writer: h.Writer}
		for _, r := range h.Readers {
			if r.Count > 0 {
				st.readers[r.Holder] = r.Count
			}
		}
		m.locks[h.Name] = st
	}
	m.cond.Broadcast()
}

func sortStrings(a []string) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Holders reports the current writer ("" if none) and reader count for
// name, for introspection.
func (m *Manager) Holders(name string) (writer string, readers int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.locks[name]
	if !ok {
		return "", 0
	}
	return st.writer, len(st.readers)
}

// Package mpi is a goroutine-based runtime with the shape of MPI plus
// the ULFM fault-tolerance extensions the paper's recovery path relies
// on (§III-C): fail-stop process failures, revoked communicators,
// shrink/repair with a spare-process pool, and fault-tolerant
// agreement. Application components in this repository run their ranks
// as goroutines against this runtime; on a Cray the same verbs are
// provided by MPI + ULFM.
//
// Semantics follow ULFM's: a process failure revokes every communicator
// it belongs to; collectives and point-to-point operations involving
// the failed process return errors instead of hanging; survivors build
// a replacement communicator with Repair, drawing fresh processes from
// a SparePool.
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrRevoked is returned by operations on a communicator that has been
// revoked by a member failure. Survivors must Repair (or Shrink) to a
// new communicator.
var ErrRevoked = errors.New("mpi: communicator revoked by process failure")

// ErrDead is returned by operations issued by a killed process.
var ErrDead = errors.New("mpi: calling process has failed")

// ProcFailedError reports a failed peer rank.
type ProcFailedError struct{ Rank int }

func (e ProcFailedError) Error() string {
	return fmt.Sprintf("mpi: process at rank %d has failed", e.Rank)
}

type msgKey struct {
	src int // proc id
	tag int
}

// Proc is one process of the world. A Proc's operations must be called
// from a single goroutine (its "rank body").
type Proc struct {
	id    int
	world *World

	mu    sync.Mutex
	cond  *sync.Cond
	dead  atomic.Bool
	inbox map[msgKey][]any
}

// ID returns the world-unique process id.
func (p *Proc) ID() int { return p.id }

// Dead reports whether the process has been killed.
func (p *Proc) Dead() bool { return p.dead.Load() }

// World owns processes and communicators and injects failures.
type World struct {
	mu     sync.Mutex
	nextID int
	procs  map[int]*Proc
	comms  []*Comm
}

// NewWorld returns an empty world.
func NewWorld() *World {
	return &World{procs: make(map[int]*Proc)}
}

// NewProc creates a live process.
func (w *World) NewProc() *Proc {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.nextID++
	p := &Proc{id: w.nextID, world: w, inbox: make(map[msgKey][]any)}
	p.cond = sync.NewCond(&p.mu)
	w.procs[p.id] = p
	return p
}

// Kill fail-stops a process: its pending and future operations error,
// and every communicator containing it is revoked.
func (w *World) Kill(p *Proc) {
	p.dead.Store(true)
	p.mu.Lock()
	p.cond.Broadcast()
	p.mu.Unlock()

	w.mu.Lock()
	comms := append([]*Comm(nil), w.comms...)
	procs := make([]*Proc, 0, len(w.procs))
	for _, q := range w.procs {
		procs = append(procs, q)
	}
	w.mu.Unlock()

	for _, c := range comms {
		c.noteFailure(p)
	}
	// Wake every blocked receiver so it can observe the failure.
	for _, q := range procs {
		q.mu.Lock()
		q.cond.Broadcast()
		q.mu.Unlock()
	}
}

// NewComm builds a communicator over the given processes; rank i is
// members[i].
func (w *World) NewComm(members []*Proc) *Comm {
	c := &Comm{world: w, members: append([]*Proc(nil), members...)}
	c.cond = sync.NewCond(&c.mu)
	w.mu.Lock()
	w.comms = append(w.comms, c)
	w.mu.Unlock()
	return c
}

// Comm is a communicator: an ordered set of processes.
type Comm struct {
	world   *World
	members []*Proc

	revoked atomic.Bool

	mu   sync.Mutex
	cond *sync.Cond
	// collective state, guarded by mu
	phase   int64
	arrived map[int]struct{} // proc ids arrived in current phase
	accum   any
	result  any
}

// Size returns the communicator size.
func (c *Comm) Size() int { return len(c.members) }

// Rank returns p's rank in c, or -1.
func (c *Comm) Rank(p *Proc) int {
	for i, m := range c.members {
		if m == p {
			return i
		}
	}
	return -1
}

// Revoked reports whether a member failure has revoked c.
func (c *Comm) Revoked() bool { return c.revoked.Load() }

// FailedRanks returns the ranks whose processes have failed.
func (c *Comm) FailedRanks() []int {
	var out []int
	for i, m := range c.members {
		if m.Dead() {
			out = append(out, i)
		}
	}
	return out
}

func (c *Comm) noteFailure(p *Proc) {
	if c.Rank(p) < 0 {
		return
	}
	c.Revoke()
}

// Revoke explicitly revokes the communicator (MPI_Comm_revoke):
// current and future operations on it fail with ErrRevoked. Survivors
// use it to interrupt peers stuck in collectives before recovery.
func (c *Comm) Revoke() {
	c.revoked.Store(true)
	c.mu.Lock()
	c.cond.Broadcast()
	c.mu.Unlock()
	// Recv waits on the receiving process's cond, not the
	// communicator's; wake the members so point-to-point waiters
	// observe the revocation too.
	for _, m := range c.members {
		m.mu.Lock()
		m.cond.Broadcast()
		m.mu.Unlock()
	}
}

// checkAlive returns an error when the caller is dead or the comm is
// revoked; callers hold no locks.
func (c *Comm) checkAlive(p *Proc) error {
	if p.Dead() {
		return ErrDead
	}
	if c.Revoked() {
		return ErrRevoked
	}
	return nil
}

// Send delivers v to dstRank with the given tag. It fails if the
// destination is dead or the communicator revoked.
func (c *Comm) Send(p *Proc, dstRank, tag int, v any) error {
	if err := c.checkAlive(p); err != nil {
		return err
	}
	if dstRank < 0 || dstRank >= len(c.members) {
		return fmt.Errorf("mpi: send to rank %d of %d", dstRank, len(c.members))
	}
	dst := c.members[dstRank]
	if dst.Dead() {
		return ProcFailedError{Rank: dstRank}
	}
	dst.mu.Lock()
	defer dst.mu.Unlock()
	k := msgKey{src: p.id, tag: tag}
	dst.inbox[k] = append(dst.inbox[k], v)
	dst.cond.Broadcast()
	return nil
}

// Recv blocks for a message from srcRank with the given tag. It returns
// an error if the source fails before delivering or the communicator is
// revoked mid-wait.
func (c *Comm) Recv(p *Proc, srcRank, tag int) (any, error) {
	if srcRank < 0 || srcRank >= len(c.members) {
		return nil, fmt.Errorf("mpi: recv from rank %d of %d", srcRank, len(c.members))
	}
	src := c.members[srcRank]
	k := msgKey{src: src.id, tag: tag}
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if q := p.inbox[k]; len(q) > 0 {
			v := q[0]
			if len(q) == 1 {
				delete(p.inbox, k)
			} else {
				p.inbox[k] = q[1:]
			}
			return v, nil
		}
		if p.Dead() {
			return nil, ErrDead
		}
		if src.Dead() {
			return nil, ProcFailedError{Rank: srcRank}
		}
		if c.Revoked() {
			return nil, ErrRevoked
		}
		p.cond.Wait()
	}
}

// collective runs one slot-based collective phase. Each member calls it
// once per phase in lockstep; contribute folds the member's value into
// the shared slot, and the phase result is the folded value.
func (c *Comm) collective(p *Proc, contribute func(acc any) any) (any, error) {
	if err := c.checkAlive(p); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.arrived == nil {
		c.arrived = make(map[int]struct{})
	}
	myPhase := c.phase
	if _, dup := c.arrived[p.id]; dup {
		return nil, fmt.Errorf("mpi: proc %d entered collective twice in one phase", p.id)
	}
	c.arrived[p.id] = struct{}{}
	c.accum = contribute(c.accum)
	if len(c.arrived) == len(c.members) {
		// Last arrival completes the phase.
		c.result = c.accum
		c.accum = nil
		c.arrived = make(map[int]struct{})
		c.phase++
		c.cond.Broadcast()
		return c.result, nil
	}
	for c.phase == myPhase && !c.revoked.Load() {
		if p.Dead() {
			return nil, ErrDead
		}
		c.cond.Wait()
	}
	if c.phase == myPhase && c.revoked.Load() {
		return nil, ErrRevoked
	}
	return c.result, nil
}

// Barrier blocks until all members arrive, failing with ErrRevoked if a
// member dies first.
func (c *Comm) Barrier(p *Proc) error {
	_, err := c.collective(p, func(acc any) any { return nil })
	return err
}

// AllReduceFloat64 folds each member's value with op and returns the
// result to all.
func (c *Comm) AllReduceFloat64(p *Proc, v float64, op func(a, b float64) float64) (float64, error) {
	res, err := c.collective(p, func(acc any) any {
		if acc == nil {
			return v
		}
		return op(acc.(float64), v)
	})
	if err != nil {
		return 0, err
	}
	return res.(float64), nil
}

// Bcast distributes root's value to all members.
func (c *Comm) Bcast(p *Proc, root int, v any) (any, error) {
	isRoot := c.Rank(p) == root
	res, err := c.collective(p, func(acc any) any {
		if isRoot {
			return v
		}
		return acc
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Agree is ULFM's fault-tolerant agreement: it AND-folds flag across
// the members that are still alive and succeeds even while the
// communicator is revoked, so survivors can agree on a recovery plan.
func (c *Comm) Agree(p *Proc, flag bool) (bool, error) {
	if p.Dead() {
		return false, ErrDead
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.arrived == nil {
		c.arrived = make(map[int]struct{})
	}
	myPhase := c.phase
	c.arrived[p.id] = struct{}{}
	if c.accum == nil {
		c.accum = flag
	} else {
		c.accum = c.accum.(bool) && flag
	}
	complete := func() bool {
		alive := 0
		for _, m := range c.members {
			if !m.Dead() {
				alive++
			}
		}
		return len(c.arrived) >= alive
	}
	if complete() {
		c.result = c.accum
		c.accum = nil
		c.arrived = make(map[int]struct{})
		c.phase++
		c.cond.Broadcast()
		return c.result.(bool), nil
	}
	for c.phase == myPhase {
		if p.Dead() {
			return false, ErrDead
		}
		if complete() {
			// A failure reduced the required count; complete the phase.
			c.result = c.accum
			c.accum = nil
			c.arrived = make(map[int]struct{})
			c.phase++
			c.cond.Broadcast()
			return c.result.(bool), nil
		}
		c.cond.Wait()
	}
	return c.result.(bool), nil
}

// Shrink returns a new communicator over the surviving members, in rank
// order. The old communicator stays revoked.
func (c *Comm) Shrink() *Comm {
	var alive []*Proc
	for _, m := range c.members {
		if !m.Dead() {
			alive = append(alive, m)
		}
	}
	return c.world.NewComm(alive)
}

// Repair returns a new communicator of the same size with failed
// members replaced by spares, plus the ranks that were replaced. It
// fails if the pool runs dry (the job would have to request new nodes
// from the scheduler instead, §III-C).
func (c *Comm) Repair(pool *SparePool) (*Comm, []int, error) {
	members := make([]*Proc, len(c.members))
	var replaced []int
	for i, m := range c.members {
		if !m.Dead() {
			members[i] = m
			continue
		}
		sp, ok := pool.Get()
		if !ok {
			return nil, nil, fmt.Errorf("mpi: spare pool exhausted repairing rank %d", i)
		}
		members[i] = sp
		replaced = append(replaced, i)
	}
	return c.world.NewComm(members), replaced, nil
}

// SparePool is a pool of idle pre-allocated processes used to rebuild
// communicators after failures.
type SparePool struct {
	mu   sync.Mutex
	free []*Proc
}

// NewSparePool creates a pool with n fresh processes from w.
func NewSparePool(w *World, n int) *SparePool {
	p := &SparePool{}
	for i := 0; i < n; i++ {
		p.free = append(p.free, w.NewProc())
	}
	return p
}

// Get takes a spare from the pool.
func (p *SparePool) Get() (*Proc, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) == 0 {
		return nil, false
	}
	sp := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return sp, true
}

// Put returns a process to the pool.
func (p *SparePool) Put(sp *Proc) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free = append(p.free, sp)
}

// Len returns the number of idle spares.
func (p *SparePool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// Members returns the communicator's processes in rank order.
func (c *Comm) Members() []*Proc {
	return append([]*Proc(nil), c.members...)
}

package mpi

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func makeComm(w *World, n int) (*Comm, []*Proc) {
	procs := make([]*Proc, n)
	for i := range procs {
		procs[i] = w.NewProc()
	}
	return w.NewComm(procs), procs
}

func TestSendRecvFIFO(t *testing.T) {
	w := NewWorld()
	comm, procs := makeComm(w, 2)
	done := make(chan error, 2)
	go func() {
		for i := 0; i < 10; i++ {
			if err := comm.Send(procs[0], 1, 7, i); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	go func() {
		for i := 0; i < 10; i++ {
			v, err := comm.Recv(procs[1], 0, 7)
			if err != nil {
				done <- err
				return
			}
			if v.(int) != i {
				done <- errors.New("out of order")
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestTagsIsolate(t *testing.T) {
	w := NewWorld()
	comm, procs := makeComm(w, 2)
	if err := comm.Send(procs[0], 1, 1, "tag1"); err != nil {
		t.Fatal(err)
	}
	if err := comm.Send(procs[0], 1, 2, "tag2"); err != nil {
		t.Fatal(err)
	}
	v, err := comm.Recv(procs[1], 0, 2)
	if err != nil || v.(string) != "tag2" {
		t.Fatalf("got %v %v", v, err)
	}
	v, err = comm.Recv(procs[1], 0, 1)
	if err != nil || v.(string) != "tag1" {
		t.Fatalf("got %v %v", v, err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	w := NewWorld()
	const n = 8
	comm, procs := makeComm(w, n)
	var before, after sync.WaitGroup
	before.Add(n)
	after.Add(n)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			before.Done()
			errs <- comm.Barrier(procs[i])
			after.Done()
		}(i)
	}
	before.Wait()
	after.Wait()
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	// A second barrier on the same comm works (phases advance).
	errs2 := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) { errs2 <- comm.Barrier(procs[i]) }(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errs2; err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllReduce(t *testing.T) {
	w := NewWorld()
	const n = 4
	comm, procs := makeComm(w, n)
	results := make(chan float64, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			v, err := comm.AllReduceFloat64(procs[i], float64(i+1), func(a, b float64) float64 { return a + b })
			if err != nil {
				t.Error(err)
			}
			results <- v
		}(i)
	}
	for i := 0; i < n; i++ {
		if v := <-results; v != 10 {
			t.Fatalf("sum = %f", v)
		}
	}
}

func TestBcast(t *testing.T) {
	w := NewWorld()
	const n = 4
	comm, procs := makeComm(w, n)
	results := make(chan any, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			var v any = nil
			if i == 2 {
				v = "payload"
			}
			got, err := comm.Bcast(procs[i], 2, v)
			if err != nil {
				t.Error(err)
			}
			results <- got
		}(i)
	}
	for i := 0; i < n; i++ {
		if got := <-results; got.(string) != "payload" {
			t.Fatalf("got %v", got)
		}
	}
}

func TestKillRevokesBarrier(t *testing.T) {
	w := NewWorld()
	const n = 4
	comm, procs := makeComm(w, n)
	errs := make(chan error, n-1)
	for i := 0; i < n-1; i++ {
		go func(i int) { errs <- comm.Barrier(procs[i]) }(i)
	}
	time.Sleep(10 * time.Millisecond) // let them block
	w.Kill(procs[n-1])
	for i := 0; i < n-1; i++ {
		if err := <-errs; !errors.Is(err, ErrRevoked) {
			t.Fatalf("err = %v, want ErrRevoked", err)
		}
	}
	if !comm.Revoked() {
		t.Fatal("comm not revoked")
	}
	if err := comm.Barrier(procs[0]); !errors.Is(err, ErrRevoked) {
		t.Fatalf("later barrier: %v", err)
	}
	failed := comm.FailedRanks()
	if len(failed) != 1 || failed[0] != n-1 {
		t.Fatalf("failed ranks = %v", failed)
	}
}

func TestRecvFromDeadPeerErrors(t *testing.T) {
	w := NewWorld()
	comm, procs := makeComm(w, 2)
	errs := make(chan error, 1)
	go func() {
		_, err := comm.Recv(procs[1], 0, 0)
		errs <- err
	}()
	time.Sleep(10 * time.Millisecond)
	w.Kill(procs[0])
	err := <-errs
	var pf ProcFailedError
	if !errors.As(err, &pf) && !errors.Is(err, ErrRevoked) {
		t.Fatalf("err = %v", err)
	}
}

func TestMessageBeforeDeathIsDelivered(t *testing.T) {
	w := NewWorld()
	comm, procs := makeComm(w, 2)
	if err := comm.Send(procs[0], 1, 0, "last words"); err != nil {
		t.Fatal(err)
	}
	w.Kill(procs[0])
	v, err := comm.Recv(procs[1], 0, 0)
	if err != nil || v.(string) != "last words" {
		t.Fatalf("got %v %v", v, err)
	}
}

func TestSendToDeadErrors(t *testing.T) {
	w := NewWorld()
	comm, procs := makeComm(w, 2)
	w.Kill(procs[1])
	err := comm.Send(procs[0], 1, 0, "x")
	var pf ProcFailedError
	if !errors.As(err, &pf) && !errors.Is(err, ErrRevoked) {
		t.Fatalf("err = %v", err)
	}
}

func TestDeadCallerErrors(t *testing.T) {
	w := NewWorld()
	comm, procs := makeComm(w, 2)
	w.Kill(procs[0])
	if err := comm.Send(procs[0], 1, 0, "x"); !errors.Is(err, ErrDead) && !errors.Is(err, ErrRevoked) {
		t.Fatalf("err = %v", err)
	}
}

func TestAgreeSurvivesFailure(t *testing.T) {
	w := NewWorld()
	const n = 4
	comm, procs := makeComm(w, n)
	w.Kill(procs[3])
	results := make(chan bool, n-1)
	for i := 0; i < n-1; i++ {
		go func(i int) {
			v, err := comm.Agree(procs[i], true)
			if err != nil {
				t.Error(err)
			}
			results <- v
		}(i)
	}
	for i := 0; i < n-1; i++ {
		if !<-results {
			t.Fatal("agreement false")
		}
	}
}

func TestAgreeFoldsAnd(t *testing.T) {
	w := NewWorld()
	const n = 3
	comm, procs := makeComm(w, n)
	results := make(chan bool, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			v, err := comm.Agree(procs[i], i != 1) // one dissent
			if err != nil {
				t.Error(err)
			}
			results <- v
		}(i)
	}
	for i := 0; i < n; i++ {
		if <-results {
			t.Fatal("agreement should be false")
		}
	}
}

func TestShrinkExcludesDead(t *testing.T) {
	w := NewWorld()
	comm, procs := makeComm(w, 4)
	w.Kill(procs[1])
	small := comm.Shrink()
	if small.Size() != 3 {
		t.Fatalf("shrunk size %d", small.Size())
	}
	if small.Rank(procs[0]) != 0 || small.Rank(procs[2]) != 1 || small.Rank(procs[3]) != 2 {
		t.Fatal("rank order not preserved")
	}
	if small.Revoked() {
		t.Fatal("new comm revoked")
	}
}

func TestRepairWithSpares(t *testing.T) {
	w := NewWorld()
	comm, procs := makeComm(w, 4)
	pool := NewSparePool(w, 2)
	w.Kill(procs[2])
	fixed, replaced, err := comm.Repair(pool)
	if err != nil {
		t.Fatal(err)
	}
	if len(replaced) != 1 || replaced[0] != 2 {
		t.Fatalf("replaced = %v", replaced)
	}
	if fixed.Size() != 4 || pool.Len() != 1 {
		t.Fatalf("size=%d spares=%d", fixed.Size(), pool.Len())
	}
	// The repaired comm is fully operational.
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		m := fixed.members[i]
		go func() { errs <- fixed.Barrier(m) }()
	}
	for i := 0; i < 4; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestRepairPoolExhausted(t *testing.T) {
	w := NewWorld()
	comm, procs := makeComm(w, 3)
	pool := NewSparePool(w, 0)
	w.Kill(procs[0])
	if _, _, err := comm.Repair(pool); err == nil {
		t.Fatal("repair with empty pool succeeded")
	}
}

func TestSparePoolGetPut(t *testing.T) {
	w := NewWorld()
	pool := NewSparePool(w, 2)
	a, ok := pool.Get()
	if !ok || a == nil {
		t.Fatal("get failed")
	}
	b, _ := pool.Get()
	if _, ok := pool.Get(); ok {
		t.Fatal("empty pool returned a spare")
	}
	pool.Put(a)
	pool.Put(b)
	if pool.Len() != 2 {
		t.Fatalf("len = %d", pool.Len())
	}
}

func TestBadRankArguments(t *testing.T) {
	w := NewWorld()
	comm, procs := makeComm(w, 2)
	if err := comm.Send(procs[0], 9, 0, "x"); err == nil {
		t.Fatal("bad dst accepted")
	}
	if _, err := comm.Recv(procs[0], -1, 0); err == nil {
		t.Fatal("bad src accepted")
	}
	if comm.Rank(w.NewProc()) != -1 {
		t.Fatal("foreign proc has a rank")
	}
}

// TestManyRanksStress runs a realistic pattern: barrier, allreduce,
// neighbour exchange, repeated, with GOMAXPROCS-level parallelism.
func TestManyRanksStress(t *testing.T) {
	w := NewWorld()
	const n = 16
	comm, procs := makeComm(w, n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			p := procs[rank]
			for step := 0; step < 20; step++ {
				if err := comm.Barrier(p); err != nil {
					errs <- err
					return
				}
				right := (rank + 1) % n
				left := (rank + n - 1) % n
				if err := comm.Send(p, right, 5, rank); err != nil {
					errs <- err
					return
				}
				v, err := comm.Recv(p, left, 5)
				if err != nil {
					errs <- err
					return
				}
				if v.(int) != left {
					errs <- errors.New("wrong halo value")
					return
				}
				sum, err := comm.AllReduceFloat64(p, 1, func(a, b float64) float64 { return a + b })
				if err != nil {
					errs <- err
					return
				}
				if sum != n {
					errs <- errors.New("wrong reduce value")
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestSelfSendRecv(t *testing.T) {
	w := NewWorld()
	comm, procs := makeComm(w, 2)
	if err := comm.Send(procs[0], 0, 1, "note to self"); err != nil {
		t.Fatal(err)
	}
	v, err := comm.Recv(procs[0], 0, 1)
	if err != nil || v.(string) != "note to self" {
		t.Fatalf("self message: %v %v", v, err)
	}
}

func TestSingleMemberCollectives(t *testing.T) {
	w := NewWorld()
	comm, procs := makeComm(w, 1)
	if err := comm.Barrier(procs[0]); err != nil {
		t.Fatal(err)
	}
	sum, err := comm.AllReduceFloat64(procs[0], 7, func(a, b float64) float64 { return a + b })
	if err != nil || sum != 7 {
		t.Fatalf("reduce = %f %v", sum, err)
	}
	v, err := comm.Bcast(procs[0], 0, "solo")
	if err != nil || v.(string) != "solo" {
		t.Fatalf("bcast = %v %v", v, err)
	}
	ok, err := comm.Agree(procs[0], true)
	if err != nil || !ok {
		t.Fatalf("agree = %v %v", ok, err)
	}
}

func TestCollectiveDoubleEntryDetected(t *testing.T) {
	w := NewWorld()
	comm, procs := makeComm(w, 2)
	done := make(chan error, 1)
	go func() { done <- comm.Barrier(procs[1]) }()
	time.Sleep(10 * time.Millisecond)
	// procs[1] is parked in the phase; a second entry by the same proc
	// (API misuse) must error, not corrupt the phase.
	if _, err := comm.collective(procs[1], func(acc any) any { return nil }); err == nil {
		t.Fatal("double entry accepted")
	}
	if err := comm.Barrier(procs[0]); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestAgreeArrivedThenDies(t *testing.T) {
	w := NewWorld()
	comm, procs := makeComm(w, 3)
	results := make(chan bool, 2)
	// Rank 2 arrives first, then dies while others are yet to arrive.
	go func() {
		v, err := comm.Agree(procs[2], true)
		if err == nil {
			results <- v
		}
	}()
	time.Sleep(10 * time.Millisecond)
	w.Kill(procs[2])
	for i := 0; i < 2; i++ {
		go func(i int) {
			v, err := comm.Agree(procs[i], true)
			if err != nil {
				t.Error(err)
			}
			results <- v
		}(i)
	}
	for i := 0; i < 2; i++ {
		if !<-results {
			t.Fatal("agreement false")
		}
	}
}

func TestBcastRevokedMidPhase(t *testing.T) {
	w := NewWorld()
	comm, procs := makeComm(w, 3)
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			_, err := comm.Bcast(procs[i], 0, "v")
			errs <- err
		}(i)
	}
	time.Sleep(10 * time.Millisecond)
	w.Kill(procs[2]) // never arrives
	for i := 0; i < 2; i++ {
		if err := <-errs; !errors.Is(err, ErrRevoked) {
			t.Fatalf("err = %v", err)
		}
	}
}

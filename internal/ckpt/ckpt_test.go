package ckpt

import (
	"testing"

	"gospaces/internal/pfs"
)

type rankState struct {
	LastTS int64
	Blob   []byte
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := NewSaver(pfs.NewStore())
	in := rankState{LastTS: 7, Blob: []byte{1, 2, 3}}
	if err := s.Save("sim", 3, in); err != nil {
		t.Fatal(err)
	}
	var out rankState
	ok, err := s.Load("sim", 3, &out)
	if err != nil || !ok {
		t.Fatalf("load: %v %v", ok, err)
	}
	if out.LastTS != 7 || len(out.Blob) != 3 {
		t.Fatalf("out = %+v", out)
	}
}

func TestLoadMissing(t *testing.T) {
	s := NewSaver(pfs.NewStore())
	var out rankState
	ok, err := s.Load("sim", 0, &out)
	if err != nil || ok {
		t.Fatalf("missing load: %v %v", ok, err)
	}
}

func TestSaveReplaces(t *testing.T) {
	s := NewSaver(pfs.NewStore())
	_ = s.Save("sim", 0, rankState{LastTS: 4})
	_ = s.Save("sim", 0, rankState{LastTS: 8})
	var out rankState
	if _, err := s.Load("sim", 0, &out); err != nil {
		t.Fatal(err)
	}
	if out.LastTS != 8 {
		t.Fatalf("LastTS = %d", out.LastTS)
	}
}

func TestDrop(t *testing.T) {
	s := NewSaver(pfs.NewStore())
	_ = s.Save("sim", 0, rankState{LastTS: 1})
	s.Drop("sim", 0)
	var out rankState
	if ok, _ := s.Load("sim", 0, &out); ok {
		t.Fatal("checkpoint survived drop")
	}
}

func TestRanksIsolated(t *testing.T) {
	s := NewSaver(pfs.NewStore())
	_ = s.Save("sim", 0, rankState{LastTS: 1})
	_ = s.Save("sim", 1, rankState{LastTS: 2})
	_ = s.Save("ana", 0, rankState{LastTS: 3})
	var out rankState
	_, _ = s.Load("ana", 0, &out)
	if out.LastTS != 3 {
		t.Fatalf("ana/0 = %d", out.LastTS)
	}
}

func TestSchemeProperties(t *testing.T) {
	if Coordinated.Logged() || Individual.Logged() {
		t.Fatal("Co/In should not require logging")
	}
	if !Uncoordinated.Logged() || !Hybrid.Logged() {
		t.Fatal("Un/Hy require logging")
	}
	names := map[Scheme]string{
		Coordinated: "coordinated", Uncoordinated: "uncoordinated",
		Individual: "individual", Hybrid: "hybrid",
	}
	for s, n := range names {
		if s.String() != n {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
}

func TestProactivePolicy(t *testing.T) {
	p := ProactivePolicy{Period: 4, Predictions: map[int64]bool{7: true}}
	if !p.ShouldCheckpoint(4) || !p.ShouldCheckpoint(8) {
		t.Fatal("periodic checkpoints missed")
	}
	if p.ShouldCheckpoint(5) {
		t.Fatal("spurious checkpoint")
	}
	// Failure predicted at ts 7: checkpoint right after ts 6.
	if !p.ShouldCheckpoint(6) {
		t.Fatal("proactive checkpoint missed")
	}
	// No period at all: only predictions trigger.
	p2 := ProactivePolicy{Predictions: map[int64]bool{3: true}}
	if p2.ShouldCheckpoint(4) || !p2.ShouldCheckpoint(2) {
		t.Fatal("prediction-only policy wrong")
	}
}

func TestMultiLevelSaveLevels(t *testing.T) {
	l1, l2 := pfs.NewStore(), pfs.NewStore()
	m, err := NewMultiLevel(l1, l2, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantLevels := []int{1, 1, 2, 1, 1, 2}
	for i, want := range wantLevels {
		lvl, err := m.Save("sim", 0, rankState{LastTS: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if lvl != want {
			t.Fatalf("save %d went to level %d, want %d", i, lvl, want)
		}
	}
}

func TestMultiLevelLoadPrefersL1(t *testing.T) {
	l1, l2 := pfs.NewStore(), pfs.NewStore()
	m, _ := NewMultiLevel(l1, l2, 2)
	_, _ = m.Save("sim", 0, rankState{LastTS: 1}) // L1 only
	_, _ = m.Save("sim", 0, rankState{LastTS: 2}) // L1 + L2
	_, _ = m.Save("sim", 0, rankState{LastTS: 3}) // L1 only
	var out rankState
	lvl, err := m.Load("sim", 0, &out)
	if err != nil || lvl != 1 || out.LastTS != 3 {
		t.Fatalf("load = level %d state %+v err %v", lvl, out, err)
	}
	// Node loss: L1 gone, recover older state from L2.
	m.InvalidateL1("sim", 1)
	lvl, err = m.Load("sim", 0, &out)
	if err != nil || lvl != 2 || out.LastTS != 2 {
		t.Fatalf("post-loss load = level %d state %+v err %v", lvl, out, err)
	}
}

func TestMultiLevelNoCheckpoint(t *testing.T) {
	m, _ := NewMultiLevel(pfs.NewStore(), pfs.NewStore(), 2)
	var out rankState
	lvl, err := m.Load("sim", 0, &out)
	if err != nil || lvl != 0 {
		t.Fatalf("empty load = %d %v", lvl, err)
	}
}

func TestMultiLevelValidation(t *testing.T) {
	if _, err := NewMultiLevel(pfs.NewStore(), pfs.NewStore(), 0); err == nil {
		t.Fatal("l2Every=0 accepted")
	}
}

package ckpt

import (
	"sync"
	"testing"

	"gospaces/internal/pfs"
)

type rankState struct {
	LastTS int64
	Blob   []byte
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := NewSaver(pfs.NewStore())
	in := rankState{LastTS: 7, Blob: []byte{1, 2, 3}}
	if err := s.Save("sim", 3, in); err != nil {
		t.Fatal(err)
	}
	var out rankState
	ok, err := s.Load("sim", 3, &out)
	if err != nil || !ok {
		t.Fatalf("load: %v %v", ok, err)
	}
	if out.LastTS != 7 || len(out.Blob) != 3 {
		t.Fatalf("out = %+v", out)
	}
}

func TestLoadMissing(t *testing.T) {
	s := NewSaver(pfs.NewStore())
	var out rankState
	ok, err := s.Load("sim", 0, &out)
	if err != nil || ok {
		t.Fatalf("missing load: %v %v", ok, err)
	}
}

func TestSaveReplaces(t *testing.T) {
	s := NewSaver(pfs.NewStore())
	_ = s.Save("sim", 0, rankState{LastTS: 4})
	_ = s.Save("sim", 0, rankState{LastTS: 8})
	var out rankState
	if _, err := s.Load("sim", 0, &out); err != nil {
		t.Fatal(err)
	}
	if out.LastTS != 8 {
		t.Fatalf("LastTS = %d", out.LastTS)
	}
}

func TestDrop(t *testing.T) {
	s := NewSaver(pfs.NewStore())
	_ = s.Save("sim", 0, rankState{LastTS: 1})
	s.Drop("sim", 0)
	var out rankState
	if ok, _ := s.Load("sim", 0, &out); ok {
		t.Fatal("checkpoint survived drop")
	}
}

func TestRanksIsolated(t *testing.T) {
	s := NewSaver(pfs.NewStore())
	_ = s.Save("sim", 0, rankState{LastTS: 1})
	_ = s.Save("sim", 1, rankState{LastTS: 2})
	_ = s.Save("ana", 0, rankState{LastTS: 3})
	var out rankState
	_, _ = s.Load("ana", 0, &out)
	if out.LastTS != 3 {
		t.Fatalf("ana/0 = %d", out.LastTS)
	}
}

func TestSchemeProperties(t *testing.T) {
	if Coordinated.Logged() || Individual.Logged() {
		t.Fatal("Co/In should not require logging")
	}
	if !Uncoordinated.Logged() || !Hybrid.Logged() {
		t.Fatal("Un/Hy require logging")
	}
	names := map[Scheme]string{
		Coordinated: "coordinated", Uncoordinated: "uncoordinated",
		Individual: "individual", Hybrid: "hybrid",
	}
	for s, n := range names {
		if s.String() != n {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
}

func TestProactivePolicy(t *testing.T) {
	p := ProactivePolicy{Period: 4, Predictions: map[int64]bool{7: true}}
	if !p.ShouldCheckpoint(4) || !p.ShouldCheckpoint(8) {
		t.Fatal("periodic checkpoints missed")
	}
	if p.ShouldCheckpoint(5) {
		t.Fatal("spurious checkpoint")
	}
	// Failure predicted at ts 7: checkpoint right after ts 6.
	if !p.ShouldCheckpoint(6) {
		t.Fatal("proactive checkpoint missed")
	}
	// No period at all: only predictions trigger.
	p2 := ProactivePolicy{Predictions: map[int64]bool{3: true}}
	if p2.ShouldCheckpoint(4) || !p2.ShouldCheckpoint(2) {
		t.Fatal("prediction-only policy wrong")
	}
}

func TestMultiLevelSaveLevels(t *testing.T) {
	l1, l2 := pfs.NewStore(), pfs.NewStore()
	m, err := NewMultiLevel(l1, l2, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantLevels := []int{1, 1, 2, 1, 1, 2}
	for i, want := range wantLevels {
		lvl, err := m.Save("sim", 0, rankState{LastTS: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if lvl != want {
			t.Fatalf("save %d went to level %d, want %d", i, lvl, want)
		}
	}
}

func TestMultiLevelLoadPrefersL1(t *testing.T) {
	l1, l2 := pfs.NewStore(), pfs.NewStore()
	m, _ := NewMultiLevel(l1, l2, 2)
	_, _ = m.Save("sim", 0, rankState{LastTS: 1}) // L1 only
	_, _ = m.Save("sim", 0, rankState{LastTS: 2}) // L1 + L2
	_, _ = m.Save("sim", 0, rankState{LastTS: 3}) // L1 only
	var out rankState
	lvl, err := m.Load("sim", 0, &out)
	if err != nil || lvl != 1 || out.LastTS != 3 {
		t.Fatalf("load = level %d state %+v err %v", lvl, out, err)
	}
	// Node loss: L1 gone, recover older state from L2.
	m.InvalidateL1("sim", 1)
	lvl, err = m.Load("sim", 0, &out)
	if err != nil || lvl != 2 || out.LastTS != 2 {
		t.Fatalf("post-loss load = level %d state %+v err %v", lvl, out, err)
	}
}

func TestMultiLevelNoCheckpoint(t *testing.T) {
	m, _ := NewMultiLevel(pfs.NewStore(), pfs.NewStore(), 2)
	var out rankState
	lvl, err := m.Load("sim", 0, &out)
	if err != nil || lvl != 0 {
		t.Fatalf("empty load = %d %v", lvl, err)
	}
}

func TestMultiLevelValidation(t *testing.T) {
	if _, err := NewMultiLevel(pfs.NewStore(), pfs.NewStore(), 0); err == nil {
		t.Fatal("l2Every=0 accepted")
	}
}

// TestLoadFallsBackOnTornWrite: a writer dying mid-checkpoint truncates
// the in-flight generation; Load must verify the CRC, reject the torn
// record, and restore the previous committed checkpoint. The partial
// cases tear the record at arbitrary byte offsets — inside the magic,
// the header, the CRC, and the payload — not just the halfway cut.
func TestLoadFallsBackOnTornWrite(t *testing.T) {
	cases := []struct {
		name string
		arm  func(store *pfs.Store)
	}{
		{"truncate", func(st *pfs.Store) { st.FailNextWrite(pfs.FaultTruncate) }},
		{"bitflip", func(st *pfs.Store) { st.FailNextWrite(pfs.FaultBitFlip) }},
		{"partial@0", func(st *pfs.Store) { st.FailNextWriteAt(pfs.FaultPartial, 0) }},
		{"partial@2", func(st *pfs.Store) { st.FailNextWriteAt(pfs.FaultPartial, 2) }},   // mid-magic
		{"partial@11", func(st *pfs.Store) { st.FailNextWriteAt(pfs.FaultPartial, 11) }}, // mid-header
		{"partial@22", func(st *pfs.Store) { st.FailNextWriteAt(pfs.FaultPartial, 22) }}, // mid-CRC
		{"partial@30", func(st *pfs.Store) { st.FailNextWriteAt(pfs.FaultPartial, 30) }}, // mid-payload
		{"bitflip@5", func(st *pfs.Store) { st.FailNextWriteAt(pfs.FaultBitFlip, 5) }},   // header seq
		{"bitflip@21", func(st *pfs.Store) { st.FailNextWriteAt(pfs.FaultBitFlip, 21) }}, // CRC itself
	}
	for _, tc := range cases {
		store := pfs.NewStore()
		s := NewSaver(store)
		if err := s.Save("sim", 0, rankState{LastTS: 4}); err != nil {
			t.Fatal(err)
		}
		tc.arm(store)
		if err := s.Save("sim", 0, rankState{LastTS: 8}); err != nil {
			t.Fatal(err)
		}
		var out rankState
		ok, err := s.Load("sim", 0, &out)
		if err != nil || !ok {
			t.Fatalf("%s: load after torn write: %v %v", tc.name, ok, err)
		}
		if out.LastTS != 4 {
			t.Fatalf("%s: LastTS = %d, want the surviving checkpoint 4", tc.name, out.LastTS)
		}
		// The next save lands cleanly and replaces the damaged record.
		if err := s.Save("sim", 0, rankState{LastTS: 12}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Load("sim", 0, &out); err != nil || out.LastTS != 12 {
			t.Fatalf("%s: post-repair load = %+v, %v", tc.name, out, err)
		}
	}
}

// TestSaveSurvivesENOSPC: a full PFS fails the save with an error, and
// the previously committed checkpoint remains loadable.
func TestSaveSurvivesENOSPC(t *testing.T) {
	store := pfs.NewStore()
	s := NewSaver(store)
	if err := s.Save("sim", 0, rankState{LastTS: 4}); err != nil {
		t.Fatal(err)
	}
	store.FailNextWrite(pfs.FaultENOSPC)
	if err := s.Save("sim", 0, rankState{LastTS: 8}); err == nil {
		t.Fatal("ENOSPC save reported success")
	}
	var out rankState
	ok, err := s.Load("sim", 0, &out)
	if err != nil || !ok || out.LastTS != 4 {
		t.Fatalf("load after ENOSPC = %v %v %+v", ok, err, out)
	}
}

// TestLoadSurvivesCorruptMarker: with the commit marker unreadable, the
// freshest CRC-verified generation wins.
func TestLoadSurvivesCorruptMarker(t *testing.T) {
	store := pfs.NewStore()
	s := NewSaver(store)
	_ = s.Save("sim", 0, rankState{LastTS: 4})
	_ = s.Save("sim", 0, rankState{LastTS: 8})
	store.Write(curKey(Key("sim", 0)), []byte{9, 9})
	var out rankState
	ok, err := s.Load("sim", 0, &out)
	if err != nil || !ok || out.LastTS != 8 {
		t.Fatalf("load = %v %v %+v, want freshest generation 8", ok, err, out)
	}
}

// TestLoadAllGenerationsCorrupt: when every record fails verification,
// Load reports an error rather than silently restarting from scratch.
func TestLoadAllGenerationsCorrupt(t *testing.T) {
	store := pfs.NewStore()
	s := NewSaver(store)
	_ = s.Save("sim", 0, rankState{LastTS: 4})
	base := Key("sim", 0)
	store.Write(genKey(base, 0), []byte("junk"))
	store.Write(genKey(base, 1), []byte("junk"))
	var out rankState
	if ok, err := s.Load("sim", 0, &out); err == nil || ok {
		t.Fatalf("corrupt load = %v %v, want error", ok, err)
	}
}

// TestSavePreservesCommittedGeneration: Save must never overwrite the
// committed generation, so a tear during the write costs at most the
// in-flight checkpoint.
func TestSavePreservesCommittedGeneration(t *testing.T) {
	store := pfs.NewStore()
	s := NewSaver(store)
	var out rankState
	for ts := int64(1); ts <= 5; ts++ {
		store.FailNextWrite(pfs.FaultTruncate)
		if err := s.Save("sim", 0, rankState{LastTS: ts * 10}); err != nil {
			t.Fatal(err)
		}
		ok, err := s.Load("sim", 0, &out)
		if ts == 1 {
			// Very first checkpoint torn: nothing valid exists yet.
			if err == nil && ok {
				t.Fatalf("ts %d: torn first checkpoint loaded: %+v", ts, out)
			}
		} else if err != nil || !ok || out.LastTS != (ts-1)*10 {
			t.Fatalf("ts %d: load = %v %v %+v, want previous checkpoint %d", ts, ok, err, out, (ts-1)*10)
		}
		// Repair: a clean save re-establishes the current state.
		if err := s.Save("sim", 0, rankState{LastTS: ts * 10}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Load("sim", 0, &out); err != nil || out.LastTS != ts*10 {
			t.Fatalf("ts %d: post-repair load = %+v, %v", ts, out, err)
		}
	}
}

// TestMultiLevelConcurrentSaves is the regression test for the counts
// data race: many ranks checkpoint through one MultiLevel concurrently
// (run under -race), and every rank's L2 cadence must stay exact.
func TestMultiLevelConcurrentSaves(t *testing.T) {
	l1, l2 := pfs.NewStore(), pfs.NewStore()
	m, err := NewMultiLevel(l1, l2, 3)
	if err != nil {
		t.Fatal(err)
	}
	const ranks, saves = 8, 9
	var wg sync.WaitGroup
	levels := make([][]int, ranks)
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < saves; i++ {
				lvl, err := m.Save("sim", r, rankState{LastTS: int64(i)})
				if err != nil {
					t.Error(err)
					return
				}
				levels[r] = append(levels[r], lvl)
			}
		}(r)
	}
	wg.Wait()
	for r := 0; r < ranks; r++ {
		for i, lvl := range levels[r] {
			want := 1
			if (i+1)%3 == 0 {
				want = 2
			}
			if lvl != want {
				t.Fatalf("rank %d save %d went to level %d, want %d", r, i, lvl, want)
			}
		}
	}
}

package ckpt

import (
	"bytes"
	"testing"
)

// FuzzRecordRoundTrip seals arbitrary payloads and verifies OpenRecord
// returns them byte-exact — and that any single-byte mutation of the
// sealed record is rejected instead of decoding to different data.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add(uint64(0), []byte{})
	f.Add(uint64(1), []byte("payload"))
	f.Add(uint64(1<<63), bytes.Repeat([]byte{0xA5}, 64))
	f.Fuzz(func(t *testing.T, seq uint64, payload []byte) {
		rec := SealRecord(seq, payload)
		gotSeq, gotPayload, ok := OpenRecord(rec)
		if !ok {
			t.Fatalf("sealed record rejected (seq=%d len=%d)", seq, len(payload))
		}
		if gotSeq != seq || !bytes.Equal(gotPayload, payload) {
			t.Fatalf("round trip: seq %d->%d, payload %d->%d bytes", seq, gotSeq, len(payload), len(gotPayload))
		}
		// Flip one byte anywhere in the frame: the record must no
		// longer verify with different contents. (A flip may leave the
		// record valid only if it decodes to identical seq+payload,
		// which a single bit flip cannot.)
		if len(rec) > 0 {
			i := int(seq % uint64(len(rec)))
			mut := append([]byte(nil), rec...)
			mut[i] ^= 0x01
			if s2, p2, ok2 := OpenRecord(mut); ok2 && (s2 != seq || !bytes.Equal(p2, payload)) {
				t.Fatalf("bit flip at %d accepted with altered contents", i)
			}
		}
		// Truncation at any point must be rejected.
		cut := int(seq % uint64(len(rec)+1))
		if cut < len(rec) {
			if _, _, ok := OpenRecord(rec[:cut]); ok {
				t.Fatalf("truncated record (%d of %d bytes) accepted", cut, len(rec))
			}
		}
	})
}

// FuzzDecodeRecord throws arbitrary bytes at OpenRecord: it must never
// panic, and anything it accepts must re-seal to the identical frame
// (so a duplicated or spliced generation can't smuggle altered data).
func FuzzDecodeRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("CKP1"))
	f.Add(SealRecord(7, []byte("good")))
	f.Add(append(SealRecord(7, []byte("good")), SealRecord(7, []byte("good"))...)) // duplicated generation
	f.Fuzz(func(t *testing.T, rec []byte) {
		seq, payload, ok := OpenRecord(rec)
		if !ok {
			return
		}
		if !bytes.Equal(SealRecord(seq, payload), rec) {
			t.Fatalf("accepted record is not canonical (seq=%d, %d payload bytes)", seq, len(payload))
		}
	})
}

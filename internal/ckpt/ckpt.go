// Package ckpt implements application-level checkpoint/restart for
// workflow components: serializing rank state to reliable storage
// (internal/pfs), the four workflow-level schemes the paper evaluates
// (global coordinated, uncoordinated, individual, hybrid — §IV-A), and
// the extensions its future-work section names: proactive checkpointing
// and multi-level checkpointing.
package ckpt

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"gospaces/internal/pfs"
)

// Scheme selects the workflow-level fault-tolerance scheme (the Co /
// Un / In / Hy bars of Figure 9/10).
type Scheme int

// Workflow-level fault-tolerance schemes.
const (
	// Coordinated checkpoints all components together and rolls the
	// whole workflow back on any failure (the paper's baseline, "Co").
	Coordinated Scheme = iota
	// Uncoordinated checkpoints components independently; staging data
	// logging keeps them consistent across rollbacks ("Un").
	Uncoordinated
	// Individual checkpoints components independently WITHOUT data
	// logging: the theoretical-optimal lower bound on time, which does
	// not guarantee correct results ("In").
	Individual
	// Hybrid protects some components with process replication and the
	// rest with C/R, composed through data logging ("Hy").
	Hybrid
)

func (s Scheme) String() string {
	switch s {
	case Coordinated:
		return "coordinated"
	case Uncoordinated:
		return "uncoordinated"
	case Individual:
		return "individual"
	case Hybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// Logged reports whether the scheme requires the staging data-logging
// path (PutWithLog/GetWithLog).
func (s Scheme) Logged() bool { return s == Uncoordinated || s == Hybrid }

// Saver persists per-rank component state in a checkpoint store.
type Saver struct {
	store *pfs.Store
}

// NewSaver wraps a checkpoint store.
func NewSaver(store *pfs.Store) *Saver { return &Saver{store: store} }

// Key names rank's checkpoint object.
func Key(component string, rank int) string {
	return fmt.Sprintf("ckpt/%s/%d", component, rank)
}

// Save serializes state (gob) as the rank's current checkpoint,
// replacing the previous one.
func (s *Saver) Save(component string, rank int, state any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(state); err != nil {
		return fmt.Errorf("ckpt: encode %s/%d: %w", component, rank, err)
	}
	s.store.Write(Key(component, rank), buf.Bytes())
	return nil
}

// Load restores the rank's last checkpoint into out, reporting whether
// one existed.
func (s *Saver) Load(component string, rank int, out any) (bool, error) {
	data, ok := s.store.Read(Key(component, rank))
	if !ok {
		return false, nil
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(out); err != nil {
		return false, fmt.Errorf("ckpt: decode %s/%d: %w", component, rank, err)
	}
	return true, nil
}

// Drop removes the rank's checkpoint.
func (s *Saver) Drop(component string, rank int) {
	s.store.Delete(Key(component, rank))
}

// ---------------------------------------------------------------------
// Proactive checkpointing (Bouguerra et al., IPDPS'13): when a failure
// predictor warns of an imminent failure, take an extra checkpoint just
// before it instead of losing the whole period.

// ProactivePolicy decides checkpoint points from a base period plus
// failure predictions.
type ProactivePolicy struct {
	// Period is the preventive checkpoint period in timesteps.
	Period int
	// Predictions are timesteps at which failures are predicted; a
	// proactive checkpoint is taken at the step before each.
	Predictions map[int64]bool
}

// ShouldCheckpoint reports whether a checkpoint is due after completing
// timestep ts.
func (p ProactivePolicy) ShouldCheckpoint(ts int64) bool {
	if p.Period > 0 && ts%int64(p.Period) == 0 {
		return true
	}
	return p.Predictions[ts+1]
}

// ---------------------------------------------------------------------
// Multi-level checkpointing (Moody et al., SC'10): frequent cheap
// checkpoints to node-local storage (L1), periodic checkpoints to the
// PFS (L2). L1 survives process failures but not node loss.

// MultiLevel writes checkpoints alternately to a fast local store and a
// durable global store.
type MultiLevel struct {
	l1, l2 *Saver
	// L2Every directs every n-th checkpoint to the durable level.
	L2Every int
	counts  map[string]int
}

// NewMultiLevel builds a two-level saver. l1 is the fast, volatile
// level; l2 the durable one. l2Every must be >= 1.
func NewMultiLevel(l1, l2 *pfs.Store, l2Every int) (*MultiLevel, error) {
	if l2Every < 1 {
		return nil, fmt.Errorf("ckpt: l2Every must be >= 1, got %d", l2Every)
	}
	return &MultiLevel{
		l1:      NewSaver(l1),
		l2:      NewSaver(l2),
		L2Every: l2Every,
		counts:  make(map[string]int),
	}, nil
}

// Save writes the checkpoint to L1, and additionally to L2 on every
// L2Every-th call for the same rank.
func (m *MultiLevel) Save(component string, rank int, state any) (level int, err error) {
	k := Key(component, rank)
	m.counts[k]++
	if err := m.l1.Save(component, rank, state); err != nil {
		return 0, err
	}
	if m.counts[k]%m.L2Every == 0 {
		if err := m.l2.Save(component, rank, state); err != nil {
			return 0, err
		}
		return 2, nil
	}
	return 1, nil
}

// Load restores from L1 if present, else from L2. It returns the level
// used (0 when no checkpoint exists).
func (m *MultiLevel) Load(component string, rank int, out any) (level int, err error) {
	ok, err := m.l1.Load(component, rank, out)
	if err != nil {
		return 0, err
	}
	if ok {
		return 1, nil
	}
	ok, err = m.l2.Load(component, rank, out)
	if err != nil {
		return 0, err
	}
	if ok {
		return 2, nil
	}
	return 0, nil
}

// InvalidateL1 simulates node loss: all L1 checkpoints of the component
// vanish, forcing recovery from the durable level.
func (m *MultiLevel) InvalidateL1(component string, ranks int) {
	for r := 0; r < ranks; r++ {
		m.l1.Drop(component, r)
	}
}

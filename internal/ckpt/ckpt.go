// Package ckpt implements application-level checkpoint/restart for
// workflow components: serializing rank state to reliable storage
// (internal/pfs), the four workflow-level schemes the paper evaluates
// (global coordinated, uncoordinated, individual, hybrid — §IV-A), and
// the extensions its future-work section names: proactive checkpointing
// and multi-level checkpointing.
package ckpt

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"sync"

	"gospaces/internal/pfs"
)

// Scheme selects the workflow-level fault-tolerance scheme (the Co /
// Un / In / Hy bars of Figure 9/10).
type Scheme int

// Workflow-level fault-tolerance schemes.
const (
	// Coordinated checkpoints all components together and rolls the
	// whole workflow back on any failure (the paper's baseline, "Co").
	Coordinated Scheme = iota
	// Uncoordinated checkpoints components independently; staging data
	// logging keeps them consistent across rollbacks ("Un").
	Uncoordinated
	// Individual checkpoints components independently WITHOUT data
	// logging: the theoretical-optimal lower bound on time, which does
	// not guarantee correct results ("In").
	Individual
	// Hybrid protects some components with process replication and the
	// rest with C/R, composed through data logging ("Hy").
	Hybrid
)

func (s Scheme) String() string {
	switch s {
	case Coordinated:
		return "coordinated"
	case Uncoordinated:
		return "uncoordinated"
	case Individual:
		return "individual"
	case Hybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// Logged reports whether the scheme requires the staging data-logging
// path (PutWithLog/GetWithLog).
func (s Scheme) Logged() bool { return s == Uncoordinated || s == Hybrid }

// Saver persists per-rank component state in a checkpoint store.
//
// Each rank's checkpoint is kept as a CRC-checksummed record in one of
// two alternating generations plus a tiny commit marker, so a writer
// dying mid-checkpoint (torn write) or silent media corruption never
// costs more than one checkpoint period: Save writes the full record
// into the non-committed generation and only then flips the marker (the
// atomic commit point), and Load falls back to the surviving generation
// when the marked one fails verification.
type Saver struct {
	store *pfs.Store
}

// NewSaver wraps a checkpoint store.
func NewSaver(store *pfs.Store) *Saver { return &Saver{store: store} }

// Key names rank's checkpoint object prefix; the two generation records
// live at <key>/g0 and <key>/g1, the commit marker at <key>/cur.
func Key(component string, rank int) string {
	return fmt.Sprintf("ckpt/%s/%d", component, rank)
}

func genKey(base string, g int) string { return fmt.Sprintf("%s/g%d", base, g) }
func curKey(base string) string        { return base + "/cur" }

var crcTable = crc32.MakeTable(crc32.Castagnoli)

const recMagic = "CKP1"

// SealRecord frames a checkpoint or spill payload: magic, sequence
// number, payload length, CRC32-C over header+payload, payload. Any
// truncation or bit flip fails verification in OpenRecord. The tier
// layer (internal/tier) reuses this exact framing for spilled object
// records, so one codec — and one fuzz corpus — covers both.
func SealRecord(seq uint64, payload []byte) []byte {
	rec := make([]byte, 0, 24+len(payload))
	rec = append(rec, recMagic...)
	var hdr [16]byte
	binary.BigEndian.PutUint64(hdr[0:8], seq)
	binary.BigEndian.PutUint64(hdr[8:16], uint64(len(payload)))
	rec = append(rec, hdr[:]...)
	crc := crc32.Checksum(hdr[:], crcTable)
	crc = crc32.Update(crc, crcTable, payload)
	var c [4]byte
	binary.BigEndian.PutUint32(c[:], crc)
	rec = append(rec, c[:]...)
	return append(rec, payload...)
}

// OpenRecord verifies and unframes one generation record.
func OpenRecord(rec []byte) (seq uint64, payload []byte, ok bool) {
	if len(rec) < 24 || string(rec[:4]) != recMagic {
		return 0, nil, false
	}
	hdr := rec[4:20]
	seq = binary.BigEndian.Uint64(hdr[0:8])
	want := binary.BigEndian.Uint32(rec[20:24])
	payload = rec[24:]
	if uint64(len(payload)) != binary.BigEndian.Uint64(hdr[8:16]) {
		return 0, nil, false
	}
	crc := crc32.Checksum(hdr, crcTable)
	crc = crc32.Update(crc, crcTable, payload)
	if crc != want {
		return 0, nil, false
	}
	return seq, payload, true
}

// gens reads and verifies both generation records of base.
func (s *Saver) gens(base string) (seqs [2]uint64, payloads [2][]byte, valid [2]bool, present bool) {
	for g := 0; g < 2; g++ {
		rec, ok := s.store.Read(genKey(base, g))
		if !ok {
			continue
		}
		present = true
		seqs[g], payloads[g], valid[g] = OpenRecord(rec)
	}
	return
}

// committedGen reads the commit marker (-1 when missing or corrupt).
func (s *Saver) committedGen(base string) int {
	m, ok := s.store.Read(curKey(base))
	if !ok || len(m) != 1 || m[0] > 1 {
		return -1
	}
	return int(m[0])
}

// Save serializes state (gob) as the rank's current checkpoint. The
// record goes to the generation the commit marker does NOT point at, so
// the committed checkpoint stays intact until the marker flip commits
// the new one.
func (s *Saver) Save(component string, rank int, state any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(state); err != nil {
		return fmt.Errorf("ckpt: encode %s/%d: %w", component, rank, err)
	}
	base := Key(component, rank)
	seqs, _, valid, _ := s.gens(base)
	target := 0
	switch cur := s.committedGen(base); {
	case cur >= 0:
		target = 1 - cur
	case valid[0] && !valid[1]:
		target = 1
	case valid[0] && valid[1] && seqs[1] < seqs[0]:
		target = 1
	}
	seq := uint64(1)
	for g := 0; g < 2; g++ {
		if valid[g] && seqs[g] >= seq {
			seq = seqs[g] + 1
		}
	}
	if err := s.store.Write(genKey(base, target), SealRecord(seq, buf.Bytes())); err != nil {
		return fmt.Errorf("ckpt: write %s/%d: %w", component, rank, err)
	}
	if err := s.store.Write(curKey(base), []byte{byte(target)}); err != nil {
		return fmt.Errorf("ckpt: commit %s/%d: %w", component, rank, err)
	}
	return nil
}

// Load restores the rank's last checkpoint into out, reporting whether
// one existed. The committed generation is tried first; a torn or
// corrupt record falls back to the other generation. An error is
// returned only when records exist but none verifies.
func (s *Saver) Load(component string, rank int, out any) (bool, error) {
	base := Key(component, rank)
	seqs, payloads, valid, present := s.gens(base)
	if !present {
		return false, nil
	}
	order := []int{0, 1}
	if cur := s.committedGen(base); cur >= 0 {
		order = []int{cur, 1 - cur}
	} else if valid[1] && (!valid[0] || seqs[1] > seqs[0]) {
		// No usable marker: freshest verified record wins.
		order = []int{1, 0}
	}
	for _, g := range order {
		if !valid[g] {
			continue
		}
		if err := gob.NewDecoder(bytes.NewReader(payloads[g])).Decode(out); err != nil {
			return false, fmt.Errorf("ckpt: decode %s/%d: %w", component, rank, err)
		}
		return true, nil
	}
	return false, fmt.Errorf("ckpt: %s/%d: all checkpoint generations torn or corrupt", component, rank)
}

// Drop removes the rank's checkpoint.
func (s *Saver) Drop(component string, rank int) {
	base := Key(component, rank)
	s.store.Delete(genKey(base, 0))
	s.store.Delete(genKey(base, 1))
	s.store.Delete(curKey(base))
}

// ---------------------------------------------------------------------
// Proactive checkpointing (Bouguerra et al., IPDPS'13): when a failure
// predictor warns of an imminent failure, take an extra checkpoint just
// before it instead of losing the whole period.

// ProactivePolicy decides checkpoint points from a base period plus
// failure predictions.
type ProactivePolicy struct {
	// Period is the preventive checkpoint period in timesteps.
	Period int
	// Predictions are timesteps at which failures are predicted; a
	// proactive checkpoint is taken at the step before each.
	Predictions map[int64]bool
}

// ShouldCheckpoint reports whether a checkpoint is due after completing
// timestep ts.
func (p ProactivePolicy) ShouldCheckpoint(ts int64) bool {
	if p.Period > 0 && ts%int64(p.Period) == 0 {
		return true
	}
	return p.Predictions[ts+1]
}

// ---------------------------------------------------------------------
// Multi-level checkpointing (Moody et al., SC'10): frequent cheap
// checkpoints to node-local storage (L1), periodic checkpoints to the
// PFS (L2). L1 survives process failures but not node loss.

// MultiLevel writes checkpoints alternately to a fast local store and a
// durable global store. It is safe for concurrent use by multiple
// ranks.
type MultiLevel struct {
	l1, l2 *Saver
	// L2Every directs every n-th checkpoint to the durable level.
	L2Every int
	mu      sync.Mutex
	counts  map[string]int
}

// NewMultiLevel builds a two-level saver. l1 is the fast, volatile
// level; l2 the durable one. l2Every must be >= 1.
func NewMultiLevel(l1, l2 *pfs.Store, l2Every int) (*MultiLevel, error) {
	if l2Every < 1 {
		return nil, fmt.Errorf("ckpt: l2Every must be >= 1, got %d", l2Every)
	}
	return &MultiLevel{
		l1:      NewSaver(l1),
		l2:      NewSaver(l2),
		L2Every: l2Every,
		counts:  make(map[string]int),
	}, nil
}

// Save writes the checkpoint to L1, and additionally to L2 on every
// L2Every-th call for the same rank.
func (m *MultiLevel) Save(component string, rank int, state any) (level int, err error) {
	k := Key(component, rank)
	m.mu.Lock()
	m.counts[k]++
	n := m.counts[k]
	m.mu.Unlock()
	if err := m.l1.Save(component, rank, state); err != nil {
		return 0, err
	}
	if n%m.L2Every == 0 {
		if err := m.l2.Save(component, rank, state); err != nil {
			return 0, err
		}
		return 2, nil
	}
	return 1, nil
}

// Load restores from L1 if present, else from L2. It returns the level
// used (0 when no checkpoint exists).
func (m *MultiLevel) Load(component string, rank int, out any) (level int, err error) {
	ok, err := m.l1.Load(component, rank, out)
	if err != nil {
		return 0, err
	}
	if ok {
		return 1, nil
	}
	ok, err = m.l2.Load(component, rank, out)
	if err != nil {
		return 0, err
	}
	if ok {
		return 2, nil
	}
	return 0, nil
}

// InvalidateL1 simulates node loss: all L1 checkpoints of the component
// vanish, forcing recovery from the durable level.
func (m *MultiLevel) InvalidateL1(component string, ranks int) {
	for r := 0; r < ranks; r++ {
		m.l1.Drop(component, r)
	}
}

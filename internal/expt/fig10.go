package expt

import (
	"time"

	"gospaces/internal/ckpt"
	"gospaces/internal/cluster"
)

// Fig10Row is one scale point of the scalability study: total workflow
// execution time per scheme (mean over seeds) and the best-case
// uncoordinated improvement, the paper's "up to X%" number.
type Fig10Row struct {
	Scale     string
	Cores     int
	Failures  int
	MTBF      time.Duration
	Co        time.Duration
	Un        time.Duration
	Hy        time.Duration
	In        time.Duration
	MeanImpUn float64 // mean Un-vs-Co improvement over seeds, percent
	BestImpUn float64 // best ("up to") improvement, percent
}

// Fig10 reproduces Figure 10: total workflow execution time under 1–3
// failures at the five Table III scales (704..11264 cores), per scheme.
func Fig10(seeds []int64) ([]Fig10Row, error) {
	mach := cluster.Cori()
	var rows []Fig10Row
	for _, w := range cluster.TableIII() {
		row := Fig10Row{
			Scale:    w.Name,
			Cores:    w.TotalCores(),
			Failures: w.NFailures,
			MTBF:     w.MTBF,
		}
		sums := map[ckpt.Scheme]time.Duration{}
		var impSum, impBest float64
		for _, seed := range seeds {
			perScheme := map[ckpt.Scheme]time.Duration{}
			for _, s := range []ckpt.Scheme{ckpt.Coordinated, ckpt.Uncoordinated, ckpt.Hybrid, ckpt.Individual} {
				res, err := RunSim(SimParams{Workflow: w, Machine: mach, Scheme: s, Seed: seed})
				if err != nil {
					return nil, err
				}
				perScheme[s] = res.TotalTime
				sums[s] += res.TotalTime
			}
			imp := 1 - float64(perScheme[ckpt.Uncoordinated])/float64(perScheme[ckpt.Coordinated])
			impSum += imp
			if imp > impBest {
				impBest = imp
			}
		}
		n := time.Duration(len(seeds))
		row.Co = sums[ckpt.Coordinated] / n
		row.Un = sums[ckpt.Uncoordinated] / n
		row.Hy = sums[ckpt.Hybrid] / n
		row.In = sums[ckpt.Individual] / n
		row.MeanImpUn = impSum / float64(len(seeds)) * 100
		row.BestImpUn = impBest * 100
		rows = append(rows, row)
	}
	return rows, nil
}

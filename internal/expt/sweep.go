package expt

import (
	"io"
	"time"

	"gospaces/internal/ckpt"
	"gospaces/internal/cluster"
)

// SweepRow is one MTBF point of the failure-rate sensitivity study: how
// the uncoordinated-vs-coordinated gap evolves as failures become more
// frequent (the paper motivates the framework with exascale MTBFs
// measured in minutes, §I).
type SweepRow struct {
	MTBF           time.Duration
	Failures       float64 // mean injected failures per run
	Co, Un         time.Duration
	ImprovementPct float64
}

// MTBFSweep runs the Table II workflow across decreasing MTBFs, scaling
// the injected failure count like the paper's Table III does
// (horizon / MTBF), and reports the mean coordinated and uncoordinated
// total times per point.
func MTBFSweep(seeds []int64) ([]SweepRow, error) {
	mach := cluster.Cori()
	base := cluster.TableII()
	horizon := 430 * time.Second // approximate failure-free makespan
	var rows []SweepRow
	// MTBF points chosen so the expected failure count over the ~430 s
	// run steps 1, 2, 3, 4 — the regime the paper targets ("MTBF for an
	// exascale system would be measured in minutes", §I).
	for _, mtbf := range []time.Duration{
		430 * time.Second, 215 * time.Second, 143 * time.Second, 107 * time.Second,
	} {
		w := base
		w.MTBF = mtbf
		w.NFailures = int(horizon / mtbf)
		if w.NFailures < 1 {
			w.NFailures = 1
		}
		var coSum, unSum time.Duration
		var failSum int
		for _, seed := range seeds {
			co, err := RunSim(SimParams{Workflow: w, Machine: mach, Scheme: ckpt.Coordinated, Seed: seed})
			if err != nil {
				return nil, err
			}
			un, err := RunSim(SimParams{Workflow: w, Machine: mach, Scheme: ckpt.Uncoordinated, Seed: seed})
			if err != nil {
				return nil, err
			}
			coSum += co.TotalTime
			unSum += un.TotalTime
			failSum += un.Failures
		}
		n := time.Duration(len(seeds))
		rows = append(rows, SweepRow{
			MTBF:           mtbf,
			Failures:       float64(failSum) / float64(len(seeds)),
			Co:             coSum / n,
			Un:             unSum / n,
			ImprovementPct: (1 - float64(unSum)/float64(coSum)) * 100,
		})
	}
	return rows, nil
}

// WriteSweep renders the MTBF sensitivity study.
func WriteSweep(w io.Writer, rows []SweepRow) {
	t := &Table{
		Title:   "MTBF sweep: Un-vs-Co improvement as failures become frequent",
		Headers: []string{"MTBF", "mean failures", "Co", "Un", "improvement %"},
	}
	for _, r := range rows {
		t.Add(r.MTBF, r.Failures, r.Co, r.Un, r.ImprovementPct)
	}
	t.Write(w)
}

package expt

import (
	"gospaces/internal/sim"
)

// latch is the virtual-time counterpart of workflow.Coupler: a set of
// once-open gates keyed by timestep. The simulation model uses two —
// "produced" and "consumed" — to sequence the coupling cycle between
// the producer and consumer processes. Marks are idempotent; gates can
// be re-armed past a rollback point for coordinated recovery.
//
// The DES kernel runs one process at a time, so no locking is needed.
type latch struct {
	env     *sim.Env
	marked  map[int64]bool
	mbs     map[int64]*sim.Mailbox[struct{}]
	waiting map[int64]int
}

func newLatch(env *sim.Env) *latch {
	return &latch{
		env:     env,
		marked:  make(map[int64]bool),
		mbs:     make(map[int64]*sim.Mailbox[struct{}]),
		waiting: make(map[int64]int),
	}
}

func (l *latch) mb(ts int64) *sim.Mailbox[struct{}] {
	m, ok := l.mbs[ts]
	if !ok {
		m = sim.NewMailbox[struct{}](l.env)
		l.mbs[ts] = m
	}
	return m
}

// Wait blocks p until ts is marked. Waiting for ts <= 0 or an already
// marked ts returns immediately. Interruptible.
func (l *latch) Wait(p *sim.Proc, ts int64) error {
	if ts <= 0 || l.marked[ts] {
		return nil
	}
	l.waiting[ts]++
	_, err := l.mb(ts).Recv(p)
	l.waiting[ts]--
	return err
}

// Mark opens the gate for ts, waking all current waiters.
func (l *latch) Mark(ts int64) {
	if l.marked[ts] {
		return
	}
	l.marked[ts] = true
	n := l.waiting[ts]
	for i := 0; i < n; i++ {
		l.mb(ts).Send(struct{}{})
	}
}

// Reset re-arms every gate strictly after ts (coordinated rollback).
// Stale queued tokens are drained so re-armed gates block again.
func (l *latch) Reset(ts int64) {
	for k := range l.marked {
		if k > ts {
			delete(l.marked, k)
			if m, ok := l.mbs[k]; ok {
				for {
					if _, ok := m.TryRecv(); !ok {
						break
					}
				}
			}
		}
	}
}

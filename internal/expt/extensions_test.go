package expt

import (
	"testing"
	"time"

	"gospaces/internal/ckpt"
	"gospaces/internal/failure"
)

// TestProactiveCheckpointShrinksRollback: with a perfect predictor, the
// threatened component checkpoints right before the failure, so it
// loses at most one step instead of up to a whole period.
func TestProactiveCheckpointShrinksRollback(t *testing.T) {
	// Mid-checkpoint-period failure (the periodic checkpoints land at
	// ~40 s boundaries), so the proactive checkpoint has ground to win.
	sched := failure.Fixed(failure.Injection{At: 225 * time.Second, Component: "sim"})
	base := params(ckpt.Uncoordinated)
	base.Failures = sched
	plain, err := RunSim(base)
	if err != nil {
		t.Fatal(err)
	}
	pro := base
	pro.Proactive = true
	pro.PredictRecall = 1
	proRes, err := RunSim(pro)
	if err != nil {
		t.Fatal(err)
	}
	if proRes.Rollbacks == 0 {
		t.Fatal("no rollback despite failure")
	}
	if proRes.TotalTime >= plain.TotalTime {
		t.Fatalf("proactive (%v) not faster than plain (%v)", proRes.TotalTime, plain.TotalTime)
	}
}

func TestProactiveZeroRecallMatchesPlain(t *testing.T) {
	sched := failure.Fixed(failure.Injection{At: 250 * time.Second, Component: "sim"})
	base := params(ckpt.Uncoordinated)
	base.Failures = sched
	plain, err := RunSim(base)
	if err != nil {
		t.Fatal(err)
	}
	pro := base
	pro.Proactive = true
	pro.PredictRecall = 1e-12 // effectively zero, but a legal (0,1] value
	proRes, err := RunSim(pro)
	if err != nil {
		t.Fatal(err)
	}
	if proRes.TotalTime != plain.TotalTime {
		t.Fatalf("predictor that never fires changed the run: %v vs %v", proRes.TotalTime, plain.TotalTime)
	}
}

// TestMultiLevelCheapensCheckpoints: with most checkpoints on fast
// node-local storage, failure-free checkpoint time drops.
func TestMultiLevelCheapensCheckpoints(t *testing.T) {
	base := noFailures(params(ckpt.Uncoordinated))
	plain, err := RunSim(base)
	if err != nil {
		t.Fatal(err)
	}
	ml := base
	ml.MultiLevel = true
	ml.L2Every = 4
	mlRes, err := RunSim(ml)
	if err != nil {
		t.Fatal(err)
	}
	if mlRes.CheckpointTime >= plain.CheckpointTime {
		t.Fatalf("multi-level checkpoint time %v not below plain %v", mlRes.CheckpointTime, plain.CheckpointTime)
	}
}

// TestMultiLevelNodeLossRollsBackFurther: a node loss destroys L1 and
// must recover from the older L2 checkpoint — costlier than a process
// failure recovered from L1.
func TestMultiLevelNodeLossRollsBackFurther(t *testing.T) {
	sched := failure.Fixed(failure.Injection{At: 250 * time.Second, Component: "sim"})
	run := func(nodeLossFrac float64) time.Duration {
		p := params(ckpt.Uncoordinated)
		p.Failures = sched
		p.MultiLevel = true
		p.L2Every = 3
		p.NodeLossFrac = nodeLossFrac
		res, err := RunSim(p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rollbacks == 0 {
			t.Fatal("no rollback")
		}
		return res.TotalTime
	}
	procOnly := run(1e-12) // effectively never lose the node
	nodeLoss := run(1.0)   // always lose the node
	if nodeLoss <= procOnly {
		t.Fatalf("node loss (%v) not costlier than process failure (%v)", nodeLoss, procOnly)
	}
}

// TestMultiLevelBeatsPlainUnderFailures: the combination of cheap L1
// checkpoints and L1 recovery wins end to end for process failures.
func TestMultiLevelBeatsPlainUnderFailures(t *testing.T) {
	sched := failure.Fixed(
		failure.Injection{At: 150 * time.Second, Component: "sim"},
		failure.Injection{At: 300 * time.Second, Component: "ana"},
	)
	base := params(ckpt.Uncoordinated)
	base.Failures = sched
	plain, err := RunSim(base)
	if err != nil {
		t.Fatal(err)
	}
	ml := base
	ml.MultiLevel = true
	ml.NodeLossFrac = 1e-12
	mlRes, err := RunSim(ml)
	if err != nil {
		t.Fatal(err)
	}
	if mlRes.TotalTime >= plain.TotalTime {
		t.Fatalf("multi-level (%v) not faster than plain (%v) under process failures", mlRes.TotalTime, plain.TotalTime)
	}
}

func TestExtensionsDeterministic(t *testing.T) {
	p := params(ckpt.Uncoordinated)
	p.Proactive = true
	p.PredictRecall = 0.5
	p.MultiLevel = true
	p.NodeLossFrac = 0.5
	p.Seed = 42
	a, err := RunSim(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSim(p)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("nondeterministic extension runs:\n%+v\n%+v", a, b)
	}
}

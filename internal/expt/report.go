package expt

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table renders rows of columns with a header, aligned for terminals —
// the wfbench output format.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Add appends a row; values are rendered with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case time.Duration:
			row[i] = fmtDur(v)
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// fmtDur renders durations compactly (e.g. "431.2s").
func fmtDur(d time.Duration) string {
	if d >= time.Second {
		return fmt.Sprintf("%.1fs", d.Seconds())
	}
	if d >= time.Millisecond {
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	}
	return d.String()
}

// Write renders the table.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// MiB renders a byte count in MiB with two decimals.
func MiB(b int64) string {
	return fmt.Sprintf("%.2fMiB", float64(b)/(1<<20))
}

// WriteCase1 renders the Figure 9(a)+(c) rows.
func WriteCase1(w io.Writer, rows []LiveRow) {
	t := &Table{
		Title:   "Fig 9(a)+(c): Case 1 — subsets of the data domain",
		Headers: []string{"subset", "Ds write", "+log write", "write +%", "Ds mem", "+log mem", "mem +%"},
	}
	for _, r := range rows {
		t.Add(r.Label, r.DsWrite, r.LogWrite, r.WriteOverheadPct, MiB(r.DsMem), MiB(r.LogMem), r.MemOverheadPct)
	}
	t.Write(w)
}

// WriteCase2 renders the Figure 9(b)+(d) rows.
func WriteCase2(w io.Writer, rows []LiveRow) {
	t := &Table{
		Title:   "Fig 9(b)+(d): Case 2 — checkpoint periods 2..6 ts",
		Headers: []string{"period", "Ds write", "+log write", "write +%", "Ds mem", "+log mem", "mem +%"},
	}
	for _, r := range rows {
		t.Add(r.Label, r.DsWrite, r.LogWrite, r.WriteOverheadPct, MiB(r.DsMem), MiB(r.LogMem), r.MemOverheadPct)
	}
	t.Write(w)
}

// WriteFig9e renders the Figure 9(e) scheme comparison.
func WriteFig9e(w io.Writer, rows []Fig9eRow, case2 []LiveRowF) {
	t := &Table{
		Title:   "Fig 9(e): total workflow execution time, Table II scale, 1 failure",
		Headers: []string{"scheme", "mean total", "vs Co %", "rollbacks"},
	}
	for _, r := range rows {
		t.Add(r.Scheme, r.MeanTotal, r.VsCoordPct, r.MeanRollback)
	}
	t.Write(w)
	t2 := &Table{
		Title:   "Fig 9(e) Case 2 series: Un improvement over Co by checkpoint period",
		Headers: []string{"period", "Co total", "Un total", "improvement %"},
	}
	for _, r := range case2 {
		t2.Add(r.Label, r.Coordinated, r.Uncoordinated, r.ImprovementPct)
	}
	t2.Write(w)
}

// WriteFig10 renders the scalability study.
func WriteFig10(w io.Writer, rows []Fig10Row) {
	t := &Table{
		Title:   "Fig 10: total workflow execution time at scale (means over seeds)",
		Headers: []string{"scale", "cores", "failures", "MTBF", "Co", "Un", "Hy", "In", "mean imp %", "up to %"},
	}
	for _, r := range rows {
		t.Add(r.Scale, r.Cores, r.Failures, r.MTBF, r.Co, r.Un, r.Hy, r.In, r.MeanImpUn, r.BestImpUn)
	}
	t.Write(w)
}

// Package expt is the experiment harness: it regenerates every table
// and figure of the paper's evaluation (§IV). Figures 9(a)–(d) run the
// live staging service in-process and measure real write response time
// and memory; Figure 9(e) and Figure 10 run the same crash-consistency
// protocol (internal/wlog) on the virtual-time simulator at the paper's
// Cori scales, so "who wins and by how much" is produced by protocol
// behaviour and queueing, not hard-coded.
package expt

import (
	"fmt"
	"time"

	"gospaces/internal/ckpt"
	"gospaces/internal/cluster"
	"gospaces/internal/domain"
	"gospaces/internal/failure"
	"gospaces/internal/pfs"
	"gospaces/internal/sim"
	"gospaces/internal/wlog"
)

// SimParams configures one virtual-time workflow run.
type SimParams struct {
	Workflow cluster.Workflow
	Machine  cluster.Machine
	Scheme   ckpt.Scheme
	// LogWriteFactor inflates staging write time on the logged path;
	// it is the ratio Figure 9(a)/(b) measures on the live servers
	// (~1.10–1.15 in the paper).
	LogWriteFactor float64
	// Seed drives the failure schedule.
	Seed int64
	// Failures overrides the schedule derived from Workflow
	// (MTBF/NFailures) when non-nil.
	Failures failure.Schedule

	// Proactive enables proactive checkpointing (paper §VI future
	// work, after Bouguerra et al.): a failure predictor warns ahead of
	// PredictRecall of the failures, and the threatened component takes
	// an extra checkpoint right before the hit, shrinking the rollback.
	Proactive bool
	// PredictRecall is the fraction of failures the predictor catches
	// (default 1.0).
	PredictRecall float64

	// MultiLevel enables multi-level checkpointing (Moody et al.):
	// checkpoints go to fast node-local storage (L1) except every
	// L2Every-th, which also goes to the PFS. Process failures recover
	// from L1; node losses destroy L1 and fall back to the last L2
	// checkpoint.
	MultiLevel bool
	// L1Bandwidth is the aggregate node-local checkpoint bandwidth
	// (default 8x the PFS share).
	L1Bandwidth float64
	// L2Every directs every n-th checkpoint to the PFS (default 4).
	L2Every int
	// NodeLossFrac is the fraction of failures that destroy node-local
	// state (default 0.2).
	NodeLossFrac float64
}

// SimResult reports one virtual-time run.
type SimResult struct {
	TotalTime       time.Duration
	SimDone         time.Duration
	AnaDone         time.Duration
	Failures        int
	Rollbacks       int
	ReplicaSwitches int
	SuppressedPuts  int
	ReplayGets      int
	CheckpointTime  time.Duration
	RestartTime     time.Duration
}

type simComponent struct {
	name   string
	cores  int
	period int64
	// producer components write the coupled data; consumers read it.
	producer bool
	// replicated components mask failures by replica takeover.
	replicated bool
	logged     bool

	proc       *sim.Proc
	lastCkpt   int64
	lastL2Ckpt int64
	ckptCount  int
	curTS      int64
	doneAt     time.Duration
	done       bool
	// nodeLost is set by the injector when the pending failure also
	// destroyed the component's node-local checkpoints.
	nodeLost bool
}

// model is one virtual-time workflow instance.
type model struct {
	p        SimParams
	env      *sim.Env
	stageIn  *sim.Bandwidth // staging ingest (writes)
	stageOut *sim.Bandwidth // staging egress (reads)
	pfs      *pfs.SimPFS
	log      *wlog.Log
	produced *latch
	consumed *latch
	sim, ana *simComponent
	// barrier mailboxes for the coordinated double-barrier.
	barA, barB *sim.Mailbox[struct{}]

	res SimResult

	// coordRestart is the last globally completed coordinated
	// checkpoint, set by the injector before a coordinated rollback.
	coordRestart int64

	// predictions holds the failure times the proactive predictor will
	// warn about, per component.
	predictions map[string][]time.Duration
	// nodeLossRng decides which failures destroy node-local storage.
	nodeLossRng *splitRng

	coupleBox domain.BBox
	stepBytes int64
}

// RunSim executes one virtual-time workflow and returns its result.
func RunSim(p SimParams) (SimResult, error) {
	if p.LogWriteFactor <= 0 {
		p.LogWriteFactor = 1.12
	}
	if p.PredictRecall <= 0 || p.PredictRecall > 1 {
		p.PredictRecall = 1
	}
	if p.L1Bandwidth <= 0 {
		p.L1Bandwidth = p.Machine.PFSBandwidth * 8
	}
	if p.L2Every <= 0 {
		p.L2Every = 4
	}
	if p.NodeLossFrac < 0 || p.NodeLossFrac > 1 {
		p.NodeLossFrac = 0.2
	}
	w := p.Workflow
	env := sim.NewEnv()
	m := &model{
		p:        p,
		env:      env,
		stageIn:  sim.NewBandwidth(env, p.Machine.StagingBWPerServer*float64(w.StagingCores), p.Machine.StagingLatency),
		stageOut: sim.NewBandwidth(env, p.Machine.StagingBWPerServer*float64(w.StagingCores), p.Machine.StagingLatency),
		pfs:      pfs.NewSimPFS(env, p.Machine.PFSBandwidth, p.Machine.PFSLatency),
		log:      wlog.New(),
		produced: newLatch(env),
		consumed: newLatch(env),
		barA:     sim.NewMailbox[struct{}](env),
		barB:     sim.NewMailbox[struct{}](env),
	}
	m.coupleBox = domain.Subset(w.Global, w.SubsetFrac)
	m.stepBytes = w.BytesPerStep()
	m.nodeLossRng = newSplitRng(p.Seed + 17)

	logged := p.Scheme.Logged()
	m.sim = &simComponent{
		name: "sim", cores: w.SimCores, period: int64(w.SimPeriod),
		producer: true, logged: logged,
	}
	m.ana = &simComponent{
		name: "ana", cores: w.AnalyticCores, period: int64(w.AnaPeriod),
		logged:     logged,
		replicated: p.Scheme == ckpt.Hybrid,
	}
	if p.Scheme == ckpt.Coordinated {
		m.sim.period = int64(w.CoordPeriod)
		m.ana.period = int64(w.CoordPeriod)
	}

	m.sim.proc = env.Spawn("sim", func(proc *sim.Proc) { m.componentLoop(proc, m.sim) })
	m.ana.proc = env.Spawn("ana", func(proc *sim.Proc) { m.componentLoop(proc, m.ana) })

	sched := p.Failures
	if sched == nil && w.NFailures > 0 {
		base := time.Duration(w.Steps) * (p.Machine.ComputePerStep + m.stageIn.TransferTime(m.stepBytes))
		var err error
		sched, err = failure.Exponential(p.Seed, w.MTBF, w.NFailures, base, []failure.Target{
			{Component: "sim", Ranks: w.SimCores},
			{Component: "ana", Ranks: w.AnalyticCores},
		})
		if err != nil {
			return SimResult{}, err
		}
	}
	if len(sched) > 0 {
		if p.Proactive {
			m.predictions = predict(sched, p.PredictRecall, p.Seed)
		}
		env.Spawn("injector", func(proc *sim.Proc) { m.injectorLoop(proc, sched) })
	}

	if err := env.Run(0); err != nil {
		return SimResult{}, fmt.Errorf("expt: simulation: %w", err)
	}
	m.res.TotalTime = maxDur(m.sim.doneAt, m.ana.doneAt)
	m.res.SimDone = m.sim.doneAt
	m.res.AnaDone = m.ana.doneAt
	return m.res, nil
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// componentLoop drives one component through all timesteps, entering
// recovery whenever the failure injector interrupts it.
func (m *model) componentLoop(proc *sim.Proc, c *simComponent) {
	ts := int64(1)
	for ts <= int64(m.p.Workflow.Steps) {
		c.curTS = ts
		if err := m.step(proc, c, ts); err != nil {
			ts = m.recover(proc, c)
			continue
		}
		ts++
	}
	c.doneAt = proc.Now()
	c.done = true
}

// step executes one coupling cycle for the component. Any returned
// error is an interrupt (injected failure).
func (m *model) step(proc *sim.Proc, c *simComponent, ts int64) error {
	mach := m.p.Machine
	if c.producer {
		if err := proc.Sleep(mach.ComputePerStep); err != nil {
			return err
		}
		// Throttle: the consumer must have read the previous step
		// (write-immediately-followed-by-read coupling).
		if err := m.consumed.Wait(proc, ts-1); err != nil {
			return err
		}
		if c.logged {
			suppress, err := m.log.BeginPut(c.name, "field", ts, m.coupleBox)
			if err != nil {
				return err
			}
			if suppress {
				// Duplicate write from rollback re-execution: the
				// request is acknowledged without moving the payload.
				m.res.SuppressedPuts++
				if err := proc.Sleep(mach.StagingLatency); err != nil {
					return err
				}
			} else {
				cost := time.Duration(float64(m.stageIn.TransferTime(m.stepBytes)) * m.p.LogWriteFactor)
				if err := m.transfer(proc, m.stageIn, cost); err != nil {
					return err
				}
				m.log.CommitPut(c.name, "field", ts, m.coupleBox, m.stepBytes)
			}
		} else {
			if err := m.stageIn.Transfer(proc, m.stepBytes); err != nil {
				return err
			}
		}
		m.produced.Mark(ts)
	} else {
		if err := m.produced.Wait(proc, ts); err != nil {
			return err
		}
		if c.logged {
			_, fromLog, err := m.log.BeginGet(c.name, "field", ts, m.coupleBox)
			if err != nil {
				return err
			}
			if fromLog {
				m.res.ReplayGets++
			}
			if err := m.stageOut.Transfer(proc, m.stepBytes); err != nil {
				return err
			}
			if !fromLog {
				m.log.CommitGet(c.name, "field", ts, m.coupleBox, m.stepBytes)
			}
		} else {
			if err := m.stageOut.Transfer(proc, m.stepBytes); err != nil {
				return err
			}
		}
		if err := proc.Sleep(mach.AnalyticPerStep); err != nil {
			return err
		}
		m.consumed.Mark(ts)
	}

	if m.p.Proactive && !c.replicated && m.proactiveDue(c, proc.Now()) && c.lastCkpt < ts {
		// Predictor warns of an imminent failure: checkpoint now so the
		// rollback (if the prediction holds) loses at most this step.
		if err := m.writeCheckpoint(proc, c, ts); err != nil {
			return err
		}
	}
	if !c.replicated && c.period > 0 && ts%c.period == 0 && c.lastCkpt < ts {
		if m.p.Scheme == ckpt.Coordinated {
			// Double barrier around the global checkpoint.
			if err := m.coordBarrier(proc, c); err != nil {
				return err
			}
		}
		if err := m.writeCheckpoint(proc, c, ts); err != nil {
			return err
		}
		if m.p.Scheme == ckpt.Coordinated {
			if err := m.coordBarrier(proc, c); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeCheckpoint persists the component state, honoring the
// multi-level policy, and advances the checkpoint anchors.
func (m *model) writeCheckpoint(proc *sim.Proc, c *simComponent, ts int64) error {
	w := m.p.Workflow
	start := proc.Now()
	ckptBytes := int64(c.cores) * w.CheckpointBytesPerCore
	c.ckptCount++
	toL2 := !m.p.MultiLevel || c.ckptCount%m.p.L2Every == 0
	if m.p.MultiLevel {
		// L1: node-local write at local aggregate bandwidth, always.
		if err := proc.Sleep(time.Duration(float64(ckptBytes) / m.p.L1Bandwidth * float64(time.Second))); err != nil {
			return err
		}
	}
	if toL2 {
		if err := m.pfs.WriteCheckpoint(proc, ckptBytes); err != nil {
			return err
		}
		c.lastL2Ckpt = ts
	}
	m.res.CheckpointTime += proc.Now() - start
	if c.logged {
		m.log.OnCheckpoint(c.name)
	}
	c.lastCkpt = ts
	return nil
}

// proactiveDue reports whether a failure is predicted to hit c within
// the next coupling cycle, warranting an extra checkpoint now.
func (m *model) proactiveDue(c *simComponent, now time.Duration) bool {
	horizon := now + m.p.Machine.ComputePerStep + m.p.Machine.AnalyticPerStep
	for _, t := range m.predictions[c.name] {
		if t > now && t <= horizon {
			return true
		}
	}
	return false
}

// predict selects the failures the proactive predictor warns about.
func predict(sched failure.Schedule, recall float64, seed int64) map[string][]time.Duration {
	rng := newSplitRng(seed)
	out := make(map[string][]time.Duration)
	for _, inj := range sched {
		if rng.float() <= recall {
			out[inj.Component] = append(out[inj.Component], inj.At)
		}
	}
	return out
}

// splitRng is a tiny deterministic PRNG (the sim kernel forbids
// math/rand's global state for resumability; this keeps prediction
// sampling self-contained).
type splitRng struct{ x uint64 }

func newSplitRng(seed int64) *splitRng { return &splitRng{x: uint64(seed)*2654435769 + 1} }

func (r *splitRng) next() uint64 {
	r.x += 0x9e3779b97f4a7c15
	z := r.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *splitRng) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

// transfer moves a pre-computed cost through a bandwidth pipe (used
// when the logged path inflates the service time).
func (m *model) transfer(proc *sim.Proc, bw *sim.Bandwidth, cost time.Duration) error {
	// Acquire the pipe for the inflated duration by issuing a zero-byte
	// transfer (latency only) followed by the remaining sleep while
	// holding nothing — an approximation that keeps FIFO queueing on
	// the pipe for the base transfer and adds the logging overhead as
	// local processing time.
	base := cost - m.stageIn.TransferTime(0)
	if base < 0 {
		base = 0
	}
	if err := bw.Transfer(proc, 0); err != nil {
		return err
	}
	return proc.Sleep(base)
}

// coordBarrier synchronizes the two components (two-party rendezvous).
func (m *model) coordBarrier(proc *sim.Proc, c *simComponent) error {
	mine, theirs := m.barA, m.barB
	partner := m.ana
	if !c.producer {
		mine, theirs = m.barB, m.barA
		partner = m.sim
	}
	theirs.Send(struct{}{})
	if partner.done {
		return nil
	}
	_, err := mine.Recv(proc)
	return err
}

// recover handles a fail-stop failure of the component. It loops until
// a recovery completes without being interrupted again, and returns the
// timestep execution resumes from.
func (m *model) recover(proc *sim.Proc, c *simComponent) int64 {
	mach := m.p.Machine
	w := m.p.Workflow
	for {
		start := proc.Now()
		if err := proc.Sleep(mach.DetectDelay); err != nil {
			continue
		}
		if c.replicated {
			// Replica takeover: no rollback, no replay; resume at the
			// interrupted step (paper §III-B).
			m.res.ReplicaSwitches++
			m.res.Failures++
			return c.curTS
		}
		// Read the checkpoint back: node-local L1 when it survived,
		// otherwise the last PFS (L2) checkpoint.
		ckptBytes := int64(c.cores) * w.CheckpointBytesPerCore
		restartFrom := c.lastCkpt
		if m.p.MultiLevel && !c.nodeLost {
			if err := proc.Sleep(time.Duration(float64(ckptBytes) / m.p.L1Bandwidth * float64(time.Second))); err != nil {
				continue
			}
		} else {
			if m.p.MultiLevel && c.nodeLost {
				restartFrom = c.lastL2Ckpt
			}
			if err := m.pfs.ReadCheckpoint(proc, ckptBytes); err != nil {
				continue
			}
		}
		c.nodeLost = false
		c.lastCkpt = restartFrom
		m.res.RestartTime += proc.Now() - start
		m.res.Rollbacks++
		m.res.Failures++
		if c.logged {
			m.log.OnRecovery(c.name)
		}
		if m.p.Scheme == ckpt.Coordinated {
			// The injector interrupted every live component; all roll
			// back to the last checkpoint completed by the whole
			// workflow, which may be older than this component's own
			// (a failure can land between the two checkpoint barriers).
			// Reset the anchors so re-execution re-checkpoints — and
			// re-enters the barriers — in lockstep with the partner.
			c.lastCkpt = m.coordRestart
			if c.lastL2Ckpt > m.coordRestart {
				c.lastL2Ckpt = m.coordRestart
			}
			return m.coordRestart + 1
		}
		return c.lastCkpt + 1
	}
}

// injectorLoop delivers the failure schedule.
func (m *model) injectorLoop(proc *sim.Proc, sched failure.Schedule) {
	for _, inj := range sched {
		delay := inj.At - proc.Now()
		if delay > 0 {
			if err := proc.Sleep(delay); err != nil {
				return
			}
		}
		target := m.sim
		if inj.Component == "ana" {
			target = m.ana
		}
		if target.done {
			continue
		}
		if m.p.MultiLevel {
			target.nodeLost = m.nodeLossRng.float() < m.p.NodeLossFrac
		}
		if m.p.Scheme == ckpt.Coordinated {
			// Global rollback: every live component fails together and
			// restarts from the last checkpoint the whole workflow
			// completed. A component that already finished keeps its
			// results (its staged data stays readable), so the coupling
			// gates are only re-armed when both sides re-execute.
			bothAlive := !m.sim.done && !m.ana.done
			restart := int64(m.p.Workflow.Steps)
			if !m.sim.done && m.sim.lastCkpt < restart {
				restart = m.sim.lastCkpt
			}
			if !m.ana.done && m.ana.lastCkpt < restart {
				restart = m.ana.lastCkpt
			}
			if bothAlive {
				restart = minI64(m.sim.lastCkpt, m.ana.lastCkpt)
			}
			m.coordRestart = restart
			if !m.sim.done {
				m.env.Interrupt(m.sim.proc)
			}
			if !m.ana.done {
				m.env.Interrupt(m.ana.proc)
			}
			if bothAlive {
				// Re-arm the coupling cycle and drain stale barrier
				// tokens.
				m.produced.Reset(restart)
				m.consumed.Reset(restart)
				for {
					if _, ok := m.barA.TryRecv(); !ok {
						break
					}
				}
				for {
					if _, ok := m.barB.TryRecv(); !ok {
						break
					}
				}
			}
			continue
		}
		m.env.Interrupt(target.proc)
	}
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

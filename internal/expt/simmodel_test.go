package expt

import (
	"testing"
	"time"

	"gospaces/internal/ckpt"
	"gospaces/internal/cluster"
	"gospaces/internal/failure"
)

func params(scheme ckpt.Scheme) SimParams {
	return SimParams{
		Workflow: cluster.TableII(),
		Machine:  cluster.Cori(),
		Scheme:   scheme,
		Seed:     1,
	}
}

func noFailures(p SimParams) SimParams {
	p.Workflow.NFailures = 0
	return p
}

func TestFailureFreeBaseline(t *testing.T) {
	for _, scheme := range []ckpt.Scheme{ckpt.Coordinated, ckpt.Uncoordinated, ckpt.Individual, ckpt.Hybrid} {
		res, err := RunSim(noFailures(params(scheme)))
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		// 40 steps x 10 s compute is the floor.
		floor := 400 * time.Second
		if res.TotalTime < floor {
			t.Fatalf("%v: total %v below compute floor %v", scheme, res.TotalTime, floor)
		}
		if res.TotalTime > floor*3/2 {
			t.Fatalf("%v: total %v unreasonably above floor", scheme, res.TotalTime)
		}
		if res.Failures != 0 || res.Rollbacks != 0 {
			t.Fatalf("%v: phantom failures %+v", scheme, res)
		}
	}
}

func TestFailureFreeUnCoClose(t *testing.T) {
	co, err := RunSim(noFailures(params(ckpt.Coordinated)))
	if err != nil {
		t.Fatal(err)
	}
	un, err := RunSim(noFailures(params(ckpt.Uncoordinated)))
	if err != nil {
		t.Fatal(err)
	}
	// Failure-free, the schemes differ only in logging overhead (Un)
	// versus global-barrier stalls (Co); they must stay within a few
	// percent of each other.
	ratio := float64(un.TotalTime) / float64(co.TotalTime)
	if ratio < 0.93 || ratio > 1.04 {
		t.Fatalf("failure-free Un/Co ratio %.3f out of band", ratio)
	}
}

func anaFailureAt(at time.Duration) failure.Schedule {
	return failure.Fixed(failure.Injection{At: at, Component: "ana", Rank: 0})
}

func simFailureAt(at time.Duration) failure.Schedule {
	return failure.Fixed(failure.Injection{At: at, Component: "sim", Rank: 0})
}

func TestAnalyticFailureUncoordinatedBeatsCoordinated(t *testing.T) {
	sched := anaFailureAt(200 * time.Second)
	pCo := params(ckpt.Coordinated)
	pCo.Failures = sched
	co, err := RunSim(pCo)
	if err != nil {
		t.Fatal(err)
	}
	pUn := params(ckpt.Uncoordinated)
	pUn.Failures = sched
	un, err := RunSim(pUn)
	if err != nil {
		t.Fatal(err)
	}
	if co.Rollbacks == 0 || un.Rollbacks == 0 {
		t.Fatalf("rollbacks co=%d un=%d", co.Rollbacks, un.Rollbacks)
	}
	if un.TotalTime >= co.TotalTime {
		t.Fatalf("Un (%v) not faster than Co (%v) under analytic failure", un.TotalTime, co.TotalTime)
	}
	if un.ReplayGets == 0 {
		t.Fatal("uncoordinated recovery did not replay reads")
	}
	improvement := 1 - float64(un.TotalTime)/float64(co.TotalTime)
	if improvement < 0.005 || improvement > 0.30 {
		t.Fatalf("improvement %.2f%% outside plausible band", improvement*100)
	}
}

func TestProducerFailureSuppressesWrites(t *testing.T) {
	p := params(ckpt.Uncoordinated)
	p.Failures = simFailureAt(200 * time.Second)
	res, err := RunSim(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rollbacks == 0 {
		t.Fatal("no rollback")
	}
	if res.SuppressedPuts == 0 {
		t.Fatal("producer replay did not suppress writes")
	}
}

func TestHybridMasksAnalyticFailure(t *testing.T) {
	sched := anaFailureAt(200 * time.Second)
	pHy := params(ckpt.Hybrid)
	pHy.Failures = sched
	hy, err := RunSim(pHy)
	if err != nil {
		t.Fatal(err)
	}
	if hy.ReplicaSwitches != 1 || hy.Rollbacks != 0 {
		t.Fatalf("hybrid result %+v", hy)
	}
	pUn := params(ckpt.Uncoordinated)
	pUn.Failures = sched
	un, err := RunSim(pUn)
	if err != nil {
		t.Fatal(err)
	}
	// Replication masks the failure entirely; it must be at least as
	// fast as rollback-based recovery.
	if hy.TotalTime > un.TotalTime {
		t.Fatalf("Hy (%v) slower than Un (%v)", hy.TotalTime, un.TotalTime)
	}
}

func TestIndividualIsLowerBound(t *testing.T) {
	sched := anaFailureAt(200 * time.Second)
	var times []time.Duration
	for _, scheme := range []ckpt.Scheme{ckpt.Individual, ckpt.Uncoordinated, ckpt.Coordinated} {
		p := params(scheme)
		p.Failures = sched
		res, err := RunSim(p)
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, res.TotalTime)
	}
	in, un, co := times[0], times[1], times[2]
	if in > un {
		t.Fatalf("In (%v) slower than Un (%v)", in, un)
	}
	if un > co {
		t.Fatalf("Un (%v) slower than Co (%v)", un, co)
	}
	// Un tracks In closely (paper: "nearly same execution time").
	if float64(un)/float64(in) > 1.03 {
		t.Fatalf("Un/In ratio %.3f too large", float64(un)/float64(in))
	}
}

func TestMultipleFailures(t *testing.T) {
	sched := failure.Fixed(
		failure.Injection{At: 100 * time.Second, Component: "sim"},
		failure.Injection{At: 250 * time.Second, Component: "ana"},
		failure.Injection{At: 380 * time.Second, Component: "sim"},
	)
	p := params(ckpt.Uncoordinated)
	p.Failures = sched
	res, err := RunSim(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 3 {
		t.Fatalf("failures = %d, want 3", res.Failures)
	}
	base, _ := RunSim(noFailures(params(ckpt.Uncoordinated)))
	if res.TotalTime <= base.TotalTime {
		t.Fatal("failures did not extend execution time")
	}
}

func TestCoordinatedRollsBackBoth(t *testing.T) {
	p := params(ckpt.Coordinated)
	p.Failures = anaFailureAt(200 * time.Second)
	res, err := RunSim(p)
	if err != nil {
		t.Fatal(err)
	}
	// Both components roll back: two rollbacks for one failure.
	if res.Rollbacks != 2 {
		t.Fatalf("rollbacks = %d, want 2", res.Rollbacks)
	}
}

func TestScaleGrowsImprovement(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy multi-scale sweep")
	}
	// The Un-vs-Co gap must widen with scale (Figure 10's trend), using
	// the paper's MTBF-derived schedules.
	scales := cluster.TableIII()
	small, large := scales[0], scales[4]
	// "Up to" semantics, as in the paper: best improvement over seeds.
	imp := func(w cluster.Workflow) float64 {
		best := 0.0
		for seed := int64(1); seed <= 5; seed++ {
			co, err := RunSim(SimParams{Workflow: w, Machine: cluster.Cori(), Scheme: ckpt.Coordinated, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			un, err := RunSim(SimParams{Workflow: w, Machine: cluster.Cori(), Scheme: ckpt.Uncoordinated, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if v := 1 - float64(un.TotalTime)/float64(co.TotalTime); v > best {
				best = v
			}
		}
		return best
	}
	si, li := imp(small), imp(large)
	if li <= si {
		t.Fatalf("best-case improvement did not grow with scale: %.2f%% -> %.2f%%", si*100, li*100)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	p := params(ckpt.Uncoordinated)
	p.Seed = 99
	a, err := RunSim(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSim(p)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
}

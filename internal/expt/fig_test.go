package expt

import (
	"strings"
	"testing"
)

func smallLive() LiveParams {
	p := DefaultLiveParams()
	// Shrink further for unit tests.
	p.Steps = 10
	return p
}

func TestFig9Case1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("live staging sweep")
	}
	rows, err := Fig9Case1(smallLive())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// Logging costs something but not multiples.
		if r.LogWrite < r.DsWrite {
			t.Logf("note: %s logged write faster than Ds (%v < %v); noise at this scale", r.Label, r.LogWrite, r.DsWrite)
		}
		if r.WriteOverheadPct > 100 {
			t.Fatalf("%s: write overhead %.1f%% implausible", r.Label, r.WriteOverheadPct)
		}
		// Logged staging retains replay versions: memory strictly higher.
		if r.LogMem <= r.DsMem {
			t.Fatalf("%s: logging did not increase memory (%d <= %d)", r.Label, r.LogMem, r.DsMem)
		}
		if r.MemOverheadPct > 400 {
			t.Fatalf("%s: memory overhead %.0f%% implausible", r.Label, r.MemOverheadPct)
		}
	}
	// Larger subsets move more data: Ds write time grows monotonically.
	if rows[4].DsWrite <= rows[0].DsWrite {
		t.Fatalf("write time did not grow with subset size: %v vs %v", rows[0].DsWrite, rows[4].DsWrite)
	}
	// Memory scales with subset size on both paths.
	if rows[4].DsMem <= rows[0].DsMem || rows[4].LogMem <= rows[0].LogMem {
		t.Fatal("memory did not grow with subset size")
	}
}

func TestFig9Case2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("live staging sweep")
	}
	rows, err := Fig9Case2(smallLive())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	// The paper's key claim: logging memory overhead grows with the
	// checkpoint period (longer event queues, later GC).
	if rows[4].MemOverheadPct <= rows[0].MemOverheadPct {
		t.Fatalf("memory overhead did not grow with period: %.0f%% (2ts) vs %.0f%% (6ts)",
			rows[0].MemOverheadPct, rows[4].MemOverheadPct)
	}
}

func TestFig9eShape(t *testing.T) {
	rows, err := Fig9e([]int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]Fig9eRow{}
	for _, r := range rows {
		byName[r.Scheme] = r
	}
	ds := byName["Ds (failure-free)"]
	co := byName["coordinated +1f"]
	un := byName["uncoordinated +1f"]
	hy := byName["hybrid +1f"]
	in := byName["individual +1f"]
	if ds.MeanTotal >= co.MeanTotal {
		t.Fatal("failure-free baseline not fastest")
	}
	// Paper's ordering: Un ~ Hy ~ In <= Co.
	if un.MeanTotal > co.MeanTotal || hy.MeanTotal > co.MeanTotal {
		t.Fatalf("Un/Hy slower than Co: %v %v vs %v", un.MeanTotal, hy.MeanTotal, co.MeanTotal)
	}
	if un.VsCoordPct < 0.3 || un.VsCoordPct > 15 {
		t.Fatalf("Un improvement %.2f%% outside plausible band (paper: ~3%%)", un.VsCoordPct)
	}
	// In is the no-logging lower bound, but its producer replay
	// re-writes data the log would have suppressed, so allow a hair of
	// slack either way.
	if float64(in.MeanTotal) > float64(un.MeanTotal)*1.01 {
		t.Fatalf("In (%v) more than 1%% slower than Un (%v)", in.MeanTotal, un.MeanTotal)
	}
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy multi-scale sweep")
	}
	rows, err := Fig10([]int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for i, r := range rows {
		if r.Un > r.Co {
			t.Fatalf("scale %s: Un (%v) slower than Co (%v)", r.Scale, r.Un, r.Co)
		}
		if r.BestImpUn < r.MeanImpUn {
			t.Fatalf("scale %s: best < mean", r.Scale)
		}
		if i > 0 && r.Cores <= rows[i-1].Cores {
			t.Fatal("scales not increasing")
		}
	}
	// The headline trend: best-case improvement grows from the smallest
	// to the largest scale (paper: 7.89% -> 13.48%).
	if rows[4].BestImpUn <= rows[0].BestImpUn {
		t.Fatalf("best improvement did not grow with scale: %.2f%% -> %.2f%%",
			rows[0].BestImpUn, rows[4].BestImpUn)
	}
}

func TestReportRendering(t *testing.T) {
	var sb strings.Builder
	tab := &Table{Title: "demo", Headers: []string{"a", "bee"}}
	tab.Add("x", 3.14159)
	tab.Add("longer-cell", 2.0)
	tab.Write(&sb)
	out := sb.String()
	for _, want := range []string{"== demo ==", "a", "bee", "3.14", "longer-cell"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if MiB(1<<20) != "1.00MiB" {
		t.Fatalf("MiB = %s", MiB(1<<20))
	}
}

func TestFig9eCase2Shape(t *testing.T) {
	rows, err := Fig9eCase2([]int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Uncoordinated > r.Coordinated {
			t.Fatalf("%s: Un slower than Co", r.Label)
		}
		if r.ImprovementPct < 0 || r.ImprovementPct > 20 {
			t.Fatalf("%s: improvement %.2f%% implausible", r.Label, r.ImprovementPct)
		}
	}
}

func TestReportWriters(t *testing.T) {
	var sb strings.Builder
	live := []LiveRow{{Label: "20% subset", DsWrite: 20 * 1e6, LogWrite: 22 * 1e6, WriteOverheadPct: 10, DsMem: 1 << 20, LogMem: 2 << 20, MemOverheadPct: 100}}
	WriteCase1(&sb, live)
	WriteCase2(&sb, live)
	WriteFig9e(&sb, []Fig9eRow{{Scheme: "coordinated +1f", MeanTotal: 433 * 1e9}},
		[]LiveRowF{{Label: "2ts", Coordinated: 440 * 1e9, Uncoordinated: 420 * 1e9, ImprovementPct: 4.5}})
	WriteFig10(&sb, []Fig10Row{{Scale: "704-cores", Cores: 704, Failures: 1, MTBF: 600 * 1e9, Co: 441 * 1e9, Un: 427 * 1e9, MeanImpUn: 3.2, BestImpUn: 12.5}})
	out := sb.String()
	for _, want := range []string{"Fig 9(a)+(c)", "Fig 9(b)+(d)", "Fig 9(e)", "Fig 10", "704-cores", "20% subset", "22.00ms", "1.00MiB"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Duration formats: >= 1s, >= 1ms, and the time.Duration fallback.
	if fmtDur(1500*1e6) != "1.5s" {
		t.Fatalf("fmtDur = %s", fmtDur(1500*1e6))
	}
	if fmtDur(2*1e6) != "2.00ms" {
		t.Fatalf("fmtDur = %s", fmtDur(2*1e6))
	}
	if fmtDur(900) != "900ns" {
		t.Fatalf("fmtDur = %s", fmtDur(900))
	}
}

func TestMTBFSweepShape(t *testing.T) {
	rows, err := MTBFSweep([]int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for i, r := range rows {
		if r.Un > r.Co {
			t.Fatalf("MTBF %v: Un slower than Co", r.MTBF)
		}
		if i > 0 && r.MTBF >= rows[i-1].MTBF {
			t.Fatal("MTBFs not decreasing")
		}
	}
	// More frequent failures widen the gap: the 4-failure point must
	// beat the 1-failure point.
	if rows[len(rows)-1].ImprovementPct <= rows[0].ImprovementPct {
		t.Fatalf("improvement did not grow with failure rate: %.2f%% -> %.2f%%",
			rows[0].ImprovementPct, rows[len(rows)-1].ImprovementPct)
	}
	if rows[len(rows)-1].Failures <= rows[0].Failures {
		t.Fatal("failure counts did not grow across the sweep")
	}
	var sb strings.Builder
	WriteSweep(&sb, rows)
	if !strings.Contains(sb.String(), "MTBF sweep") {
		t.Fatal("sweep table missing title")
	}
}

package expt

import (
	"fmt"
	"time"

	"gospaces/internal/ckpt"
	"gospaces/internal/cluster"
	"gospaces/internal/domain"
	"gospaces/internal/staging"
	"gospaces/internal/synth"
	"gospaces/internal/transport"
)

// LiveParams sizes the live-staging measurements of Figures 9(a)–(d).
// The defaults are a laptop-scale rendition of Table II: the same
// write-immediately-followed-by-read pattern and checkpoint periods,
// over a smaller domain.
type LiveParams struct {
	Global             domain.BBox
	ElemSize           int
	Steps              int64
	NServers, Bits     int
	SimRanks, AnaRanks int
	SimPeriod          int
	AnaPeriod          int
}

// DefaultLiveParams returns the scaled-down Table II setup.
func DefaultLiveParams() LiveParams {
	return LiveParams{
		Global:    domain.Box3(0, 0, 0, 127, 127, 63),
		ElemSize:  8,
		Steps:     20,
		NServers:  4,
		Bits:      2,
		SimRanks:  4,
		AnaRanks:  2,
		SimPeriod: 4,
		AnaPeriod: 5,
	}
}

// LiveRow is one measurement of a live staging run pair
// (original vs data-logging).
type LiveRow struct {
	Label string
	// Cumulative client-observed write response time.
	DsWrite, LogWrite time.Duration
	// WriteOverheadPct is (LogWrite/DsWrite - 1) * 100 — the number on
	// top of the Figure 9(a)/(b) bars (paper: +10..15%).
	WriteOverheadPct float64
	// Time-averaged staging memory (object payloads + event records).
	DsMem, LogMem int64
	// MemOverheadPct is (LogMem/DsMem - 1) * 100 — Figure 9(c)/(d)
	// (paper: +76..97%).
	MemOverheadPct float64
}

// liveRun drives producer/consumer rank clients through the coupling
// pattern on live in-process staging servers and returns the cumulative
// write response time and the time-averaged staging memory.
func liveRun(p LiveParams, subsetFrac float64, logged bool) (time.Duration, int64, error) {
	sub := domain.Subset(p.Global, subsetFrac)
	group, err := staging.StartGroup(transport.NewInProc(), "fig9", staging.Config{
		Global:   p.Global,
		NServers: p.NServers,
		Bits:     p.Bits,
		ElemSize: p.ElemSize,
	})
	if err != nil {
		return 0, 0, err
	}
	defer group.Close()

	simDec, err := domain.NewDecomposition(sub, []int{p.SimRanks, 1, 1})
	if err != nil {
		return 0, 0, err
	}
	anaDec, err := domain.NewDecomposition(sub, []int{p.AnaRanks, 1, 1})
	if err != nil {
		return 0, 0, err
	}
	field := synth.NewField("field", p.Global, p.ElemSize)

	producers := make([]*staging.Client, p.SimRanks)
	for i := range producers {
		if producers[i], err = group.NewClient(fmt.Sprintf("sim/%d", i)); err != nil {
			return 0, 0, err
		}
		defer producers[i].Close()
	}
	consumers := make([]*staging.Client, p.AnaRanks)
	for i := range consumers {
		if consumers[i], err = group.NewClient(fmt.Sprintf("ana/%d", i)); err != nil {
			return 0, 0, err
		}
		defer consumers[i].Close()
	}

	var memSum int64
	var memSamples int64
	for ts := int64(1); ts <= p.Steps; ts++ {
		for i, c := range producers {
			box, err := simDec.RankBox(i)
			if err != nil {
				return 0, 0, err
			}
			data := field.Fill(ts, box)
			if logged {
				err = c.PutWithLog("field", ts, box, data)
			} else {
				err = c.Put("field", ts, box, data)
			}
			if err != nil {
				return 0, 0, err
			}
		}
		for i, c := range consumers {
			box, err := anaDec.RankBox(i)
			if err != nil {
				return 0, 0, err
			}
			var got []byte
			if logged {
				got, _, err = c.GetWithLog("field", ts, box)
			} else {
				got, _, err = c.Get("field", ts, box)
			}
			if err != nil {
				return 0, 0, err
			}
			if field.Verify(ts, box, got) >= 0 {
				return 0, 0, fmt.Errorf("expt: fig9 data corruption at ts %d", ts)
			}
		}
		if logged {
			if ts%int64(p.SimPeriod) == 0 {
				for _, c := range producers {
					if _, err := c.WorkflowCheck(); err != nil {
						return 0, 0, err
					}
				}
			}
			if ts%int64(p.AnaPeriod) == 0 {
				for _, c := range consumers {
					if _, err := c.WorkflowCheck(); err != nil {
						return 0, 0, err
					}
				}
			}
		}
		st, err := producers[0].Stats()
		if err != nil {
			return 0, 0, err
		}
		memSum += st.StoreBytes + st.LogMetaBytes
		memSamples++
	}
	var write time.Duration
	for _, c := range producers {
		write += c.CumulativeWriteTime()
	}
	return write, memSum / memSamples, nil
}

// medianRun repeats liveRun and takes the median write time (wall-time
// noise at millisecond scales otherwise dominates the overhead ratio)
// and the mean memory.
func medianRun(p LiveParams, frac float64, logged bool, reps int) (time.Duration, int64, error) {
	if reps < 1 {
		reps = 1
	}
	writes := make([]time.Duration, 0, reps)
	var mem int64
	for i := 0; i < reps; i++ {
		w, m, err := liveRun(p, frac, logged)
		if err != nil {
			return 0, 0, err
		}
		writes = append(writes, w)
		mem += m
	}
	for i := 1; i < len(writes); i++ {
		for j := i; j > 0 && writes[j] < writes[j-1]; j-- {
			writes[j], writes[j-1] = writes[j-1], writes[j]
		}
	}
	return writes[len(writes)/2], mem / int64(reps), nil
}

// Reps is the repetition count for the live measurements.
var Reps = 5

// Fig9Case1 runs Case 1 — exchanging 20..100% subsets of the domain —
// and returns one row per subset fraction, with write response time
// (Fig 9a) and staging memory (Fig 9c) for original vs logged staging.
func Fig9Case1(p LiveParams) ([]LiveRow, error) {
	fracs := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	rows := make([]LiveRow, 0, len(fracs))
	for _, f := range fracs {
		ds, dsMem, err := medianRun(p, f, false, Reps)
		if err != nil {
			return nil, err
		}
		lg, lgMem, err := medianRun(p, f, true, Reps)
		if err != nil {
			return nil, err
		}
		rows = append(rows, LiveRow{
			Label:            fmt.Sprintf("%d%% subset", int(f*100)),
			DsWrite:          ds,
			LogWrite:         lg,
			WriteOverheadPct: pct(lg, ds),
			DsMem:            dsMem,
			LogMem:           lgMem,
			MemOverheadPct:   pctI(lgMem, dsMem),
		})
	}
	return rows, nil
}

// Fig9Case2 runs Case 2 — the full domain with checkpoint periods 2..6
// — and returns one row per period (Fig 9b write time, Fig 9d memory).
func Fig9Case2(p LiveParams) ([]LiveRow, error) {
	rows := make([]LiveRow, 0, 5)
	for period := 2; period <= 6; period++ {
		q := p
		q.SimPeriod = period
		q.AnaPeriod = period + 1
		ds, dsMem, err := medianRun(q, 1.0, false, Reps)
		if err != nil {
			return nil, err
		}
		lg, lgMem, err := medianRun(q, 1.0, true, Reps)
		if err != nil {
			return nil, err
		}
		rows = append(rows, LiveRow{
			Label:            fmt.Sprintf("%dts period", period),
			DsWrite:          ds,
			LogWrite:         lg,
			WriteOverheadPct: pct(lg, ds),
			DsMem:            dsMem,
			LogMem:           lgMem,
			MemOverheadPct:   pctI(lgMem, dsMem),
		})
	}
	return rows, nil
}

func pct(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	return (float64(a)/float64(b) - 1) * 100
}

func pctI(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return (float64(a)/float64(b) - 1) * 100
}

// Fig9eRow is one scheme's total workflow execution time at Table II
// scale with one injected failure, averaged over seeds.
type Fig9eRow struct {
	Scheme       string
	MeanTotal    time.Duration
	VsCoordPct   float64 // improvement relative to coordinated
	MeanRollback float64
}

// Fig9e reproduces Figure 9(e): total workflow execution time of the
// four schemes (plus the failure-free original-staging baseline) at
// Table II scale with one failure, averaged over seeds.
func Fig9e(seeds []int64) ([]Fig9eRow, error) {
	w := cluster.TableII()
	mach := cluster.Cori()

	// Failure-free baseline with original staging ("Ds" bar).
	base := w
	base.NFailures = 0
	dsRes, err := RunSim(SimParams{Workflow: base, Machine: mach, Scheme: ckpt.Individual})
	if err != nil {
		return nil, err
	}

	schemes := []ckpt.Scheme{ckpt.Coordinated, ckpt.Uncoordinated, ckpt.Hybrid, ckpt.Individual}
	means := make(map[ckpt.Scheme]time.Duration)
	rollbacks := make(map[ckpt.Scheme]float64)
	for _, s := range schemes {
		var sum time.Duration
		var rb int
		for _, seed := range seeds {
			res, err := RunSim(SimParams{Workflow: w, Machine: mach, Scheme: s, Seed: seed})
			if err != nil {
				return nil, err
			}
			sum += res.TotalTime
			rb += res.Rollbacks
		}
		means[s] = sum / time.Duration(len(seeds))
		rollbacks[s] = float64(rb) / float64(len(seeds))
	}
	co := means[ckpt.Coordinated]
	rows := []Fig9eRow{{Scheme: "Ds (failure-free)", MeanTotal: dsRes.TotalTime}}
	for _, s := range schemes {
		rows = append(rows, Fig9eRow{
			Scheme:       s.String() + " +1f",
			MeanTotal:    means[s],
			VsCoordPct:   (1 - float64(means[s])/float64(co)) * 100,
			MeanRollback: rollbacks[s],
		})
	}
	return rows, nil
}

// Fig9eCase2 sweeps the coordinated/uncoordinated comparison over
// checkpoint periods 2..6 ts (the Case 2 series of Figure 9(e)).
func Fig9eCase2(seeds []int64) ([]LiveRowF, error) {
	var rows []LiveRowF
	for period := 2; period <= 6; period++ {
		w := cluster.TableII()
		w.CoordPeriod = period
		w.SimPeriod = period
		w.AnaPeriod = period + 1
		mach := cluster.Cori()
		var coSum, unSum time.Duration
		for _, seed := range seeds {
			co, err := RunSim(SimParams{Workflow: w, Machine: mach, Scheme: ckpt.Coordinated, Seed: seed})
			if err != nil {
				return nil, err
			}
			un, err := RunSim(SimParams{Workflow: w, Machine: mach, Scheme: ckpt.Uncoordinated, Seed: seed})
			if err != nil {
				return nil, err
			}
			coSum += co.TotalTime
			unSum += un.TotalTime
		}
		rows = append(rows, LiveRowF{
			Label:          fmt.Sprintf("%dts period", period),
			Coordinated:    coSum / time.Duration(len(seeds)),
			Uncoordinated:  unSum / time.Duration(len(seeds)),
			ImprovementPct: (1 - float64(unSum)/float64(coSum)) * 100,
		})
	}
	return rows, nil
}

// LiveRowF is a generic labelled coordinated-vs-uncoordinated pair.
type LiveRowF struct {
	Label          string
	Coordinated    time.Duration
	Uncoordinated  time.Duration
	ImprovementPct float64
}

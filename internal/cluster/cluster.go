// Package cluster holds the machine model and the experiment
// configurations of the paper's evaluation (§IV, Tables II and III):
// core allocations, domain sizes, checkpoint periods, and failure
// characteristics for the synthetic workflows run on Cori (Cray XC40).
package cluster

import (
	"time"

	"gospaces/internal/domain"
)

// Machine models the performance-relevant characteristics of the host
// system. The defaults approximate Cori: Haswell nodes (32 cores), an
// Aries interconnect, and a Lustre scratch file system. Absolute
// numbers only set the scale of the simulated clock; the experiment
// conclusions depend on the ratios.
type Machine struct {
	CoresPerNode int
	// StagingBWPerServer is the ingest bandwidth of one staging server
	// core (bytes/second).
	StagingBWPerServer float64
	// StagingLatency is the per-request staging latency.
	StagingLatency time.Duration
	// PFSBandwidth is the aggregate parallel-file-system bandwidth
	// shared by all checkpoint writers (bytes/second).
	PFSBandwidth float64
	// PFSLatency is the per-operation PFS latency.
	PFSLatency time.Duration
	// ComputePerStep is the simulation compute time per timestep.
	ComputePerStep time.Duration
	// AnalyticPerStep is the analytic compute time per timestep.
	AnalyticPerStep time.Duration
	// DetectDelay is failure-detection plus process-recovery time
	// (ULFM shrink + spare join, §III-C).
	DetectDelay time.Duration
}

// Cori returns the default machine model.
func Cori() Machine {
	return Machine{
		CoresPerNode:       32,
		StagingBWPerServer: 1.2e9, // ~1.2 GB/s ingest per staging core
		StagingLatency:     30 * time.Microsecond,
		PFSBandwidth:       700e9 / 10, // a job's share of Cori scratch
		PFSLatency:         2 * time.Millisecond,
		ComputePerStep:     10 * time.Second,
		AnalyticPerStep:    time.Second,
		DetectDelay:        3 * time.Second,
	}
}

// Workflow is one synthetic-workflow experiment configuration.
type Workflow struct {
	Name string
	// Core allocations (Table II / III).
	SimCores      int
	StagingCores  int
	AnalyticCores int
	// Global is the data domain; ElemSize the bytes per cell.
	Global   domain.BBox
	ElemSize int
	// Steps is the coupling-cycle count (40 in the paper).
	Steps int
	// SubsetFrac is the fraction of the domain exchanged per step
	// (Case 1 varies 0.2..1.0).
	SubsetFrac float64
	// Checkpoint periods in timesteps.
	CoordPeriod int
	SimPeriod   int
	AnaPeriod   int
	// CheckpointBytesPerCore is the process-state checkpoint size each
	// core writes to the PFS.
	CheckpointBytesPerCore int64
	// MTBF and failure count for the run.
	MTBF      time.Duration
	NFailures int
	// NServerFailures is how many staging servers fail-stop during the
	// run (fail-stop recovery experiments); StagingSpares is the warm
	// spare pool provisioned to absorb them (defaults to
	// NServerFailures when zero).
	NServerFailures int
	StagingSpares   int
}

// BytesPerStep returns the coupled-data volume exchanged per timestep.
func (w Workflow) BytesPerStep() int64 {
	sub := domain.Subset(w.Global, w.SubsetFrac)
	return sub.Volume() * int64(w.ElemSize)
}

// TotalCores returns the full allocation.
func (w Workflow) TotalCores() int { return w.SimCores + w.StagingCores + w.AnalyticCores }

// TableII returns the Case 1 / Case 2 setup: 256 simulation cores,
// 32 staging cores, 64 analytic cores, a 512x512x256 domain (0.5 GB per
// step, 20 GB over 40 steps), checkpoint periods 4 (coordinated), 4
// (simulation), 5 (analytic), and MTBF 10 min.
func TableII() Workflow {
	return Workflow{
		Name:                   "table2",
		SimCores:               256,
		StagingCores:           32,
		AnalyticCores:          64,
		Global:                 domain.Box3(0, 0, 0, 511, 511, 255),
		ElemSize:               8,
		Steps:                  40,
		SubsetFrac:             1.0,
		CoordPeriod:            4,
		SimPeriod:              4,
		AnaPeriod:              5,
		CheckpointBytesPerCore: 64 << 20,
		MTBF:                   10 * time.Minute,
		NFailures:              1,
	}
}

// TableIII returns the five scalability configurations: 704 to 11264
// total cores with the per-step data volume doubling at each scale
// (1..16 GB per step; 40..640 GB over 40 steps), checkpoint periods
// 8/8/10, and 1..3 failures at MTBF 600/300/200 s.
func TableIII() []Workflow {
	mtbfs := []time.Duration{600 * time.Second, 300 * time.Second, 200 * time.Second, 150 * time.Second, 120 * time.Second}
	nfail := []int{1, 2, 3, 3, 3}
	// Domain doubles one dimension per scale step: 1 GB/step at the
	// smallest scale (1024x512x256 cells x 8 B).
	dims := [][3]int64{
		{1024, 512, 256},
		{1024, 1024, 256},
		{1024, 1024, 512},
		{2048, 1024, 512},
		{2048, 2048, 512},
	}
	var out []Workflow
	simCores := 512
	for i := 0; i < 5; i++ {
		w := Workflow{
			Name:                   scaleName(simCores),
			SimCores:               simCores,
			StagingCores:           simCores / 8,
			AnalyticCores:          simCores / 4,
			Global:                 domain.Box3(0, 0, 0, dims[i][0]-1, dims[i][1]-1, dims[i][2]-1),
			ElemSize:               8,
			Steps:                  40,
			SubsetFrac:             1.0,
			CoordPeriod:            8,
			SimPeriod:              8,
			AnaPeriod:              10,
			CheckpointBytesPerCore: 64 << 20,
			MTBF:                   mtbfs[i],
			NFailures:              nfail[i],
		}
		out = append(out, w)
		simCores *= 2
	}
	return out
}

func scaleName(simCores int) string {
	total := simCores + simCores/8 + simCores/4
	switch {
	case total >= 10000:
		return "11264-cores"
	case total >= 5000:
		return "5632-cores"
	case total >= 2500:
		return "2816-cores"
	case total >= 1200:
		return "1408-cores"
	default:
		return "704-cores"
	}
}

package cluster

import (
	"testing"
	"time"
)

func TestTableIIMatchesPaper(t *testing.T) {
	w := TableII()
	if w.TotalCores() != 352 {
		t.Fatalf("total cores = %d, want 352", w.TotalCores())
	}
	if w.SimCores != 256 || w.StagingCores != 32 || w.AnalyticCores != 64 {
		t.Fatalf("allocation = %d/%d/%d", w.SimCores, w.StagingCores, w.AnalyticCores)
	}
	if w.Global.Volume() != 512*512*256 {
		t.Fatalf("domain volume = %d", w.Global.Volume())
	}
	// 40 timesteps of the full domain at 8 B/cell = 20 GB.
	total := w.BytesPerStep() * int64(w.Steps)
	if total != 20<<30 {
		t.Fatalf("40-step data = %d bytes, want 20 GiB", total)
	}
	if w.CoordPeriod != 4 || w.SimPeriod != 4 || w.AnaPeriod != 5 {
		t.Fatalf("periods = %d/%d/%d", w.CoordPeriod, w.SimPeriod, w.AnaPeriod)
	}
	if w.MTBF != 10*time.Minute {
		t.Fatalf("mtbf = %v", w.MTBF)
	}
}

func TestTableIIIMatchesPaper(t *testing.T) {
	ws := TableIII()
	if len(ws) != 5 {
		t.Fatalf("%d scales", len(ws))
	}
	wantTotal := []int{704, 1408, 2816, 5632, 11264}
	wantSim := []int{512, 1024, 2048, 4096, 8192}
	wantGB := []int64{40, 80, 160, 320, 640}
	for i, w := range ws {
		if w.TotalCores() != wantTotal[i] {
			t.Fatalf("scale %d: total %d, want %d", i, w.TotalCores(), wantTotal[i])
		}
		if w.SimCores != wantSim[i] {
			t.Fatalf("scale %d: sim %d", i, w.SimCores)
		}
		if w.StagingCores != wantSim[i]/8 || w.AnalyticCores != wantSim[i]/4 {
			t.Fatalf("scale %d: staging/analytic %d/%d", i, w.StagingCores, w.AnalyticCores)
		}
		total := w.BytesPerStep() * int64(w.Steps)
		if total != wantGB[i]<<30 {
			t.Fatalf("scale %d: data %d bytes, want %d GiB", i, total, wantGB[i])
		}
		if w.CoordPeriod != 8 || w.SimPeriod != 8 || w.AnaPeriod != 10 {
			t.Fatalf("scale %d: periods %d/%d/%d", i, w.CoordPeriod, w.SimPeriod, w.AnaPeriod)
		}
	}
	// MTBF / failure counts from Table III's first three columns.
	if ws[0].MTBF != 600*time.Second || ws[0].NFailures != 1 {
		t.Fatalf("scale 0 failures: %v/%d", ws[0].MTBF, ws[0].NFailures)
	}
	if ws[1].MTBF != 300*time.Second || ws[1].NFailures != 2 {
		t.Fatalf("scale 1 failures: %v/%d", ws[1].MTBF, ws[1].NFailures)
	}
	if ws[2].MTBF != 200*time.Second || ws[2].NFailures != 3 {
		t.Fatalf("scale 2 failures: %v/%d", ws[2].MTBF, ws[2].NFailures)
	}
}

func TestSubsetScalesBytesPerStep(t *testing.T) {
	w := TableII()
	w.SubsetFrac = 0.5
	half := w.BytesPerStep()
	w.SubsetFrac = 1.0
	full := w.BytesPerStep()
	ratio := float64(half) / float64(full)
	if ratio < 0.45 || ratio > 0.55 {
		t.Fatalf("half subset ratio = %f", ratio)
	}
}

func TestCoriModelSane(t *testing.T) {
	m := Cori()
	if m.CoresPerNode <= 0 || m.PFSBandwidth <= 0 || m.StagingBWPerServer <= 0 {
		t.Fatalf("machine = %+v", m)
	}
	if m.ComputePerStep <= 0 || m.DetectDelay <= 0 {
		t.Fatalf("times = %+v", m)
	}
}

package staging

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"gospaces/internal/dht"
	"gospaces/internal/domain"
	"gospaces/internal/transport"
)

func testGroup(t *testing.T, nservers int) *Group {
	t.Helper()
	g, err := StartGroup(transport.NewInProc(), "stage", Config{
		Global:   domain.Box3(0, 0, 0, 63, 63, 31),
		NServers: nservers,
		Bits:     2,
		ElemSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return g
}

func fill(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestPutGetRoundTripAcrossServers(t *testing.T) {
	g := testGroup(t, 4)
	c, err := g.NewClient("sim/0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	global := g.Config().Global
	data := fill(domain.BufLen(global, 8), 1)
	if err := c.Put("field", 1, global, data); err != nil {
		t.Fatal(err)
	}
	got, v, err := c.Get("field", 1, global)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 || !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch (v=%d)", v)
	}
	// Sub-region get.
	sub := domain.Box3(10, 10, 10, 40, 40, 20)
	gotSub, _, err := c.Get("field", 1, sub)
	if err != nil {
		t.Fatal(err)
	}
	want := domain.Extract(data, global, sub, 8)
	if !bytes.Equal(gotSub, want) {
		t.Fatal("sub-region mismatch")
	}
}

func TestScatterFromRanksGatherWhole(t *testing.T) {
	g := testGroup(t, 4)
	global := g.Config().Global
	dec, err := domain.NewDecomposition(global, []int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	full := fill(domain.BufLen(global, 8), 2)
	for r := 0; r < dec.NRanks; r++ {
		rb, _ := dec.RankBox(r)
		c, err := g.NewClient("sim/" + string(rune('0'+r)))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Put("f", 7, rb, domain.Extract(full, global, rb, 8)); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	reader, _ := g.NewClient("ana/0")
	defer reader.Close()
	got, _, err := reader.Get("f", 7, global)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, full) {
		t.Fatal("gather mismatch")
	}
}

func TestGetLatestAndExplicit(t *testing.T) {
	g := testGroup(t, 2)
	c, _ := g.NewClient("sim/0")
	defer c.Close()
	b := domain.Box3(0, 0, 0, 15, 15, 15)
	d1 := fill(domain.BufLen(b, 8), 3)
	d2 := fill(domain.BufLen(b, 8), 4)
	if err := c.PutWithLog("f", 1, b, d1); err != nil {
		t.Fatal(err)
	}
	if err := c.PutWithLog("f", 2, b, d2); err != nil {
		t.Fatal(err)
	}
	got, v, err := c.GetWithLog("f", NoVersion, b)
	if err != nil || v != 2 || !bytes.Equal(got, d2) {
		t.Fatalf("latest: v=%d err=%v", v, err)
	}
	got1, _, err := c.GetWithLog("f", 1, b)
	if err != nil || !bytes.Equal(got1, d1) {
		t.Fatalf("explicit v1: %v", err)
	}
}

func TestUnloggedKeepsLatestOnly(t *testing.T) {
	g := testGroup(t, 2)
	c, _ := g.NewClient("sim/0")
	defer c.Close()
	b := domain.Box3(0, 0, 0, 15, 15, 15)
	for v := int64(1); v <= 3; v++ {
		if err := c.Put("f", v, b, fill(domain.BufLen(b, 8), v)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := c.Get("f", 1, b); err == nil {
		t.Fatal("old version still staged in unlogged mode")
	}
	if _, v, err := c.Get("f", NoVersion, b); err != nil || v != 3 {
		t.Fatalf("latest = %d err=%v", v, err)
	}
	vs, err := c.Versions("f")
	if err != nil || len(vs) != 1 || vs[0] != 3 {
		t.Fatalf("versions = %v err=%v", vs, err)
	}
}

func TestLoggedRetainsForReplayUntilGC(t *testing.T) {
	g := testGroup(t, 2)
	prod, _ := g.NewClient("sim/0")
	cons, _ := g.NewClient("ana/0")
	defer prod.Close()
	defer cons.Close()
	b := domain.Box3(0, 0, 0, 15, 15, 15)
	for v := int64(1); v <= 3; v++ {
		if err := prod.PutWithLog("f", v, b, fill(domain.BufLen(b, 8), v)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := cons.GetWithLog("f", v, b); err != nil {
			t.Fatal(err)
		}
	}
	// All three versions resident: consumer could replay any of them.
	vs, _ := prod.Versions("f")
	if len(vs) != 3 {
		t.Fatalf("versions before GC = %v", vs)
	}
	// Consumer checkpoints: versions 1..2 become collectible (3 is latest).
	freed, err := cons.WorkflowCheck()
	if err != nil {
		t.Fatal(err)
	}
	if freed <= 0 {
		t.Fatal("GC freed nothing")
	}
	vs, _ = prod.Versions("f")
	if len(vs) != 1 || vs[0] != 3 {
		t.Fatalf("versions after GC = %v", vs)
	}
}

// TestConsumerFailureReplay is the paper's case 1 (Fig. 2) end to end:
// the analytic fails, restarts from its checkpoint, and must re-read
// the versions it consumed before the failure even though the
// simulation has staged newer data meanwhile.
func TestConsumerFailureReplay(t *testing.T) {
	g := testGroup(t, 4)
	prod, _ := g.NewClient("sim/0")
	cons, _ := g.NewClient("ana/0")
	defer prod.Close()
	defer cons.Close()
	b := domain.Box3(0, 0, 0, 31, 31, 31)
	payload := map[int64][]byte{}
	// ts 1..4: produce and consume; both checkpoint at ts 2.
	for ts := int64(1); ts <= 4; ts++ {
		payload[ts] = fill(domain.BufLen(b, 8), 100+ts)
		if err := prod.PutWithLog("f", ts, b, payload[ts]); err != nil {
			t.Fatal(err)
		}
		got, _, err := cons.GetWithLog("f", ts, b)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload[ts]) {
			t.Fatalf("ts%d initial read mismatch", ts)
		}
		if ts == 2 {
			if _, err := prod.WorkflowCheck(); err != nil {
				t.Fatal(err)
			}
			if _, err := cons.WorkflowCheck(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Consumer fails after ts4 and restarts from its ts-2 checkpoint.
	replay, err := cons.WorkflowRestart()
	if err != nil {
		t.Fatal(err)
	}
	if replay == 0 {
		t.Fatal("no replay events")
	}
	// Producer moves on to ts 5,6 while consumer replays ts 3,4.
	for i, ts := range []int64{3, 4} {
		newTs := int64(5 + i)
		payload[newTs] = fill(domain.BufLen(b, 8), 100+newTs)
		if err := prod.PutWithLog("f", newTs, b, payload[newTs]); err != nil {
			t.Fatal(err)
		}
		got, v, err := cons.GetWithLog("f", ts, b)
		if err != nil {
			t.Fatalf("replay ts%d: %v", ts, err)
		}
		if v != ts || !bytes.Equal(got, payload[ts]) {
			t.Fatalf("replay ts%d returned v%d / wrong data", ts, v)
		}
	}
	// Consumer caught up; normal reads resume.
	got, _, err := cons.GetWithLog("f", 5, b)
	if err != nil || !bytes.Equal(got, payload[5]) {
		t.Fatalf("post-replay read: %v", err)
	}
	st, _ := cons.Stats()
	if st.ReplayGets == 0 {
		t.Fatal("no replay gets recorded")
	}
}

// TestProducerFailureSuppression is the paper's case 2 (Fig. 2): the
// simulation fails and its re-issued writes must not be staged twice.
func TestProducerFailureSuppression(t *testing.T) {
	g := testGroup(t, 4)
	prod, _ := g.NewClient("sim/0")
	cons, _ := g.NewClient("ana/0")
	defer prod.Close()
	defer cons.Close()
	b := domain.Box3(0, 0, 0, 31, 31, 31)
	payload := map[int64][]byte{}
	for ts := int64(1); ts <= 3; ts++ {
		payload[ts] = fill(domain.BufLen(b, 8), 200+ts)
		if err := prod.PutWithLog("f", ts, b, payload[ts]); err != nil {
			t.Fatal(err)
		}
		if ts == 1 {
			if _, err := prod.WorkflowCheck(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Producer fails, restarts from ts-1 checkpoint, re-executes ts 2,3.
	if _, err := prod.WorkflowRestart(); err != nil {
		t.Fatal(err)
	}
	for _, ts := range []int64{2, 3} {
		// Even with DIFFERENT (recomputed) bytes, the staged original
		// must win: consumers already saw it.
		if err := prod.PutWithLog("f", ts, b, fill(domain.BufLen(b, 8), 999)); err != nil {
			t.Fatal(err)
		}
	}
	st, _ := prod.Stats()
	if st.SuppressedPuts == 0 {
		t.Fatal("no suppressed puts recorded")
	}
	// The data staged during the initial execution is what readers see.
	for _, ts := range []int64{2, 3} {
		got, _, err := cons.GetWithLog("f", ts, b)
		if err != nil || !bytes.Equal(got, payload[ts]) {
			t.Fatalf("ts%d data changed after producer replay: %v", ts, err)
		}
	}
	// New work after replay is staged normally.
	if err := prod.PutWithLog("f", 4, b, fill(domain.BufLen(b, 8), 204)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cons.GetWithLog("f", 4, b); err != nil {
		t.Fatal(err)
	}
}

func TestIncompleteCoverageError(t *testing.T) {
	g := testGroup(t, 2)
	c, _ := g.NewClient("sim/0")
	defer c.Close()
	b := domain.Box3(0, 0, 0, 15, 15, 15)
	if err := c.Put("f", 1, b, fill(domain.BufLen(b, 8), 1)); err != nil {
		t.Fatal(err)
	}
	// Ask for a region exceeding what was staged.
	wide := domain.Box3(0, 0, 0, 31, 15, 15)
	if _, _, err := c.Get("f", 1, wide); err == nil {
		t.Fatal("incomplete get succeeded")
	}
}

func TestPutBufferSizeValidation(t *testing.T) {
	g := testGroup(t, 2)
	c, _ := g.NewClient("sim/0")
	defer c.Close()
	b := domain.Box3(0, 0, 0, 7, 7, 7)
	if err := c.Put("f", 1, b, make([]byte, 10)); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestInconsistentLatestDetected(t *testing.T) {
	g := testGroup(t, 4)
	c, _ := g.NewClient("sim/0")
	defer c.Close()
	global := g.Config().Global
	// v1 everywhere.
	if err := c.Put("f", 1, global, fill(domain.BufLen(global, 8), 1)); err != nil {
		t.Fatal(err)
	}
	// v2 only in a corner (touches a strict subset of servers).
	corner := domain.Box3(0, 0, 0, 7, 7, 7)
	if err := c.Put("f", 2, corner, fill(domain.BufLen(corner, 8), 2)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get("f", NoVersion, global); err == nil ||
		!strings.Contains(err.Error(), "explicit versions") {
		t.Fatalf("inconsistent latest not detected: %v", err)
	}
}

func TestStatsAggregation(t *testing.T) {
	g := testGroup(t, 3)
	c, _ := g.NewClient("sim/0")
	defer c.Close()
	b := g.Config().Global
	if err := c.PutWithLog("f", 1, b, fill(domain.BufLen(b, 8), 1)); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.StoreBytes != int64(domain.BufLen(b, 8)) {
		t.Fatalf("store bytes %d, want %d", st.StoreBytes, domain.BufLen(b, 8))
	}
	if st.Puts == 0 || st.LogMetaBytes == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if c.CumulativeWriteTime() <= 0 {
		t.Fatal("no client write time recorded")
	}
}

func TestShardStorage(t *testing.T) {
	g := testGroup(t, 2)
	c, _ := g.NewClient("corec/0")
	defer c.Close()
	conn := c.ShardConn(1)
	if _, err := conn.Call(ShardPutReq{Key: "k", Shard: 3, Data: []byte{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	raw, err := conn.Call(ShardGetReq{Key: "k", Shard: 3})
	if err != nil {
		t.Fatal(err)
	}
	resp := raw.(ShardGetResp)
	if !resp.Found || !bytes.Equal(resp.Data, []byte{1, 2, 3}) {
		t.Fatalf("resp = %+v", resp)
	}
	if raw, _ := conn.Call(ShardGetReq{Key: "k", Shard: 9}); raw.(ShardGetResp).Found {
		t.Fatal("phantom shard")
	}
	if _, err := conn.Call(ShardDropReq{Key: "k"}); err != nil {
		t.Fatal(err)
	}
	if raw, _ := conn.Call(ShardGetReq{Key: "k", Shard: 3}); raw.(ShardGetResp).Found {
		t.Fatal("shard survived drop")
	}
}

func TestOverTCPTransport(t *testing.T) {
	tr := transport.NewTCP()
	cfg := Config{Global: domain.Box3(0, 0, 0, 31, 31, 15), NServers: 2, Bits: 2, ElemSize: 4}
	// Start servers on ephemeral ports.
	var addrs []string
	for i := 0; i < cfg.NServers; i++ {
		srv := NewServer(i)
		ep, err := tr.ListenTCP("127.0.0.1:0", srv.Handle)
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		addrs = append(addrs, ep.Addr())
	}
	pool, err := NewPool(tr, addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := pool.NewClient("sim/0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	b := cfg.Global
	data := fill(domain.BufLen(b, 4), 9)
	if err := c.PutWithLog("f", 1, b, data); err != nil {
		t.Fatal(err)
	}
	got, _, err := c.GetWithLog("f", 1, b)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("tcp round trip: %v", err)
	}
	if _, err := c.WorkflowCheck(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WorkflowRestart(); err != nil {
		t.Fatal(err)
	}
}

func TestNewPoolValidation(t *testing.T) {
	tr := transport.NewInProc()
	cfg := Config{Global: domain.Box3(0, 0, 0, 7, 7, 7), NServers: 2, Bits: 2, ElemSize: 8}
	if _, err := NewPool(tr, []string{"only-one"}, cfg); err == nil {
		t.Fatal("addr count mismatch accepted")
	}
	cfg.ElemSize = 0
	if _, err := NewPool(tr, []string{"a", "b"}, cfg); err == nil {
		t.Fatal("zero elem size accepted")
	}
}

// TestServerLossAndShardRebuild exercises the process/data resilience
// path: a staging server dies and is replaced empty; shard data
// protected by the corec layer survives (degraded read) and is rebuilt
// to full redundancy on the replacement.
func TestServerLossAndShardRebuild(t *testing.T) {
	g := testGroup(t, 4)
	c, _ := g.NewClient("res/0")
	defer c.Close()
	// Place shards 0..3 of a key on servers 0..3 by hand.
	for i := 0; i < 4; i++ {
		if _, err := c.ShardConn(i).Call(ShardPutReq{Key: "k", Shard: i, Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	// Server 2 dies and is replaced empty.
	if err := g.ReplaceServer(2); err != nil {
		t.Fatal(err)
	}
	if raw, err := c.ShardConn(2).Call(ShardGetReq{Key: "k", Shard: 2}); err != nil {
		t.Fatal(err)
	} else if raw.(ShardGetResp).Found {
		t.Fatal("replacement server kept old shard state")
	}
	// Other servers unaffected.
	raw, err := c.ShardConn(1).Call(ShardGetReq{Key: "k", Shard: 1})
	if err != nil || !raw.(ShardGetResp).Found {
		t.Fatalf("surviving shard lost: %v", err)
	}
	// Rebuild shard 2 onto the replacement.
	if _, err := c.ShardConn(2).Call(ShardPutReq{Key: "k", Shard: 2, Data: []byte{2}}); err != nil {
		t.Fatal(err)
	}
	if err := g.ReplaceServer(9); err == nil {
		t.Fatal("bogus server id accepted")
	}
}

// TestServerLossObjectRerun: object data on a lost server is restored
// by the producer re-staging (the crash-consistency protocol's job).
func TestServerLossObjectRerun(t *testing.T) {
	g := testGroup(t, 2)
	prod, _ := g.NewClient("sim/0")
	defer prod.Close()
	b := domain.Box3(0, 0, 0, 15, 15, 15)
	data := fill(domain.BufLen(b, 8), 42)
	if err := prod.PutWithLog("f", 1, b, data); err != nil {
		t.Fatal(err)
	}
	if err := g.ReplaceServer(0); err != nil {
		t.Fatal(err)
	}
	// The read now fails on the empty replacement...
	if _, _, err := prod.Get("f", 1, b); err == nil {
		t.Fatal("read of lost data succeeded")
	}
	// ...until the producer re-stages the version (fresh log on the
	// replacement accepts it; the surviving server suppresses its half).
	if err := prod.PutWithLog("f", 1, b, data); err != nil {
		t.Fatal(err)
	}
	got, _, err := prod.GetWithLog("f", 1, b)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("re-staged read: %v", err)
	}
}

func TestHilbertCurveStaging(t *testing.T) {
	g, err := StartGroup(transport.NewInProc(), "hilb", Config{
		Global:   domain.Box3(0, 0, 0, 63, 63, 31),
		NServers: 4,
		Bits:     3,
		ElemSize: 8,
		Curve:    dht.CurveHilbert,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	c, _ := g.NewClient("sim/0")
	defer c.Close()
	global := g.Config().Global
	data := fill(domain.BufLen(global, 8), 77)
	if err := c.PutWithLog("f", 1, global, data); err != nil {
		t.Fatal(err)
	}
	got, _, err := c.GetWithLog("f", 1, global)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("hilbert-indexed round trip: %v", err)
	}
}

// TestMemoryBudgetBackpressure: a bounded staging area rejects puts the
// log still needs, and admits them again once consumer checkpoints let
// GC reclaim the space.
func TestMemoryBudgetBackpressure(t *testing.T) {
	b := domain.Box3(0, 0, 0, 15, 15, 15)
	stepBytes := int64(domain.BufLen(b, 8))
	g, err := StartGroup(transport.NewInProc(), "budget", Config{
		Global:   b,
		NServers: 1,
		Bits:     2,
		ElemSize: 8,
		// Room for ~3 versions.
		MemoryBudgetPerServer: 3*stepBytes + stepBytes/2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	prod, _ := g.NewClient("sim/0")
	cons, _ := g.NewClient("ana/0")
	defer prod.Close()
	defer cons.Close()

	// Fill: 3 versions staged and read, all retained for replay.
	for v := int64(1); v <= 3; v++ {
		if err := prod.PutWithLog("f", v, b, fill(int(stepBytes), v)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := cons.GetWithLog("f", v, b); err != nil {
			t.Fatal(err)
		}
	}
	// The 4th version cannot fit: the log still needs v1..v3.
	err = prod.PutWithLog("f", 4, b, fill(int(stepBytes), 4))
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("over-budget put: %v", err)
	}
	// Consumer checkpoints: v1..v2 become collectible, the put fits.
	if _, err := cons.WorkflowCheck(); err != nil {
		t.Fatal(err)
	}
	if err := prod.PutWithLog("f", 4, b, fill(int(stepBytes), 4)); err != nil {
		t.Fatalf("post-GC put rejected: %v", err)
	}
	if _, _, err := cons.GetWithLog("f", 4, b); err != nil {
		t.Fatal(err)
	}
}

package staging

import (
	"bytes"
	"testing"

	"gospaces/internal/domain"
)

// counter reads a named metric off a server's registry.
func counter(s *Server, name string) int64 {
	return s.reg.Counter(name).Value()
}

// syncReplica compares the replica server 1 hosts for slot 0 against
// the origin's own state, byte-for-byte on the log snapshot.
func assertReplicaConverged(t *testing.T, g *Group) {
	t.Helper()
	own, err := g.Server(0).buildReplState()
	if err != nil {
		t.Fatal(err)
	}
	rep := fetchReplica(t, g.Server(1), 0)
	if rep.Seq != own.Seq {
		t.Fatalf("replica at seq %d, origin at %d", rep.Seq, own.Seq)
	}
	if !bytes.Equal(rep.Wlog, own.Wlog) {
		t.Fatal("replica log snapshot diverges from origin after re-sync")
	}
	if len(rep.Objects) != len(own.Objects) {
		t.Fatalf("replica holds %d objects, origin %d", len(rep.Objects), len(own.Objects))
	}
	for i := range rep.Objects {
		if !bytes.Equal(rep.Objects[i].Data, own.Objects[i].Data) {
			t.Fatalf("object %d payload mismatch", i)
		}
	}
}

// dropReplica wipes the replica host's state for slot 0 and forces the
// origin to re-dial — the shape of a peer that lost its hosted replica
// (a promoted spare, a restarted host).
func dropReplica(g *Group) {
	host := g.Server(1)
	host.replicas.mu.Lock()
	delete(host.replicas.slots, 0)
	host.replicas.mu.Unlock()
	origin := g.Server(0)
	origin.repl.mu.Lock()
	addrs := make([]string, 0, len(origin.repl.peers))
	for a := range origin.repl.peers {
		addrs = append(addrs, a)
	}
	origin.repl.mu.Unlock()
	for _, a := range addrs {
		origin.repl.dropPeer(a)
	}
}

// TestReplDeltaHealsLaggingPeer: a peer that lost its replica is healed
// by re-shipping only the retained window — a delta, not a snapshot —
// and converges byte-identically to the origin.
func TestReplDeltaHealsLaggingPeer(t *testing.T) {
	g := replGroup(t, 2, 1)
	c, err := g.NewClient("sim/0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	global := g.Config().Global
	n := domain.BufLen(global, 8)
	for v := int64(1); v <= 3; v++ {
		if err := c.PutWithLog("field", v, global, fill(n, v)); err != nil {
			t.Fatal(err)
		}
	}
	origin := g.Server(0)
	if got := counter(origin, "repl_snapshots_sent"); got != 0 {
		t.Fatalf("initial sync used %d full snapshots; the window covers seq 0", got)
	}
	if counter(origin, "repl_delta_resyncs") == 0 {
		t.Fatal("fresh peer was not healed with a delta")
	}
	assertReplicaConverged(t, g)

	// Kill the hosted replica and the stream connection; the next put
	// probes the peer (back at seq 0) and re-ships the whole window.
	dropReplica(g)
	before := counter(origin, "repl_delta_resyncs")
	if err := c.PutWithLog("field", 4, global, fill(n, 4)); err != nil {
		t.Fatal(err)
	}
	if counter(origin, "repl_delta_resyncs") <= before {
		t.Fatal("lagging peer inside the window was not delta-healed")
	}
	if got := counter(origin, "repl_snapshots_sent"); got != 0 {
		t.Fatalf("delta-coverable peer got %d full snapshots", got)
	}
	assertReplicaConverged(t, g)
}

// TestReplSnapshotFallbackPastAnchor: once anchor compaction has
// dropped the window prefix, a peer behind the anchor cannot be
// delta-healed — the origin falls back to the freshest anchor (a full
// snapshot) and the peer still converges byte-identically.
func TestReplSnapshotFallbackPastAnchor(t *testing.T) {
	g := replGroup(t, 2, 1)
	c, err := g.NewClient("sim/0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	global := g.Config().Global
	n := domain.BufLen(global, 8)
	for v := int64(1); v <= 3; v++ {
		if err := c.PutWithLog("field", v, global, fill(n, v)); err != nil {
			t.Fatal(err)
		}
	}
	origin := g.Server(0)
	// Shrink the window so compaction advances the anchor past the
	// shipped history, then lose the replica: the peer's position (0)
	// now predates the anchor.
	origin.SetReplWindow(1)
	if counter(origin, "repl_anchor_compactions") == 0 {
		t.Fatal("window shrink compacted nothing")
	}
	dropReplica(g)
	if err := c.PutWithLog("field", 4, global, fill(n, 4)); err != nil {
		t.Fatal(err)
	}
	if counter(origin, "repl_snapshots_sent") == 0 {
		t.Fatal("peer behind the anchor was not healed with a snapshot")
	}
	assertReplicaConverged(t, g)
}

// TestReplSnapshotOnlyBaseline: SetReplWindow(0) disables retention —
// every re-sync ships a full snapshot, the pre-incremental baseline the
// wfbench tier experiment measures against.
func TestReplSnapshotOnlyBaseline(t *testing.T) {
	g := replGroup(t, 2, 1)
	g.Server(0).SetReplWindow(0)
	c, err := g.NewClient("sim/0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	global := g.Config().Global
	n := domain.BufLen(global, 8)
	for v := int64(1); v <= 2; v++ {
		if err := c.PutWithLog("field", v, global, fill(n, v)); err != nil {
			t.Fatal(err)
		}
	}
	origin := g.Server(0)
	if counter(origin, "repl_snapshots_sent") == 0 {
		t.Fatal("snapshot-only mode shipped no snapshots")
	}
	if counter(origin, "repl_delta_resyncs") != 0 {
		t.Fatal("snapshot-only mode served a delta")
	}
	if counter(origin, "repl_snapshot_bytes") == 0 {
		t.Fatal("snapshot bytes not accounted")
	}
	assertReplicaConverged(t, g)
}

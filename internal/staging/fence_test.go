package staging

import (
	"errors"
	"testing"
	"time"
)

// White-box tests for the server-side half of recovery-leader
// election: the lease CAS, the fencing admit check, and the promotion
// intent journal.

func TestLeaseCASGrantAndRefuse(t *testing.T) {
	var l leaseState
	now := time.Now()
	ttl := 100 * time.Millisecond

	r := l.cas(LeaseCASReq{Holder: "a", Token: 1, TTL: ttl}, now)
	if !r.Granted || r.Holder != "a" || r.Token != 1 {
		t.Fatalf("fresh grant = %+v", r)
	}

	// Held by a: a competing holder is refused regardless of token.
	r = l.cas(LeaseCASReq{Holder: "b", Token: 9, TTL: ttl}, now.Add(10*time.Millisecond))
	if r.Granted {
		t.Fatalf("competing grant while held = %+v", r)
	}
	if r.Holder != "a" || r.MaxToken != 1 {
		t.Fatalf("refusal snapshot = %+v", r)
	}

	// The holder renews under the same token, extending the lease.
	r = l.cas(LeaseCASReq{Holder: "a", Token: 1, TTL: ttl}, now.Add(50*time.Millisecond))
	if !r.Granted {
		t.Fatalf("renewal = %+v", r)
	}

	// Expired: a new holder wins, but only above the high-water mark.
	late := now.Add(200 * time.Millisecond)
	r = l.cas(LeaseCASReq{Holder: "b", Token: 0, TTL: ttl}, late)
	if r.Granted {
		t.Fatalf("stale-token grant after expiry = %+v", r)
	}
	r = l.cas(LeaseCASReq{Holder: "b", Token: r.MaxToken + 1, TTL: ttl}, late)
	if !r.Granted || r.Holder != "b" {
		t.Fatalf("post-expiry grant = %+v", r)
	}
}

func TestLeaseCASRelease(t *testing.T) {
	var l leaseState
	now := time.Now()
	ttl := time.Minute
	if r := l.cas(LeaseCASReq{Holder: "a", Token: 1, TTL: ttl}, now); !r.Granted {
		t.Fatalf("grant = %+v", r)
	}

	// Someone else's release is a no-op.
	l.cas(LeaseCASReq{Holder: "b", Release: true}, now)
	if r := l.cas(LeaseCASReq{Holder: "b", Token: 2, TTL: ttl}, now); r.Granted {
		t.Fatalf("grant after foreign release = %+v (lease should still be held by a)", r)
	}

	// The holder's release frees the record immediately — no TTL wait —
	// so a competing candidate wins the next round.
	l.cas(LeaseCASReq{Holder: "a", Release: true}, now)
	r := l.cas(LeaseCASReq{Holder: "b", Token: 2, TTL: ttl}, now)
	if !r.Granted || r.Holder != "b" {
		t.Fatalf("grant after release = %+v", r)
	}
}

func TestLeaseFenceMonotonic(t *testing.T) {
	var l leaseState
	now := time.Now()
	l.cas(LeaseCASReq{Holder: "a", Token: 3, TTL: time.Minute}, now)

	// The grant raised the fence: older tokens are rejected, the
	// granted token itself is admitted.
	if err := l.admit(2); !IsFenced(err) {
		t.Fatalf("admit(2) = %v, want fencing rejection", err)
	}
	if err := l.admit(3); err != nil {
		t.Fatalf("admit(3) = %v", err)
	}

	// Admitting a newer token raises the fence even without a grant.
	if err := l.admit(7); err != nil {
		t.Fatalf("admit(7) = %v", err)
	}
	if err := l.admit(6); !IsFenced(err) {
		t.Fatalf("admit(6) after fence 7 = %v", err)
	}

	// A release keeps the fence: a deposed holder cannot sneak back in
	// by releasing and replaying an old token.
	l.cas(LeaseCASReq{Holder: "a", Release: true}, now)
	if err := l.admit(5); !IsFenced(err) {
		t.Fatalf("admit(5) after release = %v, want fencing rejection", err)
	}

	var fe *FencedError
	err := l.admit(1)
	if !errors.As(err, &fe) || fe.Token != 1 || fe.Fence != 7 {
		t.Fatalf("typed rejection = %v", err)
	}
	// The string form survives transports that flatten errors.
	if !IsFenced(errors.New(err.Error())) {
		t.Fatalf("flattened rejection not recognized: %q", err.Error())
	}
}

func TestIntentJournal(t *testing.T) {
	var l leaseState
	now := time.Now()

	l.putIntent(PromotionIntent{Slot: 1, DeadAddr: "d", Spare: "s1", Token: 2})
	// A lower-token write (a deposed leader racing) never clobbers.
	l.putIntent(PromotionIntent{Slot: 1, DeadAddr: "d", Spare: "s0", Token: 1})
	// The new leader's re-journal (same or higher token) wins.
	l.putIntent(PromotionIntent{Slot: 1, DeadAddr: "d", Spare: "s1", Token: 5})
	l.putIntent(PromotionIntent{Slot: 3, DeadAddr: "e", Spare: "s2", Token: 4})

	info := l.info(now)
	if len(info.Intents) != 2 {
		t.Fatalf("intents = %+v", info.Intents)
	}
	for _, in := range info.Intents {
		if in.Slot == 1 && (in.Spare != "s1" || in.Token != 5) {
			t.Fatalf("slot 1 intent = %+v", in)
		}
	}

	l.clearIntent(1)
	info = l.info(now)
	if len(info.Intents) != 1 || info.Intents[0].Slot != 3 {
		t.Fatalf("intents after clear = %+v", info.Intents)
	}
}

package staging

import (
	"reflect"
	"testing"

	"gospaces/internal/codec"
	"gospaces/internal/domain"
	"gospaces/internal/locks"
	"gospaces/internal/wlog"
)

// roundTrip encodes v through the fast path and decodes it back,
// failing the test if the fast path declined or the value changed.
func roundTrip(t *testing.T, v any) any {
	t.Helper()
	buf, ok := codec.Marshal(nil, v)
	if !ok {
		t.Fatalf("%T did not take the fast path", v)
	}
	got, err := codec.Unmarshal(buf)
	if err != nil {
		t.Fatalf("decode %T: %v", v, err)
	}
	if !reflect.DeepEqual(got, v) {
		t.Fatalf("%T round trip mismatch:\n got %#v\nwant %#v", v, got, v)
	}
	return got
}

func TestFastpathRoundTrip(t *testing.T) {
	box := domain.Box3(0, 0, 0, 15, 15, 15)
	rec := wlog.Record{Op: wlog.OpPut, App: "sim/3", Name: "field", Version: 7, BBox: box, Bytes: 4096}
	lock := LockRecord{Name: "step", Holder: "sim/3", Write: true, Seq: 9, Ok: true}
	state := ReplState{
		Seq:  42,
		Wlog: []byte{1, 2, 3},
		Objects: []ReplObject{
			{Name: "field", Version: 7, BBox: box, ElemSize: 8, Data: []byte("payload"), CRC: 0xdeadbeef},
			{Name: "empty", Version: 1, BBox: domain.BBox{}, ElemSize: 4, Data: nil, CRC: 1},
		},
		HasLocks: true,
		Locks: LockMirrorState{
			Held: []locks.HeldLock{
				{Name: "step", Writer: "sim/3"},
				{Name: "mesh", Readers: []locks.ReaderCount{{Holder: "viz/0", Count: 2}, {Holder: "viz/1", Count: 1}}},
			},
			Dedup: []LockOutcome{
				{Holder: "sim/3", Seq: 9, Name: "step", Write: true, Ok: true},
				{Holder: "viz/0", Seq: 2, Name: "mesh", Release: true, Err: "not held"},
			},
		},
	}

	msgs := []any{
		PutReq{App: "sim/0", Name: "field", Version: 3, ElemSize: 8,
			Piece: Piece{BBox: box, Data: []byte("abcdefgh")}, Logged: true},
		PutResp{Suppressed: true},
		GetReq{App: "viz/1", Name: "field", Version: -1, BBox: box, Logged: true},
		GetResp{Version: 3, FromLog: true, Pieces: []Piece{
			{BBox: box, Data: []byte("xy")},
			{BBox: domain.Box3(1, 2, 3, 4, 5, 6), Data: nil},
		}},
		ShardPutReq{Key: "field@3", Shard: 2, Data: []byte{0, 255, 7}, Rebuild: true},
		ShardPutResp{},
		ShardGetReq{Key: "field@3", Shard: 2},
		ShardGetResp{Data: []byte("shard"), Found: true},
		ReplApplyReq{Epoch: 5, Slot: 1, Records: []ReplRecord{
			{Seq: 1, Wlog: &rec, Data: []byte("body"), ElemSize: 8, CRC: 77},
			{Seq: 2, Lock: &lock},
			{Seq: 3},
		}},
		ReplApplyResp{NeedSnapshot: true, Seq: 12},
		ReplSnapshotReq{Epoch: 5, Slot: 1, State: state},
		ReplSnapshotResp{Seq: 42},
		ReplFetchReq{Slot: 2},
		ReplFetchResp{Found: true, Epoch: 5, State: state},
		WlogInstallReq{Slot: 1, State: state},
		WlogInstallResp{Records: 99},
	}
	for _, m := range msgs {
		roundTrip(t, m)
	}
}

func TestFastpathEmptyValues(t *testing.T) {
	// Zero values must survive too: empty strings, nil slices, zero boxes.
	roundTrip(t, PutReq{})
	roundTrip(t, GetResp{})
	roundTrip(t, ReplApplyReq{})
	roundTrip(t, ReplSnapshotReq{})
	roundTrip(t, ReplFetchResp{})
}

func TestFastpathEnvelopes(t *testing.T) {
	inner := ShardPutReq{Key: "k", Shard: 1, Data: []byte("d")}
	roundTrip(t, EpochReq{Epoch: 3, Req: inner})
	roundTrip(t, FencedReq{Token: 8, Req: inner})
	// Nested envelope: fenced epoch-wrapped bulk request.
	roundTrip(t, FencedReq{Token: 8, Req: EpochReq{Epoch: 3, Req: inner}})

	// An inner payload without a fast path declines the whole envelope so
	// the transport falls back to gob.
	if _, ok := codec.Marshal(nil, EpochReq{Epoch: 3, Req: StatsReq{}}); ok {
		t.Fatal("EpochReq with gob-only inner payload took the fast path")
	}
	if _, ok := codec.Marshal(nil, FencedReq{Token: 1, Req: LeaseCASReq{}}); ok {
		t.Fatal("FencedReq with gob-only inner payload took the fast path")
	}
}

// FuzzFastpathDecode holds every registered decoder to the contract:
// arbitrary input yields a typed error or a value, never a panic and
// never an unbounded allocation.
func FuzzFastpathDecode(f *testing.F) {
	seedValues := []any{
		PutReq{App: "sim/0", Name: "f", Version: 1, ElemSize: 8,
			Piece: Piece{BBox: domain.Box3(0, 0, 0, 7, 7, 7), Data: []byte("seed")}, Logged: true},
		GetResp{Version: 2, Pieces: []Piece{{BBox: domain.Box3(0, 0, 0, 1, 1, 1), Data: []byte("p")}}},
		ShardPutReq{Key: "k", Shard: 1, Data: []byte("shard")},
		ReplApplyReq{Epoch: 1, Slot: 0, Records: []ReplRecord{{Seq: 1, Data: []byte("d")}}},
		WlogInstallReq{Slot: 1, State: ReplState{Seq: 3, Objects: []ReplObject{{Name: "o", Data: []byte("x")}}}},
		EpochReq{Epoch: 2, Req: ShardGetReq{Key: "k", Shard: 0}},
	}
	for _, v := range seedValues {
		if buf, ok := codec.Marshal(nil, v); ok {
			f.Add(buf)
			if len(buf) > 3 {
				f.Add(buf[:len(buf)/2]) // truncated body
				mut := append([]byte(nil), buf...)
				mut[2] ^= 0xff // corrupt first body byte
				f.Add(mut)
			}
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff}) // unknown type id
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := codec.Unmarshal(data)
		if err != nil {
			return
		}
		// A successful decode must re-encode: the decoder produced a real
		// message value, not a half-initialized one.
		if _, ok := codec.Marshal(nil, v); !ok {
			t.Fatalf("decoded %T does not re-encode", v)
		}
	})
}

package staging

import (
	"bytes"
	"testing"

	"gospaces/internal/domain"
	"gospaces/internal/transport"
)

// The staging stack is dimension-generic below 3-D; these tests push
// 1-D and 2-D domains through the full put/log/replay path.

func TestTwoDimensionalStaging(t *testing.T) {
	global := domain.MustBBox(2, []int64{0, 0}, []int64{63, 63})
	g, err := StartGroup(transport.NewInProc(), "2d", Config{
		Global: global, NServers: 4, Bits: 3, ElemSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	prod, _ := g.NewClient("sim/0")
	cons, _ := g.NewClient("ana/0")
	defer prod.Close()
	defer cons.Close()

	data := fill(domain.BufLen(global, 4), 5)
	if err := prod.PutWithLog("plane", 1, global, data); err != nil {
		t.Fatal(err)
	}
	got, _, err := cons.GetWithLog("plane", 1, global)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("2-D round trip: %v", err)
	}
	// Sub-rectangle.
	sub := domain.MustBBox(2, []int64{10, 20}, []int64{30, 40})
	gotSub, _, err := cons.GetWithLog("plane", 1, sub)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotSub, domain.Extract(data, global, sub, 4)) {
		t.Fatal("2-D sub-read mismatch")
	}
	// Replay works in 2-D too.
	if _, err := cons.WorkflowRestart(); err != nil {
		t.Fatal(err)
	}
	replayed, v, err := cons.GetWithLog("plane", 1, global)
	if err != nil || v != 1 || !bytes.Equal(replayed, data) {
		t.Fatalf("2-D replay: %v", err)
	}
	sub2, v, err := cons.GetWithLog("plane", 1, sub)
	if err != nil || v != 1 || !bytes.Equal(sub2, domain.Extract(data, global, sub, 4)) {
		t.Fatalf("2-D sub replay: %v", err)
	}
}

func TestOneDimensionalStaging(t *testing.T) {
	global := domain.MustBBox(1, []int64{0}, []int64{1023})
	g, err := StartGroup(transport.NewInProc(), "1d", Config{
		Global: global, NServers: 2, Bits: 4, ElemSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	c, _ := g.NewClient("ts/0")
	defer c.Close()
	data := fill(domain.BufLen(global, 8), 9)
	if err := c.Put("series", 1, global, data); err != nil {
		t.Fatal(err)
	}
	window := domain.MustBBox(1, []int64{100}, []int64{199})
	got, _, err := c.Get("series", 1, window)
	if err != nil || !bytes.Equal(got, data[100*8:200*8]) {
		t.Fatalf("1-D window read: %v", err)
	}
	// In-transit reduce over a 1-D window.
	if _, cells, err := c.Reduce("series", 1, window, ReduceCount); err != nil || cells != 100 {
		t.Fatalf("1-D reduce: cells=%d err=%v", cells, err)
	}
}

package staging

import (
	"fmt"
	"testing"

	"gospaces/internal/domain"
	"gospaces/internal/transport"
)

// The replication-overhead benchmarks behind the EXPERIMENTS.md
// log-replication row: logged put/get latency through a 3-server
// in-process group with K = 0, 1, 2 wlog replicas. K > 0 pays one
// synchronous flush-before-ack round to each successor; puts also ship
// the payload on the stream.

func benchGroup(b *testing.B, k int) (*Group, *Client, *Client, domain.BBox) {
	b.Helper()
	g, err := StartGroup(transport.NewInProc(), "stage", Config{
		Global:       domain.Box3(0, 0, 0, 31, 31, 15),
		NServers:     3,
		Bits:         2,
		ElemSize:     8,
		WlogReplicas: k,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { g.Close() })
	prod, err := g.NewClient("sim/0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { prod.Close() })
	cons, err := g.NewClient("ana/0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cons.Close() })
	return g, prod, cons, g.Config().Global
}

func BenchmarkLoggedPut(b *testing.B) {
	for _, k := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			_, prod, _, global := benchGroup(b, k)
			data := fill(domain.BufLen(global, 8), 1)
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := prod.PutWithLog("field", int64(i+1), global, data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkLoggedGet(b *testing.B) {
	for _, k := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			_, prod, cons, global := benchGroup(b, k)
			data := fill(domain.BufLen(global, 8), 1)
			if err := prod.PutWithLog("field", 1, global, data); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := cons.GetWithLog("field", 1, global); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

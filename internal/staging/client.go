package staging

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"gospaces/internal/dht"
	"gospaces/internal/domain"
	"gospaces/internal/qos"
	"gospaces/internal/tier"
	"gospaces/internal/trace"
	"gospaces/internal/transport"
)

// ErrDegraded reports that a staging server stayed unreachable past the
// transport's retry policy: the call was a transport-level fault
// (timeout, broken connection, missing endpoint), not a server-side
// rejection. Callers can distinguish "staging degraded, try later or
// fail over" from protocol errors via errors.Is.
var ErrDegraded = errors.New("staging: degraded: server unreachable")

// ErrSlotDown reports that a membership slot is confirmed dead with no
// spare left to promote: the recovery supervisor has the slot in its
// dead-unrecovered backlog and will heal it when the spare pool is
// refilled (AddSpare) or the server rejoins. Unlike ErrDegraded — a
// transient transport verdict — ErrSlotDown is an authoritative
// supervisor verdict, surfaced immediately instead of after a retry
// storm against a dead address.
var ErrSlotDown = errors.New("staging: slot down: dead with no spare, awaiting pool refill")

// wrapCall classifies a failed server call: transient transport faults
// that survived the retry layer surface as ErrDegraded, everything else
// stays a plain staging error.
func wrapCall(err error, format string, args ...any) error {
	msg := fmt.Sprintf(format, args...)
	if transport.Retryable(err) {
		return fmt.Errorf("%w: %s: %w", ErrDegraded, msg, err)
	}
	return fmt.Errorf("staging: %s: %w", msg, err)
}

// respAs narrows a transport response to its expected concrete type; a
// mismatch is reported as an error rather than panicking the rank.
func respAs[T any](raw any, op string) (T, error) {
	v, ok := raw.(T)
	if !ok {
		var zero T
		return zero, fmt.Errorf("staging: %s: bad response type %T", op, raw)
	}
	return v, nil
}

// Config describes a staging server group.
type Config struct {
	// Global is the data domain the group indexes.
	Global domain.BBox
	// NServers is the number of staging servers.
	NServers int
	// Bits is the DHT refinement (cells per dimension = 1<<Bits).
	Bits int
	// ElemSize is the byte width of one grid cell.
	ElemSize int
	// Curve selects the space-filling curve ordering cells across
	// servers (default Z-order; Hilbert trades code cost for locality).
	Curve dht.Curve
	// MemoryBudgetPerServer caps each server's resident object bytes
	// (0 = unlimited). A put that would exceed the budget first runs
	// garbage collection; if the log still needs the space, the put is
	// rejected with a budget error — staging memory is a hard resource
	// on real machines.
	MemoryBudgetPerServer int64
	// WlogReplicas is the number of peer servers each server ships its
	// event-log mutations to (K membership successors). 0 disables log
	// replication: the recovery metadata then dies with its server.
	WlogReplicas int
	// QoS, when non-nil, enables multi-tenant admission control and the
	// weighted two-lane scheduler on every server (and spare) of the
	// group. nil (the default) serves all traffic unconditionally.
	QoS *qos.Config
	// TierBackend, when non-nil, gives each server (and spare) a PFS
	// cold-tier backend keyed by server id: cold logged versions demote
	// to it at the spill watermark instead of shedding, and replay reads
	// promote them back transparently. nil disables the tier.
	TierBackend func(id int) tier.Backend
	// TierWatermark is the fraction of the memory budget above which
	// puts demote cold versions (<= 0 picks the QoS SpillWater, else the
	// package default).
	TierWatermark float64
}

// Pool is a client-side view of a staging group: the spatial index plus
// the epoch-stamped server addresses. The address set is mutable — the
// recovery supervisor re-points a slot at a promoted spare via
// SetMember, and clients that hit a StaleEpochError adopt the servers'
// newer view — so all access goes through the mutex.
type Pool struct {
	cfg   Config
	index *dht.Index
	tr    transport.Transport

	// mu guards the membership view: the slot addresses, the epoch
	// clients stamp their calls with, and the slots the recovery
	// supervisor has marked dead-unrecovered.
	mu    sync.Mutex
	addrs []string
	epoch uint64
	down  map[int]bool

	// cellMu guards cells, a lazily built cache of the sub-boxes each
	// server owns; the pool is shared by all of a component's clients.
	cellMu sync.Mutex
	cells  [][]domain.BBox
}

// NewPool builds a client-side pool for a running group. addrs must
// have cfg.NServers entries, in server-id order.
func NewPool(tr transport.Transport, addrs []string, cfg Config) (*Pool, error) {
	if len(addrs) != cfg.NServers {
		return nil, fmt.Errorf("staging: %d addrs for %d servers", len(addrs), cfg.NServers)
	}
	if cfg.ElemSize <= 0 {
		return nil, fmt.Errorf("staging: non-positive element size %d", cfg.ElemSize)
	}
	idx, err := dht.NewIndexCurve(cfg.Global, cfg.NServers, cfg.Bits, cfg.Curve)
	if err != nil {
		return nil, err
	}
	return &Pool{
		cfg:   cfg,
		index: idx,
		tr:    tr,
		addrs: append([]string(nil), addrs...),
		epoch: 1,
		cells: make([][]domain.BBox, cfg.NServers),
	}, nil
}

// Config returns the pool configuration.
func (p *Pool) Config() Config { return p.cfg }

// Epoch returns the membership epoch clients stamp their calls with.
func (p *Pool) Epoch() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epoch
}

// Addrs returns the current slot addresses.
func (p *Pool) Addrs() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.addrs...)
}

// SetMember points slot id at a new address under a bumped epoch; the
// recovery supervisor calls it after promoting a spare. Older epochs
// are ignored.
func (p *Pool) SetMember(id int, addr string, epoch uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if epoch < p.epoch || id < 0 || id >= len(p.addrs) {
		return
	}
	p.addrs[id] = addr
	p.epoch = epoch
	delete(p.down, id) // a promoted slot is reachable again
}

// MarkSlotDown records (down=true) or clears (down=false) the recovery
// supervisor's verdict that slot id is dead with no spare available.
// While marked, client calls touching the slot fail fast with
// ErrSlotDown instead of timing out against the dead address.
func (p *Pool) MarkSlotDown(id int, down bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id < 0 || id >= len(p.addrs) {
		return
	}
	if down {
		if p.down == nil {
			p.down = make(map[int]bool)
		}
		p.down[id] = true
		return
	}
	delete(p.down, id)
}

// SlotDown reports whether slot id is marked dead-unrecovered.
func (p *Pool) SlotDown(id int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.down[id]
}

// adopt replaces the whole membership view when the servers hold a
// newer epoch (the client-side half of a stale-epoch redirect).
func (p *Pool) adopt(addrs []string, epoch uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if epoch <= p.epoch || len(addrs) != len(p.addrs) {
		return
	}
	p.addrs = append([]string(nil), addrs...)
	p.epoch = epoch
}

// serverCells returns (cached) the sub-boxes owned by server s.
func (p *Pool) serverCells(s int) []domain.BBox {
	p.cellMu.Lock()
	defer p.cellMu.Unlock()
	if p.cells[s] == nil {
		p.cells[s] = p.index.ServerCells(s)
	}
	return p.cells[s]
}

// Client is one application rank's connection to the staging group.
// A Client is not safe for concurrent use; create one per rank, as each
// rank's request stream must stay ordered for deterministic replay.
type Client struct {
	app   string
	pool  *Pool
	conns []transport.Client
	// addrs records the address each conn was dialled to, so a rebind
	// after a stale-epoch redirect only re-dials the slots that moved.
	addrs []string
	// lockSeq numbers this rank's lock operations so the lock server can
	// deduplicate retried requests (the client is per-rank and serial,
	// so a plain counter suffices).
	lockSeq uint64
	// CumulativeWriteTime accumulates client-observed put response
	// time, the Figure 9(a)/(b) metric.
	cumWrite time.Duration
}

// NewClient connects rank identity app (e.g. "sim/12") to the group.
func (p *Pool) NewClient(app string) (*Client, error) {
	c := &Client{
		app:   app,
		pool:  p,
		conns: make([]transport.Client, p.cfg.NServers),
		addrs: make([]string, p.cfg.NServers),
	}
	for i, addr := range p.Addrs() {
		conn, err := p.tr.Dial(addr)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("staging: dial server %d: %w", i, err)
		}
		c.conns[i] = conn
		c.addrs[i] = addr
	}
	return c, nil
}

// App returns the client's component/rank identity.
func (c *Client) App() string { return c.app }

// Close releases the client's connections.
func (c *Client) Close() error {
	var first error
	for _, conn := range c.conns {
		if conn == nil {
			continue
		}
		if err := conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Reconnect re-dials all servers at the pool's current addresses;
// workflow_restart uses it to rebuild the staging client after a
// component recovers (paper §III-C).
func (c *Client) Reconnect() error {
	for i, addr := range c.pool.Addrs() {
		if c.conns[i] != nil {
			c.conns[i].Close()
		}
		conn, err := c.pool.tr.Dial(addr)
		if err != nil {
			return fmt.Errorf("staging: re-dial server %d: %w", i, err)
		}
		c.conns[i] = conn
		c.addrs[i] = addr
	}
	return nil
}

// call sends one epoch-stamped request to server s. On a stale-epoch
// redirect — and on transport faults that outlived the retry layer,
// which is what calling a fail-stopped slot looks like — it re-binds
// (adopts the servers' newer membership, re-dials the slots that
// moved) and retries once. A second redirect (a promotion raced the
// retry) surfaces to the caller.
func (c *Client) call(s int, req any) (any, error) {
	if c.pool.SlotDown(s) {
		return nil, fmt.Errorf("%w: server %d", ErrSlotDown, s)
	}
	raw, err := c.conns[s].Call(EpochReq{Epoch: c.pool.Epoch(), Req: req})
	if err == nil {
		return raw, nil
	}
	stale := IsStaleEpoch(err)
	if !stale && !transport.Retryable(err) {
		return raw, err
	}
	if rerr := c.rebind(); rerr != nil {
		if stale {
			return nil, rerr
		}
		// Transient fault and no newer membership view: the original
		// error says more than the failed rebind.
		return raw, err
	}
	return c.conns[s].Call(EpochReq{Epoch: c.pool.Epoch(), Req: req})
}

// rebind refreshes the membership view from any reachable server and
// re-dials the connections whose slot address changed.
func (c *Client) rebind() error {
	var view MembershipResp
	got := false
	for s := range c.conns {
		raw, err := c.conns[s].Call(MembershipReq{})
		if err != nil {
			continue
		}
		if m, ok := raw.(MembershipResp); ok && m.Epoch > 0 && len(m.Addrs) == len(c.conns) {
			view = m
			got = true
			break
		}
	}
	if !got {
		return fmt.Errorf("%w: rebind: no server returned a membership view", ErrDegraded)
	}
	c.pool.adopt(view.Addrs, view.Epoch)
	for i, addr := range c.pool.Addrs() {
		if c.addrs[i] == addr && c.conns[i] != nil {
			continue
		}
		if c.conns[i] != nil {
			c.conns[i].Close()
		}
		conn, err := c.pool.tr.Dial(addr)
		if err != nil {
			return wrapCall(err, "rebind: re-dial server %d", i)
		}
		c.conns[i] = conn
		c.addrs[i] = addr
	}
	return nil
}

// CumulativeWriteTime returns the client-observed total put response
// time so far.
func (c *Client) CumulativeWriteTime() time.Duration { return c.cumWrite }

// put is the shared implementation of Put and PutWithLog.
func (c *Client) put(name string, version int64, bbox domain.BBox, data []byte, logged bool) error {
	if want := domain.BufLen(bbox, c.pool.cfg.ElemSize); len(data) != want {
		return fmt.Errorf("staging: put %q %v: buffer %d bytes, want %d", name, bbox, len(data), want)
	}
	start := time.Now()
	defer func() { c.cumWrite += time.Since(start) }()
	for _, s := range c.pool.index.ServersFor(bbox) {
		for _, cell := range c.pool.serverCells(s) {
			region, ok := cell.Intersect(bbox)
			if !ok {
				continue
			}
			piece := Piece{
				BBox: region,
				Data: domain.Extract(data, bbox, region, c.pool.cfg.ElemSize),
			}
			req := PutReq{
				App: c.app, Name: name, Version: version,
				ElemSize: c.pool.cfg.ElemSize, Piece: piece, Logged: logged,
			}
			if _, err := c.call(s, req); err != nil {
				return wrapCall(err, "put %q v%d to server %d", name, version, s)
			}
		}
	}
	return nil
}

// get is the shared implementation of Get and GetWithLog.
func (c *Client) get(name string, version int64, bbox domain.BBox, logged bool) ([]byte, int64, error) {
	dst := make([]byte, domain.BufLen(bbox, c.pool.cfg.ElemSize))
	resolved := int64(NoVersion)
	var covered int64
	for _, s := range c.pool.index.ServersFor(bbox) {
		req := GetReq{App: c.app, Name: name, Version: version, BBox: bbox, Logged: logged}
		raw, err := c.call(s, req)
		if err != nil {
			return nil, 0, wrapCall(err, "get %q v%d from server %d", name, version, s)
		}
		resp, err := respAs[GetResp](raw, fmt.Sprintf("get %q", name))
		if err != nil {
			return nil, 0, err
		}
		if resolved == NoVersion {
			resolved = resp.Version
		} else if resolved != resp.Version {
			return nil, 0, fmt.Errorf("staging: get %q: servers resolved versions %d and %d; use explicit versions", name, resolved, resp.Version)
		}
		for _, piece := range resp.Pieces {
			region, ok := piece.BBox.Intersect(bbox)
			if !ok {
				continue
			}
			domain.CopyRegion(dst, bbox, piece.Data, piece.BBox, region, c.pool.cfg.ElemSize)
			covered += region.Volume()
		}
	}
	if covered != bbox.Volume() {
		return nil, 0, fmt.Errorf("staging: get %q v%d %v: incomplete coverage %d/%d cells", name, version, bbox, covered, bbox.Volume())
	}
	return dst, resolved, nil
}

// Put stages data covering bbox as version of name using the original
// (non-logged) staging semantics: only the latest version is retained.
func (c *Client) Put(name string, version int64, bbox domain.BBox, data []byte) error {
	return c.put(name, version, bbox, data, false)
}

// Get reads version of name over bbox. Version NoVersion reads the
// latest, provided all touched servers agree on it.
func (c *Client) Get(name string, version int64, bbox domain.BBox) ([]byte, int64, error) {
	return c.get(name, version, bbox, false)
}

// PutWithLog stages data through the crash-consistent path: the servers
// log the write events so a recovering producer's re-issued writes are
// suppressed (dspaces_put_with_log in Table I).
func (c *Client) PutWithLog(name string, version int64, bbox domain.BBox, data []byte) error {
	return c.put(name, version, bbox, data, true)
}

// GetWithLog reads through the crash-consistent path: during replay the
// servers return the logged version of the data
// (dspaces_get_with_log in Table I).
func (c *Client) GetWithLog(name string, version int64, bbox domain.BBox) ([]byte, int64, error) {
	return c.get(name, version, bbox, true)
}

// WorkflowCheck notifies all staging servers that this rank has
// checkpointed (workflow_check in Table I). It returns the bytes freed
// by the end-of-cycle garbage collection.
//
// The freed-bytes count is at-least-once accounting: if a server's
// response is lost and the retry layer re-sends the request, the retried
// call reports only the (usually zero) bytes freed by the second GC
// pass, so the aggregate is a lower bound under transient faults. The
// checkpoint itself is safe to re-apply: re-marking the same log
// position is a no-op.
//
// The mark is best-effort per server: a failed server does not stop the
// remaining servers from being marked (narrowing the torn-checkpoint
// window a fail-stop mid-check opens), but the first error is still
// returned so the caller knows the checkpoint cut is incomplete.
func (c *Client) WorkflowCheck() (int64, error) {
	var freed int64
	var firstErr error
	for s := range c.conns {
		raw, err := c.call(s, CheckpointReq{App: c.app})
		if err != nil {
			if firstErr == nil {
				firstErr = wrapCall(err, "checkpoint on server %d", s)
			}
			continue
		}
		resp, err := respAs[CheckpointResp](raw, "checkpoint")
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		freed += resp.FreedBytes
	}
	return freed, firstErr
}

// WorkflowRestart rebuilds the staging client and switches this rank
// into replay mode on all servers (workflow_restart in Table I). It
// returns the total number of events that will be replayed.
//
// The replay-event count is at-least-once accounting: a retried
// RecoveryReq regenerates the replay script from the same checkpoint
// frontier (no replayed op can have happened in between, since this
// client issues them), so the switch into replay mode is idempotent,
// but a response lost after the server processed the request can make
// the reported count reflect the re-executed call.
func (c *Client) WorkflowRestart() (int, error) {
	return c.WorkflowRestartFrom(0)
}

// WorkflowRestartFrom is WorkflowRestart for a component whose restored
// durable checkpoint covers every event version <= covered (0 means no
// coverage information). Servers drop the covered prefix from the
// replay window before generating the script, so a workflow_check mark
// torn by a server fail-stop (some servers marked, some not, the
// component's own checkpoint durable) cannot make replay diverge.
func (c *Client) WorkflowRestartFrom(covered int64) (int, error) {
	if err := c.Reconnect(); err != nil {
		return 0, err
	}
	total := 0
	for s := range c.conns {
		raw, err := c.call(s, RecoveryReq{App: c.app, Covered: covered})
		if err != nil {
			return total, wrapCall(err, "recovery on server %d", s)
		}
		resp, err := respAs[RecoveryResp](raw, "recovery")
		if err != nil {
			return total, err
		}
		total += resp.ReplayEvents
	}
	return total, nil
}

// Versions returns the union of staged versions of name across servers.
func (c *Client) Versions(name string) ([]int64, error) {
	seen := map[int64]struct{}{}
	for s := range c.conns {
		raw, err := c.call(s, QueryReq{Name: name})
		if err != nil {
			return nil, wrapCall(err, "query on server %d", s)
		}
		resp, err := respAs[QueryResp](raw, "query")
		if err != nil {
			return nil, err
		}
		for _, v := range resp.Versions {
			seen[v] = struct{}{}
		}
	}
	out := make([]int64, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sortInt64s(out)
	return out, nil
}

// Stats aggregates accounting across all servers.
func (c *Client) Stats() (StatsResp, error) {
	var agg StatsResp
	for s, conn := range c.conns {
		raw, err := conn.Call(StatsReq{})
		if err != nil {
			return agg, wrapCall(err, "stats on server %d", s)
		}
		st, err := respAs[StatsResp](raw, "stats")
		if err != nil {
			return agg, err
		}
		agg.StoreBytes += st.StoreBytes
		agg.LogMetaBytes += st.LogMetaBytes
		agg.ShardBytes += st.ShardBytes
		agg.Objects += st.Objects
		agg.Puts += st.Puts
		agg.Gets += st.Gets
		agg.SuppressedPuts += st.SuppressedPuts
		agg.ReplayGets += st.ReplayGets
		agg.GCFreedBytes += st.GCFreedBytes
		agg.PutNanos += st.PutNanos
		agg.RebuiltShards += st.RebuiltShards
		agg.RebuiltBytes += st.RebuiltBytes
		agg.ReplSeq += st.ReplSeq
		agg.ReplicaSlots += st.ReplicaSlots
		agg.ReplicaBytes += st.ReplicaBytes
		agg.ReplicaRecords += st.ReplicaRecords
		agg.FencedRejects += st.FencedRejects
		if st.Epoch > agg.Epoch {
			agg.Epoch = st.Epoch
		}
	}
	return agg, nil
}

// Trace fetches the recent protocol trace of every server, rendered
// and prefixed with the server id.
func (c *Client) Trace(limit int) ([]string, error) {
	var out []string
	for sid, conn := range c.conns {
		raw, err := conn.Call(TraceReq{Limit: limit})
		if err != nil {
			return nil, wrapCall(err, "trace on server %d", sid)
		}
		resp, err := respAs[TraceResp](raw, "trace")
		if err != nil {
			return nil, err
		}
		for _, rec := range resp.Records {
			out = append(out, fmt.Sprintf("s%d %s", sid, rec))
		}
	}
	return out, nil
}

// TraceRecords fetches the recent protocol trace of every server as
// typed records, for export into a durable trace file (dsctl trace
// dump). The outer slice is indexed by server id.
func (c *Client) TraceRecords(limit int) ([][]trace.Record, error) {
	out := make([][]trace.Record, len(c.conns))
	for sid, conn := range c.conns {
		raw, err := conn.Call(TraceReq{Limit: limit, Raw: true})
		if err != nil {
			return nil, wrapCall(err, "trace on server %d", sid)
		}
		resp, err := respAs[TraceResp](raw, "trace")
		if err != nil {
			return nil, err
		}
		out[sid] = resp.Raw
	}
	return out, nil
}

// lockServer is the group member hosting the lock table.
const lockServer = 0

func (c *Client) lockOp(name string, write, release bool) error {
	c.lockSeq++
	req := LockReq{Name: name, Holder: c.app, Write: write, Release: release, Seq: c.lockSeq}
	if _, err := c.call(lockServer, req); err != nil {
		op := "lock"
		if release {
			op = "unlock"
		}
		return wrapCall(err, "%s %q", op, name)
	}
	return nil
}

// LockOnWrite takes the exclusive write lock on name
// (dspaces_lock_on_write). Producers bracket each coupling cycle's puts
// with it so readers never observe a torn update.
func (c *Client) LockOnWrite(name string) error { return c.lockOp(name, true, false) }

// UnlockOnWrite releases the write lock on name.
func (c *Client) UnlockOnWrite(name string) error { return c.lockOp(name, true, true) }

// LockOnRead takes a shared read lock on name (dspaces_lock_on_read).
func (c *Client) LockOnRead(name string) error { return c.lockOp(name, false, false) }

// UnlockOnRead releases the read lock on name.
func (c *Client) UnlockOnRead(name string) error { return c.lockOp(name, false, true) }

// ShardConn exposes the raw per-server connection for the resilience
// layer (internal/corec), which places shards explicitly.
func (c *Client) ShardConn(server int) transport.Client { return c.conns[server] }

// NumServers returns the group size.
func (c *Client) NumServers() int { return len(c.conns) }

func sortInt64s(a []int64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

package staging

import (
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"gospaces/internal/transport"
)

// lockDropper wraps a transport and drops the response of completed
// LockReq calls while armed: the handler runs (the lock transition is
// applied server-side) but the client observes ErrTimeout, exactly the
// ambiguity a lost response frame produces under the retry layer.
type lockDropper struct {
	inner transport.Transport

	mu    sync.Mutex
	drops int // remaining lock responses to discard
}

func (d *lockDropper) arm(n int) {
	d.mu.Lock()
	d.drops = n
	d.mu.Unlock()
}

func (d *lockDropper) Listen(addr string, h transport.Handler) (io.Closer, error) {
	return d.inner.Listen(addr, h)
}

func (d *lockDropper) Dial(addr string) (transport.Client, error) {
	c, err := d.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &lockDropClient{d: d, inner: c}, nil
}

type lockDropClient struct {
	d     *lockDropper
	inner transport.Client
}

func (c *lockDropClient) Call(req any) (any, error) {
	resp, err := c.inner.Call(req)
	if _, isLock := req.(LockReq); isLock && err == nil {
		c.d.mu.Lock()
		if c.d.drops > 0 {
			c.d.drops--
			c.d.mu.Unlock()
			return nil, fmt.Errorf("%w: lock response dropped", transport.ErrTimeout)
		}
		c.d.mu.Unlock()
	}
	return resp, err
}

func (c *lockDropClient) Close() error { return c.inner.Close() }

// TestLockRetryIdempotent: lock RPCs go through the retry layer, but
// lock transitions are not idempotent, so the server must deduplicate
// retried requests whose original response was lost. Every lock
// operation here has its first response dropped; the retried request
// must observe the original outcome — no "already holds write lock" on
// a retried write acquire, no ErrNotHeld on a retried release, and no
// leaked recursion count on a retried read acquire.
func TestLockRetryIdempotent(t *testing.T) {
	dropper := &lockDropper{inner: transport.NewInProc()}
	tr := transport.WithRetry(dropper, transport.RetryPolicy{
		MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Jitter: 0, Seed: 1,
	})
	g, err := StartGroup(tr, "lockretry", soakConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	c, err := g.NewClient("sim/0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	dropper.arm(1)
	if err := c.LockOnWrite("f"); err != nil {
		t.Fatalf("retried write acquire: %v", err)
	}
	if w, _ := g.Server(lockServer).locks.Holders("f"); w != "sim/0" {
		t.Fatalf("writer = %q after retried acquire", w)
	}
	dropper.arm(1)
	if err := c.UnlockOnWrite("f"); err != nil {
		t.Fatalf("retried write release: %v", err)
	}
	if w, _ := g.Server(lockServer).locks.Holders("f"); w != "" {
		t.Fatalf("writer = %q after retried release", w)
	}

	dropper.arm(1)
	if err := c.LockOnRead("f"); err != nil {
		t.Fatalf("retried read acquire: %v", err)
	}
	if err := c.UnlockOnRead("f"); err != nil {
		t.Fatalf("single read release after retried acquire: %v", err)
	}
	if _, readers := g.Server(lockServer).locks.Holders("f"); readers != 0 {
		t.Fatalf("%d readers left: retried read acquire leaked a recursion count", readers)
	}

	// End to end: a writer must acquire promptly, proving no lock state
	// was leaked by any of the retried operations above.
	w, err := g.NewClient("ana/0")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	done := make(chan error, 1)
	go func() { done <- w.LockOnWrite("f") }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("write lock blocked forever after retried lock ops")
	}
}

// TestLockRetryDuplicateWaitsForOriginal: an acquire that blocks in the
// lock queue past the call deadline is retried while the original
// handler is still executing. The retry must be recognized as a
// duplicate and wait out the original's outcome — not queue a second
// acquisition that would either error ("already holds write lock") or
// strand an extra pending acquire in the lock table.
func TestLockRetryDuplicateWaitsForOriginal(t *testing.T) {
	inproc := transport.NewInProc()
	inproc.CallTimeout = 100 * time.Millisecond
	tr := transport.WithRetry(inproc, transport.RetryPolicy{
		MaxAttempts: 8, BaseDelay: 5 * time.Millisecond, MaxDelay: 10 * time.Millisecond, Jitter: 0, Seed: 1,
	})
	g, err := StartGroup(tr, "lockdup", soakConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	holder, err := g.NewClient("sim/0")
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	if err := holder.LockOnWrite("f"); err != nil {
		t.Fatal(err)
	}

	waiter, err := g.NewClient("ana/0")
	if err != nil {
		t.Fatal(err)
	}
	defer waiter.Close()
	done := make(chan error, 1)
	go func() { done <- waiter.LockOnWrite("f") }()

	// Hold the lock across several call deadlines so the waiter's
	// acquire times out and retries while its original handler is still
	// parked in the lock queue.
	time.Sleep(250 * time.Millisecond)
	if err := holder.UnlockOnWrite("f"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("retried queued acquire: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued acquire never completed")
	}
	if w, _ := g.Server(lockServer).locks.Holders("f"); w != "ana/0" {
		t.Fatalf("writer = %q, want ana/0", w)
	}
	if err := waiter.UnlockOnWrite("f"); err != nil {
		t.Fatal(err)
	}
}

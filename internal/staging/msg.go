// Package staging implements the DataSpaces-like data staging service:
// a group of in-memory servers that jointly store versioned array
// regions of a global domain, addressed by bounding box. The package
// provides both the original staging semantics (keep the latest version
// of each object) and the paper's crash-consistent semantics, where
// every put/get is logged in per-component event queues (internal/wlog)
// so failed components can replay (PutWithLog, GetWithLog,
// WorkflowCheck, WorkflowRestart — Table I of the paper).
package staging

import (
	"encoding/gob"
	"time"

	"gospaces/internal/domain"
	"gospaces/internal/locks"
	"gospaces/internal/trace"
	"gospaces/internal/wlog"
)

// Piece is one stored array fragment: a bbox and its row-major payload.
type Piece struct {
	BBox domain.BBox
	Data []byte
}

// PutReq writes one piece of an object version to a server.
type PutReq struct {
	App      string // component/rank identity, e.g. "sim/12"
	Name     string
	Version  int64
	ElemSize int
	Piece    Piece
	Logged   bool // true: crash-consistent path with event logging
}

// PutResp acknowledges a put.
type PutResp struct {
	// Suppressed is true when the write was a replayed duplicate and
	// the payload was already staged (paper Fig. 2, case 2).
	Suppressed bool
}

// GetReq reads the fragments of an object version intersecting a bbox.
// Version NoVersion (-1) means "latest on this server".
type GetReq struct {
	App     string
	Name    string
	Version int64
	BBox    domain.BBox
	Logged  bool
}

// GetResp carries the resolved version and matching fragments.
type GetResp struct {
	Version int64
	Pieces  []Piece
	// FromLog is true when the version was dictated by the replay log.
	FromLog bool
}

// CheckpointReq notifies the staging server of a component checkpoint
// (workflow_check in Table I).
type CheckpointReq struct {
	App string
}

// CheckpointResp returns the checkpoint event id assigned by the server.
type CheckpointResp struct {
	ChkID string
	// FreedBytes is the payload freed by the garbage collection pass
	// that runs at the end of the checkpoint cycle.
	FreedBytes int64
}

// RecoveryReq notifies the staging server that a component restarted
// from its last checkpoint (workflow_restart in Table I). Covered, when
// positive, is the highest event version the component's durable
// checkpoint folds in: the server drops covered events from the replay
// window, healing a workflow_check torn by a server fail-stop mid-mark.
type RecoveryReq struct {
	App     string
	Covered int64
}

// RecoveryResp summarizes the replay script generated for the component.
type RecoveryResp struct {
	ReplayEvents int
}

// QueryReq asks which versions of an object a server holds.
type QueryReq struct {
	Name string
}

// QueryResp lists versions ascending.
type QueryResp struct {
	Versions []int64
}

// ShardPutReq stores an opaque resilience shard (used by the CoREC
// layer, internal/corec).
type ShardPutReq struct {
	Key   string
	Shard int
	Data  []byte
	// Rebuild marks a shard re-written by the recovery supervisor's
	// re-protection pass (as opposed to first-time protection); servers
	// count rebuilt shards and bytes separately for recovery accounting.
	Rebuild bool
}

// ShardPutResp acknowledges a shard write.
type ShardPutResp struct{}

// ShardGetReq fetches a resilience shard. Rebuild marks fetches issued
// by CoREC re-protection so the QoS layer schedules them on the
// recovery lane instead of the foreground lane.
type ShardGetReq struct {
	Key     string
	Shard   int
	Rebuild bool
}

// ShardGetResp returns the shard payload; Found is false when absent.
type ShardGetResp struct {
	Data  []byte
	Found bool
}

// ShardDropReq deletes all shards of a key on this server.
type ShardDropReq struct {
	Key string
}

// ShardDropResp acknowledges the drop.
type ShardDropResp struct{}

// ShardKeysReq asks a server which keys it holds shards for. The
// recovery supervisor unions the answers across surviving servers to
// enumerate the objects needing re-protection after a fail-stop.
type ShardKeysReq struct{}

// ShardKeysResp lists the shard keys resident on this server, sorted.
type ShardKeysResp struct {
	Keys []string
}

// EpochReq is the membership-epoch envelope: it wraps any staging
// request with the client's view of the membership epoch. A server
// whose epoch is newer rejects the call with StaleEpochError so the
// client re-binds to the current membership before retrying — a client
// routing on a stale view could read from (or write to) a promoted
// spare's predecessor. Bare (unwrapped) requests bypass the check for
// backward compatibility and for layers that place data explicitly.
type EpochReq struct {
	Epoch uint64
	Req   any
}

// EpochSetReq installs a membership view on a server. The recovery
// supervisor pushes it to every member after a promotion; a server only
// adopts views newer than the one it holds. Receiving a view also
// clears the server's spare flag: a spare that is told about membership
// has been promoted into it.
type EpochSetReq struct {
	Epoch uint64
	Addrs []string
}

// EpochSetResp acknowledges the install and reports the epoch the
// server now holds (useful when the push raced a newer one).
type EpochSetResp struct {
	Epoch uint64
}

// MembershipReq asks a server for its current membership view; clients
// use it to re-bind after a StaleEpochError redirect.
type MembershipReq struct{}

// MembershipResp carries the server's membership view (Epoch 0 and nil
// Addrs until the first EpochSet).
type MembershipResp struct {
	Epoch uint64
	Addrs []string
}

// LockReq acquires or releases a named reader/writer lock hosted by
// server 0 of the group (dspaces_lock_on_read/write).
type LockReq struct {
	Name    string
	Holder  string
	Write   bool
	Release bool
	// Seq is the holder's lock-operation sequence number. Lock
	// transitions are not idempotent (acquire/release change state), so
	// when the retry layer re-sends a request whose response was lost,
	// the server uses (Holder, Seq) to recognize the duplicate and
	// return the original outcome instead of re-executing. Zero means
	// "no dedup" (legacy callers).
	Seq uint64
}

// LockResp acknowledges a lock operation.
type LockResp struct{}

// LockRecord is one completed lock-server operation in the
// log-replication stream: the state transition (when Ok) plus the
// dedup outcome, so a promoted spare answers retried lock RPCs exactly
// like the dead server would have.
type LockRecord struct {
	Name    string
	Holder  string
	Write   bool
	Release bool
	// ReleaseAll drops every lock and the dedup entry of Holder (a
	// component recovery); Name/Write/Release are ignored.
	ReleaseAll bool
	// Seq is the holder's lock-operation sequence number (0 = no dedup).
	Seq uint64
	// Ok is true when the operation succeeded and its state transition
	// must be applied; Err carries the failure outcome otherwise.
	Ok  bool
	Err string
}

// ReplRecord is one mutation of a staging server's replicated state —
// an event-log record (with the put payload, so replay reads survive
// the origin server), or a lock-server record. Seq orders the stream.
type ReplRecord struct {
	Seq  int64
	Wlog *wlog.Record
	// Put payload, carried on Wlog OpPut records so a restored server
	// can serve replay reads without the dead origin.
	Data     []byte
	ElemSize int
	CRC      uint32
	Lock     *LockRecord
}

// LockMirrorState is the exported lock-server state at one stream
// position: the held-lock table plus the per-holder dedup outcomes.
type LockMirrorState struct {
	Held  []locks.HeldLock
	Dedup []LockOutcome
}

// LockOutcome is one holder's latest deduplicated lock operation.
type LockOutcome struct {
	Holder  string
	Seq     uint64
	Name    string
	Write   bool
	Release bool
	Ok      bool
	Err     string
}

// ReplState is a full snapshot of a server's replicated state: the
// event-log codec bytes, the logged objects, and (on the lock server)
// the lock mirror — everything a spare needs to take the slot over.
type ReplState struct {
	Seq      int64
	Wlog     []byte
	Objects  []ReplObject
	Locks    LockMirrorState
	HasLocks bool
}

// ReplObject is one logged object payload in a replication snapshot.
type ReplObject struct {
	Name     string
	Version  int64
	BBox     domain.BBox
	ElemSize int
	Data     []byte
	CRC      uint32
}

// ReplApplyReq ships a batch of replication records from the origin of
// Slot to a peer. Epoch fences the stream: a receiver holding a newer
// membership epoch rejects the batch, so an origin from a prior view
// (a zombie predecessor of a promoted spare) cannot corrupt replicas.
type ReplApplyReq struct {
	Epoch   uint64
	Slot    int
	Records []ReplRecord
}

// ReplApplyResp acknowledges a batch. NeedSnapshot asks the origin to
// re-sync with a full ReplSnapshotReq (the receiver saw a sequence
// gap, e.g. it is a freshly promoted spare with no history).
type ReplApplyResp struct {
	NeedSnapshot bool
	Seq          int64
}

// ReplSnapshotReq installs a full replica snapshot of Slot on a peer,
// fenced by Epoch like ReplApplyReq.
type ReplSnapshotReq struct {
	Epoch uint64
	Slot  int
	State ReplState
}

// ReplSnapshotResp acknowledges a snapshot install.
type ReplSnapshotResp struct {
	Seq int64
}

// ReplFetchReq asks a server for the replica it hosts of Slot's state;
// the recovery supervisor queries survivors and restores the freshest
// answer onto the spare it promotes.
type ReplFetchReq struct {
	Slot int
}

// ReplFetchResp returns the hosted replica (Found=false when this
// server holds none).
type ReplFetchResp struct {
	Found bool
	Epoch uint64
	State ReplState
}

// WlogInstallReq restores a replicated state snapshot onto the
// receiving server itself (a promoted spare taking over Slot), as
// opposed to ReplSnapshotReq which updates a hosted peer replica.
type WlogInstallReq struct {
	Slot  int
	State ReplState
}

// WlogInstallResp acknowledges the restore.
type WlogInstallResp struct {
	Records int64
}

// FencedReq is the recovery-leadership envelope: it wraps a
// recovery-side mutation (EpochSetReq, WlogInstallReq, shard writes,
// intent journal updates) with the sender's fencing token. A server
// that has granted a lease with a higher token — a newer leader exists
// — rejects the call with FencedError, so a deposed supervisor's stale
// mutations can never land after a takeover.
type FencedReq struct {
	Token uint64
	Req   any
}

// LeaseCASReq is the leader-election compare-and-swap: supervisor
// Holder proposes to hold the recovery lease under Token for TTL. The
// proposal is granted when the server's lease record is free (empty or
// expired) or already held by Holder, and Token is not behind the
// highest token the server has seen. A supervisor is leader while a
// majority of the membership grants its lease.
//
// Release set makes the call the inverse: Holder gives back its grant
// (a no-op when the record is held by someone else). A candidate that
// fails to reach a majority must release — two candidates each holding
// half the grants would otherwise re-extend their halves on every
// retry and livelock the election.
type LeaseCASReq struct {
	Holder  string
	Token   uint64
	TTL     time.Duration
	Release bool
}

// LeaseCASResp reports the CAS outcome. On refusal, Holder/Token name
// the lease the server holds and MaxToken is the highest token it has
// seen — the candidate proposes MaxToken+1 next round.
type LeaseCASResp struct {
	Granted   bool
	Holder    string
	Token     uint64
	MaxToken  uint64
	ExpiresIn time.Duration
}

// PromotionIntent journals one in-flight spare promotion: the leader
// writes it to the membership (fenced) before mutating anything, so a
// standby that takes over mid-promotion resumes the same slot with the
// same spare — idempotently, with no double-spent spare.
type PromotionIntent struct {
	Slot     int
	DeadAddr string
	Spare    string
	Token    uint64
}

// IntentPutReq journals a promotion intent on a member (sent fenced).
type IntentPutReq struct {
	Intent PromotionIntent
}

// IntentPutResp acknowledges the journal write.
type IntentPutResp struct{}

// IntentClearReq drops the journaled intent for Slot once the
// promotion has fully completed (sent fenced).
type IntentClearReq struct {
	Slot int
}

// IntentClearResp acknowledges the clear.
type IntentClearResp struct{}

// LeaderInfoReq asks a server for its recovery-leadership view: the
// lease record, the fence, and the journaled promotion intents. A
// freshly elected leader unions the answers to resume half-done
// promotions; dsctl leader renders them.
type LeaderInfoReq struct{}

// LeaderInfoResp is one server's leadership view.
type LeaderInfoResp struct {
	Holder    string
	Token     uint64
	MaxFence  uint64
	ExpiresIn time.Duration
	Intents   []PromotionIntent
}

// TraceReq fetches the server's recent protocol trace.
type TraceReq struct {
	// Limit caps the records returned (0 = all retained).
	Limit int
	// Raw asks for typed records (for trace export) instead of rendered
	// strings.
	Raw bool
}

// TraceResp carries the server's recent protocol trace, oldest first:
// rendered strings by default, typed records when the request set Raw.
type TraceResp struct {
	Records []string
	Raw     []trace.Record
	// Total is how many records the server ever traced (including those
	// evicted from the ring).
	Total uint64
}

// StatsReq asks a server for its resource accounting.
type StatsReq struct{}

// StatsResp reports server-side accounting used by the Figure 9
// experiments.
type StatsResp struct {
	StoreBytes     int64 // resident object payload bytes
	LogMetaBytes   int64 // resident event-record bytes
	ShardBytes     int64 // resilience shard bytes (corec)
	Objects        int
	Puts           int64
	Gets           int64
	SuppressedPuts int64
	ReplayGets     int64
	GCFreedBytes   int64
	PutNanos       int64 // cumulative server-side put handling time
	// Recovery accounting: shards and bytes re-written by the recovery
	// supervisor's re-protection pass, and the membership epoch the
	// server holds (dsctl health surfaces these).
	RebuiltShards int64
	RebuiltBytes  int64
	Epoch         uint64
	// Log-replication accounting: the origin-side stream position
	// (records emitted for this server's own slot), and the replica
	// state hosted for peer slots.
	ReplSeq        int64
	ReplicaSlots   int
	ReplicaBytes   int64
	ReplicaRecords int64
	// FencedRejects counts recovery-side mutations rejected because the
	// caller's fencing token trailed the server's fence — evidence a
	// deposed leader tried to keep mutating after a takeover.
	FencedRejects int64
}

// QosStatsReq asks a server for its admission-control accounting
// (dsctl qos surfaces it).
type QosStatsReq struct{}

// QosTenant is one tenant's accounting row on one server.
type QosTenant struct {
	Tenant       string
	StoreBytes   int64 // resident staging payload bytes charged to the tenant
	WlogBytes    int64 // resident logged (replay-protected) bytes
	StagingQuota int64 // configured cap (0 = unlimited)
	WlogQuota    int64
	Priority     int
	Admits       int64
	Sheds        int64
}

// QosStatsResp reports a server's admission-control state: per-tenant
// usage against quota, aggregate admit/shed counters, and the lane
// scheduler's queue depths. Enabled is false when the server runs
// without a QoS config (all other fields are then zero).
type QosStatsResp struct {
	Enabled         bool
	ID              int
	Tenants         []QosTenant
	Admits          int64
	Sheds           int64
	QueueForeground int64
	QueueRecovery   int64
	ReplLag         int64
}

// TierStatsReq asks a server for its cold-tier accounting (dsctl tier
// surfaces it).
type TierStatsReq struct{}

// TierStatsResp reports a server's cold-tier state: spill/promote
// counters, scrub results, degradation, and the incremental
// replication byte split. Enabled is false when no tier is attached.
type TierStatsResp struct {
	Enabled  bool
	ID       int
	Degraded bool
	// Entries/Bytes are the spilled records resident in the tier.
	Entries      int
	Bytes        int64
	Spills       int64
	SpillBytes   int64
	Promotes     int64
	PromoteBytes int64
	// Scrub counters (cumulative across scrub passes and promotes).
	ScrubChecked   int64
	ScrubHealed    int64
	ScrubLost      int64
	DegradedEvents int64
	// Incremental wlog replication: delta re-syncs served from the
	// retained window vs full snapshots (anchors), with shipped bytes.
	DeltaResyncs  int64
	DeltaBytes    int64
	SnapshotsSent int64
	SnapshotBytes int64
}

// TierScrubReq triggers a CRC scrub pass over the server's spilled
// records: corrupt generations are re-replicated from the surviving
// twin, unrecoverable entries dropped. The recovery supervisor fires
// one after every promotion restore.
type TierScrubReq struct{}

// TierScrubResp reports one scrub pass.
type TierScrubResp struct {
	Enabled  bool
	ID       int
	Checked  int64
	Healed   int64
	Lost     int64
	Degraded bool
}

func init() {
	gob.Register(TierStatsReq{})
	gob.Register(TierStatsResp{})
	gob.Register(TierScrubReq{})
	gob.Register(TierScrubResp{})
	gob.Register(PutReq{})
	gob.Register(PutResp{})
	gob.Register(GetReq{})
	gob.Register(GetResp{})
	gob.Register(CheckpointReq{})
	gob.Register(CheckpointResp{})
	gob.Register(RecoveryReq{})
	gob.Register(RecoveryResp{})
	gob.Register(QueryReq{})
	gob.Register(QueryResp{})
	gob.Register(ShardPutReq{})
	gob.Register(ShardPutResp{})
	gob.Register(ShardGetReq{})
	gob.Register(ShardGetResp{})
	gob.Register(ShardDropReq{})
	gob.Register(ShardDropResp{})
	gob.Register(ShardKeysReq{})
	gob.Register(ShardKeysResp{})
	gob.Register(EpochReq{})
	gob.Register(EpochSetReq{})
	gob.Register(EpochSetResp{})
	gob.Register(MembershipReq{})
	gob.Register(MembershipResp{})
	gob.Register(LockReq{})
	gob.Register(LockResp{})
	gob.Register(TraceReq{})
	gob.Register(TraceResp{})
	gob.Register(StatsReq{})
	gob.Register(StatsResp{})
	gob.Register(QosStatsReq{})
	gob.Register(QosStatsResp{})
	gob.Register(ReplApplyReq{})
	gob.Register(ReplApplyResp{})
	gob.Register(ReplSnapshotReq{})
	gob.Register(ReplSnapshotResp{})
	gob.Register(ReplFetchReq{})
	gob.Register(ReplFetchResp{})
	gob.Register(WlogInstallReq{})
	gob.Register(WlogInstallResp{})
	gob.Register(FencedReq{})
	gob.Register(LeaseCASReq{})
	gob.Register(LeaseCASResp{})
	gob.Register(PromotionIntent{})
	gob.Register(IntentPutReq{})
	gob.Register(IntentPutResp{})
	gob.Register(IntentClearReq{})
	gob.Register(IntentClearResp{})
	gob.Register(LeaderInfoReq{})
	gob.Register(LeaderInfoResp{})
}

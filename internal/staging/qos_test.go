package staging

import (
	"testing"

	"gospaces/internal/domain"
	"gospaces/internal/qos"
	"gospaces/internal/transport"
)

// qosPut builds a valid full-box put for name/version on one server.
func qosPut(name string, version int64, bbox domain.BBox, logged bool, pattern int64) PutReq {
	return PutReq{
		App: "sim/0", Name: name, Version: version, ElemSize: 8,
		Piece:  Piece{BBox: bbox, Data: fill(domain.BufLen(bbox, 8), pattern)},
		Logged: logged,
	}
}

func TestQoSServerRejectsOverQuotaTenant(t *testing.T) {
	box := domain.Box3(0, 0, 0, 3, 3, 0) // 16 cells × 8B = 128B per put
	srv := NewServer(0)
	srv.EnableQoS(qos.Config{
		Tenants: map[string]qos.Quota{"lo": {StagingBytes: 300}},
	})

	if _, err := srv.Handle(qosPut("lo/field", 1, box, false, 1)); err != nil {
		t.Fatal(err)
	}
	// Unlogged semantics keep only the latest version: admission sees
	// 128B resident + 128B incoming = 256B ≤ 300B, and the replacement
	// frees the old version, so usage settles back at 128B.
	if _, err := srv.Handle(qosPut("lo/field", 2, box, false, 2)); err != nil {
		t.Fatalf("replacement put rejected: %v", err)
	}
	// A second object lands at 256B: still under quota.
	if _, err := srv.Handle(qosPut("lo/other", 1, box, false, 3)); err != nil {
		t.Fatalf("second object rejected (replacement not freed?): %v", err)
	}
	// A third pushes the tenant to 384B > 300B: typed rejection.
	_, err := srv.Handle(qosPut("lo/third", 1, box, false, 4))
	ov, ok := qos.FromError(err)
	if !ok {
		t.Fatalf("over-quota put error = %v, want qos.ErrOverloaded", err)
	}
	if ov.Tenant != "lo" || ov.Resource != qos.ResourceStaging || ov.RetryAfter <= 0 {
		t.Fatalf("rejection = %+v", ov)
	}
	// Other tenants are unaffected.
	if _, err := srv.Handle(qosPut("hi/field", 1, box, false, 5)); err != nil {
		t.Fatalf("unrelated tenant rejected: %v", err)
	}
}

func TestQoSGlobalShedOrderAtServer(t *testing.T) {
	box := domain.Box3(0, 0, 0, 3, 3, 0) // 128B per put
	srv := NewServer(0)
	srv.SetMemoryBudget(1024)
	srv.EnableQoS(qos.Config{
		Tenants:   map[string]qos.Quota{"lo": {Priority: 0}, "hi": {Priority: 1}},
		HighWater: 0.7,
	})
	// Fill to 768B = 75% of budget with high-priority data. Distinct
	// names, so neither replacement nor GC can reclaim any of it.
	for i := int64(1); i <= 6; i++ {
		name := "hi/fill" + string(rune('0'+i))
		if _, err := srv.Handle(qosPut(name, 1, box, false, i)); err != nil {
			t.Fatalf("fill put %d: %v", i, err)
		}
	}
	// 75% is above the low tenant's 70% threshold but below the high
	// tenant's 100% ceiling: lo sheds, hi still admits.
	_, err := srv.Handle(qosPut("lo/field", 1, box, false, 9))
	ov, ok := qos.FromError(err)
	if !ok || ov.Resource != qos.ResourceGlobal {
		t.Fatalf("low-priority put above high-water: err=%v parsed=%+v", err, ov)
	}
	if _, err := srv.Handle(qosPut("hi/field", 1, box, false, 9)); err != nil {
		t.Fatalf("high-priority put shed below ceiling: %v", err)
	}
	if srv.store.BytesUsed() > 1024 {
		t.Fatalf("staging RAM %d exceeds budget", srv.store.BytesUsed())
	}
}

func TestQoSClientSeesTypedRejection(t *testing.T) {
	g, err := StartGroup(transport.NewInProc(), "stage", Config{
		Global:   domain.Box3(0, 0, 0, 63, 63, 31),
		NServers: 2,
		Bits:     2,
		ElemSize: 8,
		QoS: &qos.Config{
			Tenants: map[string]qos.Quota{"lo": {StagingBytes: 1}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	c, err := g.NewClient("sim/0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	global := g.Config().Global
	err = c.Put("lo/field", 1, global, fill(domain.BufLen(global, 8), 1))
	ov, ok := qos.FromError(err)
	if !ok {
		t.Fatalf("client put error = %v, want typed overload", err)
	}
	if ov.Tenant != "lo" || ov.RetryAfter <= 0 {
		t.Fatalf("rejection = %+v", ov)
	}
	// An unquota'd tenant still goes through end to end.
	if err := c.Put("hi/field", 1, global, fill(domain.BufLen(global, 8), 2)); err != nil {
		t.Fatal(err)
	}
}

// TestQoSQuotaInheritedAcrossPromotion is the no-stampede property: a
// promoted spare restoring a dead server's state from the replicated
// wlog must inherit the dead server's per-tenant accounting — a quota
// reset would re-admit a full quota of puts on top of the restored
// bytes.
func TestQoSQuotaInheritedAcrossPromotion(t *testing.T) {
	const loQuota = int64(1 << 20)
	qcfg := &qos.Config{
		Tenants: map[string]qos.Quota{"lo": {StagingBytes: loQuota}},
	}
	g, err := StartGroup(transport.NewInProc(), "stage", Config{
		Global:       domain.Box3(0, 0, 0, 15, 15, 7),
		NServers:     3,
		Bits:         2,
		ElemSize:     8,
		WlogReplicas: 1,
		QoS:          qcfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	spareAddr, err := g.AddSpare()
	if err != nil {
		t.Fatal(err)
	}
	c, err := g.NewClient("sim/0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	global := g.Config().Global
	for v := int64(1); v <= 3; v++ {
		if err := c.PutWithLog("lo/field", v, global, fill(domain.BufLen(global, 8), v)); err != nil {
			t.Fatalf("put v%d: %v", v, err)
		}
	}

	origin := g.Server(0)
	var originLo QosTenant
	for _, row := range origin.qosStats().Tenants {
		if row.Tenant == "lo" {
			originLo = row
		}
	}
	if originLo.StoreBytes == 0 || originLo.WlogBytes == 0 {
		t.Fatalf("origin holds no accounted lo bytes: %+v", originLo)
	}

	// Promote: install slot 0's replica (hosted on server 1) on the spare.
	st := fetchReplica(t, g.Server(1), 0)
	spare := g.ServerAt(spareAddr)
	if _, err := spare.handleWlogInstall(WlogInstallReq{Slot: 0, State: st}); err != nil {
		t.Fatal(err)
	}

	var spareLo QosTenant
	for _, row := range spare.qosStats().Tenants {
		if row.Tenant == "lo" {
			spareLo = row
		}
	}
	if spareLo.StoreBytes != originLo.StoreBytes || spareLo.WlogBytes != originLo.WlogBytes {
		t.Fatalf("promoted spare accounting %+v diverges from origin %+v", spareLo, originLo)
	}

	// The sharp edge of the stampede: craft a put sized between the
	// tenant's remaining headroom and the full quota. A fresh (reset)
	// controller would admit it — only the inherited usage rejects it.
	cells := (loQuota-spareLo.StoreBytes)/8 + 1
	floodBox := domain.Box3(0, 0, 0, cells-1, 0, 0)
	flood := qosPut("lo/flood", 9, floodBox, false, 9)
	if int64(len(flood.Piece.Data)) > loQuota {
		t.Fatalf("flood payload %d exceeds the quota outright; premise needs it admissible when usage resets", len(flood.Piece.Data))
	}
	if _, err := origin.Handle(flood); err == nil {
		t.Fatal("origin admitted an over-quota put (test premise broken)")
	}
	_, err = spare.Handle(flood)
	if ov, ok := qos.FromError(err); !ok {
		t.Fatalf("promoted spare re-admitted over-quota put (stampede): err=%v", err)
	} else if ov.Tenant != "lo" || ov.Resource != qos.ResourceStaging {
		t.Fatalf("rejection = %+v", ov)
	}
}

func TestQosStatsHandle(t *testing.T) {
	srv := NewServer(3)
	raw, err := srv.Handle(QosStatsReq{})
	if err != nil {
		t.Fatal(err)
	}
	if resp := raw.(QosStatsResp); resp.Enabled || resp.ID != 3 {
		t.Fatalf("disabled server qos stats = %+v", resp)
	}

	srv.EnableQoS(qos.Config{Tenants: map[string]qos.Quota{"lo": {StagingBytes: 100}}})
	box := domain.Box3(0, 0, 0, 3, 3, 0)
	if _, err := srv.Handle(qosPut("lo/a", 1, box, false, 1)); err == nil {
		t.Fatal("expected rejection (128B > 100B quota)")
	}
	if _, err := srv.Handle(qosPut("hi/a", 1, box, false, 1)); err != nil {
		t.Fatal(err)
	}
	raw, err = srv.Handle(QosStatsReq{})
	if err != nil {
		t.Fatal(err)
	}
	resp := raw.(QosStatsResp)
	if !resp.Enabled || resp.Admits != 1 || resp.Sheds != 1 {
		t.Fatalf("qos stats = %+v", resp)
	}
	found := false
	for _, row := range resp.Tenants {
		if row.Tenant == "lo" && row.Sheds == 1 && row.StagingQuota == 100 {
			found = true
		}
	}
	if !found {
		t.Fatalf("lo tenant row missing: %+v", resp.Tenants)
	}
}

// TestQoSGCRebasesTenantAccounting checks that checkpoint-time garbage
// collection re-derives tenant usage from the survivors, freeing quota
// headroom the tenant can spend again.
func TestQoSGCRebasesTenantAccounting(t *testing.T) {
	box := domain.Box3(0, 0, 0, 3, 3, 0) // 128B per put
	srv := NewServer(0)
	srv.EnableQoS(qos.Config{
		Tenants: map[string]qos.Quota{"lo": {StagingBytes: 450}},
	})
	// Three logged versions, each read, fill 384B of the 450B quota.
	for v := int64(1); v <= 3; v++ {
		if _, err := srv.Handle(qosPut("lo/f", v, box, true, v)); err != nil {
			t.Fatalf("put v%d: %v", v, err)
		}
		if _, err := srv.Handle(GetReq{App: "ana/0", Name: "lo/f", Version: v, BBox: box, Logged: true}); err != nil {
			t.Fatalf("get v%d: %v", v, err)
		}
	}
	if _, err := srv.Handle(qosPut("lo/g", 1, box, true, 9)); err == nil {
		t.Fatal("expected rejection at 512B > 450B")
	}
	// A workflow checkpoint by every component trims the log events
	// pinning old versions; GC then drops all but the newest.
	for _, app := range []string{"sim/0", "ana/0"} {
		if _, err := srv.Handle(CheckpointReq{App: app}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := srv.Handle(qosPut("lo/g", 1, box, true, 9)); err != nil {
		t.Fatalf("post-GC put still rejected: %v", err)
	}
}

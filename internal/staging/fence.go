package staging

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"
)

// fencedMark is the substring that identifies a fencing rejection
// across transports (the TCP transport flattens handler errors to
// strings), mirroring staleEpochMark.
const fencedMark = "staging: fenced: stale leader token"

// FencedError rejects a recovery-side mutation carrying a fencing
// token older than the highest this server has granted: the caller is
// a deposed recovery leader whose lease has been superseded, and must
// stop mutating — the current leader owns the promotion.
type FencedError struct {
	Token uint64 // token the call carried
	Fence uint64 // highest token the server has seen
}

// Error renders the rejection; it embeds fencedMark so IsFenced works
// on the flattened string form too.
func (e *FencedError) Error() string {
	return fmt.Sprintf("%s: call fenced at %d, server at %d", fencedMark, e.Token, e.Fence)
}

// IsFenced reports whether err is a fencing rejection, in typed form
// (in-proc) or flattened through a remote transport.
func IsFenced(err error) bool {
	if err == nil {
		return false
	}
	var fe *FencedError
	if errors.As(err, &fe) {
		return true
	}
	return strings.Contains(err.Error(), fencedMark)
}

// leaseState is the server-side half of recovery-leader election: one
// lease record (holder, token, expiry) plus the monotonic fence — the
// highest token ever granted or carried by an accepted fenced call.
// Every member of a staging group holds its own lease record; a
// supervisor is leader while a majority of members grant it the lease.
type leaseState struct {
	mu      sync.Mutex
	holder  string
	token   uint64
	until   time.Time
	fence   uint64
	intents map[int]PromotionIntent
}

// cas is the server-side lease compare-and-swap. A proposal is granted
// when the record is free (empty or expired) or already held by the
// proposer, and the proposed token is not behind the highest token this
// server has seen. A grant stores the record, extends the expiry by
// TTL, and raises the fence to the granted token — from that moment
// every fenced call by an older leader is rejected.
func (l *leaseState) cas(r LeaseCASReq, now time.Time) LeaseCASResp {
	l.mu.Lock()
	defer l.mu.Unlock()
	if r.Release {
		if l.holder == r.Holder {
			l.holder = ""
			l.until = time.Time{}
		}
		max := l.token
		if l.fence > max {
			max = l.fence
		}
		return LeaseCASResp{Holder: l.holder, Token: l.token, MaxToken: max}
	}
	held := l.holder != "" && now.Before(l.until)
	max := l.token
	if l.fence > max {
		max = l.fence
	}
	if (held && l.holder != r.Holder) || r.Token < max {
		return LeaseCASResp{Holder: l.holder, Token: l.token, MaxToken: max, ExpiresIn: l.until.Sub(now)}
	}
	l.holder = r.Holder
	l.token = r.Token
	l.until = now.Add(r.TTL)
	if r.Token > l.fence {
		l.fence = r.Token
	}
	return LeaseCASResp{Granted: true, Holder: l.holder, Token: l.token, MaxToken: l.fence, ExpiresIn: r.TTL}
}

// admit checks a fenced call's token against the fence, raising the
// fence to the token when it leads. It returns the rejection error for
// stale tokens.
func (l *leaseState) admit(token uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if token < l.fence {
		return &FencedError{Token: token, Fence: l.fence}
	}
	l.fence = token
	return nil
}

// putIntent journals a promotion intent, keeping the record with the
// highest token per slot (a resumed promotion re-journals under the
// new leader's token).
func (l *leaseState) putIntent(in PromotionIntent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.intents == nil {
		l.intents = make(map[int]PromotionIntent)
	}
	if cur, ok := l.intents[in.Slot]; !ok || in.Token >= cur.Token {
		l.intents[in.Slot] = in
	}
}

// clearIntent drops the journaled intent for a slot.
func (l *leaseState) clearIntent(slot int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.intents, slot)
}

// info snapshots the lease record and journaled intents for
// LeaderInfoReq (dsctl leader, takeover resume).
func (l *leaseState) info(now time.Time) LeaderInfoResp {
	l.mu.Lock()
	defer l.mu.Unlock()
	resp := LeaderInfoResp{Holder: l.holder, Token: l.token, MaxFence: l.fence}
	if l.holder != "" {
		resp.ExpiresIn = l.until.Sub(now)
	}
	for _, in := range l.intents {
		resp.Intents = append(resp.Intents, in)
	}
	return resp
}

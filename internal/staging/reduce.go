package staging

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"

	"gospaces/internal/domain"
)

// This file implements in-transit reductions: servers compute
// region-local aggregates over staged data so analysis code can query
// min/max/sum/count without moving the field off the staging area —
// the in-situ/in-transit processing pattern (Bennett et al., SC'12)
// that staging frameworks exist to serve.

// ReduceOp selects the aggregate computed server-side.
type ReduceOp int

// Supported reductions. Values are interpreted per-cell: uint64 cells
// for 8-byte elements, uint32/16/8 for narrower ones, reduced in
// float64 space.
const (
	ReduceMin ReduceOp = iota + 1
	ReduceMax
	ReduceSum
	ReduceCount
)

func (op ReduceOp) String() string {
	switch op {
	case ReduceMin:
		return "min"
	case ReduceMax:
		return "max"
	case ReduceSum:
		return "sum"
	case ReduceCount:
		return "count"
	default:
		return fmt.Sprintf("op(%d)", int(op))
	}
}

// ReduceReq computes an aggregate over the server-local pieces of
// (Name, Version) intersecting BBox.
type ReduceReq struct {
	Name    string
	Version int64
	BBox    domain.BBox
	Op      ReduceOp
}

// ReduceResp carries one server's partial aggregate.
type ReduceResp struct {
	// Value is the partial result (for count: number of cells).
	Value float64
	// Cells is the number of cells reduced on this server.
	Cells int64
}

func init() {
	gob.Register(ReduceReq{})
	gob.Register(ReduceResp{})
}

func (s *Server) handleReduce(r ReduceReq) (any, error) {
	version := r.Version
	if version == NoVersion {
		v, ok := s.store.LatestVersion(r.Name, -1)
		if !ok {
			return nil, fmt.Errorf("staging: reduce %q: no versions staged", r.Name)
		}
		version = v
	}
	objs := s.store.GetVersion(r.Name, version, r.BBox)
	resp := ReduceResp{}
	switch r.Op {
	case ReduceMin:
		resp.Value = math.Inf(1)
	case ReduceMax:
		resp.Value = math.Inf(-1)
	case ReduceSum, ReduceCount:
	default:
		return nil, fmt.Errorf("staging: unknown reduce op %d", r.Op)
	}
	for _, o := range objs {
		region, ok := o.BBox.Intersect(r.BBox)
		if !ok {
			continue
		}
		sub := domain.Extract(o.Data, o.BBox, region, o.ElemSize)
		n := int(region.Volume())
		for i := 0; i < n; i++ {
			v := cellValue(sub[i*o.ElemSize:(i+1)*o.ElemSize], o.ElemSize)
			switch r.Op {
			case ReduceMin:
				if v < resp.Value {
					resp.Value = v
				}
			case ReduceMax:
				if v > resp.Value {
					resp.Value = v
				}
			case ReduceSum:
				resp.Value += v
			}
		}
		resp.Cells += int64(n)
	}
	if r.Op == ReduceCount {
		resp.Value = float64(resp.Cells)
	}
	return resp, nil
}

// cellValue decodes one little-endian cell as a float64-space value.
func cellValue(b []byte, elemSize int) float64 {
	switch elemSize {
	case 1:
		return float64(b[0])
	case 2:
		return float64(binary.LittleEndian.Uint16(b))
	case 4:
		return float64(binary.LittleEndian.Uint32(b))
	case 8:
		return float64(binary.LittleEndian.Uint64(b))
	default:
		var v uint64
		for i := 0; i < len(b) && i < 8; i++ {
			v |= uint64(b[i]) << (8 * i)
		}
		return float64(v)
	}
}

// Reduce computes an aggregate over (name, version, bbox) entirely in
// the staging area, combining per-server partials client-side. Version
// NoVersion reduces the latest version on each server (use explicit
// versions when producers are mid-write).
func (c *Client) Reduce(name string, version int64, bbox domain.BBox, op ReduceOp) (float64, int64, error) {
	var value float64
	switch op {
	case ReduceMin:
		value = math.Inf(1)
	case ReduceMax:
		value = math.Inf(-1)
	}
	var cells int64
	for _, s := range c.pool.index.ServersFor(bbox) {
		raw, err := c.conns[s].Call(ReduceReq{Name: name, Version: version, BBox: bbox, Op: op})
		if err != nil {
			return 0, 0, fmt.Errorf("staging: reduce on server %d: %w", s, err)
		}
		part := raw.(ReduceResp)
		if part.Cells == 0 {
			continue
		}
		switch op {
		case ReduceMin:
			if part.Value < value {
				value = part.Value
			}
		case ReduceMax:
			if part.Value > value {
				value = part.Value
			}
		case ReduceSum, ReduceCount:
			value += part.Value
		}
		cells += part.Cells
	}
	if cells == 0 {
		return 0, 0, fmt.Errorf("staging: reduce %q v%d %v: no data staged", name, version, bbox)
	}
	return value, cells, nil
}

package staging

import (
	"encoding/binary"
	"math"
	"testing"

	"gospaces/internal/domain"
	"gospaces/internal/transport"
)

// stageCells stages a buffer whose cell i (row-major) holds value i,
// split across two rank chunks so reductions cross servers and pieces.
func stageCells(t *testing.T, g *Group, elem int) (domain.BBox, *Client) {
	t.Helper()
	b := domain.Box3(0, 0, 0, 7, 7, 3)
	c, err := g.NewClient("red/0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	dec, err := domain.NewDecomposition(b, []int{2, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	whole := make([]byte, domain.BufLen(b, elem))
	for i := 0; i < int(b.Volume()); i++ {
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], uint64(i))
		copy(whole[i*elem:(i+1)*elem], tmp[:elem])
	}
	for r := 0; r < dec.NRanks; r++ {
		rb, _ := dec.RankBox(r)
		if err := c.Put("cells", 1, rb, domain.Extract(whole, b, rb, elem)); err != nil {
			t.Fatal(err)
		}
	}
	return b, c
}

func TestReduceWholeDomain(t *testing.T) {
	g := testGroup(t, 4)
	b, c := stageCells(t, g, 8)
	n := float64(b.Volume())

	v, cells, err := c.Reduce("cells", 1, b, ReduceMin)
	if err != nil || v != 0 || cells != int64(n) {
		t.Fatalf("min = %f cells=%d err=%v", v, cells, err)
	}
	v, _, err = c.Reduce("cells", 1, b, ReduceMax)
	if err != nil || v != n-1 {
		t.Fatalf("max = %f err=%v", v, err)
	}
	v, _, err = c.Reduce("cells", 1, b, ReduceSum)
	if err != nil || v != n*(n-1)/2 {
		t.Fatalf("sum = %f want %f err=%v", v, n*(n-1)/2, err)
	}
	v, _, err = c.Reduce("cells", 1, b, ReduceCount)
	if err != nil || v != n {
		t.Fatalf("count = %f err=%v", v, err)
	}
}

func TestReduceSubRegion(t *testing.T) {
	g := testGroup(t, 4)
	b, c := stageCells(t, g, 8)
	// Single cell at (1,2,3): row-major index 1*8*4 + 2*4 + 3 = 43.
	q := domain.Box3(1, 2, 3, 1, 2, 3)
	v, cells, err := c.Reduce("cells", 1, q, ReduceSum)
	if err != nil || cells != 1 || v != 43 {
		t.Fatalf("cell sum = %f cells=%d err=%v", v, cells, err)
	}
	// A plane.
	plane := domain.Box3(0, 0, 0, 7, 7, 0)
	_, cells, err = c.Reduce("cells", 1, plane, ReduceCount)
	if err != nil || cells != 64 {
		t.Fatalf("plane cells = %d err=%v", cells, err)
	}
	_ = b
}

func TestReduceLatestAndErrors(t *testing.T) {
	g := testGroup(t, 2)
	b, c := stageCells(t, g, 8)
	if _, _, err := c.Reduce("cells", NoVersion, b, ReduceMax); err != nil {
		t.Fatalf("latest reduce: %v", err)
	}
	if _, _, err := c.Reduce("ghost", 1, b, ReduceSum); err == nil {
		t.Fatal("reduce of absent object succeeded")
	}
	if _, _, err := c.Reduce("cells", 1, b, ReduceOp(42)); err == nil {
		t.Fatal("bad op accepted")
	}
	if math.IsInf(0, 1) {
		t.Fatal("impossible")
	}
}

func TestReduceNarrowElements(t *testing.T) {
	g := testGroup(t, 2)
	// Re-stage with 2-byte cells in a fresh group namespace.
	b := domain.Box3(0, 0, 0, 3, 3, 1)
	c, _ := g.NewClient("narrow/0")
	defer c.Close()
	// ElemSize of the group is 8; use a dedicated group for elem=2.
	g2, err := StartGroup(transport.NewInProc(), "narrow", Config{
		Global: b, NServers: 2, Bits: 2, ElemSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	c2, _ := g2.NewClient("narrow/0")
	defer c2.Close()
	buf := make([]byte, domain.BufLen(b, 2))
	for i := 0; i < int(b.Volume()); i++ {
		binary.LittleEndian.PutUint16(buf[i*2:(i+1)*2], uint16(i))
	}
	if err := c2.Put("w", 1, b, buf); err != nil {
		t.Fatal(err)
	}
	v, _, err := c2.Reduce("w", 1, b, ReduceMax)
	if err != nil || v != float64(b.Volume()-1) {
		t.Fatalf("max = %f err=%v", v, err)
	}
}

func TestReduceOpStrings(t *testing.T) {
	want := map[ReduceOp]string{ReduceMin: "min", ReduceMax: "max", ReduceSum: "sum", ReduceCount: "count"}
	for op, s := range want {
		if op.String() != s {
			t.Fatalf("%d -> %s", op, op.String())
		}
	}
	if ReduceOp(9).String() != "op(9)" {
		t.Fatal("unknown op string")
	}
}

package staging

import (
	"bytes"
	"testing"

	"gospaces/internal/domain"
	"gospaces/internal/pfs"
	"gospaces/internal/tier"
	"gospaces/internal/transport"
)

// tierGroup starts a group whose servers each get a private in-memory
// PFS cold tier and a budget small enough that logged versions spill.
func tierGroup(t *testing.T, nservers int, budget int64, k int) (*Group, map[int]*pfs.Store) {
	t.Helper()
	backends := map[int]*pfs.Store{}
	g, err := StartGroup(transport.NewInProc(), "stage", Config{
		Global:                domain.Box3(0, 0, 0, 63, 63, 0),
		NServers:              nservers,
		Bits:                  2,
		ElemSize:              1,
		MemoryBudgetPerServer: budget,
		WlogReplicas:          k,
		TierBackend: func(id int) tier.Backend {
			be := pfs.NewStore()
			backends[id] = be
			return be
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return g, backends
}

// TestTierSpillAndPromoteOnGet drives logged puts past the spill
// watermark and checks: cold versions demote to the PFS tier instead of
// rejecting the put, resident bytes stay under budget, and a replay
// read of a spilled version transparently promotes it back with a
// byte-exact payload.
func TestTierSpillAndPromoteOnGet(t *testing.T) {
	const budget = 12000 // ~3 versions of 4096B; spill water 0.6 = 7200
	g, _ := tierGroup(t, 1, budget, 0)
	prod, err := g.NewClient("sim/0")
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	cons, err := g.NewClient("ana/0")
	if err != nil {
		t.Fatal(err)
	}
	defer cons.Close()
	global := g.Config().Global
	n := domain.BufLen(global, 1)
	payload := func(v int64) []byte {
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(int64(i)*3 + v)
		}
		return buf
	}
	for v := int64(1); v <= 6; v++ {
		if err := prod.PutWithLog("field", v, global, payload(v)); err != nil {
			t.Fatalf("put v%d: %v", v, err)
		}
	}
	srv := g.Server(0)
	st := srv.tier.Stats()
	if st.Spills == 0 || st.Entries == 0 {
		t.Fatalf("no versions spilled under budget pressure: %+v", st)
	}
	if used := srv.store.BytesUsed(); used > budget {
		t.Fatalf("resident %d bytes exceeds budget %d despite tier", used, budget)
	}
	// The oldest versions must have left RAM for the tier.
	if !srv.tier.HasName("field") {
		t.Fatal("tier holds nothing for field")
	}
	// Replay reads of spilled versions promote transparently.
	for v := int64(1); v <= 6; v++ {
		got, _, err := cons.GetWithLog("field", v, global)
		if err != nil {
			t.Fatalf("get v%d: %v", v, err)
		}
		if !bytes.Equal(got, payload(v)) {
			t.Fatalf("v%d payload diverged after spill/promote round trip", v)
		}
	}
	if st = srv.tier.Stats(); st.Promotes == 0 {
		t.Fatalf("reads of spilled versions promoted nothing: %+v", st)
	}
	// The control RPC reports the same accounting.
	raw, err := srv.handleTierStats()
	if err != nil {
		t.Fatal(err)
	}
	resp := raw.(TierStatsResp)
	if !resp.Enabled || resp.Spills != st.Spills || resp.Promotes != st.Promotes {
		t.Fatalf("TierStats mismatch: %+v vs %+v", resp, st)
	}
}

// TestTierScrubRPCHealsBitRot corrupts one generation of a spilled
// record at rest and checks the scrub RPC heals it from the twin — and
// that the promoted payload stays byte-exact.
func TestTierScrubRPCHealsBitRot(t *testing.T) {
	g, backends := tierGroup(t, 1, 12000, 0)
	prod, err := g.NewClient("sim/0")
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	global := g.Config().Global
	n := domain.BufLen(global, 1)
	for v := int64(1); v <= 6; v++ {
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(int64(i) + v)
		}
		if err := prod.PutWithLog("field", v, global, buf); err != nil {
			t.Fatal(err)
		}
	}
	be := backends[0]
	names := be.List("tier/")
	corrupted := 0
	for _, name := range names {
		if len(name) > 2 && name[len(name)-2:] == "g0" {
			if be.Corrupt(name, 40) {
				corrupted++
			}
		}
	}
	if corrupted == 0 {
		t.Fatal("nothing to corrupt: no g0 records on the backend")
	}
	raw, err := g.Server(0).handleTierScrub()
	if err != nil {
		t.Fatal(err)
	}
	resp := raw.(TierScrubResp)
	if !resp.Enabled || resp.Healed == 0 {
		t.Fatalf("scrub healed nothing after %d corruptions: %+v", corrupted, resp)
	}
	if resp.Lost != 0 {
		t.Fatalf("single-generation corruption lost %d entries", resp.Lost)
	}
}

// TestWlogInstallResetsTier: a promoted spare's stale pre-promotion
// tier is dropped when the dead server's state is installed, so replay
// reads never resurrect pre-promotion versions.
func TestWlogInstallResetsTier(t *testing.T) {
	g, _ := tierGroup(t, 2, 12000, 1)
	prod, err := g.NewClient("sim/0")
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	global := g.Config().Global
	n := domain.BufLen(global, 1)
	for v := int64(1); v <= 6; v++ {
		if err := prod.PutWithLog("field", v, global, fill(n, v)); err != nil {
			t.Fatal(err)
		}
	}
	srv := g.Server(0)
	if !srv.tier.HasName("field") {
		t.Skip("budget did not force a spill on server 0")
	}
	st := fetchReplica(t, g.Server(1), 0)
	if _, err := srv.handleWlogInstall(WlogInstallReq{Slot: 0, State: st}); err != nil {
		t.Fatal(err)
	}
	if srv.tier.HasName("field") {
		t.Fatal("tier survived a wlog install; stale spilled versions would shadow the restored state")
	}
}

package staging

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"time"

	"gospaces/internal/domain"
	"gospaces/internal/synth"
)

// TestLockCoupledCycle drives the DataSpaces coupling idiom through the
// staging protocol: the producer brackets each version's puts with the
// write lock, consumers bracket reads with read locks, and no consumer
// ever observes a torn (partially written) version.
func TestLockCoupledCycle(t *testing.T) {
	g := testGroup(t, 4)
	global := g.Config().Global
	field := synth.NewField("f", global, 8)
	dec, err := domain.NewDecomposition(global, []int{2, 1, 1})
	if err != nil {
		t.Fatal(err)
	}

	const steps = 8
	var produced atomic.Int64
	var wg sync.WaitGroup
	wg.Add(2)
	errs := make(chan error, 8)

	// Producer: two rank chunks per version, under one write lock.
	go func() {
		defer wg.Done()
		c, err := g.NewClient("sim/0")
		if err != nil {
			errs <- err
			return
		}
		defer c.Close()
		for ts := int64(1); ts <= steps; ts++ {
			if err := c.LockOnWrite("f"); err != nil {
				errs <- err
				return
			}
			for r := 0; r < dec.NRanks; r++ {
				box, _ := dec.RankBox(r)
				if err := c.PutWithLog("f", ts, box, field.Fill(ts, box)); err != nil {
					errs <- err
					return
				}
			}
			produced.Store(ts)
			if err := c.UnlockOnWrite("f"); err != nil {
				errs <- err
				return
			}
		}
	}()

	// Consumer: polls under the read lock; whatever the latest complete
	// version is, it must read back intact.
	go func() {
		defer wg.Done()
		c, err := g.NewClient("ana/0")
		if err != nil {
			errs <- err
			return
		}
		defer c.Close()
		seen := int64(0)
		for seen < steps {
			if err := c.LockOnRead("f"); err != nil {
				errs <- err
				return
			}
			ts := produced.Load()
			if ts > seen {
				data, _, err := c.GetWithLog("f", ts, global)
				if err != nil {
					errs <- err
					return
				}
				if field.Verify(ts, global, data) >= 0 {
					errs <- errTorn(ts)
					return
				}
				seen = ts
			}
			if err := c.UnlockOnRead("f"); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type errTorn int64

func (e errTorn) Error() string { return "torn read at version " + string(rune('0'+e)) }

func TestLockErrorsSurfaceToClient(t *testing.T) {
	g := testGroup(t, 2)
	c, _ := g.NewClient("x/0")
	defer c.Close()
	if err := c.UnlockOnWrite("never-locked"); err == nil ||
		!strings.Contains(err.Error(), "not held") {
		t.Fatalf("err = %v", err)
	}
	if err := c.LockOnRead("f"); err != nil {
		t.Fatal(err)
	}
	if err := c.LockOnWrite("f"); err == nil {
		t.Fatal("upgrade allowed over RPC")
	}
}

// TestWorkflowRestartReleasesLocks: a component that dies holding locks
// must not dam the workflow after recovery.
func TestWorkflowRestartReleasesLocks(t *testing.T) {
	g := testGroup(t, 2)
	dead, _ := g.NewClient("dead/0")
	defer dead.Close()
	if err := dead.LockOnWrite("f"); err != nil {
		t.Fatal(err)
	}
	// "dead/0" crashes and restarts: workflow_restart must free its lock.
	if _, err := dead.WorkflowRestart(); err != nil {
		t.Fatal(err)
	}
	other, _ := g.NewClient("alive/0")
	defer other.Close()
	done := make(chan error, 1)
	go func() { done <- other.LockOnWrite("f") }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("lock still held by recovered component")
	}
}

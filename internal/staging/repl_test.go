package staging

import (
	"bytes"
	"testing"

	"gospaces/internal/domain"
	"gospaces/internal/transport"
)

func replGroup(t *testing.T, nservers, k int) *Group {
	t.Helper()
	g, err := StartGroup(transport.NewInProc(), "stage", Config{
		Global:       domain.Box3(0, 0, 0, 63, 63, 31),
		NServers:     nservers,
		Bits:         2,
		ElemSize:     8,
		WlogReplicas: k,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return g
}

// fetchReplica returns the replica of slot hosted on server host.
func fetchReplica(t *testing.T, host *Server, slot int) ReplState {
	t.Helper()
	raw, err := host.handleReplFetch(ReplFetchReq{Slot: slot})
	if err != nil {
		t.Fatalf("fetch slot %d: %v", slot, err)
	}
	resp := raw.(ReplFetchResp)
	if !resp.Found {
		t.Fatalf("fetch slot %d: replica not found", slot)
	}
	return resp.State
}

// TestReplicationMirrorsLogState drives the logged protocol and checks
// that each server's replicated state is byte-identical on the replica
// its membership successor hosts.
func TestReplicationMirrorsLogState(t *testing.T) {
	g := replGroup(t, 3, 1)
	prod, err := g.NewClient("sim/0")
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	cons, err := g.NewClient("ana/0")
	if err != nil {
		t.Fatal(err)
	}
	defer cons.Close()
	global := g.Config().Global
	for v := int64(1); v <= 4; v++ {
		data := fill(domain.BufLen(global, 8), v)
		if err := prod.PutWithLog("field", v, global, data); err != nil {
			t.Fatal(err)
		}
		if _, _, err := cons.GetWithLog("field", v, global); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := prod.WorkflowCheck(); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 3; id++ {
		own, err := g.Server(id).buildReplState()
		if err != nil {
			t.Fatal(err)
		}
		rep := fetchReplica(t, g.Server((id+1)%3), id)
		if rep.Seq != own.Seq {
			t.Fatalf("server %d: replica at seq %d, origin at %d", id, rep.Seq, own.Seq)
		}
		if !bytes.Equal(rep.Wlog, own.Wlog) {
			t.Fatalf("server %d: replica log snapshot diverges from origin", id)
		}
		if len(rep.Objects) != len(own.Objects) {
			t.Fatalf("server %d: replica holds %d objects, origin %d", id, len(rep.Objects), len(own.Objects))
		}
		for i := range rep.Objects {
			if !bytes.Equal(rep.Objects[i].Data, own.Objects[i].Data) || rep.Objects[i].CRC != own.Objects[i].CRC {
				t.Fatalf("server %d object %d: payload mismatch", id, i)
			}
		}
	}
	st, err := prod.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ReplSeq == 0 || st.ReplicaSlots != 3 || st.ReplicaRecords == 0 {
		t.Fatalf("stats missing replication accounting: %+v", st)
	}
}

// TestReplicationCarriesLockState installs the lock server's replica on
// a spare and checks held locks and retry dedup survive the takeover.
func TestReplicationCarriesLockState(t *testing.T) {
	g := replGroup(t, 3, 1)
	spareAddr, err := g.AddSpare()
	if err != nil {
		t.Fatal(err)
	}
	c, err := g.NewClient("sim/0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.LockOnWrite("field"); err != nil { // lock seq 1
		t.Fatal(err)
	}
	global := g.Config().Global
	if err := c.PutWithLog("field", 1, global, fill(domain.BufLen(global, 8), 7)); err != nil {
		t.Fatal(err)
	}

	// Restore the lock server's (slot 0) replica onto the spare.
	st := fetchReplica(t, g.Server(1), 0)
	if !st.HasLocks {
		t.Fatal("slot 0 replica carries no lock state")
	}
	spare := g.ServerAt(spareAddr)
	if _, err := spare.handleWlogInstall(WlogInstallReq{Slot: 0, State: st}); err != nil {
		t.Fatal(err)
	}
	if w, _ := spare.locks.Holders("field"); w != "sim/0" {
		t.Fatalf("restored write lock holder %q, want sim/0", w)
	}
	// A retried acquire (same holder+seq, response lost in transit) must
	// observe the original outcome, not re-execute the transition.
	if _, err := spare.Handle(LockReq{Name: "field", Holder: "sim/0", Write: true, Seq: 1}); err != nil {
		t.Fatalf("retried acquire re-executed: %v", err)
	}
	// A fresh release works against the restored table.
	if _, err := spare.Handle(LockReq{Name: "field", Holder: "sim/0", Write: true, Release: true, Seq: 2}); err != nil {
		t.Fatal(err)
	}
	if w, _ := spare.locks.Holders("field"); w != "" {
		t.Fatalf("write lock still held by %q after release", w)
	}
	// The restored event log matches the dead slot's.
	own, err := g.Server(0).buildReplState()
	if err != nil {
		t.Fatal(err)
	}
	got, err := spare.buildReplState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(own.Wlog, got.Wlog) {
		t.Fatal("restored log snapshot diverges from origin")
	}
	if spare.store.BytesUsed() != g.Server(0).store.BytesUsed() {
		t.Fatalf("restored store holds %d bytes, origin %d", spare.store.BytesUsed(), g.Server(0).store.BytesUsed())
	}
}

// TestReplApplyEpochFencing checks a replica holding a newer membership
// epoch rejects stream batches from an origin with a stale view.
func TestReplApplyEpochFencing(t *testing.T) {
	g := replGroup(t, 2, 1)
	c, err := g.NewClient("sim/0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	global := g.Config().Global
	if err := c.PutWithLog("field", 1, global, fill(domain.BufLen(global, 8), 3)); err != nil {
		t.Fatal(err)
	}
	g.Server(1).SetMembership(2, g.Addrs())
	_, err = g.Server(1).Handle(ReplApplyReq{Epoch: 1, Slot: 0, Records: []ReplRecord{{Seq: 999}}})
	if !IsStaleEpoch(err) {
		t.Fatalf("stale-epoch batch accepted: %v", err)
	}
	_, err = g.Server(1).Handle(ReplSnapshotReq{Epoch: 1, Slot: 0})
	if !IsStaleEpoch(err) {
		t.Fatalf("stale-epoch snapshot accepted: %v", err)
	}
}

// TestNoReplicationWithoutOptIn: K=0 leaves the stream off — no hosted
// replicas, no stream position, zero overhead on the logged path.
func TestNoReplicationWithoutOptIn(t *testing.T) {
	g := replGroup(t, 2, 0)
	c, err := g.NewClient("sim/0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	global := g.Config().Global
	if err := c.PutWithLog("field", 1, global, fill(domain.BufLen(global, 8), 5)); err != nil {
		t.Fatal(err)
	}
	raw, err := g.Server(1).handleReplFetch(ReplFetchReq{Slot: 0})
	if err != nil {
		t.Fatal(err)
	}
	if raw.(ReplFetchResp).Found {
		t.Fatal("replica exists with replication disabled")
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ReplSeq != 0 || st.ReplicaSlots != 0 {
		t.Fatalf("replication accounting non-zero with K=0: %+v", st)
	}
}

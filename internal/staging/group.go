package staging

import (
	"fmt"
	"io"
	"strings"

	"gospaces/internal/transport"
)

// Group is a running set of staging servers plus the Pool clients use
// to reach them.
type Group struct {
	*Pool
	tr      transport.Transport
	addrs   []string
	servers []*Server
	closers []io.Closer
}

// StartGroup launches cfg.NServers staging servers on tr at addresses
// "<prefix>/<id>" and returns the group handle.
func StartGroup(tr transport.Transport, prefix string, cfg Config) (*Group, error) {
	g := &Group{tr: tr, servers: make([]*Server, cfg.NServers), closers: make([]io.Closer, cfg.NServers)}
	addrs := make([]string, cfg.NServers)
	for i := 0; i < cfg.NServers; i++ {
		srv := NewServer(i)
		srv.SetMemoryBudget(cfg.MemoryBudgetPerServer)
		// A prefix containing ":" is a TCP host:port (use ":0" for
		// ephemeral ports); otherwise addresses are "<prefix>/<id>".
		addr := fmt.Sprintf("%s/%d", prefix, i)
		if strings.Contains(prefix, ":") {
			addr = prefix
		}
		closer, err := tr.Listen(addr, srv.Handle)
		if err != nil {
			g.Close()
			return nil, fmt.Errorf("staging: start server %d: %w", i, err)
		}
		// Transports with dynamic binding report the real address.
		if a, ok := closer.(interface{ Addr() string }); ok {
			addr = a.Addr()
		}
		g.servers[i] = srv
		g.closers[i] = closer
		addrs[i] = addr
	}
	g.addrs = addrs
	pool, err := NewPool(tr, addrs, cfg)
	if err != nil {
		g.Close()
		return nil, err
	}
	g.Pool = pool
	return g, nil
}

// ReplaceServer simulates losing staging server id and bringing up an
// empty replacement at the same address: all object, log, and shard
// state on that server is gone. Clients keep working through the same
// address; shard data protected by the resilience layer
// (internal/corec) is recoverable with Rebuild, and object data is
// recoverable from producers via the crash-consistency protocol.
func (g *Group) ReplaceServer(id int) error {
	if id < 0 || id >= len(g.servers) {
		return fmt.Errorf("staging: no server %d", id)
	}
	if err := g.closers[id].Close(); err != nil {
		return fmt.Errorf("staging: stop server %d: %w", id, err)
	}
	srv := NewServer(id)
	closer, err := g.tr.Listen(g.addrs[id], srv.Handle)
	if err != nil {
		return fmt.Errorf("staging: restart server %d: %w", id, err)
	}
	g.servers[id] = srv
	g.closers[id] = closer
	return nil
}

// Server returns the id-th server (for in-proc inspection in tests).
func (g *Group) Server(id int) *Server { return g.servers[id] }

// Addrs returns the servers' bound addresses in id order (the chaos
// transport targets faults by address).
func (g *Group) Addrs() []string { return append([]string(nil), g.addrs...) }

// Close stops all servers.
func (g *Group) Close() error {
	var first error
	for _, c := range g.closers {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

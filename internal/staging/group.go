package staging

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"gospaces/internal/health"
	"gospaces/internal/transport"
)

// Group is a running set of staging servers plus the Pool clients use
// to reach them, an epoch-stamped Membership naming the live server
// set, and an optional pool of warm spares the recovery supervisor can
// promote after a fail-stop.
type Group struct {
	*Pool
	tr         transport.Transport
	prefix     string
	membership *health.Membership

	mu      sync.Mutex
	addrs   []string
	servers []*Server
	closers []io.Closer
	spares  []spareEntry
	// assigned maps a dead membership slot to the spare drawn for its
	// promotion. The assignment is idempotent (TakeSpareFor returns the
	// same spare until the promotion commits or the spare is returned),
	// which is what lets a recovery-leader takeover resume a half-done
	// promotion without double-spending a second spare on the slot.
	assigned map[int]spareEntry
	spareSeq int // monotonic spare address counter (survives returns)
}

// spareEntry is one warm spare: a running, empty server outside the
// membership, listening and answering pings until promoted.
type spareEntry struct {
	srv    *Server
	addr   string
	closer io.Closer
}

// StartGroup launches cfg.NServers staging servers on tr at addresses
// "<prefix>/<id>" and returns the group handle.
func StartGroup(tr transport.Transport, prefix string, cfg Config) (*Group, error) {
	g := &Group{tr: tr, prefix: prefix, servers: make([]*Server, cfg.NServers), closers: make([]io.Closer, cfg.NServers)}
	addrs := make([]string, cfg.NServers)
	for i := 0; i < cfg.NServers; i++ {
		srv := NewServer(i)
		srv.SetMemoryBudget(cfg.MemoryBudgetPerServer)
		if cfg.QoS != nil {
			srv.EnableQoS(*cfg.QoS)
		}
		if cfg.TierBackend != nil {
			srv.EnableTier(cfg.TierBackend(i), cfg.TierWatermark)
		}
		// A prefix containing ":" is a TCP host:port (use ":0" for
		// ephemeral ports); otherwise addresses are "<prefix>/<id>".
		addr := fmt.Sprintf("%s/%d", prefix, i)
		if strings.Contains(prefix, ":") {
			addr = prefix
		}
		closer, err := tr.Listen(addr, srv.Handle)
		if err != nil {
			g.Close()
			return nil, fmt.Errorf("staging: start server %d: %w", i, err)
		}
		// Transports with dynamic binding report the real address.
		if a, ok := closer.(interface{ Addr() string }); ok {
			addr = a.Addr()
		}
		srv.SetAddr(addr)
		srv.EnableReplication(tr, cfg.WlogReplicas)
		g.servers[i] = srv
		g.closers[i] = closer
		addrs[i] = addr
	}
	g.addrs = addrs
	pool, err := NewPool(tr, addrs, cfg)
	if err != nil {
		g.Close()
		return nil, err
	}
	g.Pool = pool
	g.membership = health.NewMembership(addrs)
	// Seed every member with the initial view so epoch-stamped calls
	// (epoch 1) pass and MembershipReq answers are useful from the start.
	for _, srv := range g.servers {
		srv.SetMembership(1, addrs)
	}
	return g, nil
}

// Membership returns the group's epoch-stamped server set. Exactly one
// writer — the recovery supervisor — should bump it.
func (g *Group) Membership() *health.Membership { return g.membership }

// AddSpare starts a warm spare server outside the membership: running
// and answering pings at "<prefix>/spare/<n>", but holding no data and
// receiving no client traffic until the recovery supervisor promotes
// it. It returns the spare's address.
func (g *Group) AddSpare() (string, error) {
	g.mu.Lock()
	n := g.spareSeq
	g.spareSeq++
	id := len(g.servers) + n // spare keeps its own id; slots are bound by address
	g.mu.Unlock()
	srv := NewServer(id)
	srv.SetSpare(true)
	srv.SetMemoryBudget(g.Pool.cfg.MemoryBudgetPerServer)
	if g.Pool.cfg.QoS != nil {
		// A promoted spare serves under the same admission policy; its
		// per-tenant usage is inherited at promotion when the wlog
		// restore rebases the accounting from the restored content.
		srv.EnableQoS(*g.Pool.cfg.QoS)
	}
	if g.Pool.cfg.TierBackend != nil {
		// The spare gets its own tier store; a promotion resets it before
		// the wlog restore repopulates staging RAM.
		srv.EnableTier(g.Pool.cfg.TierBackend(id), g.Pool.cfg.TierWatermark)
	}
	addr := fmt.Sprintf("%s/spare/%d", g.prefix, n)
	if strings.Contains(g.prefix, ":") {
		addr = g.prefix
	}
	closer, err := g.tr.Listen(addr, srv.Handle)
	if err != nil {
		return "", fmt.Errorf("staging: start spare %d: %w", n, err)
	}
	if a, ok := closer.(interface{ Addr() string }); ok {
		addr = a.Addr()
	}
	srv.SetAddr(addr)
	// Spares replicate too once promoted into the membership; until then
	// their slot is unresolved and the replicator stays idle.
	srv.EnableReplication(g.tr, g.Pool.cfg.WlogReplicas)
	g.mu.Lock()
	g.spares = append(g.spares, spareEntry{srv: srv, addr: addr, closer: closer})
	g.mu.Unlock()
	return addr, nil
}

// TakeSpare pops the next warm spare for promotion, returning its
// address. It is the legacy non-idempotent draw; the recovery
// supervisor uses TakeSpareFor so a resumed promotion re-reads the
// same assignment.
func (g *Group) TakeSpare() (string, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.takeLocked()
}

func (g *Group) takeLocked() (string, bool) {
	if len(g.spares) == 0 {
		return "", false
	}
	e := g.spares[0]
	g.spares = g.spares[1:]
	// The spare stays tracked for inspection and Close; its listener now
	// serves member traffic.
	g.servers = append(g.servers, e.srv)
	g.closers = append(g.closers, e.closer)
	g.addrs = append(g.addrs, e.addr)
	return e.addr, true
}

// TakeSpareFor draws a spare for the promotion of a dead membership
// slot. The draw is idempotent: until CommitSpare or ReturnSpare, the
// slot keeps the same spare, so a recovery-leader takeover that
// resumes a half-done promotion gets the spare the deposed leader
// already spent — never a second one. It is the recovery.SparePool the
// supervisor draws from.
func (g *Group) TakeSpareFor(slot int) (string, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if e, ok := g.assigned[slot]; ok {
		return e.addr, true
	}
	if len(g.spares) == 0 {
		return "", false
	}
	e := g.spares[0]
	if _, ok := g.takeLocked(); !ok {
		return "", false
	}
	if g.assigned == nil {
		g.assigned = make(map[int]spareEntry)
	}
	g.assigned[slot] = e
	return e.addr, true
}

// ReturnSpare puts the spare assigned to slot back in the pool — the
// promotion failed before the spare entered the membership (log
// restore or membership write failed). It reports whether a spare was
// actually returned.
func (g *Group) ReturnSpare(slot int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	e, ok := g.assigned[slot]
	if !ok {
		return false
	}
	delete(g.assigned, slot)
	// Undo the member tracking takeLocked added (search from the end:
	// spares append after the original members).
	for i := len(g.addrs) - 1; i >= 0; i-- {
		if g.addrs[i] == e.addr {
			g.addrs = append(g.addrs[:i], g.addrs[i+1:]...)
			g.servers = append(g.servers[:i], g.servers[i+1:]...)
			g.closers = append(g.closers[:i], g.closers[i+1:]...)
			break
		}
	}
	g.spares = append(g.spares, e)
	return true
}

// CommitSpare finalizes the promotion of slot: the assignment is
// dropped, so a later death of the same slot draws a fresh spare.
func (g *Group) CommitSpare(slot int) {
	g.mu.Lock()
	delete(g.assigned, slot)
	g.mu.Unlock()
}

// SparesConsumed reports how many spares have been permanently drawn
// from the pool (taken and not returned) — the nemesis harness's
// no-double-spend invariant counts it against the number of deaths.
func (g *Group) SparesConsumed() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.spareSeq - len(g.spares)
}

// Spares returns the addresses of the remaining unpromoted spares.
func (g *Group) Spares() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, len(g.spares))
	for i, e := range g.spares {
		out[i] = e.addr
	}
	return out
}

// FailStop permanently kills server id: its listener closes, so every
// call and dial to its address fails, and its object, log, and shard
// state is unreachable for good — the real fail-stop the recovery
// supervisor exists to repair (unlike ReplaceServer, nothing comes back
// at the old address).
func (g *Group) FailStop(id int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if id < 0 || id >= len(g.closers) {
		return fmt.Errorf("staging: no server %d", id)
	}
	err := g.closers[id].Close()
	g.closers[id] = nopCloser{} // Close must not re-close the dead listener
	return err
}

type nopCloser struct{}

func (nopCloser) Close() error { return nil }

// ReplaceServer simulates losing staging server id and bringing up an
// empty replacement at the same address: all object, log, and shard
// state on that server is gone. Clients keep working through the same
// address; shard data protected by the resilience layer
// (internal/corec) is recoverable with Rebuild, and object data is
// recoverable from producers via the crash-consistency protocol.
func (g *Group) ReplaceServer(id int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if id < 0 || id >= len(g.servers) {
		return fmt.Errorf("staging: no server %d", id)
	}
	if err := g.closers[id].Close(); err != nil {
		return fmt.Errorf("staging: stop server %d: %w", id, err)
	}
	srv := NewServer(id)
	closer, err := g.tr.Listen(g.addrs[id], srv.Handle)
	if err != nil {
		return fmt.Errorf("staging: restart server %d: %w", id, err)
	}
	g.servers[id] = srv
	g.closers[id] = closer
	return nil
}

// Server returns the id-th server (for in-proc inspection in tests).
// Promoted spares append after the original members in promotion order.
func (g *Group) Server(id int) *Server {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.servers[id]
}

// ServerAt returns the server currently listening at addr (nil if
// none) — the way tests inspect a promoted spare by its membership
// slot address.
func (g *Group) ServerAt(addr string) *Server {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i, a := range g.addrs {
		if a == addr {
			return g.servers[i]
		}
	}
	for _, e := range g.spares {
		if e.addr == addr {
			return e.srv
		}
	}
	return nil
}

// Addrs returns the servers' original bound addresses in id order (the
// chaos transport targets faults by address); the Pool holds the
// post-promotion view.
func (g *Group) Addrs() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]string(nil), g.addrs...)
}

// Close stops all servers, including unpromoted spares.
func (g *Group) Close() error {
	g.mu.Lock()
	closers := append([]io.Closer(nil), g.closers...)
	servers := append([]*Server(nil), g.servers...)
	for _, e := range g.spares {
		closers = append(closers, e.closer)
		servers = append(servers, e.srv)
	}
	g.mu.Unlock()
	for _, srv := range servers {
		if srv != nil {
			srv.StopReplication()
		}
	}
	var first error
	for _, c := range closers {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

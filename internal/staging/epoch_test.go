package staging

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"gospaces/internal/domain"
	"gospaces/internal/transport"
)

func TestStaleEpochErrorDetection(t *testing.T) {
	err := &StaleEpochError{Client: 1, Server: 3}
	if !IsStaleEpoch(err) {
		t.Fatal("typed error not detected")
	}
	if !IsStaleEpoch(fmt.Errorf("call failed: %w", err)) {
		t.Fatal("wrapped error not detected")
	}
	// Over TCP the handler error is flattened to a string.
	if !IsStaleEpoch(errors.New("remote: " + err.Error())) {
		t.Fatal("flattened error not detected")
	}
	if IsStaleEpoch(errors.New("staging: something else")) || IsStaleEpoch(nil) {
		t.Fatal("false positive")
	}
}

func TestServerRejectsStaleEpoch(t *testing.T) {
	s := NewServer(0)
	s.SetMembership(3, []string{"a", "b"})
	_, err := s.Handle(EpochReq{Epoch: 2, Req: StatsReq{}})
	if !IsStaleEpoch(err) {
		t.Fatalf("stale call accepted: %v", err)
	}
	if _, err := s.Handle(EpochReq{Epoch: 3, Req: StatsReq{}}); err != nil {
		t.Fatalf("current epoch rejected: %v", err)
	}
	// A client ahead of the server (push in flight) is accepted.
	if _, err := s.Handle(EpochReq{Epoch: 4, Req: StatsReq{}}); err != nil {
		t.Fatalf("newer epoch rejected: %v", err)
	}
	// Older views never roll the server back.
	s.SetMembership(1, []string{"x"})
	if s.Epoch() != 3 {
		t.Fatalf("epoch rolled back to %d", s.Epoch())
	}
}

// TestClientRebindsAfterPromotion drives the full redirect path: a
// member fail-stops, a spare is promoted under a bumped epoch, and a
// client holding the old view self-heals — its next call re-binds to
// the new membership and completes.
func TestClientRebindsAfterPromotion(t *testing.T) {
	tr := transport.NewInProc()
	cfg := Config{
		Global:   domain.Box3(0, 0, 0, 63, 63, 0),
		NServers: 2,
		Bits:     2,
		ElemSize: 1,
	}
	g, err := StartGroup(tr, "stage", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := g.AddSpare(); err != nil {
		t.Fatal(err)
	}

	c, err := g.NewClient("sim/0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	full := cfg.Global
	data := make([]byte, domain.BufLen(full, 1))
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := c.Put("before", 1, full, data); err != nil {
		t.Fatal(err)
	}

	// Fail-stop server 1 and promote the spare into its slot. The
	// supervisor normally drives this sequence; here we do it by hand.
	if err := g.FailStop(1); err != nil {
		t.Fatal(err)
	}
	spareAddr, ok := g.TakeSpare()
	if !ok {
		t.Fatal("no spare to take")
	}
	epoch, err := g.Membership().Replace(1, spareAddr)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Fatalf("epoch = %d", epoch)
	}
	newAddrs := g.Membership().Addrs()
	g.Server(0).SetMembership(epoch, newAddrs)
	if srv := g.ServerAt(spareAddr); srv == nil {
		t.Fatal("promoted spare not found by address")
	} else {
		srv.SetMembership(epoch, newAddrs)
	}

	// The client still holds epoch 1 and a connection to the dead
	// server; a put spanning both slots must re-bind and land.
	if err := c.Put("after", 1, full, data); err != nil {
		t.Fatalf("post-promotion put: %v", err)
	}
	got, _, err := c.Get("after", 1, full)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("post-promotion data mismatch")
	}
	if c.pool.Epoch() != 2 {
		t.Fatalf("pool epoch = %d after rebind", c.pool.Epoch())
	}
	// The promoted spare now identifies as a member.
	raw, err := g.ServerAt(spareAddr).Handle(MembershipReq{})
	if err != nil {
		t.Fatal(err)
	}
	if m := raw.(MembershipResp); m.Epoch != 2 || m.Addrs[1] != spareAddr {
		t.Fatalf("membership view = %+v", m)
	}
}

func TestShardKeysAndRebuildAccounting(t *testing.T) {
	s := NewServer(0)
	if _, err := s.Handle(ShardPutReq{Key: "b", Shard: 0, Data: []byte{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Handle(ShardPutReq{Key: "a", Shard: 1, Data: []byte{3}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Handle(ShardPutReq{Key: "a", Shard: 2, Data: []byte{4, 5, 6}, Rebuild: true}); err != nil {
		t.Fatal(err)
	}
	raw, err := s.Handle(ShardKeysReq{})
	if err != nil {
		t.Fatal(err)
	}
	keys := raw.(ShardKeysResp).Keys
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("keys = %v", keys)
	}
	st := s.stats()
	if st.RebuiltShards != 1 || st.RebuiltBytes != 3 {
		t.Fatalf("rebuild accounting = %d shards, %d bytes", st.RebuiltShards, st.RebuiltBytes)
	}
}
